examples/directional_antenna.ml: Core Fun Hashtbl Lattice List Option Printf Prototile Render Tiling Vec Zgeom
