examples/directional_antenna.mli:
