examples/farm_monitoring.ml: Core Lattice List Netsim Printf Prototile Tiling
