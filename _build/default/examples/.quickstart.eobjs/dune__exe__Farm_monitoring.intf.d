examples/farm_monitoring.mli:
