examples/heterogeneous_hardware.ml: Array Core Format Lattice Netsim Printf Prototile Render Tiling Zgeom
