examples/heterogeneous_hardware.mli:
