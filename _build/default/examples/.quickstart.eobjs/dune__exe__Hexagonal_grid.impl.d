examples/hexagonal_grid.ml: Core Embedding Lattice List Printf Prototile Render Tiling Zgeom
