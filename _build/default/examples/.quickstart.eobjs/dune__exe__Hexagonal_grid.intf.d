examples/hexagonal_grid.mli:
