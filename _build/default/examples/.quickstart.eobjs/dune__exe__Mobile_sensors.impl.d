examples/mobile_sensors.ml: Core Lattice List Netsim Printf Prototile Render Sublattice Tiling Zgeom
