examples/mobile_sensors.mli:
