examples/quickstart.ml: Coloring Core Format Lattice Printf Prototile Render Tiling Zgeom
