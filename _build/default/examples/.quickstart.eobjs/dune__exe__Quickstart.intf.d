examples/quickstart.mli:
