examples/tetromino_nonrespectable.ml: Core Hashtbl Lattice List Option Printf Prototile Render Stdlib Sublattice Tiling
