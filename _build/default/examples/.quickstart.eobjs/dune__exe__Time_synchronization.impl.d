examples/time_synchronization.ml: Core Lattice List Netsim Option Printf Prototile Tiling Zgeom
