examples/time_synchronization.mli:
