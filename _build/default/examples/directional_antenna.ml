(* Directional antennas (Figures 2 and 3 of the paper).

   A sensor with a directional antenna interferes with an asymmetric
   neighborhood - here the 2x4 block radiating up-right from the sensor.
   The example reproduces Figure 3: the tiling of the lattice by the
   8-cell prototile, the 8-slot schedule, and the observation that the
   sensors of any fixed slot have neighborhoods that again tile the
   lattice (a shifted copy of the original tiling).

   Run with: dune exec examples/directional_antenna.exe *)

open Zgeom
open Lattice

let () =
  let n = Prototile.directional in
  Printf.printf "Directional neighborhood (sensor at 'O'):\n%s\n\n" (Render.Ascii.prototile n);

  let tiling =
    match Tiling.Search.find_lattice_tiling n with
    | Some t -> t
    | None -> failwith "the 2x4 block tiles Z^2"
  in
  let schedule = Core.Schedule.of_tiling tiling in

  Printf.printf "Tiling (letters = tiles) and schedule (digits = slots):\n\n%s\n\n%s\n\n"
    (Render.Ascii.tiling tiling ~width:12 ~height:10)
    (Render.Ascii.schedule schedule ~width:12 ~height:10);

  assert (Core.Collision.is_collision_free_theorem1 tiling schedule);
  Printf.printf "collision-free with m = %d slots (optimal).\n\n" (Core.Schedule.num_slots schedule);

  (* Figure 3, right: for each slot k, the neighborhoods of the sensors
     broadcasting at slot k tile the lattice - verify by checking their
     ranges partition a large window (up to boundary). *)
  let period = Tiling.Single.period tiling in
  let slot_senders k =
    (* Senders with slot k in a window with margin. *)
    let out = ref [] in
    for x = -12 to 24 do
      for y = -12 to 24 do
        let v = Vec.make2 x y in
        if Core.Schedule.slot_at schedule v = k then out := v :: !out
      done
    done;
    !out
  in
  let all_slots_tile =
    List.for_all
      (fun k ->
        let covered = Hashtbl.create 256 in
        List.iter
          (fun s ->
            Vec.Set.iter
              (fun w ->
                Hashtbl.replace covered w (1 + Option.value ~default:0 (Hashtbl.find_opt covered w)))
              (Prototile.translate s n))
          (slot_senders k);
        (* Inner window fully covered exactly once. *)
        let ok = ref true in
        for x = 0 to 11 do
          for y = 0 to 11 do
            if Option.value ~default:0 (Hashtbl.find_opt covered (Vec.make2 x y)) <> 1 then
              ok := false
          done
        done;
        !ok)
      (List.init (Core.Schedule.num_slots schedule) Fun.id)
  in
  Printf.printf "each slot's sender neighborhoods tile the lattice: %b\n" all_slots_tile;
  assert all_slots_tile;

  (* Rotated antennas: each rotation is also exact (BN certificate). *)
  Printf.printf "\nexactness of the four antenna orientations:\n";
  List.iteri
    (fun i r ->
      let verdict =
        match Tiling.Search.exactness r with
        | `Exact -> "exact"
        | `NotExact -> "not exact"
        | `Unknown -> "unknown"
      in
      Printf.printf "  rotation %d: %s (m = %d)\n" (i * 90) verdict (Prototile.size r))
    (Prototile.rotations n);
  ignore period
