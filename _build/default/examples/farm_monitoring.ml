(* End-to-end scenario: a field of soil sensors.

   A 20x20 grid of sensors reports a reading every 60 slots; each radio
   interferes within Chebyshev distance 1.  We run the same workload
   under four MAC protocols and compare delivery, collisions, latency and
   energy - the quantified version of the paper's introduction: random
   access wastes energy on collisions, naive TDMA does not scale, the
   lattice schedule gives zero collisions with a 9-slot period forever.

   Run with: dune exec examples/farm_monitoring.exe *)

open Lattice

let () =
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  let tiling =
    match Tiling.Search.find_tiling prototile with
    | Some t -> t
    | None -> assert false
  in
  let schedule = Core.Schedule.of_tiling tiling in
  let width = 20 and height = 20 in
  let duration = 6000 in
  let workload = Netsim.Workload.Periodic { interval = 60 } in

  let run mac =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac) with width; height; prototile; duration; workload;
        seed = 2026L }
  in
  let protocols =
    [ Netsim.Mac.lattice_tdma schedule;
      Netsim.Mac.full_tdma ~num_nodes:(width * height);
      Netsim.Mac.slotted_aloha ~p:0.15 ~max_backoff_exp:6;
      Netsim.Mac.p_csma ~p:0.25 ]
  in

  Printf.printf "%-16s %9s %9s %10s %9s %9s %11s\n" "protocol" "attempts" "delivered" "collisions"
    "delivery" "lat(mean)" "energy/del";
  List.iter
    (fun mac ->
      let r = run mac in
      assert (Netsim.Sim.conservation_ok r);
      let s = r.Netsim.Sim.stats in
      Printf.printf "%-16s %9d %9d %10d %8.1f%% %9.1f %11.2f\n" r.Netsim.Sim.mac_name
        s.Netsim.Stats.attempts s.Netsim.Stats.delivered s.Netsim.Stats.collisions
        (100.0 *. s.Netsim.Stats.delivery_ratio)
        s.Netsim.Stats.mean_latency s.Netsim.Stats.energy_per_delivery)
    protocols;

  print_endline "\nlattice-tdma: zero collisions by Theorem 1; period 9 regardless of field size.";
  print_endline "full-tdma: also collision-free, but its period grows with the field (400 here).";
  print_endline "aloha/csma: contention wastes transmissions and energy as the intro warns."
