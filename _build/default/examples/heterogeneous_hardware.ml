(* Mixed hardware (Section 4 + Theorem 2, end to end in the simulator).

   A deployment mixes two sensor models: strong radios with the full 2x2
   interference block, and low-power units that only reach themselves.
   Deployed per the paper's rule D1 (every sensor inside a tile has that
   tile's neighborhood), Theorem 2 gives a collision-free schedule with
   |N1| = 4 slots - and because the tiling is respectable, 4 is optimal.

   We search a respectable tiling automatically, build the schedule, and
   run the packet-level simulator with per-position neighborhoods to
   confirm zero collisions under traffic.

   Run with: dune exec examples/heterogeneous_hardware.exe *)

open Lattice

let () =
  let strong = Prototile.rect 2 2 in
  let weak = Prototile.of_cells [ Zgeom.Vec.zero 2 ] in
  Printf.printf "strong radio (N1, 4 cells):\n%s\n\nweak radio (N2, subset of N1):\n%s\n\n"
    (Render.Ascii.prototile strong) (Render.Ascii.prototile weak);

  (* Find a respectable tiling using both hardware types. *)
  let tiling =
    match Tiling.Search.find_respectable [ strong; weak ] ~max_solutions:1 () with
    | m :: _ -> m
    | [] -> failwith "no respectable tiling found"
  in
  Format.printf "found: %a@.@." Tiling.Multi.pp tiling;
  Printf.printf "deployment (strong tiles: a-m, weak: n-z):\n%s\n\n"
    (Render.Ascii.multi_tiling tiling ~width:12 ~height:8);

  (* Theorem 2's schedule. *)
  let schedule = Core.Schedule.of_multi tiling in
  Printf.printf "Theorem-2 schedule, m = %d slots (= |N1|, optimal):\n%s\n\n"
    (Core.Schedule.num_slots schedule)
    (Render.Ascii.schedule schedule ~width:12 ~height:8);
  assert (Core.Collision.is_collision_free_multi tiling schedule);
  Printf.printf "static check: collision-free = true; ground-rule optimum = %d\n\n"
    (Core.Optimality.ground_rule_minimum tiling);

  (* Packet-level confirmation with per-position neighborhoods (D1). *)
  let tiles = Array.of_list (Tiling.Multi.prototiles tiling) in
  let neighborhoods v =
    let k, _, _ = Tiling.Multi.tile_of tiling v in
    tiles.(k)
  in
  let r =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma schedule)) with
        width = 16; height = 16; neighborhoods = Some neighborhoods; duration = 4000;
        workload = Netsim.Workload.Periodic { interval = 20 } }
  in
  Format.printf "simulator: %a@." Netsim.Sim.pp_result r;
  assert (r.Netsim.Sim.stats.Netsim.Stats.collisions = 0);
  print_endline "\nzero collisions with mixed hardware, as Theorem 2 guarantees."
