(* Hexagonal deployments (Figure 1, right).

   The theory works in basis coordinates, so the hexagonal lattice is
   just Z^2 with a different geometric embedding.  An omnidirectional
   radio of range rho interferes with the lattice points inside a
   Euclidean disk - on the hexagonal lattice these balls have
   1, 7, 13, 19, ... points, exactly the cluster sizes i^2 + ij + j^2 of
   classical cellular frequency reuse.  Theorem 1 recovers the cellular
   reuse pattern: the hex ball tiles, and the tiling schedule is the
   reuse assignment with the provably minimal number of slots.

   Run with: dune exec examples/hexagonal_grid.exe *)

open Lattice

let () =
  let hex = Embedding.hexagonal in
  Printf.printf "hexagonal lattice: basis (1,0) and (1/2, sqrt3/2), covolume %.4f\n\n"
    (Embedding.covolume hex);

  (* Nearest-neighbour sanity: six neighbours at distance 1. *)
  let ring1 =
    List.filter
      (fun v -> not (Zgeom.Vec.is_zero v))
      (Prototile.cells (Embedding.geometric_ball hex ~radius:1.01))
  in
  Printf.printf "first ring: %d neighbours, distances:" (List.length ring1);
  List.iter (fun v -> Printf.printf " %.3f" (Embedding.distance hex (Zgeom.Vec.zero 2) v)) ring1;
  print_newline ();
  print_newline ();

  Printf.printf "%-10s %8s %10s %12s %16s\n" "radius" "|N|" "tiles?" "slots" "collision-free";
  List.iter
    (fun radius ->
      let n = Embedding.geometric_ball hex ~radius in
      match Tiling.Search.find_tiling n with
      | None -> Printf.printf "%-10.2f %8d %10s\n" radius (Prototile.size n) "no"
      | Some t ->
        let s = Core.Schedule.of_tiling t in
        Printf.printf "%-10.2f %8d %10s %12d %16b\n" radius (Prototile.size n) "yes"
          (Core.Schedule.num_slots s)
          (Core.Collision.is_collision_free_theorem1 t s))
    [ 1.0; 1.8; 2.0; 2.7 ];
  print_newline ();

  (* The 7-cell flower: the classic reuse-7 cellular pattern. *)
  let flower = Embedding.geometric_ball hex ~radius:1.01 in
  (match Tiling.Search.find_lattice_tiling flower with
  | None -> assert false
  | Some t ->
    let s = Core.Schedule.of_tiling t in
    Printf.printf "reuse-7 pattern (slots of the 7-cell hex ball, basis coordinates):\n%s\n"
      (Render.Ascii.schedule s ~width:14 ~height:8);
    assert (Core.Collision.is_collision_free_theorem1 t s));
  Printf.printf
    "\nhex balls have 3r^2+3r+1 = 7, 19, 37 ... points - the cellular 'cluster\n\
     sizes' i^2+ij+j^2; Theorem 1's schedule is the frequency-reuse pattern.\n"
