(* Mobile sensors (the paper's conclusions): assign slots to locations,
   not to sensors.

   Thirty sensors drift through a field by random waypoints.  Each lattice
   location keeps the slot the tiling schedule gave it; a sensor may send
   only when it sits alone inside an open Voronoi cell owning the current
   slot AND its interference disk fits inside that cell's tile.  The run
   demonstrates the claim that this remains collision-free under motion,
   and measures the price: the fraction of slots in which a sensor is
   allowed to transmit.

   Run with: dune exec examples/mobile_sensors.exe *)

open Lattice

let () =
  (* 2x2 square tiles, schedule period 4. *)
  let prototile = Prototile.rect 2 2 in
  let tiling =
    Tiling.Single.make_exn ~prototile
      ~period:(Sublattice.of_basis [| [| 2; 0 |]; [| 0; 2 |] |])
      ~offsets:[ Zgeom.Vec.zero 2 ]
  in
  Printf.printf "location schedule (slot per lattice point):\n%s\n\n"
    (Render.Ascii.schedule (Core.Schedule.of_tiling tiling) ~width:10 ~height:6);

  (* Sweep the interference radius: larger radii fit the tile less often,
     so eligibility drops; collisions stay at zero throughout. *)
  Printf.printf "%8s  %10s  %10s  %12s  %10s\n" "radius" "attempts" "delivered" "eligible-frac"
    "collisions";
  List.iter
    (fun radius ->
      let r =
        Netsim.Mobile_sim.run
          { tiling; arena_width = 10.0; num_sensors = 30; radius; speed = 0.25; pause = 3;
            send_interval = 8; duration = 2000; seed = 11L }
      in
      Printf.printf "%8.2f  %10d  %10d  %12.3f  %10d\n" radius r.Netsim.Mobile_sim.attempts
        r.Netsim.Mobile_sim.deliveries r.Netsim.Mobile_sim.eligible_slot_fraction
        r.Netsim.Mobile_sim.collisions;
      assert (r.Netsim.Mobile_sim.collisions = 0))
    [ 0.2; 0.4; 0.6; 0.8; 1.0 ];

  print_endline "\nzero collisions at every radius: the location schedule is motion-proof."
