(* Quickstart: build a provably collision-free broadcast schedule for
   sensors on the square lattice whose radios interfere within Chebyshev
   distance 1, then machine-check the theorem's claims.

   Run with: dune exec examples/quickstart.exe *)

open Lattice

let () =
  (* 1. Describe the interference neighborhood N: the 3x3 Chebyshev ball.
     Theorem 1 says the optimal schedule uses exactly |N| = 9 slots. *)
  let n = Prototile.chebyshev_ball ~dim:2 1 in
  Printf.printf "Neighborhood N (|N| = %d):\n%s\n\n" (Prototile.size n) (Render.Ascii.prototile n);

  (* 2. Find a tiling of Z^2 by N.  For this ball the period lattice
     3Z x 3Z works; [find_tiling] discovers it automatically. *)
  let tiling =
    match Tiling.Search.find_tiling n with
    | Some t -> t
    | None -> failwith "N does not tile - no collision-free optimal schedule of this form"
  in
  Format.printf "Found tiling:@.%a@.@." Tiling.Single.pp tiling;

  (* 3. Theorem 1: turn the tiling into a periodic schedule. *)
  let schedule = Core.Schedule.of_tiling tiling in
  Printf.printf "Schedule with m = %d slots on a 12x9 window:\n%s\n\n"
    (Core.Schedule.num_slots schedule)
    (Render.Ascii.schedule schedule ~width:12 ~height:9);

  (* 4. Machine-check collision-freeness (exact, via periodicity). *)
  let ok = Core.Collision.is_collision_free_theorem1 tiling schedule in
  Printf.printf "collision-free: %b\n" ok;
  Printf.printf "optimal: uses %d slots; no collision-free schedule has fewer than %d\n\n"
    (Core.Schedule.num_slots schedule)
    (Core.Optimality.lower_bound n);

  (* 5. A sensor consults the schedule with plain modular arithmetic. *)
  let sensor = Zgeom.Vec.make2 7 4 in
  let slot = Core.Schedule.slot_at schedule sensor in
  Printf.printf "sensor at %s owns slot %d: may send at t = %d, %d, %d, ...\n"
    (Zgeom.Vec.to_string sensor) slot slot (slot + 9) (slot + 18);
  assert (Core.Schedule.may_send schedule sensor ~time:(slot + 9));

  (* 6. Compare against the classical baselines on a 10x10 deployment. *)
  let g, _ = Coloring.Graph.lattice_window ~prototile:n ~width:10 ~height:10 in
  Printf.printf "\nslots needed for 10x10 = 100 sensors:\n";
  Printf.printf "  naive TDMA      : %d\n" (Coloring.Baseline.tdma_slots g);
  Printf.printf "  greedy coloring : %d\n" (Coloring.Greedy.colors_used g `Natural);
  Printf.printf "  DSATUR          : %d\n" (Coloring.Dsatur.colors_used g);
  Printf.printf "  lattice tiling  : %d  (provably optimal, any field size)\n"
    (Coloring.Baseline.tiling_slot_count n)
