(* Figure 5: in the non-respectable case, the optimal slot count depends
   on the tiling.

   Sensors come in two hardware variants whose interference neighborhoods
   are the S and Z tetrominoes (same size, neither contains the other, so
   no tiling that uses both is respectable).  The paper's ground rules:
   every translate of a prototile reuses the same slot pattern; patterns
   of different prototiles are chosen independently.

   We search all periodic S/Z tilings with a 4x4 fundamental domain and
   compute each tiling's exact ground-rule optimum: mixed tilings
   typically need 6 slots while the symmetric pure-S tiling needs only 4
   - scheduling quality is a property of the deployment, not just of the
   hardware.

   Run with: dune exec examples/tetromino_nonrespectable.exe *)

open Lattice

let () =
  let s = Prototile.tetromino `S and z = Prototile.tetromino `Z in
  Printf.printf "S tetromino:\n%s\n\nZ tetromino:\n%s\n\n" (Render.Ascii.prototile s)
    (Render.Ascii.prototile z);

  let period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |] in
  let sols = Tiling.Search.cover_torus ~period ~prototiles:[ s; z ] ~max_solutions:200 () in
  let mixed = List.filter (fun m -> List.length (Tiling.Multi.pieces m) = 2) sols in
  Printf.printf "periodic tilings with 4x4 fundamental domain: %d (%d use both S and Z)\n\n"
    (List.length sols) (List.length mixed);

  (* Tally the ground-rule optima over the mixed tilings. *)
  let tally = Hashtbl.create 4 in
  List.iter
    (fun m ->
      let k = Core.Optimality.ground_rule_minimum m in
      Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    mixed;
  Printf.printf "ground-rule optima over mixed tilings:\n";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort Stdlib.compare
  |> List.iter (fun (k, v) -> Printf.printf "  %d slots: %d tilings\n" k v);

  (* Show one 6-slot mixed tiling with its Theorem-2 schedule. *)
  (match List.find_opt (fun m -> Core.Optimality.ground_rule_minimum m = 6) mixed with
  | None -> print_endline "no 6-slot mixed tiling found (unexpected)"
  | Some m ->
    let sched = Core.Schedule.of_multi m in
    assert (Core.Collision.is_collision_free_multi m sched);
    Printf.printf
      "\na mixed tiling needing 6 slots (S tiles: a-m, Z tiles: n-z), and its schedule:\n\n%s\n\n%s\n"
      (Render.Ascii.multi_tiling m ~width:12 ~height:8)
      (Render.Ascii.schedule sched ~width:12 ~height:8));

  (* The symmetric pure-S tiling achieves the unconditional lower bound. *)
  (match Tiling.Search.find_lattice_tiling s with
  | None -> assert false
  | Some t ->
    let m = Tiling.Multi.of_single t in
    let opt = Core.Optimality.ground_rule_minimum m in
    let sched = Core.Schedule.of_tiling t in
    assert (Core.Collision.is_collision_free_theorem1 t sched);
    Printf.printf "\npure S tiling: optimum %d slots (= |S|, Theorem 1):\n\n%s\n" opt
      (Render.Ascii.schedule sched ~width:12 ~height:8));

  print_endline "\nmoral: with non-respectable prototiles, pick your tiling carefully."
