(* Where does the shared clock come from?

   The paper assumes "the sensors have access to the current time".
   This example runs the substrate behind that assumption: a root floods
   periodic beacons, staggered by the lattice schedule itself so the
   flood is collision-free; nodes adopt beacon timestamps (with per-hop
   jitter) and drift between waves.  We sweep the resynchronization
   period and watch the residual clock error turn into real schedule
   violations once it crosses half a slot.

   Run with: dune exec examples/time_synchronization.exe *)

open Lattice

let () =
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  let tiling = Option.get (Tiling.Search.find_tiling prototile) in
  let schedule = Core.Schedule.of_tiling tiling in
  let base resync =
    { Netsim.Timesync.width = 12; height = 12; prototile; schedule;
      root = Zgeom.Vec.make2 6 6; resync_period = resync; drift_ppm = 500.0; hop_jitter = 0.02;
      duration = 20_000; seed = 9L }
  in
  Printf.printf "12x12 grid, drift +-500 ppm, hop jitter +-0.02 slots, 20000 slots\n\n";
  Printf.printf "%-14s %12s %12s %14s %12s\n" "resync-period" "max-err" "mean-err" "violations"
    "beacons";
  List.iter
    (fun resync ->
      let r = Netsim.Timesync.run (base resync) in
      let err v = if resync = 0 then "n/a" else Printf.sprintf "%.3f" v in
      Printf.printf "%-14s %12s %12s %14d %12d\n"
        (if resync = 0 then "never" else string_of_int resync)
        (err r.Netsim.Timesync.max_clock_error)
        (err r.Netsim.Timesync.mean_clock_error)
        r.Netsim.Timesync.tdma_violations r.Netsim.Timesync.beacons_sent)
    [ 500; 1000; 2000; 4000; 0 ];
  let r = Netsim.Timesync.run (base 1000) in
  Printf.printf "\nfirst wave reached every node after %d slots.\n" r.Netsim.Timesync.sync_latency;
  Printf.printf
    "\nwhile resync keeps the worst clock error below half a slot, the schedule\n\
     stays collision-free; without resync, drift accumulates and violations appear -\n\
     quantifying exactly how much the paper's 'access to current time' assumption\n\
     is doing.\n"
