lib/coloring/annealing.ml: Array Dsatur Graph List Prng
