lib/coloring/annealing.mli: Graph Prng
