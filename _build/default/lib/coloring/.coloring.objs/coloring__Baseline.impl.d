lib/coloring/baseline.ml: Array Core Fun Graph Lattice
