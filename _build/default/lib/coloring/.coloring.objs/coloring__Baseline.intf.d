lib/coloring/baseline.mli: Graph Lattice
