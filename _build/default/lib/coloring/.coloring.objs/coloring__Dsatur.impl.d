lib/coloring/dsatur.ml: Array Graph Int List Set
