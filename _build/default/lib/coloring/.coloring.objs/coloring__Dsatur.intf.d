lib/coloring/dsatur.mli: Graph
