lib/coloring/graph.ml: Array Hashtbl Int Lattice Prototile Set Vec Zgeom
