lib/coloring/graph.mli: Lattice Zgeom
