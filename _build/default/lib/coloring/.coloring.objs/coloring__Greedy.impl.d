lib/coloring/greedy.ml: Array Fun Graph List Prng Stdlib
