lib/coloring/greedy.mli: Graph Prng
