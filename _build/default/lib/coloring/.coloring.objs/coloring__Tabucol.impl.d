lib/coloring/tabucol.ml: Array Dsatur Graph List Prng
