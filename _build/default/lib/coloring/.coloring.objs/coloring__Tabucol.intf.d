lib/coloring/tabucol.mli: Graph Prng
