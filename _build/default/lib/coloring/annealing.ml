type params = {
  initial_temp : float;
  cooling : float;
  sweeps : int;
  moves_per_sweep : int;
}

let default_params = { initial_temp = 2.0; cooling = 0.92; sweeps = 60; moves_per_sweep = 400 }

(* Conflicts incident to v under [colors] if v had color c. *)
let local_conflicts g colors v c =
  List.fold_left (fun acc u -> if colors.(u) = c then acc + 1 else acc) 0 (Graph.neighbors g v)

let solve_k ?(params = default_params) rng g k =
  if k <= 0 then None
  else begin
    let n = Graph.size g in
    let colors = Array.init n (fun _ -> Prng.Xoshiro.int rng k) in
    let energy = ref (Graph.conflict_edges g colors) in
    let best = Array.copy colors in
    let best_energy = ref !energy in
    let temp = ref params.initial_temp in
    (try
       for _sweep = 1 to params.sweeps do
         for _move = 1 to params.moves_per_sweep do
           if !energy = 0 then raise Exit;
           let v = Prng.Xoshiro.int rng n in
           let c = Prng.Xoshiro.int rng k in
           if c <> colors.(v) then begin
             let delta = local_conflicts g colors v c - local_conflicts g colors v colors.(v) in
             if delta <= 0 || Prng.Xoshiro.float rng 1.0 < exp (-.float_of_int delta /. !temp)
             then begin
               colors.(v) <- c;
               energy := !energy + delta;
               if !energy < !best_energy then begin
                 best_energy := !energy;
                 Array.blit colors 0 best 0 n
               end
             end
           end
         done;
         temp := !temp *. params.cooling
       done
     with Exit -> ());
    if !energy = 0 then Some colors else if !best_energy = 0 then Some best else None
  end

let min_colors ?(params = default_params) rng g =
  let start = Dsatur.colors_used g in
  let rec descend k best =
    if k < 1 then best
    else
      match solve_k ~params rng g k with
      | Some _ -> descend (k - 1) k
      | None -> best
  in
  descend (start - 1) start
