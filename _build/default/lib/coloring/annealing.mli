(** Simulated annealing for broadcast scheduling.

    Stands in for the mean-field-annealing (Wang-Ansari 1997) and
    neural-network (Shi-Wang 2005) heuristics the paper cites: fix a slot
    count [k], minimize the number of conflicting edges by random
    recoloring with a geometric cooling schedule, and lower [k] while a
    zero-conflict solution is found. *)

type params = {
  initial_temp : float;
  cooling : float;  (** multiplier per sweep, e.g. 0.95 *)
  sweeps : int;  (** temperature steps *)
  moves_per_sweep : int;
}

val default_params : params

val solve_k : ?params:params -> Prng.Xoshiro.t -> Graph.t -> int -> int array option
(** A zero-conflict coloring with at most [k] colors, if annealing finds
    one. *)

val min_colors : ?params:params -> Prng.Xoshiro.t -> Graph.t -> int
(** Start from a DSATUR solution and decrease [k] until annealing fails;
    returns the best (smallest) successful [k]. *)
