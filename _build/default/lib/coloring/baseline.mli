(** The remaining reference points of the paper's introduction.

    - Plain TDMA gives every sensor its own slot: period [k] for [k]
      sensors - correct but "does not scale" (the intro's complaint).
    - The exact chromatic number (branch and bound, small instances only)
      certifies heuristic quality.
    - [tiling_slot_count] is the paper's answer: [|N|], independent of
      the deployment size. *)

val tdma_slots : Graph.t -> int
(** [= Graph.size]: one slot per sensor. *)

val tdma_coloring : Graph.t -> int array

val exact_min_colors : Graph.t -> int
(** Exact chromatic number (exponential; keep graphs small). *)

val tiling_slot_count : Lattice.Prototile.t -> int
(** [|N|]: the slot count of the tiling schedule, for any field size. *)
