module IntSet = Set.Make (Int)

let color g =
  let n = Graph.size g in
  let colors = Array.make n (-1) in
  let sat = Array.make n IntSet.empty in
  for _ = 1 to n do
    (* Highest saturation, ties by degree. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if colors.(v) < 0 then
        if !best < 0
           || IntSet.cardinal sat.(v) > IntSet.cardinal sat.(!best)
           || (IntSet.cardinal sat.(v) = IntSet.cardinal sat.(!best)
              && Graph.degree g v > Graph.degree g !best)
        then best := v
    done;
    let v = !best in
    let c = ref 0 in
    while IntSet.mem !c sat.(v) do
      incr c
    done;
    colors.(v) <- !c;
    List.iter (fun u -> sat.(u) <- IntSet.add !c sat.(u)) (Graph.neighbors g v)
  done;
  assert (Graph.is_proper g colors);
  colors

let colors_used g = Graph.num_colors (color g)
