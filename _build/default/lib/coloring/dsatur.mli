(** DSATUR (Brelaz 1979): color next the vertex with the most distinct
    colors among its neighbors (highest saturation), breaking ties by
    degree.  A strong general-purpose heuristic for broadcast
    scheduling instances. *)

val color : Graph.t -> int array
val colors_used : Graph.t -> int
