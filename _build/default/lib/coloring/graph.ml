open Zgeom
open Lattice

type t = { n : int; adj : bool array array; deg : int array }

let of_adj adj =
  let n = Array.length adj in
  Array.iteri
    (fun i row ->
      assert (Array.length row = n);
      assert (not row.(i));
      Array.iteri (fun j v -> assert (v = adj.(j).(i))) row)
    adj;
  let deg = Array.map (fun row -> Array.fold_left (fun a b -> if b then a + 1 else a) 0 row) adj in
  { n; adj; deg }

let lattice_window ~prototile ~width ~height =
  assert (Prototile.dim prototile = 2);
  let sensors =
    Array.init (width * height) (fun i -> Vec.make2 (i mod width) (i / width))
  in
  let diff = Prototile.difference_set prototile in
  let n = Array.length sensors in
  let adj = Array.make_matrix n n false in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.add index_of v i) sensors;
  Array.iteri
    (fun i v ->
      Vec.Set.iter
        (fun d ->
          if not (Vec.is_zero d) then
            match Hashtbl.find_opt index_of (Vec.add v d) with
            | Some j -> adj.(i).(j) <- true
            | None -> ())
        diff)
    sensors;
  (of_adj adj, sensors)

let size g = g.n
let adj g = g.adj
let degree g v = g.deg.(v)
let max_degree g = Array.fold_left max 0 g.deg
let num_edges g = Array.fold_left ( + ) 0 g.deg / 2

let neighbors g v =
  let out = ref [] in
  for u = g.n - 1 downto 0 do
    if g.adj.(v).(u) then out := u :: !out
  done;
  !out

let is_proper g colors =
  Array.length colors = g.n
  && Array.for_all (fun c -> c >= 0) colors
  &&
  let ok = ref true in
  for i = 0 to g.n - 1 do
    for j = i + 1 to g.n - 1 do
      if g.adj.(i).(j) && colors.(i) = colors.(j) then ok := false
    done
  done;
  !ok

let num_colors colors =
  let module S = Set.Make (Int) in
  S.cardinal (Array.fold_left (fun s c -> S.add c s) S.empty colors)

let conflict_edges g colors =
  let bad = ref 0 in
  for i = 0 to g.n - 1 do
    for j = i + 1 to g.n - 1 do
      if g.adj.(i).(j) && colors.(i) = colors.(j) then incr bad
    done
  done;
  !bad
