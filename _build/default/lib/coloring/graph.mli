(** Conflict graphs for broadcast scheduling.

    The paper reduces collision-free scheduling to distance-2 coloring of
    the communication graph; equivalently, to ordinary coloring of the
    {e conflict graph} in which two sensors are adjacent iff their
    interference ranges intersect.  This module materializes that graph
    for finite deployments so the classical baselines (greedy heuristics,
    DSATUR, simulated annealing, exact search) can be compared against
    the tiling schedule. *)

type t

val of_adj : bool array array -> t
(** Takes an adjacency matrix (must be symmetric, irreflexive). *)

val lattice_window :
  prototile:Lattice.Prototile.t -> width:int -> height:int -> t * Zgeom.Vec.t array
(** Conflict graph of the sensors in a [width x height] 2-D grid, all with
    the given neighborhood; returns the graph and the position of each
    vertex. *)

val size : t -> int
val adj : t -> bool array array
val degree : t -> int -> int
val max_degree : t -> int
val num_edges : t -> int
val neighbors : t -> int -> int list

val is_proper : t -> int array -> bool
(** No edge joins equal colors; every vertex colored (>= 0). *)

val num_colors : int array -> int
(** Number of distinct colors used. *)

val conflict_edges : t -> int array -> int
(** Edges whose endpoints share a color (annealing's energy). *)
