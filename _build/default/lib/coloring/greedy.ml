type order = [ `Natural | `Random of Prng.Xoshiro.t | `LargestFirst ]

let ordering g = function
  | `Natural -> Array.init (Graph.size g) Fun.id
  | `Random rng ->
    let a = Array.init (Graph.size g) Fun.id in
    Prng.Xoshiro.shuffle rng a;
    a
  | `LargestFirst ->
    let a = Array.init (Graph.size g) Fun.id in
    Array.sort (fun u v -> Stdlib.compare (Graph.degree g v) (Graph.degree g u)) a;
    a

let color g order =
  let n = Graph.size g in
  let colors = Array.make n (-1) in
  let forbidden = Array.make (n + 1) (-1) in
  Array.iter
    (fun v ->
      List.iter
        (fun u -> if colors.(u) >= 0 then forbidden.(colors.(u)) <- v)
        (Graph.neighbors g v);
      let c = ref 0 in
      while forbidden.(!c) = v do
        incr c
      done;
      colors.(v) <- !c)
    (ordering g order);
  assert (Graph.is_proper g colors);
  colors

let colors_used g order = Graph.num_colors (color g order)
