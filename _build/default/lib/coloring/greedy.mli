(** Sequential (greedy) coloring heuristics.

    Each vertex, in some order, takes the smallest color unused by its
    already-colored neighbors.  Uses at most [max_degree + 1] colors; the
    order is the whole heuristic:

    - [`Natural]: index order (row-major scan of a window),
    - [`Random]: uniformly random permutation,
    - [`LargestFirst]: non-increasing degree (Welsh-Powell). *)

type order = [ `Natural | `Random of Prng.Xoshiro.t | `LargestFirst ]

val color : Graph.t -> order -> int array
(** A proper coloring (checked by assertion). *)

val colors_used : Graph.t -> order -> int
