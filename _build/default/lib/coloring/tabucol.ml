type params = { max_iters : int; tenure_base : int }

let default_params = { max_iters = 20_000; tenure_base = 7 }

let solve_k ?(params = default_params) rng g k =
  if k <= 0 then None
  else begin
    let n = Graph.size g in
    let colors = Array.init n (fun _ -> Prng.Xoshiro.int rng k) in
    (* conflicts.(v).(c): neighbours of v currently coloured c. *)
    let conflicts = Array.make_matrix n k 0 in
    for v = 0 to n - 1 do
      List.iter (fun u -> conflicts.(v).(colors.(u)) <- conflicts.(v).(colors.(u)) + 1) (Graph.neighbors g v)
    done;
    let energy = ref (Graph.conflict_edges g colors) in
    let best_energy = ref !energy in
    let tabu = Array.make_matrix n k 0 in
    let iter = ref 0 in
    while !energy > 0 && !iter < params.max_iters do
      incr iter;
      (* Best non-tabu move among conflicted vertices (aspiration: a move
         reaching a new global best is always allowed). *)
      let bv = ref (-1) and bc = ref (-1) and bdelta = ref max_int in
      for v = 0 to n - 1 do
        if conflicts.(v).(colors.(v)) > 0 then
          for c = 0 to k - 1 do
            if c <> colors.(v) then begin
              let delta = conflicts.(v).(c) - conflicts.(v).(colors.(v)) in
              let allowed =
                tabu.(v).(c) < !iter || !energy + delta < !best_energy
              in
              if allowed
                 && (delta < !bdelta
                    || (delta = !bdelta && Prng.Xoshiro.bool rng))
              then begin
                bv := v;
                bc := c;
                bdelta := delta
              end
            end
          done
      done;
      if !bv >= 0 then begin
        let v = !bv and c = !bc in
        let old = colors.(v) in
        colors.(v) <- c;
        List.iter
          (fun u ->
            conflicts.(u).(old) <- conflicts.(u).(old) - 1;
            conflicts.(u).(c) <- conflicts.(u).(c) + 1)
          (Graph.neighbors g v);
        energy := !energy + !bdelta;
        if !energy < !best_energy then best_energy := !energy;
        (* Forbid moving v back to its old color for a while. *)
        tabu.(v).(old) <- !iter + params.tenure_base + (!energy / 10)
      end
      else
        (* Everything tabu: random restart kick. *)
        let v = Prng.Xoshiro.int rng n in
        let c = Prng.Xoshiro.int rng k in
        let old = colors.(v) in
        if c <> old then begin
          colors.(v) <- c;
          List.iter
            (fun u ->
              conflicts.(u).(old) <- conflicts.(u).(old) - 1;
              conflicts.(u).(c) <- conflicts.(u).(c) + 1)
            (Graph.neighbors g v);
          energy := Graph.conflict_edges g colors
        end
    done;
    if !energy = 0 then Some colors else None
  end

let min_colors ?(params = default_params) rng g =
  let start = Dsatur.colors_used g in
  let rec descend k best =
    if k < 1 then best
    else
      match solve_k ~params rng g k with
      | Some _ -> descend (k - 1) k
      | None -> best
  in
  descend (start - 1) start
