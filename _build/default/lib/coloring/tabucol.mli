(** TabuCol (Hertz & de Werra 1987): tabu search for graph coloring.

    Like {!Annealing}, a stand-in for the local-search heuristics the
    broadcast-scheduling literature applies to distance-2 coloring.  With
    [k] colors fixed, repeatedly move the (vertex, color) pair that most
    reduces the number of conflicting edges, forbidding the reversal of a
    move for a short adaptive tenure; aspiration overrides the tabu when
    a move reaches a new best. *)

type params = {
  max_iters : int;
  tenure_base : int;  (** tabu tenure = tenure_base + conflicts/10 *)
}

val default_params : params

val solve_k : ?params:params -> Prng.Xoshiro.t -> Graph.t -> int -> int array option
(** A conflict-free [k]-coloring if found within the iteration budget. *)

val min_colors : ?params:params -> Prng.Xoshiro.t -> Graph.t -> int
(** Descend from a DSATUR solution; smallest [k] tabu search certifies. *)
