lib/core/analysis.ml: Lattice
