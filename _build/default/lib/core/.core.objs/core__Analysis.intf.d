lib/core/analysis.mli: Lattice
