lib/core/certificate.ml: Codec Collision Format Lattice List Prototile Result Schedule String Tiling Vec Zgeom
