lib/core/certificate.mli: Collision Format Lattice Schedule Tiling Zgeom
