lib/core/codec.ml: Array Buffer Lattice List Printf Prototile Result Schedule String Sublattice Tiling Vec Zgeom
