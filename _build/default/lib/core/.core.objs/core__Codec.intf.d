lib/core/codec.mli: Lattice Schedule Tiling Zgeom
