lib/core/collision.ml: Array Format Lattice List Prototile Schedule Sublattice Tiling Vec Zgeom
