lib/core/collision.mli: Format Lattice Schedule Tiling Zgeom
