lib/core/finite.ml: Array Int Lattice List Optimality Prototile Schedule Set Tiling Vec Zgeom
