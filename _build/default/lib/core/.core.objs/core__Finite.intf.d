lib/core/finite.mli: Lattice Tiling Zgeom
