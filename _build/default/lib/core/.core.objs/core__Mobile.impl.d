lib/core/mobile.ml: Float Lattice List Prototile Schedule Tiling Voronoi
