lib/core/mobile.mli: Lattice Schedule Tiling Zgeom
