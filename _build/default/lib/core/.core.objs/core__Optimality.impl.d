lib/core/optimality.ml: Array Fun Lattice List Prototile Stdlib Sublattice Tiling Vec Zgeom
