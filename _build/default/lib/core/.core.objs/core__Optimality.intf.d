lib/core/optimality.mli: Lattice Tiling
