lib/core/schedule.ml: Array Format Lattice List Stdlib Sublattice Tiling Vec Zgeom
