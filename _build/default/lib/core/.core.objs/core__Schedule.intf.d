lib/core/schedule.mli: Format Lattice Tiling Zgeom
