let worst_case_latency ~m =
  assert (m > 0);
  m - 1

let mean_latency_uniform_arrival ~m =
  assert (m > 0);
  float_of_int (m - 1) /. 2.0

let per_node_capacity ~m =
  assert (m > 0);
  1.0 /. float_of_int m

let is_stable ~m ~interval = interval >= m

let saturated_energy_per_slot p ~nodes ~model_tx ~model_rx ~model_idle =
  let m = float_of_int (Lattice.Prototile.size p) in
  let n = float_of_int nodes in
  let tx = n /. m in
  (* Ranges of simultaneous senders are disjoint, so receiver counts just
     add up: each sender wakes |N| - 1 listeners. *)
  let rx = tx *. (m -. 1.0) in
  (tx *. model_tx) +. (rx *. model_rx) +. ((n -. tx -. rx) *. model_idle)
