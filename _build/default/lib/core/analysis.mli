(** Closed-form performance of tiling schedules.

    Because the schedule is deterministic with period [m = |N|], its
    performance is analysis, not measurement - and the simulator should
    agree with the formulas (tests cross-validate):

    - a packet arriving at a uniformly random slot waits
      [mean = (m - 1) / 2] slots, never more than [m - 1];
    - each sensor can ship one packet per period: capacity [1 / m]
      packets/slot, so periodic traffic with interval [>= m] is stable;
    - in a saturated collision-free schedule the interference ranges of
      simultaneous senders are disjoint (Theorem 1's re-tiling
      observation, Figure 3 right), so energy per slot has a closed
      form too. *)

val worst_case_latency : m:int -> int
(** [m - 1] slots. *)

val mean_latency_uniform_arrival : m:int -> float
(** [(m - 1) / 2] slots. *)

val per_node_capacity : m:int -> float
(** Packets per slot per sensor, [1 / m]. *)

val is_stable : m:int -> interval:int -> bool
(** Periodic per-node traffic with the given interval does not build
    queues iff [interval >= m]. *)

val saturated_energy_per_slot :
  Lattice.Prototile.t -> nodes:int -> model_tx:float -> model_rx:float -> model_idle:float -> float
(** Expected energy per slot for a saturated field of [nodes] sensors on
    an interior window: [nodes / m] transmit, each reaching [|N| - 1]
    receivers with disjoint ranges, everyone else idles.  Boundary
    effects make a finite simulation slightly cheaper. *)
