(** Machine-checkable optimality certificates.

    A claim like "this 9-slot schedule is collision-free and optimal"
    deserves evidence that a small, independent checker can validate
    without trusting the constructing code.  A certificate packages:

    - the schedule (upper bound: [m] slots suffice), and
    - a {e clique}: [m] sensor positions that pairwise interfere, each
      pair witnessed by a point in both ranges (lower bound: fewer than
      [m] slots force two clique members into one slot, colliding at the
      witness - the proof of Theorem 1, made concrete).

    [check] re-verifies everything from first principles: witnesses are
    recomputed from raw set arithmetic, collision-freeness by the exact
    periodic check.  Certificates serialize via {!to_string} so they can
    accompany a deployed schedule. *)

type t = {
  prototile : Lattice.Prototile.t;
  schedule : Schedule.t;
  clique : Zgeom.Vec.t list;  (** [m] pairwise-interfering positions *)
}

val build : Tiling.Single.t -> t
(** Certificate for the Theorem-1 schedule of a tiling: the clique is the
    tile at the origin's translation ([N] itself). *)

type failure =
  | Wrong_clique_size of int * int  (** expected, got *)
  | Not_a_clique of Zgeom.Vec.t * Zgeom.Vec.t  (** a non-interfering pair *)
  | Not_collision_free of Collision.violation

val check : t -> (unit, failure) result
(** Full independent re-verification. *)

val pp_failure : Format.formatter -> failure -> unit

val to_string : t -> string
val of_string : string -> (t, string) result
