(** Serialization of schedules and their ingredients.

    A deployed sensor needs only three things to run the paper's
    protocol: the period basis (HNF rows), the slot count [m], and the
    coset-indexed slot table.  [schedule_to_string] packs exactly that
    into one printable line; [schedule_of_string] restores it.  The
    formats are versioned, human-readable and stable:

    {v
    tilesched/v1;dim=2;m=9;basis=3,0;0,3;table=0,1,2,3,4,5,6,7,8
    v}

    [prototile_*] and [tiling_*] round-trip the other artifacts for
    configuration files; [csv_assignment] exports a per-sensor slot
    table for external tooling. *)

val prototile_to_string : Lattice.Prototile.t -> string
val prototile_of_string : string -> (Lattice.Prototile.t, string) result

val schedule_to_string : Schedule.t -> string
val schedule_of_string : string -> (Schedule.t, string) result

val tiling_to_string : Tiling.Single.t -> string
val tiling_of_string : string -> (Tiling.Single.t, string) result

val csv_assignment : Schedule.t -> domain:Zgeom.Vec.t list -> string
(** One line per sensor: its coordinates then its slot, e.g. "3,4,7". *)
