open Zgeom
open Lattice

type violation = {
  sender_a : Vec.t;
  sender_b : Vec.t;
  slot : int;
  witness : Vec.t;
}

let pp_violation fmt v =
  Format.fprintf fmt "slot %d: senders %a and %a both reach %a" v.slot Vec.pp v.sender_a
    Vec.pp v.sender_b Vec.pp v.witness

let range_witness na u nb v =
  (* A point of (u + Na) n (v + Nb), if any. *)
  let rb = Prototile.translate v nb in
  Vec.Set.fold
    (fun a acc ->
      match acc with
      | Some _ -> acc
      | None ->
        let w = Vec.add u a in
        if Vec.Set.mem w rb then Some w else None)
    (Prototile.cell_set na) None

let violations ~neighborhoods ~diff_bound schedule =
  let period = Schedule.period schedule in
  let out = ref [] in
  List.iter
    (fun u ->
      let su = Schedule.slot_at schedule u in
      let nu = neighborhoods u in
      Vec.Set.iter
        (fun d ->
          if not (Vec.is_zero d) then begin
            let v = Vec.add u d in
            if Schedule.slot_at schedule v = su then begin
              let nv = neighborhoods v in
              match range_witness nu u nv v with
              | Some w -> out := { sender_a = u; sender_b = v; slot = su; witness = w } :: !out
              | None -> ()
            end
          end)
        diff_bound)
    (Sublattice.cosets period);
  List.rev !out

let violations_theorem1 tiling schedule =
  let n = Tiling.Single.prototile tiling in
  violations
    ~neighborhoods:(fun _ -> n)
    ~diff_bound:(Prototile.difference_set n)
    schedule

let is_collision_free_theorem1 tiling schedule = violations_theorem1 tiling schedule = []

let union_prototile multi =
  Prototile.of_cells (Tiling.Multi.union_cells multi)

let violations_multi multi schedule =
  let tiles = Array.of_list (Tiling.Multi.prototiles multi) in
  let neighborhoods v =
    let k, _, _ = Tiling.Multi.tile_of multi v in
    tiles.(k)
  in
  let u = union_prototile multi in
  violations ~neighborhoods ~diff_bound:(Prototile.difference_set u) schedule

let is_collision_free_multi multi schedule = violations_multi multi schedule = []

let drift_violations tiling schedule ~drift_at ~horizon =
  let n = Tiling.Single.prototile tiling in
  let diff = Prototile.difference_set n in
  let period = Schedule.period schedule in
  let out = ref [] in
  for time = 0 to horizon - 1 do
    List.iter
      (fun u ->
        if Schedule.with_drift schedule ~drift_at u ~time then
          Vec.Set.iter
            (fun d ->
              if not (Vec.is_zero d) then begin
                let v = Vec.add u d in
                if Schedule.with_drift schedule ~drift_at v ~time then
                  match range_witness n u n v with
                  | Some w ->
                    out :=
                      { sender_a = u; sender_b = v; slot = time mod Schedule.num_slots schedule;
                        witness = w }
                      :: !out
                  | None -> ()
              end)
            diff)
      (Sublattice.cosets period)
  done;
  List.rev !out
