(** Machine-checking collision-freeness.

    The collision model of the paper's introduction: sensors [u <> v]
    broadcasting in the same slot cause a collision problem iff their
    interference ranges intersect, [(u + N_u) n (v + N_v) <> 0].  (Both
    hardware problems of the introduction - a sender inside the other's
    range, and a common third receiver - are instances of the
    intersection being non-empty, because a sender belongs to its own
    range.)

    For periodic schedules and bounded neighborhoods the check is exact
    and finite: any colliding pair satisfies [v - u in N_u - N_v], and by
    periodicity [u] may range over coset representatives only.  No window
    truncation is involved - a [\[\]] result is a proof. *)

type violation = {
  sender_a : Zgeom.Vec.t;
  sender_b : Zgeom.Vec.t;
  slot : int;
  witness : Zgeom.Vec.t;  (** A point in both interference ranges. *)
}

val pp_violation : Format.formatter -> violation -> unit

val violations :
  neighborhoods:(Zgeom.Vec.t -> Lattice.Prototile.t) ->
  diff_bound:Zgeom.Vec.Set.t ->
  Schedule.t ->
  violation list
(** All same-slot interference overlaps, up to the schedule's periodicity:
    pairs are reported with [sender_a] a canonical coset representative.
    [neighborhoods] gives each position's prototile (heterogeneous
    deployments per rule D1 are expressed here); [diff_bound] must contain
    every possible difference [v - u] of a colliding pair, e.g. the
    difference set of the union of all prototiles in play. *)

val is_collision_free_theorem1 : Tiling.Single.t -> Schedule.t -> bool
(** Homogeneous deployment with the tiling's prototile (Theorem 1
    setting). *)

val violations_theorem1 : Tiling.Single.t -> Schedule.t -> violation list

val is_collision_free_multi : Tiling.Multi.t -> Schedule.t -> bool
(** Deployment rule D1: the sensor at a point covered by a type-[k] tile
    has neighborhood [N_k] (Theorem 2 setting). *)

val violations_multi : Tiling.Multi.t -> Schedule.t -> violation list

val drift_violations :
  Tiling.Single.t -> Schedule.t -> drift_at:(Zgeom.Vec.t -> int) -> horizon:int -> violation list
(** Fault injection: with per-sensor clock drift, report interference
    overlaps among sensors that believe they may send at the same true
    time, over times [0..horizon-1]. Zero drift gives []. *)
