(** Restriction to finitely many sensors (paper conclusions, paragraph 1).

    Real deployments are finite subsets [D] of the lattice.  Restricting a
    Theorem-1/2 schedule to [D] trivially stays collision-free; the
    interesting question is optimality.  The paper's criterion: if [D]
    contains a translate of [N1 + N1] (the respectable prototile and its
    neighbours), the [m = |N1|] lower bound still applies, because the
    translate contains a full tile whose sensors pairwise interfere {e
    with witnesses inside D}.  Small domains can genuinely do better;
    {!optimal_slots} computes the exact finite optimum (a distance-2
    chromatic number) so experiments can exhibit both regimes. *)

type domain = Zgeom.Vec.Set.t

val box : lo:Zgeom.Vec.t -> hi:Zgeom.Vec.t -> domain
(** All lattice points with [lo <= v <= hi] componentwise. *)

val contains_translate : domain -> Zgeom.Vec.Set.t -> bool
(** [contains_translate d s]: is there [t] with [t + s] a subset of [d]? *)

val meets_optimality_criterion : domain -> Lattice.Prototile.t -> bool
(** The paper's sufficient condition: [D] contains a translate of
    [N1 + N1]. *)

val conflict_adj :
  neighborhood:(Zgeom.Vec.t -> Lattice.Prototile.t) ->
  Zgeom.Vec.t array ->
  bool array array
(** Conflict-graph adjacency over the given sensors: [u ~ v] iff their
    interference ranges intersect (witness may be any lattice point -
    within a domain the witness must itself host a sensor, so this is the
    conservative variant; see {!conflict_adj_witnessed}). *)

val conflict_adj_witnessed :
  neighborhood:(Zgeom.Vec.t -> Lattice.Prototile.t) ->
  Zgeom.Vec.t array ->
  bool array array
(** [u ~ v] iff some sensor position of the array lies in both ranges:
    the collision problems of the paper's introduction restricted to
    sensors that exist. *)

val optimal_slots :
  ?witnessed:bool ->
  neighborhood:(Zgeom.Vec.t -> Lattice.Prototile.t) ->
  domain ->
  int
(** Exact minimum number of slots for a collision-free periodic schedule
    of the finite domain (chromatic number of the conflict graph;
    exponential-time exact search - keep domains small).
    [witnessed] (default true) uses {!conflict_adj_witnessed}. *)

val restriction_is_optimal : Tiling.Single.t -> domain -> bool
(** Does the restricted Theorem-1 schedule use the finite optimum? *)
