open Lattice

type t = { tiling : Tiling.Single.t; schedule : Schedule.t }

let make tiling =
  assert (Tiling.Single.dim tiling = 2);
  { tiling; schedule = Schedule.of_tiling tiling }

let schedule t = t.schedule

let tile_region t p =
  let s, _ = Tiling.Single.tile_of t.tiling p in
  Prototile.translate s (Tiling.Single.prototile t.tiling)

let home _t pos = Voronoi.open_cell_of pos

let eligible_slot t ~pos ~radius =
  match home t pos with
  | None -> None
  | Some p ->
    let region = tile_region t p in
    if Voronoi.disk_fits_in_region region ~center:pos ~radius then
      Some (Schedule.slot_at t.schedule p)
    else None

let eligible t ~pos ~radius ~time =
  match eligible_slot t ~pos ~radius with
  | None -> false
  | Some slot ->
    let m = Schedule.num_slots t.schedule in
    ((time mod m) + m) mod m = slot

let eligible_pairs_disjoint t sensors ~time =
  let senders = List.filter (fun (pos, r) -> eligible t ~pos ~radius:r ~time) sensors in
  let disjoint (p1, r1) (p2, r2) =
    Float.hypot (p1.Voronoi.px -. p2.Voronoi.px) (p1.Voronoi.py -. p2.Voronoi.py) > r1 +. r2 -. 1e-12
  in
  let rec all_pairs = function
    | [] -> true
    | s :: rest -> List.for_all (disjoint s) rest && all_pairs rest
  in
  all_pairs senders
