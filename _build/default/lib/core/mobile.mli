(** Mobile sensors (paper conclusions, paragraph 2).

    Slots are assigned to {e locations} rather than sensors: lattice point
    [p] keeps the slot the tiling schedule gives it.  A sensor at a
    continuous position [s] may send at time [t] iff

    - [s] lies in the {e open} Voronoi cell of some lattice point [p]
      (at most one sensor per cell, boundaries excluded),
    - [t = slot p (mod m)], and
    - the interference disk of [s] fits inside the region [K] of the tile
      containing [p] (union of the Voronoi squares of the tile's cells).

    Any two sensors eligible in the same slot then sit in distinct
    same-slot tiles, whose regions are disjoint by T2 - so their disks are
    disjoint and the schedule is collision-free, whatever the motion.
    {!eligible_pairs_disjoint} machine-checks this on concrete sensor
    populations.  Square lattice, homogeneous prototile. *)

type t

val make : Tiling.Single.t -> t
(** Requires a 2-D tiling. *)

val schedule : t -> Schedule.t

val tile_region : t -> Zgeom.Vec.t -> Zgeom.Vec.Set.t
(** Cells (unit-square centers) of the tile covering the given point. *)

val home : t -> Lattice.Voronoi.point2 -> Zgeom.Vec.t option
(** The lattice point whose open Voronoi cell contains the position. *)

val eligible : t -> pos:Lattice.Voronoi.point2 -> radius:float -> time:int -> bool
(** The full sending rule above. *)

val eligible_slot : t -> pos:Lattice.Voronoi.point2 -> radius:float -> int option
(** The slot in which the sensor would be allowed to send, if any
    (independent of time). *)

val eligible_pairs_disjoint :
  t -> (Lattice.Voronoi.point2 * float) list -> time:int -> bool
(** For a population of (position, radius) sensors: do all pairs eligible
    at [time] have disjoint interference disks? Should always hold. *)
