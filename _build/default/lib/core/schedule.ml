open Zgeom
open Lattice

type t = { period : Sublattice.t; num_slots : int; table : int array }

let of_table ~period ~num_slots table =
  assert (Array.length table = Sublattice.index period);
  assert (Array.for_all (fun s -> 0 <= s && s < num_slots) table);
  { period; num_slots; table = Array.copy table }

let of_tiling tiling =
  let period = Tiling.Single.period tiling in
  let idx = Sublattice.index period in
  let table =
    Array.init idx (fun _ -> 0)
  in
  List.iter
    (fun c -> table.(Sublattice.coset_id period c) <- Tiling.Single.cell_index tiling c)
    (Sublattice.cosets period);
  { period; num_slots = Tiling.Single.slots tiling; table }

let of_multi multi =
  let period = Tiling.Multi.period multi in
  let union = Tiling.Multi.union_cells multi in
  let slot_of_cell n =
    let rec find k = function
      | [] -> assert false
      | c :: rest -> if Vec.equal c n then k else find (k + 1) rest
    in
    find 0 union
  in
  let idx = Sublattice.index period in
  let table = Array.make idx 0 in
  List.iter
    (fun c ->
      let _, _, n = Tiling.Multi.tile_of multi c in
      table.(Sublattice.coset_id period c) <- slot_of_cell n)
    (Sublattice.cosets period);
  { period; num_slots = List.length union; table }

let num_slots t = t.num_slots
let period t = t.period
let slot_at t v = t.table.(Sublattice.coset_id t.period v)

let ( %+ ) a m =
  let r = a mod m in
  if r < 0 then r + m else r

let may_send t v ~time = time %+ t.num_slots = slot_at t v

let slots_used t =
  Array.to_list t.table |> List.sort_uniq Stdlib.compare

let relabel t perm =
  assert (Array.length perm = t.num_slots);
  let seen = Array.make t.num_slots false in
  Array.iter
    (fun v ->
      assert (0 <= v && v < t.num_slots && not seen.(v));
      seen.(v) <- true)
    perm;
  { t with table = Array.map (fun s -> perm.(s)) t.table }

let with_drift t ~drift_at v ~time = may_send t v ~time:(time + drift_at v)

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule: %d slot(s), period index %d@]" t.num_slots
    (Sublattice.index t.period)
