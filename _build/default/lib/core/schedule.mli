(** Deterministic periodic broadcast schedules (Theorems 1 and 2).

    A schedule assigns every lattice point a slot in [{0, ..., m - 1}]; the
    sensor at [v] may broadcast at time [t] iff [t = slot v (mod m)].
    (The paper numbers slots [1..m]; we use [0..m-1].)

    Schedules built here are periodic with respect to the tiling's period
    sublattice, so they are stored as a finite table on the quotient -
    [slot_at] is a coset reduction plus an array read, which is also
    exactly what a deployed sensor would compute from its coordinates.

    - {!of_tiling} implements Theorem 1: cell [n_k] of each tile gets slot
      [k]; [m = |N|] slots; collision-free and optimal.
    - {!of_multi} implements Theorem 2's construction: order the union
      [N = N_1 u ... u N_n = {n_1, ..., n_m}]; within a tile of type [l],
      the sensor at [t_l + n_k] gets slot [k].  [m = |N|], which equals
      [|N_1|] when the tiling is respectable (and the schedule is then
      optimal); the construction stays collision-free in the
      non-respectable case (Figure 5 left), just not necessarily optimal
      for other tilings. *)

type t

val of_tiling : Tiling.Single.t -> t
(** Theorem 1. *)

val of_multi : Tiling.Multi.t -> t
(** Theorem 2's algorithm (also used, as in Figure 5, on non-respectable
    tilings). *)

val of_table : period:Lattice.Sublattice.t -> num_slots:int -> int array -> t
(** Arbitrary periodic schedule from a coset-indexed slot table (for
    baselines and adversarial tests). The array length must equal the
    period's index, entries in [\[0, num_slots)]. *)

val num_slots : t -> int
val period : t -> Lattice.Sublattice.t

val slot_at : t -> Zgeom.Vec.t -> int

val may_send : t -> Zgeom.Vec.t -> time:int -> bool
(** [may_send s v ~time] iff [time mod m = slot_at s v] (time may be any
    integer; negative times follow the same period). *)

val slots_used : t -> int list
(** The distinct slots that actually occur, sorted. *)

val relabel : t -> int array -> t
(** [relabel s perm] renames slot [k] to [perm.(k)]; [perm] must be a
    permutation of [0 .. num_slots - 1].  Relabeling preserves
    collision-freeness (only slot identities change, not which sensors
    share one) - useful to align a chosen slot with an external epoch. *)

val with_drift : t -> drift_at:(Zgeom.Vec.t -> int) -> Zgeom.Vec.t -> time:int -> bool
(** Fault model: the sensor at [v] believes the time is
    [time + drift_at v]. With zero drift this is {!may_send}; tests use it
    to show clock skew breaks collision-freeness. *)

val pp : Format.formatter -> t -> unit
