lib/lattice/boundary_word.ml: Array Polyomino Printf String Vec Zgeom
