lib/lattice/boundary_word.mli: Prototile Zgeom
