lib/lattice/embedding.ml: Float Prototile Vec Zgeom
