lib/lattice/embedding.mli: Prototile Zgeom
