lib/lattice/polyomino.ml: Buffer List Prototile Queue Vec Zgeom
