lib/lattice/polyomino.mli: Prototile
