lib/lattice/prototile.ml: Array Format Fun List Printf Stdlib String Vec Zgeom
