lib/lattice/prototile.mli: Format Zgeom
