lib/lattice/randomtile.ml: Array Prng Prototile Vec Zgeom
