lib/lattice/randomtile.mli: Prng Prototile
