lib/lattice/sublattice.ml: Array Format Fun List Stdlib Vec Zgeom Zmat
