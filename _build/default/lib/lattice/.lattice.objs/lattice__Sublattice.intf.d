lib/lattice/sublattice.mli: Format Zgeom
