lib/lattice/symmetry.ml: List Prototile Vec Zgeom
