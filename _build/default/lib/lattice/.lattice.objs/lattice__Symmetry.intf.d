lib/lattice/symmetry.mli: Prototile Zgeom
