lib/lattice/voronoi.ml: Float List Rat Vec Zgeom
