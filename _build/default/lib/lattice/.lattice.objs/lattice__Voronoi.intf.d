lib/lattice/voronoi.mli: Zgeom
