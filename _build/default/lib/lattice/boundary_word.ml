open Zgeom

type factorization = { start : int; len1 : int; len2 : int; len3 : int }

let complement = function
  | 'u' -> 'd'
  | 'd' -> 'u'
  | 'l' -> 'r'
  | 'r' -> 'l'
  | c -> invalid_arg (Printf.sprintf "Boundary_word.complement: %c" c)

let hat w =
  let n = String.length w in
  String.init n (fun i -> complement w.[n - 1 - i])

let step_vec = function
  | 'u' -> Vec.make2 0 1
  | 'd' -> Vec.make2 0 (-1)
  | 'l' -> Vec.make2 (-1) 0
  | 'r' -> Vec.make2 1 0
  | c -> invalid_arg (Printf.sprintf "Boundary_word.step_vec: %c" c)

let displacement w =
  String.fold_left (fun acc c -> Vec.add acc (step_vec c)) (Vec.zero 2) w

(* A factor [X] starting at cyclic position [i] with hat copy at [j = i +
   n/2] satisfies, for every position [v] in [i, i + len):
   [w.((c - v) mod n) = complement w.(v)] where the anti-diagonal
   [c = i + j + len - 1] depends only on the factor's endpoints.  We
   precompute, per anti-diagonal, the run length of consecutive positions
   satisfying the predicate, so each candidate factor checks in O(1). *)
let search w keep_len3 =
  let n = String.length w in
  if n = 0 || n mod 2 = 1 then None
  else begin
    let half = n / 2 in
    let runs =
      Array.init n (fun c ->
          let arr = Array.make (2 * n) 0 in
          for v = (2 * n) - 1 downto 0 do
            let vm = v mod n in
            let cm = ((c - vm) mod n + n) mod n in
            if w.[cm] = complement w.[vm] then
              arr.(v) <- (if v = (2 * n) - 1 then 1 else min n (arr.(v + 1) + 1))
          done;
          arr)
    in
    let factor_ok s len =
      len = 0
      ||
      let c = ((2 * s) + len + half - 1) mod n in
      runs.(c).(s) >= len
    in
    let found = ref None in
    (try
       for start = 0 to half - 1 do
         for len1 = 1 to half - 1 do
           if factor_ok start len1 then
             for len2 = 1 to half - len1 do
               let len3 = half - len1 - len2 in
               if keep_len3 len3
                  && factor_ok (start + len1) len2
                  && factor_ok (start + len1 + len2) len3
               then begin
                 found := Some { start; len1; len2; len3 };
                 raise Exit
               end
             done
         done
       done
     with Exit -> ());
    !found
  end

let find_factorization w = search w (fun _ -> true)

(* Reference implementation: check each candidate factor against its hat
   copy character by character. *)
let find_factorization_naive w =
  let n = String.length w in
  if n = 0 || n mod 2 = 1 then None
  else begin
    let half = n / 2 in
    let at i = w.[((i mod n) + n) mod n] in
    (* Factor [s, s+len) matches hat at [s + half, s + half + len). *)
    let factor_ok s len =
      let ok = ref true in
      for t = 0 to len - 1 do
        if at (s + half + t) <> complement (at (s + len - 1 - t)) then ok := false
      done;
      !ok
    in
    let found = ref None in
    (try
       for start = 0 to half - 1 do
         for len1 = 1 to half - 1 do
           if factor_ok start len1 then
             for len2 = 1 to half - len1 do
               let len3 = half - len1 - len2 in
               if factor_ok (start + len1) len2 && factor_ok (start + len1 + len2) len3 then begin
                 found := Some { start; len1; len2; len3 };
                 raise Exit
               end
             done
         done
       done
     with Exit -> ());
    !found
  end
let is_pseudo_square w = search w (fun l3 -> l3 = 0) <> None
let is_pseudo_hexagon w = search w (fun l3 -> l3 > 0) <> None

let cyclic_sub w s len =
  let n = String.length w in
  String.init len (fun i -> w.[(s + i) mod n])

let factor_words w f =
  ( cyclic_sub w f.start f.len1,
    cyclic_sub w (f.start + f.len1) f.len2,
    cyclic_sub w (f.start + f.len1 + f.len2) f.len3 )

let translation_vectors w f =
  let x1, x2, x3 = factor_words w f in
  let d1 = displacement x1 and d2 = displacement x2 and d3 = displacement x3 in
  (Vec.add d1 d2, Vec.add d2 d3)

let is_exact_polyomino p =
  assert (Polyomino.is_polyomino p);
  find_factorization (Polyomino.boundary_word p) <> None
