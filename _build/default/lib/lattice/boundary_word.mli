(** The Beauquier-Nivat exactness criterion (Section 3 of the paper).

    A polyomino tiles the plane by translations iff its boundary word [W]
    admits, up to cyclic rotation, a factorization
    [W = X1 X2 X3 hat(X1) hat(X2) hat(X3)] where [hat] is
    reverse-complement ([u <-> d], [l <-> r]) and at most one factor is
    empty: a {e pseudo-hexagon}, or a {e pseudo-square} when [X3] is empty
    (Beauquier-Nivat 1991).  Combined with Wijshoff-van Leeuwen's theorem
    that an exact polyomino always admits a lattice tiling, this gives the
    polynomial-time decision procedure the paper highlights.

    The implementation precomputes, for each anti-diagonal [c] of the
    cyclic word, the run lengths of positions [v] with
    [W(c - v) = complement (W v)]; each candidate factorization then checks
    in O(1), for an O(n^3) total with an O(n^2) table - between the O(n^4)
    naive bound and Gambini-Vuillon's O(n^2). *)

type factorization = {
  start : int;  (** Cyclic start position of [X1]. *)
  len1 : int;  (** |X1| >= 1 *)
  len2 : int;  (** |X2| >= 1 *)
  len3 : int;  (** |X3| >= 0; [0] means pseudo-square. *)
}

val complement : char -> char
(** [u <-> d], [l <-> r]. *)

val hat : string -> string
(** Reverse-complement. *)

val displacement : string -> Zgeom.Vec.t
(** Net displacement of a path word; [0] for a closed boundary. *)

val find_factorization : string -> factorization option
(** BN factorization of a cyclic boundary word, or [None]. *)

val find_factorization_naive : string -> factorization option
(** Reference implementation with direct O(n) factor comparisons (O(n^4)
    total).  Kept for cross-validation (property tests check agreement
    with {!find_factorization}) and for the algorithm-ablation benchmark
    in the harness. *)

val is_pseudo_square : string -> bool
val is_pseudo_hexagon : string -> bool
(** Strict pseudo-hexagon: some factorization with all three factors
    non-empty (a word can be both). *)

val factor_words : string -> factorization -> string * string * string
(** The three factor words [X1, X2, X3] of a factorization. *)

val translation_vectors : string -> factorization -> Zgeom.Vec.t * Zgeom.Vec.t
(** Periods of the induced regular tiling: displacements of [X1 X2] and
    [X2 X3]. These two vectors generate a sublattice that tiles the plane
    with the polyomino (used as a fast path before exhaustive search). *)

val is_exact_polyomino : Prototile.t -> bool
(** End-to-end: boundary word + BN criterion. Requires
    [Polyomino.is_polyomino]. *)
