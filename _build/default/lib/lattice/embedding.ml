open Zgeom

type t = { ux : float; uy : float; vx : float; vy : float; det : float }

let of_basis (ux, uy) (vx, vy) =
  let det = (ux *. vy) -. (uy *. vx) in
  if Float.abs det < 1e-12 then invalid_arg "Embedding.of_basis: dependent basis";
  { ux; uy; vx; vy; det }

let square = of_basis (1.0, 0.0) (0.0, 1.0)
let hexagonal = of_basis (1.0, 0.0) (0.5, sqrt 3.0 /. 2.0)

let position e p =
  let a = float_of_int (Vec.x p) and b = float_of_int (Vec.y p) in
  ((a *. e.ux) +. (b *. e.vx), (a *. e.uy) +. (b *. e.vy))

let coords e (x, y) =
  (((x *. e.vy) -. (y *. e.vx)) /. e.det, ((y *. e.ux) -. (x *. e.uy)) /. e.det)

let dist2 (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  (dx *. dx) +. (dy *. dy)

let nearest e w =
  let a, b = coords e w in
  (* The closest point has coordinates within 1 of the real solution for
     any basis shape; search the 3x3 rounded neighbourhood. *)
  let a0 = int_of_float (Float.round a) and b0 = int_of_float (Float.round b) in
  let best = ref (Vec.make2 a0 b0) in
  let best_d = ref (dist2 w (position e !best)) in
  for da = -1 to 1 do
    for db = -1 to 1 do
      let cand = Vec.make2 (a0 + da) (b0 + db) in
      let d = dist2 w (position e cand) in
      if d < !best_d then begin
        best := cand;
        best_d := d
      end
    done
  done;
  !best

let distance e p q = sqrt (dist2 (position e p) (position e q))

let covolume e = Float.abs e.det

let geometric_ball e ~radius =
  assert (radius >= 0.0);
  (* Conservative coordinate bound: |a|, |b| <= radius * (max row norm of
     the inverse map) + 1. *)
  let inv_norm =
    let r1 = Float.hypot e.vy e.vx and r2 = Float.hypot e.uy e.ux in
    (Float.max r1 r2 /. Float.abs e.det) +. 1.0
  in
  let bound = int_of_float (ceil (radius *. inv_norm)) + 1 in
  let cells = ref [ Vec.zero 2 ] in
  for a = -bound to bound do
    for b = -bound to bound do
      if a <> 0 || b <> 0 then begin
        let p = Vec.make2 a b in
        if dist2 (0.0, 0.0) (position e p) <= (radius *. radius) +. 1e-12 then
          cells := p :: !cells
      end
    done
  done;
  Prototile.of_cells !cells
