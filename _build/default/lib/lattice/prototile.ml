open Zgeom

type t = { dim : int; cells : Vec.Set.t }

let of_set dim cells =
  assert (Vec.Set.mem (Vec.zero dim) cells);
  { dim; cells }

let of_cells = function
  | [] -> invalid_arg "Prototile.of_cells: empty"
  | c :: _ as cs ->
    let dim = Vec.dim c in
    assert (List.for_all (fun v -> Vec.dim v = dim) cs);
    of_set dim (Vec.Set.of_list cs)

let of_cells_anchored = function
  | [] -> invalid_arg "Prototile.of_cells_anchored: empty"
  | c :: _ as cs ->
    let anchor = List.fold_left (fun m v -> if Vec.compare v m < 0 then v else m) c cs in
    of_cells (List.map (fun v -> Vec.sub v anchor) cs)

(* All integer points of the box [-r, r]^d satisfying [keep]. *)
let ball_of ~dim r keep =
  assert (dim > 0 && r >= 0);
  let rec go i acc prefix =
    if i = dim then
      let v = Vec.of_list (List.rev prefix) in
      if keep v then v :: acc else acc
    else
      List.fold_left (fun acc x -> go (i + 1) acc (x :: prefix)) acc
        (List.init ((2 * r) + 1) (fun k -> k - r))
  in
  of_cells (go 0 [] [])

let chebyshev_ball ~dim r = ball_of ~dim r (fun _ -> true)
let euclidean_ball_sq ~dim r2 =
  (* Largest integer radius reaching r2, robust to float rounding. *)
  let r0 = int_of_float (sqrt (float_of_int r2)) in
  let r = if (r0 + 1) * (r0 + 1) <= r2 then r0 + 1 else r0 in
  ball_of ~dim r (fun v -> Vec.norm2_sq v <= r2)
let euclidean_ball ~dim r = euclidean_ball_sq ~dim (r * r)
let manhattan_ball ~dim r = ball_of ~dim r (fun v -> Vec.norm1 v <= r)

let rect w h =
  assert (w > 0 && h > 0);
  of_cells
    (List.concat_map (fun x -> List.init h (fun y -> Vec.make2 x y)) (List.init w Fun.id))

let directional = rect 2 4

let of_ascii picture =
  let lines = String.split_on_char '\n' picture |> List.filter (fun l -> String.trim l <> "") in
  if lines = [] then invalid_arg "Prototile.of_ascii: empty picture";
  let height = List.length lines in
  let cells = ref [] in
  let origin = ref None in
  List.iteri
    (fun row line ->
      String.iteri
        (fun col ch ->
          let v = Vec.make2 col (height - 1 - row) in
          match ch with
          | '#' -> cells := v :: !cells
          | 'O' | 'o' ->
            if !origin <> None then invalid_arg "Prototile.of_ascii: two origins";
            origin := Some v;
            cells := v :: !cells
          | '.' | ' ' -> ()
          | c -> invalid_arg (Printf.sprintf "Prototile.of_ascii: bad character %c" c))
        line)
    lines;
  match !origin with
  | None -> invalid_arg "Prototile.of_ascii: no origin ('O') cell"
  | Some o -> of_cells (List.map (fun v -> Vec.sub v o) !cells)

let shape2 coords = of_cells_anchored (List.map (fun (x, y) -> Vec.make2 x y) coords)

let tetromino = function
  | `I -> shape2 [ (0, 0); (1, 0); (2, 0); (3, 0) ]
  | `O -> shape2 [ (0, 0); (1, 0); (0, 1); (1, 1) ]
  | `T -> shape2 [ (0, 0); (1, 0); (2, 0); (1, 1) ]
  | `S -> shape2 [ (0, 0); (1, 0); (1, 1); (2, 1) ]
  | `Z -> shape2 [ (0, 1); (1, 1); (1, 0); (2, 0) ]
  | `L -> shape2 [ (0, 0); (0, 1); (0, 2); (1, 0) ]
  | `J -> shape2 [ (1, 0); (1, 1); (1, 2); (0, 0) ]

let pentomino = function
  | `F -> shape2 [ (1, 0); (0, 1); (1, 1); (1, 2); (2, 2) ]
  | `I -> shape2 [ (0, 0); (1, 0); (2, 0); (3, 0); (4, 0) ]
  | `L -> shape2 [ (0, 0); (0, 1); (0, 2); (0, 3); (1, 0) ]
  | `N -> shape2 [ (0, 0); (0, 1); (1, 1); (1, 2); (1, 3) ]
  | `P -> shape2 [ (0, 0); (0, 1); (0, 2); (1, 1); (1, 2) ]
  | `T -> shape2 [ (0, 2); (1, 2); (2, 2); (1, 1); (1, 0) ]
  | `U -> shape2 [ (0, 0); (0, 1); (1, 0); (2, 0); (2, 1) ]
  | `V -> shape2 [ (0, 0); (0, 1); (0, 2); (1, 0); (2, 0) ]
  | `W -> shape2 [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2) ]
  | `X -> shape2 [ (1, 0); (0, 1); (1, 1); (2, 1); (1, 2) ]
  | `Y -> shape2 [ (0, 1); (1, 0); (1, 1); (1, 2); (1, 3) ]
  | `Z -> shape2 [ (0, 2); (1, 2); (1, 1); (1, 0); (2, 0) ]

let dim t = t.dim
let size t = Vec.Set.cardinal t.cells
let cells t = Vec.Set.elements t.cells
let cell_set t = t.cells
let mem t v = Vec.Set.mem v t.cells

let bounding_box t =
  let cs = cells t in
  let fold f init = List.fold_left f init cs in
  let lo =
    fold
      (fun acc v -> Vec.of_array (Array.init t.dim (fun i -> min (Vec.coord acc i) (Vec.coord v i))))
      (List.hd cs)
  in
  let hi =
    fold
      (fun acc v -> Vec.of_array (Array.init t.dim (fun i -> max (Vec.coord acc i) (Vec.coord v i))))
      (List.hd cs)
  in
  (lo, hi)

let difference_set t =
  Vec.Set.fold
    (fun a acc -> Vec.Set.fold (fun b acc -> Vec.Set.add (Vec.sub a b) acc) t.cells acc)
    t.cells Vec.Set.empty

let minkowski_sum a b =
  Vec.Set.fold
    (fun x acc -> Vec.Set.fold (fun y acc -> Vec.Set.add (Vec.add x y) acc) b.cells acc)
    a.cells Vec.Set.empty

let translate v t = Vec.Set.map (Vec.add v) t.cells

let subset a b = Vec.Set.subset a.cells b.cells
let equal a b = a.dim = b.dim && Vec.Set.equal a.cells b.cells
let compare a b = Stdlib.compare (a.dim, cells a) (b.dim, cells b)

let rot90 t =
  assert (t.dim = 2);
  { t with cells = Vec.Set.map Vec.rot90 t.cells }

let reflect t =
  assert (t.dim = 2);
  { t with cells = Vec.Set.map Vec.reflect_x t.cells }

let rotations t =
  let r1 = rot90 t in
  let r2 = rot90 r1 in
  let r3 = rot90 r2 in
  List.fold_left (fun acc r -> if List.exists (equal r) acc then acc else r :: acc) [ t ]
    [ r1; r2; r3 ]
  |> List.rev

let pp fmt t =
  assert (t.dim = 2);
  let lo, hi = bounding_box t in
  Format.fprintf fmt "@[<v>";
  for y = Vec.y hi downto Vec.y lo do
    for x = Vec.x lo to Vec.x hi do
      let v = Vec.make2 x y in
      let ch = if Vec.is_zero v && mem t v then 'O' else if mem t v then '#' else '.' in
      Format.pp_print_char fmt ch
    done;
    if y > Vec.y lo then Format.pp_print_cut fmt ()
  done;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
