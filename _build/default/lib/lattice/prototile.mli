(** Prototiles (interference neighborhoods).

    A prototile [N] is a finite subset of [Z^d] containing the origin: the
    set of sensors affected when the sensor at [0] broadcasts.  A sensor at
    [t] affects [t + N].  Everything the scheduling theory needs about [N]
    is combinatorial: its cells, its size [m = |N|] (the slot count of an
    optimal schedule), and its difference set [N - N] (the interference
    relation between sensor positions). *)

type t

(** {1 Construction} *)

val of_cells : Zgeom.Vec.t list -> t
(** Requires the origin to be among the cells (the paper's definition);
    duplicates are merged. All cells must share one dimension. *)

val of_cells_anchored : Zgeom.Vec.t list -> t
(** Like {!of_cells}, but first translates the whole set so the
    lexicographically smallest cell becomes the origin. Useful when
    importing shapes drawn with arbitrary coordinates. *)

val of_ascii : string -> t
(** Parse a shape picture, the inverse of {!pp}: rows top to bottom are
    decreasing [y]; ['#'] is a cell, ['O'] the origin cell (required,
    exactly once), ['.'] and [' '] are empty. Example:

    {v
    ##
    O#
    v}

    Raises [Invalid_argument] on malformed pictures. *)

val chebyshev_ball : dim:int -> int -> t
(** Radius-[r] ball in the l-infinity metric: [(2r+1)^d] cells
    (Figure 2, left). *)

val euclidean_ball : dim:int -> int -> t
(** Integer points with squared l2 norm at most [r^2] (Figure 2, middle:
    [r = 1] gives the 5-cell plus shape in 2-D). *)

val euclidean_ball_sq : dim:int -> int -> t
(** Same with the squared radius given directly, for non-integer radii. *)

val manhattan_ball : dim:int -> int -> t
(** Radius-[r] ball in the l1 metric. *)

val rect : int -> int -> t
(** [rect w h] is the 2-D box [{0..w-1} x {0..h-1}]; origin at a corner. *)

val directional : t
(** The paper's directional-antenna example (Figure 2 right, Figure 3):
    the 2 x 4 block of 8 cells with the sensor at the lower-left corner,
    radiating up and to the right. *)

(** {1 The standard polyomino catalogue (2-D, anchored at the origin)} *)

val tetromino : [ `I | `O | `T | `S | `Z | `L | `J ] -> t

val pentomino : [ `F | `I | `L | `N | `P | `T | `U | `V | `W | `X | `Y | `Z ] -> t

(** {1 Observation} *)

val dim : t -> int

val size : t -> int
(** [|N|]: the optimal number of time slots (Theorem 1). *)

val cells : t -> Zgeom.Vec.t list
(** Sorted lexicographically; contains the origin. *)

val cell_set : t -> Zgeom.Vec.Set.t
val mem : t -> Zgeom.Vec.t -> bool

val bounding_box : t -> Zgeom.Vec.t * Zgeom.Vec.t
(** Componentwise [(min, max)]. *)

val difference_set : t -> Zgeom.Vec.Set.t
(** [N - N]: sensors at [u], [v] have intersecting interference ranges iff
    [u - v] is in this set. Always contains [0] and is symmetric. *)

val minkowski_sum : t -> t -> Zgeom.Vec.Set.t
(** [N + M] as a plain set. *)

val translate : Zgeom.Vec.t -> t -> Zgeom.Vec.Set.t
(** [t + N] as a plain set (not a prototile: it need not contain [0]). *)

val subset : t -> t -> bool
(** [subset n1 n2] iff every cell of [n1] is a cell of [n2]; the
    respectability condition of Section 4 is [subset nk n1] for all [k]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 2-D transformations (require [dim = 2])} *)

val rot90 : t -> t
(** Quarter turn counterclockwise (the origin is fixed, so the result is
    again a prototile). *)

val reflect : t -> t
(** Mirror across the x-axis. *)

val rotations : t -> t list
(** The distinct tiles among the four rotations. *)

val pp : Format.formatter -> t -> unit
(** Multi-line ASCII picture ('#' cells, 'O' the origin). *)

val to_string : t -> string
