open Zgeom

let dirs = [| Vec.make2 1 0; Vec.make2 (-1) 0; Vec.make2 0 1; Vec.make2 0 (-1) |]

let polyomino rng ~cells =
  assert (cells >= 1);
  let shape = ref (Vec.Set.singleton (Vec.zero 2)) in
  while Vec.Set.cardinal !shape < cells do
    let arr = Array.of_list (Vec.Set.elements !shape) in
    let base = Prng.Xoshiro.pick rng arr in
    let candidate = Vec.add base (Prng.Xoshiro.pick rng dirs) in
    shape := Vec.Set.add candidate !shape
  done;
  Prototile.of_cells_anchored (Vec.Set.elements !shape)

let sparse rng ~cells ~spread =
  assert (cells >= 1 && spread >= 0);
  let shape = ref (Vec.Set.singleton (Vec.zero 2)) in
  while Vec.Set.cardinal !shape < cells do
    let x = Prng.Xoshiro.int rng ((2 * spread) + 1) - spread in
    let y = Prng.Xoshiro.int rng ((2 * spread) + 1) - spread in
    shape := Vec.Set.add (Vec.make2 x y) !shape
  done;
  Prototile.of_cells (Vec.Set.elements !shape)
