(** Random prototile generation for property-based testing and fuzzing.

    The growth model: start from the origin and repeatedly glue a unit
    cell onto a uniformly chosen face of the current shape.  Produces
    connected polyominoes of a given size with good shape diversity;
    anchored so the origin is a cell, as prototiles require. *)

val polyomino : Prng.Xoshiro.t -> cells:int -> Prototile.t
(** Random connected polyomino with exactly [cells] cells
    (requires [cells >= 1]). *)

val sparse : Prng.Xoshiro.t -> cells:int -> spread:int -> Prototile.t
(** Random (generally disconnected) prototile: the origin plus
    [cells - 1] further points drawn uniformly from the box
    [[-spread, spread]^2]. Exercises the non-polyomino code paths. *)
