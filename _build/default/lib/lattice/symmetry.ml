open Zgeom

type element = { rotation : int; reflected : bool }

let apply e v =
  let v = if e.reflected then Vec.reflect_x v else v in
  let rec rot k v = if k = 0 then v else rot (k - 1) (Vec.rot90 v) in
  rot (e.rotation mod 4) v

(* Translation-normalized cell set: anchor at the lexicographic minimum. *)
let normalized cells =
  let anchor = Vec.Set.min_elt cells in
  Vec.Set.map (fun v -> Vec.sub v anchor) cells

let group p =
  assert (Prototile.dim p = 2);
  let reference = normalized (Prototile.cell_set p) in
  List.filter
    (fun e ->
      Vec.Set.equal reference (normalized (Vec.Set.map (apply e) (Prototile.cell_set p))))
    (List.concat_map
       (fun reflected -> List.init 4 (fun rotation -> { rotation; reflected }))
       [ false; true ])

let order p = List.length (group p)

let rotations_in_group p =
  List.length (List.filter (fun e -> not e.reflected) (group p))

let distinct_orientations p = 4 / rotations_in_group p

let is_symmetric_under_rotation p = rotations_in_group p > 1
