(** Symmetries of 2-D prototiles.

    The symmetry group of a prototile is the subgroup of the square
    lattice's point group D4 (rotations by 90 degrees and reflections)
    whose elements map the cell set to a translate of itself.  Antenna
    reading: the radiation pattern's symmetry.  Scheduling reading:
    symmetric prototiles admit symmetric tilings and the symmetry class
    determines how many genuinely different rotated deployments exist
    (Section 4's motivation for multiple prototiles). *)

type element = {
  rotation : int;  (** quarter turns, 0-3 *)
  reflected : bool;  (** composed with the x-axis mirror (applied first) *)
}

val apply : element -> Zgeom.Vec.t -> Zgeom.Vec.t

val group : Prototile.t -> element list
(** The elements of D4 fixing the prototile up to translation; always
    contains the identity, and its size divides 8. *)

val order : Prototile.t -> int

val distinct_orientations : Prototile.t -> int
(** Number of genuinely different rotated versions: [4 / |rotations in
    the group|]. A fully symmetric ball has 1; the S tetromino has 2; an
    L shape has 4. *)

val is_symmetric_under_rotation : Prototile.t -> bool
(** Has a non-trivial rotation symmetry. *)
