open Zgeom

type point2 = { px : float; py : float }

let embed_square v = { px = float_of_int (Vec.x v); py = float_of_int (Vec.y v) }

let sqrt3_over_2 = sqrt 3.0 /. 2.0

let embed_hex v =
  let a = float_of_int (Vec.x v) and b = float_of_int (Vec.y v) in
  { px = a +. (b /. 2.0); py = b *. sqrt3_over_2 }

let square_cell_corners v =
  let x = Rat.of_int (Vec.x v) and y = Rat.of_int (Vec.y v) in
  let xm = Rat.sub x Rat.half and xp = Rat.add x Rat.half in
  let ym = Rat.sub y Rat.half and yp = Rat.add y Rat.half in
  [ (xm, ym); (xp, ym); (xp, yp); (xm, yp) ]

(* Regular hexagon with inradius 1/2 (neighbour distance 1), flat sides
   facing the six lattice neighbours. *)
let hex_cell_corners v =
  let c = embed_hex v in
  let circumradius = 1.0 /. sqrt 3.0 in
  List.init 6 (fun k ->
      let angle = (Float.pi /. 6.0) +. (float_of_int k *. Float.pi /. 3.0) in
      { px = c.px +. (circumradius *. cos angle); py = c.py +. (circumradius *. sin angle) })

let hex_cell_area = sqrt3_over_2

let region_of_cells cells = cells

let region_boundary_edges cells =
  (* For each occupied square, each side facing an unoccupied square is a
     boundary segment.  Squares are centered on lattice points. *)
  let edge_of v = function
    | `E ->
      let x = float_of_int (Vec.x v) +. 0.5 and y = float_of_int (Vec.y v) in
      ({ px = x; py = y -. 0.5 }, { px = x; py = y +. 0.5 })
    | `W ->
      let x = float_of_int (Vec.x v) -. 0.5 and y = float_of_int (Vec.y v) in
      ({ px = x; py = y -. 0.5 }, { px = x; py = y +. 0.5 })
    | `N ->
      let x = float_of_int (Vec.x v) and y = float_of_int (Vec.y v) +. 0.5 in
      ({ px = x -. 0.5; py = y }, { px = x +. 0.5; py = y })
    | `S ->
      let x = float_of_int (Vec.x v) and y = float_of_int (Vec.y v) -. 0.5 in
      ({ px = x -. 0.5; py = y }, { px = x +. 0.5; py = y })
  in
  let sides = [ (`E, Vec.make2 1 0); (`W, Vec.make2 (-1) 0); (`N, Vec.make2 0 1); (`S, Vec.make2 0 (-1)) ] in
  Vec.Set.fold
    (fun v acc ->
      List.fold_left
        (fun acc (side, d) ->
          if Vec.Set.mem (Vec.add v d) cells then acc else edge_of v side :: acc)
        acc sides)
    cells []

let nearest_lattice_point p =
  Vec.make2 (int_of_float (Float.round p.px)) (int_of_float (Float.round p.py))

let point_in_region cells p =
  let v = nearest_lattice_point p in
  (* The closed square of the nearest point always contains p; points on
     shared cell boundaries may also belong to a neighbour's square, but
     then that neighbour is at equal distance, so checking membership of
     all four candidate cells around p is enough. *)
  let candidates =
    [ v;
      Vec.make2 (int_of_float (floor (p.px +. 0.5))) (Vec.y v);
      Vec.make2 (Vec.x v) (int_of_float (floor (p.py +. 0.5)));
      Vec.make2 (int_of_float (ceil (p.px -. 0.5))) (int_of_float (ceil (p.py -. 0.5)))
    ]
  in
  List.exists
    (fun c ->
      Vec.Set.mem c cells
      && Float.abs (p.px -. float_of_int (Vec.x c)) <= 0.5 +. 1e-12
      && Float.abs (p.py -. float_of_int (Vec.y c)) <= 0.5 +. 1e-12)
    candidates

let open_cell_of p =
  let v = nearest_lattice_point p in
  let dx = Float.abs (p.px -. float_of_int (Vec.x v)) in
  let dy = Float.abs (p.py -. float_of_int (Vec.y v)) in
  if dx < 0.5 -. 1e-12 && dy < 0.5 -. 1e-12 then Some v else None

let dist_point_segment p (a, b) =
  let abx = b.px -. a.px and aby = b.py -. a.py in
  let apx = p.px -. a.px and apy = p.py -. a.py in
  let len2 = (abx *. abx) +. (aby *. aby) in
  let t = if len2 = 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 (((apx *. abx) +. (apy *. aby)) /. len2)) in
  let cx = a.px +. (t *. abx) and cy = a.py +. (t *. aby) in
  Float.hypot (p.px -. cx) (p.py -. cy)

let distance_to_boundary cells p =
  List.fold_left
    (fun acc e -> Float.min acc (dist_point_segment p e))
    infinity (region_boundary_edges cells)

let disk_fits_in_region cells ~center ~radius =
  point_in_region cells center && distance_to_boundary cells center >= radius -. 1e-12
