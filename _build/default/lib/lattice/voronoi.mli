(** Voronoi geometry of 2-D lattices (Section 3, Figure 4; conclusions).

    The Voronoi cell of a square-lattice point is the unit square around
    it; the union of cells over a prototile is the quasi-polyomino [K] of
    the paper.  The hexagonal lattice's cell is a regular hexagon.  The
    square-lattice predicates are exact (rational); the hexagonal embedding
    is floating point and used only for rendering.

    The mobile-sensor rule from the conclusions needs one geometric
    predicate: does the interference disk of a sensor inside a tile's
    region fit entirely within that region?  {!disk_fits_in_region}
    answers it by comparing the disk radius against the distance from the
    center to the region's boundary edges. *)

type point2 = { px : float; py : float }

val embed_square : Zgeom.Vec.t -> point2
(** Identity embedding of [Z^2]. *)

val embed_hex : Zgeom.Vec.t -> point2
(** Hexagonal-lattice embedding: basis [(1, 0)] and [(1/2, sqrt 3 / 2)]
    (Figure 1, right). *)

val square_cell_corners : Zgeom.Vec.t -> (Zgeom.Rat.t * Zgeom.Rat.t) list
(** The four corners of the Voronoi square of a lattice point,
    counterclockwise, exactly. *)

val hex_cell_corners : Zgeom.Vec.t -> point2 list
(** The six corners of the Voronoi hexagon of a hexagonal-lattice point,
    counterclockwise. *)

val hex_cell_area : float
(** Area of one hexagonal Voronoi cell, [sqrt 3 / 2]. *)

val region_of_cells : Zgeom.Vec.Set.t -> Zgeom.Vec.Set.t
(** Identity helper kept for symmetry: a region is identified with its set
    of occupied unit squares. *)

val region_boundary_edges : Zgeom.Vec.Set.t -> (point2 * point2) list
(** Boundary segments (unit length, grid-aligned) of the union of Voronoi
    squares of the given square-lattice points. *)

val point_in_region : Zgeom.Vec.Set.t -> point2 -> bool
(** Closed-region membership: the point lies in some cell's square. *)

val open_cell_of : point2 -> Zgeom.Vec.t option
(** The square-lattice point whose {e open} Voronoi cell contains the
    given position, or [None] on cell boundaries (ties). *)

val distance_to_boundary : Zgeom.Vec.Set.t -> point2 -> float
(** Euclidean distance from a point to the region's boundary;
    [infinity] for an empty boundary. *)

val disk_fits_in_region : Zgeom.Vec.Set.t -> center:point2 -> radius:float -> bool
(** True iff the closed disk lies inside the closed region: the paper's
    "interference range of [s] fits within the tile of [p]". *)
