lib/netsim/energy.ml:
