lib/netsim/energy.mli:
