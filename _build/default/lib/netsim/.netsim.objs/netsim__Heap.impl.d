lib/netsim/heap.ml: Array
