lib/netsim/heap.mli:
