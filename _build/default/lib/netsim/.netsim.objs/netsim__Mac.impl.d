lib/netsim/mac.ml: Core Prng Zgeom
