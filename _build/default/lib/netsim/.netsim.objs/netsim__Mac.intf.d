lib/netsim/mac.mli: Core Prng Zgeom
