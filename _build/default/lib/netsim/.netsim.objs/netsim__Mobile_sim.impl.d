lib/netsim/mobile_sim.ml: Array Core Float Hashtbl Lattice List Mobility Option Prng Tiling Voronoi
