lib/netsim/mobile_sim.mli: Tiling
