lib/netsim/mobility.ml: Float Lattice Prng Voronoi
