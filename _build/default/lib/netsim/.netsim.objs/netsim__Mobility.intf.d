lib/netsim/mobility.mli: Lattice Prng
