lib/netsim/sim.ml: Array Energy Format Hashtbl Heap Lattice List Mac Prng Prototile Queue Stats Trace Vec Workload Zgeom
