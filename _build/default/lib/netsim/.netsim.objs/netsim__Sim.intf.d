lib/netsim/sim.mli: Energy Format Lattice Mac Stats Trace Workload Zgeom
