lib/netsim/stats.ml: Array Float Format Stdlib
