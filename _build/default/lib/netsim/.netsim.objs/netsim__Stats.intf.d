lib/netsim/stats.mli: Format
