lib/netsim/timesync.ml: Array Core Float Fun Hashtbl Lattice List Prng Prototile Vec Zgeom
