lib/netsim/timesync.mli: Core Lattice Zgeom
