lib/netsim/trace.ml: Array Buffer Bytes List Printf
