lib/netsim/trace.mli:
