lib/netsim/workload.ml: Prng
