lib/netsim/workload.mli: Prng
