type model = { tx_cost : float; rx_cost : float; idle_cost : float }

let default = { tx_cost = 1.0; rx_cost = 0.4; idle_cost = 0.01 }

let slot_energy m ~transmitters ~receivers ~idlers =
  (float_of_int transmitters *. m.tx_cost)
  +. (float_of_int receivers *. m.rx_cost)
  +. (float_of_int idlers *. m.idle_cost)
