(** Energy accounting.

    The paper's motivation for collision-freeness is energy: colliding
    messages "need to be resent, which is evidently a waste of energy."
    The model is the standard first-order radio budget: a fixed cost per
    transmission, a cost per reception (every node inside a transmitter's
    range spends receive energy whether or not the packet survives), and
    an idle tick otherwise. *)

type model = { tx_cost : float; rx_cost : float; idle_cost : float }

val default : model
(** tx = 1.0, rx = 0.4, idle = 0.01 - typical low-power-radio ratios. *)

val slot_energy : model -> transmitters:int -> receivers:int -> idlers:int -> float
