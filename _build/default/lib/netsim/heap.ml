type 'a t = { mutable data : (int * 'a) array; mutable len : int }

let create () = { data = [||]; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap entry in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst h.data.(i) < fst h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
  if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key v =
  grow h (key, v);
  h.data.(h.len) <- (key, v);
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_key h = if h.len = 0 then None else Some (fst h.data.(0))

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some top
  end
