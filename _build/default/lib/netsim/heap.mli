(** Binary min-heap keyed by integer priority (event times).

    The simulator's event queue: arrivals and mobility updates are pushed
    with their due slot and popped in time order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> int -> 'a -> unit

val peek_key : 'a t -> int option
(** Smallest key, without removing. *)

val pop : 'a t -> (int * 'a) option
(** Smallest-keyed element; ties in insertion order are not guaranteed. *)
