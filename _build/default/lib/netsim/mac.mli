(** Medium-access control protocols.

    A MAC instance is per-node mutable state with two entry points: a
    slot-time decision to transmit, and feedback on the attempt's outcome.
    The engine supplies the node's view of the channel (busy in the
    previous slot) so carrier-sensing protocols can be expressed.

    Implementations:
    - {!lattice_tdma}: the paper's schedule - send iff the slot is yours.
      Never needs feedback; zero collisions by Theorem 1/2.
    - {!lattice_tdma_drifted}: same with a per-node clock offset, the
      fault-injection variant.
    - {!full_tdma}: classic one-slot-per-sensor round robin - correct but
      with period = network size (the intro's scaling complaint).
    - {!slotted_aloha}: transmit with probability [p] when backlogged;
      binary exponential backoff on collision.
    - {!p_csma}: p-persistent carrier sensing - defer while the channel
      around you was busy, else transmit with probability [p]. *)

type decision_context = {
  time : int;
  has_packet : bool;
  channel_busy_last : bool;  (** Some neighbor transmitted in slot [time - 1]. *)
}

type outcome = [ `Delivered | `Collided ]

type instance = { name : string; decide : decision_context -> bool; feedback : outcome -> unit }

type factory = node_id:int -> pos:Zgeom.Vec.t -> rng:Prng.Xoshiro.t -> instance

val lattice_tdma : Core.Schedule.t -> factory
val lattice_tdma_drifted : Core.Schedule.t -> drift_at:(Zgeom.Vec.t -> int) -> factory
val full_tdma : num_nodes:int -> factory
val slotted_aloha : p:float -> max_backoff_exp:int -> factory
val p_csma : p:float -> factory
