open Lattice

type config = {
  tiling : Tiling.Single.t;
  arena_width : float;
  num_sensors : int;
  radius : float;
  speed : float;
  pause : int;
  send_interval : int;
  duration : int;
  seed : int64;
}

type result = {
  attempts : int;
  deliveries : int;
  receiver_receptions : int;
  collisions : int;
  eligible_slot_fraction : float;
}

let dist a b = Float.hypot (a.Voronoi.px -. b.Voronoi.px) (a.Voronoi.py -. b.Voronoi.py)

let run cfg =
  assert (cfg.num_sensors > 0 && cfg.duration >= 0);
  let mobile = Core.Mobile.make cfg.tiling in
  let rng = Prng.Xoshiro.create cfg.seed in
  let arena =
    { Mobility.x_min = 0.0; x_max = cfg.arena_width; y_min = 0.0; y_max = cfg.arena_width }
  in
  let walkers =
    Array.init cfg.num_sensors (fun _ ->
        let r = Prng.Xoshiro.split rng in
        let start =
          { Voronoi.px = Prng.Xoshiro.float r cfg.arena_width;
            py = Prng.Xoshiro.float r cfg.arena_width }
        in
        Mobility.create arena ~speed:cfg.speed ~pause:cfg.pause ~rng:r ~start)
  in
  let backlog = Array.make cfg.num_sensors 0 in
  let phases = Array.init cfg.num_sensors (fun _ -> Prng.Xoshiro.int rng cfg.send_interval) in
  let attempts = ref 0 in
  let deliveries = ref 0 in
  let receptions = ref 0 in
  let collisions = ref 0 in
  let eligible_count = ref 0 in
  for t = 0 to cfg.duration - 1 do
    Array.iteri (fun i _ -> if t mod cfg.send_interval = phases.(i) then backlog.(i) <- backlog.(i) + 1) phases;
    let positions = Array.map Mobility.position walkers in
    (* The paper assumes at most one sensor per Voronoi cell; mobile
       populations can violate it, so a sensor whose open cell is
       contested defers (this preserves the collision-freeness proof). *)
    let homes = Array.map Lattice.Voronoi.open_cell_of positions in
    let occupancy = Hashtbl.create cfg.num_sensors in
    Array.iter
      (function
        | Some c -> Hashtbl.replace occupancy c (1 + Option.value ~default:0 (Hashtbl.find_opt occupancy c))
        | None -> ())
      homes;
    let alone i =
      match homes.(i) with Some c -> Hashtbl.find occupancy c = 1 | None -> false
    in
    let eligible =
      Array.mapi
        (fun i pos ->
          let e = alone i && Core.Mobile.eligible mobile ~pos ~radius:cfg.radius ~time:t in
          if e then incr eligible_count;
          e)
        positions
    in
    let senders = ref [] in
    Array.iteri (fun i e -> if e && backlog.(i) > 0 then senders := i :: !senders) eligible;
    (* Receptions: receiver j <> sender i inside i's disk; fails when
       inside two senders' disks or itself sending. *)
    let in_disk i j = dist positions.(i) positions.(j) <= cfg.radius in
    List.iter
      (fun i ->
        incr attempts;
        let ok = ref true in
        for j = 0 to cfg.num_sensors - 1 do
          if j <> i && in_disk i j then begin
            let interferers =
              List.filter (fun k -> k <> i && in_disk k j) !senders
            in
            let self_sending = List.mem j !senders in
            if interferers <> [] || self_sending then begin
              incr collisions;
              ok := false
            end
            else incr receptions
          end
        done;
        if !ok then begin
          deliveries := !deliveries + 1;
          backlog.(i) <- backlog.(i) - 1
        end)
      !senders;
    Array.iter Mobility.step walkers
  done;
  {
    attempts = !attempts;
    deliveries = !deliveries;
    receiver_receptions = !receptions;
    collisions = !collisions;
    eligible_slot_fraction =
      (if cfg.duration = 0 then 0.0
       else float_of_int !eligible_count /. float_of_int (cfg.num_sensors * cfg.duration));
  }
