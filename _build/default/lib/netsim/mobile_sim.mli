(** Simulation of the conclusions' mobile-sensor schedule.

    Sensors perform random waypoints over an arena laid on the square
    lattice; slots belong to {e locations} (Core.Mobile).  Each slot, a
    backlogged sensor transmits iff the mobile rule allows it: it is
    inside an open Voronoi cell whose lattice point owns the current
    slot, and its interference disk fits inside that tile's region.

    The paper assumes lattice spacing fine enough that at most one sensor
    occupies a Voronoi cell; random motion can violate that, so the
    simulation makes the assumption operational: a sensor whose open cell
    is contested defers.  With that rule the collision-freeness proof
    applies verbatim.

    Receptions: every {e other} sensor inside a transmitter's disk is an
    intended receiver; a reception fails if the receiver lies in two
    transmitters' disks (the rule provably prevents this - the run
    asserts it and reports the collision count, expected 0). *)

type config = {
  tiling : Tiling.Single.t;
  arena_width : float;
  num_sensors : int;
  radius : float;  (** interference radius of every sensor *)
  speed : float;
  pause : int;
  send_interval : int;  (** periodic traffic *)
  duration : int;
  seed : int64;
}

type result = {
  attempts : int;
  deliveries : int;  (** attempts that reached every receiver *)
  receiver_receptions : int;
  collisions : int;  (** expected 0 *)
  eligible_slot_fraction : float;
      (** fraction of (sensor, slot) pairs in which the rule allowed
          sending - the price of mobility. *)
}

val run : config -> result
