open Lattice

type arena = { x_min : float; x_max : float; y_min : float; y_max : float }

type walker = {
  arena : arena;
  speed : float;
  pause : int;
  rng : Prng.Xoshiro.t;
  mutable pos : Voronoi.point2;
  mutable target : Voronoi.point2;
  mutable pausing : int;
}

let random_point arena rng =
  {
    Voronoi.px = arena.x_min +. Prng.Xoshiro.float rng (arena.x_max -. arena.x_min);
    py = arena.y_min +. Prng.Xoshiro.float rng (arena.y_max -. arena.y_min);
  }

let create arena ~speed ~pause ~rng ~start =
  assert (speed > 0.0 && pause >= 0);
  { arena; speed; pause; rng; pos = start; target = random_point arena rng; pausing = 0 }

let position w = w.pos

let step w =
  if w.pausing > 0 then w.pausing <- w.pausing - 1
  else begin
    let dx = w.target.Voronoi.px -. w.pos.Voronoi.px in
    let dy = w.target.Voronoi.py -. w.pos.Voronoi.py in
    let d = Float.hypot dx dy in
    if d <= w.speed then begin
      w.pos <- w.target;
      w.pausing <- w.pause;
      w.target <- random_point w.arena w.rng
    end
    else
      w.pos <-
        {
          Voronoi.px = w.pos.Voronoi.px +. (dx /. d *. w.speed);
          py = w.pos.Voronoi.py +. (dy /. d *. w.speed);
        }
  end
