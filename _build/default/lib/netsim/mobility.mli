(** Random-waypoint mobility for the mobile-sensor experiment.

    Sensors move in a continuous rectangular arena: pick a uniform target,
    glide toward it at constant speed, pause, repeat.  Positions advance
    once per slot.  Used with {!Mobile_sim} to exercise the conclusions'
    location-based schedule. *)

type arena = { x_min : float; x_max : float; y_min : float; y_max : float }

type walker

val create :
  arena -> speed:float -> pause:int -> rng:Prng.Xoshiro.t -> start:Lattice.Voronoi.point2 -> walker

val position : walker -> Lattice.Voronoi.point2

val step : walker -> unit
(** Advance one slot. *)
