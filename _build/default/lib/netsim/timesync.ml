open Zgeom
open Lattice

type config = {
  width : int;
  height : int;
  prototile : Prototile.t;
  schedule : Core.Schedule.t;
  root : Vec.t;
  resync_period : int;
  drift_ppm : float;
  hop_jitter : float;
  duration : int;
  seed : int64;
}

type result = {
  max_clock_error : float;
  mean_clock_error : float;
  sync_latency : int;
  tdma_violations : int;
  beacons_sent : int;
}

let run cfg =
  let n = cfg.width * cfg.height in
  assert (n > 0 && cfg.duration >= 0);
  let pos = Array.init n (fun i -> Vec.make2 (i mod cfg.width) (i / cfg.width)) in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.add index_of v i) pos;
  let root =
    match Hashtbl.find_opt index_of cfg.root with
    | Some i -> i
    | None -> invalid_arg "Timesync.run: root outside the grid"
  in
  let cells = Prototile.cells cfg.prototile in
  let reach =
    Array.init n (fun i ->
        List.filter_map
          (fun c ->
            match Hashtbl.find_opt index_of (Vec.add pos.(i) c) with
            | Some j when j <> i -> Some j
            | _ -> None)
          cells)
  in
  let rng = Prng.Xoshiro.create cfg.seed in
  let rate =
    Array.init n (fun _ -> (Prng.Xoshiro.float rng 2.0 -. 1.0) *. cfg.drift_ppm *. 1e-6)
  in
  (* Local clocks start with up-to-one-slot phase error. *)
  let clock = Array.init n (fun _ -> Prng.Xoshiro.float rng 1.0 -. 0.5) in
  let wave = Array.make n (-1) in
  (* pending_rebroadcast.(i): Some wave_id when i must forward the beacon
     at its next own schedule slot. *)
  let pending = Array.make n None in
  let m = Core.Schedule.num_slots cfg.schedule in
  let diff = Prototile.difference_set cfg.prototile in
  let beacons = ref 0 in
  let synced_once = Array.make n false in
  let sync_latency = ref (-1) in
  let max_err = ref 0.0 in
  let err_sum = ref 0.0 in
  let err_count = ref 0 in
  let violations = ref 0 in
  for t = 0 to cfg.duration - 1 do
    (* 1. Clocks drift. *)
    for i = 0 to n - 1 do
      clock.(i) <- clock.(i) +. 1.0 +. rate.(i)
    done;
    (* 2. Root starts a wave. *)
    if cfg.resync_period > 0 && t mod cfg.resync_period = 0 then begin
      let wave_id = t / cfg.resync_period in
      clock.(root) <- float_of_int t;
      wave.(root) <- wave_id;
      synced_once.(root) <- true;
      pending.(root) <- Some wave_id
    end;
    (* 3. Nodes whose slot it is forward the beacon. *)
    let carriers =
      List.filter
        (fun i ->
          pending.(i) <> None && Core.Schedule.slot_at cfg.schedule pos.(i) = t mod m)
        (List.init n Fun.id)
    in
    let hit = Array.make n 0 in
    let from = Array.make n (-1) in
    List.iter
      (fun i ->
        incr beacons;
        List.iter
          (fun r ->
            hit.(r) <- hit.(r) + 1;
            from.(r) <- i)
          reach.(i))
      carriers;
    List.iter (fun i -> pending.(i) <- None) carriers;
    (* 4. Collision-free receptions adopt fresher beacons. *)
    for r = 0 to n - 1 do
      if hit.(r) = 1 then begin
        let s = from.(r) in
        match pending.(r) with
        | Some _ -> () (* already carrying; skip *)
        | None ->
          (* Beacon value: the sender's own clock (its estimate of t). *)
          let w = wave.(s) in
          if w > wave.(r) then begin
            let eps = (Prng.Xoshiro.float rng 2.0 -. 1.0) *. cfg.hop_jitter in
            clock.(r) <- clock.(s) +. eps;
            wave.(r) <- w;
            synced_once.(r) <- true;
            pending.(r) <- Some w
          end
      end
    done;
    if !sync_latency < 0 && Array.for_all Fun.id synced_once then sync_latency := t;
    (* 5. Clock-error statistics (only once the first wave completed). *)
    if !sync_latency >= 0 then
      for i = 0 to n - 1 do
        let e = Float.abs (clock.(i) -. float_of_int t) in
        if e > !max_err then max_err := e;
        err_sum := !err_sum +. e;
        incr err_count
      done;
    (* 6. TDMA on local clocks: count interfering same-slot sends under a
       saturated workload. *)
    let sends =
      Array.init n (fun i ->
          let local_slot = ((int_of_float (Float.round clock.(i)) mod m) + m) mod m in
          local_slot = Core.Schedule.slot_at cfg.schedule pos.(i))
    in
    for i = 0 to n - 1 do
      if sends.(i) then
        Vec.Set.iter
          (fun d ->
            if not (Vec.is_zero d) then
              match Hashtbl.find_opt index_of (Vec.add pos.(i) d) with
              | Some j when j > i && sends.(j) -> incr violations
              | _ -> ())
          diff
    done
  done;
  {
    max_clock_error = !max_err;
    mean_clock_error = (if !err_count = 0 then 0.0 else !err_sum /. float_of_int !err_count);
    sync_latency = !sync_latency;
    tdma_violations = !violations;
    beacons_sent = !beacons;
  }
