(** Time synchronization: the substrate behind "assume the sensors have
    access to the current time".

    The paper's schedules need a shared slot counter.  This module
    simulates the standard way sensors get one: a designated root floods
    periodic beacons; each beacon carries the root's slot number and
    propagates one hop per slot through the interference graph (a
    receiver within range of exactly one beaconing node decodes it, adds
    one for the hop, adopts the value, and rebroadcasts in the next
    slot).  Between resynchronization waves, every node's local clock
    drifts at its own rate.

    Flooding is simulated under the same binary-interference medium as
    {!Sim}: simultaneous rebroadcasts by two nodes covering a common
    receiver would collide, so the flood rebroadcasts are staggered by
    the lattice schedule itself - nodes rebroadcast a freshly received
    beacon at their next own slot.  This makes the sync wave
    collision-free by Theorem 1 and costs at most [m] extra slots per
    hop.

    The experiment the harness runs: sweep the resync period and the
    drift rate, and report (a) the maximum clock error right before a
    resync and (b) how many schedule violations (same-slot interfering
    sends) the residual error causes when the TDMA schedule runs on the
    synchronized clocks. *)

type config = {
  width : int;
  height : int;
  prototile : Lattice.Prototile.t;
  schedule : Core.Schedule.t;  (** also staggers beacon rebroadcasts *)
  root : Zgeom.Vec.t;  (** beacon source; must lie in the grid *)
  resync_period : int;  (** slots between beacon waves; 0 = never resync *)
  drift_ppm : float;  (** clock-rate error bound: each node's rate is
                          drawn uniformly from [-drift_ppm, +drift_ppm]
                          parts per million *)
  hop_jitter : float;  (** per-hop timestamping uncertainty, in slots:
                           a node adopting a beacon picks up a uniform
                           error in [-hop_jitter, +hop_jitter] *)
  duration : int;
  seed : int64;
}

type result = {
  max_clock_error : float;  (** worst |local - true| over nodes and time, in slots *)
  mean_clock_error : float;
  sync_latency : int;  (** slots for the first wave to reach every node *)
  tdma_violations : int;
      (** same-slot interfering transmissions caused by clock error when
          the TDMA schedule runs on local clocks *)
  beacons_sent : int;
}

val run : config -> result
