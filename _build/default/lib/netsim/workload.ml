type spec =
  | Periodic of { interval : int }
  | Poisson of { rate : float }
  | Bursty of { burst : int; gap_mean : float }

type gen = { spec : spec; rng : Prng.Xoshiro.t; mutable burst_left : int }

let create spec rng =
  (match spec with
  | Periodic { interval } -> assert (interval > 0)
  | Poisson { rate } -> assert (rate > 0.0)
  | Bursty { burst; gap_mean } -> assert (burst > 0 && gap_mean > 0.0));
  { spec; rng; burst_left = 0 }

let exponential_gap rng mean = 1 + int_of_float (Prng.Xoshiro.exponential rng (1.0 /. mean))

let first_arrival g =
  match g.spec with
  | Periodic { interval } -> Prng.Xoshiro.int g.rng interval
  | Poisson { rate } -> int_of_float (Prng.Xoshiro.exponential g.rng rate)
  | Bursty { burst; gap_mean } ->
    g.burst_left <- burst - 1;
    exponential_gap g.rng gap_mean

let next_arrival g ~after =
  match g.spec with
  | Periodic { interval } -> after + interval
  | Poisson { rate } -> after + 1 + int_of_float (Prng.Xoshiro.exponential g.rng rate)
  | Bursty { burst; gap_mean } ->
    if g.burst_left > 0 then begin
      g.burst_left <- g.burst_left - 1;
      after + 1
    end
    else begin
      g.burst_left <- burst - 1;
      after + exponential_gap g.rng gap_mean
    end

let expected_rate = function
  | Periodic { interval } -> 1.0 /. float_of_int interval
  | Poisson { rate } -> rate
  | Bursty { burst; gap_mean } ->
    (* One burst of [burst] packets per (gap + burst) slots on average. *)
    float_of_int burst /. (gap_mean +. float_of_int burst)
