(** Traffic generation.

    Each node owns an independent deterministic stream of packet-arrival
    events, scheduled on the simulator's event heap:

    - [Periodic]: one packet every [interval] slots, with a random phase
      (the classic sensing-report pattern the paper's setting implies);
    - [Poisson]: memoryless arrivals at [rate] packets/slot;
    - [Bursty]: geometric bursts of back-to-back packets separated by
      exponential gaps (stress test for queues). *)

type spec =
  | Periodic of { interval : int }
  | Poisson of { rate : float }
  | Bursty of { burst : int; gap_mean : float }

type gen
(** Per-node generator state. *)

val create : spec -> Prng.Xoshiro.t -> gen

val first_arrival : gen -> int
(** Slot of the node's first packet (>= 0). *)

val next_arrival : gen -> after:int -> int
(** Slot of the next packet strictly after the given slot. *)

val expected_rate : spec -> float
(** Mean packets per slot per node, for load accounting in experiments. *)
