lib/prng/xoshiro.mli:
