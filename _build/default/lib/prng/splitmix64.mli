(** SplitMix64: a fast, well-distributed 64-bit generator.

    Used both as a generator in its own right and to seed {!Xoshiro}.
    The state is a single [int64]; [next] advances it by the golden-gamma
    constant and returns a mixed output.  Reference: Steele, Lea, Flood,
    "Fast splittable pseudorandom number generators" (OOPSLA 2014). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator from an arbitrary 64-bit seed. *)

val next : t -> int64
(** Advance the state and return the next 64-bit output. *)

val copy : t -> t
(** Independent copy of the current state. *)
