type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let next64 t =
  let result = Int64.(mul (rotl (mul t.s1 5L) 7) 9L) in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (next64 t)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (next64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.(sub r v > sub (sub max_int bound64) 1L) then draw () else Int64.to_int v
  in
  draw ()

let float t x =
  (* 53 uniform bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  let unit = Int64.to_float bits *. 0x1p-53 in
  unit *. x

let bool t = Int64.logand (next64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  assert (rate > 0.);
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let poisson t lambda =
  assert (lambda >= 0.);
  let limit = exp (-.lambda) in
  let rec loop k p =
    let p = p *. float t 1.0 in
    if p <= limit then k else loop (k + 1) p
  in
  loop 0 1.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
