(** Xoshiro256**: the library's main pseudorandom generator.

    Deterministic and splittable: [split] derives an independent stream, so
    simulator components can draw randomness without perturbing each other.
    Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
    generators" (ACM TOMS 2021). *)

type t
(** Mutable generator state (256 bits). *)

val create : int64 -> t
(** [create seed] seeds the four state words via SplitMix64. *)

val split : t -> t
(** [split t] draws from [t] to seed a statistically independent stream. *)

val copy : t -> t
(** Snapshot of the current state. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0];
    unbiased via rejection sampling. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)] with 53-bit resolution. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate); used for Poisson arrivals. *)

val poisson : t -> float -> int
(** [poisson t lambda] draws from Poisson(lambda) by Knuth's method
    (suitable for the small means used in workload generation). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
