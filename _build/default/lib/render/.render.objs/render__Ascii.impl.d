lib/render/ascii.ml: Buffer Char Core Format Hashtbl Lattice Tiling Vec Zgeom
