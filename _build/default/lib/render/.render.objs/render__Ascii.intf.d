lib/render/ascii.mli: Core Lattice Tiling
