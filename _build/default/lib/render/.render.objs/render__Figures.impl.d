lib/render/figures.ml: Ascii Core Filename Fun Lattice List Printf Prototile String Sublattice Svg Sys Tiling Vec Voronoi Zgeom
