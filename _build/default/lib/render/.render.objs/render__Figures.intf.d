lib/render/figures.mli: Svg
