lib/render/plot.ml: Array Buffer Float List Printf String
