lib/render/plot.mli:
