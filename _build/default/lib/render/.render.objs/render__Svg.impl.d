lib/render/svg.ml: Array Buffer Float List Printf String
