lib/render/svg.mli:
