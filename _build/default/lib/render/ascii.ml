open Zgeom

let grid ~width ~height ~char_at =
  let buf = Buffer.create (height * (width + 1)) in
  for y = height - 1 downto 0 do
    for x = 0 to width - 1 do
      Buffer.add_char buf (char_at ~x ~y)
    done;
    if y > 0 then Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let slot_char s =
  if s < 0 then '?'
  else if s < 10 then Char.chr (Char.code '0' + s)
  else if s < 36 then Char.chr (Char.code 'a' + s - 10)
  else '?'

let schedule sched ~width ~height =
  grid ~width ~height ~char_at:(fun ~x ~y ->
      slot_char (Core.Schedule.slot_at sched (Vec.make2 x y)))

let letter_for k base span = Char.chr (Char.code base + (k mod span))

let tiling t ~width ~height =
  (* Label each tile by a letter derived from its anchor so neighbouring
     tiles (whose anchors differ) usually get different letters. *)
  let anchors = Hashtbl.create 64 in
  let next = ref 0 in
  grid ~width ~height ~char_at:(fun ~x ~y ->
      let s, _ = Tiling.Single.tile_of t (Vec.make2 x y) in
      let k =
        match Hashtbl.find_opt anchors s with
        | Some k -> k
        | None ->
          let k = !next in
          incr next;
          Hashtbl.add anchors s k;
          k
      in
      letter_for k 'a' 26)

let multi_tiling m ~width ~height =
  let anchors = Hashtbl.create 64 in
  let next = ref 0 in
  grid ~width ~height ~char_at:(fun ~x ~y ->
      let piece, s, _ = Tiling.Multi.tile_of m (Vec.make2 x y) in
      let k =
        match Hashtbl.find_opt anchors (piece, s) with
        | Some k -> k
        | None ->
          let k = !next in
          incr next;
          Hashtbl.add anchors (piece, s) k;
          k
      in
      if piece = 0 then letter_for k 'a' 13 else letter_for k 'n' 13)

let prototile p =
  Format.asprintf "%a" Lattice.Prototile.pp p
