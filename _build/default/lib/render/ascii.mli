(** ASCII rendering of windows of [Z^2].

    Rows are printed top to bottom with [y] decreasing, so pictures match
    the usual mathematical orientation of the paper's figures. *)

val grid : width:int -> height:int -> char_at:(x:int -> y:int -> char) -> string
(** A [height]-line picture of the window [\[0, width) x \[0, height)]. *)

val slot_char : int -> char
(** Slots 0-9 as digits, 10-35 as letters, '?' beyond. *)

val schedule : Core.Schedule.t -> width:int -> height:int -> string
(** Each point labelled by its slot (Figure 3's labelling). *)

val tiling : Tiling.Single.t -> width:int -> height:int -> string
(** Each point labelled by a letter identifying its covering tile, so
    tiles are visually distinguishable. *)

val multi_tiling : Tiling.Multi.t -> width:int -> height:int -> string
(** Like {!tiling}; tiles of different prototiles get disjoint letter
    ranges (a.. for piece 0, n.. for piece 1, ...). *)

val prototile : Lattice.Prototile.t -> string
(** '#' cells and 'O' origin on the bounding box (Figure 2 style). *)
