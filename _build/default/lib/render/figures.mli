(** Regeneration of the paper's five figures.

    Each [figN] returns an ASCII rendering (printed by the bench harness
    and CLI) and writes an SVG next to it via {!save_all}.  The figures
    are rebuilt from the library's own machinery - lattices from bases,
    tilings from the search engines, schedules from Theorems 1/2 - so
    they double as end-to-end checks. *)

type figure = { name : string; ascii : string; svg : Svg.doc }

val fig1_lattices : unit -> figure
(** Square and hexagonal lattices with their generating vectors. *)

val fig2_neighborhoods : unit -> figure
(** Chebyshev ball, Euclidean ball, directional antenna. *)

val fig3_schedule : unit -> figure
(** Tiling of [Z^2] by the 8-cell directional prototile and its Theorem-1
    schedule, slot labels at each point. *)

val fig4_voronoi : unit -> figure
(** Voronoi cells: unit squares (quasi-polyomino) and hexagons
    (quasi-polyhex). *)

val fig5_nonrespectable : unit -> figure
(** The S/Z mixed tiling with its 6-slot ground-rule-optimal schedule
    next to the pure-S tiling with its 4-slot schedule. *)

val all : unit -> figure list

val save_all : dir:string -> figure list -> unit
(** Writes [<name>.svg] and [<name>.txt] for each figure. *)
