let bar ?(width = 50) rows =
  assert (width > 0);
  let vmax = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 rows in
  let label_width =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      assert (v >= 0.0);
      let n =
        if vmax = 0.0 then 0 else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf (Printf.sprintf "%-*s |%s %g\n" label_width label (String.make n '#') v))
    rows;
  Buffer.contents buf

type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '@'; '%' |]

let line ?(width = 60) ?(height = 16) ?(x_label = "x") ?(y_label = "y") ?(log_y = false)
    series_list =
  assert (width > 2 && height > 2);
  let all_points = List.concat_map (fun s -> s.points) series_list in
  if all_points = [] then "(empty plot)\n"
  else begin
    let transform_y y =
      if log_y then begin
        assert (y > 0.0);
        log10 y
      end
      else y
    in
    let xs = List.map fst all_points in
    let ys = List.map (fun (_, y) -> transform_y y) all_points in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    (* Degenerate ranges: widen symmetrically so points land mid-chart. *)
    let xmin, xmax = if xmax > xmin then (xmin, xmax) else (xmin -. 1.0, xmax +. 1.0) in
    let ymin, ymax = if ymax > ymin then (ymin, ymax) else (ymin -. 1.0, ymax +. 1.0) in
    let cell_x x =
      let t = (x -. xmin) /. (xmax -. xmin) in
      min (width - 1) (max 0 (int_of_float (t *. float_of_int (width - 1))))
    in
    let cell_y y =
      let t = (y -. ymin) /. (ymax -. ymin) in
      min (height - 1) (max 0 (int_of_float (t *. float_of_int (height - 1))))
    in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) -> grid.(cell_y (transform_y y)).(cell_x x) <- glyph)
          s.points)
      series_list;
    let buf = Buffer.create (height * (width + 10)) in
    let fmt_y row =
      (* Value at this row (inverse of cell_y, row given top-down). *)
      let t = float_of_int row /. float_of_int (height - 1) in
      let y = ymin +. (t *. (ymax -. ymin)) in
      if log_y then Float.pow 10.0 y else y
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" y_label (if log_y then " (log scale)" else ""));
    for row = height - 1 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%10.3g |" (fmt_y row));
      for col = 0 to width - 1 do
        Buffer.add_char buf grid.(row).(col)
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-*g%*g  (%s)\n" "" (width / 2) xmin (width - (width / 2)) xmax
         x_label);
    let legend =
      List.mapi
        (fun si s -> Printf.sprintf "%c = %s" glyphs.(si mod Array.length glyphs) s.label)
        series_list
    in
    Buffer.add_string buf ("legend: " ^ String.concat ", " legend ^ "\n");
    Buffer.contents buf
  end
