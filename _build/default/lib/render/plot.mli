(** Terminal plotting for experiment output.

    OCaml has no ubiquitous plotting stack, so the harness renders its
    series as ASCII charts: good enough to see the shapes the paper
    predicts (flat vs. linear growth, collision explosions) directly in
    the experiment log.

    Charts are pure string producers - no terminal control codes - so
    they are diffable and testable. *)

val bar : ?width:int -> (string * float) list -> string
(** Horizontal bar chart: one labelled row per value, bars scaled to the
    maximum. Values must be non-negative. *)

type series = { label : string; points : (float * float) list }

val line :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?log_y:bool ->
  series list ->
  string
(** Scatter/line chart of one or more series on shared axes.  Each series
    is drawn with its own glyph ([*], [+], [o], [x], ...); a legend line
    maps glyphs to labels.  [log_y] plots log10 of the values (all points
    must then be positive).  Points outside the computed range are
    clamped; identical x-ranges are handled by centering. *)
