(** Minimal SVG emission (no dependency): enough shapes to regenerate the
    paper's five figures as standalone [.svg] files. Coordinates are in
    user units; the [y]-axis is flipped at document level so callers work
    in mathematical orientation. *)

type doc

val create : width:float -> height:float -> doc
(** Canvas in user units; content is drawn in a y-up coordinate system
    spanning [0..width] x [0..height]. *)

val circle : doc -> cx:float -> cy:float -> r:float -> fill:string -> unit
val line : doc -> x1:float -> y1:float -> x2:float -> y2:float -> stroke:string -> width:float -> unit

val polygon :
  doc -> (float * float) list -> fill:string -> ?stroke:string -> ?stroke_width:float -> unit -> unit

val rect :
  doc -> x:float -> y:float -> w:float -> h:float -> fill:string -> ?stroke:string -> unit -> unit

val text : doc -> x:float -> y:float -> size:float -> string -> unit
(** Centered at (x, y). *)

val arrow : doc -> x1:float -> y1:float -> x2:float -> y2:float -> stroke:string -> unit

val to_string : doc -> string
val save : doc -> string -> unit

val palette : int -> string
(** A stable categorical color per small integer (slots, tile classes). *)
