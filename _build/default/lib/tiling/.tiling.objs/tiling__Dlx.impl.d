lib/tiling/dlx.ml: Array Fun Hashtbl List Stdlib
