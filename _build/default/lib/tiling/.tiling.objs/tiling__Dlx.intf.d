lib/tiling/dlx.mli:
