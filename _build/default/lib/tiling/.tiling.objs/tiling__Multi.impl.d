lib/tiling/multi.ml: Array Format Lattice List Option Printf Prototile Single Sublattice Vec Zgeom
