lib/tiling/multi.mli: Format Lattice Single Zgeom
