lib/tiling/search.ml: Array Boundary_word Dlx Hashtbl Lattice List Multi Polyomino Prototile Single Stdlib Sublattice Vec Zgeom
