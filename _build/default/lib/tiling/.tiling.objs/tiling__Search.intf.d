lib/tiling/search.mli: Lattice Multi Single
