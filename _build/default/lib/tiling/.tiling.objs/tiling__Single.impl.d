lib/tiling/single.ml: Array Format Lattice List Option Printf Prototile Sublattice Vec Zgeom
