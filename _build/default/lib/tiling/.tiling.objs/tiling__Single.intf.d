lib/tiling/single.mli: Format Lattice Zgeom
