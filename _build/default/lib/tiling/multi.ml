open Zgeom
open Lattice

type piece = { tile : Prototile.t; piece_offsets : Vec.t list }

type t = {
  period : Sublattice.t;
  pieces : piece list;
  (* cover.(coset_id v) = (piece index, offset, cell index within piece) *)
  cover : (int * Vec.t * int) array;
}

let make ~period pieces =
  let dim = Sublattice.dim period in
  if pieces = [] then Error "no pieces"
  else if List.exists (fun p -> p.piece_offsets = []) pieces then
    Error "a piece has an empty translation set"
  else if List.exists (fun p -> Prototile.dim p.tile <> dim) pieces then
    Error "dimension mismatch"
  else begin
    let pieces =
      List.map
        (fun p ->
          { p with
            piece_offsets =
              List.map (Sublattice.reduce period) p.piece_offsets
              |> Vec.Set.of_list |> Vec.Set.elements })
        pieces
    in
    let idx = Sublattice.index period in
    let total =
      List.fold_left
        (fun acc p -> acc + (Prototile.size p.tile * List.length p.piece_offsets))
        0 pieces
    in
    if total <> idx then
      Error (Printf.sprintf "cell count %d does not match period index %d" total idx)
    else begin
      let cover = Array.make idx None in
      let clash = ref None in
      List.iteri
        (fun k p ->
          let cells = Prototile.cells p.tile in
          List.iter
            (fun o ->
              List.iteri
                (fun ci n ->
                  if !clash = None then begin
                    let id = Sublattice.coset_id period (Vec.add o n) in
                    match cover.(id) with
                    | None -> cover.(id) <- Some (k, o, ci)
                    | Some _ ->
                      clash :=
                        Some
                          (Printf.sprintf "overlap at coset of %s"
                             (Vec.to_string (Vec.add o n)))
                  end)
                cells)
            p.piece_offsets)
        pieces;
      match !clash with
      | Some msg -> Error msg
      | None -> Ok { period; pieces; cover = Array.map Option.get cover }
    end
  end

let make_exn ~period pieces =
  match make ~period pieces with
  | Ok t -> t
  | Error msg -> invalid_arg ("Tiling.Multi.make: " ^ msg)

let of_single s =
  make_exn ~period:(Single.period s)
    [ { tile = Single.prototile s; piece_offsets = Single.offsets s } ]

let period t = t.period
let pieces t = t.pieces
let dim t = Sublattice.dim t.period
let prototiles t = List.map (fun p -> p.tile) t.pieces

let respectable_prototile t =
  let tiles = prototiles t in
  List.find_opt (fun n1 -> List.for_all (fun nk -> Prototile.subset nk n1) tiles) tiles

let is_respectable t = respectable_prototile t <> None

let union_cells t =
  List.fold_left
    (fun acc p -> Vec.Set.union acc (Prototile.cell_set p.tile))
    Vec.Set.empty t.pieces
  |> Vec.Set.elements

let tile_of t v =
  let k, _, ci = t.cover.(Sublattice.coset_id t.period v) in
  let p = List.nth t.pieces k in
  let n = List.nth (Prototile.cells p.tile) ci in
  (k, Vec.sub v n, n)

let iter_window dim radius f =
  let rec go i prefix =
    if i = dim then f (Vec.of_list (List.rev prefix))
    else
      for x = -radius to radius do
        go (i + 1) (x :: prefix)
      done
  in
  go 0 []

let check_window t ~radius =
  let ok = ref true in
  iter_window (dim t) radius (fun v ->
      let covers = ref 0 in
      List.iter
        (fun p ->
          let offs = Vec.Set.of_list p.piece_offsets in
          List.iter
            (fun n ->
              if Vec.Set.mem (Sublattice.reduce t.period (Vec.sub v n)) offs then incr covers)
            (Prototile.cells p.tile))
        t.pieces;
      if !covers <> 1 then ok := false);
  !ok

let pp fmt t =
  Format.fprintf fmt "@[<v>multi-tiling: %d piece(s), period index %d%s@]"
    (List.length t.pieces) (Sublattice.index t.period)
    (if is_respectable t then " (respectable)" else " (non-respectable)")
