open Zgeom
open Lattice

let lattice_tilings p =
  let d = Prototile.dim p in
  let m = Prototile.size p in
  let cells = Prototile.cells p in
  let complete_residues lam =
    let seen = Hashtbl.create m in
    List.for_all
      (fun n ->
        let id = Sublattice.coset_id lam n in
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          true
        end)
      cells
  in
  List.filter complete_residues (Sublattice.all_of_index ~dim:d m)

let find_lattice_tiling p =
  match lattice_tilings p with
  | [] -> None
  | lam :: _ -> (
    match Single.lattice_tiling p lam with
    | Ok t -> Some t
    | Error _ -> assert false)

type placement = { piece : int; anchor : Vec.t; covers : int list }

let cover_torus ~period ~prototiles ?(max_solutions = 64) ?(engine = `Backtracking) () =
  let idx = Sublattice.index period in
  let anchors = Sublattice.cosets period in
  let placements =
    List.concat
      (List.mapi
         (fun k p ->
           let cells = Prototile.cells p in
           List.filter_map
             (fun o ->
               let ids = List.map (fun n -> Sublattice.coset_id period (Vec.add o n)) cells in
               let sorted = List.sort_uniq Stdlib.compare ids in
               (* Self-overlap on the torus = T2 violation in Z^d. *)
               if List.length sorted <> List.length ids then None
               else Some { piece = k; anchor = o; covers = ids })
             anchors)
         prototiles)
  in
  (* by_cell.(c) = placements covering cell c *)
  let by_cell = Array.make idx [] in
  List.iter (fun pl -> List.iter (fun c -> by_cell.(c) <- pl :: by_cell.(c)) pl.covers) placements;
  let covered = Array.make idx false in
  let solutions = ref [] in
  let count = ref 0 in
  let chosen = ref [] in
  let free pl = List.for_all (fun c -> not covered.(c)) pl.covers in
  let rec solve () =
    if !count >= max_solutions then ()
    else begin
      (* Most-constrained uncovered cell first. *)
      let best = ref (-1) in
      let best_cands = ref [] in
      let best_n = ref max_int in
      for c = 0 to idx - 1 do
        if not covered.(c) && !best_n > 0 then begin
          let cands = List.filter free by_cell.(c) in
          let n = List.length cands in
          if n < !best_n then begin
            best := c;
            best_cands := cands;
            best_n := n
          end
        end
      done;
      if !best < 0 then begin
        (* Everything covered: record the solution. *)
        solutions := List.rev !chosen :: !solutions;
        incr count
      end
      else
        List.iter
          (fun pl ->
            if free pl then begin
              List.iter (fun c -> covered.(c) <- true) pl.covers;
              chosen := pl :: !chosen;
              solve ();
              chosen := List.tl !chosen;
              List.iter (fun c -> covered.(c) <- false) pl.covers
            end)
          !best_cands
    end
  in
  let dlx_solutions () =
    let placement_arr = Array.of_list placements in
    let problem = Dlx.create ~universe:idx (List.map (fun pl -> pl.covers) placements) in
    Dlx.solve ~max_solutions problem |> List.map (List.map (fun i -> placement_arr.(i)))
  in
  let raw_solutions =
    match engine with
    | `Backtracking ->
      solve ();
      List.rev !solutions
    | `Dlx -> dlx_solutions ()
  in
  let to_multi sol =
    let pieces =
      List.mapi
        (fun k p ->
          let offs = List.filter_map (fun pl -> if pl.piece = k then Some pl.anchor else None) sol in
          { Multi.tile = p; piece_offsets = offs })
        prototiles
      |> List.filter (fun pc -> pc.Multi.piece_offsets <> [])
    in
    match Multi.make ~period pieces with
    | Ok t -> t
    | Error msg -> invalid_arg ("Search.cover_torus: inconsistent solution: " ^ msg)
  in
  List.map to_multi raw_solutions

let default_factors = [ 1; 2; 3; 4 ]

let torus_single_tilings ~factors p =
  let d = Prototile.dim p in
  let m = Prototile.size p in
  List.concat_map
    (fun f ->
      List.concat_map
        (fun lam ->
          cover_torus ~period:lam ~prototiles:[ p ] ~max_solutions:1 ()
          |> List.filter_map (fun mt ->
                 match Multi.pieces mt with
                 | [ pc ] -> (
                   match
                     Single.make ~prototile:p ~period:lam ~offsets:pc.Multi.piece_offsets
                   with
                   | Ok t -> Some t
                   | Error _ -> None)
                 | _ -> None))
        (Sublattice.all_of_index ~dim:d (f * m)))
    factors

let find_tiling ?(torus_factors = default_factors) p =
  match find_lattice_tiling p with
  | Some t -> Some t
  | None -> (
    match torus_single_tilings ~factors:torus_factors p with
    | t :: _ -> Some t
    | [] -> None)

let find_respectable ?(torus_factors = default_factors) prototiles ?(max_solutions = 16) () =
  match prototiles with
  | [] -> invalid_arg "Search.find_respectable: no prototiles"
  | n1 :: rest ->
    if not (List.for_all (fun nk -> Prototile.subset nk n1) rest) then
      invalid_arg "Search.find_respectable: first prototile must contain the others";
    let d = Prototile.dim n1 in
    let m1 = Prototile.size n1 in
    let uses_all mt = List.length (Multi.pieces mt) = List.length prototiles in
    List.concat_map
      (fun f ->
        List.concat_map
          (fun lam ->
            (* Over-sample: many covers use only the big prototile. *)
            cover_torus ~period:lam ~prototiles ~max_solutions:(max_solutions * 16) ()
            |> List.filter (fun mt -> uses_all mt && Multi.is_respectable mt))
          (Sublattice.all_of_index ~dim:d (f * m1)))
      torus_factors
    |> List.filteri (fun i _ -> i < max_solutions)

let exactness ?(torus_factors = default_factors) p =
  if Prototile.dim p = 2 && Polyomino.is_polyomino p then
    if Boundary_word.is_exact_polyomino p then `Exact else `NotExact
  else if find_tiling ~torus_factors p <> None then `Exact
  else `Unknown
