(** Periodic tilings of [Z^d] by translates of a single prototile.

    A tiling in the paper's sense is a translation set [T] with
    [T + N = Z^d] (T1) and non-overlapping translates (T2).  We represent
    the periodic ones: [T = offsets + Lambda] for a period sublattice
    [Lambda] and finitely many coset offsets.  Both conditions then reduce
    to one exact statement on the finite quotient [Z^d / Lambda]: the map
    [(o, n) -> o + n mod Lambda] is a bijection onto the cosets.  [make]
    checks this, so every value of type {!t} {e is} a valid tiling - there
    is no unverified state.

    Every exact polyomino admits such a tiling (Wijshoff-van Leeuwen;
    Beauquier-Nivat), so for the paper's main setting periodicity is no
    loss of generality. *)

type t

val make :
  prototile:Lattice.Prototile.t ->
  period:Lattice.Sublattice.t ->
  offsets:Zgeom.Vec.t list ->
  (t, string) result
(** Validates T1 and T2 on the quotient; the error explains the violation
    (wrong count, duplicate coset, self-overlap). Offsets are reduced to
    canonical representatives and deduplicated first. *)

val make_exn :
  prototile:Lattice.Prototile.t ->
  period:Lattice.Sublattice.t ->
  offsets:Zgeom.Vec.t list ->
  t

val lattice_tiling : Lattice.Prototile.t -> Lattice.Sublattice.t -> (t, string) result
(** The case [T = Lambda] itself ([offsets = {0}]): valid iff the cells of
    the prototile form a complete residue system mod [Lambda]. *)

val prototile : t -> Lattice.Prototile.t
val period : t -> Lattice.Sublattice.t
val offsets : t -> Zgeom.Vec.t list
val dim : t -> int

val slots : t -> int
(** [|N|]: cells per tile, the schedule length of Theorem 1. *)

val in_translation_set : t -> Zgeom.Vec.t -> bool
(** Is the vector in [T]? *)

val tile_of : t -> Zgeom.Vec.t -> Zgeom.Vec.t * Zgeom.Vec.t
(** [tile_of t v] is the unique pair [(s, n)] with [s] in [T], [n] a cell
    of the prototile and [v = s + n] (T1 guarantees existence, T2
    uniqueness). O(1) after construction via a quotient lookup table. *)

val cell_index : t -> Zgeom.Vec.t -> int
(** Index (0-based, in [Prototile.cells] order) of the cell covering [v];
    [Theorem 1] assigns slot [cell_index + 1]. *)

val check_window : t -> radius:int -> bool
(** Independent brute-force re-verification on the cube [[-radius,
    radius]^d]: every point is covered by exactly one translate. Used by
    tests; [make] already guarantees it. *)

val translations_in_window : t -> radius:int -> Zgeom.Vec.t list
(** All elements of [T] whose tiles intersect the window (for rendering). *)

val pp : Format.formatter -> t -> unit
