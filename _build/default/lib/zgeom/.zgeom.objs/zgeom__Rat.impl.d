lib/zgeom/rat.ml: Format Stdlib
