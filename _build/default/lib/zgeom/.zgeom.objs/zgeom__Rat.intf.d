lib/zgeom/rat.mli: Format
