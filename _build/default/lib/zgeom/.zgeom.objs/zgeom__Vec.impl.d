lib/zgeom/vec.ml: Array Format Hashtbl Map Set Stdlib
