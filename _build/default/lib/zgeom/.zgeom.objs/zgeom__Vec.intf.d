lib/zgeom/vec.mli: Format Map Set
