lib/zgeom/zmat.ml: Array Format
