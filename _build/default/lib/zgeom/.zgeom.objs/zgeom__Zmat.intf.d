lib/zgeom/zmat.mli: Format
