type t = { num : int; den : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let make num den =
  assert (den <> 0);
  let s = if den < 0 then -1 else 1 in
  let g = gcd num den in
  let g = if g = 0 then 1 else g in
  { num = s * num / g; den = s * den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let half = make 1 2
let num r = r.num
let den r = r.den
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  assert (b.num <> 0);
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let equal a b = a.num = b.num && a.den = b.den

let sign a = Stdlib.compare a.num 0

let to_float a = float_of_int a.num /. float_of_int a.den

let floor a = if a.num >= 0 then a.num / a.den else -(((-a.num) + a.den - 1) / a.den)

let ceil a = -floor (neg a)

let pp fmt a =
  if a.den = 1 then Format.pp_print_int fmt a.num
  else Format.fprintf fmt "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
