(** Exact rational arithmetic on machine integers.

    Used where floating point would make a geometric predicate unreliable
    (Voronoi cells of the square lattice, point-in-region tests for the
    mobile-sensor rule).  Numerators and denominators stay tiny in all our
    uses, so machine-int overflow is not a practical concern; invariants
    are guarded by assertions. *)

type t
(** A rational, always normalized: positive denominator, gcd 1. *)

val make : int -> int -> t
(** [make num den]. Requires [den <> 0]. *)

val of_int : int -> t
val zero : t
val one : t
val half : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Requires a non-zero divisor. *)

val neg : t -> t
val abs : t -> t
val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val to_float : t -> float

val floor : t -> int
(** Greatest integer [<=]. *)

val ceil : t -> int
(** Least integer [>=]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
