(** Integer vectors in [Z^d].

    Lattice points are represented in the coordinates of the lattice basis,
    so every lattice is handled as [Z^d]; geometry (hexagonal embedding,
    Voronoi cells) lives in {!Rat} / {!Geom2d}.  Vectors are immutable:
    the underlying array is never exposed for mutation. *)

type t
(** A point of [Z^d]. *)

val of_array : int array -> t
(** Takes ownership conceptually; the array is copied. *)

val of_list : int list -> t

val to_array : t -> int array
(** Fresh array; safe to mutate. *)

val to_list : t -> int list

val make2 : int -> int -> t
(** [make2 x y] is the 2-D point [(x, y)]. *)

val x : t -> int
(** First coordinate. Requires [dim >= 1]. *)

val y : t -> int
(** Second coordinate. Requires [dim >= 2]. *)

val coord : t -> int -> int
(** [coord v i] is the [i]-th coordinate, 0-indexed. *)

val dim : t -> int

val zero : int -> t
(** [zero d] is the origin of [Z^d]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val dot : t -> t -> int

val norm1 : t -> int
(** Manhattan norm. *)

val norm_inf : t -> int
(** Chebyshev norm. *)

val norm2_sq : t -> int
(** Squared Euclidean norm (kept integral). *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic; total order used by {!Set} and {!Map}. *)

val is_zero : t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(x, y, ...)]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(* 2-D symmetry operations (identity on other dimensions is not defined:
   these require [dim = 2]). *)

val rot90 : t -> t
(** Counterclockwise quarter turn [(x, y) -> (-y, x)]. *)

val reflect_x : t -> t
(** Mirror across the x-axis [(x, y) -> (x, -y)]. *)
