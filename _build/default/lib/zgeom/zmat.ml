type t = int array array

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))
let copy m = Array.map Array.copy m

let dims m =
  let rows = Array.length m in
  (rows, if rows = 0 then 0 else Array.length m.(0))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  assert (ca = rb);
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let s = ref 0 in
          for k = 0 to ca - 1 do
            s := !s + (a.(i).(k) * b.(k).(j))
          done;
          !s))

let transpose m =
  let r, c = dims m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let equal (a : t) (b : t) = a = b

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "[%a]@,"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
           Format.pp_print_int)
        (Array.to_list row))
    m;
  Format.fprintf fmt "@]"

let apply_row m a =
  let r, c = dims m in
  assert (Array.length a = r);
  Array.init c (fun j ->
      let s = ref 0 in
      for i = 0 to r - 1 do
        s := !s + (a.(i) * m.(i).(j))
      done;
      !s)

(* Floor division, correct for negative numerators. *)
let fdiv a b = if a mod b <> 0 && a < 0 <> (b < 0) then (a / b) - 1 else a / b

let det m =
  let n, c = dims m in
  assert (n = c);
  if n = 0 then 1
  else begin
    let a = copy m in
    let sign = ref 1 in
    let prev = ref 1 in
    (try
       for k = 0 to n - 2 do
         if a.(k).(k) = 0 then begin
           (* Bareiss needs a non-zero pivot; swap one up or conclude det = 0. *)
           let piv = ref (-1) in
           for i = n - 1 downto k + 1 do
             if a.(i).(k) <> 0 then piv := i
           done;
           if !piv < 0 then raise Exit;
           let tmp = a.(k) in
           a.(k) <- a.(!piv);
           a.(!piv) <- tmp;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             a.(i).(j) <- ((a.(i).(j) * a.(k).(k)) - (a.(i).(k) * a.(k).(j))) / !prev
           done;
           a.(i).(k) <- 0
         done;
         prev := a.(k).(k)
       done
     with Exit -> a.(n - 1).(n - 1) <- 0);
    !sign * a.(n - 1).(n - 1)
  end

(* row_i <- row_i - q * row_j *)
let row_sub a i j q =
  if q <> 0 then
    for c = 0 to Array.length a.(i) - 1 do
      a.(i).(c) <- a.(i).(c) - (q * a.(j).(c))
    done

let row_neg a i =
  for c = 0 to Array.length a.(i) - 1 do
    a.(i).(c) <- -a.(i).(c)
  done

let hnf m =
  let a = copy m in
  let rows, cols = dims a in
  let r = ref 0 in
  for c = 0 to cols - 1 do
    if !r < rows then begin
      (* Gcd-eliminate column [c] below row [!r]: repeatedly bring the
         smallest non-zero entry to the pivot position and reduce the rest;
         this is Euclid's algorithm running on the whole column. *)
      let rec eliminate () =
        let best = ref (-1) in
        for i = rows - 1 downto !r do
          if a.(i).(c) <> 0 && (!best < 0 || abs a.(i).(c) < abs a.(!best).(c)) then
            best := i
        done;
        if !best >= 0 then begin
          if !best <> !r then begin
            let tmp = a.(!best) in
            a.(!best) <- a.(!r);
            a.(!r) <- tmp
          end;
          let dirty = ref false in
          for i = !r + 1 to rows - 1 do
            if a.(i).(c) <> 0 then begin
              row_sub a i !r (fdiv a.(i).(c) a.(!r).(c));
              if a.(i).(c) <> 0 then dirty := true
            end
          done;
          if !dirty then eliminate ()
        end
      in
      eliminate ();
      if a.(!r).(c) <> 0 then begin
        if a.(!r).(c) < 0 then row_neg a !r;
        for i = 0 to !r - 1 do
          row_sub a i !r (fdiv a.(i).(c) a.(!r).(c))
        done;
        incr r
      end
    end
  done;
  a

let is_hnf m =
  let rows, cols = dims m in
  let ok = ref (rows <= cols) in
  for i = 0 to rows - 1 do
    if i < cols then begin
      if m.(i).(i) <= 0 then ok := false;
      for j = 0 to min (i - 1) (cols - 1) do
        if m.(i).(j) <> 0 then ok := false
      done;
      for k = 0 to i - 1 do
        if not (0 <= m.(k).(i) && m.(k).(i) < m.(i).(i)) then ok := false
      done
    end
  done;
  !ok

let col_sub a j k q =
  if q <> 0 then
    for i = 0 to Array.length a - 1 do
      a.(i).(j) <- a.(i).(j) - (q * a.(i).(k))
    done

let snf m =
  let n, c = dims m in
  assert (n = c);
  let a = copy m in
  let swap_rows i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  let swap_cols i j =
    for r = 0 to n - 1 do
      let tmp = a.(r).(i) in
      a.(r).(i) <- a.(r).(j);
      a.(r).(j) <- tmp
    done
  in
  for t = 0 to n - 1 do
    (* Locate any non-zero entry in the trailing submatrix. *)
    let found = ref None in
    for i = n - 1 downto t do
      for j = n - 1 downto t do
        if a.(i).(j) <> 0 then found := Some (i, j)
      done
    done;
    match !found with
    | None -> ()
    | Some _ ->
      let finished = ref false in
      while not !finished do
        (* Bring the smallest non-zero entry of the submatrix to (t, t). *)
        let bi = ref (-1) and bj = ref (-1) in
        for i = t to n - 1 do
          for j = t to n - 1 do
            if a.(i).(j) <> 0 && (!bi < 0 || abs a.(i).(j) < abs a.(!bi).(!bj)) then begin
              bi := i;
              bj := j
            end
          done
        done;
        if !bi <> t then swap_rows !bi t;
        if !bj <> t then swap_cols !bj t;
        (* Reduce row and column [t] against the pivot. *)
        let dirty = ref false in
        for i = t + 1 to n - 1 do
          if a.(i).(t) <> 0 then begin
            row_sub a i t (fdiv a.(i).(t) a.(t).(t));
            if a.(i).(t) <> 0 then dirty := true
          end
        done;
        for j = t + 1 to n - 1 do
          if a.(t).(j) <> 0 then begin
            col_sub a j t (fdiv a.(t).(j) a.(t).(t));
            if a.(t).(j) <> 0 then dirty := true
          end
        done;
        if not !dirty then begin
          (* Row and column are clear; enforce the divisibility chain by
             folding any non-divisible entry into row [t] and restarting. *)
          let culprit = ref None in
          for i = t + 1 to n - 1 do
            for j = t + 1 to n - 1 do
              if a.(i).(j) mod a.(t).(t) <> 0 then culprit := Some i
            done
          done;
          match !culprit with
          | Some i -> row_sub a t i (-1)
          | None ->
            if a.(t).(t) < 0 then row_neg a t;
            finished := true
        end
      done
  done;
  a

let unimodular m =
  let r, c = dims m in
  r = c && abs (det m) = 1

let solve_triangular h x =
  let rows, cols = dims h in
  assert (Array.length x = cols);
  let rem = Array.copy x in
  let coeff = Array.make rows 0 in
  let ok = ref true in
  for i = 0 to rows - 1 do
    if !ok then begin
      let p = h.(i).(i) in
      if p = 0 then ok := false
      else if rem.(i) mod p <> 0 then ok := false
      else begin
        let q = rem.(i) / p in
        coeff.(i) <- q;
        for j = 0 to cols - 1 do
          rem.(j) <- rem.(j) - (q * h.(i).(j))
        done
      end
    end
  done;
  if !ok && Array.for_all (fun v -> v = 0) rem then Some coeff else None
