test/test_coloring.ml: Alcotest Array Coloring Int64 Lattice List Prng Prototile QCheck QCheck_alcotest Zgeom
