test/test_coloring.mli:
