test/test_core.ml: Alcotest Array Core Fun Hashtbl Int64 Lattice List Option Printf Prng Prototile QCheck QCheck_alcotest Randomtile Result String Sublattice Tiling Vec Voronoi Zgeom
