test/test_lattice.mli:
