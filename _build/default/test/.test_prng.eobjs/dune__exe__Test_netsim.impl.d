test/test_netsim.ml: Alcotest Array Core Float Lattice List Netsim Prng Prototile Stdlib String Sublattice Tiling Voronoi Zgeom
