test/test_netsim.mli:
