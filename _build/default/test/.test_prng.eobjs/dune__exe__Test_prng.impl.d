test/test_prng.ml: Alcotest Array Float Fun Int64 List Prng QCheck QCheck_alcotest Stdlib
