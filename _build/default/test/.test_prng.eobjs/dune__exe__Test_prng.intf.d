test/test_prng.mli:
