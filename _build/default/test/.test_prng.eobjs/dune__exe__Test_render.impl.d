test/test_render.ml: Alcotest Array Core Filename Lattice List Prototile Render String Sys Tiling Zgeom
