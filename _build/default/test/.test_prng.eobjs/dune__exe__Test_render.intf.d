test/test_render.mli:
