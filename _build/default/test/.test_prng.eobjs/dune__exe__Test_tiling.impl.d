test/test_tiling.ml: Alcotest Array Fun Int64 Lattice List Prng Prototile QCheck QCheck_alcotest Randomtile Stdlib String Sublattice Tiling Vec Zgeom
