test/test_tiling.mli:
