test/test_zgeom.ml: Alcotest Array Format QCheck QCheck_alcotest Rat Vec Zgeom Zmat
