test/test_zgeom.mli:
