(* Tests for the distance-2 coloring baselines. *)
open Lattice

let window g = Coloring.Graph.lattice_window ~prototile:g ~width:6 ~height:6

let test_window_graph_shape () =
  let g, sensors = window (Prototile.chebyshev_ball ~dim:2 1) in
  Alcotest.(check int) "36 sensors" 36 (Coloring.Graph.size g);
  Alcotest.(check int) "positions match" 36 (Array.length sensors);
  (* Interior sensor: the Chebyshev-1 difference set is the 5x5 block
     minus itself = 24 conflicts. *)
  let interior =
    Array.to_list sensors
    |> List.mapi (fun i v -> (i, v))
    |> List.find (fun (_, v) -> Zgeom.Vec.equal v (Zgeom.Vec.make2 3 3))
    |> fst
  in
  Alcotest.(check int) "interior degree 24" 24 (Coloring.Graph.degree g interior)

let test_graph_invariants () =
  let g, _ = window (Prototile.euclidean_ball ~dim:2 1) in
  Alcotest.(check int) "edge count consistent" (Coloring.Graph.num_edges g)
    (Array.fold_left
       (fun acc row -> acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 row)
       0 (Coloring.Graph.adj g)
    / 2);
  let nb = Coloring.Graph.neighbors g 0 in
  Alcotest.(check int) "neighbors = degree" (Coloring.Graph.degree g 0) (List.length nb)

let test_greedy_proper_all_orders () =
  let g, _ = window (Prototile.chebyshev_ball ~dim:2 1) in
  let rng = Prng.Xoshiro.create 11L in
  List.iter
    (fun order ->
      let c = Coloring.Greedy.color g order in
      Alcotest.(check bool) "proper" true (Coloring.Graph.is_proper g c))
    [ `Natural; `Random rng; `LargestFirst ]

let test_greedy_at_least_lower_bound () =
  (* Any proper coloring of the conflict graph needs >= |N| colors once
     the window contains a full clique (N + N translate). *)
  let n = Prototile.chebyshev_ball ~dim:2 1 in
  let g, _ = window n in
  List.iter
    (fun order ->
      Alcotest.(check bool) "greedy >= |N|" true
        (Coloring.Greedy.colors_used g order >= Prototile.size n))
    [ `Natural; `LargestFirst ]

let test_dsatur_proper_and_good () =
  let n = Prototile.chebyshev_ball ~dim:2 1 in
  let g, _ = window n in
  let c = Coloring.Dsatur.color g in
  Alcotest.(check bool) "proper" true (Coloring.Graph.is_proper g c);
  let used = Coloring.Graph.num_colors c in
  Alcotest.(check bool) "within [|N|, max_degree+1]" true
    (used >= Prototile.size n && used <= Coloring.Graph.max_degree g + 1)

let test_dsatur_exact_on_bipartite () =
  (* Dominoes' conflict graph on a path: distance-2 of a 1-D line with
     range {-1,0,1} gives cliques; use a simple explicit bipartite graph
     instead. *)
  let adj =
    Array.init 6 (fun i -> Array.init 6 (fun j -> (i + j) mod 2 = 1 && abs (i - j) <= 3))
  in
  let g = Coloring.Graph.of_adj adj in
  Alcotest.(check int) "bipartite = 2 colors" 2 (Coloring.Graph.num_colors (Coloring.Dsatur.color g))

let test_annealing_finds_valid () =
  let n = Prototile.euclidean_ball ~dim:2 1 in
  let g, _ = window n in
  let rng = Prng.Xoshiro.create 17L in
  let k = Coloring.Annealing.min_colors rng g in
  Alcotest.(check bool) "annealing >= |N|" true (k >= Prototile.size n);
  match Coloring.Annealing.solve_k rng g k with
  | Some c ->
    Alcotest.(check bool) "proper" true (Coloring.Graph.is_proper g c);
    Alcotest.(check bool) "within k colors" true (Coloring.Graph.num_colors c <= k)
  | None -> Alcotest.fail "annealing should re-find its own k"

let test_annealing_impossible_k () =
  let g = Coloring.Graph.of_adj (Array.init 4 (fun i -> Array.init 4 (fun j -> i <> j))) in
  let rng = Prng.Xoshiro.create 23L in
  Alcotest.(check bool) "K4 with 3 colors impossible" true
    (Coloring.Annealing.solve_k rng g 3 = None)

let test_tabucol_finds_valid () =
  let n = Prototile.euclidean_ball ~dim:2 1 in
  let g, _ = window n in
  let rng = Prng.Xoshiro.create 19L in
  let k = Coloring.Tabucol.min_colors rng g in
  Alcotest.(check bool) "tabucol >= |N|" true (k >= Prototile.size n);
  match Coloring.Tabucol.solve_k rng g k with
  | Some c ->
    Alcotest.(check bool) "proper" true (Coloring.Graph.is_proper g c);
    Alcotest.(check bool) "within k" true (Coloring.Graph.num_colors c <= k)
  | None -> Alcotest.fail "tabucol should re-find its own k"

let test_tabucol_impossible_k () =
  let g = Coloring.Graph.of_adj (Array.init 5 (fun i -> Array.init 5 (fun j -> i <> j))) in
  let rng = Prng.Xoshiro.create 29L in
  Alcotest.(check bool) "K5 with 4 colors impossible" true
    (Coloring.Tabucol.solve_k ~params:{ max_iters = 3000; tenure_base = 7 } rng g 4 = None);
  Alcotest.(check bool) "K5 with 5 colors possible" true
    (Coloring.Tabucol.solve_k rng g 5 <> None)

let test_tdma_baseline () =
  let g, _ = window (Prototile.chebyshev_ball ~dim:2 1) in
  Alcotest.(check int) "tdma = n" 36 (Coloring.Baseline.tdma_slots g);
  let c = Coloring.Baseline.tdma_coloring g in
  Alcotest.(check bool) "trivially proper" true (Coloring.Graph.is_proper g c)

let test_exact_matches_tiling_bound () =
  (* On a window with the clique, exact chromatic = |N| for exact
     prototiles (tiling schedule restricted is proper; clique bound). *)
  let n = Prototile.euclidean_ball ~dim:2 1 in
  let g, _ = Coloring.Graph.lattice_window ~prototile:n ~width:5 ~height:5 in
  Alcotest.(check int) "exact = |N| = 5" 5 (Coloring.Baseline.exact_min_colors g);
  Alcotest.(check int) "tiling slot count" 5 (Coloring.Baseline.tiling_slot_count n)

let test_heuristics_never_beat_exact () =
  let n = Prototile.euclidean_ball ~dim:2 1 in
  let g, _ = Coloring.Graph.lattice_window ~prototile:n ~width:5 ~height:5 in
  let exact = Coloring.Baseline.exact_min_colors g in
  Alcotest.(check bool) "dsatur >= exact" true (Coloring.Dsatur.colors_used g >= exact);
  Alcotest.(check bool) "greedy >= exact" true (Coloring.Greedy.colors_used g `Natural >= exact)

let qcheck_greedy_bound =
  let gen =
    QCheck.Gen.(
      int_range 2 12 >>= fun num ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      let adj = Array.make_matrix num num false in
      for i = 0 to num - 1 do
        for j = i + 1 to num - 1 do
          if Prng.Xoshiro.bernoulli rng 0.35 then begin
            adj.(i).(j) <- true;
            adj.(j).(i) <- true
          end
        done
      done;
      Coloring.Graph.of_adj adj)
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"greedy uses <= max_degree + 1 colors" ~count:80 arb (fun g ->
      let c = Coloring.Greedy.color g `Natural in
      Coloring.Graph.is_proper g c
      && Coloring.Graph.num_colors c <= Coloring.Graph.max_degree g + 1)

let qcheck_dsatur_vs_exact =
  let gen =
    QCheck.Gen.(
      int_range 2 8 >>= fun num ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      let adj = Array.make_matrix num num false in
      for i = 0 to num - 1 do
        for j = i + 1 to num - 1 do
          if Prng.Xoshiro.bernoulli rng 0.4 then begin
            adj.(i).(j) <- true;
            adj.(j).(i) <- true
          end
        done
      done;
      Coloring.Graph.of_adj adj)
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"dsatur within [exact, max_degree+1]" ~count:60 arb (fun g ->
      let exact = Coloring.Baseline.exact_min_colors g in
      let d = Coloring.Dsatur.colors_used g in
      exact <= d && d <= Coloring.Graph.max_degree g + 1)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "coloring"
    [
      ( "graph",
        [
          Alcotest.test_case "window shape" `Quick test_window_graph_shape;
          Alcotest.test_case "invariants" `Quick test_graph_invariants;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "proper all orders" `Quick test_greedy_proper_all_orders;
          Alcotest.test_case "at least |N|" `Quick test_greedy_at_least_lower_bound;
          qc qcheck_greedy_bound;
        ] );
      ( "dsatur",
        [
          Alcotest.test_case "proper and bounded" `Quick test_dsatur_proper_and_good;
          Alcotest.test_case "bipartite" `Quick test_dsatur_exact_on_bipartite;
          qc qcheck_dsatur_vs_exact;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "finds valid" `Slow test_annealing_finds_valid;
          Alcotest.test_case "impossible k" `Quick test_annealing_impossible_k;
        ] );
      ( "tabucol",
        [
          Alcotest.test_case "finds valid" `Slow test_tabucol_finds_valid;
          Alcotest.test_case "impossible k" `Quick test_tabucol_impossible_k;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "tdma" `Quick test_tdma_baseline;
          Alcotest.test_case "exact = |N|" `Quick test_exact_matches_tiling_bound;
          Alcotest.test_case "heuristics >= exact" `Quick test_heuristics_never_beat_exact;
        ] );
    ]
