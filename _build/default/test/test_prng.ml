(* Tests for the deterministic PRNG substrate. *)

let test_splitmix_reference () =
  (* Reference values for seed 0 from the SplitMix64 reference
     implementation (Steele et al.). *)
  let g = Prng.Splitmix64.create 0L in
  let expected = [ 0xE220A8397B1DCDAFL; 0x6E789E6AA1B965F4L; 0x06C45D188009454FL ] in
  List.iter
    (fun e -> Alcotest.(check int64) "splitmix64 stream" e (Prng.Splitmix64.next g))
    expected

let test_splitmix_copy_independent () =
  let g = Prng.Splitmix64.create 7L in
  let _ = Prng.Splitmix64.next g in
  let h = Prng.Splitmix64.copy g in
  let a = Prng.Splitmix64.next g in
  let b = Prng.Splitmix64.next h in
  Alcotest.(check int64) "copies continue identically" a b;
  let _ = Prng.Splitmix64.next g in
  ()

let test_determinism () =
  let a = Prng.Xoshiro.create 123L and b = Prng.Xoshiro.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Prng.Xoshiro.next64 a) (Prng.Xoshiro.next64 b)
  done

let test_different_seeds_differ () =
  let a = Prng.Xoshiro.create 1L and b = Prng.Xoshiro.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.Xoshiro.next64 a <> Prng.Xoshiro.next64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_split_independent () =
  let a = Prng.Xoshiro.create 5L in
  let b = Prng.Xoshiro.split a in
  let xs = List.init 20 (fun _ -> Prng.Xoshiro.next64 a) in
  let ys = List.init 20 (fun _ -> Prng.Xoshiro.next64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let g = Prng.Xoshiro.create 42L in
  for _ = 1 to 10_000 do
    let v = Prng.Xoshiro.int g 7 in
    Alcotest.(check bool) "in [0,7)" true (0 <= v && v < 7)
  done

let test_int_covers_all_residues () =
  let g = Prng.Xoshiro.create 43L in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    seen.(Prng.Xoshiro.int g 7) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let g = Prng.Xoshiro.create 44L in
  for _ = 1 to 10_000 do
    let v = Prng.Xoshiro.float g 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (0.0 <= v && v < 3.5)
  done

let test_bernoulli_extremes () =
  let g = Prng.Xoshiro.create 45L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.Xoshiro.bernoulli g 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.Xoshiro.bernoulli g 1.0)
  done

let test_bernoulli_mean () =
  let g = Prng.Xoshiro.create 46L in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.Xoshiro.bernoulli g 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "mean near 0.3" true (Float.abs (mean -. 0.3) < 0.02)

let test_exponential_mean () =
  let g = Prng.Xoshiro.create 47L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.Xoshiro.exponential g 2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.02)

let test_poisson_mean () =
  let g = Prng.Xoshiro.create 48L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.Xoshiro.poisson g 3.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.1)

let test_shuffle_permutation () =
  let g = Prng.Xoshiro.create 49L in
  let a = Array.init 50 Fun.id in
  Prng.Xoshiro.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_moves_something () =
  let g = Prng.Xoshiro.create 50L in
  let a = Array.init 50 Fun.id in
  Prng.Xoshiro.shuffle g a;
  Alcotest.(check bool) "not identity" true (a <> Array.init 50 Fun.id)

let test_pick_uniformish () =
  let g = Prng.Xoshiro.create 51L in
  let counts = Array.make 4 0 in
  for _ = 1 to 8_000 do
    let v = Prng.Xoshiro.pick g [| 0; 1; 2; 3 |] in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (abs (c - 2000) < 300))
    counts

let qcheck_int_bound =
  QCheck.Test.make ~name:"int bound respected for random bounds" ~count:500
    QCheck.(pair small_int (int_bound 1_000_000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let g = Prng.Xoshiro.create (Int64.of_int seed) in
      let v = Prng.Xoshiro.int g bound in
      0 <= v && v < bound)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference stream" `Quick test_splitmix_reference;
          Alcotest.test_case "copy independence" `Quick test_splitmix_copy_independent;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers residues" `Quick test_int_covers_all_residues;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Slow test_bernoulli_mean;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
          Alcotest.test_case "pick uniform" `Quick test_pick_uniformish;
          QCheck_alcotest.to_alcotest qcheck_int_bound;
        ] );
    ]
