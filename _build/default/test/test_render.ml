(* Tests for ASCII/SVG rendering and figure regeneration. *)
open Lattice

let test_slot_chars () =
  Alcotest.(check char) "digit" '0' (Render.Ascii.slot_char 0);
  Alcotest.(check char) "digit 9" '9' (Render.Ascii.slot_char 9);
  Alcotest.(check char) "letter" 'a' (Render.Ascii.slot_char 10);
  Alcotest.(check char) "letter z" 'z' (Render.Ascii.slot_char 35);
  Alcotest.(check char) "overflow" '?' (Render.Ascii.slot_char 99)

let test_grid_shape () =
  let g = Render.Ascii.grid ~width:4 ~height:3 ~char_at:(fun ~x ~y -> if x = y then '#' else '.') in
  let lines = String.split_on_char '\n' g in
  Alcotest.(check int) "3 lines" 3 (List.length lines);
  List.iter (fun l -> Alcotest.(check int) "width 4" 4 (String.length l)) lines;
  (* Top line is y = 2: '#' at x = 2. *)
  Alcotest.(check string) "orientation" "..#." (List.hd lines)

let schedule_and_tiling () =
  match Tiling.Search.find_tiling (Prototile.chebyshev_ball ~dim:2 1) with
  | Some t -> (Core.Schedule.of_tiling t, t)
  | None -> Alcotest.fail "ball tiles"

let test_schedule_render_consistent () =
  let s, _ = schedule_and_tiling () in
  let pic = Render.Ascii.schedule s ~width:6 ~height:6 in
  let lines = Array.of_list (String.split_on_char '\n' pic) in
  (* Character at (x, y) must equal the slot char of the schedule. *)
  for x = 0 to 5 do
    for y = 0 to 5 do
      let expected = Render.Ascii.slot_char (Core.Schedule.slot_at s (Zgeom.Vec.make2 x y)) in
      Alcotest.(check char) "pixel matches slot" expected lines.(5 - y).[x]
    done
  done

let test_tiling_render_tiles_contiguous () =
  let _, t = schedule_and_tiling () in
  let pic = Render.Ascii.tiling t ~width:9 ~height:9 in
  let lines = Array.of_list (String.split_on_char '\n' pic) in
  (* Two points of the same tile must carry the same letter. *)
  let letter x y = lines.(8 - y).[x] in
  for x = 0 to 8 do
    for y = 0 to 8 do
      let s, _ = Tiling.Single.tile_of t (Zgeom.Vec.make2 x y) in
      let sx = Zgeom.Vec.x s and sy = Zgeom.Vec.y s in
      if 0 <= sx && sx <= 8 && 0 <= sy && sy <= 8 then
        Alcotest.(check char) "tile letter = anchor letter" (letter sx sy) (letter x y)
    done
  done

let test_svg_wellformed () =
  let d = Render.Svg.create ~width:4.0 ~height:4.0 in
  Render.Svg.circle d ~cx:1.0 ~cy:1.0 ~r:0.2 ~fill:"black";
  Render.Svg.rect d ~x:0.0 ~y:0.0 ~w:1.0 ~h:1.0 ~fill:"red" ();
  Render.Svg.text d ~x:2.0 ~y:2.0 ~size:0.3 "hi";
  Render.Svg.line d ~x1:0.0 ~y1:0.0 ~x2:3.0 ~y2:3.0 ~stroke:"blue" ~width:0.05;
  Render.Svg.polygon d [ (0.0, 0.0); (1.0, 0.0); (0.5, 1.0) ] ~fill:"green" ();
  let s = Render.Svg.to_string d in
  Alcotest.(check bool) "has svg root" true
    (String.length s > 0
    && String.sub s 0 4 = "<svg"
    && String.length s >= 7
    && String.sub s (String.length s - 7) 6 = "</svg>")

let test_svg_contains_elements () =
  let d = Render.Svg.create ~width:2.0 ~height:2.0 in
  Render.Svg.circle d ~cx:1.0 ~cy:0.5 ~r:0.5 ~fill:"black";
  let s = Render.Svg.to_string d in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "circle present" true (contains "<circle");
  Alcotest.(check bool) "y flipped (0.5 -> 1.5)" true (contains "cy=\"1.500\"")

let test_palette_stable () =
  Alcotest.(check string) "same input same color" (Render.Svg.palette 3) (Render.Svg.palette 3);
  Alcotest.(check bool) "different colors exist" true
    (Render.Svg.palette 0 <> Render.Svg.palette 1);
  (* Negative keys are fine. *)
  Alcotest.(check string) "negative wraps" (Render.Svg.palette (-16 + 5)) (Render.Svg.palette 5)

(* --- Plot --- *)

let test_bar_chart () =
  let out = Render.Plot.bar ~width:10 [ ("aa", 10.0); ("b", 5.0); ("c", 0.0) ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "three rows" 3 (List.length lines);
  (* Max value gets a full-width bar, half value half of it. *)
  let count_hashes l = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l in
  Alcotest.(check int) "max full" 10 (count_hashes (List.nth lines 0));
  Alcotest.(check int) "half" 5 (count_hashes (List.nth lines 1));
  Alcotest.(check int) "zero" 0 (count_hashes (List.nth lines 2))

let test_line_chart_glyphs () =
  let out =
    Render.Plot.line ~width:30 ~height:8
      [ { Render.Plot.label = "flat"; points = [ (0.0, 1.0); (10.0, 1.0) ] };
        { Render.Plot.label = "rising"; points = [ (0.0, 0.0); (10.0, 10.0) ] } ]
  in
  let contains c = String.contains out c in
  Alcotest.(check bool) "first glyph plotted" true (contains '*');
  Alcotest.(check bool) "second glyph plotted" true (contains '+');
  Alcotest.(check bool) "legend present" true
    (let n = String.length out in
     let needle = "legend:" in
     let m = String.length needle in
     let rec go i = i + m <= n && (String.sub out i m = needle || go (i + 1)) in
     go 0)

let test_line_chart_degenerate () =
  (* Single point: must not crash or divide by zero. *)
  let out =
    Render.Plot.line [ { Render.Plot.label = "dot"; points = [ (5.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "nonempty" true (String.length out > 0);
  Alcotest.(check string) "empty series list" "(empty plot)\n"
    (Render.Plot.line [ { Render.Plot.label = "none"; points = [] } ])

let test_line_chart_log () =
  let out =
    Render.Plot.line ~log_y:true
      [ { Render.Plot.label = "exp"; points = [ (0.0, 1.0); (1.0, 10.0); (2.0, 100.0) ] } ]
  in
  Alcotest.(check bool) "log marker shown" true
    (let n = String.length out in
     let needle = "log scale" in
     let m = String.length needle in
     let rec go i = i + m <= n && (String.sub out i m = needle || go (i + 1)) in
     go 0)

let test_all_figures_build () =
  let figs = Render.Figures.all () in
  Alcotest.(check int) "five figures" 5 (List.length figs);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f.Render.Figures.name ^ " has ascii") true
        (String.length f.Render.Figures.ascii > 0);
      Alcotest.(check bool) (f.Render.Figures.name ^ " has svg") true
        (String.length (Render.Svg.to_string f.Render.Figures.svg) > 100))
    figs

let test_save_all () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "tilesched_figs_test" in
  let figs = [ Render.Figures.fig2_neighborhoods () ] in
  Render.Figures.save_all ~dir figs;
  Alcotest.(check bool) "svg written" true
    (Sys.file_exists (Filename.concat dir "fig2_neighborhoods.svg"));
  Alcotest.(check bool) "txt written" true
    (Sys.file_exists (Filename.concat dir "fig2_neighborhoods.txt"))

let () =
  Alcotest.run "render"
    [
      ( "ascii",
        [
          Alcotest.test_case "slot chars" `Quick test_slot_chars;
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
          Alcotest.test_case "schedule pixels" `Quick test_schedule_render_consistent;
          Alcotest.test_case "tiling contiguity" `Quick test_tiling_render_tiles_contiguous;
        ] );
      ( "svg",
        [
          Alcotest.test_case "wellformed" `Quick test_svg_wellformed;
          Alcotest.test_case "elements" `Quick test_svg_contains_elements;
          Alcotest.test_case "palette" `Quick test_palette_stable;
        ] );
      ( "plot",
        [
          Alcotest.test_case "bar" `Quick test_bar_chart;
          Alcotest.test_case "line glyphs" `Quick test_line_chart_glyphs;
          Alcotest.test_case "degenerate" `Quick test_line_chart_degenerate;
          Alcotest.test_case "log scale" `Quick test_line_chart_log;
        ] );
      ( "figures",
        [
          Alcotest.test_case "all build" `Slow test_all_figures_build;
          Alcotest.test_case "save_all" `Quick test_save_all;
        ] );
    ]
