(* Tests for exact integer/rational geometry. *)
open Zgeom

let vec = Alcotest.testable Vec.pp Vec.equal

(* --- Vec --- *)

let test_vec_basic () =
  let v = Vec.make2 3 (-2) in
  Alcotest.(check int) "x" 3 (Vec.x v);
  Alcotest.(check int) "y" (-2) (Vec.y v);
  Alcotest.(check int) "dim" 2 (Vec.dim v);
  Alcotest.check vec "of_list/to_list" v (Vec.of_list (Vec.to_list v))

let test_vec_arith () =
  let a = Vec.of_list [ 1; 2; 3 ] and b = Vec.of_list [ 4; -1; 0 ] in
  Alcotest.check vec "add" (Vec.of_list [ 5; 1; 3 ]) (Vec.add a b);
  Alcotest.check vec "sub" (Vec.of_list [ -3; 3; 3 ]) (Vec.sub a b);
  Alcotest.check vec "neg" (Vec.of_list [ -1; -2; -3 ]) (Vec.neg a);
  Alcotest.check vec "scale" (Vec.of_list [ 2; 4; 6 ]) (Vec.scale 2 a);
  Alcotest.(check int) "dot" 2 (Vec.dot a b)

let test_vec_norms () =
  let v = Vec.of_list [ 3; -4 ] in
  Alcotest.(check int) "norm1" 7 (Vec.norm1 v);
  Alcotest.(check int) "norm_inf" 4 (Vec.norm_inf v);
  Alcotest.(check int) "norm2_sq" 25 (Vec.norm2_sq v)

let test_vec_immutable () =
  let arr = [| 1; 2 |] in
  let v = Vec.of_array arr in
  arr.(0) <- 99;
  Alcotest.(check int) "of_array copies" 1 (Vec.x v);
  let out = Vec.to_array v in
  out.(0) <- 77;
  Alcotest.(check int) "to_array copies" 1 (Vec.x v)

let test_vec_rot90 () =
  let v = Vec.make2 2 1 in
  Alcotest.check vec "rot90" (Vec.make2 (-1) 2) (Vec.rot90 v);
  Alcotest.check vec "rot90^4 = id" v (Vec.rot90 (Vec.rot90 (Vec.rot90 (Vec.rot90 v))));
  Alcotest.check vec "reflect" (Vec.make2 2 (-1)) (Vec.reflect_x v)

let vec2_gen = QCheck.Gen.(map (fun (a, b) -> Vec.make2 a b) (pair (int_range (-50) 50) (int_range (-50) 50)))
let vec2_arb = QCheck.make ~print:Vec.to_string vec2_gen

let qcheck_vec_group =
  QCheck.Test.make ~name:"vec addition is a commutative group" ~count:300
    (QCheck.pair vec2_arb vec2_arb) (fun (a, b) ->
      Vec.equal (Vec.add a b) (Vec.add b a)
      && Vec.equal (Vec.add a (Vec.neg a)) (Vec.zero 2)
      && Vec.equal (Vec.sub a b) (Vec.add a (Vec.neg b)))

let qcheck_vec_norm_triangle =
  QCheck.Test.make ~name:"triangle inequality (l1, linf)" ~count:300
    (QCheck.pair vec2_arb vec2_arb) (fun (a, b) ->
      Vec.norm1 (Vec.add a b) <= Vec.norm1 a + Vec.norm1 b
      && Vec.norm_inf (Vec.add a b) <= Vec.norm_inf a + Vec.norm_inf b)

(* --- Rat --- *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "-1/-2 = 1/2" Rat.half (Rat.make (-1) (-2));
  Alcotest.check rat "2/-4 = -1/2" (Rat.make (-1) 2) (Rat.make 2 (-4));
  Alcotest.(check int) "den positive" 2 (Rat.den (Rat.make 2 (-4)))

let test_rat_arith () =
  let a = Rat.make 1 3 and b = Rat.make 1 6 in
  Alcotest.check rat "add" Rat.half (Rat.add a b);
  Alcotest.check rat "sub" (Rat.make 1 6) (Rat.sub a b);
  Alcotest.check rat "mul" (Rat.make 1 18) (Rat.mul a b);
  Alcotest.check rat "div" (Rat.of_int 2) (Rat.div a b)

let test_rat_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "floor integer" 5 (Rat.floor (Rat.of_int 5));
  Alcotest.(check int) "ceil integer" 5 (Rat.ceil (Rat.of_int 5))

let test_rat_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Rat.compare (Rat.make 1 3) Rat.half < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Rat.compare (Rat.make (-1) 2) (Rat.make 1 3) < 0);
  Alcotest.(check int) "sign" (-1) (Rat.sign (Rat.make (-3) 7))

let rat_gen =
  QCheck.Gen.(
    map
      (fun (n, d) -> Rat.make n (if d = 0 then 1 else d))
      (pair (int_range (-100) 100) (int_range (-30) 30)))

let rat_arb = QCheck.make ~print:Rat.to_string rat_gen

let qcheck_rat_field =
  QCheck.Test.make ~name:"rational field laws" ~count:300 (QCheck.pair rat_arb rat_arb)
    (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.mul a b) (Rat.mul b a)
      && Rat.equal (Rat.sub (Rat.add a b) b) a
      && (Rat.sign b = 0 || Rat.equal (Rat.mul (Rat.div a b) b) a))

let qcheck_rat_floor =
  QCheck.Test.make ~name:"floor/ceil bracket the value" ~count:300 rat_arb (fun a ->
      let f = Rat.of_int (Rat.floor a) and c = Rat.of_int (Rat.ceil a) in
      Rat.compare f a <= 0 && Rat.compare a c <= 0
      && Rat.ceil a - Rat.floor a <= 1)

(* --- Zmat --- *)

let test_det_examples () =
  Alcotest.(check int) "identity" 1 (Zmat.det (Zmat.identity 3));
  Alcotest.(check int) "2x2" (-2) (Zmat.det [| [| 1; 2 |]; [| 3; 4 |] |]);
  Alcotest.(check int) "singular" 0 (Zmat.det [| [| 1; 2 |]; [| 2; 4 |] |]);
  Alcotest.(check int) "3x3" 1 (Zmat.det [| [| 2; 3; 1 |]; [| 1; 2; 1 |]; [| 1; 1; 1 |] |]);
  Alcotest.(check int) "needs pivot swap" (-1)
    (Zmat.det [| [| 0; 1 |]; [| 1; 0 |] |])

let test_hnf_examples () =
  let h = Zmat.hnf [| [| 0; 1 |]; [| 2; 0 |] |] in
  Alcotest.(check bool) "hnf shape" true (Zmat.is_hnf h);
  Alcotest.(check int) "preserved det" 2 (abs (Zmat.det h))

let test_hnf_negative_entries () =
  let h = Zmat.hnf [| [| -3; 1 |]; [| 1; -3 |] |] in
  Alcotest.(check bool) "hnf shape" true (Zmat.is_hnf h);
  Alcotest.(check int) "det" 8 (abs (Zmat.det h))

let test_snf_examples () =
  let s = Zmat.snf [| [| 2; 0 |]; [| 0; 4 |] |] in
  Alcotest.(check int) "d1" 2 s.(0).(0);
  Alcotest.(check int) "d2" 4 s.(1).(1);
  (* A matrix whose SNF requires the divisibility fix-up. *)
  let s = Zmat.snf [| [| 2; 0 |]; [| 0; 3 |] |] in
  Alcotest.(check int) "d1 divides d2" 0 (s.(1).(1) mod s.(0).(0));
  Alcotest.(check int) "product = det" 6 (s.(0).(0) * s.(1).(1))

let test_solve_triangular () =
  let h = [| [| 2; 1 |]; [| 0; 3 |] |] in
  (match Zmat.solve_triangular h [| 4; 5 |] with
  | Some a ->
    Alcotest.(check (array int)) "solution" [| 2; 1 |] a;
    Alcotest.(check (array int)) "verifies" [| 4; 5 |] (Zmat.apply_row h a)
  | None -> Alcotest.fail "expected solution");
  Alcotest.(check bool) "no integer solution" true (Zmat.solve_triangular h [| 1; 0 |] = None)

let test_mat_basic_ops () =
  let a = [| [| 1; 2 |]; [| 3; 4 |] |] in
  Alcotest.(check bool) "identity is neutral" true (Zmat.equal (Zmat.mul a (Zmat.identity 2)) a);
  Alcotest.(check bool) "transpose involutive" true
    (Zmat.equal (Zmat.transpose (Zmat.transpose a)) a);
  Alcotest.(check (array int)) "apply_row = vector-matrix product" [| 7; 10 |]
    (Zmat.apply_row a [| 1; 2 |]);
  Alcotest.(check (pair int int)) "dims" (2, 2) (Zmat.dims a);
  Alcotest.(check bool) "copy is deep" true
    (let c = Zmat.copy a in
     c.(0).(0) <- 99;
     a.(0).(0) = 1)

let test_unimodular () =
  Alcotest.(check bool) "identity unimodular" true (Zmat.unimodular (Zmat.identity 3));
  Alcotest.(check bool) "det -1 unimodular" true (Zmat.unimodular [| [| 0; 1 |]; [| 1; 0 |] |]);
  Alcotest.(check bool) "det 2 not" false (Zmat.unimodular [| [| 2; 0 |]; [| 0; 1 |] |])

let test_hnf_3x3 () =
  let a = [| [| 2; 3; 5 |]; [| 7; 11; 13 |]; [| 17; 19; 23 |] |] in
  let h = Zmat.hnf a in
  Alcotest.(check bool) "3x3 hnf shape" true (Zmat.is_hnf h);
  Alcotest.(check int) "3x3 det preserved" (abs (Zmat.det a)) (abs (Zmat.det h))

let test_snf_3x3 () =
  let s = Zmat.snf [| [| 2; 4; 4 |]; [| -6; 6; 12 |]; [| 10; 4; 16 |] |] in
  (* Known example: SNF diag (2, 2, 156). *)
  Alcotest.(check int) "d1" 2 s.(0).(0);
  Alcotest.(check int) "d2" 2 s.(1).(1);
  Alcotest.(check int) "d3" 156 s.(2).(2)

let mat2_gen =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) -> [| [| a; b |]; [| c; d |] |])
      (quad (int_range (-9) 9) (int_range (-9) 9) (int_range (-9) 9) (int_range (-9) 9)))

let mat2_arb =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Zmat.pp m) mat2_gen

let qcheck_det_multiplicative =
  QCheck.Test.make ~name:"det(AB) = det(A)det(B)" ~count:300 (QCheck.pair mat2_arb mat2_arb)
    (fun (a, b) -> Zmat.det (Zmat.mul a b) = Zmat.det a * Zmat.det b)

let qcheck_det_transpose =
  QCheck.Test.make ~name:"det(A^T) = det(A)" ~count:300 mat2_arb (fun a ->
      Zmat.det (Zmat.transpose a) = Zmat.det a)

let qcheck_hnf_properties =
  QCheck.Test.make ~name:"hnf: shape + |det| preserved + same row space" ~count:300 mat2_arb
    (fun a ->
      QCheck.assume (Zmat.det a <> 0);
      let h = Zmat.hnf a in
      Zmat.is_hnf h
      && abs (Zmat.det h) = abs (Zmat.det a)
      &&
      (* Every row of a is an integer combination of rows of h. *)
      Array.for_all (fun row -> Zmat.solve_triangular h row <> None) a)

let qcheck_snf_divisibility =
  QCheck.Test.make ~name:"snf: diagonal, nonneg, divisibility chain, det" ~count:300 mat2_arb
    (fun a ->
      let s = Zmat.snf a in
      s.(0).(1) = 0 && s.(1).(0) = 0
      && s.(0).(0) >= 0
      && s.(1).(1) >= 0
      && (s.(0).(0) = 0 || s.(1).(1) mod s.(0).(0) = 0)
      && abs (s.(0).(0) * s.(1).(1)) = abs (Zmat.det a))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "zgeom"
    [
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "immutability" `Quick test_vec_immutable;
          Alcotest.test_case "rot90/reflect" `Quick test_vec_rot90;
          qc qcheck_vec_group;
          qc qcheck_vec_norm_triangle;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare/sign" `Quick test_rat_compare;
          qc qcheck_rat_field;
          qc qcheck_rat_floor;
        ] );
      ( "zmat",
        [
          Alcotest.test_case "det examples" `Quick test_det_examples;
          Alcotest.test_case "hnf examples" `Quick test_hnf_examples;
          Alcotest.test_case "hnf negatives" `Quick test_hnf_negative_entries;
          Alcotest.test_case "snf examples" `Quick test_snf_examples;
          Alcotest.test_case "solve triangular" `Quick test_solve_triangular;
          Alcotest.test_case "basic ops" `Quick test_mat_basic_ops;
          Alcotest.test_case "unimodular" `Quick test_unimodular;
          Alcotest.test_case "hnf 3x3" `Quick test_hnf_3x3;
          Alcotest.test_case "snf 3x3" `Quick test_snf_3x3;
          qc qcheck_det_multiplicative;
          qc qcheck_det_transpose;
          qc qcheck_hnf_properties;
          qc qcheck_snf_divisibility;
        ] );
    ]
