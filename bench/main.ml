(* Experiment harness: regenerates every figure of the paper (the paper is
   a brief announcement - five figures, no tables) and runs the
   quantitative evaluation its introduction motivates, then Bechamel
   micro-benchmarks of the core machinery.

   Output sections are indexed in DESIGN.md and summarized in
   EXPERIMENTS.md.  Run with: dune exec bench/main.exe *)

open Lattice

let section id title =
  Printf.printf "\n============================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "============================================================\n%!"

(* ------------------------------------------------------------------ *)
(* EXP-F1 .. EXP-F5: the five figures                                   *)
(* ------------------------------------------------------------------ *)

let figures () =
  let figs = Render.Figures.all () in
  Render.Figures.save_all ~dir:"out" figs;
  List.iteri
    (fun i f ->
      section (Printf.sprintf "EXP-F%d" (i + 1)) ("figure " ^ f.Render.Figures.name);
      print_endline f.Render.Figures.ascii)
    figs;
  Printf.printf "\n[SVG copies saved under out/]\n"

(* ------------------------------------------------------------------ *)
(* EXP-T1: Theorem 1 across a prototile family                          *)
(* ------------------------------------------------------------------ *)

let theorem1 () =
  section "EXP-T1" "Theorem 1: optimal collision-free schedules from tilings";
  Printf.printf "%-14s %6s %8s %10s %16s %10s\n" "prototile" "|N|" "slots" "slots=|N|"
    "collision-free" "window-ok";
  List.iter
    (fun (name, p) ->
      match Tiling.Search.find_tiling p with
      | None -> Printf.printf "%-14s %6d %s\n" name (Prototile.size p) "NO TILING"
      | Some t ->
        let s = Core.Schedule.of_tiling t in
        Printf.printf "%-14s %6d %8d %10b %16b %10b\n" name (Prototile.size p)
          (Core.Schedule.num_slots s)
          (Core.Schedule.num_slots s = Prototile.size p)
          (Core.Collision.is_collision_free_theorem1 t s)
          (Tiling.Single.check_window t ~radius:6))
    [ ("cheb1", Prototile.chebyshev_ball ~dim:2 1); ("cheb2", Prototile.chebyshev_ball ~dim:2 2);
      ("cheb3", Prototile.chebyshev_ball ~dim:2 3); ("euclid1", Prototile.euclidean_ball ~dim:2 1);
      ("euclid2", Prototile.euclidean_ball ~dim:2 2);
      ("manhattan2", Prototile.manhattan_ball ~dim:2 2); ("directional", Prototile.directional);
      ("rect3x2", Prototile.rect 3 2); ("rect4x4", Prototile.rect 4 4);
      ("tet-S", Prototile.tetromino `S); ("tet-T", Prototile.tetromino `T);
      ("tet-L", Prototile.tetromino `L); ("pent-X", Prototile.pentomino `X);
      ("pent-W", Prototile.pentomino `W); ("pent-Y", Prototile.pentomino `Y) ]

(* ------------------------------------------------------------------ *)
(* EXP-T2: Theorem 2 with several prototiles                            *)
(* ------------------------------------------------------------------ *)

let theorem2 () =
  section "EXP-T2" "Theorem 2: respectable multi-prototile tilings";
  (* (a) respectable: 2x2 squares + single-cell gap fillers. *)
  let n1 = Prototile.rect 2 2 in
  let n2 = Prototile.of_cells [ Zgeom.Vec.zero 2 ] in
  let period = Sublattice.of_basis [| [| 5; 0 |]; [| 0; 2 |] |] in
  let m =
    Tiling.Multi.make_exn ~period
      [ { Tiling.Multi.tile = n1; piece_offsets = [ Zgeom.Vec.zero 2; Zgeom.Vec.make2 2 0 ] };
        { Tiling.Multi.tile = n2;
          piece_offsets = [ Zgeom.Vec.make2 4 0; Zgeom.Vec.make2 4 1 ] } ]
  in
  let s = Core.Schedule.of_multi m in
  Printf.printf "respectable pair (2x2 squares + single cells):\n";
  Printf.printf "  respectable          : %b\n" (Tiling.Multi.is_respectable m);
  Printf.printf "  slots m = |N1|       : %d (|N1| = 4)\n" (Core.Schedule.num_slots s);
  Printf.printf "  collision-free       : %b\n" (Core.Collision.is_collision_free_multi m s);
  Printf.printf "  ground-rule optimum  : %d\n" (Core.Optimality.ground_rule_minimum m);
  (* (b) three prototiles: ball r1 contains plus and single. *)
  let ball = Prototile.chebyshev_ball ~dim:2 1 in
  let plus = Prototile.euclidean_ball ~dim:2 1 in
  let corners =
    [ Zgeom.Vec.make2 (-1) (-1); Zgeom.Vec.make2 1 (-1); Zgeom.Vec.make2 (-1) 1;
      Zgeom.Vec.make2 1 1 ]
  in
  let period3 = Sublattice.of_basis [| [| 6; 0 |]; [| 0; 3 |] |] in
  let m3 =
    Tiling.Multi.make_exn ~period:period3
      [ { Tiling.Multi.tile = ball; piece_offsets = [ Zgeom.Vec.make2 1 1 ] };
        { Tiling.Multi.tile = plus; piece_offsets = [ Zgeom.Vec.make2 4 1 ] };
        { Tiling.Multi.tile = Prototile.of_cells [ Zgeom.Vec.zero 2 ];
          piece_offsets = List.map (fun c -> Zgeom.Vec.add (Zgeom.Vec.make2 4 1) c) corners } ]
  in
  let s3 = Core.Schedule.of_multi m3 in
  Printf.printf "\nthree-prototile respectable tiling (ball > plus > single):\n";
  Printf.printf "  respectable          : %b\n" (Tiling.Multi.is_respectable m3);
  Printf.printf "  slots m = |N1|       : %d (|N1| = 9)\n" (Core.Schedule.num_slots s3);
  Printf.printf "  collision-free       : %b\n" (Core.Collision.is_collision_free_multi m3 s3);
  Printf.printf "  ground-rule optimum  : %d\n" (Core.Optimality.ground_rule_minimum m3)

(* ------------------------------------------------------------------ *)
(* EXP-F5b: all S/Z tilings quantified                                  *)
(* ------------------------------------------------------------------ *)

let figure5_quantified () =
  section "EXP-F5b" "Figure 5 quantified: ground-rule optimum depends on the tiling";
  let s = Prototile.tetromino `S and z = Prototile.tetromino `Z in
  let period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |] in
  let sols = Tiling.Search.cover_torus ~period ~prototiles:[ s; z ] ~max_solutions:500 () in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let mixed = List.length (Tiling.Multi.pieces m) = 2 in
      let k = Core.Optimality.ground_rule_minimum m in
      let key = (mixed, k) in
      Hashtbl.replace tally key (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    sols;
  Printf.printf "%-24s %12s %8s\n" "tiling class" "optimum" "count";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort Stdlib.compare
  |> List.iter (fun ((mixed, k), v) ->
         Printf.printf "%-24s %12d %8d\n" (if mixed then "mixed S+Z" else "single-shape") k v);
  Printf.printf "\npaper's claim: the S/Z mixed tiling needs 6 slots, the symmetric\n";
  Printf.printf "single-shape tiling needs 4 - both classes appear above.\n"

(* ------------------------------------------------------------------ *)
(* EXP-C1: finite restriction                                           *)
(* ------------------------------------------------------------------ *)

let finite_restriction () =
  section "EXP-C1" "Conclusions: restriction to finite domains";
  let n = Prototile.euclidean_ball ~dim:2 1 in
  let t = Option.get (Tiling.Search.find_tiling n) in
  Printf.printf "%-10s %14s %15s %13s\n" "domain" "criterion-met" "finite-optimum" "tiling-slots";
  List.iter
    (fun side ->
      let dom =
        Core.Finite.box ~lo:(Zgeom.Vec.make2 0 0) ~hi:(Zgeom.Vec.make2 (side - 1) (side - 1))
      in
      let crit = Core.Finite.meets_optimality_criterion dom n in
      let opt = Core.Finite.optimal_slots ~neighborhood:(fun _ -> n) dom in
      let sched = Core.Schedule.of_tiling t in
      let module IS = Set.Make (Int) in
      let used =
        Zgeom.Vec.Set.fold (fun v acc -> IS.add (Core.Schedule.slot_at sched v) acc) dom IS.empty
        |> IS.cardinal
      in
      Printf.printf "%-10s %14b %15d %13d\n"
        (Printf.sprintf "%dx%d" side side)
        crit opt used)
    [ 1; 2; 3; 4; 5 ];
  Printf.printf "\nonce the domain contains a translate of N+N (5x5 here: criterion true),\n";
  Printf.printf "the finite optimum equals |N| = 5 and the restricted schedule achieves it;\n";
  Printf.printf "smaller domains genuinely beat the infinite-lattice bound.\n"

(* ------------------------------------------------------------------ *)
(* EXP-C2: mobile sensors                                               *)
(* ------------------------------------------------------------------ *)

let mobile () =
  section "EXP-C2" "Conclusions: mobile sensors on location slots";
  let prototile = Prototile.rect 2 2 in
  let tiling =
    Tiling.Single.make_exn ~prototile
      ~period:(Sublattice.of_basis [| [| 2; 0 |]; [| 0; 2 |] |])
      ~offsets:[ Zgeom.Vec.zero 2 ]
  in
  Printf.printf "%8s %10s %11s %14s %11s\n" "radius" "attempts" "delivered" "eligible-frac"
    "collisions";
  List.iter
    (fun radius ->
      let r =
        Netsim.Mobile_sim.run
          { tiling; arena_width = 12.0; num_sensors = 40; radius; speed = 0.3; pause = 2;
            send_interval = 8; duration = 2500; seed = 17L }
      in
      Printf.printf "%8.2f %10d %11d %14.3f %11d\n" radius r.Netsim.Mobile_sim.attempts
        r.Netsim.Mobile_sim.deliveries r.Netsim.Mobile_sim.eligible_slot_fraction
        r.Netsim.Mobile_sim.collisions)
    [ 0.2; 0.35; 0.5; 0.7; 0.9 ];
  Printf.printf "\ncollisions are zero at every radius, as the conclusions claim;\n";
  Printf.printf "the eligible fraction is the throughput cost of mobility.\n"

(* ------------------------------------------------------------------ *)
(* EXP-S3: exactness decision (Section 3)                               *)
(* ------------------------------------------------------------------ *)

let staircase = Microbench.staircase

let exactness_catalogue () =
  section "EXP-S3" "Section 3: deciding exactness (Beauquier-Nivat)";
  Printf.printf "all tetrominoes and pentominoes (fixed orientation):\n";
  Printf.printf "%-8s %10s %9s %14s\n" "shape" "perimeter" "exact" "factor-type";
  let describe name p =
    let w = Polyomino.boundary_word p in
    let fact = Boundary_word.find_factorization w in
    let kind =
      match fact with
      | None -> "-"
      | Some f -> if f.Boundary_word.len3 = 0 then "pseudo-square" else "pseudo-hexagon"
    in
    Printf.printf "%-8s %10d %9b %14s\n" name (String.length w) (fact <> None) kind
  in
  List.iter
    (fun (n, p) -> describe n p)
    [ ("tet-I", Prototile.tetromino `I); ("tet-O", Prototile.tetromino `O);
      ("tet-T", Prototile.tetromino `T); ("tet-S", Prototile.tetromino `S);
      ("tet-Z", Prototile.tetromino `Z); ("tet-L", Prototile.tetromino `L);
      ("tet-J", Prototile.tetromino `J); ("pent-F", Prototile.pentomino `F);
      ("pent-I", Prototile.pentomino `I); ("pent-L", Prototile.pentomino `L);
      ("pent-N", Prototile.pentomino `N); ("pent-P", Prototile.pentomino `P);
      ("pent-T", Prototile.pentomino `T); ("pent-U", Prototile.pentomino `U);
      ("pent-V", Prototile.pentomino `V); ("pent-W", Prototile.pentomino `W);
      ("pent-X", Prototile.pentomino `X); ("pent-Y", Prototile.pentomino `Y);
      ("pent-Z", Prototile.pentomino `Z) ];
  Printf.printf "\npolynomial scaling of the BN decision (staircase polyominoes):\n";
  Printf.printf "%12s %12s %14s\n" "boundary n" "time (ms)" "per n^2 (ns)";
  List.iter
    (fun k ->
      let p = staircase k in
      let w = Polyomino.boundary_word p in
      let n = String.length w in
      let reps = max 1 (2_000_000 / (n * n)) in
      let t0 = Sys.time () in
      for _ = 1 to reps do
        ignore (Boundary_word.find_factorization w)
      done;
      let dt = (Sys.time () -. t0) /. float_of_int reps in
      Printf.printf "%12d %12.3f %14.1f\n" n (dt *. 1e3) (dt *. 1e9 /. float_of_int (n * n)))
    [ 5; 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* EXP-S3b: perfect Lee codes / Golomb-Welch                            *)
(* ------------------------------------------------------------------ *)

let golomb_welch () =
  section "EXP-S3b" "extension: tilings as perfect Lee codes (Golomb-Welch)";
  Printf.printf
    "a tiling by the Manhattan ball of radius r is exactly a perfect r-error-\n\
     correcting Lee code (Stein-Szabo, the paper's ref [10]).  Lee spheres\n\
     tile Z^2 for every r and Z^d for r = 1; Golomb-Welch conjecture: never\n\
     for d >= 3, r >= 2.  Our searches agree on the smallest open-ish case:\n\n";
  Printf.printf "%4s %4s %6s %18s %12s\n" "d" "r" "|N|" "lattice-tilings" "verdict";
  List.iter
    (fun (d, r) ->
      let p = Prototile.manhattan_ball ~dim:d r in
      let lats = List.length (Tiling.Search.lattice_tilings p) in
      let verdict =
        if lats > 0 then "tiles (perfect code)"
        else begin
          (* Bounded torus search: periods of index 2|N| and 3|N|. *)
          let found = ref false in
          List.iter
            (fun f ->
              if not !found then
                List.iter
                  (fun lam ->
                    if (not !found)
                       && Tiling.Search.cover_torus ~period:lam ~prototiles:[ p ]
                            ~max_solutions:1 ()
                          <> []
                    then found := true)
                  (Sublattice.all_of_index ~dim:d (f * Prototile.size p)))
            [ 2; 3 ];
          if !found then "tiles (non-lattice)" else "no tiling up to index 3|N|"
        end
      in
      Printf.printf "%4d %4d %6d %18d %12s\n" d r (Prototile.size p) lats verdict)
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2) ];
  Printf.printf
    "\nd=3, r=2: no lattice tiling and no periodic tiling with fundamental\n\
     domain up to 75 cells - consistent with Golomb-Welch (proved for d=3).\n\
     scheduling reading: radius-2 Manhattan radios in 3-D space cannot be\n\
     scheduled at the |N| = 25 lower bound by any tiling schedule.\n"

(* ------------------------------------------------------------------ *)
(* EXP-Q1: slot counts vs baselines                                     *)
(* ------------------------------------------------------------------ *)

let slot_comparison () =
  section "EXP-Q1" "slots: lattice schedule vs TDMA and distance-2 heuristics";
  Printf.printf "%-8s %-8s %6s %8s %8s %8s %8s %8s %8s %8s\n" "radius" "field" "|N|" "tdma"
    "greedy" "WP" "dsatur" "anneal" "tabu" "tiling";
  let rng = Prng.Xoshiro.create 3L in
  List.iter
    (fun r ->
      let n = Prototile.chebyshev_ball ~dim:2 r in
      List.iter
        (fun side ->
          let g, _ = Coloring.Graph.lattice_window ~prototile:n ~width:side ~height:side in
          Printf.printf "%-8d %-8s %6d %8d %8d %8d %8d %8d %8d %8d\n" r
            (Printf.sprintf "%dx%d" side side)
            (Prototile.size n) (Coloring.Baseline.tdma_slots g)
            (Coloring.Greedy.colors_used g `Natural)
            (Coloring.Greedy.colors_used g `LargestFirst)
            (Coloring.Dsatur.colors_used g)
            (Coloring.Annealing.min_colors rng g)
            (Coloring.Tabucol.min_colors rng g)
            (Coloring.Baseline.tiling_slot_count n))
        [ 6; 10; 14 ])
    [ 1; 2 ];
  Printf.printf "\nTDMA grows with the field (does not scale); heuristics are >= |N|;\n";
  Printf.printf "the tiling schedule is exactly |N| at any field size.\n"

(* ------------------------------------------------------------------ *)
(* EXP-Q2: protocols under rising load                                  *)
(* ------------------------------------------------------------------ *)

let protocol_comparison () =
  section "EXP-Q2" "simulator: collisions / delivery / energy under rising load";
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  let tiling = Option.get (Tiling.Search.find_tiling prototile) in
  let schedule = Core.Schedule.of_tiling tiling in
  let width = 12 and height = 12 in
  let duration = 3000 in
  Printf.printf "%-10s %-14s %9s %10s %9s %10s %11s\n" "interval" "protocol" "attempts"
    "collisions" "delivery" "lat(mean)" "energy/del";
  List.iter
    (fun interval ->
      List.iter
        (fun mac ->
          let r =
            Netsim.Sim.run
              { (Netsim.Sim.default_config ~mac) with width; height; prototile; duration;
                workload = Netsim.Workload.Periodic { interval }; seed = 7L }
          in
          assert (Netsim.Sim.conservation_ok r);
          let s = r.Netsim.Sim.stats in
          Printf.printf "%-10d %-14s %9d %10d %8.1f%% %10.1f %11.2f\n" interval
            r.Netsim.Sim.mac_name s.Netsim.Stats.attempts s.Netsim.Stats.collisions
            (100.0 *. s.Netsim.Stats.delivery_ratio)
            s.Netsim.Stats.mean_latency s.Netsim.Stats.energy_per_delivery)
        [ Netsim.Mac.lattice_tdma schedule; Netsim.Mac.full_tdma ~num_nodes:(width * height);
          Netsim.Mac.slotted_aloha ~p:0.15 ~max_backoff_exp:6; Netsim.Mac.p_csma ~p:0.2 ])
    [ 200; 100; 50; 25 ];
  Printf.printf "\nlattice TDMA: zero collisions at every load (Theorem 1);\n";
  Printf.printf "contention protocols collide increasingly; full TDMA is lossless but slow.\n"

(* ------------------------------------------------------------------ *)
(* EXP-Q3: scalability with field size                                  *)
(* ------------------------------------------------------------------ *)

let scalability () =
  section "EXP-Q3" "scalability: period stays m as the field grows";
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  let tiling = Option.get (Tiling.Search.find_tiling prototile) in
  let schedule = Core.Schedule.of_tiling tiling in
  Printf.printf "%-8s %8s %16s %16s %18s %18s\n" "field" "nodes" "lattice-period"
    "full-tdma-period" "lattice-lat" "full-tdma-lat";
  let lat_series = ref [] and full_series = ref [] in
  List.iter
    (fun side ->
      let nodes = side * side in
      let run mac =
        Netsim.Sim.run
          { (Netsim.Sim.default_config ~mac) with width = side; height = side; prototile;
            duration = 8 * nodes; workload = Netsim.Workload.Periodic { interval = 4 * nodes };
            seed = 13L }
      in
      let rl = run (Netsim.Mac.lattice_tdma schedule) in
      let rf = run (Netsim.Mac.full_tdma ~num_nodes:nodes) in
      lat_series :=
        (float_of_int nodes, rl.Netsim.Sim.stats.Netsim.Stats.mean_latency) :: !lat_series;
      full_series :=
        (float_of_int nodes, rf.Netsim.Sim.stats.Netsim.Stats.mean_latency) :: !full_series;
      Printf.printf "%-8s %8d %16d %16d %18.1f %18.1f\n"
        (Printf.sprintf "%dx%d" side side)
        nodes
        (Core.Schedule.num_slots schedule)
        nodes rl.Netsim.Sim.stats.Netsim.Stats.mean_latency
        rf.Netsim.Sim.stats.Netsim.Stats.mean_latency)
    [ 8; 12; 16; 24; 32 ];
  print_newline ();
  print_string
    (Render.Plot.line ~width:56 ~height:12 ~x_label:"nodes" ~y_label:"mean latency (slots)"
       [ { Render.Plot.label = "lattice TDMA"; points = List.rev !lat_series };
         { Render.Plot.label = "full TDMA"; points = List.rev !full_series } ]);
  Printf.printf "\nthe lattice schedule's period (and so its latency) is constant in the\n";
  Printf.printf "field size; full TDMA's period - hence latency - grows linearly.\n"

(* ------------------------------------------------------------------ *)
(* EXP-A1: time synchronization (the clock assumption, made real)       *)
(* ------------------------------------------------------------------ *)

let timesync_ablation () =
  section "EXP-A1" "ablation: where the shared clock comes from (beacon flooding)";
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  let tiling = Option.get (Tiling.Search.find_tiling prototile) in
  let schedule = Core.Schedule.of_tiling tiling in
  let base resync =
    { Netsim.Timesync.width = 12; height = 12; prototile; schedule;
      root = Zgeom.Vec.make2 6 6; resync_period = resync; drift_ppm = 500.0;
      hop_jitter = 0.02; duration = 20_000; seed = 9L }
  in
  Printf.printf "drift +-500 ppm, hop jitter +-0.02 slots, 20000 slots, 12x12 grid\n\n";
  Printf.printf "%-14s %12s %12s %14s %12s\n" "resync-period" "max-err" "mean-err" "violations"
    "beacons";
  List.iter
    (fun resync ->
      let r = Netsim.Timesync.run (base resync) in
      let err v = if resync = 0 then "n/a" else Printf.sprintf "%.3f" v in
      Printf.printf "%-14s %12s %12s %14d %12d\n"
        (if resync = 0 then "never" else string_of_int resync)
        (err r.Netsim.Timesync.max_clock_error)
        (err r.Netsim.Timesync.mean_clock_error)
        r.Netsim.Timesync.tdma_violations r.Netsim.Timesync.beacons_sent)
    [ 500; 1000; 2000; 4000; 0 ];
  print_newline ();
  let bars =
    List.map
      (fun resync ->
        let r = Netsim.Timesync.run (base resync) in
        ( (if resync = 0 then "never" else string_of_int resync),
          float_of_int r.Netsim.Timesync.tdma_violations ))
      [ 500; 1000; 2000; 4000; 0 ]
  in
  Printf.printf "violations by resync period:\n%s" (Render.Plot.bar ~width:44 bars);
  Printf.printf
    "\nthe schedule stays collision-free as long as resynchronization keeps the\n\
     worst clock error under half a slot; the paper's time assumption costs a\n\
     trickle of beacons (themselves staggered collision-free by the schedule).\n"

(* ------------------------------------------------------------------ *)
(* EXP-A2: BN algorithm ablation                                        *)
(* ------------------------------------------------------------------ *)

(* Non-exact family with growing boundary: wide U shapes (the U-pentomino
   generalized) never admit a BN factorization, so both algorithms must
   exhaust their search spaces - the worst case. *)
let u_shape w =
  assert (w >= 3);
  let cells =
    List.init w (fun x -> Zgeom.Vec.make2 x 0)
    @ [ Zgeom.Vec.make2 0 1; Zgeom.Vec.make2 0 2; Zgeom.Vec.make2 (w - 1) 1;
        Zgeom.Vec.make2 (w - 1) 2 ]
  in
  Prototile.of_cells cells

let bn_ablation () =
  section "EXP-A2" "ablation: BN factorization, run-table O(n^3) vs naive O(n^4)";
  let time w f =
    let n = String.length w in
    let reps = max 1 (500_000 / (n * n)) in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (f w)
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let row label p =
    let w = Polyomino.boundary_word p in
    let n = String.length w in
    let exact = Boundary_word.find_factorization w <> None in
    assert (exact = (Boundary_word.find_factorization_naive w <> None));
    let fast = time w Boundary_word.find_factorization in
    let naive = time w Boundary_word.find_factorization_naive in
    Printf.printf "%-16s %8d %8b %14.3f %14.3f %9.1fx\n" label n exact (fast *. 1e3)
      (naive *. 1e3) (naive /. fast)
  in
  Printf.printf "%-16s %8s %8s %14s %14s %10s\n" "shape" "n" "exact" "table (ms)" "naive (ms)"
    "speedup";
  List.iter (fun k -> row (Printf.sprintf "staircase-%d" k) (staircase k)) [ 10; 40 ];
  let table_pts = ref [] and naive_pts = ref [] in
  List.iter
    (fun w ->
      let p = u_shape w in
      let word = Polyomino.boundary_word p in
      let n = String.length word in
      table_pts := (float_of_int n, 1e3 *. time word Boundary_word.find_factorization) :: !table_pts;
      naive_pts :=
        (float_of_int n, 1e3 *. time word Boundary_word.find_factorization_naive) :: !naive_pts;
      row (Printf.sprintf "U-shape-%d" w) p)
    [ 10; 20; 40; 80 ];
  print_newline ();
  print_string
    (Render.Plot.line ~width:50 ~height:10 ~x_label:"boundary length n" ~y_label:"ms"
       ~log_y:true
       [ { Render.Plot.label = "run-table"; points = List.rev !table_pts };
         { Render.Plot.label = "naive"; points = List.rev !naive_pts } ]);
  Printf.printf
    "\non exact shapes a factorization is found early and the naive scan's lack\n\
     of table setup wins; on non-exact shapes the search is exhaustive and the\n\
     run-table algorithm pulls ahead, increasingly with n - the regime the\n\
     Gambini-Vuillon O(n^2) result targets.\n"

(* ------------------------------------------------------------------ *)
(* EXP-A3: channel-model ablation                                       *)
(* ------------------------------------------------------------------ *)

let channel_ablation () =
  section "EXP-A3" "ablation: capture effect and channel loss";
  let prototile = Prototile.chebyshev_ball ~dim:2 2 in
  let tiling = Option.get (Tiling.Search.find_tiling prototile) in
  let schedule = Core.Schedule.of_tiling tiling in
  let run mac capture loss_prob =
    Netsim.Sim.run
      { (Netsim.Sim.default_config ~mac) with width = 10; height = 10; prototile;
        duration = 3000; capture; loss_prob;
        workload = Netsim.Workload.Periodic { interval = 40 }; seed = 21L }
  in
  Printf.printf "%-14s %-18s %10s %8s %8s %9s\n" "protocol" "channel" "collisions" "fades"
    "rx-loss" "delivery";
  List.iter
    (fun (mac_name, mac) ->
      List.iter
        (fun (chan_name, capture, loss) ->
          let r = run mac capture loss in
          let s = r.Netsim.Sim.stats in
          Printf.printf "%-14s %-18s %10d %8d %8d %8.1f%%\n" mac_name chan_name
            s.Netsim.Stats.collisions s.Netsim.Stats.fades s.Netsim.Stats.receiver_losses
            (100.0 *. s.Netsim.Stats.delivery_ratio))
        [ ("binary", false, 0.0); ("capture", true, 0.0); ("loss 2%", false, 0.02) ])
    [ ("lattice-tdma", Netsim.Mac.lattice_tdma schedule);
      ("slotted-aloha", Netsim.Mac.slotted_aloha ~p:0.2 ~max_backoff_exp:6) ];
  Printf.printf
    "\nthe schedule's zero-collision guarantee is invariant to the channel model\n\
     (capture changes nothing; loss causes fades, never collisions), while the\n\
     contention baseline's losses move with the physics.\n"

(* ------------------------------------------------------------------ *)
(* EXP-A4: tuning the contention baseline                               *)
(* ------------------------------------------------------------------ *)

let aloha_tuning () =
  section "EXP-A4" "ablation: slotted-ALOHA transmit probability (fair baseline tuning)";
  let prototile = Prototile.chebyshev_ball ~dim:2 1 in
  Printf.printf "%8s %10s %12s %10s %12s\n" "p" "attempts" "collisions" "delivery" "energy/del";
  List.iter
    (fun p_tx ->
      let r =
        Netsim.Sim.run
          { (Netsim.Sim.default_config ~mac:(Netsim.Mac.slotted_aloha ~p:p_tx ~max_backoff_exp:6)) with
            width = 12; height = 12; prototile; duration = 3000;
            workload = Netsim.Workload.Periodic { interval = 40 }; seed = 5L }
      in
      let s = r.Netsim.Sim.stats in
      Printf.printf "%8.2f %10d %12d %9.1f%% %12.2f\n" p_tx s.Netsim.Stats.attempts
        s.Netsim.Stats.collisions
        (100.0 *. s.Netsim.Stats.delivery_ratio)
        s.Netsim.Stats.energy_per_delivery)
    [ 0.02; 0.05; 0.1; 0.2; 0.4 ];
  Printf.printf
    "\neven at its best operating point the contention baseline pays collisions\n\
     and energy the deterministic schedule never does (compare EXP-Q2).\n"

(* ------------------------------------------------------------------ *)
(* EXP-P1: parallel engine, speedup and determinism                     *)
(* ------------------------------------------------------------------ *)

let parallel_speedup () =
  section "EXP-P1" "parallel engine: speedup vs jobs, with output identity checked";
  Printf.printf "host reports %d core(s) available to this process\n\n"
    (Domain.recommended_domain_count ());
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* Each workload is a closure over a pool; the jobs=1 run is the
     reference both for the timing baseline and for the identity check
     (the determinism contract says every pool size returns the same
     value, so equality here is a hard assertion, not a statistic). *)
  let report name runs =
    Printf.printf "%s\n" name;
    Printf.printf "  %6s %12s %10s %10s\n" "jobs" "time (s)" "speedup" "identical";
    let baseline = ref None in
    List.iter
      (fun jobs ->
        Parallel.with_pool ~jobs (fun pool ->
            let v, dt = wall (fun () -> runs pool) in
            let same, base_dt =
              match !baseline with
              | None ->
                baseline := Some (v, dt);
                (true, dt)
              | Some (v0, dt0) -> (v = v0, dt0)
            in
            assert same;
            Printf.printf "  %6d %12.3f %9.2fx %10b\n" jobs dt (base_dt /. dt) same))
      [ 1; 2; 4 ];
    print_newline ()
  in
  let s_tet = Prototile.tetromino `S and z_tet = Prototile.tetromino `Z in
  let sz_period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 8 |] |] in
  report "torus exact cover, S+Z on 4x8, backtracking, all solutions" (fun pool ->
      Tiling.Search.cover_torus ~period:sz_period ~prototiles:[ s_tet; z_tet ]
        ~max_solutions:max_int ~engine:`Backtracking ~pool ());
  report "torus exact cover, S+Z on 4x8, dancing links, all solutions" (fun pool ->
      Tiling.Search.cover_torus ~period:sz_period ~prototiles:[ s_tet; z_tet ]
        ~max_solutions:max_int ~engine:`Dlx ~pool ());
  report "torus exact cover, S+Z on 4x8, bitmask, all solutions" (fun pool ->
      Tiling.Search.cover_torus ~period:sz_period ~prototiles:[ s_tet; z_tet ]
        ~max_solutions:max_int ~engine:`Bitmask ~pool ());
  report "lattice tilings, Chebyshev ball r=3 (|N| = 49)" (fun pool ->
      Tiling.Search.lattice_tilings ~pool (Prototile.chebyshev_ball ~dim:2 3));
  let cheb1 = Prototile.chebyshev_ball ~dim:2 1 in
  let sched = Core.Schedule.of_tiling (Option.get (Tiling.Search.find_tiling cheb1)) in
  let sweep_cfg =
    { (Netsim.Sim.default_config ~mac:(Netsim.Mac.lattice_tdma sched)) with
      width = 16; height = 16; prototile = cheb1; duration = 4000 }
  in
  report "netsim sweep, 8 seeds x 4000 slots, 16x16 lattice TDMA" (fun pool ->
      Netsim.Sim.run_sweep ~pool sweep_cfg ~seeds:(List.init 8 Int64.of_int));
  Printf.printf
    "speedup tracks the core count (a 1-core host shows ~1.00x everywhere:\n\
     the pool adds domains but the OS interleaves them); the identity column\n\
     is the determinism contract, asserted, not sampled.\n"

(* ------------------------------------------------------------------ *)
(* EXP-SRV: schedule server under load                                  *)
(* ------------------------------------------------------------------ *)

let server_loadgen () =
  section "EXP-SRV" "schedule server: canonicalizing cache, backpressure, -j identity";
  let run ~jobs ~clients ~queue_bound config =
    Parallel.with_pool ~jobs (fun pool ->
        let engine = Server.create ~cache_capacity:64 ~queue_bound ~pool () in
        Server.Loadgen.run engine { config with Server.Loadgen.clients })
  in
  let config = { Server.Loadgen.default with Server.Loadgen.seed = 11L } in
  (* The acceptance workload: 10k completions, Zipf-skewed over a
     catalogue whose congruent pairs (S/Z, L/J, 2x3/3x2, O/2x2) the
     canonical cache key must merge. *)
  let r1 = run ~jobs:1 ~clients:8 ~queue_bound:64 config in
  Format.printf "clients=8 queue_bound=64 jobs=1@.%a@.(%a)@.@." Server.Loadgen.pp_report r1
    Server.Loadgen.pp_timing r1;
  assert (r1.Server.Loadgen.completed = 10_000);
  assert (r1.Server.Loadgen.hit_rate > 0.9);
  assert (r1.Server.Loadgen.overloaded_replies = 0);
  (* Identity across pool sizes: the deterministic report, checksum
     included, is asserted equal - the determinism contract again. *)
  let summary r = Format.asprintf "%a" Server.Loadgen.pp_report r in
  let r4 = run ~jobs:4 ~clients:8 ~queue_bound:64 config in
  assert (summary r4 = summary r1);
  Printf.printf "jobs=4 deterministic report identical: %b\n\n" (summary r4 = summary r1);
  (* Overload: 3x more clients than admission slots. Every round sheds
     load explicitly; nothing is dropped or queued unboundedly. *)
  let ro = run ~jobs:2 ~clients:96 ~queue_bound:32 config in
  Format.printf "clients=96 queue_bound=32 jobs=2 (forced overload)@.%a@.(%a)@.@."
    Server.Loadgen.pp_report ro Server.Loadgen.pp_timing ro;
  assert (ro.Server.Loadgen.completed = 10_000);
  assert (ro.Server.Loadgen.overloaded_replies > 0);
  Printf.printf
    "every refusal above is an explicit overloaded reply followed by a client\n\
     retry - the bounded queue never drops silently and never grows past the\n\
     admission bound.\n"

(* ------------------------------------------------------------------ *)
(* EXP-STORE: persistent certificate store, cold vs warm start          *)
(* ------------------------------------------------------------------ *)

let store_warm_start () =
  section "EXP-STORE" "certificate store: cold start vs warm restart (area <= 5)";
  let path = Filename.temp_file "tilesched-bench-store" ".log" in
  let tiles = Store.Precompute.tiles_up_to 5 in
  (* One pass over every canonical class of area <= 5, per-request
     latency into the same estimator the simulator uses. *)
  let drive engine =
    let stats = Netsim.Stats.create () in
    List.iter
      (fun tile ->
        let t0 = Unix.gettimeofday () in
        ignore (Server.handle engine (Server.Protocol.Tile_search tile));
        Netsim.Stats.record_arrival stats;
        Netsim.Stats.record_delivery stats
          ~latency:(int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)))
      tiles;
    Netsim.Stats.snapshot stats
  in
  let run () =
    let store = Store.open_ path in
    let engine = Server.create ~store () in
    let latency = drive engine in
    let stats = Server.stats engine in
    Store.close store;
    (latency, stats)
  in
  let cold, cold_stats = run () in
  let warm, warm_stats = run () in
  Sys.remove path;
  (* The store contract: the first run pays one search per class, the
     restarted engine pays none. *)
  assert (cold_stats.Server.Protocol.searches = List.length tiles);
  assert (warm_stats.Server.Protocol.searches = 0);
  assert (warm_stats.Server.Protocol.store_hits = List.length tiles);
  let pr name (s : Netsim.Stats.snapshot) (es : Server.Protocol.server_stats) =
    Printf.printf "  %-12s p50=%8.0fus  p95=%8.0fus  max=%8dus  searches=%d store_hits=%d\n"
      name s.Netsim.Stats.p50_latency s.Netsim.Stats.p95_latency
      s.Netsim.Stats.max_latency es.Server.Protocol.searches
      es.Server.Protocol.store_hits
  in
  Printf.printf "%d canonical classes (areas 1..5), one tile-search each\n" (List.length tiles);
  pr "cold" cold cold_stats;
  pr "warm" warm warm_stats;
  Printf.printf
    "cold->warm p95 speedup: %.0fx\n\
     the warm run answers every query from the recovered log - zero searches,\n\
     asserted - so restart cost is bounded by log replay, not by re-search.\n"
    (cold.Netsim.Stats.p95_latency /. Float.max 1.0 warm.Netsim.Stats.p95_latency)

(* ------------------------------------------------------------------ *)
(* EXP-P2: engine shootout on the acceptance workload                    *)
(* ------------------------------------------------------------------ *)

let engine_shootout () =
  section "EXP-P2" "exact-cover engine shootout: backtracking vs DLX vs bitmask";
  let s_tet = Prototile.tetromino `S and z_tet = Prototile.tetromino `Z in
  let sz_period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 8 |] |] in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run engine pool =
    Tiling.Search.cover_torus ~period:sz_period ~prototiles:[ s_tet; z_tet ]
      ~max_solutions:max_int ~engine ?pool ()
  in
  (* Sequential, all solutions: the workload the bitmask kernel was built
     for.  The identity of the full ordered solution lists is asserted,
     so the speedup is for byte-identical output. *)
  Printf.printf "S+Z on 4x8, all solutions, jobs=1:\n";
  Printf.printf "  %-14s %12s %10s\n" "engine" "time (s)" "speedup";
  let reference, bt_dt = wall (fun () -> run `Backtracking None) in
  Printf.printf "  %-14s %12.3f %9.2fx\n" "backtracking" bt_dt 1.0;
  List.iter
    (fun (engine, name) ->
      let v, dt = wall (fun () -> run engine None) in
      assert (v = reference);
      Printf.printf "  %-14s %12.3f %9.2fx\n" name dt (bt_dt /. dt))
    [ (`Dlx, "dlx"); (`Bitmask, "bitmask") ];
  Printf.printf "  (%d solutions; ordered lists asserted identical)\n" (List.length reference);
  (* The bitmask engine under the parallel split: still the same list. *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      let v, dt = wall (fun () -> run `Bitmask (Some pool)) in
      assert (v = reference);
      Printf.printf "  %-14s %12.3f %9.2fx  (identical: true)\n" "bitmask -j4" dt (bt_dt /. dt));
  (* Pure enumeration: the same tree without materializing solutions.
     End-to-end, every engine shares the Multi construction and the
     retention of 1024 result values - an Amdahl floor that caps the
     ratio above; counting removes it and exposes the kernels. *)
  let count engine pool =
    Tiling.Search.count_torus_covers ~period:sz_period ~prototiles:[ s_tet; z_tet ] ~engine
      ?pool ()
  in
  Printf.printf "\nsame workload, enumeration only (count_torus_covers), jobs=1:\n";
  Printf.printf "  %-14s %12s %10s\n" "engine" "time (s)" "speedup";
  let n_ref, cnt_bt = wall (fun () -> count `Backtracking None) in
  assert (n_ref = List.length reference);
  Printf.printf "  %-14s %12.3f %9.2fx\n" "backtracking" cnt_bt 1.0;
  List.iter
    (fun (engine, name) ->
      let n, dt = wall (fun () -> count engine None) in
      assert (n = n_ref);
      Printf.printf "  %-14s %12.3f %9.2fx\n" name dt (cnt_bt /. dt))
    [ (`Dlx, "dlx"); (`Bitmask, "bitmask") ];
  Parallel.with_pool ~jobs:4 (fun pool ->
      let n = count `Bitmask (Some pool) in
      assert (n = n_ref);
      Printf.printf "  (count %d = solution-list length at every engine and pool size)\n" n);
  Printf.printf
    "\nthe bitmask engine replaces the backtracker's per-node list scans with\n\
     static conflict lists, an undo stack and incrementally maintained candidate\n\
     counts; DESIGN.md section 11 explains why the enumeration order is preserved\n\
     and EXPERIMENTS.md EXP-P2 breaks down the materialization floor.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "BENCH" "Bechamel micro-benchmarks (ns per call, OLS estimate)";
  let rows = Microbench.run () in
  Printf.printf "%-42s %16s\n" "benchmark" "ns/call";
  List.iter
    (fun r -> Printf.printf "%-42s %16.1f\n" r.Microbench.name r.Microbench.ns_per_call)
    rows;
  let json = Microbench.to_json rows in
  (match Microbench.validate_json json with
  | Ok _ -> ()
  | Error msg -> failwith ("BENCH_5.json failed self-validation: " ^ msg));
  let oc = open_out "BENCH_5.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "\n[wrote BENCH_5.json: %d rows, schema-validated]\n" (List.length rows)

let () =
  print_endline "tilesched experiment harness - reproduces every figure of";
  print_endline "\"Scheduling Sensors by Tiling Lattices\" (Klappenecker, Lee, Welch 2008)";
  print_endline "plus the quantitative evaluation its introduction motivates.";
  figures ();
  theorem1 ();
  theorem2 ();
  figure5_quantified ();
  finite_restriction ();
  mobile ();
  exactness_catalogue ();
  golomb_welch ();
  slot_comparison ();
  protocol_comparison ();
  scalability ();
  timesync_ablation ();
  bn_ablation ();
  channel_ablation ();
  aloha_tuning ();
  parallel_speedup ();
  engine_shootout ();
  server_loadgen ();
  store_warm_start ();
  micro_benchmarks ();
  print_endline "\nall experiments complete."
