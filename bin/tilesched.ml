(* tilesched: command-line front end.

   Subcommands:
     figure    - regenerate a figure of the paper (ASCII to stdout + SVG)
     exact     - decide whether a prototile tiles the lattice
     schedule  - build and verify an optimal schedule for a prototile
     color     - compare slot counts against classical baselines
     simulate  - run the wireless simulator under a chosen MAC

   Prototiles are named on the command line:
     cheb<r>, euclid<r>, manhattan<r>, rect<W>x<H>, dir,
     tet-<I|O|T|S|Z|L|J>, pent-<F|I|L|N|P|T|U|V|W|X|Y|Z>,
     or cells:<x,y;x,y;...> (must include 0,0). *)

open Cmdliner
open Lattice

(* ---------- prototile parsing ---------- *)

let parse_tile s =
  let fail msg = Error (`Msg msg) in
  let prefix p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let suffix_int p = int_of_string (String.sub s (String.length p) (String.length s - String.length p)) in
  try
    if s = "dir" then Ok Prototile.directional
    else if prefix "cheb" then Ok (Prototile.chebyshev_ball ~dim:2 (suffix_int "cheb"))
    else if prefix "euclid" then Ok (Prototile.euclidean_ball ~dim:2 (suffix_int "euclid"))
    else if prefix "manhattan" then Ok (Prototile.manhattan_ball ~dim:2 (suffix_int "manhattan"))
    else if prefix "rect" then begin
      match String.split_on_char 'x' (String.sub s 4 (String.length s - 4)) with
      | [ w; h ] -> Ok (Prototile.rect (int_of_string w) (int_of_string h))
      | _ -> fail "rect needs the form rect<W>x<H>"
    end
    else if prefix "tet-" then begin
      match String.sub s 4 1 with
      | "I" -> Ok (Prototile.tetromino `I)
      | "O" -> Ok (Prototile.tetromino `O)
      | "T" -> Ok (Prototile.tetromino `T)
      | "S" -> Ok (Prototile.tetromino `S)
      | "Z" -> Ok (Prototile.tetromino `Z)
      | "L" -> Ok (Prototile.tetromino `L)
      | "J" -> Ok (Prototile.tetromino `J)
      | c -> fail ("unknown tetromino " ^ c)
    end
    else if prefix "pent-" then begin
      match String.sub s 5 1 with
      | "F" -> Ok (Prototile.pentomino `F)
      | "I" -> Ok (Prototile.pentomino `I)
      | "L" -> Ok (Prototile.pentomino `L)
      | "N" -> Ok (Prototile.pentomino `N)
      | "P" -> Ok (Prototile.pentomino `P)
      | "T" -> Ok (Prototile.pentomino `T)
      | "U" -> Ok (Prototile.pentomino `U)
      | "V" -> Ok (Prototile.pentomino `V)
      | "W" -> Ok (Prototile.pentomino `W)
      | "X" -> Ok (Prototile.pentomino `X)
      | "Y" -> Ok (Prototile.pentomino `Y)
      | "Z" -> Ok (Prototile.pentomino `Z)
      | c -> fail ("unknown pentomino " ^ c)
    end
    else if prefix "cells:" then begin
      let body = String.sub s 6 (String.length s - 6) in
      let cells =
        String.split_on_char ';' body
        |> List.map (fun pair ->
               match String.split_on_char ',' pair with
               | [ x; y ] -> Zgeom.Vec.make2 (int_of_string x) (int_of_string y)
               | _ -> failwith "cells need the form x,y;x,y;...")
      in
      Ok (Prototile.of_cells cells)
    end
    else fail ("unknown prototile: " ^ s)
  with
  | Failure msg -> fail msg
  | Assert_failure _ -> fail "invalid prototile (did you include the origin 0,0?)"

let tile_conv = Arg.conv (parse_tile, fun fmt p -> Format.fprintf fmt "%d-cell tile" (Prototile.size p))

let tile_arg =
  Arg.(
    required
    & opt (some tile_conv) None
    & info [ "t"; "tile" ] ~docv:"TILE" ~doc:"Interference prototile (e.g. cheb1, tet-S, rect2x4).")

(* Every subcommand that searches or simulates takes [-j]: it sizes the
   process-wide domain pool that the search engines draw from.  Results
   are bit-identical at every value (see DESIGN.md, "Parallel engine"). *)
let jobs_term =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | Some _ -> Error (`Msg "must be at least 1")
      | None -> Error (`Msg "expected an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let jobs =
    Arg.(
      value & opt jobs_conv 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the search and simulation engines (1 = sequential). Output is \
             bit-identical at every value.")
  in
  (* [--sched] picks how subtrees reach the domains: the work-stealing
     scheduler (default) or the original static split, kept selectable
     as its differential oracle.  Output is bit-identical either way. *)
  let sched_conv =
    let parse = function
      | "static" -> Ok `Static
      | "steal" -> Ok `Steal
      | s -> Error (`Msg (Printf.sprintf "unknown scheduler %S (expected static or steal)" s))
    in
    let print fmt s =
      Format.pp_print_string fmt (match s with `Static -> "static" | `Steal -> "steal")
    in
    Arg.conv (parse, print)
  in
  let sched =
    Arg.(
      value
      & opt sched_conv (Parallel.default_sched ())
      & info [ "sched" ] ~docv:"SCHED"
          ~doc:
            "Parallel scheduler: $(b,steal) (work-stealing deques with lazy subtree splitting, \
             the default) or $(b,static) (fixed root split, the differential oracle). Output is \
             bit-identical under both.")
  in
  let set jobs sched =
    Parallel.set_default_jobs jobs;
    Parallel.set_default_sched sched
  in
  Term.(const set $ jobs $ sched)

let width_arg =
  Arg.(value & opt int 12 & info [ "w"; "width" ] ~docv:"W" ~doc:"Window/field width.")

let height_arg =
  Arg.(value & opt int 9 & info [ "h"; "height" ] ~docv:"H" ~doc:"Window/field height.")

(* ---------- figure ---------- *)

let figure_cmd =
  let num =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure number, 1-5.")
  in
  let dir =
    Arg.(value & opt string "out" & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory for SVG.")
  in
  let run n dir =
    let fig =
      match n with
      | 1 -> Ok (Render.Figures.fig1_lattices ())
      | 2 -> Ok (Render.Figures.fig2_neighborhoods ())
      | 3 -> Ok (Render.Figures.fig3_schedule ())
      | 4 -> Ok (Render.Figures.fig4_voronoi ())
      | 5 -> Ok (Render.Figures.fig5_nonrespectable ())
      | _ -> Error (`Msg "figure number must be 1-5")
    in
    Result.map
      (fun f ->
        print_endline f.Render.Figures.ascii;
        Render.Figures.save_all ~dir [ f ];
        Printf.printf "\n[saved %s/%s.svg]\n" dir f.Render.Figures.name)
      fig
  in
  let term = Term.(term_result (const run $ num $ dir)) in
  Cmd.v (Cmd.info "figure" ~doc:"Regenerate a figure of the paper.") term

(* ---------- exact ---------- *)

let exact_cmd =
  let run () tile =
    Printf.printf "prototile (m = %d):\n%s\n\n" (Prototile.size tile) (Render.Ascii.prototile tile);
    if Prototile.dim tile = 2 && Polyomino.is_polyomino tile then begin
      let w = Polyomino.boundary_word tile in
      Printf.printf "boundary word: %s (length %d)\n" w (String.length w);
      match Boundary_word.find_factorization w with
      | Some f ->
        let x1, x2, x3 = Boundary_word.factor_words w f in
        Printf.printf "BN factorization: X1=%s X2=%s X3=%s -> EXACT (%s)\n" x1 x2
          (if x3 = "" then "-" else x3)
          (if f.Boundary_word.len3 = 0 then "pseudo-square" else "pseudo-hexagon");
        let v1, v2 = Boundary_word.translation_vectors w f in
        Printf.printf "tiling translation vectors: %s, %s\n" (Zgeom.Vec.to_string v1)
          (Zgeom.Vec.to_string v2)
      | None -> Printf.printf "no BN factorization -> NOT exact (cannot tile by translations)\n"
    end
    else begin
      match Tiling.Search.exactness tile with
      | `Exact -> print_endline "EXACT (tiling found by search)"
      | `NotExact -> print_endline "NOT exact"
      | `Unknown -> print_endline "UNKNOWN (bounded search exhausted; not a polyomino)"
    end
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Decide whether a prototile tiles the lattice (question Q1).")
    Term.(const run $ jobs_term $ tile_arg)

(* ---------- schedule ---------- *)

let schedule_cmd =
  let run () tile width height =
    match Tiling.Search.find_tiling tile with
    | None ->
      Error (`Msg "prototile admits no (discovered) tiling; no schedule of this form exists")
    | Some tiling ->
      let sched = Core.Schedule.of_tiling tiling in
      Printf.printf "prototile (m = %d):\n%s\n\n" (Prototile.size tile)
        (Render.Ascii.prototile tile);
      Format.printf "%a@.@." Tiling.Single.pp tiling;
      Printf.printf "schedule (%d slots):\n%s\n\n" (Core.Schedule.num_slots sched)
        (Render.Ascii.schedule sched ~width ~height);
      let ok = Core.Collision.is_collision_free_theorem1 tiling sched in
      Printf.printf "verified collision-free: %b; optimal (lower bound %d)\n" ok
        (Core.Optimality.lower_bound tile);
      Ok ()
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Construct and verify an optimal schedule (Theorem 1).")
    Term.(term_result (const run $ jobs_term $ tile_arg $ width_arg $ height_arg))

(* ---------- color ---------- *)

let color_cmd =
  let run tile width height =
    let g, _ = Coloring.Graph.lattice_window ~prototile:tile ~width ~height in
    let rng = Prng.Xoshiro.create 7L in
    Printf.printf "%d sensors, %d conflict edges\n\n" (Coloring.Graph.size g)
      (Coloring.Graph.num_edges g);
    Printf.printf "  naive TDMA       : %d slots\n" (Coloring.Baseline.tdma_slots g);
    Printf.printf "  greedy (natural) : %d\n" (Coloring.Greedy.colors_used g `Natural);
    Printf.printf "  greedy (random)  : %d\n" (Coloring.Greedy.colors_used g (`Random rng));
    Printf.printf "  Welsh-Powell     : %d\n" (Coloring.Greedy.colors_used g `LargestFirst);
    Printf.printf "  DSATUR           : %d\n" (Coloring.Dsatur.colors_used g);
    Printf.printf "  annealing        : %d\n" (Coloring.Annealing.min_colors rng g);
    Printf.printf "  tabu search      : %d\n" (Coloring.Tabucol.min_colors rng g);
    Printf.printf "  lattice tiling   : %d (optimal for the infinite lattice)\n"
      (Coloring.Baseline.tiling_slot_count tile)
  in
  Cmd.v
    (Cmd.info "color" ~doc:"Compare against distance-2 coloring baselines.")
    Term.(const run $ tile_arg $ width_arg $ height_arg)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let mac_arg =
    Arg.(
      value
      & opt (enum [ ("lattice", `Lattice); ("tdma", `Tdma); ("aloha", `Aloha); ("csma", `Csma) ])
          `Lattice
      & info [ "m"; "mac" ] ~docv:"MAC" ~doc:"MAC protocol: lattice, tdma, aloha, csma.")
  in
  let duration_arg =
    Arg.(value & opt int 4000 & info [ "duration" ] ~docv:"SLOTS" ~doc:"Simulated slots.")
  in
  let interval_arg =
    Arg.(value & opt int 50 & info [ "interval" ] ~docv:"SLOTS" ~doc:"Packet every N slots per node.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let timeline_arg =
    Arg.(
      value & opt int 0
      & info [ "timeline" ] ~docv:"N"
          ~doc:"Also print per-slot timelines of the first N nodes (80 slots).")
  in
  let runs_arg =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"N"
          ~doc:
            "Sweep N seeds (SEED, SEED+1, ...) and report each run plus aggregate statistics; \
             the sweep is spread over the -j domains.")
  in
  let run () tile width height mac duration interval seed timeline runs =
    let mac_factory =
      match mac with
      | `Lattice -> (
        match Tiling.Search.find_tiling tile with
        | Some t -> Ok (Netsim.Mac.lattice_tdma (Core.Schedule.of_tiling t))
        | None -> Error (`Msg "prototile admits no tiling; use another MAC"))
      | `Tdma -> Ok (Netsim.Mac.full_tdma ~num_nodes:(width * height))
      | `Aloha -> Ok (Netsim.Mac.slotted_aloha ~p:0.2 ~max_backoff_exp:6)
      | `Csma -> Ok (Netsim.Mac.p_csma ~p:0.3)
    in
    if runs < 1 then Error (`Msg "--runs must be at least 1")
    else
      Result.map
        (fun mac ->
          let cfg =
            { (Netsim.Sim.default_config ~mac) with width; height; prototile = tile; duration;
              workload = Netsim.Workload.Periodic { interval }; seed = Int64.of_int seed }
          in
          if runs = 1 then begin
            let tr = if timeline > 0 then Some (Netsim.Trace.create ()) else None in
            let r = Netsim.Sim.run { cfg with trace = tr } in
            Format.printf "%a@." Netsim.Sim.pp_result r;
            match tr with
            | None -> ()
            | Some tr ->
              Printf.printf
                "\ntimelines ('a' arrival, 'D' delivered, 'C' collided, '.' idle), slots 0-79:\n";
              for node = 0 to min timeline (width * height) - 1 do
                Printf.printf "node %3d  %s\n" node
                  (Netsim.Trace.timeline tr ~node ~horizon:(min 80 duration))
              done
          end
          else begin
            if timeline > 0 then
              prerr_endline "note: --timeline applies only to single runs; ignored with --runs";
            let seeds = List.init runs (fun i -> Int64.add (Int64.of_int seed) (Int64.of_int i)) in
            let results = Netsim.Sim.run_sweep cfg ~seeds in
            List.iteri
              (fun i r ->
                Printf.printf "seed %-6Ld " (List.nth seeds i);
                Format.printf "%a@." Netsim.Sim.pp_result r)
              results;
            let mean f = List.fold_left (fun acc r -> acc +. f r) 0.0 results /. float_of_int runs in
            Printf.printf
              "\naggregate over %d seeds: delivery %.1f%%  collisions %.1f  mean latency %.1f\n"
              runs
              (100.0 *. mean (fun r -> r.Netsim.Sim.stats.Netsim.Stats.delivery_ratio))
              (mean (fun r -> float_of_int r.Netsim.Sim.stats.Netsim.Stats.collisions))
              (mean (fun r -> r.Netsim.Sim.stats.Netsim.Stats.mean_latency))
          end)
        mac_factory
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the slotted wireless simulator.")
    Term.(
      term_result
        (const run $ jobs_term $ tile_arg $ width_arg $ height_arg $ mac_arg $ duration_arg
       $ interval_arg $ seed_arg $ timeline_arg $ runs_arg))

(* ---------- certify ---------- *)

let certify_cmd =
  let run () tile =
    match Tiling.Search.find_tiling tile with
    | None -> Error (`Msg "prototile admits no tiling")
    | Some tiling ->
      let cert = Core.Certificate.build tiling in
      print_endline (Core.Certificate.to_string cert);
      (match Core.Certificate.check cert with
      | Ok () ->
        Printf.eprintf "certificate verified: %d slots, collision-free, optimal\n"
          (Core.Schedule.num_slots cert.Core.Certificate.schedule);
        Ok ()
      | Error f -> Error (`Msg (Format.asprintf "%a" Core.Certificate.pp_failure f)))
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Emit a machine-checkable optimality certificate for a prototile's schedule.")
    Term.(term_result (const run $ jobs_term $ tile_arg))

(* ---------- export ---------- *)

let export_cmd =
  let fmt_arg =
    Arg.(
      value
      & opt (enum [ ("record", `Record); ("csv", `Csv) ]) `Record
      & info [ "f"; "format" ] ~docv:"FMT"
          ~doc:"Output format: record (parsable schedule line) or csv (per-sensor slots).")
  in
  let run () tile width height fmt =
    match Tiling.Search.find_tiling tile with
    | None -> Error (`Msg "prototile admits no tiling")
    | Some tiling ->
      let sched = Core.Schedule.of_tiling tiling in
      (match fmt with
      | `Record ->
        print_endline (Core.Codec.tiling_to_string tiling);
        print_endline (Core.Codec.schedule_to_string sched)
      | `Csv ->
        let domain =
          List.concat_map
            (fun x -> List.init height (fun y -> Zgeom.Vec.make2 x y))
            (List.init width Fun.id)
        in
        print_string (Core.Codec.csv_assignment sched ~domain));
      Ok ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialize a schedule for deployment tooling.")
    Term.(term_result (const run $ jobs_term $ tile_arg $ width_arg $ height_arg $ fmt_arg))

(* ---------- sync ---------- *)

let sync_cmd =
  let resync_arg =
    Arg.(value & opt int 1000 & info [ "resync" ] ~docv:"SLOTS" ~doc:"Resync period (0 = never).")
  in
  let drift_arg =
    Arg.(value & opt float 500.0 & info [ "drift" ] ~docv:"PPM" ~doc:"Clock drift bound (ppm).")
  in
  let duration_arg =
    Arg.(value & opt int 20000 & info [ "duration" ] ~docv:"SLOTS" ~doc:"Simulated slots.")
  in
  let run () tile width height resync drift duration =
    match Tiling.Search.find_tiling tile with
    | None -> Error (`Msg "prototile admits no tiling")
    | Some tiling ->
      let schedule = Core.Schedule.of_tiling tiling in
      let r =
        Netsim.Timesync.run
          { width; height; prototile = tile; schedule;
            root = Zgeom.Vec.make2 (width / 2) (height / 2); resync_period = resync;
            drift_ppm = drift; hop_jitter = 0.02; duration; seed = 9L }
      in
      Printf.printf "sync latency       : %d slots\n" r.Netsim.Timesync.sync_latency;
      Printf.printf "max clock error    : %.3f slots\n" r.Netsim.Timesync.max_clock_error;
      Printf.printf "mean clock error   : %.3f slots\n" r.Netsim.Timesync.mean_clock_error;
      Printf.printf "schedule violations: %d\n" r.Netsim.Timesync.tdma_violations;
      Printf.printf "beacons sent       : %d\n" r.Netsim.Timesync.beacons_sent;
      Ok ()
  in
  Cmd.v
    (Cmd.info "sync" ~doc:"Simulate beacon-flooding time synchronization.")
    Term.(
      term_result
        (const run $ jobs_term $ tile_arg $ width_arg $ height_arg $ resync_arg $ drift_arg
       $ duration_arg))

(* ---------- serve / loadgen ---------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path. serve: listen here instead of stdio; loadgen: drive \
              the daemon at PATH instead of an in-process engine.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"PATH"
        ~doc:
          "Persistent certificate store (append-only log, created if absent). serve: probe it \
           on cache misses and write completed searches through; precompute: write verdicts \
           here.")

let report_recovery store =
  let r = Store.recovery store in
  if r.Store.dropped > 0 || r.Store.truncated_bytes > 0 then
    Printf.eprintf
      "tilesched: store %s: recovered %d live entries (%d records; %d dropped by validation, \
       %d corrupt tail bytes truncated)\n\
       %!"
      (Store.path store) r.Store.live r.Store.records r.Store.dropped r.Store.truncated_bytes
  else
    Printf.eprintf "tilesched: store %s: %d live entries\n%!" (Store.path store) r.Store.live

let serve_cmd =
  let cache =
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc:"Tiling cache capacity (LRU).")
  in
  let queue =
    Arg.(
      value & opt int 512
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission bound per batch; excess requests get an explicit overloaded reply.")
  in
  let deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-search wall-clock budget (0 = unbounded). Expired searches answer \
                deadline, are not cached, and may succeed on retry.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Sealed verdict corpus (built with 'tilesched corpus build'). Mapped read-only and \
             probed before every other tier; hits answer src=corpus without searching.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 0.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Socket mode: close connections with no inbound traffic for this long (0 = never, \
             the default).")
  in
  let run () socket cache queue deadline store_path corpus_path idle_timeout =
    let ( let* ) = Result.bind in
    if cache < 1 then Error (`Msg "--cache must be at least 1")
    else if queue < 1 then Error (`Msg "--queue must be at least 1")
    else begin
      let deadline = if deadline > 0.0 then Some deadline else None in
      let* corpus =
        match corpus_path with
        | None -> Ok None
        | Some dir -> (
          match Corpus.Snapshot.open_ dir with
          | Ok snap ->
            Printf.eprintf "tilesched serve: corpus %s: %d precomputed verdicts\n%!" dir
              (Corpus.Snapshot.length snap);
            Ok (Some snap)
          | Error msg -> Error (`Msg msg))
      in
      let store = Option.map Store.open_ store_path in
      Option.iter report_recovery store;
      let engine =
        Server.create ~cache_capacity:cache ~queue_bound:queue ?deadline ?store ?corpus ()
      in
      (match socket with
      | None -> Server.Frontend.serve_stdio engine
      | Some path ->
        Printf.eprintf "tilesched serve: listening on %s\n%!" path;
        Server.Frontend.serve_unix ~idle_timeout engine ~path);
      Option.iter
        (fun store ->
          let flushed = Server.flush_to_store engine in
          if flushed > 0 then
            Printf.eprintf "tilesched serve: flushed %d cache entries to store\n%!" flushed;
          Store.close store)
        store;
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the schedule server: one request line in, one reply line out (see README for \
          the wire protocol). Congruent tiles share one cached search result; with --store, \
          settled results also survive restarts; with --corpus, precomputed verdicts are \
          served from an mmap snapshot without deserialization.")
    Term.(
      term_result
        (const run $ jobs_term $ socket_arg $ cache $ queue $ deadline $ store_arg $ corpus
       $ idle_timeout))

let precompute_cmd =
  let max_area =
    Arg.(
      value & opt int 5
      & info [ "n"; "max-area" ] ~docv:"N"
          ~doc:"Settle every free polyomino of area at most N (OEIS A000105 classes).")
  in
  let print_requests =
    Arg.(
      value & flag
      & info [ "print-requests" ]
          ~doc:
            "Instead of searching, print one tile-search request line per canonical class to \
             stdout - pipe into 'tilesched serve' to replay the workload.")
  in
  let run () max_area store_path print_requests =
    if max_area < 1 then Error (`Msg "-n must be at least 1")
    else if print_requests then begin
      List.iteri
        (fun id tile ->
          print_endline (Server.Protocol.request_to_string ~id (Server.Protocol.Tile_search tile)))
        (Store.Precompute.tiles_up_to max_area);
      Ok ()
    end
    else
      match store_path with
      | None -> Error (`Msg "--store PATH is required (unless --print-requests)")
      | Some path ->
        let store = Store.open_ path in
        report_recovery store;
        let report = Store.Precompute.run ~store ~max_area () in
        Store.close store;
        Format.printf "%a@." Store.Precompute.pp_report report;
        Ok ()
  in
  Cmd.v
    (Cmd.info "precompute"
       ~doc:
         "Settle all small prototile classes offline: enumerate the free polyominoes up to an \
          area bound, run the tiling search for each (spread over -j domains), and write every \
          verdict - tiling + certificate, or proven exhaustion - to the certificate store. A \
          daemon started with the same --store then answers those queries without searching.")
    Term.(term_result (const run $ jobs_term $ max_area $ store_arg $ print_requests))

(* ---------- corpus ---------- *)

let corpus_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let build_cmd =
    let max_area =
      Arg.(
        value & opt int 10
        & info [ "n"; "max-area" ] ~docv:"N"
            ~doc:"Decide every free polyomino of area at most N (OEIS A000105 classes).")
    in
    let shards =
      Arg.(
        value & opt int 8
        & info [ "shards" ] ~docv:"K"
            ~doc:"Segment shards (must match when resuming an existing corpus).")
    in
    let kill_at =
      Arg.(
        value & opt int 0
        & info [ "kill-at" ] ~docv:"BAND"
            ~doc:
              "Test hook: kill -9 this process halfway through band BAND's appends, leaving a \
               torn corpus for the crash-recovery checks (0 = disabled).")
    in
    let run () dir max_area shards kill_at =
      if max_area < 1 then Error (`Msg "-n must be at least 1")
      else begin
        let progress ~n ~done_ ~total =
          if n = kill_at && done_ = (total + 1) / 2 then
            Unix.kill (Unix.getpid ()) Sys.sigkill
        in
        match Corpus.Campaign.run ~shards ~progress ~dir ~max_n:max_area () with
        | Ok report ->
          Format.printf "%a@." Corpus.Campaign.pp_report report;
          Ok ()
        | Error msg -> Error (`Msg msg)
      end
    in
    Cmd.v
      (Cmd.info "build"
         ~doc:
           "Build (or resume) the verdict corpus: enumerate the free polyominoes band by band, \
            decide each with the Beauquier-Nivat criterion (spread over -j domains), append the \
            verdicts to sharded segments with a fsynced checkpoint after every band, and seal \
            the per-shard indexes. A killed build resumes from its last checkpoint and produces \
            a byte-identical corpus.")
      Term.(term_result (const run $ jobs_term $ dir_arg $ max_area $ shards $ kill_at))
  in
  let stats_cmd =
    (* Reads the manifest directly (not through Snapshot.open_) so a
       half-built, unsealed corpus can still be inspected. *)
    let run dir =
      let path = Filename.concat dir Corpus.Layout.manifest_name in
      if not (Sys.file_exists path) then
        Error (`Msg (Printf.sprintf "no corpus at %s (missing %s)" dir Corpus.Layout.manifest_name))
      else
        match
          Corpus.Layout.manifest_of_string (In_channel.with_open_bin path In_channel.input_all)
        with
        | Error msg -> Error (`Msg msg)
        | Ok m ->
          Printf.printf "corpus %s: shards=%d sealed=%b bands=%d\n" dir m.Corpus.Layout.shards
            m.Corpus.Layout.sealed
            (List.length m.Corpus.Layout.bands);
          List.iter
            (fun b ->
              Printf.printf "band n=%d classes=%d exact=%d non-exact=%d\n" b.Corpus.Layout.n
                b.Corpus.Layout.classes b.Corpus.Layout.exact b.Corpus.Layout.non_exact)
            m.Corpus.Layout.bands;
          let tot f = List.fold_left (fun acc b -> acc + f b) 0 m.Corpus.Layout.bands in
          Printf.printf "total classes=%d exact=%d non-exact=%d\n"
            (tot (fun b -> b.Corpus.Layout.classes))
            (tot (fun b -> b.Corpus.Layout.exact))
            (tot (fun b -> b.Corpus.Layout.non_exact));
          Ok ()
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Print the corpus manifest: per-band class/exact/non-exact counts and totals (works \
            on an unsealed, half-built corpus too).")
      Term.(term_result (const run $ dir_arg))
  in
  let verify_cmd =
    let run () dir =
      match Corpus.Snapshot.verify ~dir with
      | Ok r ->
        Printf.printf
          "corpus %s: ok (%d records: %d exact, %d non-exact; %d index entries; every \
           certificate re-proved)\n"
          dir r.Corpus.Snapshot.records r.Corpus.Snapshot.exact r.Corpus.Snapshot.non_exact
          r.Corpus.Snapshot.indexed;
        Ok ()
      | Error msg -> Error (`Msg msg)
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Re-prove a sealed corpus from its bytes: CRC and framing of every record, canonical \
            keys, certificate checks, index completeness, and manifest agreement.")
      Term.(term_result (const run $ jobs_term $ dir_arg))
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:
         "Precomputed verdict corpus: a BN-filtered campaign over all small polyomino classes, \
          stored in sharded mmap-ready segments and served by 'tilesched serve --corpus' with \
          zero deserialization.")
    [ build_cmd; stats_cmd; verify_cmd ]

let loadgen_cmd =
  let requests =
    Arg.(value & opt int 10_000 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Completions to drive.")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")
  in
  let zipf =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Tile popularity skew exponent (0 = uniform).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload RNG seed.") in
  let tiles =
    Arg.(
      value
      & opt (some string) None
      & info [ "tiles" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated named tiles, most popular first (e.g. cheb1,tet-S,tet-Z). \
             Default: a 16-tile catalogue with congruent pairs.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Finish by asking the server to shut down (socket mode).")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Speak the binary wire protocol instead of text lines (socket mode).")
  in
  let connections =
    Arg.(
      value
      & opt (some int) None
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Open-loop mode: hold N concurrent connections against the daemon, one request in \
             flight each, instead of the closed-loop batch driver.  Requires --socket.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"R"
          ~doc:"Open-loop mode: aggregate target requests/second (0 = unpaced).")
  in
  let ops =
    Arg.(
      value
      & opt (enum [ ("mixed", `Mixed); ("search", `Search_only) ]) `Mixed
      & info [ "ops" ] ~docv:"MIX"
          ~doc:
            "Operation mix: 'mixed' (80/15/5 slot/schedule/tile-search) or 'search' \
             (tile-search only, the zero-copy splice workload).")
  in
  let cache =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N" ~doc:"In-process mode: engine cache capacity.")
  in
  let queue =
    Arg.(
      value & opt int 512 & info [ "queue" ] ~docv:"N" ~doc:"In-process mode: admission bound.")
  in
  let run () socket requests clients zipf seed tiles shutdown binary connections rate ops
      cache queue =
    let ( let* ) = Result.bind in
    let* tiles =
      match tiles with
      | None -> Ok Server.Loadgen.default_tiles
      | Some names ->
        List.fold_right
          (fun name acc ->
            let* acc = acc in
            let* tile = parse_tile name in
            Ok ((name, tile) :: acc))
          (String.split_on_char ',' names) (Ok [])
    in
    match connections with
    | Some connections -> (
      match socket with
      | None -> Error (`Msg "--connections (open-loop mode) needs --socket")
      | Some path -> (
        let open_config =
          { Server.Loadgen.connections; rate; total = requests; binary; zipf;
            seed = Int64.of_int seed; tiles; ops; send_shutdown = shutdown }
        in
        match Server.Loadgen.run_open ~path open_config with
        | report ->
          Format.printf "%a@." Server.Loadgen.pp_open_report report;
          Ok ()
        | exception Unix.Unix_error (err, _, _) ->
          Error (`Msg (Printf.sprintf "cannot drive %s: %s" path (Unix.error_message err)))))
    | None ->
      let config =
        { Server.Loadgen.requests; clients; zipf; seed = Int64.of_int seed; tiles; ops;
          send_shutdown = shutdown }
      in
      let* report =
        match socket with
        | None ->
          if shutdown then Error (`Msg "--shutdown needs --socket")
          else if binary then Error (`Msg "--binary needs --socket")
          else begin
            let engine = Server.create ~cache_capacity:cache ~queue_bound:queue () in
            Ok (Server.Loadgen.run engine config)
          end
        | Some path -> (
          match
            if binary then
              Server.Frontend.with_binary_connection ~path (fun send ->
                  Server.Loadgen.run_binary ~send config)
            else
              Server.Frontend.with_connection ~path (fun send ->
                  Server.Loadgen.run_with ~send config)
          with
          | report -> Ok report
          | exception Unix.Unix_error (err, _, _) ->
            Error (`Msg (Printf.sprintf "cannot drive %s: %s" path (Unix.error_message err))))
      in
      (* Deterministic summary on stdout (diffable across -j and runs);
         wall-clock timing on stderr. *)
      Format.printf "%a@." Server.Loadgen.pp_report report;
      Format.eprintf "%a@." Server.Loadgen.pp_timing report;
      Ok ()
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive the schedule server with a Zipf-skewed workload - closed-loop batches by \
          default, open-loop with --connections/--rate - over either wire dialect, and \
          report throughput, latency percentiles, cache hit rate, and backpressure behavior.")
    Term.(
      term_result
        (const run $ jobs_term $ socket_arg $ requests $ clients $ zipf $ seed $ tiles
       $ shutdown $ binary $ connections $ rate $ ops $ cache $ queue))

(* ---------- lint ---------- *)

let lint_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json); ("sarif", `Sarif) ]) `Human
      & info [ "f"; "format" ] ~docv:"FMT" ~doc:"Report format: human, json, or sarif.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Suppress findings listed in FILE (one per line, \
             RULE<TAB>FILE<TAB>MESSAGE; '#' comments). Suppressed counts still appear in the \
             summary.")
  in
  let root_arg =
    Arg.(
      value & opt dir "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Project root to scan (its lib/, bin/, and test/ subtrees).")
  in
  let rules_arg =
    Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule book (ids, scopes, allowlists) and exit.")
  in
  let allow_stale_arg =
    Arg.(
      value & flag
      & info [ "allow-stale" ]
          ~doc:
            "Do not fail when a baseline entry matches no current finding (B0). Use while \
             burning a baseline down incrementally.")
  in
  let run format baseline allow_stale root rules =
    if rules then begin
      print_endline (Lint.Rules.describe ());
      Ok ()
    end
    else
      let ( let* ) = Result.bind in
      let* baseline =
        match baseline with
        | None -> Ok Lint.Baseline.empty
        | Some path ->
          Result.map_error (fun msg -> `Msg ("cannot load baseline: " ^ msg))
            (Lint.Baseline.load path)
      in
      let report = Lint.run ~baseline ~allow_stale ~root () in
      print_string
        (match format with
        | `Human -> Lint.render_human report
        | `Json -> Lint.render_json report
        | `Sarif -> Lint.render_sarif report);
      if report.Lint.findings = [] then Ok () else Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check the source tree against the project invariants: syntactic rules \
          R1-R5 plus the typedtree dataflow layer - interprocedural determinism taint (R1'), \
          lock discipline (R6), and resource lifetime (R7). Unused allowlist entries (A0) and \
          stale baseline entries (B0) are findings too. Exits 1 if any finding survives the \
          baseline.")
    Term.(
      term_result (const run $ format_arg $ baseline_arg $ allow_stale_arg $ root_arg $ rules_arg))

(* ---------- lifetime ---------- *)

let lifetime_cmd =
  let tile_arg =
    Arg.(
      value
      & opt tile_conv (Prototile.tetromino `I)
      & info [ "t"; "tile" ] ~docv:"TILE" ~doc:"Interference prototile (default tet-I).")
  in
  let rotate_arg =
    Arg.(
      value & opt int 4
      & info [ "rotate" ] ~docv:"K"
          ~doc:
            "Rotate over up to K translation-inequivalent covers of the torus (at least 2; the \
             demo wants 3+).")
  in
  let deaths_arg =
    Arg.(
      value & opt int 1
      & info [ "deaths" ] ~docv:"N"
          ~doc:"Seed-derived random sensor deaths injected into the battery simulation.")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("round-robin", Lifetime.Rotation.Round_robin);
               ("least-depleted", Lifetime.Rotation.Least_depleted_first) ])
          Lifetime.Rotation.Least_depleted_first
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Rotation policy: round-robin or least-depleted.")
  in
  let battery_arg =
    Arg.(
      value & opt float 30.0
      & info [ "battery" ] ~docv:"UNITS" ~doc:"Per-node battery capacity for the simulation.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let width_arg =
    Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"W" ~doc:"Deployment torus width.")
  in
  let height_arg =
    Arg.(value & opt int 8 & info [ "h"; "height" ] ~docv:"H" ~doc:"Deployment torus height.")
  in
  let run () tile width height rotate deaths policy battery seed =
    let ( let* ) = Result.bind in
    let m = Prototile.size tile in
    let* () = if rotate >= 2 then Ok () else Error (`Msg "--rotate must be at least 2") in
    let* () = if deaths >= 0 then Ok () else Error (`Msg "--deaths must be non-negative") in
    let torus = Sublattice.of_rows [ Zgeom.Vec.make2 width 0; Zgeom.Vec.make2 0 height ] in
    Printf.printf "prototile (m = %d):\n%s\n" m (Render.Ascii.prototile tile);

    (* 1. Rotation: distinct covers of the deployment torus, balanced so
       leadership actually moves, composed into an epoch plan. *)
    let covers =
      Tiling.Search.distinct_torus_covers ~period:torus ~prototiles:[ tile ] ~max_classes:rotate ()
    in
    let k = List.length covers in
    let* () =
      if k >= 2 then Ok ()
      else
        Error
          (`Msg
             (Printf.sprintf
                "the %dx%d torus admits %d distinct cover class(es) of this prototile; rotation \
                 needs at least 2 (try a larger torus)"
                width height k))
    in
    let* rot =
      Result.map_error
        (fun e -> `Msg e)
        (Lifetime.Rotation.make
           ~covers:(Lifetime.Rotation.balance covers)
           ~epoch:m ~epochs:(3 * k) ~policy)
    in
    let duty = Lifetime.Rotation.duty rot in
    let static_duty = Lifetime.Rotation.static_duty rot in
    let peak a = Array.fold_left max 0.0 a in
    Printf.printf "rotation: %d distinct covers of the %dx%d torus, policy %s\n" k width height
      (Lifetime.Rotation.policy_name policy);
    Printf.printf "plan (epoch = %d slots): [%s]\n" m
      (String.concat "; "
         (Array.to_list (Array.map string_of_int (Lifetime.Rotation.plan rot))));
    Printf.printf "collision-free at every slot: %b\n" (Lifetime.Rotation.collision_free rot);
    Printf.printf "leader duty: static peak %.2f spread %.4f -> rotating peak %.2f spread %.4f\n"
      (peak static_duty)
      (Lifetime.Rotation.spread static_duty)
      (peak duty) (Lifetime.Rotation.spread duty);
    Printf.printf "rotation strictly tightens the duty spread: %b\n\n"
      (Lifetime.Rotation.spread duty < Lifetime.Rotation.spread static_duty);

    (* 2. Local repair: kill a tile leader, re-tile a wrapped window on
       the deployment torus, certify the spliced schedule. *)
    let* base =
      match Tiling.Search.find_tiling tile with
      | Some t -> Ok t
      | None -> Error (`Msg "prototile admits no (discovered) tiling; nothing to repair")
    in
    let period = Tiling.Single.period base in
    let deployment =
      if List.for_all (Sublattice.mem period) (Sublattice.generators torus) then torus
      else Sublattice.of_rows (List.map (Zgeom.Vec.scale 4) (Sublattice.generators period))
    in
    let dead = List.hd (Tiling.Single.offsets base) in
    let* r = Result.map_error (fun e -> `Msg ("repair infeasible: " ^ e))
               (Lifetime.Repair.repair ~deployment base ~dead) in
    let st = r.Lifetime.Repair.stats in
    Printf.printf "repair: killed the tile leader at %s on a deployment torus of %d sensors\n"
      (Zgeom.Vec.to_string dead) st.Lifetime.Repair.torus_index;
    Printf.printf "window: %d cells, %d base tiles removed, %d growth rings; %d tiles spliced in\n"
      st.Lifetime.Repair.window_cells st.Lifetime.Repair.window_tiles st.Lifetime.Repair.rings
      (List.length r.Lifetime.Repair.patch);
    Printf.printf "dead leader demoted: %b; slot assignments changed: %d\n"
      (not (Lifetime.Repair.is_leader r.Lifetime.Repair.patched dead))
      (List.length r.Lifetime.Repair.changed);
    Printf.printf "slots on window: %d (|N| = %d); window optimal: %b\n"
      (Lifetime.Repair.slots_on_window r) m (Lifetime.Repair.window_optimal r);
    Printf.printf "certificate checked: true; unchanged outside the window: %b\n\n"
      (Lifetime.Repair.local_outside r);

    (* 3. Battery simulation: static vs rotating leadership under the
       same injected faults, swept over two seeds through run_sweep so
       the per-seed results are reproducible at every -j / --sched. *)
    let* static_rot =
      Result.map_error
        (fun e -> `Msg e)
        (Lifetime.Rotation.make ~covers:[ List.hd covers ] ~epoch:m ~epochs:1
           ~policy:Lifetime.Rotation.Round_robin)
    in
    let duration = 300 in
    let config ?(random_deaths = 0) rot =
      { (Netsim.Sim.default_config ~mac:(Lifetime.Rotation.mac rot)) with
        Netsim.Sim.width; height; prototile = tile; duration;
        workload = Netsim.Workload.Periodic { interval = 40 };
        seed = Int64.of_int seed;
        faults =
          { Netsim.Faults.none with
            Netsim.Faults.battery = Some battery;
            random_deaths;
            extra_cost = Some (Lifetime.Rotation.extra_cost rot ~leader_cost:1.0) } }
    in
    let seeds = [ Int64.of_int seed; Int64.of_int (seed + 1) ] in
    let sweep cfg = Netsim.Sim.run_sweep cfg ~seeds in
    (* Battery race first, with no injected faults: every death below is
       a battery death, so first_death is the lifetime metric proper. *)
    let statics = sweep (config static_rot) and rotatings = sweep (config rot) in
    Printf.printf
      "simulation: battery %.1f, leader surcharge 1.0/slot, %d slots, 2-seed sweep\n" battery
      duration;
    List.iteri
      (fun i (s, r) ->
        let fd res = Option.value ~default:duration (Netsim.Sim.first_death res) in
        Printf.printf
          "seed %-6Ld first battery death: static slot %d vs rotating slot %d (%.2fx); dead at \
           end %d vs %d\n"
          (List.nth seeds i) (fd s) (fd r)
          (float_of_int (fd r) /. float_of_int (fd s))
          (List.length s.Netsim.Sim.deaths)
          (List.length r.Netsim.Sim.deaths))
      (List.combine statics rotatings);
    (* Then the same rotating network under injected faults. *)
    let faulty = sweep (config ~random_deaths:deaths rot) in
    List.iteri
      (fun i r ->
        Printf.printf
          "seed %-6Ld with %d injected random death(s): %d dead, %d alive at end\n"
          (List.nth seeds i) deaths
          (List.length r.Netsim.Sim.deaths)
          r.Netsim.Sim.alive_at_end)
      faulty;
    let model = (config rot).Netsim.Sim.energy_model in
    Printf.printf "packet and energy conservation hold on every run: %b\n"
      (List.for_all
         (fun res ->
           Netsim.Sim.conservation_ok res && Netsim.Sim.energy_conservation_ok model res)
         (statics @ rotatings @ faulty));
    Ok ()
  in
  Cmd.v
    (Cmd.info "lifetime"
       ~doc:
         "Lifetime demo: rotate the schedule over distinct covers of the deployment torus \
          (tighter leader-duty spread), repair a leader death by re-tiling a wrapped window \
          (certified, locally optimal), and compare static vs rotating battery lifetimes under \
          injected faults. Output is deterministic and bit-identical at every -j and --sched.")
    Term.(
      term_result
        (const run $ jobs_term $ tile_arg $ width_arg $ height_arg $ rotate_arg $ deaths_arg
       $ policy_arg $ battery_arg $ seed_arg))

let bench_cmd =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the results as a JSON array of {name, ns_per_call} rows to PATH.")
  in
  let validate_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "validate" ] ~docv:"PATH"
          ~doc:
            "Do not benchmark; instead schema-check an existing JSON artifact at PATH (as CI does \
             with BENCH_5.json) and exit.")
  in
  let quota_arg =
    Arg.(
      value & opt float 0.5
      & info [ "quota" ] ~docv:"SECS"
          ~doc:"Bechamel time budget per benchmark, in seconds. Small values make a fast smoke run.")
  in
  let skew_arg =
    Arg.(
      value & flag
      & info [ "skew" ]
          ~doc:
            "Run (or validate) the EXP-P3 scheduler suite instead: the adversarial skewed \
             instance counted sequentially and at jobs=4 under each scheduler, emitted as \
             BENCH_6.json.")
  in
  let lifetime_arg =
    Arg.(
      value & flag
      & info [ "lifetime" ]
          ~doc:
            "Run (or validate) the EXP-L1 lifetime suite instead: static vs rotating \
             first-battery-death slots and the repair-solver timings, emitted as BENCH_7.json.")
  in
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:
            "Run (or validate) the EXP-CORPUS corpus suite instead: mmap-snapshot vs store lookup \
             latency, warm and cold-start, emitted as BENCH_8.json.")
  in
  let server_arg =
    Arg.(
      value & flag
      & info [ "server" ]
          ~doc:
            "Run (or validate) the EXP-SRV2 wire-protocol suite instead: spawn a daemon over a \
             fresh corpus, compare closed-loop text vs binary warm tile-search throughput, and \
             drive a 10k-connection open-loop run for latency percentiles, emitted as \
             BENCH_10.json.")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run () json validate quota skew lifetime corpus server =
    if
      (if skew then 1 else 0) + (if lifetime then 1 else 0) + (if corpus then 1 else 0)
      + (if server then 1 else 0)
      > 1
    then Error (`Msg "--skew, --lifetime, --corpus and --server are mutually exclusive")
    else
    let required =
      if lifetime then Microbench.required_lifetime
      else if skew then Microbench.required_skew
      else if corpus then Microbench.required_corpus
      else if server then Microbench.required_server
      else Microbench.required
    in
    match validate with
    | Some path -> (
      match Microbench.validate_json ~required (read_file path) with
      | Ok rows ->
        Printf.printf "%s: %d rows, schema ok\n" path (List.length rows);
        Ok ()
      | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" path msg)))
    | None ->
      if quota <= 0.0 then Error (`Msg "quota must be positive")
      else begin
        let rows =
          if lifetime then Microbench.run_lifetime ~quota ()
          else if skew then Microbench.run_skew ~quota ()
          else if corpus then Microbench.run_corpus ~quota ()
          else if server then Microbench.run_server ~quota ~exe:Sys.executable_name ()
          else Microbench.run ~quota ()
        in
        Printf.printf "%-42s %16s\n" "benchmark" "ns/call";
        List.iter
          (fun r -> Printf.printf "%-42s %16.1f\n" r.Microbench.name r.Microbench.ns_per_call)
          rows;
        match json with
        | None -> Ok ()
        | Some path -> (
          let out = Microbench.to_json rows in
          match Microbench.validate_json ~required out with
          | Error msg -> Error (`Msg ("refusing to write invalid artifact: " ^ msg))
          | Ok _ ->
            let oc = open_out path in
            output_string oc out;
            close_out oc;
            Printf.printf "\n[wrote %s: %d rows, schema-validated]\n" path (List.length rows);
            Ok ())
      end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the Bechamel micro-benchmark suite (including the three torus exact-cover engines) \
          and optionally emit or validate the machine-readable BENCH_5.json artifact; with \
          $(b,--skew), the EXP-P3 static-vs-steal scheduler suite and BENCH_6.json instead; with \
          $(b,--lifetime), the EXP-L1 rotation/repair suite and BENCH_7.json; with \
          $(b,--corpus), the EXP-CORPUS mmap-vs-store lookup suite and BENCH_8.json; with \
          $(b,--server), the EXP-SRV2 wire-protocol suite and BENCH_10.json.")
    Term.(
      term_result
        (const run $ jobs_term $ json_arg $ validate_arg $ quota_arg $ skew_arg $ lifetime_arg
       $ corpus_arg $ server_arg))

let () =
  let doc = "Collision-free sensor scheduling by lattice tilings (Klappenecker-Lee-Welch 2008)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tilesched" ~version:"1.0.0" ~doc)
          [ figure_cmd; exact_cmd; schedule_cmd; color_cmd; simulate_cmd; export_cmd; sync_cmd;
            certify_cmd; serve_cmd; loadgen_cmd; precompute_cmd; corpus_cmd; lifetime_cmd;
            bench_cmd; lint_cmd ]))
