let tdma_slots = Graph.size
let tdma_coloring g = Array.init (Graph.size g) Fun.id
let exact_min_colors g = Core.Optimality.chromatic_number (Graph.adj g)
let tiling_slot_count = Lattice.Prototile.size
