open Zgeom
open Lattice

type t = { prototile : Prototile.t; schedule : Schedule.t; clique : Vec.t list }

let build tiling =
  {
    prototile = Tiling.Single.prototile tiling;
    schedule = Schedule.of_tiling tiling;
    clique = Prototile.cells (Tiling.Single.prototile tiling);
  }

type failure =
  | Wrong_clique_size of int * int
  | Not_a_clique of Vec.t * Vec.t
  | Not_collision_free of Collision.violation

let pp_failure fmt = function
  | Wrong_clique_size (want, got) -> Format.fprintf fmt "clique has %d positions, need %d" got want
  | Not_a_clique (u, v) ->
    Format.fprintf fmt "positions %a and %a do not interfere" Vec.pp u Vec.pp v
  | Not_collision_free v -> Format.fprintf fmt "schedule collides: %a" Collision.pp_violation v

let ranges_intersect n u v =
  Vec.Set.exists (fun a -> Vec.Set.mem (Vec.add u a) (Prototile.translate v n)) (Prototile.cell_set n)

let check cert =
  let m = Schedule.num_slots cert.schedule in
  if List.length cert.clique <> m then
    Error (Wrong_clique_size (m, List.length cert.clique))
  else begin
    (* Lower bound: every pair in the clique must interfere (so m slots
       are necessary for these positions alone). *)
    let rec pairwise = function
      | [] -> Ok ()
      | u :: rest ->
        let bad = List.find_opt (fun v -> not (ranges_intersect cert.prototile u v)) rest in
        (match bad with
        | Some v -> Error (Not_a_clique (u, v))
        | None -> pairwise rest)
    in
    match pairwise cert.clique with
    | Error _ as e -> e
    | Ok () -> (
      (* Upper bound: the schedule must be collision-free; recheck from
         scratch with the exact periodic checker. *)
      match
        Collision.violations
          ~neighborhoods:(fun _ -> cert.prototile)
          ~diff_bound:(Prototile.difference_set cert.prototile)
          cert.schedule
      with
      | [] -> Ok ()
      | v :: _ -> Error (Not_collision_free v))
  end

let to_string cert =
  String.concat "\n"
    [ Codec.prototile_to_string cert.prototile;
      Codec.schedule_to_string cert.schedule;
      Codec.prototile_to_string
        (Prototile.of_cells
           (let shift =
              (* of_cells requires 0; the clique always contains cells of
                 N including 0 for Theorem-1 certificates, but store it
                 shifted to be safe. *)
              match cert.clique with
              | [] -> Vec.zero (Prototile.dim cert.prototile)
              | c :: _ -> c
            in
            List.map (fun v -> Vec.sub v shift) cert.clique))
      ^ "|shift="
        ^ String.concat ","
            (List.map string_of_int
               (Vec.to_list
                  (match cert.clique with
                  | [] -> Vec.zero (Prototile.dim cert.prototile)
                  | c :: _ -> c))) ]

let of_string s =
  match String.split_on_char '\n' (String.trim s) with
  | [ proto_line; sched_line; clique_line ] -> (
    let ( let* ) = Result.bind in
    let* prototile = Codec.prototile_of_string proto_line in
    let* schedule = Codec.schedule_of_string sched_line in
    (* Split off the shift suffix. *)
    match String.rindex_opt clique_line '|' with
    | None -> Error "missing clique shift"
    | Some i ->
      let base = String.sub clique_line 0 i in
      let shift_part = String.sub clique_line (i + 1) (String.length clique_line - i - 1) in
      let* clique_proto = Codec.prototile_of_string base in
      (match String.index_opt shift_part '=' with
      | Some j when String.sub shift_part 0 j = "shift" -> (
        let coords = String.sub shift_part (j + 1) (String.length shift_part - j - 1) in
        match List.map int_of_string (String.split_on_char ',' coords) with
        | shift_coords ->
          let shift = Vec.of_list shift_coords in
          if Vec.dim shift <> Prototile.dim clique_proto then
            Error "clique shift dimension mismatch"
          else
            Ok
              {
                prototile;
                schedule;
                clique = List.map (fun v -> Vec.add v shift) (Prototile.cells clique_proto);
              }
        | exception Failure _ -> Error "bad shift")
      | _ -> Error "malformed shift field"))
  | _ -> Error "certificate must have three lines"
