open Zgeom
open Lattice

let magic = "tilesched/v1"

let vec_to_string v = String.concat "," (List.map string_of_int (Vec.to_list v))

let vec_of_string s =
  match List.map int_of_string (String.split_on_char ',' s) with
  | coords -> Ok (Vec.of_list coords)
  | exception Failure _ -> Error ("bad vector: " ^ s)

let vecs_to_string vs = String.concat ";" (List.map vec_to_string vs)

let vecs_of_string s =
  let parts = if s = "" then [] else String.split_on_char ';' s in
  List.fold_right
    (fun p acc ->
      match (acc, vec_of_string p) with
      | Ok vs, Ok v -> Ok (v :: vs)
      | (Error _ as e), _ -> e
      | _, Error e -> Error e)
    parts (Ok [])

(* A record line is "tilesched/v1;kind=K;key=value;..."; values may
   contain ';'-separated vectors, so fields are delimited by '|'. *)
let encode_record ~kind fields =
  String.concat "|" ((magic ^ ";kind=" ^ kind) :: List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let decode_record ~kind:expected_kind s =
  match String.split_on_char '|' s with
  | header :: fields when header = magic ^ ";kind=" ^ expected_kind ->
    let parse field =
      match String.index_opt field '=' with
      | Some i ->
        Ok (String.sub field 0 i, String.sub field (i + 1) (String.length field - i - 1))
      | None -> Error ("malformed field: " ^ field)
    in
    List.fold_right
      (fun f acc ->
        match (acc, parse f) with
        | Ok kvs, Ok kv -> Ok (kv :: kvs)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> Error (Result.get_error e))
      fields (Ok [])
  | _ -> Error (Printf.sprintf "not a %s %s record" magic expected_kind)

let field kvs k =
  match List.assoc_opt k kvs with
  | Some v -> Ok v
  | None -> Error ("missing field: " ^ k)

let ( let* ) = Result.bind

let prototile_to_string p = encode_record ~kind:"prototile" [ ("cells", vecs_to_string (Prototile.cells p)) ]

let prototile_of_string s =
  let* kvs = decode_record ~kind:"prototile" s in
  let* cells_s = field kvs "cells" in
  let* cells = vecs_of_string cells_s in
  match Prototile.of_cells cells with
  | p -> Ok p
  | exception _ -> Error "invalid prototile (empty, mixed dims, or origin missing)"

let basis_to_string lam = vecs_to_string (Sublattice.generators lam)

let basis_of_string s =
  let* rows = vecs_of_string s in
  match Sublattice.of_rows rows with
  | lam -> Ok lam
  | exception _ -> Error "invalid period basis"

let schedule_to_string sched =
  let period = Schedule.period sched in
  let table =
    List.map (fun c -> string_of_int (Schedule.slot_at sched c)) (Sublattice.cosets period)
  in
  encode_record ~kind:"schedule"
    [ ("dim", string_of_int (Sublattice.dim period));
      ("m", string_of_int (Schedule.num_slots sched)); ("basis", basis_to_string period);
      ("table", String.concat "," table) ]

let schedule_of_string s =
  let* kvs = decode_record ~kind:"schedule" s in
  let* m_s = field kvs "m" in
  let* basis_s = field kvs "basis" in
  let* table_s = field kvs "table" in
  let* period = basis_of_string basis_s in
  match
    ( int_of_string m_s,
      Array.of_list (List.map int_of_string (String.split_on_char ',' table_s)) )
  with
  | m, table ->
    if Array.length table <> Sublattice.index period then
      Error
        (Printf.sprintf "table length %d does not match period index %d" (Array.length table)
           (Sublattice.index period))
    else if not (Array.for_all (fun v -> 0 <= v && v < m) table) then
      Error "table entry out of slot range"
    else begin
      (* The stored table is indexed by the lexicographic coset order of
         [Sublattice.cosets]; re-key it by coset_id. *)
      let by_id = Array.make (Sublattice.index period) 0 in
      List.iteri
        (fun i c -> by_id.(Sublattice.coset_id period c) <- table.(i))
        (Sublattice.cosets period);
      Ok (Schedule.of_table ~period ~num_slots:m by_id)
    end
  | exception Failure _ -> Error "malformed integer"

let tiling_to_string t =
  encode_record ~kind:"tiling"
    [ ("prototile", vecs_to_string (Prototile.cells (Tiling.Single.prototile t)));
      ("basis", basis_to_string (Tiling.Single.period t));
      ("offsets", vecs_to_string (Tiling.Single.offsets t)) ]

let tiling_of_string s =
  let* kvs = decode_record ~kind:"tiling" s in
  let* cells_s = field kvs "prototile" in
  let* basis_s = field kvs "basis" in
  let* offsets_s = field kvs "offsets" in
  let* cells = vecs_of_string cells_s in
  let* period = basis_of_string basis_s in
  let* offsets = vecs_of_string offsets_s in
  let* prototile =
    match Prototile.of_cells cells with
    | p -> Ok p
    | exception _ -> Error "invalid prototile"
  in
  Tiling.Single.make ~prototile ~period ~offsets

let csv_assignment sched ~domain =
  let buf = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string buf (vec_to_string v);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int (Schedule.slot_at sched v));
      Buffer.add_char buf '\n')
    domain;
  Buffer.contents buf
