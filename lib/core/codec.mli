(** Serialization of schedules and their ingredients.

    A deployed sensor needs only three things to run the paper's
    protocol: the period basis (HNF rows), the slot count [m], and the
    coset-indexed slot table.  [schedule_to_string] packs exactly that
    into one printable line; [schedule_of_string] restores it.  The
    formats are versioned, human-readable and stable:

    {v
    tilesched/v1;dim=2;m=9;basis=3,0;0,3;table=0,1,2,3,4,5,6,7,8
    v}

    [prototile_*] and [tiling_*] round-trip the other artifacts for
    configuration files; [csv_assignment] exports a per-sensor slot
    table for external tooling. *)

(** {2 Record-layer helpers}

    One record is one line: a [tilesched/v1;kind=K] header then
    ['|']-separated [key=value] fields; values may contain [';']- and
    [',']-separated vectors but never ['|'] or newlines.  The scheduler
    server's wire protocol ({!Server.Protocol}) builds its request and
    response lines from these same helpers, so every on-disk and
    on-the-wire artifact shares one grammar. *)

val encode_record : kind:string -> (string * string) list -> string
val decode_record : kind:string -> string -> ((string * string) list, string) result

val field : (string * string) list -> string -> (string, string) result
(** First binding of the key, or [Error] naming the missing field. *)

val vec_to_string : Zgeom.Vec.t -> string
val vec_of_string : string -> (Zgeom.Vec.t, string) result
val vecs_to_string : Zgeom.Vec.t list -> string
val vecs_of_string : string -> (Zgeom.Vec.t list, string) result

(** {2 Artifact codecs} *)

val prototile_to_string : Lattice.Prototile.t -> string
val prototile_of_string : string -> (Lattice.Prototile.t, string) result

val schedule_to_string : Schedule.t -> string
val schedule_of_string : string -> (Schedule.t, string) result

val tiling_to_string : Tiling.Single.t -> string
val tiling_of_string : string -> (Tiling.Single.t, string) result

val csv_assignment : Schedule.t -> domain:Zgeom.Vec.t list -> string
(** One line per sensor: its coordinates then its slot, e.g. "3,4,7". *)
