open Zgeom
open Lattice
module IntSet = Set.Make (Int)

type domain = Vec.Set.t

let box ~lo ~hi =
  let d = Vec.dim lo in
  assert (Vec.dim hi = d);
  let rec go i prefix =
    if i = d then [ Vec.of_list (List.rev prefix) ]
    else
      List.concat_map
        (fun x -> go (i + 1) (x :: prefix))
        (List.init (Vec.coord hi i - Vec.coord lo i + 1) (fun k -> Vec.coord lo i + k))
  in
  Vec.Set.of_list (go 0 [])

let contains_translate dom s =
  if Vec.Set.is_empty s then true
  else if Vec.Set.is_empty dom then false
  else begin
    (* Candidate translations: align the minimum of s with each domain
       point (sufficient: t + min(s) must land somewhere in the domain). *)
    let smin = Vec.Set.min_elt s in
    Vec.Set.exists
      (fun p ->
        let t = Vec.sub p smin in
        Vec.Set.for_all (fun c -> Vec.Set.mem (Vec.add t c) dom) s)
      dom
  end

let meets_optimality_criterion dom n1 =
  contains_translate dom (Prototile.minkowski_sum n1 n1)

let ranges_intersect nu u nv v =
  Vec.Set.exists (fun a -> Vec.Set.mem (Vec.add u a) (Prototile.translate v nv)) (Prototile.cell_set nu)

let conflict_adj ~neighborhood sensors =
  let n = Array.length sensors in
  let adj = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if ranges_intersect (neighborhood sensors.(i)) sensors.(i) (neighborhood sensors.(j)) sensors.(j)
      then begin
        adj.(i).(j) <- true;
        adj.(j).(i) <- true
      end
    done
  done;
  adj

let conflict_adj_witnessed ~neighborhood sensors =
  let present = Vec.Set.of_list (Array.to_list sensors) in
  let n = Array.length sensors in
  let adj = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = Prototile.translate sensors.(i) (neighborhood sensors.(i)) in
      let rj = Prototile.translate sensors.(j) (neighborhood sensors.(j)) in
      let common = Vec.Set.inter ri rj in
      if Vec.Set.exists (fun w -> Vec.Set.mem w present) common then begin
        adj.(i).(j) <- true;
        adj.(j).(i) <- true
      end
    done
  done;
  adj

let optimal_slots ?(witnessed = true) ~neighborhood dom =
  let sensors = Array.of_list (Vec.Set.elements dom) in
  let adj =
    if witnessed then conflict_adj_witnessed ~neighborhood sensors
    else conflict_adj ~neighborhood sensors
  in
  Optimality.chromatic_number adj

let restriction_is_optimal tiling dom =
  let n = Tiling.Single.prototile tiling in
  let schedule = Schedule.of_tiling tiling in
  let used =
    Vec.Set.fold (fun v acc -> IntSet.add (Schedule.slot_at schedule v) acc) dom IntSet.empty
  in
  IntSet.cardinal used = optimal_slots ~neighborhood:(fun _ -> n) dom
