open Zgeom
open Lattice

let lower_bound = Prototile.size

let tile_is_clique n =
  let cells = Prototile.cells n in
  List.for_all
    (fun n' ->
      List.for_all
        (fun n'' ->
          (* n' + n'' lies in both n' + N and n'' + N. *)
          let w = Vec.add n' n'' in
          Vec.Set.mem w (Prototile.translate n' n) && Vec.Set.mem w (Prototile.translate n'' n))
        cells)
    cells

type role = { piece : int; cell : int }

let role_conflicts multi =
  let period = Tiling.Multi.period multi in
  let pieces = Array.of_list (Tiling.Multi.pieces multi) in
  let tiles = Array.map (fun p -> p.Tiling.Multi.tile) pieces in
  let cells = Array.map Prototile.cells tiles in
  let offset_sets =
    Array.map (fun p -> Vec.Set.of_list p.Tiling.Multi.piece_offsets) pieces
  in
  let conflicts = ref [] in
  let n_pieces = Array.length pieces in
  for k = 0 to n_pieces - 1 do
    for l = 0 to n_pieces - 1 do
      (* diff = N_k - N_l: the possible values of v - u for sensors u
         (role of piece k) and v (piece l) with intersecting ranges. *)
      let diff =
        Vec.Set.fold
          (fun a acc ->
            Vec.Set.fold
              (fun b acc -> Vec.Set.add (Vec.sub a b) acc)
              (Prototile.cell_set tiles.(l))
              acc)
          (Prototile.cell_set tiles.(k))
          Vec.Set.empty
      in
      List.iteri
        (fun i n_i ->
          List.iteri
            (fun j n_j ->
              let edge = ref false in
              (* u = s + n_i with s an offset of piece k (cosets suffice by
                 periodicity); v = u + d must decompose as t + n_j with t
                 in T_l. *)
              List.iter
                (fun s ->
                  let u = Vec.add s n_i in
                  Vec.Set.iter
                    (fun d ->
                      if not !edge then begin
                        let v = Vec.add u d in
                        let t = Vec.sub v n_j in
                        let same_sensor = Vec.equal u v in
                        let t_in_tl = Vec.Set.mem (Sublattice.reduce period t) offset_sets.(l) in
                        (* v - u in N_k - N_l already holds by the range of d. *)
                        if t_in_tl && not (same_sensor && k = l && i = j) then begin
                          (* By T2/GT2 a position has a unique covering
                             tile, so u = v with distinct roles cannot
                             happen; assert it. *)
                          assert ((not same_sensor) || (k = l && i = j));
                          if not same_sensor then edge := true
                        end
                      end)
                    diff)
                pieces.(k).Tiling.Multi.piece_offsets;
              if !edge then conflicts := ({ piece = k; cell = i }, { piece = l; cell = j }) :: !conflicts)
            cells.(l))
        cells.(k)
    done
  done;
  !conflicts

(* Exact graph coloring by backtracking: vertices in static degree order,
   allowing at most one fresh color beyond those already used (standard
   symmetry breaking). *)
let degree_order adj =
  let n = Array.length adj in
  let idx = Array.init n Fun.id in
  let deg v = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 adj.(v) in
  Array.sort (fun a b -> Stdlib.compare (deg b) (deg a)) idx;
  idx

(* Extend a partial assignment of [order.(0 .. pos-1)] to a full k-coloring;
   [colors] holds the attempt and keeps the witness on success. *)
let extend ~adj ~order colors ~pos ~used k =
  let n = Array.length adj in
  let rec go pos used =
    if pos = n then true
    else begin
      let v = order.(pos) in
      let limit = min k (used + 1) in
      let rec try_color c =
        if c >= limit then false
        else begin
          let ok = ref true in
          for u = 0 to n - 1 do
            if adj.(v).(u) && colors.(u) = c then ok := false
          done;
          if !ok then begin
            colors.(v) <- c;
            if go (pos + 1) (max used (c + 1)) then true
            else begin
              colors.(v) <- -1;
              try_color (c + 1)
            end
          end
          else try_color (c + 1)
        end
      in
      try_color 0
    end
  in
  go pos used

let color_with ~adj k =
  let n = Array.length adj in
  if n = 0 then Some [||]
  else begin
    let order = degree_order adj in
    let colors = Array.make n (-1) in
    if extend ~adj ~order colors ~pos:0 ~used:0 k then Some colors else None
  end

(* Parallel k-colorability decision: enumerate the valid partial
   assignments a few levels deep (breadth-first, under the same symmetry
   breaking), then evaluate the subtrees on the pool's domains.  The
   answer is an existence question, so it is identical to the sequential
   search's for any pool size and branch timing. *)
let color_feasible pool ?sched ~adj k =
  let n = Array.length adj in
  if n = 0 then true
  else if Parallel.jobs pool = 1 then color_with ~adj k <> None
  else begin
    let order = degree_order adj in
    let target = 4 * Parallel.jobs pool in
    let rec widen pos prefixes =
      if pos >= n || List.length prefixes >= target then (pos, prefixes)
      else begin
        let v = order.(pos) in
        let next =
          List.concat_map
            (fun (colors, used) ->
              let limit = min k (used + 1) in
              List.filter_map
                (fun c ->
                  let clash = ref false in
                  for u = 0 to n - 1 do
                    if adj.(v).(u) && colors.(u) = c then clash := true
                  done;
                  if !clash then None
                  else begin
                    let colors' = Array.copy colors in
                    colors'.(v) <- c;
                    Some (colors', max used (c + 1))
                  end)
                (List.init limit Fun.id))
            prefixes
        in
        widen (pos + 1) next
      end
    in
    let pos, prefixes = widen 0 [ (Array.make n (-1), 0) ] in
    if pos >= n then prefixes <> []
    else
      (* Subtree costs are wildly uneven (most prefixes die fast, a few
         carry the whole search), so the stealing scheduler's dynamic
         balance is the default here too. *)
      Parallel.map_array ?sched pool
        (fun (colors, used) -> extend ~adj ~order colors ~pos ~used k)
        (Array.of_list prefixes)
      |> Array.exists Fun.id
  end

let chromatic_number ?pool ?sched adj =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  let n = Array.length adj in
  let rec go k = if k > n then n else if color_feasible pool ?sched ~adj k then k else go (k + 1) in
  go 0

let role_graph multi =
  let pieces = Array.of_list (Tiling.Multi.pieces multi) in
  let sizes = Array.map (fun p -> Prototile.size p.Tiling.Multi.tile) pieces in
  let base = Array.make (Array.length pieces) 0 in
  for k = 1 to Array.length pieces - 1 do
    base.(k) <- base.(k - 1) + sizes.(k - 1)
  done;
  let total = Array.fold_left ( + ) 0 sizes in
  let id r = base.(r.piece) + r.cell in
  let adj = Array.make_matrix total total false in
  List.iter
    (fun (a, b) ->
      if id a <> id b then begin
        adj.(id a).(id b) <- true;
        adj.(id b).(id a) <- true
      end)
    (role_conflicts multi);
  (adj, base, sizes)

let ground_rule_minimum ?pool ?sched multi =
  let adj, _, _ = role_graph multi in
  chromatic_number ?pool ?sched adj

let ground_rule_assignment multi k =
  let adj, base, sizes = role_graph multi in
  match color_with ~adj k with
  | None -> None
  | Some colors ->
    let out = ref [] in
    Array.iteri
      (fun p b ->
        for c = 0 to sizes.(p) - 1 do
          out := ({ piece = p; cell = c }, colors.(b + c)) :: !out
        done)
      base;
    Some (List.rev !out)
