(** Optimality of the tiling schedules, and the Figure 5 phenomenon.

    Lower bound (Theorems 1 and 2): all [|N|] sensors inside one tile
    pairwise interfere - for [n', n''] in [N], the point [n' + n''] lies in
    both [n' + N] and [n'' + N] - so any collision-free schedule needs at
    least [|N|] slots (with [N] the respectable prototile in the
    multi-prototile case).

    Section 4's ground rules for the non-respectable case: every translate
    of a prototile uses the same slot pattern, patterns of different
    prototiles are independent.  The minimum slot count under these rules
    is the chromatic number of a finite {e role graph} whose vertices are
    (prototile, cell) pairs; {!ground_rule_minimum} computes it exactly,
    reproducing the 6-vs-4 dependence on the tiling shown in Figure 5. *)

val lower_bound : Lattice.Prototile.t -> int
(** [= Prototile.size], with the pairwise-interference argument above. *)

val tile_is_clique : Lattice.Prototile.t -> bool
(** Machine-check of the lower-bound argument: every two cells of [N]
    have intersecting ranges. Always true (0 is in N); exercised by
    tests as a sanity check of the proof's reasoning. *)

type role = { piece : int; cell : int }
(** Vertex of the role graph: cell index [cell] of prototile [piece]. *)

val role_conflicts : Tiling.Multi.t -> (role * role) list
(** Edges of the role graph: roles that some pair of distinct sensors
    with intersecting ranges occupies. Exact via the quotient. *)

val ground_rule_minimum : ?pool:Parallel.pool -> ?sched:Parallel.sched -> Tiling.Multi.t -> int
(** Chromatic number of the role graph: the optimal slot count for this
    tiling under Section 4's ground rules. Equals
    [size of the respectable prototile] for respectable tilings. *)

val ground_rule_assignment : Tiling.Multi.t -> int -> (role * int) list option
(** A valid assignment of roles to the given number of slots, if one
    exists (witness for {!ground_rule_minimum}). *)

val chromatic_number : ?pool:Parallel.pool -> ?sched:Parallel.sched -> bool array array -> int
(** Exact chromatic number of a small graph by branch and bound;
    exposed for reuse by the baselines and the finite-domain check.
    With a pool of more than one domain (default {!Parallel.default}),
    each [k]-colorability decision enumerates the branching tree's top
    levels breadth-first and evaluates the subtrees in parallel; the
    decision - hence the returned number - is identical to the
    sequential search's at every pool size. *)

val color_with : adj:bool array array -> int -> int array option
(** A proper coloring with the given number of colors, if possible. *)
