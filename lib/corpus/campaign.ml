open Lattice

(* The campaign driver: stream the free-polyomino bands, decide each
   tile with the Beauquier-Nivat filter (searching only when the filter
   admits it), append the verdicts to sharded segments, and checkpoint
   after every band so a killed campaign resumes exactly where the last
   fsync left it. *)

type verdict =
  | Non_exact
  | Exact of { tiling : Tiling.Single.t; certificate : Core.Certificate.t }

(* BN is a complete decision procedure for (simply-connected 2-D)
   polyominoes: no factorization means no translation tiling at all.
   When a factorization exists, Wijshoff-van Leeuwen guarantees a
   lattice tiling, and the BN translation vectors name one - validating
   them through [Single.make] is the polynomial fast path that keeps the
   exact-cover engine off this road entirely.  The search fallbacks can
   only fire if the fast path's vectors were wrong, i.e. on a bug. *)
let decide tile =
  (* A polyomino with a hole (first at area 7) never tiles by
     translations: a translate covering a hole cell must be disjoint
     from the enclosing tile, so it lies entirely inside the hole - but
     the tile's bounding box strictly contains its own hole's, so it
     cannot fit.  BN itself needs simple connectivity (a boundary word),
     so these are settled here. *)
  if not (Polyomino.is_polyomino tile) then Non_exact
  else
  let w = Polyomino.boundary_word tile in
  match Boundary_word.find_factorization w with
  | None -> Non_exact
  | Some f ->
    let v1, v2 = Boundary_word.translation_vectors w f in
    let tiling =
      match
        Tiling.Single.make ~prototile:tile ~period:(Sublattice.of_rows [ v1; v2 ])
          ~offsets:[ Zgeom.Vec.zero 2 ]
      with
      | Ok t -> t
      | Error _ -> (
        match Tiling.Search.find_tiling tile with
        | Some t -> t
        | None ->
          invalid_arg
            ("Corpus.Campaign.decide: BN factorization found but no tiling exists for key "
            ^ Store.key_of_prototile tile))
    in
    Exact { tiling; certificate = Core.Certificate.build tiling }

let payload_of_verdict = function
  | Non_exact -> ""
  | Exact { tiling; certificate } ->
    Core.Codec.tiling_to_string tiling ^ "\n" ^ Core.Certificate.to_string certificate

type report = {
  dir : string;
  shards : int;
  max_n : int;
  skipped_bands : int;
  bands : Layout.band list;
}

(* ---------- fd-level file helpers ----------

   The writers use raw file descriptors, not buffered channels: a
   buffered channel flushes whatever it holds from [at_exit] (or a GC
   finalizer), which after a mid-band crash would append bytes BEHIND
   the recovery truncation and corrupt the very state the checkpoint
   protocol protects.  With [Unix.write] every published byte is either
   fully before the kill point or absent. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write fd b !pos (n - !pos)
  done

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Atomic replace with the store's fsync-then-rename discipline: the
   rename may only publish blocks already forced to disk. *)
let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd contents;
      Unix.fsync fd);
  Sys.rename tmp path

let seg_path dir s = Filename.concat dir (Layout.segment_name s)
let idx_path dir s = Filename.concat dir (Layout.index_name s)
let manifest_path dir = Filename.concat dir Layout.manifest_name

let write_manifest dir m = write_file_atomic (manifest_path dir) (Layout.manifest_to_string m)

(* ---------- sealing: build the per-shard index files ---------- *)

let seal_shard dir s =
  let data = read_file (seg_path dir s) in
  match
    Layout.fold_records data ~init:[] ~f:(fun acc ~off ~band:_ ~tag:_ ~key ~payload:_ ->
        (Layout.hash_key key, off) :: acc)
  with
  | Error e -> Error (Printf.sprintf "%s: %s" (Layout.segment_name s) e)
  | Ok entries ->
    let entries = List.sort compare entries in
    let count = List.length entries in
    let b = Bytes.create (Layout.magic_len + 8 + (count * Layout.idx_entry_size)) in
    Bytes.blit_string Layout.idx_magic 0 b 0 Layout.magic_len;
    Layout.put_u64 b Layout.magic_len count;
    List.iteri
      (fun i (hash, off) ->
        let at = Layout.magic_len + 8 + (i * Layout.idx_entry_size) in
        Layout.put_u64 b at hash;
        Layout.put_u64 b (at + 8) off)
      entries;
    write_file_atomic (idx_path dir s) (Bytes.unsafe_to_string b);
    Ok ()

let seal dir m =
  let ( let* ) = Result.bind in
  let rec go s = if s = m.Layout.shards then Ok () else let* () = seal_shard dir s in go (s + 1) in
  let* () = go 0 in
  write_manifest dir { m with Layout.sealed = true };
  Ok { m with Layout.sealed = true }

(* ---------- crash repair ---------- *)

(* Bring every segment back to the last checkpoint: create missing
   files, cut bytes past the manifest-recorded length (a killed band's
   partial appends), and reject files that are somehow too short. *)
let repair_segments dir m =
  let lens = Layout.shard_lengths m in
  let ( let* ) = Result.bind in
  let rec go s =
    if s = m.Layout.shards then Ok ()
    else
      let path = seg_path dir s in
      let* () =
        if not (Sys.file_exists path) then
          if lens.(s) > Layout.magic_len then
            Error (Printf.sprintf "%s: missing segment (manifest expects %d bytes)"
                     (Layout.segment_name s) lens.(s))
          else begin
            write_file_atomic path Layout.seg_magic;
            Ok ()
          end
        else
          let size = (Unix.stat path).Unix.st_size in
          if size < lens.(s) then
            Error (Printf.sprintf "%s: segment shorter than manifest (%d < %d bytes)"
                     (Layout.segment_name s) size lens.(s))
          else begin
            if size > lens.(s) then Unix.truncate path lens.(s);
            Ok ()
          end
      in
      go (s + 1)
  in
  go 0

(* ---------- the campaign proper ---------- *)

let append_band dir m ~pool ~progress ~n tiles =
  let shards = m.Layout.shards in
  let verdicts = Parallel.map pool (fun tile -> (Store.key_of_prototile tile, decide tile)) tiles in
  let lens = Layout.shard_lengths m in
  let exact = ref 0 and non_exact = ref 0 in
  let total = List.length verdicts in
  let fds =
    Array.init shards (fun s ->
        Unix.openfile (seg_path dir s) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644)
  in
  Fun.protect
    ~finally:(fun () -> Array.iter Unix.close fds)
    (fun () ->
      List.iteri
        (fun i (key, verdict) ->
          let tag =
            match verdict with
            | Non_exact ->
              incr non_exact;
              Layout.tag_non_exact
            | Exact _ ->
              incr exact;
              Layout.tag_exact
          in
          let record =
            Layout.encode_record ~band:n ~tag ~key ~payload:(payload_of_verdict verdict)
          in
          let s = Layout.shard_of_key ~shards key in
          write_all fds.(s) record;
          lens.(s) <- lens.(s) + String.length record;
          progress ~n ~done_:(i + 1) ~total)
        verdicts;
      Array.iter Unix.fsync fds);
  let band =
    { Layout.n; classes = total; exact = !exact; non_exact = !non_exact; lens }
  in
  let m = { m with Layout.bands = m.Layout.bands @ [ band ] } in
  write_manifest dir m;
  m

let run ?pool ?(shards = 8) ?(progress = fun ~n:_ ~done_:_ ~total:_ -> ()) ~dir ~max_n () =
  let ( let* ) = Result.bind in
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let* () =
    if max_n < 1 || max_n > 255 then Error "Campaign.run: max_n must be in 1..255" else Ok ()
  in
  let* () = if shards >= 1 then Ok () else Error "Campaign.run: shards must be >= 1" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let* m =
    let path = manifest_path dir in
    if Sys.file_exists path then
      let* m = Layout.manifest_of_string (read_file path) in
      if m.Layout.shards <> shards && shards <> 8 then
        Error
          (Printf.sprintf "corpus at %s was built with %d shards, not %d" dir m.Layout.shards
             shards)
      else Ok m
    else Ok { Layout.shards; sealed = false; bands = [] }
  in
  let* () = repair_segments dir m in
  let completed = Layout.completed m in
  let skipped_bands = min completed max_n in
  let* m =
    if completed >= max_n then Ok m
    else begin
      (* Growing past a sealed corpus: drop the seal first, so a crash
         during the new bands can never leave stale indexes looking
         authoritative. *)
      let m = { m with Layout.sealed = false } in
      write_manifest dir m;
      let state = ref m in
      let buf = ref [] and cur = ref 1 in
      let flush_band () =
        let n = !cur in
        if n > completed then
          state := append_band dir !state ~pool ~progress ~n (List.rev !buf);
        buf := []
      in
      Polyomino.enumerate_free_iter ~max_area:max_n (fun ~area tile ->
          if area <> !cur then begin
            flush_band ();
            cur := area
          end;
          if area > completed then buf := tile :: !buf);
      flush_band ();
      Ok !state
    end
  in
  let* m = if m.Layout.sealed then Ok m else seal dir m in
  Ok { dir; shards = m.Layout.shards; max_n; skipped_bands; bands = m.Layout.bands }

let pp_report fmt r =
  Format.fprintf fmt "corpus %s: shards=%d sealed=true bands=%d" r.dir r.shards
    (List.length r.bands);
  if r.skipped_bands > 0 then
    Format.fprintf fmt " (resumed: %d band%s already checkpointed)" r.skipped_bands
      (if r.skipped_bands = 1 then "" else "s");
  List.iter
    (fun b ->
      Format.fprintf fmt "@\nband n=%d classes=%d exact=%d non-exact=%d" b.Layout.n
        b.Layout.classes b.Layout.exact b.Layout.non_exact)
    r.bands;
  let tot f = List.fold_left (fun acc b -> acc + f b) 0 r.bands in
  Format.fprintf fmt "@\ntotal classes=%d exact=%d non-exact=%d"
    (tot (fun b -> b.Layout.classes))
    (tot (fun b -> b.Layout.exact))
    (tot (fun b -> b.Layout.non_exact))
