(** The precompute campaign: every free polyomino up to a band bound,
    decided and made durable.

    {!run} streams {!Lattice.Polyomino.enumerate_free_iter} band by
    band (area [n] = one band).  Each tile is decided by {!decide}: the
    Beauquier-Nivat factorization is the polynomial admission filter -
    no factorization is a {e complete} refutation for polyominoes, so
    the exact-cover machinery never runs on a non-exact tile; a
    factorization yields translation vectors that [Single.make]
    validates directly (Wijshoff-van Leeuwen), which is the fast path
    that keeps search off the campaign's critical path entirely.
    Verdict computation fans out over the {!Parallel} pool
    (deterministically - results are assembled in band order at every
    [-j]).

    {2 Checkpoint-resume invariant}

    Records append to per-shard segments (shard = key hash mod shard
    count).  After each band: segments are fsynced, then the manifest -
    which names the band and the cumulative byte length of every
    segment - is atomically replaced (write-temp, fsync, rename).  On
    (re)open, every segment is truncated back to its manifest length,
    dropping any partial band, and the campaign redoes work from the
    first unlisted band.  Appends are deterministic, so a killed and
    resumed campaign produces a corpus {e byte-identical} to an
    uninterrupted one - CI asserts this with [cmp] after a [kill -9].

    Sealing (building the per-shard indexes and setting the manifest's
    [sealed] flag) happens only after the last band; growing a sealed
    corpus to a larger bound drops the seal first, so stale indexes can
    never look authoritative. *)

type verdict =
  | Non_exact  (** no BN factorization: proven untileable by translations *)
  | Exact of { tiling : Tiling.Single.t; certificate : Core.Certificate.t }

val decide : Lattice.Prototile.t -> verdict
(** Decide one polyomino prototile (must satisfy
    [Polyomino.is_polyomino]; enumerated tiles do). *)

val payload_of_verdict : verdict -> string
(** The segment record payload: empty for {!Non_exact}, the tiling line
    plus the three certificate lines for {!Exact}. *)

type report = {
  dir : string;
  shards : int;
  max_n : int;
  skipped_bands : int;  (** bands already checkpointed by an earlier run *)
  bands : Layout.band list;
}

val run :
  ?pool:Parallel.pool ->
  ?shards:int ->
  (* default 8; must match an existing corpus *)
  ?progress:(n:int -> done_:int -> total:int -> unit) ->
  (* called after each appended record; the crash tests' injection point *)
  dir:string ->
  max_n:int ->
  unit ->
  (report, string) result
(** Build or resume the corpus at [dir] up to band [max_n] (1..255) and
    seal it.  Completed bands are skipped ([skipped_bands] counts them);
    a partial band left by a crash is truncated away and redone. *)

val pp_report : Format.formatter -> report -> unit
