(* On-disk grammar shared by the campaign writer (Campaign) and the mmap
   reader (Snapshot).  Everything here is deterministic: a corpus built
   twice from the same parameters is byte-identical, which is what makes
   the kill-and-resume acceptance test a plain [cmp]. *)

let seg_magic = "TCORPS1\n"
let idx_magic = "TCORPI1\n"
let magic_len = 8
let version = 1

(* A record payload is a handful of text lines (a tiling line plus a
   certificate); anything bigger is a corrupt length field. *)
let max_payload = 1 lsl 24
let max_key = 1 lsl 16

let header_size = 12 (* crc32 | tag | band | key len (u16) | payload len (u32) *)
let idx_entry_size = 16 (* key hash (u64) | segment record offset (u64) *)

let tag_non_exact = 0
let tag_exact = 1

let manifest_name = "MANIFEST"
let segment_name shard = Printf.sprintf "shard-%03d.seg" shard
let index_name shard = Printf.sprintf "shard-%03d.idx" shard

(* ---------- key hashing / sharding ---------- *)

(* FNV-1a over the key bytes, folded into OCaml's native int (so the
   multiply wraps mod 2^63 rather than 2^64 - fine, the hash only ever
   meets hashes computed by this same function) and masked to 62 bits so
   the stored u64 round-trips through non-negative OCaml ints. *)
let hash_mask = 0x3FFF_FFFF_FFFF_FFFF

let hash_key key =
  (* The 64-bit FNV offset basis, already masked to 62 bits. *)
  let h = ref 0x0BF2_9CE4_8422_2325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x1000_0000_01B3)
    key;
  !h land hash_mask

let shard_of_key ~shards key = hash_key key mod shards

(* ---------- record codec ---------- *)

let put_u16 b off v =
  Bytes.set_uint16_le b off v

let put_u32 b off v =
  Bytes.set_int32_le b off (Int32.of_int v)

let put_u64 b off v =
  Bytes.set_int64_le b off (Int64.of_int v)

let get_u16 s off = String.get_uint16_le s off
let get_u32 s off = Int32.to_int (String.get_int32_le s off) land 0xFFFF_FFFF
let get_u64 s off = Int64.to_int (String.get_int64_le s off)

let encode_record ~band ~tag ~key ~payload =
  let klen = String.length key and plen = String.length payload in
  if klen = 0 || klen >= max_key then invalid_arg "Corpus.Layout.encode_record: bad key length";
  if plen > max_payload then invalid_arg "Corpus.Layout.encode_record: payload too large";
  if band < 1 || band > 255 then invalid_arg "Corpus.Layout.encode_record: band must be 1..255";
  let b = Bytes.create (header_size + klen + plen) in
  Bytes.set b 4 (Char.chr tag);
  Bytes.set b 5 (Char.chr band);
  put_u16 b 6 klen;
  put_u32 b 8 plen;
  Bytes.blit_string key 0 b header_size klen;
  Bytes.blit_string payload 0 b (header_size + klen) plen;
  let body = Bytes.sub_string b 4 (header_size - 4 + klen + plen) in
  Bytes.set_int32_le b 0 (Store.crc32 body);
  Bytes.unsafe_to_string b

(* Walk every record of a raw segment image (magic included), calling
   [f] with the record's byte offset and decoded fields.  Unlike the
   store's longest-valid-prefix scan this is strict: the campaign only
   publishes fsynced, manifest-covered bytes, so any framing or CRC
   violation here is corruption, not a torn tail. *)
let fold_records data ~init ~f =
  let n = String.length data in
  if n < magic_len || String.sub data 0 magic_len <> seg_magic then
    Error "bad segment magic"
  else begin
    let acc = ref init in
    let pos = ref magic_len in
    let err = ref None in
    while !err = None && !pos < n do
      let off = !pos in
      if n - off < header_size then err := Some (Printf.sprintf "torn record header at byte %d" off)
      else begin
        let crc = String.get_int32_le data off in
        let tag = Char.code data.[off + 4] in
        let band = Char.code data.[off + 5] in
        let klen = get_u16 data (off + 6) in
        let plen = get_u32 data (off + 8) in
        if klen = 0 || klen >= max_key || plen > max_payload || off + header_size + klen + plen > n
        then err := Some (Printf.sprintf "impossible record lengths at byte %d" off)
        else if Store.crc32 (String.sub data (off + 4) (header_size - 4 + klen + plen)) <> crc
        then err := Some (Printf.sprintf "CRC mismatch at byte %d" off)
        else if tag <> tag_non_exact && tag <> tag_exact then
          err := Some (Printf.sprintf "unknown verdict tag %d at byte %d" tag off)
        else begin
          let key = String.sub data (off + header_size) klen in
          let payload = String.sub data (off + header_size + klen) plen in
          acc := f !acc ~off ~band ~tag ~key ~payload;
          pos := off + header_size + klen + plen
        end
      end
    done;
    match !err with Some e -> Error e | None -> Ok !acc
  end

(* ---------- manifest codec ---------- *)

type band = {
  n : int;
  classes : int;
  exact : int;
  non_exact : int;
  lens : int array;  (** cumulative per-shard segment length after this band, bytes *)
}

type manifest = {
  shards : int;
  sealed : bool;
  bands : band list;  (** contiguous, ascending [n] starting at 1 *)
}

let ints_to_string a =
  String.concat "," (List.map string_of_int (Array.to_list a))

let ints_of_string s =
  try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
  with Failure _ -> Error ("bad integer list: " ^ s)

let manifest_to_string m =
  let header =
    Core.Codec.encode_record ~kind:"corpus-manifest"
      [ ("version", string_of_int version); ("shards", string_of_int m.shards);
        ("sealed", if m.sealed then "true" else "false") ]
  in
  let band b =
    Core.Codec.encode_record ~kind:"corpus-band"
      [ ("n", string_of_int b.n); ("classes", string_of_int b.classes);
        ("exact", string_of_int b.exact); ("nonexact", string_of_int b.non_exact);
        ("lens", ints_to_string b.lens) ]
  in
  String.concat "\n" (header :: List.map band m.bands) ^ "\n"

let manifest_of_string s =
  let ( let* ) = Result.bind in
  let int_field kvs k =
    let* v = Core.Codec.field kvs k in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error ("bad integer in field " ^ k ^ ": " ^ v)
  in
  match String.split_on_char '\n' (String.trim s) with
  | [] -> Error "empty manifest"
  | header :: rest ->
    let* kvs = Core.Codec.decode_record ~kind:"corpus-manifest" header in
    let* v = int_field kvs "version" in
    let* () = if v = version then Ok () else Error (Printf.sprintf "unsupported corpus version %d" v) in
    let* shards = int_field kvs "shards" in
    let* () = if shards >= 1 then Ok () else Error "shards must be >= 1" in
    let* sealed =
      let* s = Core.Codec.field kvs "sealed" in
      match s with
      | "true" -> Ok true
      | "false" -> Ok false
      | s -> Error ("bad sealed flag: " ^ s)
    in
    let* bands =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          let* kvs = Core.Codec.decode_record ~kind:"corpus-band" line in
          let* n = int_field kvs "n" in
          let* classes = int_field kvs "classes" in
          let* exact = int_field kvs "exact" in
          let* non_exact = int_field kvs "nonexact" in
          let* lens_s = Core.Codec.field kvs "lens" in
          let* lens = ints_of_string lens_s in
          if Array.length lens <> shards then Error "band lens arity differs from shard count"
          else Ok ({ n; classes; exact; non_exact; lens } :: acc))
        (Ok []) rest
    in
    let bands = List.rev bands in
    let rec contiguous k = function
      | [] -> Ok ()
      | b :: tl -> if b.n = k then contiguous (k + 1) tl else Error "bands are not contiguous from 1"
    in
    let* () = contiguous 1 bands in
    Ok { shards; sealed; bands }

let completed m = match List.rev m.bands with [] -> 0 | b :: _ -> b.n

let shard_lengths m =
  match List.rev m.bands with
  | [] -> Array.make m.shards magic_len
  | b :: _ -> Array.copy b.lens
