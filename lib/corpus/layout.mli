(** On-disk grammar of a verdict corpus, shared by the campaign writer
    ({!Campaign}) and the mmap reader ({!Snapshot}).

    A corpus is a directory:

    {v
    MANIFEST        checkpoint state (text, atomically replaced)
    shard-000.seg   append segment: magic + framed verdict records
    shard-000.idx   fixed-width sorted index, written once at seal time
    ...
    v}

    A segment record is

    {v
    crc32 (u32 LE, over everything after it) | tag (u8) |
    band (u8) | key len (u16 LE) | payload len (u32 LE) | key | payload
    v}

    with [tag] 0 for a BN-refuted (non-exact) prototile and 1 for an
    exact one, [key] the canonical cell-list key
    ({!Store.key_of_prototile}), and - for exact records - a payload of
    the tiling line ({!Core.Codec.tiling_to_string}) followed by the
    three certificate lines.  An index file is its magic, a u64 LE entry
    count, then [count] entries of [key hash (u64 LE) | record offset
    (u64 LE)] sorted by (hash, offset): lookup is binary search on the
    hash then a key-bytes comparison against the mapped segment.

    Everything is deterministic - same parameters, byte-identical
    corpus - so crash-recovery correctness is checkable with [cmp]. *)

val seg_magic : string
val idx_magic : string
val magic_len : int

val version : int
(** Format version recorded in the manifest; readers reject others. *)

val header_size : int
(** Bytes of a record frame before the key. *)

val idx_entry_size : int

val tag_non_exact : int
val tag_exact : int

val manifest_name : string
val segment_name : int -> string
val index_name : int -> string

val hash_key : string -> int
(** FNV-1a of the key bytes folded to 62 bits (always non-negative). *)

val shard_of_key : shards:int -> string -> int
(** [hash_key key mod shards]. *)

val put_u16 : Bytes.t -> int -> int -> unit
val put_u32 : Bytes.t -> int -> int -> unit
val put_u64 : Bytes.t -> int -> int -> unit
val get_u16 : string -> int -> int
val get_u32 : string -> int -> int
val get_u64 : string -> int -> int
(** Little-endian field accessors (values are non-negative ints). *)

val encode_record : band:int -> tag:int -> key:string -> payload:string -> string
(** One framed record, CRC included.  Raises [Invalid_argument] on an
    empty/oversized key, oversized payload, or band outside [1..255]. *)

val fold_records :
  string ->
  init:'a ->
  f:('a -> off:int -> band:int -> tag:int -> key:string -> payload:string -> 'a) ->
  ('a, string) result
(** Strict walk over a raw segment image (magic included): any framing,
    length or CRC violation is an [Error] naming the offset.  Unlike the
    store's longest-valid-prefix recovery, nothing here is forgiven -
    the campaign only publishes fsynced, manifest-covered bytes, so a
    bad frame is corruption. *)

type band = {
  n : int;
  classes : int;
  exact : int;
  non_exact : int;
  lens : int array;  (** cumulative per-shard segment length after this band, bytes *)
}

type manifest = {
  shards : int;
  sealed : bool;  (** indexes written; snapshots may open *)
  bands : band list;  (** contiguous, ascending [n] starting at 1 *)
}

val manifest_to_string : manifest -> string
val manifest_of_string : string -> (manifest, string) result

val completed : manifest -> int
(** Highest fully-checkpointed band, 0 for none. *)

val shard_lengths : manifest -> int array
(** Per-shard segment byte length as of the last checkpointed band (the
    truncation targets for crash repair); all [magic_len] when no band
    has completed. *)
