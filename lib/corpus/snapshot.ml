(* Read-only mmap view of a sealed corpus.  Opening maps the segment
   and index files (no parsing, no validation, O(1) in corpus size);
   a lookup is an FNV hash, a binary search over the mapped fixed-width
   index, and a key-bytes comparison against the mapped segment.  The
   hot path never deserializes: replies are sliced straight out of the
   mapped buffer. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type shard = { seg : buf; idx : buf; count : int }

type t = {
  dir : string;
  shards : shard array;
  bands : Layout.band list;
}

type hit = { shard : int; off : int }

(* ---------- mapped-buffer accessors ---------- *)

let map_ro path : buf =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Bigarray.array1_of_genarray (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))

let get_u8 (b : buf) i = Char.code (Bigarray.Array1.get b i)

let get_u16 (b : buf) i = get_u8 b i lor (get_u8 b (i + 1) lsl 8)

let get_u32 (b : buf) i = get_u16 b i lor (get_u16 b (i + 2) lsl 16)

(* Stored values are at most 62 bits, so the top two bytes never carry
   a sign into OCaml's int. *)
let get_u64 (b : buf) i = get_u32 b i lor (get_u32 b (i + 4) lsl 32)

let sub_string (b : buf) pos len =
  String.init len (fun i -> Bigarray.Array1.get b (pos + i))

let string_matches (b : buf) pos s =
  let n = String.length s in
  let rec go i = i = n || (Bigarray.Array1.get b (pos + i) = s.[i] && go (i + 1)) in
  go 0

(* ---------- open ---------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let open_ dir =
  let ( let* ) = Result.bind in
  let manifest_path = Filename.concat dir Layout.manifest_name in
  let* () =
    if Sys.file_exists manifest_path then Ok ()
    else Error (Printf.sprintf "no corpus at %s (missing %s)" dir Layout.manifest_name)
  in
  let* m = Layout.manifest_of_string (read_file manifest_path) in
  let* () =
    if m.Layout.sealed then Ok ()
    else Error (Printf.sprintf "corpus at %s is not sealed (campaign still running or killed mid-build; re-run the build to seal it)" dir)
  in
  let lens = Layout.shard_lengths m in
  let* shards =
    let rec go s acc =
      if s = m.Layout.shards then Ok (Array.of_list (List.rev acc))
      else
        let seg = map_ro (Filename.concat dir (Layout.segment_name s)) in
        let idx = map_ro (Filename.concat dir (Layout.index_name s)) in
        if Bigarray.Array1.dim seg < lens.(s) then
          Error (Printf.sprintf "%s: mapped segment shorter than manifest" (Layout.segment_name s))
        else if
          Bigarray.Array1.dim idx < Layout.magic_len + 8
          || not (string_matches idx 0 Layout.idx_magic)
          || not (string_matches seg 0 Layout.seg_magic)
        then Error (Printf.sprintf "%s: bad segment or index magic" (Layout.segment_name s))
        else
          let count = get_u64 idx Layout.magic_len in
          if Bigarray.Array1.dim idx < Layout.magic_len + 8 + (count * Layout.idx_entry_size)
          then Error (Printf.sprintf "%s: index shorter than its entry count" (Layout.index_name s))
          else go (s + 1) ({ seg; idx; count } :: acc)
    in
    go 0 []
  in
  Ok { dir; shards; bands = m.Layout.bands }

let dir t = t.dir
let bands t = t.bands
let length t = Array.fold_left (fun acc s -> acc + s.count) 0 t.shards

(* ---------- lookup ---------- *)

let entry_hash sh i = get_u64 sh.idx (Layout.magic_len + 8 + (i * Layout.idx_entry_size))
let entry_off sh i = get_u64 sh.idx (Layout.magic_len + 8 + (i * Layout.idx_entry_size) + 8)

let key_at sh off key =
  let klen = get_u16 sh.seg (off + 6) in
  klen = String.length key && string_matches sh.seg (off + Layout.header_size) key

let find t key =
  let h = Layout.hash_key key in
  let shard = h mod Array.length t.shards in
  let sh = t.shards.(shard) in
  (* Leftmost index entry with hash >= h. *)
  let lo = ref 0 and hi = ref sh.count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if entry_hash sh mid < h then lo := mid + 1 else hi := mid
  done;
  let rec scan i =
    if i >= sh.count || entry_hash sh i <> h then None
    else
      let off = entry_off sh i in
      if key_at sh off key then Some { shard; off } else scan (i + 1)
  in
  scan !lo

let band t hit = get_u8 t.shards.(hit.shard).seg (hit.off + 5)

let verdict t hit =
  if get_u8 t.shards.(hit.shard).seg (hit.off + 4) = Layout.tag_exact then `Exact else `Non_exact

let payload_bounds t hit =
  let sh = t.shards.(hit.shard) in
  let klen = get_u16 sh.seg (hit.off + 6) in
  let plen = get_u32 sh.seg (hit.off + 8) in
  (hit.off + Layout.header_size + klen, plen)

let payload t hit =
  let pos, len = payload_bounds t hit in
  sub_string t.shards.(hit.shard).seg pos len

(* The zero-deserialization slice: the '|'-separated field fragment of
   the stored tiling line (everything after the record header), ready to
   splice verbatim into a [tile-search] response line.  One memchr-style
   scan for the line break and one blit; no parsing, no validation -
   the bytes were validated when the campaign wrote them (and again by
   [verify], if run). *)
let tiling_raw t hit =
  let sh = t.shards.(hit.shard) in
  let pos, len = payload_bounds t hit in
  let rec line_end i = if i = len || Bigarray.Array1.get sh.seg (pos + i) = '\n' then i else line_end (i + 1) in
  let stop = line_end 0 in
  let rec first_sep i =
    if i = stop then stop else if Bigarray.Array1.get sh.seg (pos + i) = '|' then i + 1 else first_sep (i + 1)
  in
  let start = first_sep 0 in
  (sh.seg, pos + start, stop - start)

let tiling_fields t hit =
  let seg, pos, len = tiling_raw t hit in
  sub_string seg pos len

(* ---------- decode (the cold path) ---------- *)

let entry t hit =
  let ( let* ) = Result.bind in
  match verdict t hit with
  | `Non_exact -> Ok None
  | `Exact -> (
    match String.split_on_char '\n' (payload t hit) with
    | tiling_line :: (_ :: _ :: _ :: [] as cert_lines) ->
      let* tiling = Core.Codec.tiling_of_string tiling_line in
      let* certificate = Core.Certificate.of_string (String.concat "\n" cert_lines) in
      Ok (Some (tiling, certificate))
    | _ -> Error "malformed corpus payload")

(* ---------- verify ---------- *)

type verify_report = {
  records : int;
  exact : int;
  non_exact : int;
  indexed : int;
}

let verify ~dir:d =
  let ( let* ) = Result.bind in
  let* t = open_ d in
  let module V = struct
    exception Bad of string
  end in
  let fail fmt = Printf.ksprintf (fun s -> raise (V.Bad s)) fmt in
  try
    let records = ref 0 and exact = ref 0 and non_exact = ref 0 and indexed = ref 0 in
    let counts = Hashtbl.create 16 in
    Array.iteri
      (fun s sh ->
        let name = Layout.segment_name s in
        let data = sub_string sh.seg 0 (Bigarray.Array1.dim sh.seg) in
        let n =
          match
            Layout.fold_records data ~init:0 ~f:(fun n ~off ~band ~tag ~key ~payload ->
                incr records;
                (* Every record must be reachable through the index... *)
                (match find t key with
                | Some hit when hit.shard = s && hit.off = off -> ()
                | Some _ -> fail "%s: key at byte %d resolves to a different record" name off
                | None -> fail "%s: key at byte %d is not reachable through the index" name off);
                (* ... live in its hash shard ... *)
                if Layout.shard_of_key ~shards:(Array.length t.shards) key <> s then
                  fail "%s: record at byte %d is in the wrong shard" name off;
                (* ... and carry a verdict that proves itself. *)
                (match tag with
                | tag when tag = Layout.tag_non_exact ->
                  incr non_exact;
                  if payload <> "" then fail "%s: non-exact record at byte %d has a payload" name off
                | _ -> (
                  incr exact;
                  match String.split_on_char '\n' payload with
                  | tiling_line :: (_ :: _ :: _ :: [] as cert_lines) -> (
                    let tiling =
                      match Core.Codec.tiling_of_string tiling_line with
                      | Ok tl -> tl
                      | Error e -> fail "%s: bad tiling at byte %d: %s" name off e
                    in
                    let cert =
                      match Core.Certificate.of_string (String.concat "\n" cert_lines) with
                      | Ok c -> c
                      | Error e -> fail "%s: bad certificate at byte %d: %s" name off e
                    in
                    if Store.key_of_prototile (Tiling.Single.prototile tiling) <> key then
                      fail "%s: key at byte %d is not the canonical key of its tiling" name off;
                    match Core.Certificate.check cert with
                    | Ok () -> ()
                    | Error f ->
                      fail "%s: certificate rejected at byte %d: %s" name off
                        (Format.asprintf "%a" Core.Certificate.pp_failure f))
                  | _ -> fail "%s: malformed exact payload at byte %d" name off));
                let e, ne = try Hashtbl.find counts band with Not_found -> (0, 0) in
                Hashtbl.replace counts band
                  (match tag with
                  | tag when tag = Layout.tag_exact -> (e + 1, ne)
                  | _ -> (e, ne + 1));
                n + 1)
          with
          | Ok n -> n
          | Error e -> fail "%s: %s" name e
        in
        if n <> sh.count then
          fail "%s: index holds %d entries for %d records" (Layout.index_name s) sh.count n;
        indexed := !indexed + sh.count)
      t.shards;
    (* The manifest's per-band counts must agree with the records. *)
    List.iter
      (fun b ->
        let e, ne = try Hashtbl.find counts b.Layout.n with Not_found -> (0, 0) in
        if e <> b.Layout.exact || ne <> b.Layout.non_exact || e + ne <> b.Layout.classes then
          fail "manifest band n=%d (classes=%d exact=%d non-exact=%d) disagrees with the records \
                (%d exact, %d non-exact)"
            b.Layout.n b.Layout.classes b.Layout.exact b.Layout.non_exact e ne)
      t.bands;
    if Hashtbl.length counts <> List.length t.bands then fail "records from a band the manifest does not list";
    Ok { records = !records; exact = !exact; non_exact = !non_exact; indexed = !indexed }
  with V.Bad msg -> Error msg
