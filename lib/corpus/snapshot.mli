(** Read-only mmap snapshot tier over a sealed corpus.

    {!open_} maps every segment and index file ([Unix.map_file] +
    [Bigarray]) without reading, parsing or validating any record, so a
    fresh process is serving in O(1) regardless of corpus size - the
    Herman-Tixeuil "all work precomputed, zero work on the hot path"
    philosophy applied to serving.  Contrast {!Store.open_}, which
    replays its whole log and re-proves every certificate before the
    first answer.

    {!find} is an FNV hash, a binary search over the mapped fixed-width
    index, and a key-bytes comparison against the mapped segment; a
    {!hit} is just a (shard, offset) pair into the maps.  Accessors
    slice from the mapped buffer on demand: {!tiling_fields} is the
    zero-deserialization reply path (one line scan + one blit, no
    parsing), {!entry} the validating cold path for requests that must
    transport or re-derive the tiling.

    Trust model: the snapshot believes the sealed corpus (the campaign
    validated everything it wrote, and [verify] re-proves the whole
    corpus offline); readers that need a checked artifact go through
    {!entry}, whose codec revalidates the tiling via [Single.make]. *)

type t

type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A mapped segment.  Read-only by convention (the mapping is opened
    [O_RDONLY]); writes would fault. *)

val open_ : string -> (t, string) result
(** Map the corpus directory.  Fails if the corpus is absent, damaged,
    or not sealed (a campaign still running - or killed mid-build and
    not yet resumed - must not be served). *)

val dir : t -> string

val bands : t -> Layout.band list
(** Per-band stats straight from the manifest. *)

val length : t -> int
(** Total indexed records. *)

type hit

val find : t -> string -> hit option
(** Look up a canonical key ({!Store.key_of_prototile}). *)

val band : t -> hit -> int
val verdict : t -> hit -> [ `Exact | `Non_exact ]

val tiling_fields : t -> hit -> string
(** Exact hits only: the ['|']-separated field fragment of the stored
    tiling line ([prototile=...|basis=...|offsets=...]), sliced straight
    from the mapped segment with no parsing - ready to splice verbatim
    into a [tile-search] response line. *)

val tiling_raw : t -> hit -> buf * int * int
(** The same fragment as {!tiling_fields} but without the copy: the
    mapped segment and the fragment's [(offset, length)] within it, for
    writev-style splicing of the bytes straight from the mmap into a
    socket. *)

val payload : t -> hit -> string
(** The raw record payload (empty for non-exact verdicts). *)

val entry : t -> hit -> ((Tiling.Single.t * Core.Certificate.t) option, string) result
(** Validating decode: [None] for a non-exact verdict, the revalidated
    tiling and parsed certificate for an exact one. *)

type verify_report = {
  records : int;
  exact : int;
  non_exact : int;
  indexed : int;
}

val verify : dir:string -> (verify_report, string) result
(** Full offline integrity check of a sealed corpus: every record's CRC
    and framing, every key canonical for its tiling and reachable
    through its shard's index (and only its own entry), every
    certificate re-proved with {!Core.Certificate.check}, every index
    entry backed by a record, and the manifest's per-band counts in
    agreement with the records. *)
