open Zgeom

let neighbours4 v =
  [ Vec.add v (Vec.make2 1 0); Vec.add v (Vec.make2 (-1) 0);
    Vec.add v (Vec.make2 0 1); Vec.add v (Vec.make2 0 (-1)) ]

let bfs_component start mem_set =
  let visited = ref (Vec.Set.singleton start) in
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if mem_set w && not (Vec.Set.mem w !visited) then begin
          visited := Vec.Set.add w !visited;
          Queue.add w queue
        end)
      (neighbours4 v)
  done;
  !visited

let is_connected p =
  assert (Prototile.dim p = 2);
  let cells = Prototile.cell_set p in
  match Vec.Set.min_elt_opt cells with
  | None -> true
  | Some start ->
    Vec.Set.cardinal (bfs_component start (fun v -> Vec.Set.mem v cells))
    = Vec.Set.cardinal cells

let has_holes p =
  assert (Prototile.dim p = 2);
  let cells = Prototile.cell_set p in
  let lo, hi = Prototile.bounding_box p in
  (* Flood the complement from a point just outside the bounding box; any
     complement cell inside the box left unvisited lies in a hole. *)
  let x0 = Vec.x lo - 1 and y0 = Vec.y lo - 1 in
  let x1 = Vec.x hi + 1 and y1 = Vec.y hi + 1 in
  let inside v = x0 <= Vec.x v && Vec.x v <= x1 && y0 <= Vec.y v && Vec.y v <= y1 in
  let outside_region v = inside v && not (Vec.Set.mem v cells) in
  let reached = bfs_component (Vec.make2 x0 y0) outside_region in
  let holes = ref false in
  for x = x0 to x1 do
    for y = y0 to y1 do
      let v = Vec.make2 x y in
      if outside_region v && not (Vec.Set.mem v reached) then holes := true
    done
  done;
  !holes

let is_polyomino p = is_connected p && not (has_holes p)

(* Free polyominoes by growth: the canonical representatives of area
   [k + 1] are the canonical forms of every area-[k] representative with
   one 4-neighbour cell added, deduplicated.  Canonicalizing each
   candidate makes congruent growths collide, so the frontier stays one
   tile per congruence class. *)
module PSet = Set.Make (Prototile)

(* Streaming form: visit every band without ever holding more than one
   band (plus the next band under construction) in memory.  Growing into
   a set instead of sort_uniq-ing a concatenated candidate list also
   dedups incrementally, so the ~8x-per-tile candidate multiset of the
   old implementation never materializes.  [PSet.iter] visits in
   [Prototile.compare] order, which keeps the band order identical to
   the historical [sort_uniq] one. *)
let enumerate_free_iter ~max_area f =
  if max_area < 1 then invalid_arg "Polyomino.enumerate_free_iter: area must be >= 1";
  let grow_into acc p =
    let cells = Prototile.cells p in
    let cell_set = Prototile.cell_set p in
    List.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc nb ->
            if Vec.Set.mem nb cell_set then acc
            else PSet.add (Symmetry.canonical (Prototile.of_cells_anchored (nb :: cells))) acc)
          acc (neighbours4 c))
      acc cells
  in
  let rec go k band =
    PSet.iter (fun t -> f ~area:k t) band;
    if k < max_area then go (k + 1) (PSet.fold (fun p acc -> grow_into acc p) band PSet.empty)
  in
  go 1 (PSet.singleton (Prototile.of_cells [ Vec.zero 2 ]))

let enumerate_free n =
  if n < 1 then invalid_arg "Polyomino.enumerate_free: area must be >= 1";
  let acc = ref [] in
  enumerate_free_iter ~max_area:n (fun ~area t -> if area = n then acc := t :: !acc);
  List.rev !acc

let perimeter p =
  let cells = Prototile.cell_set p in
  Vec.Set.fold
    (fun v acc ->
      acc + List.length (List.filter (fun w -> not (Vec.Set.mem w cells)) (neighbours4 v)))
    cells 0

let area p = Prototile.size p

(* Boundary tracing.  Cell (i, j) occupies the unit square
   [i, i+1] x [j, j+1]; corners are lattice points.  We walk corner to
   corner keeping the interior on the left (counterclockwise), preferring
   the left turn, then straight, then right (left-hand-on-wall rule). *)
let boundary_word p =
  assert (is_polyomino p);
  let cells = Prototile.cell_set p in
  let has v = Vec.Set.mem v cells in
  (* An edge step from corner (x, y) in direction d is a boundary edge with
     interior on the left iff the left-side cell is in and the right-side
     cell is out. *)
  let valid (x, y) = function
    | 'r' -> has (Vec.make2 x y) && not (has (Vec.make2 x (y - 1)))
    | 'u' -> has (Vec.make2 (x - 1) y) && not (has (Vec.make2 x y))
    | 'l' -> has (Vec.make2 (x - 1) (y - 1)) && not (has (Vec.make2 (x - 1) y))
    | 'd' -> has (Vec.make2 x (y - 1)) && not (has (Vec.make2 (x - 1) (y - 1)))
    | _ -> assert false
  in
  let step (x, y) = function
    | 'r' -> (x + 1, y)
    | 'u' -> (x, y + 1)
    | 'l' -> (x - 1, y)
    | 'd' -> (x, y - 1)
    | _ -> assert false
  in
  let left_of = function 'r' -> 'u' | 'u' -> 'l' | 'l' -> 'd' | 'd' -> 'r' | _ -> assert false in
  let right_of = function 'r' -> 'd' | 'd' -> 'l' | 'l' -> 'u' | 'u' -> 'r' | _ -> assert false in
  let start_cell = Vec.Set.min_elt cells in
  let start = (Vec.x start_cell, Vec.y start_cell) in
  let buf = Buffer.create 16 in
  let rec walk pos dir =
    Buffer.add_char buf dir;
    let pos = step pos dir in
    if pos <> start then begin
      let candidates = [ left_of dir; dir; right_of dir ] in
      match List.find_opt (valid pos) candidates with
      | Some d -> walk pos d
      | None -> assert false (* simply connected => boundary is one cycle *)
    end
  in
  assert (valid start 'r');
  walk start 'r';
  Buffer.contents buf
