(** 2-D polyomino structure of a prototile.

    A prototile in the square lattice corresponds to a polyomino: the union
    of unit squares (Voronoi cells) around its points (Section 3 of the
    paper; Figure 4a).  This module supplies the combinatorial facts the
    exactness machinery needs: 4-connectivity, hole detection, and the
    boundary word over the alphabet {u, d, l, r} consumed by the
    Beauquier-Nivat criterion. *)

val is_connected : Prototile.t -> bool
(** Edge-connectivity of the cell set (4-neighbours). Requires [dim = 2]. *)

val has_holes : Prototile.t -> bool
(** True when the complement of the cell set is disconnected inside the
    bounding box, i.e. the polyomino is not simply connected. *)

val is_polyomino : Prototile.t -> bool
(** Connected and simply connected: a boundary word exists. *)

val boundary_word : Prototile.t -> string
(** Counterclockwise boundary of the union of unit squares, as a word over
    ['u' 'd' 'l' 'r'], starting at the bottom-left corner of the
    lexicographically smallest cell. The length equals the perimeter.
    Requires {!is_polyomino}. *)

val area : Prototile.t -> int
(** Number of cells. *)

val enumerate_free_iter : max_area:int -> (area:int -> Prototile.t -> unit) -> unit
(** Visit every free polyomino of area [1 .. max_area], band by band in
    increasing area, each band in {!Prototile.compare} order - the same
    tiles in the same order as concatenating {!enumerate_free} over
    [1 .. max_area], without ever materializing more than one band (the
    current frontier) at a time.  This is the corpus campaign's
    enumerator: at [max_area = 12] the full list would be 87146 tiles
    while the largest single band is 63600.  Requires [max_area >= 1]. *)

val enumerate_free : int -> Prototile.t list
(** All {e free} polyominoes of area exactly [n]: one prototile per
    congruence class (rotations, reflections, translations), each its
    own {!Symmetry.canonical} representative, sorted by
    {!Prototile.compare}.  Counts follow OEIS A000105:
    1, 1, 2, 5, 12, 35, 108, ... for [n = 1, 2, 3, ...].  This is the
    offline precompute pipeline's work list: every small prototile a
    client can ask the schedule server about, enumerated once under the
    server's own cache key.  Requires [n >= 1]. *)

val perimeter : Prototile.t -> int
(** Number of boundary edges (cell sides adjacent to the complement). *)
