open Zgeom

type t = { dim : int; hnf : Zmat.t; diag : int array }

let of_basis b =
  let r, c = Zmat.dims b in
  assert (r = c && r > 0);
  assert (Zmat.det b <> 0);
  let h = Zmat.hnf b in
  { dim = r; hnf = h; diag = Array.init r (fun i -> h.(i).(i)) }

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Sublattice.of_rows: empty basis"
  | v :: _ ->
    let d = Vec.dim v in
    of_basis (Array.of_list (List.map (fun r -> Vec.to_array r) rows))
    |> fun t ->
    assert (t.dim = d);
    t

let scaled d m =
  assert (m > 0 && d > 0);
  let b = Array.init d (fun i -> Array.init d (fun j -> if i = j then m else 0)) in
  of_basis b

let full d = scaled d 1

let dim t = t.dim
let basis t = Zmat.copy t.hnf
let generators t = Array.to_list (Array.map Vec.of_array t.hnf)
let index t = Array.fold_left ( * ) 1 t.diag

let fdiv a b = if a mod b <> 0 && a < 0 <> (b < 0) then (a / b) - 1 else a / b

let reduce t v =
  let x = Vec.to_array v in
  assert (Array.length x = t.dim);
  (* Successive reduction against the triangular basis: row [i] is the only
     remaining row with a non-zero entry in column [i]. *)
  for i = 0 to t.dim - 1 do
    let q = fdiv x.(i) t.diag.(i) in
    if q <> 0 then
      for j = i to t.dim - 1 do
        x.(j) <- x.(j) - (q * t.hnf.(i).(j))
      done
  done;
  Vec.of_array x

let mem t v = Vec.is_zero (reduce t v)
let congruent t a b = Vec.equal (reduce t a) (reduce t b)

let coset_id t v =
  let r = Vec.to_array (reduce t v) in
  let id = ref 0 in
  for i = 0 to t.dim - 1 do
    id := (!id * t.diag.(i)) + r.(i)
  done;
  !id

let cosets t =
  (* Mixed-radix counting over the HNF box, lexicographic. *)
  let rec go i prefix =
    if i = t.dim then [ Vec.of_list (List.rev prefix) ]
    else
      List.concat_map (fun v -> go (i + 1) (v :: prefix)) (List.init t.diag.(i) Fun.id)
  in
  go 0 []

let snf_divisors t =
  let s = Zmat.snf t.hnf in
  List.init t.dim (fun i -> s.(i).(i))

let equal a b = a.dim = b.dim && Zmat.equal a.hnf b.hnf
let compare a b = Stdlib.compare (a.dim, a.hnf) (b.dim, b.hnf)

(* Enumerate HNF matrices: positive diagonal (d_0, ..., d_{d-1}) with
   product [n]; in column [i], the entries above the diagonal range over
   [0, d_i).  The enumeration is split by diagonal so callers can farm the
   per-diagonal families out to worker domains: concatenating
   [all_with_diagonal] over [hnf_diagonals] in order reproduces
   [all_of_index] exactly. *)
let hnf_diagonals ~dim:d n =
  assert (d > 0 && n > 0);
  let rec divisor_tuples d n =
    if d = 1 then [ [ n ] ]
    else
      List.concat_map
        (fun d0 ->
          if n mod d0 = 0 then List.map (fun rest -> d0 :: rest) (divisor_tuples (d - 1) (n / d0))
          else [])
        (List.init n (fun i -> i + 1))
  in
  divisor_tuples d n

let all_with_diagonal ~dim:d diag =
  assert (d > 0 && List.length diag = d && List.for_all (fun x -> x > 0) diag);
  let matrices_for diag =
    let diag = Array.of_list diag in
    let m0 = Array.init d (fun i -> Array.init d (fun j -> if i = j then diag.(i) else 0)) in
    (* Free positions: (k, i) with k < i, value in [0, diag.(i)). *)
    let free = ref [] in
    for i = d - 1 downto 1 do
      for k = i - 1 downto 0 do
        free := (k, i) :: !free
      done
    done;
    let rec fill m = function
      | [] -> [ Zmat.copy m ]
      | (k, i) :: rest ->
        List.concat_map
          (fun v ->
            m.(k).(i) <- v;
            let out = fill m rest in
            m.(k).(i) <- 0;
            out)
          (List.init diag.(i) Fun.id)
    in
    fill m0 !free
  in
  matrices_for diag |> List.map of_basis

let all_of_index ~dim:d n =
  List.concat_map (all_with_diagonal ~dim:d) (hnf_diagonals ~dim:d n)

let pp fmt t = Zmat.pp fmt t.hnf
let to_string t = Format.asprintf "%a" pp t
