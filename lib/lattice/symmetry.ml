open Zgeom

type element = { rotation : int; reflected : bool }

let identity = { rotation = 0; reflected = false }

let elements =
  List.concat_map
    (fun reflected -> List.init 4 (fun rotation -> { rotation; reflected }))
    [ false; true ]

let apply e v =
  let v = if e.reflected then Vec.reflect_x v else v in
  let rec rot k v = if k = 0 then v else rot (k - 1) (Vec.rot90 v) in
  rot (e.rotation mod 4) v

(* R^r . F is an involution (F R F = R^-1); pure rotations invert to the
   complementary quarter turn. *)
let inverse e = if e.reflected then e else { e with rotation = (4 - e.rotation) mod 4 }

(* Translation-normalized cell set: anchor at the lexicographic minimum. *)
let normalized cells =
  let anchor = Vec.Set.min_elt cells in
  Vec.Set.map (fun v -> Vec.sub v anchor) cells

let group p =
  assert (Prototile.dim p = 2);
  let reference = normalized (Prototile.cell_set p) in
  List.filter
    (fun e ->
      Vec.Set.equal reference (normalized (Vec.Set.map (apply e) (Prototile.cell_set p))))
    elements

let order p = List.length (group p)

let rotations_in_group p =
  List.length (List.filter (fun e -> not e.reflected) (group p))

let distinct_orientations p = 4 / rotations_in_group p

let is_symmetric_under_rotation p = rotations_in_group p > 1

(* Canonical congruence-class representative: among the translation-
   normalized images of the cell set under the point group, take the one
   with the lexicographically least sorted cell list.  Ties are harmless
   (tied images are the same cell set). *)
let canonicalize p =
  let candidates =
    if Prototile.dim p = 2 then
      List.map (fun e -> (normalized (Vec.Set.map (apply e) (Prototile.cell_set p)), e)) elements
    else [ (normalized (Prototile.cell_set p), identity) ]
  in
  let key (s, _) = List.map Vec.to_list (Vec.Set.elements s) in
  let best =
    List.fold_left (fun acc c -> if compare (key c) (key acc) < 0 then c else acc)
      (List.hd candidates) (List.tl candidates)
  in
  (Prototile.of_cells (Vec.Set.elements (fst best)), snd best)

let canonical p = fst (canonicalize p)
