(** Symmetries of 2-D prototiles.

    The symmetry group of a prototile is the subgroup of the square
    lattice's point group D4 (rotations by 90 degrees and reflections)
    whose elements map the cell set to a translate of itself.  Antenna
    reading: the radiation pattern's symmetry.  Scheduling reading:
    symmetric prototiles admit symmetric tilings and the symmetry class
    determines how many genuinely different rotated deployments exist
    (Section 4's motivation for multiple prototiles). *)

type element = {
  rotation : int;  (** quarter turns, 0-3 *)
  reflected : bool;  (** composed with the x-axis mirror (applied first) *)
}

val identity : element

val elements : element list
(** All 8 elements of D4, reflections last, rotations ascending. *)

val apply : element -> Zgeom.Vec.t -> Zgeom.Vec.t

val inverse : element -> element
(** [apply (inverse e) (apply e v) = v].  Reflected elements are
    involutions; pure rotations invert to the complementary turn. *)

val group : Prototile.t -> element list
(** The elements of D4 fixing the prototile up to translation; always
    contains the identity, and its size divides 8. *)

val order : Prototile.t -> int

val distinct_orientations : Prototile.t -> int
(** Number of genuinely different rotated versions: [4 / |rotations in
    the group|]. A fully symmetric ball has 1; the S tetromino has 2; an
    L shape has 4. *)

val is_symmetric_under_rotation : Prototile.t -> bool
(** Has a non-trivial rotation symmetry. *)

(** {2 Canonical form}

    Two prototiles are {e congruent} when one is a translate of a
    rotated/reflected copy of the other.  Congruent prototiles have the
    same tilings up to the same transformation, so a cache of search
    results should key on the congruence class, not on the literal cell
    set.  [canonical] picks one distinguished representative per class. *)

val canonical : Prototile.t -> Prototile.t
(** The distinguished representative of the prototile's congruence
    class: the lexicographically least translation-anchored cell list
    among the images of the prototile under its point group (all of D4
    in 2-D, translations only in other dimensions).  Total on all
    prototiles, idempotent, and invariant: congruent prototiles have
    equal canonical forms. *)

val canonicalize : Prototile.t -> Prototile.t * element
(** [canonicalize p] is [(canonical p, g)] with a witness [g] such that
    the cells of [canonical p] are [apply g] of the cells of [p],
    translated so the lexicographic minimum sits at the origin.  In
    dimensions other than 2 the witness is {!identity}. *)
