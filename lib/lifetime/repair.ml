open Zgeom
open Lattice

type stats = {
  window_cells : int;
  window_tiles : int;
  rings : int;
  torus_index : int;
}

type t = {
  base : Tiling.Single.t;
  dead : Vec.t;
  deployment : Sublattice.t;
  window : Vec.Set.t;
  removed : Vec.t list;
  patch : Vec.t list;
  patched : Tiling.Single.t;
  base_schedule : Core.Schedule.t;
  schedule : Core.Schedule.t;
  certificate : Core.Certificate.t;
  changed : Vec.t list;
  stats : stats;
}

let is_leader base v = Tiling.Single.in_translation_set base v

(* Damaged tiles are tracked as plane translations (so the window stays a
   plain subset of Z^d the finite-domain criterion understands), deduped
   mod the deployment lattice: two plane tiles congruent mod the
   deployment are the same torus tile, and keeping both would make the
   window's cells collide in the quotient. *)
let add_tile dep s tiles =
  if Vec.Set.exists (fun s' -> Sublattice.congruent dep s s') tiles then tiles
  else Vec.Set.add s tiles

let tiles_meeting dep base set tiles =
  Vec.Set.fold (fun w acc -> add_tile dep (fst (Tiling.Single.tile_of base w)) acc) set tiles

let region_of_tiles base tiles =
  let n = Tiling.Single.prototile base in
  Vec.Set.fold (fun s acc -> Vec.Set.union (Prototile.translate s n) acc) tiles Vec.Set.empty

(* One ring of growth: every base tile whose cells interfere with the
   current region (difference-set dilation), i.e. the next shell of
   tiles the bitmask solver may rearrange. *)
let grow dep base tiles =
  let n = Tiling.Single.prototile base in
  let region = region_of_tiles base tiles in
  let dilated =
    Vec.Set.fold
      (fun v acc ->
        Vec.Set.fold (fun d acc -> Vec.Set.add (Vec.add v d) acc) (Prototile.difference_set n) acc)
      region Vec.Set.empty
  in
  tiles_meeting dep base dilated tiles

let repair ?(max_rings = 8) ~deployment base ~dead =
  let n = Tiling.Single.prototile base in
  let period = Tiling.Single.period base in
  let m = Prototile.size n in
  if Sublattice.dim deployment <> Sublattice.dim period then
    Error "Repair.repair: deployment dimension mismatch"
  else if not (List.for_all (Sublattice.mem period) (Sublattice.generators deployment)) then
    Error "Repair.repair: deployment must be a sublattice of the tiling period"
  else begin
    let base_schedule = Core.Schedule.of_tiling base in
    let core = Vec.Set.map (Vec.add dead) (Prototile.minkowski_sum n n) in
    let tiles0 =
      tiles_meeting deployment base core
        (add_tile deployment (fst (Tiling.Single.tile_of base dead)) Vec.Set.empty)
    in
    let finish ~window ~removed ~patch ~patched ~rings =
      let schedule = Core.Schedule.of_tiling patched in
      let certificate = Core.Certificate.build patched in
      match Core.Certificate.check certificate with
      | Error f ->
        Error (Format.asprintf "repair certificate rejected: %a" Core.Certificate.pp_failure f)
      | Ok () ->
        let changed =
          List.filter
            (fun v -> Core.Schedule.slot_at schedule v <> Core.Schedule.slot_at base_schedule v)
            (Vec.Set.elements window)
        in
        Ok
          {
            base;
            dead;
            deployment;
            window;
            removed;
            patch;
            patched;
            base_schedule;
            schedule;
            certificate;
            changed;
            stats =
              {
                window_cells = Vec.Set.cardinal window;
                window_tiles = List.length removed;
                rings;
                torus_index = Sublattice.index deployment;
              };
          }
    in
    if not (is_leader base dead) then
      (* A member died, not a tile leader: every tile keeps its leader, so
         the schedule stands as is - the repair is the identity patch. *)
      finish ~window:(region_of_tiles base tiles0) ~removed:[] ~patch:[] ~patched:base ~rings:0
    else begin
      let deadr = Sublattice.reduce deployment dead in
      let total_tiles = Sublattice.index deployment / m in
      let rec attempt tiles rings =
        let window = region_of_tiles base tiles in
        let keep ts = not (List.exists (Vec.equal deadr) ts) in
        match
          Tiling.Search.cover_region ~region:(Vec.Set.elements window) ~prototile:n
            ~torus:deployment ~max_solutions:1 ~keep ()
        with
        | patch :: _ -> Ok (tiles, window, patch, rings)
        | [] ->
          if rings >= max_rings || Vec.Set.cardinal tiles >= total_tiles then
            Error
              (Printf.sprintf
                 "no leader-avoiding cover of the damaged window within %d rings" rings)
          else
            let grown = grow deployment base tiles in
            if Vec.Set.cardinal grown = Vec.Set.cardinal tiles then
              Error "damaged window cannot grow further"
            else attempt grown (rings + 1)
      in
      match attempt tiles0 0 with
      | Error _ as e -> e
      | Ok (tiles, window, patch, rings) ->
        (* Splice on the deployment quotient: the base tiling, viewed with
           the finer period, keeps every tile outside the window and swaps
           the damaged ones for the patch. *)
        let lam_reps = List.filter (Sublattice.mem period) (Sublattice.cosets deployment) in
        let full =
          List.concat_map
            (fun o -> List.map (fun r -> Sublattice.reduce deployment (Vec.add o r)) lam_reps)
            (Tiling.Single.offsets base)
          |> Vec.Set.of_list
        in
        let removed = Vec.Set.elements tiles in
        let removed_set = Vec.Set.of_list (List.map (Sublattice.reduce deployment) removed) in
        if not (Vec.Set.subset removed_set full) then
          Error "internal: damaged tiles not among the base tiling's translations"
        else
          let patch_set = Vec.Set.of_list patch in
          let offsets =
            Vec.Set.elements (Vec.Set.union (Vec.Set.diff full removed_set) patch_set)
          in
          (match Tiling.Single.make ~prototile:n ~period:deployment ~offsets with
          | Error e -> Error ("internal: patched tiling invalid: " ^ e)
          | Ok patched -> finish ~window ~removed ~patch ~patched ~rings)
    end
  end

let slots_on_window t =
  List.length
    (List.sort_uniq compare
       (List.map (Core.Schedule.slot_at t.schedule) (Vec.Set.elements t.window)))

let window_optimal t =
  Core.Finite.meets_optimality_criterion t.window (Tiling.Single.prototile t.base)
  && slots_on_window t = Prototile.size (Tiling.Single.prototile t.base)

let local_outside t =
  let orbit = Vec.Set.map (Sublattice.reduce t.deployment) t.window in
  List.for_all
    (fun v ->
      Vec.Set.mem v orbit
      || Core.Schedule.slot_at t.schedule v = Core.Schedule.slot_at t.base_schedule v)
    (Sublattice.cosets t.deployment)
