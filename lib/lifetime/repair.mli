(** Provably-local schedule repair after a sensor death (the paper's
    Conclusions, operationalized).

    When a tile {e leader} dies - the sensor at a translation point of
    the tiling - its tile is headless, and the schedule must hand
    leadership elsewhere while changing as few slot assignments as
    possible.

    {2 Why repair lives on the deployment torus}

    A purely plane-local repair is impossible: an exact cover of a
    finite region of [Z^d] by translates of a single prototile is
    {e unique} when it exists (the lexicographically least uncovered
    cell forces its tile, and induction finishes the argument -
    {!Tiling.Search.cover_region} documents the same fact), so no
    finite window can be re-covered with the dead leader demoted.  The
    deployment is finite, though: a [deployment] sublattice
    [Lambda_dep <= Lambda] names the torus [Z^d / Lambda_dep] the
    network actually occupies, and {e wrapped} windows on that torus
    escape the rigidity (no global order survives the wrap).  The
    classic example: one full wrapped row of horizontal bars slides
    freely, a bounded - one-row! - repair that re-anchors every tile in
    it.

    {2 The algorithm}

    + the window [D] starts as the union of the base tiles meeting
      [dead + (N + N)], so [D] contains that translate of [N + N] and
      the paper's finite-domain optimality criterion holds by
      construction ({!Core.Finite.meets_optimality_criterion});
    + the bitmask region solver ({!Tiling.Search.cover_region} in torus
      mode) finds an exact cover of [D] mod [Lambda_dep] by prototile
      translates {e avoiding} the dead position as a leader, growing
      the window by one ring of tiles (up to [max_rings]) until the
      window wraps enough to admit one;
    + the patch splices on the quotient: the base tiling, re-read with
      period [Lambda_dep], keeps every tile outside the window and
      swaps the damaged ones for the patch - an ordinary periodic
      tiling that {!Tiling.Single.make} re-validates and
      {!Core.Certificate.build} / [check] certify end to end.

    The result is collision-free everywhere (certified), uses exactly
    [|N|] slots on the window - optimal there by the criterion - and
    differs from the base schedule only on the window's
    [Lambda_dep]-orbit ({!local_outside} checks the whole quotient,
    hence by periodicity the whole plane). *)

type stats = {
  window_cells : int;  (** [|D|] *)
  window_tiles : int;  (** base tiles removed (0 for a non-leader death) *)
  rings : int;  (** growth rings beyond the minimal window *)
  torus_index : int;  (** [\[Z^d : Lambda_dep\]], the deployment size *)
}

type t = {
  base : Tiling.Single.t;
  dead : Zgeom.Vec.t;
  deployment : Lattice.Sublattice.t;
  window : Zgeom.Vec.Set.t;  (** the damaged window [D] (plane cells) *)
  removed : Zgeom.Vec.t list;  (** translations of the removed base tiles *)
  patch : Zgeom.Vec.t list;  (** translations of the replacement tiles *)
  patched : Tiling.Single.t;  (** base - removed + patch, period [Lambda_dep] *)
  base_schedule : Core.Schedule.t;
  schedule : Core.Schedule.t;  (** Theorem-1 schedule of [patched] *)
  certificate : Core.Certificate.t;  (** checked before [repair] returns *)
  changed : Zgeom.Vec.t list;  (** window cells whose slot changed *)
  stats : stats;
}

val is_leader : Tiling.Single.t -> Zgeom.Vec.t -> bool
(** Is this position a tile translation point (cluster head)? *)

val repair :
  ?max_rings:int ->
  deployment:Lattice.Sublattice.t ->
  Tiling.Single.t ->
  dead:Zgeom.Vec.t ->
  (t, string) result
(** Repair the tiling after the sensor at [dead] dies.  [deployment]
    must be a sublattice of the tiling period (each generator a period
    element).  [max_rings] (default 8) bounds window growth.
    Deterministic: the solver enumerates candidate covers in a fixed
    order and the first acceptable one wins.  Errors are honest
    infeasibility reports: a window that never wraps within [max_rings]
    (plane windows are rigid, so an unwrapped window's only cover is
    the damaged one), or a torus whose every wrapped cover of the
    window re-elects [dead], yields [Error], not a bogus patch. *)

val slots_on_window : t -> int
(** Distinct slots the patched schedule uses on the window. *)

val window_optimal : t -> bool
(** The acceptance predicate: the window meets the paper's criterion
    (true by construction) and the patched schedule uses exactly [|N|]
    slots on it - the finite optimum. *)

val local_outside : t -> bool
(** Locality: every quotient cell outside the window's
    [Lambda_dep]-orbit keeps its base slot (checked exhaustively on the
    deployment quotient; periodicity extends the statement to all of
    [Z^d]). *)
