open Zgeom
open Lattice

type policy = Round_robin | Least_depleted_first

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_depleted_first -> "least-depleted"

type t = {
  covers : Tiling.Multi.t array;
  schedules : Core.Schedule.t array;
  leader_sets : Vec.Set.t array;
  period : Sublattice.t;
  num_slots : int;
  epoch : int;
  plan : int array;
  policy : policy;
}

let leaders period mt =
  Tiling.Multi.pieces mt
  |> List.concat_map (fun pc -> pc.Tiling.Multi.piece_offsets)
  |> List.map (Sublattice.reduce period)
  |> List.sort_uniq Vec.compare

let translate_cover period u mt =
  let pieces =
    List.map
      (fun pc ->
        {
          pc with
          Tiling.Multi.piece_offsets =
            List.map (fun o -> Sublattice.reduce period (Vec.add o u)) pc.Tiling.Multi.piece_offsets;
        })
      (Tiling.Multi.pieces mt)
  in
  match Tiling.Multi.make ~period pieces with
  | Ok m -> m
  | Error e -> invalid_arg ("Rotation.translate_cover: " ^ e)

(* The enumeration behind [distinct_torus_covers] anchors its first tile
   at the least translation covering the origin, so class representatives
   tend to share leaders (typically all of them lead at the origin) - a
   rotation over raw representatives then never relieves those nodes.
   Translating a cover yields a congruent - equally valid - tiling with
   shifted leaders, so we pick, greedily per cover, the quotient
   translation whose leaders are least loaded by the covers already
   placed (lexicographic (peak, total) load, ties to the least
   translation, hence deterministic). *)
let balance covers =
  match covers with
  | [] -> []
  | first :: _ ->
    let period = Tiling.Multi.period first in
    let load : (Vec.t, int) Hashtbl.t = Hashtbl.create 64 in
    let count v = Option.value ~default:0 (Hashtbl.find_opt load v) in
    List.map
      (fun c ->
        let ls = leaders period c in
        let best_u = ref (Vec.zero (Sublattice.dim period)) in
        let best_cost = ref (max_int, max_int) in
        List.iter
          (fun u ->
            let cost =
              List.fold_left
                (fun (peak, total) v ->
                  let n = count (Sublattice.reduce period (Vec.add v u)) in
                  (max peak n, total + n))
                (0, 0) ls
            in
            if cost < !best_cost then begin
              best_cost := cost;
              best_u := u
            end)
          (Sublattice.cosets period);
        let c' = translate_cover period !best_u c in
        List.iter (fun v -> Hashtbl.replace load v (count v + 1)) (leaders period c');
        c')
      covers

let make ~covers ~epoch ~epochs ~policy =
  match covers with
  | [] -> Error "Rotation.make: no covers"
  | first :: _ -> (
    let period = Tiling.Multi.period first in
    if
      not
        (List.for_all (fun c -> Sublattice.equal (Tiling.Multi.period c) period) covers)
    then Error "Rotation.make: covers must share one period"
    else
      let schedules = Array.of_list (List.map Core.Schedule.of_multi covers) in
      let m = Core.Schedule.num_slots schedules.(0) in
      if not (Array.for_all (fun s -> Core.Schedule.num_slots s = m) schedules) then
        Error "Rotation.make: covers must share one slot count"
      else if epoch <= 0 || epoch mod m <> 0 then
        Error
          (Printf.sprintf
             "Rotation.make: epoch must be a positive multiple of the %d-slot period" m)
      else if epochs <= 0 then Error "Rotation.make: epochs must be positive"
      else begin
        let covers = Array.of_list covers in
        let leader_sets =
          Array.map (fun c -> Vec.Set.of_list (leaders period c)) covers
        in
        let k = Array.length covers in
        let plan =
          match policy with
          | Round_robin -> Array.init epochs (fun e -> e mod k)
          | Least_depleted_first ->
            (* Greedy: each epoch activates the cover whose leaders are
               least depleted so far, compared lexicographically by
               (peak served, total served, cover index).  The peak keeps
               the most-loaded node from being re-elected (lifetime is
               set by the first battery to die); the total breaks peak
               ties toward covers sharing fewest leaders with past
               picks.  Cumulative duty is keyed by quotient node;
               [Vec.Set.fold] visits leaders in ascending order and
               [max]/[+] are order-free, so the plan is
               deterministic. *)
            let duty : (Vec.t, int) Hashtbl.t = Hashtbl.create 64 in
            let served v = Option.value ~default:0 (Hashtbl.find_opt duty v) in
            Array.init epochs (fun _ ->
                let best = ref 0 in
                let best_cost = ref (max_int, max_int) in
                for i = 0 to k - 1 do
                  let cost =
                    Vec.Set.fold
                      (fun v (peak, total) -> (max peak (served v), total + served v))
                      leader_sets.(i) (0, 0)
                  in
                  if cost < !best_cost then begin
                    best_cost := cost;
                    best := i
                  end
                done;
                Vec.Set.iter
                  (fun v -> Hashtbl.replace duty v (served v + 1))
                  leader_sets.(!best);
                !best)
        in
        Ok { covers; schedules; leader_sets; period; num_slots = m; epoch; plan; policy }
      end)

let covers t = Array.to_list t.covers
let num_covers t = Array.length t.covers
let schedules t = t.schedules
let period t = t.period
let num_slots t = t.num_slots
let epoch t = t.epoch
let plan t = Array.copy t.plan
let policy t = t.policy

let index_at t e =
  let len = Array.length t.plan in
  t.plan.(((e mod len) + len) mod len)

let active t ~time = index_at t (time / t.epoch)

let may_send t v ~time = Core.Schedule.may_send t.schedules.(active t ~time) v ~time

let leader_at t ~time v =
  Vec.Set.mem (Sublattice.reduce t.period v) t.leader_sets.(active t ~time)

(* Per-quotient-node leader-duty fraction over one plan cycle, in
   [Sublattice.cosets] order.  [static_duty] is the degenerate plan that
   never leaves cover 0: its duty vector is the 0/1 leader indicator,
   which is what rotation's spread is measured against. *)
let duty_of_plan t plan =
  let epochs = Array.length plan in
  let cosets = Array.of_list (Sublattice.cosets t.period) in
  Array.map
    (fun v ->
      let served =
        Array.fold_left
          (fun acc i -> if Vec.Set.mem v t.leader_sets.(i) then acc + 1 else acc)
          0 plan
      in
      float_of_int served /. float_of_int epochs)
    cosets

let duty t = duty_of_plan t t.plan
let static_duty t = duty_of_plan t (Array.make (Array.length t.plan) 0)

let spread xs =
  let n = float_of_int (Array.length xs) in
  if n = 0.0 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 xs /. n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs /. n
    in
    sqrt var
  end

let mac t = Netsim.Mac.rotating_tdma ~epoch:t.epoch ~index_at:(index_at t) t.schedules

let extra_cost t ~leader_cost v ~time = if leader_at t ~time v then leader_cost else 0.0

let collision_free t =
  let ok = ref true in
  Array.iteri
    (fun i c -> if not (Core.Collision.is_collision_free_multi c t.schedules.(i)) then ok := false)
    t.covers;
  !ok
