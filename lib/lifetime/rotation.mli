(** Duty-cycle rotation over distinct tilings of one torus (ROADMAP item
    3; the CCF cover-set idea ported to tilings).

    A torus usually admits many translation-inequivalent tilings
    ({!Tiling.Search.distinct_torus_covers}); each induces its own
    Theorem-1/2 schedule {e and} its own set of {e tile leaders} - the
    sensors sitting at tile translation points, which act as the
    cluster heads of their tiles (aggregation, forwarding: the costly
    role).  A static schedule makes the same sensors leaders forever; a
    rotation swaps the active cover at epoch boundaries, so leadership
    - and its energy surcharge - moves around the quotient.

    {2 Collision-freedom across the swap}

    Every cover's schedule is collision-free at every slot (Theorems
    1/2), and the active-schedule map [time -> plan(time / epoch)] is a
    global function of the slot number - every sensor agrees on it.
    With [epoch] a multiple of the shared slot count [m], each slot of
    each epoch is governed by exactly one collision-free schedule, so
    the rotating composite is collision-free at {e every} slot,
    including the switch instant ({!collision_free} re-checks each
    cover's schedule mechanically; the composite argument is the above).

    {2 Why rotation strictly tightens the duty spread}

    The static duty vector is a 0/1 leader indicator with mean
    [p = 1/m].  Rotation over [k >= 2] translation-{e inequivalent}
    covers averages [k] distinct indicators: wherever two covers
    disagree on some node's leadership, the averaged vector moves off
    {0, 1}, and the population variance drops strictly below
    [p (1 - p)].  The lifetime demo asserts exactly this
    ({!spread} of {!duty} < {!spread} of {!static_duty}). *)

type policy =
  | Round_robin  (** epoch [e] activates cover [e mod k] *)
  | Least_depleted_first
      (** each epoch activates the cover whose leaders are least
          depleted so far: lexicographically least (peak epochs served
          by any of its leaders, total epochs served, cover index) *)

val policy_name : policy -> string

type t

val make :
  covers:Tiling.Multi.t list ->
  epoch:int ->
  epochs:int ->
  policy:policy ->
  (t, string) result
(** A rotation plan of [epochs] entries over the given covers (e.g. from
    {!Tiling.Search.distinct_torus_covers}).  Requires a non-empty cover
    list sharing one period and one slot count [m], [epoch] a positive
    multiple of [m] (the collision-freedom condition above), and
    [epochs >= 1].  The plan repeats cyclically after [epochs]. *)

val covers : t -> Tiling.Multi.t list
val num_covers : t -> int
val schedules : t -> Core.Schedule.t array
val period : t -> Lattice.Sublattice.t
val num_slots : t -> int
val epoch : t -> int

val plan : t -> int array
(** Cover index per epoch (a copy). *)

val policy : t -> policy

val index_at : t -> int -> int
(** Cover index active during epoch [e] (the plan, extended
    cyclically). *)

val active : t -> time:int -> int
(** [index_at] of slot [time]'s epoch. *)

val may_send : t -> Zgeom.Vec.t -> time:int -> bool
(** The rotating composite schedule. *)

val leaders : Lattice.Sublattice.t -> Tiling.Multi.t -> Zgeom.Vec.t list
(** The cover's tile translation points, reduced to canonical quotient
    representatives, sorted. *)

val translate_cover : Lattice.Sublattice.t -> Zgeom.Vec.t -> Tiling.Multi.t -> Tiling.Multi.t
(** The congruent cover translated by the vector (offsets shifted and
    reduced); the period is unchanged. *)

val balance : Tiling.Multi.t list -> Tiling.Multi.t list
(** Deterministically translate each cover so leader sets overlap as
    little as possible.  The class representatives from
    {!Tiling.Search.distinct_torus_covers} all anchor a tile at the
    least translation covering the origin (the enumeration's first
    branch), so the origin leads in {e every} raw representative and
    rotation never relieves it; balancing replaces each cover by a
    congruent translate, chosen greedily to minimize the lexicographic
    (peak, total) load its leaders add on top of the covers already
    placed.  Feed the result to {!make} when rotation is meant to
    extend lifetime, not just to reorder it. *)

val leader_at : t -> time:int -> Zgeom.Vec.t -> bool
(** Is this position a tile leader under the cover active at [time]? *)

val duty : t -> float array
(** Per-quotient-node leader-duty fraction over one plan cycle, indexed
    in {!Lattice.Sublattice.cosets} order. *)

val static_duty : t -> float array
(** The same under the degenerate never-rotate plan (cover 0 only): the
    0/1 leader indicator rotation is measured against. *)

val spread : float array -> float
(** Population standard deviation - the duty-spread metric of the
    acceptance criterion. *)

val mac : t -> Netsim.Mac.factory
(** {!Netsim.Mac.rotating_tdma} driven by this plan. *)

val extra_cost : t -> leader_cost:float -> Zgeom.Vec.t -> time:int -> float
(** Per-slot energy surcharge for the acting leaders, shaped for
    [Netsim.Faults.spec.extra_cost]: battery simulations then deplete
    whoever currently leads. *)

val collision_free : t -> bool
(** Re-check every cover's schedule with the exact periodic checker. *)
