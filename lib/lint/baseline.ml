type entry = { rule : string; file : string; message : string }

type t = entry list

let empty = []
let size = List.length

(* One entry per line: RULE<TAB>FILE<TAB>MESSAGE.  '#' starts a comment
   (a baseline entry must say why it is justified); blank lines are
   skipped.  Line numbers are deliberately absent so entries survive
   unrelated edits to the file. *)
let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char '\t' line with
    | [ rule; file; message ] when rule <> "" && file <> "" ->
      Ok (Some { rule; file; message })
    | _ ->
      Error
        (Printf.sprintf "baseline line %d: expected RULE<TAB>FILE<TAB>MESSAGE, got %S" lineno
           line)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | data ->
    let lines = String.split_on_char '\n' data in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match parse_line i line with
        | Ok None -> go (i + 1) acc rest
        | Ok (Some e) -> go (i + 1) (e :: acc) rest
        | Error _ as e -> e)
    in
    go 1 [] lines

let mem t (f : Finding.t) =
  List.exists (fun e -> e.rule = f.rule && e.file = f.file && e.message = f.message) t

let entry_of_finding (f : Finding.t) = { rule = f.rule; file = f.file; message = f.message }

let to_string t =
  String.concat ""
    (List.map (fun e -> Printf.sprintf "%s\t%s\t%s\n" e.rule e.file e.message) t)
