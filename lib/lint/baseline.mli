(** Baseline files: a grandfather list of findings that are accepted
    (with justification) rather than fixed.  A finding matching a
    baseline entry is suppressed and counted, not reported.

    Format: one entry per line, [RULE<TAB>FILE<TAB>MESSAGE]; ['#']
    starts a comment, and every entry is expected to carry one saying
    why it is justified.  Line numbers are deliberately not part of an
    entry so baselines survive unrelated edits. *)

type entry = { rule : string; file : string; message : string }
type t = entry list

val empty : t
val size : t -> int

val load : string -> (t, string) result
(** Read and parse a baseline file; [Error] carries a message naming the
    offending line. *)

val mem : t -> Finding.t -> bool
(** Does an entry cover this finding (same rule, file, and message)? *)

val entry_of_finding : Finding.t -> entry

val to_string : t -> string
(** Serialize in the file format (for [--write-baseline]). *)
