(* The intra-library call graph, built from typedtrees.

   Identifiers in a typedtree carry resolved [Path.t]s, but the same
   function is reachable under several spellings: dune's wrapped
   libraries alias [lib/corpus/campaign.ml] as [Corpus.Campaign] (unit
   name [Corpus__Campaign]), sibling modules reach it through the
   generated alias module [Corpus__], and fixture trees typed in
   process see it as plain [Campaign].  [normalize] flattens a path and
   strips the dune name-mangling so all spellings become
   ["Campaign"; "decide"], and resolution keys functions as
   ["Campaign.decide"].

   Only top-level [let]s become graph nodes.  Functions inside nested
   modules or functors are not modeled: a call into one resolves to
   nothing and taint does not propagate through it (a conservative
   blind spot, documented in DESIGN.md section 15). *)

type def = {
  def_key : string;  (** ["Campaign.decide"] - unit-qualified name *)
  def_file : string;
  def_ident : Ident.t;  (** binding ident; distinguishes shadowed defs *)
  def_loc : Location.t;
  def_expr : Typedtree.expression;
}

type t = {
  defs : def array;  (** in (file, source-position) order *)
  by_key : (string, int) Hashtbl.t;  (** last definition wins, as in scope *)
  units : (string, string option) Hashtbl.t;
      (** unit name -> its file; [None] marks a name claimed by several
          files, which resolution then skips as ambiguous *)
  by_file_ident : (string, (Ident.t * int) list) Hashtbl.t;
}

(* ---------- path normalization ---------- *)

let rec raw_components = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> raw_components p @ [ s ]
  | Path.Papply (p, _) | Path.Pextra_ty (p, _) -> raw_components p

(* Strip dune's wrapping: [Corpus__Campaign] -> [Campaign], the alias
   module [Corpus__] disappears, and a leading [Stdlib] is dropped so
   [Stdlib.Hashtbl.iter] and [Hashtbl.iter] are the same construct. *)
let demangle c =
  match String.rindex_opt c '_' with
  | Some i when i >= 1 && c.[i - 1] = '_' ->
    let tail = String.sub c (i + 1) (String.length c - i - 1) in
    if tail = "" then None else Some tail
  | _ -> Some c

let normalize path =
  let components = List.filter_map demangle (raw_components path) in
  match components with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | components -> components

(* ---------- construction ---------- *)

let unit_of_file file = Typed_load.module_name_of_file file

let rec pattern_idents : type k. k Typedtree.general_pattern -> (Ident.t * Location.t) list =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, name) -> [ (id, name.Location.loc) ]
  | Typedtree.Tpat_alias (sub, id, name) -> (id, name.Location.loc) :: pattern_idents sub
  | _ -> []

let build (files : Typed_load.typed_file list) =
  let defs = ref [] in
  let units = Hashtbl.create 64 in
  List.iter
    (fun { Typed_load.file; structure } ->
      let u = unit_of_file file in
      (match Hashtbl.find_opt units u with
      | None -> Hashtbl.replace units u (Some file)
      | Some _ -> Hashtbl.replace units u None);
      List.iter
        (fun item ->
          match item.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun (id, loc) ->
                    defs :=
                      {
                        def_key = u ^ "." ^ Ident.name id;
                        def_file = file;
                        def_ident = id;
                        def_loc = loc;
                        def_expr = vb.Typedtree.vb_expr;
                      }
                      :: !defs)
                  (pattern_idents vb.Typedtree.vb_pat))
              vbs
          | _ -> ())
        structure.Typedtree.str_items)
    files;
  let defs = Array.of_list (List.rev !defs) in
  let by_key = Hashtbl.create (Array.length defs) in
  Array.iteri (fun i d -> Hashtbl.replace by_key d.def_key i) defs;
  let by_file_ident = Hashtbl.create 64 in
  Array.iteri
    (fun i d ->
      let prev =
        match Hashtbl.find_opt by_file_ident d.def_file with Some l -> l | None -> []
      in
      Hashtbl.replace by_file_ident d.def_file ((d.def_ident, i) :: prev))
    defs;
  { defs; by_key; units; by_file_ident }

(* ---------- resolution ---------- *)

(* Resolve a referenced path to a graph node.  A bare ident resolves
   against the referencing file's own top-level bindings (by stamp, so
   shadowed definitions resolve to the right one); a qualified path
   resolves by its longest suffix [M. ... .f] whose head names a known
   unit. *)
let resolve t ~file path =
  match path with
  | Path.Pident id -> (
    match Hashtbl.find_opt t.by_file_ident file with
    | None -> None
    | Some l -> List.find_map (fun (i, d) -> if Ident.same i id then Some d else None) l)
  | _ -> (
    let components = normalize path in
    let rec suffixes = function
      | [] -> []
      | _ :: tl as l -> l :: suffixes tl
    in
    let known_unit m =
      match Hashtbl.find_opt t.units m with Some (Some _) -> true | _ -> false
    in
    let candidates =
      List.filter_map
        (fun suffix ->
          match suffix with
          | m :: (_ :: _ as rest) when known_unit m -> Some (m ^ "." ^ String.concat "." rest)
          | _ -> None)
        (suffixes components)
    in
    List.find_map (fun key -> Hashtbl.find_opt t.by_key key) candidates)

(* ---------- call-site extraction (for tests and diagnostics) ---------- *)

let calls t (d : def) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> (
            match resolve t ~file:d.def_file p with
            | Some j when not (Ident.same t.defs.(j).def_ident d.def_ident) ->
              acc := (t.defs.(j).def_key, e.Typedtree.exp_loc) :: !acc
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it d.def_expr;
  List.rev !acc
