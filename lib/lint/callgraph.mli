(** The intra-library call graph over typed sources.

    Nodes are top-level [let] bindings, keyed ["Unit.name"] (the unit
    name is the capitalized file basename, after undoing dune's
    [Lib__Module] mangling).  References resolve whether they are
    spelled as bare idents (same file, matched by stamp so shadowing
    resolves correctly), [Module.f], [Lib.Module.f] or the mangled
    [Lib__Module.f]. *)

type def = {
  def_key : string;  (** ["Campaign.decide"] - unit-qualified name *)
  def_file : string;
  def_ident : Ident.t;  (** binding ident; distinguishes shadowed defs *)
  def_loc : Location.t;
  def_expr : Typedtree.expression;
}

type t = {
  defs : def array;  (** in (file, source-position) order *)
  by_key : (string, int) Hashtbl.t;  (** last definition wins, as in scope *)
  units : (string, string option) Hashtbl.t;
      (** unit name -> its file; [None] marks an ambiguous name *)
  by_file_ident : (string, (Ident.t * int) list) Hashtbl.t;
}

val normalize : Path.t -> string list
(** Flatten a resolved path to components, undoing dune name mangling
    ([Corpus__Campaign] -> [Campaign], alias modules dropped) and
    stripping a leading [Stdlib]. *)

val build : Typed_load.typed_file list -> t

val resolve : t -> file:string -> Path.t -> int option
(** Resolve a reference occurring in [file] to an index into [defs]. *)

val calls : t -> def -> (string * Location.t) list
(** Resolved intra-library references inside a definition's body, in
    source order, excluding self-references. *)
