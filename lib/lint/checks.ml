(* Parsetree walks for rules R1-R4 (R5 is a file-system check and lives
   in the driver).  Everything here is purely syntactic: we match on the
   surface tree the stock compiler-libs parser produces, before any
   typing, so the checks are fast, dependency-free, and run on files
   that do not even typecheck yet. *)

open Parsetree
module StrSet = Set.Make (String)

(* Longident as a head-first path, with a leading [Stdlib] stripped so
   [Stdlib.exit] and [exit] (or [Stdlib.Hashtbl.iter] and
   [Hashtbl.iter]) are the same construct. *)
let ident_path lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> acc
  in
  match go [] lid with "Stdlib" :: rest -> rest | path -> path

let head_ident e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (ident_path txt) | _ -> None

type ctx = {
  file : string;
  mutable findings : Finding.t list;
  mutable allow_uses : (string * string) list;  (** (rule, allow prefix) that suppressed *)
}

(* Applicability-aware reporting: an allowlisted file swallows the
   finding but records which entry earned its keep, so the driver can
   flag entries that suppress nothing (A0). *)
let report ctx ~rule ~loc fmt =
  Printf.ksprintf
    (fun message ->
      match Rules.find rule with
      | None -> ()
      | Some meta -> (
        match Rules.applicability meta ctx.file with
        | Rules.Applies ->
          ctx.findings <-
            Finding.make ~rule ~severity:Finding.Error ~file:ctx.file ~loc message
            :: ctx.findings
        | Rules.Allowlisted prefix -> ctx.allow_uses <- (rule, prefix) :: ctx.allow_uses
        | Rules.Out_of_scope -> ()))
    fmt

let rule_in_scope id file =
  match Rules.find id with Some meta -> Rules.in_scope meta file | None -> false

(* ---------- pattern variables (for the R3 scope analysis) ---------- *)

let rec pat_vars p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> StrSet.add txt acc
  | Ppat_alias (sub, { txt; _ }) -> pat_vars sub (StrSet.add txt acc)
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left (fun acc p -> pat_vars p acc) acc ps
  | Ppat_construct (_, Some (_, sub)) | Ppat_variant (_, Some sub) -> pat_vars sub acc
  | Ppat_record (fields, _) -> List.fold_left (fun acc (_, p) -> pat_vars p acc) acc fields
  | Ppat_or (a, b) -> pat_vars a (pat_vars b acc)
  | Ppat_constraint (sub, _) | Ppat_lazy sub | Ppat_exception sub | Ppat_open (_, sub) ->
    pat_vars sub acc
  | _ -> acc

(* ---------- R3: task purity ---------- *)

(* Fan-out entry points of [Parallel] whose function argument runs on
   worker domains. *)
let fanout_functions = [ "map"; "map_array"; "filter_map"; "concat_map"; "parallel_for" ]

let mutation_kind = function
  | [ ":=" ] -> Some "reference assignment (:=)"
  | [ "incr" ] | [ "decr" ] -> Some "incr/decr"
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ] -> Some "Hashtbl mutation"
  | [ ("Array" | "Bytes"); ("set" | "unsafe_set" | "fill" | "blit") ] -> Some "array mutation"
  | [ "Buffer"; s ] when String.length s >= 4 && String.sub s 0 4 = "add_" ->
    Some "Buffer mutation"
  | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> Some "Buffer mutation"
  | [ "Queue"; ("add" | "push" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ] -> Some "Queue/Stack mutation"
  | _ -> None

(* Walk the body of a closure submitted to a fan-out entry point.
   [bound] holds every name introduced inside the closure (parameters,
   lets, match/try cases, for indices): mutating those is task-local and
   fine; mutating anything else is captured state shared with other
   domains, i.e. a race that breaks the determinism contract. *)
let rec scan_task ctx bound e =
  let flag_target ~loc ~what target =
    match head_ident target with
    | Some [ name ] when StrSet.mem name bound -> ()
    | Some path ->
      report ctx ~rule:"R3" ~loc
        "%s of `%s` captured from outside a closure submitted to Parallel fan-out; hoist the \
         mutation out of the task or make the state task-local"
        what (String.concat "." path)
    | None ->
      report ctx ~rule:"R3" ~loc
        "%s of a non-local value inside a closure submitted to Parallel fan-out" what
  in
  let scan_cases bound cases =
    List.iter
      (fun c ->
        let bound = pat_vars c.pc_lhs bound in
        Option.iter (scan_task ctx bound) c.pc_guard;
        scan_task ctx bound c.pc_rhs)
      cases
  in
  match e.pexp_desc with
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (scan_task ctx bound) default;
    scan_task ctx (pat_vars pat bound) body
  | Pexp_function cases -> scan_cases bound cases
  | Pexp_let (rec_flag, vbs, body) ->
    let bound' = List.fold_left (fun acc vb -> pat_vars vb.pvb_pat acc) bound vbs in
    let rhs_bound = match rec_flag with Asttypes.Recursive -> bound' | Nonrecursive -> bound in
    List.iter (fun vb -> scan_task ctx rhs_bound vb.pvb_expr) vbs;
    scan_task ctx bound' body
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    scan_task ctx bound scrut;
    scan_cases bound cases
  | Pexp_for (pat, lo, hi, _, body) ->
    scan_task ctx bound lo;
    scan_task ctx bound hi;
    scan_task ctx (pat_vars pat bound) body
  | Pexp_setfield (target, _, value) ->
    flag_target ~loc:e.pexp_loc ~what:"field mutation (<-)" target;
    scan_task ctx bound target;
    scan_task ctx bound value
  | Pexp_setinstvar (_, value) ->
    report ctx ~rule:"R3" ~loc:e.pexp_loc
      "instance-variable mutation inside a closure submitted to Parallel fan-out";
    scan_task ctx bound value
  | Pexp_apply (f, args) ->
    (match (head_ident f, args) with
    | Some path, (_, target) :: _ -> (
      match mutation_kind path with
      | Some what -> flag_target ~loc:e.pexp_loc ~what target
      | None -> ())
    | _ -> ());
    scan_task ctx bound f;
    List.iter (fun (_, a) -> scan_task ctx bound a) args
  | _ ->
    (* Generic recursion: none of the remaining constructs bind names an
       expression child can see, so the bound set is unchanged. *)
    let it =
      { Ast_iterator.default_iterator with expr = (fun _ child -> scan_task ctx bound child) }
    in
    Ast_iterator.default_iterator.expr it e

let check_fanout_application ctx args =
  List.iter
    (fun (_, arg) ->
      match arg.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> scan_task ctx StrSet.empty arg
      | _ -> ())
    args

(* The stealing entry points.  [Steal.run] receives its worker-run
   closures nested inside task tuples and arrays rather than as direct
   function arguments, so the purity scan must descend through arbitrary
   argument structure and check every lambda it finds; [Steal.spawn] and
   [steal_map_array] get the same treatment for uniformity. *)
let steal_functions = function
  | [ "Parallel"; "Steal"; ("run" | "spawn") ]
  | [ "Steal"; ("run" | "spawn") ]
  | [ "Parallel"; "steal_map_array" ] -> true
  | _ -> false

let rec scan_lambdas ctx e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> scan_task ctx StrSet.empty e
  | _ ->
    (* Descend, stopping at each lambda: [scan_task] owns everything
       inside it (and tracks the names it binds). *)
    let it =
      { Ast_iterator.default_iterator with expr = (fun _ child -> scan_lambdas ctx child) }
    in
    Ast_iterator.default_iterator.expr it e

let check_steal_application ctx args = List.iter (fun (_, arg) -> scan_lambdas ctx arg) args

(* ---------- R1 / R2: banned identifiers ---------- *)

let sorting_head = function
  | [ ("List" | "Array"); ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] -> true
  | _ -> false

let check_ident ctx ~in_sort ~loc path =
  (match path with
  | [ "Random"; "self_init" ] ->
    report ctx ~rule:"R1" ~loc
      "Random.self_init seeds from the environment; use an explicit Prng seed so runs are \
       reproducible"
  | [ "Sys"; "time" ] ->
    report ctx ~rule:"R1" ~loc
      "Sys.time reads the process clock; deterministic code must not branch on wall-clock"
  | [ "Unix"; "gettimeofday" ] ->
    report ctx ~rule:"R1" ~loc
      "Unix.gettimeofday reads wall-clock; deterministic code must not branch on it"
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] when not in_sort ->
    report ctx ~rule:"R1" ~loc
      "Hashtbl.%s visits bindings in unspecified order; sort the bindings (wrap the fold in \
       List.sort) before they feed fan-out or serialized output"
      fn
  | _ -> ());
  match path with
  | [ "Obj"; "magic" ] ->
    report ctx ~rule:"R2" ~loc "Obj.magic is forbidden: it defeats the type system"
  | "Marshal" :: _ ->
    report ctx ~rule:"R2" ~loc
      "Marshal is forbidden: wire data must go through the validating Codec layer"
  | [ "exit" ] when not (Rules.prefixed "bin/" ctx.file) ->
    report ctx ~rule:"R2" ~loc "exit outside bin/: libraries must return, not terminate"
  | _ -> ()

(* ---------- R4: fsync before rename ---------- *)

(* Collect rename/fsync call sites in source order inside one top-level
   binding; every rename must see an fsync earlier in the same body. *)
let check_fsync_order ctx vb =
  if rule_in_scope "R4" ctx.file then begin
    let events = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } -> (
              match ident_path txt with
              | [ ("Unix" | "Sys"); "rename" ] -> events := (`Rename, loc) :: !events
              | [ "Unix"; "fsync" ] -> events := (`Fsync, loc) :: !events
              | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it vb.pvb_expr;
    let events = List.rev !events in
    let offset (loc : Location.t) = loc.loc_start.Lexing.pos_cnum in
    List.iter
      (fun (kind, loc) ->
        if kind = `Rename
           && not (List.exists (fun (k, l) -> k = `Fsync && offset l < offset loc) events)
        then
          report ctx ~rule:"R4" ~loc
            "rename without a preceding Unix.fsync in the same function body; atomic-replace \
             must flush the new file's blocks before publishing it")
      events
  end

(* ---------- the per-file walk ---------- *)

let check_structure ~file structure =
  let ctx = { file; findings = []; allow_uses = [] } in
  let in_sort = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident ctx ~in_sort:!in_sort ~loc (ident_path txt)
          | Pexp_apply (f, args) -> (
            match head_ident f with
            | Some [ "Parallel"; fn ] when List.mem fn fanout_functions ->
              if rule_in_scope "R3" ctx.file then check_fanout_application ctx args
            | Some path when steal_functions path ->
              if rule_in_scope "R3" ctx.file then check_steal_application ctx args
            | _ -> ())
          | _ -> ());
          match e.pexp_desc with
          | Pexp_apply (f, args)
            when (match head_ident f with Some p -> sorting_head p | None -> false) ->
            (* A Hashtbl.fold whose result goes straight into a sort is
               ordered output; the exemption covers the sort's arguments
               only. *)
            it.expr it f;
            let saved = !in_sort in
            in_sort := true;
            List.iter (fun (_, a) -> it.expr it a) args;
            in_sort := saved
          | _ -> Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it item ->
          (match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter (fun vb -> check_fsync_order ctx vb) vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it item);
    }
  in
  List.iter (fun item -> it.structure_item it item) structure;
  (List.rev ctx.findings, List.sort_uniq compare ctx.allow_uses)
