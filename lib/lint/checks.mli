(** Parsetree checks for rules R1 (determinism), R2 (forbidden
    constructs), R3 (task purity), and R4 (fsync-before-rename).  R5 is
    a file-system property and lives in {!Driver}. *)

val check_structure : file:string -> Parsetree.structure -> Finding.t list
(** Run every applicable syntactic rule over one parsed implementation.
    [file] is the root-relative path used for scoping, allowlists, and
    diagnostics.  Findings come back in source order. *)
