(** Parsetree checks for rules R1 (determinism, direct construct uses),
    R2 (forbidden constructs), R3 (task purity), and R4
    (fsync-before-rename).  R5 is a file-system property and lives in
    {!Driver}; the interprocedural/flow-sensitive layers (R1 taint, R6,
    R7) live in {!Dataflow}. *)

val check_structure :
  file:string -> Parsetree.structure -> Finding.t list * (string * string) list
(** Run every applicable syntactic rule over one parsed implementation.
    [file] is the root-relative path used for scoping, allowlists, and
    diagnostics.  Findings come back in source order, together with the
    (rule, allow prefix) pairs whose allowlist entries suppressed a
    would-be finding (consumed by the driver's A0 unused-allowlist
    check). *)
