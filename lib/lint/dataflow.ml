(* The semantic analyses over typedtrees: R1' interprocedural
   determinism taint, R6 lock discipline and R7 resource lifetime.

   All three share one approximation of "can this expression raise":
   a call is assumed to raise unless its head is on the safe-external
   list or is a local let-bound lambda whose body was summarized as
   non-raising.  [assert false] and [Texp_unreachable] mark dead code
   and are never treated as raises; a [Partial] match is a potential
   Match_failure.  Misclassifying a raising function as safe loses a
   finding; the reverse invents one, so the safe list is deliberately
   short.

   Blind spots (documented in DESIGN.md paragraph 15): functions inside
   nested modules are not call-graph nodes, [f @@ x] / [x |> f] hide
   the callee from the head check, [Mutex.try_lock] is not modeled, and
   a lambda passed to an unknown function conservatively marks captured
   resources as escaped rather than leaked. *)

open Typedtree
module S = Set.Make (String)

type report = {
  findings : Finding.t list;
  allow_uses : (string * string) list;  (** (rule id, allow prefix) that suppressed *)
}

(* ---------- shared classification ---------- *)

let head_of f =
  match f.exp_desc with Texp_ident (p, _, _) -> Some (p, Callgraph.normalize p) | _ -> None

let dotted comps = String.concat "." comps

let is_raise_head = function
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] -> true
  | _ -> false

(* Externals that cannot raise (or whose failure modes we accept, like
   allocation).  Division, [List.hd], [Array.get], [Option.get],
   [Hashtbl.find] are intentionally absent. *)
let safe_head = function
  | [ "Mutex"; _ ] | [ "Condition"; _ ] | [ "Atomic"; _ ]
  | [ "Domain"; ("cpu_relax" | "self" | "recommended_domain_count") ]
  | [ ("ref" | "!" | ":=" | "incr" | "decr" | "ignore" | "not" | "fst" | "snd") ]
  | [ ("min" | "max" | "abs" | "succ" | "pred" | "compare") ]
  | [ ("=" | "<>" | "<" | ">" | "<=" | ">=" | "==" | "!=") ]
  | [ ("+" | "-" | "*" | "+." | "-." | "*." | "/." | "~-" | "~-." | "**") ]
  | [ ("&&" | "||" | "^" | "@") ]
  | [ ("land" | "lor" | "lxor" | "lnot" | "lsl" | "lsr" | "asr") ]
  | [ ("float_of_int" | "int_of_float" | "truncate" | "string_of_int" | "string_of_float"
      | "string_of_bool" ) ]
  | [ "List";
      ( "length" | "rev" | "rev_append" | "cons" | "mem" | "memq" | "exists" | "for_all"
      | "filter" | "concat" | "append" | "is_empty" ) ]
  | [ "Array"; ("length" | "make" | "copy" | "to_list" | "of_list" | "unsafe_get" | "unsafe_set") ]
  | [ "String"; ("length" | "concat" | "equal" | "compare" | "trim" | "uppercase_ascii" | "lowercase_ascii") ]
  | [ "Option"; ("is_some" | "is_none" | "value" | "some" | "none" | "equal" | "to_list") ]
  | [ "Int"; _ ] | [ "Bool"; _ ] | [ "Char"; "code" ]
  | [ "Float"; ("of_int" | "to_int" | "equal" | "compare" | "add" | "sub" | "mul" | "abs" | "max" | "min") ]
  | [ "Printf"; "sprintf" ] | [ "Format"; "sprintf" ]
  | [ "Buffer";
      ("create" | "add_string" | "add_char" | "add_buffer" | "contents" | "length" | "clear" | "reset") ]
  | [ "Hashtbl";
      ("create" | "add" | "replace" | "mem" | "find_opt" | "remove" | "reset" | "clear" | "length") ]
  | [ "Queue"; ("create" | "add" | "push" | "is_empty" | "length" | "clear") ]
  | [ "Fun"; "id" ] | [ "Filename"; ("concat" | "basename" | "dirname" | "remove_extension") ]
  -> true
  | _ -> false

(* Calls that park the domain: never acceptable while holding a deque
   or pool mutex. *)
let blocking_head = function
  | [ "Unix"; _ ] -> true
  | [ "Domain"; "join" ] | [ "Thread"; "join" ] | [ "Event"; _ ] -> true
  | [ ("input_line" | "read_line" | "input" | "really_input") ] -> true
  | _ -> false

(* Stdlib container combinators run their function arguments to
   completion before returning, so a lambda argument executes inline
   under whatever locks/resources the caller holds. *)
let inline_combinator = function
  | [ ("List" | "Array" | "Seq" | "Option" | "Result" | "Either" | "Hashtbl" | "Queue"
      | "Stack" | "String" | "Buffer" | "Fun" | "Sys"); _ ] -> true
  | _ -> false

let is_false_construct e =
  match e.exp_desc with
  | Texp_construct (_, cd, _) -> cd.Types.cstr_name = "false"
  | _ -> false

(* Per-function summaries of local let-bound lambdas. *)
type lsum = { s_may_raise : bool; s_unlocks : S.t; s_closes : S.t }

let rec value_pat_idents (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (sub, id, _) -> id :: value_pat_idents sub
  | _ -> []

let binding_name vb =
  match value_pat_idents vb.vb_pat with id :: _ -> Ident.name id | [] -> "_"

let is_function e = match e.exp_desc with Texp_function _ -> true | _ -> false

(* May evaluating [e] raise?  [locals] maps local lambda names to their
   summaries; a name being summarized is pre-seeded as non-raising so
   self-recursion does not poison its own summary. *)
let expr_may_raise ~locals e =
  let flag = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_assert (cond, _) when is_false_construct cond -> ()
          | Texp_assert _ -> flag := true
          | Texp_match (_, _, Partial) -> flag := true
          | Texp_function { partial = Partial; _ } -> flag := true
          | Texp_letop _ -> flag := true
          | Texp_apply (f, _) -> (
            match head_of f with
            | Some (p, comps) ->
              if is_raise_head comps then flag := true
              else if not (safe_head comps) then begin
                match p with
                | Path.Pident id -> (
                  match Hashtbl.find_opt locals (Ident.name id) with
                  | Some s -> if s.s_may_raise then flag := true
                  | None -> flag := true)
                | _ -> flag := true
              end
            | None -> flag := true)
          | _ -> ());
          match e.exp_desc with
          | Texp_assert (cond, _) when is_false_construct cond -> ()
          | _ -> Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !flag

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Normalized spelling of a mutex expression, the lock identity used by
   the R6 state ([pool.mutex], [d.dq_mutex], a bare binding name...). *)
let rec lock_name e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> dotted (Callgraph.normalize p)
  | Texp_field (b, _, ld) -> lock_name b ^ "." ^ ld.Types.lbl_name
  | _ -> Printf.sprintf "<mutex@%d>" e.exp_loc.Location.loc_start.Lexing.pos_lnum

let iter_exprs ~f e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          f e;
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e

let unlocks_in e =
  let acc = ref S.empty in
  iter_exprs e ~f:(fun e ->
      match e.exp_desc with
      | Texp_apply (f, args) -> (
        match (head_of f, List.filter_map snd args) with
        | Some (_, [ "Mutex"; "unlock" ]), m :: _ -> acc := S.add (lock_name m) !acc
        | _ -> ())
      | _ -> ());
  !acc

let close_head = function
  | [ "Unix"; "close" ]
  | [ ("close_in" | "close_out" | "close_in_noerr" | "close_out_noerr") ]
  | [ "In_channel"; "close" ]
  | [ "Out_channel"; ("close" | "close_noerr") ] -> true
  | _ -> false

let closes_in e =
  let acc = ref S.empty in
  iter_exprs e ~f:(fun e ->
      match e.exp_desc with
      | Texp_apply (f, args) -> (
        match (head_of f, List.filter_map snd args) with
        | Some (_, comps), { exp_desc = Texp_ident (Path.Pident id, _, _); _ } :: _
          when close_head comps ->
          acc := S.add (Ident.unique_name id) !acc
        | _ -> ())
      | _ -> ());
  !acc

(* Does this expression close things when called?  Either directly
   ([Unix.close fd]) or over a whole fd array ([Array.iter Unix.close
   fds], with or without a per-element wrapper lambda). *)
let closer_closes c =
  (match head_of c with Some (_, comps) -> close_head comps | None -> false)
  || (is_function c && not (S.is_empty (closes_in c)))

let array_iter_closes e =
  let acc = ref S.empty in
  iter_exprs e ~f:(fun e ->
      match e.exp_desc with
      | Texp_apply (f, args) -> (
        match (head_of f, List.filter_map snd args) with
        | ( Some (_, [ "Array"; "iter" ]),
            [ closer; { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ] )
          when closer_closes closer ->
          acc := S.add (Ident.unique_name id) !acc
        | _ -> ())
      | _ -> ());
  !acc

let closes_full e = S.union (closes_in e) (array_iter_closes e)

let summarize ~locals name e =
  Hashtbl.replace locals name { s_may_raise = false; s_unlocks = S.empty; s_closes = S.empty };
  let s =
    {
      s_may_raise = expr_may_raise ~locals e;
      s_unlocks = unlocks_in e;
      s_closes = closes_full e;
    }
  in
  Hashtbl.replace locals name s

(* Does this application (callee plus any lambda arguments a combinator
   would run inline) potentially raise? *)
let app_may_raise ~locals p comps arg_exprs =
  let callee =
    if is_raise_head comps then true
    else if safe_head comps then false
    else
      match p with
      | Path.Pident id -> (
        match Hashtbl.find_opt locals (Ident.name id) with
        | Some s -> s.s_may_raise
        | None -> true)
      | _ -> true
  in
  callee
  || List.exists
       (fun a -> if is_function a then expr_may_raise ~locals a else false)
       arg_exprs

type actx = { file : string; mutable findings : Finding.t list }

let report ctx ~rule ~loc fmt =
  Printf.ksprintf
    (fun message ->
      ctx.findings <-
        Finding.make ~rule ~severity:Finding.Error ~file:ctx.file ~loc message :: ctx.findings)
    fmt

(* Analysis roots: every value binding introduced by a [Tstr_value] at
   any module depth (the parallel runtime keeps its deques in a nested
   [Steal] module). *)
let structure_roots structure =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      structure_item =
        (fun sub item ->
          (match item.str_desc with
          | Tstr_value (_, vbs) -> List.iter (fun vb -> acc := vb :: !acc) vbs
          | _ -> ());
          Tast_iterator.default_iterator.structure_item sub item);
    }
  in
  it.structure it structure;
  List.rev !acc

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

(* ---------- R6: lock discipline ---------- *)

(* Symbolic walk of one function body.  The state is the set of lock
   names held on the current path; [None] means the path cannot fall
   through (raise or dead code).  [protected] carries locks that a
   surrounding [Fun.protect] finalizer is guaranteed to release. *)
let r6_check_binding ctx vb =
  let locals : (string, lsum) Hashtbl.t = Hashtbl.create 8 in
  let unprotected held protected = S.diff held protected in
  let held_str held = String.concat ", " (S.elements held) in
  let rec walk protected held e : S.t option =
    let loc = e.exp_loc in
    match e.exp_desc with
    | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_extension_constructor _ ->
      Some held
    | Texp_unreachable -> None
    | Texp_let (_, vbs, body) ->
      let after =
        List.fold_left
          (fun acc vb ->
            match acc with
            | None -> None
            | Some h ->
              if is_function vb.vb_expr then begin
                summarize ~locals (binding_name vb) vb.vb_expr;
                analyze_lambda protected vb.vb_expr;
                Some h
              end
              else walk protected h vb.vb_expr)
          (Some held) vbs
      in
      (match after with None -> None | Some h -> walk protected h body)
    | Texp_function _ ->
      analyze_lambda protected e;
      Some held
    | Texp_apply (f, args) -> apply protected held loc f args
    | Texp_match (scrut, cases, partial) -> (
      match walk protected held scrut with
      | None -> None
      | Some h ->
        if partial = Partial && not (S.is_empty (unprotected h protected)) then
          report ctx ~rule:"R6" ~loc
            "partial match can raise Match_failure while %s is held; make the match total or \
             release first"
            (held_str (unprotected h protected));
        merge loc (List.map (fun c -> walk_case protected h c) cases))
    | Texp_try (body, handlers) ->
      let rb = walk protected held body in
      merge loc (rb :: List.map (fun c -> walk_case protected held c) handlers)
    | Texp_ifthenelse (c, t, eo) -> (
      match walk protected held c with
      | None -> None
      | Some h ->
        let rt = walk protected h t in
        let re = match eo with Some e -> walk protected h e | None -> Some h in
        merge loc [ rt; re ])
    | Texp_sequence (a, b) -> (
      match walk protected held a with None -> None | Some h -> walk protected h b)
    | Texp_while (c, body) ->
      (match walk protected held c with
      | None -> ()
      | Some h -> (
        match walk protected h body with
        | Some h' when not (S.equal h' h) ->
          report ctx ~rule:"R6" ~loc
            "lock state changes across a loop iteration (%s vs %s); each iteration must be \
             balanced"
            (held_str h) (held_str h')
        | _ -> ()));
      Some held
    | Texp_for (_, _, lo, hi, _, body) ->
      (match walk protected held lo with
      | None -> ()
      | Some h -> (
        match walk protected h hi with
        | None -> ()
        | Some h2 -> (
          match walk protected h2 body with
          | Some h' when not (S.equal h' h2) ->
            report ctx ~rule:"R6" ~loc
              "lock state changes across a loop iteration (%s vs %s); each iteration must be \
               balanced"
              (held_str h2) (held_str h')
          | _ -> ())));
      Some held
    | Texp_assert (cond, _) when is_false_construct cond -> None
    | Texp_assert (cond, _) ->
      if not (S.is_empty (unprotected held protected)) then
        report ctx ~rule:"R6" ~loc
          "assert can raise Assert_failure while %s is held; release first or use Fun.protect"
          (held_str (unprotected held protected));
      walk protected held cond
    | Texp_tuple es | Texp_array es -> walk_list protected held es
    | Texp_construct (_, _, es) -> walk_list protected held es
    | Texp_variant (_, eo) -> (
      match eo with Some e -> walk protected held e | None -> Some held)
    | Texp_record { fields; extended_expression; _ } ->
      let start =
        match extended_expression with
        | Some e -> walk protected held e
        | None -> Some held
      in
      Array.fold_left
        (fun acc (_, def) ->
          match (acc, def) with
          | None, _ -> None
          | Some h, Overridden (_, e) -> walk protected h e
          | Some h, Kept _ -> Some h)
        start fields
    | Texp_field (b, _, _) -> walk protected held b
    | Texp_setfield (b, _, _, v) -> (
      match walk protected held b with None -> None | Some h -> walk protected h v)
    | Texp_lazy _ -> Some held
    | Texp_letmodule (_, _, _, _, body) | Texp_letexception (_, body) | Texp_open (_, body) ->
      walk protected held body
    | Texp_letop { let_; ands; body; _ } ->
      let after =
        List.fold_left
          (fun acc bop ->
            match acc with None -> None | Some h -> walk protected h bop.bop_exp)
          (Some held) (let_ :: ands)
      in
      (match after with
      | None -> None
      | Some h ->
        if not (S.is_empty (unprotected h protected)) then
          report ctx ~rule:"R6" ~loc
            "binding operator can short-circuit while %s is held; release before the let* \
             chain or use Fun.protect"
            (held_str (unprotected h protected));
        walk protected h body.c_rhs)
    | _ -> Some held
  and walk_case : type k. S.t -> S.t -> k case -> S.t option =
   fun protected held c ->
    let after_guard =
      match c.c_guard with Some g -> walk protected held g | None -> Some held
    in
    (match after_guard with None -> None | Some h -> walk protected h c.c_rhs)
  and walk_list protected held es =
    List.fold_left
      (fun acc e -> match acc with None -> None | Some h -> walk protected h e)
      (Some held) es
  and merge loc results =
    match List.filter_map Fun.id results with
    | [] -> None
    | first :: rest ->
      if List.for_all (S.equal first) rest then Some first
      else begin
        let union = List.fold_left S.union first rest in
        let inter = List.fold_left S.inter first rest in
        report ctx ~rule:"R6" ~loc
          "%s held on some paths out of this branch but not others; every path must release \
           the same locks"
          (held_str (S.diff union inter));
        Some inter
      end
  and analyze_lambda protected e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
      List.iter
        (fun c ->
          match walk protected S.empty c.c_rhs with
          | Some h when not (S.is_empty h) ->
            report ctx ~rule:"R6" ~loc:c.c_rhs.exp_loc
              "%s is still held when this function returns; release on every path or use \
               Fun.protect"
              (held_str h)
          | _ -> ())
        cases
    | _ -> ignore (walk protected S.empty e)
  and apply protected held loc f args =
    let arg_exprs = List.filter_map snd args in
    match head_of f with
    | None -> walk_list protected held (f :: arg_exprs)
    | Some (p, comps) -> (
      match (comps, arg_exprs) with
      | [ "Mutex"; "lock" ], m :: _ ->
        let name = lock_name m in
        if S.mem name held then begin
          report ctx ~rule:"R6" ~loc "double lock of %s: it is already held on this path" name;
          Some held
        end
        else begin
          if not (S.is_empty held) then
            report ctx ~rule:"R6" ~loc
              "acquiring %s while already holding %s%s; nested acquisition blocks other \
               domains and risks deadlock"
              name (held_str held)
              (if S.exists (fun h -> has_substring h "dq_") held then
                 " (a deque mutex: stealers spin on it)"
               else "");
          Some (S.add name held)
        end
      | [ "Mutex"; "unlock" ], m :: _ -> Some (S.remove (lock_name m) held)
      | [ "Condition"; "wait" ], [ _; m ] ->
        let name = lock_name m in
        if not (S.mem name held) then
          report ctx ~rule:"R6" ~loc
            "Condition.wait on %s which is not held on this path; wait must be called with \
             the mutex locked"
            name;
        let others = S.remove name held in
        if not (S.is_empty (unprotected others protected)) then
          report ctx ~rule:"R6" ~loc
            "Condition.wait parks the domain while still holding %s%s"
            (held_str (unprotected others protected))
            (if S.exists (fun h -> has_substring h "dq_") others then
               " (a deque mutex: stealers spin on it)"
             else "");
        Some held
      | [ "Condition"; _ ], _ -> walk_list protected held arg_exprs
      | [ "Fun"; "protect" ], _ -> fun_protect protected held loc args
      | comps, _ when is_raise_head comps ->
        (match walk_list protected held arg_exprs with
        | None -> ()
        | Some h ->
          if not (S.is_empty (unprotected h protected)) then
            report ctx ~rule:"R6" ~loc
              "raising while %s is held leaks the lock; release first or use Fun.protect"
              (held_str (unprotected h protected)));
        None
      | comps, _ ->
        List.iter
          (fun a -> if is_function a then analyze_lambda protected a)
          arg_exprs;
        let after =
          walk_list protected held (List.filter (fun a -> not (is_function a)) arg_exprs)
        in
        (match after with
        | None -> None
        | Some h ->
          let exposed = unprotected h protected in
          if not (S.is_empty exposed) then begin
            if blocking_head comps then
              report ctx ~rule:"R6" ~loc
                "blocking call %s while holding %s%s"
                (dotted comps) (held_str exposed)
                (if S.exists (fun l -> has_substring l "dq_") exposed then
                   " (a deque mutex: stealers spin on it)"
                 else "")
            else if app_may_raise ~locals p comps arg_exprs then
              report ctx ~rule:"R6" ~loc
                "call to %s can raise while %s is held, leaking the lock; release first or \
                 use Fun.protect"
                (dotted comps) (held_str exposed)
          end;
          Some h))
  and fun_protect protected held loc args =
    let finally =
      List.find_map
        (fun (l, a) ->
          match (l, a) with Asttypes.Labelled "finally", Some e -> Some e | _ -> None)
        args
    in
    let thunk =
      List.find_map
        (fun (l, a) -> match (l, a) with (Asttypes.Nolabel, Some e) -> Some e | _ -> None)
        args
    in
    let fin_unlocks =
      match finally with
      | Some ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ }) -> (
        match Hashtbl.find_opt locals (Ident.name id) with
        | Some s -> s.s_unlocks
        | None -> S.empty)
      | Some fe -> unlocks_in fe
      | None -> S.empty
    in
    (match finally with
    | Some ({ exp_desc = Texp_function _; _ } as fe) -> analyze_lambda protected fe
    | _ -> ());
    match thunk with
    | Some { exp_desc = Texp_function { cases = [ c ]; _ }; _ } -> (
      match walk (S.union protected fin_unlocks) held c.c_rhs with
      | None -> None
      | Some h -> Some (S.diff h fin_unlocks))
    | _ ->
      (* Thunk is an ident or partial application: it may raise, but the
         finalizer's unlocks are covered. *)
      let exposed = S.diff (unprotected held protected) fin_unlocks in
      if not (S.is_empty exposed) then
        report ctx ~rule:"R6" ~loc
          "Fun.protect body can raise while %s is held and the finalizer does not release \
           it"
          (held_str exposed);
      Some (S.diff held fin_unlocks)
  in
  match walk S.empty S.empty vb.vb_expr with
  | Some h when not (S.is_empty h) ->
    report ctx ~rule:"R6" ~loc:vb.vb_loc
      "%s is still held when %s finishes evaluating; release on every path"
      (String.concat ", " (S.elements h))
      (binding_name vb)
  | _ -> ()

(* ---------- R7: resource lifetime ---------- *)

let open_kind comps =
  let opens s = String.length s >= 5 && String.sub s 0 5 = "open_" in
  match comps with
  | [ "Unix"; "openfile" ] -> Some "file descriptor"
  | [ "Unix"; "socket" ] -> Some "socket"
  | [ "In_channel"; s ] when opens s -> Some "input channel"
  | [ ("open_in" | "open_in_bin" | "open_in_gen") ] -> Some "input channel"
  | [ "Out_channel"; s ] when opens s -> Some "output channel"
  | [ ("open_out" | "open_out_bin" | "open_out_gen") ] -> Some "output channel"
  | _ -> None

(* [let fds = Array.init n (fun i -> ...Unix.openfile...)] - the
   campaign's fd-per-shard pattern.  The resource is the whole array;
   the open location reported is the openfile call inside the lambda. *)
let aggregate_open e =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
    match (head_of f, List.filter_map snd args) with
    | Some (_, [ "Array"; "init" ]), [ _; { exp_desc = Texp_function { cases = [ c ]; _ }; _ } ]
      ->
      let rec tail e =
        match e.exp_desc with
        | Texp_sequence (_, b) | Texp_let (_, _, b) | Texp_open (_, b) -> tail b
        | Texp_apply (f, _) -> (
          match head_of f with
          | Some (_, comps) when open_kind comps <> None -> Some e.exp_loc
          | _ -> None)
        | _ -> None
      in
      tail c.c_rhs
    | _ -> None)
  | _ -> None

let direct_open e =
  match e.exp_desc with
  | Texp_apply (f, args) when args <> [] -> (
    match head_of f with
    | Some (_, comps) -> (
      match open_kind comps with Some k -> Some (k, e.exp_loc) | None -> None)
    | None -> None)
  | _ -> None

(* [let fd, _addr = Unix.accept ...] - the accepted socket arrives as
   the first component of a pair, so the single-ident resource match
   misses it; the fd ident is the resource. *)
let accept_open e =
  match e.exp_desc with
  | Texp_apply (f, args) when args <> [] -> (
    match head_of f with
    | Some (_, [ "Unix"; "accept" ]) -> Some e.exp_loc
    | Some _ | None -> None)
  | _ -> None

let tuple_fd_pat (p : pattern) =
  match p.pat_desc with
  | Tpat_tuple ({ pat_desc = Tpat_var (id, _); _ } :: _) -> Some id
  | _ -> None

(* Track every let-bound open to a close on all paths.  The per-path
   state is the set of open resources; [escaped] resources (returned,
   stored in a structure, captured by a lambda handed to unknown code)
   leave the analysis silently - their lifetime belongs to the
   surrounding protocol.  A call that can raise while an unprotected
   resource is open records a leak against that resource; the report is
   anchored at the open so the fix site is obvious. *)
let r7_check_binding ctx vb =
  let locals : (string, lsum) Hashtbl.t = Hashtbl.create 8 in
  let res_info : (string, string * string * Location.t) Hashtbl.t = Hashtbl.create 8 in
  let escaped = ref S.empty in
  let leaks : (string, string * int) Hashtbl.t = Hashtbl.create 8 in
  let tracked id = Hashtbl.mem res_info (Ident.unique_name id) in
  let escape id = escaped := S.add (Ident.unique_name id) !escaped in
  let escape_scan e =
    iter_exprs e ~f:(fun e ->
        match e.exp_desc with
        | Texp_ident (Path.Pident id, _, _) when tracked id -> escape id
        | _ -> ())
  in
  let exposed open_ protected = S.diff (S.diff open_ protected) !escaped in
  let record_leaks set ~callee ~line =
    S.iter (fun r -> if not (Hashtbl.mem leaks r) then Hashtbl.add leaks r (callee, line)) set
  in
  let rec walk protected open_ e : S.t option =
    let loc = e.exp_loc in
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) when tracked id ->
      escape id;
      Some open_
    | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_extension_constructor _ ->
      Some open_
    | Texp_unreachable -> None
    | Texp_let (_, vbs, body) ->
      let introduced = ref [] in
      let after =
        List.fold_left
          (fun acc vb ->
            match acc with
            | None -> None
            | Some o ->
              if is_function vb.vb_expr then begin
                summarize ~locals (binding_name vb) vb.vb_expr;
                Some o
              end
              else begin
                let resource =
                  match value_pat_idents vb.vb_pat with
                  | [ id ] -> (
                    match direct_open vb.vb_expr with
                    | Some (kind, oloc) -> Some (id, kind, oloc)
                    | None -> (
                      match aggregate_open vb.vb_expr with
                      | Some oloc -> Some (id, "file descriptors", oloc)
                      | None -> None))
                  | _ -> (
                    match (tuple_fd_pat vb.vb_pat, accept_open vb.vb_expr) with
                    | Some id, Some oloc -> Some (id, "accepted socket", oloc)
                    | _ -> None)
                in
                let o' = walk protected o vb.vb_expr in
                match o' with
                | None -> None
                | Some o' -> (
                  match resource with
                  | Some (id, kind, oloc) ->
                    let r = Ident.unique_name id in
                    Hashtbl.replace res_info r (Ident.name id, kind, oloc);
                    introduced := r :: !introduced;
                    Some (S.add r o')
                  | None -> Some o')
              end)
          (Some open_) vbs
      in
      let result = match after with None -> None | Some o -> walk protected o body in
      List.iter
        (fun r ->
          if not (S.mem r !escaped) then
            match Hashtbl.find_opt res_info r with
            | None -> ()
            | Some (name, kind, oloc) -> (
              match Hashtbl.find_opt leaks r with
              | Some (callee, lline) ->
                report ctx ~rule:"R7" ~loc:oloc
                  "%s %s leaks if %s (line %d) raises before the close; close it from a \
                   Fun.protect finalizer or use a with_open_* combinator"
                  kind name callee lline
              | None -> (
                match result with
                | Some o when S.mem r o ->
                  report ctx ~rule:"R7" ~loc:oloc
                    "%s %s is not closed on every path to the end of its scope" kind name
                | _ -> ())))
        (List.rev !introduced);
      (match result with
      | None -> None
      | Some o -> Some (List.fold_left (fun o r -> S.remove r o) o !introduced))
    | Texp_function _ ->
      escape_scan e;
      Some open_
    | Texp_apply (f, args) -> apply protected open_ loc f args
    | Texp_match (scrut, cases, _) -> (
      match walk protected open_ scrut with
      | None -> None
      | Some o -> merge (List.map (fun c -> walk_case protected o c) cases))
    | Texp_try (body, handlers) ->
      let rb = walk protected open_ body in
      merge (rb :: List.map (fun c -> walk_case protected open_ c) handlers)
    | Texp_ifthenelse (c, t, eo) -> (
      match walk protected open_ c with
      | None -> None
      | Some o ->
        let rt = walk protected o t in
        let re = match eo with Some e -> walk protected o e | None -> Some o in
        merge [ rt; re ])
    | Texp_sequence (a, b) -> (
      match walk protected open_ a with None -> None | Some o -> walk protected o b)
    | Texp_while (c, body) ->
      (match walk protected open_ c with
      | None -> ()
      | Some o -> ignore (walk protected o body));
      Some open_
    | Texp_for (_, _, lo, hi, _, body) ->
      (match walk protected open_ lo with
      | None -> ()
      | Some o -> (
        match walk protected o hi with
        | None -> ()
        | Some o2 -> ignore (walk protected o2 body)));
      Some open_
    | Texp_assert (cond, _) when is_false_construct cond -> None
    | Texp_assert (cond, _) ->
      let ex = exposed open_ protected in
      if not (S.is_empty ex) then record_leaks ex ~callee:"assert" ~line:(line_of loc);
      walk protected open_ cond
    | Texp_tuple es | Texp_array es -> walk_list protected open_ es
    | Texp_construct (_, _, es) -> walk_list protected open_ es
    | Texp_variant (_, eo) -> (
      match eo with Some e -> walk protected open_ e | None -> Some open_)
    | Texp_record { fields; extended_expression; _ } ->
      let start =
        match extended_expression with
        | Some e -> walk protected open_ e
        | None -> Some open_
      in
      Array.fold_left
        (fun acc (_, def) ->
          match (acc, def) with
          | None, _ -> None
          | Some o, Overridden (_, e) -> walk protected o e
          | Some o, Kept _ -> Some o)
        start fields
    | Texp_field (b, _, _) -> walk protected open_ b
    | Texp_setfield (b, _, _, v) -> (
      match walk protected open_ b with None -> None | Some o -> walk protected o v)
    | Texp_lazy _ ->
      escape_scan e;
      Some open_
    | Texp_letmodule (_, _, _, _, body) | Texp_letexception (_, body) | Texp_open (_, body) ->
      walk protected open_ body
    | Texp_letop { let_; ands; body; _ } ->
      let after =
        List.fold_left
          (fun acc bop ->
            match acc with None -> None | Some o -> walk protected o bop.bop_exp)
          (Some open_) (let_ :: ands)
      in
      (match after with
      | None -> None
      | Some o ->
        let ex = exposed o protected in
        if not (S.is_empty ex) then
          record_leaks ex ~callee:"the binding operator (it can short-circuit)"
            ~line:(line_of loc);
        walk protected o body.c_rhs)
    | _ -> Some open_
  and walk_case : type k. S.t -> S.t -> k case -> S.t option =
   fun protected open_ c ->
    let after_guard =
      match c.c_guard with Some g -> walk protected open_ g | None -> Some open_
    in
    (match after_guard with None -> None | Some o -> walk protected o c.c_rhs)
  and walk_list protected open_ es =
    List.fold_left
      (fun acc e -> match acc with None -> None | Some o -> walk protected o e)
      (Some open_) es
  and merge results =
    match List.filter_map Fun.id results with
    | [] -> None
    | first :: rest -> Some (List.fold_left S.union first rest)
  and apply protected open_ loc f args =
    let arg_exprs = List.filter_map snd args in
    match head_of f with
    | None -> walk_list protected open_ (f :: arg_exprs)
    | Some (p, comps) -> (
      match (comps, arg_exprs) with
      | comps, { exp_desc = Texp_ident (Path.Pident id, _, _); _ } :: _
        when close_head comps && tracked id ->
        Some (S.remove (Ident.unique_name id) open_)
      | [ "Array"; "iter" ], [ closer; { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ]
        when tracked id && closer_closes closer ->
        Some (S.remove (Ident.unique_name id) open_)
      | [ "Fun"; "protect" ], _ -> fun_protect protected open_ loc args
      | comps, _ ->
        List.iter
          (fun a ->
            if is_function a then
              if inline_combinator comps then
                (* Descend through currying: [List.iteri (fun i x -> ...)]
                   nests a second Texp_function whose body must still run
                   inline, not count as a capture. *)
                let rec inline e =
                  match e.exp_desc with
                  | Texp_function { cases; _ } -> List.iter (fun c -> inline c.c_rhs) cases
                  | _ -> ignore (walk protected open_ e)
                in
                inline a
              else escape_scan a)
          arg_exprs;
        let after =
          walk_list protected open_
            (List.filter
               (fun a ->
                 (not (is_function a))
                 &&
                 match a.exp_desc with
                 | Texp_ident (Path.Pident id, _, _) -> not (tracked id)
                 | _ -> true)
               arg_exprs)
        in
        (match after with
        | None -> None
        | Some o ->
          let may_raise =
            (not (close_head comps)) && app_may_raise ~locals p comps arg_exprs
          in
          if may_raise then begin
            let ex = exposed o protected in
            if not (S.is_empty ex) then
              record_leaks ex ~callee:(dotted comps) ~line:(line_of loc)
          end;
          if is_raise_head comps then None else Some o))
  and fun_protect protected open_ loc args =
    let finally =
      List.find_map
        (fun (l, a) ->
          match (l, a) with Asttypes.Labelled "finally", Some e -> Some e | _ -> None)
        args
    in
    let thunk =
      List.find_map
        (fun (l, a) -> match (l, a) with Asttypes.Nolabel, Some e -> Some e | _ -> None)
        args
    in
    let fin_closes =
      match finally with
      | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } -> (
        match Hashtbl.find_opt locals (Ident.name id) with
        | Some s -> s.s_closes
        | None -> S.empty)
      | Some fe -> closes_full fe
      | None -> S.empty
    in
    match thunk with
    | Some { exp_desc = Texp_function { cases = [ c ]; _ }; _ } -> (
      match walk (S.union protected fin_closes) open_ c.c_rhs with
      | None -> None
      | Some o -> Some (S.diff o fin_closes))
    | _ ->
      let ex = S.diff (exposed open_ protected) fin_closes in
      if not (S.is_empty ex) then
        record_leaks ex ~callee:"the Fun.protect body" ~line:(line_of loc);
      Some (S.diff open_ fin_closes)
  in
  let rec analyze_root e =
    match e.exp_desc with
    | Texp_function { cases; _ } -> List.iter (fun c -> analyze_root c.c_rhs) cases
    | _ -> ignore (walk S.empty S.empty e)
  in
  analyze_root vb.vb_expr

(* ---------- R1': interprocedural determinism taint ---------- *)

let sorting_head = function
  | [ ("List" | "Array"); ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] -> true
  | _ -> false

(* The same construct list as the syntactic R1 check, including its
   sorted-fold exemption: a Hashtbl.fold/iter in the arguments of a
   List/Array sort produces ordered output and is not a seed. *)
let seed_construct ~in_sort = function
  | [ "Unix"; "gettimeofday" ] -> Some "Unix.gettimeofday"
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Random"; "self_init" ] -> Some "Random.self_init"
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] when not in_sort -> Some ("Hashtbl." ^ fn)
  | _ -> None

let iter_idents_with_sort ~f expr =
  let in_sort = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          match e.exp_desc with
          | Texp_ident (p, _, _) -> f ~in_sort:!in_sort (Callgraph.normalize p) e.exp_loc
          | Texp_apply (fn, _)
            when (match head_of fn with Some (_, c) -> sorting_head c | None -> false) ->
            let saved = !in_sort in
            in_sort := true;
            Tast_iterator.default_iterator.expr sub e;
            in_sort := saved
          | _ -> Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr

(* Call sites of other graph nodes inside a definition, as (target
   index, site) in source order. *)
let resolved_calls graph (d : Callgraph.def) =
  let acc = ref [] in
  iter_exprs d.Callgraph.def_expr ~f:(fun e ->
      match e.exp_desc with
      | Texp_ident (p, _, _) -> (
        match Callgraph.resolve graph ~file:d.Callgraph.def_file p with
        | Some j -> acc := (j, e.exp_loc) :: !acc
        | None -> ())
      | _ -> ());
  List.rev !acc

type taint = {
  t_construct : string;
  t_seed_file : string;
  t_seed_line : int;
  t_path : string list;  (** def keys from this def down to the seed holder *)
  t_site : Location.t option;  (** [None] for the directly-seeded def itself *)
}

(* Seed at direct construct uses, propagate caller-ward over the call
   graph (breadth-first, so the reported chain is a shortest path), and
   report every transitively-tainted definition at its first tainted
   call site.  Seeds inside allowlisted files never start taint at all:
   the allowlist suppresses by root cause, so sanctioned wall-clock use
   (the search deadline) does not indict its callers.  Direct seeds in
   non-allowlisted files are left to the syntactic check, which already
   reports them; the typed layer only adds the Via findings. *)
let r1_taint r1_meta graph =
  let n = Array.length graph.Callgraph.defs in
  let findings = ref [] in
  let uses = ref [] in
  let seeds = Array.make n None in
  Array.iteri
    (fun i (d : Callgraph.def) ->
      match Rules.applicability r1_meta d.Callgraph.def_file with
      | Rules.Out_of_scope -> ()
      | app ->
        iter_idents_with_sort d.Callgraph.def_expr ~f:(fun ~in_sort comps loc ->
            match seed_construct ~in_sort comps with
            | None -> ()
            | Some c -> (
              match app with
              | Rules.Applies -> if seeds.(i) = None then seeds.(i) <- Some (c, loc)
              | Rules.Allowlisted prefix -> uses := ("R1", prefix) :: !uses
              | Rules.Out_of_scope -> ())))
    graph.Callgraph.defs;
  let callers = Array.make n [] in
  Array.iteri
    (fun i (d : Callgraph.def) ->
      List.iter
        (fun (j, site) -> if j <> i then callers.(j) <- (i, site) :: callers.(j))
        (resolved_calls graph d))
    graph.Callgraph.defs;
  Array.iteri (fun j l -> callers.(j) <- List.rev l) callers;
  let taint = Array.make n None in
  let q = Queue.create () in
  Array.iteri
    (fun i seed ->
      match seed with
      | None -> ()
      | Some (c, loc) ->
        taint.(i) <-
          Some
            {
              t_construct = c;
              t_seed_file = graph.Callgraph.defs.(i).Callgraph.def_file;
              t_seed_line = line_of loc;
              t_path = [ graph.Callgraph.defs.(i).Callgraph.def_key ];
              t_site = None;
            };
        Queue.add i q)
    seeds;
  while not (Queue.is_empty q) do
    let j = Queue.pop q in
    match taint.(j) with
    | None -> ()
    | Some t ->
      List.iter
        (fun (i, site) ->
          match taint.(i) with
          | Some _ -> ()
          | None ->
            taint.(i) <-
              Some
                {
                  t with
                  t_path = graph.Callgraph.defs.(i).Callgraph.def_key :: t.t_path;
                  t_site = Some site;
                };
            Queue.add i q)
        callers.(j)
  done;
  Array.iteri
    (fun i t ->
      match t with
      | Some { t_construct; t_seed_file; t_seed_line; t_path; t_site = Some site } -> (
        let d = graph.Callgraph.defs.(i) in
        match Rules.applicability r1_meta d.Callgraph.def_file with
        | Rules.Applies ->
          findings :=
            Finding.make ~rule:"R1" ~severity:Finding.Error ~file:d.Callgraph.def_file
              ~loc:site
              (Printf.sprintf
                 "call path %s reaches %s (seeded at %s:%d); deterministic library code must \
                  not depend on wall-clock or unordered iteration, however indirectly"
                 (String.concat " -> " t_path)
                 t_construct t_seed_file t_seed_line)
            :: !findings
        | Rules.Allowlisted prefix -> uses := ("R1", prefix) :: !uses
        | Rules.Out_of_scope -> ())
      | _ -> ())
    taint;
  (!findings, !uses)

(* ---------- entry point ---------- *)

let analyze (typed : Typed_load.typed_file list) : report =
  let graph = Callgraph.build typed in
  let taint_findings, taint_uses =
    match Rules.find "R1" with
    | Some r1 -> r1_taint r1 graph
    | None -> ([], [])
  in
  let findings = ref taint_findings in
  let uses = ref taint_uses in
  let run_rule rule_id check { Typed_load.file; structure } =
    match Rules.find rule_id with
    | None -> ()
    | Some meta -> (
      match Rules.applicability meta file with
      | Rules.Out_of_scope -> ()
      | app ->
        let ctx = { file; findings = [] } in
        List.iter (fun vb -> check ctx vb) (structure_roots structure);
        if ctx.findings <> [] then (
          match app with
          | Rules.Applies -> findings := ctx.findings @ !findings
          | Rules.Allowlisted prefix -> uses := (rule_id, prefix) :: !uses
          | Rules.Out_of_scope -> ()))
  in
  List.iter
    (fun tf ->
      run_rule "R6" r6_check_binding tf;
      run_rule "R7" r7_check_binding tf)
    typed;
  {
    findings = List.sort_uniq Finding.compare !findings;
    allow_uses = List.sort_uniq compare !uses;
  }
