(** The semantic analyses over typedtrees.

    - R1' interprocedural determinism taint: seed at
      [Unix.gettimeofday] / [Sys.time] / [Random.self_init] / unordered
      [Hashtbl.iter]/[fold] (with the sorted-fold exemption), propagate
      caller-ward over the {!Callgraph}, report each transitively
      tainted definition at its tainted call site.  Seeds inside
      allowlisted files never start taint (the allowlist suppresses by
      root cause); directly-seeded definitions are left to the
      syntactic check.
    - R6 lock discipline ([lib/parallel/]): every [Mutex.lock] released
      on all paths including raises, no double lock, no blocking call
      or raise while a deque/pool mutex is held; [Fun.protect]
      finalizers and [assert false] dead ends are understood.
    - R7 resource lifetime ([lib/]): every let-bound
      [Unix.openfile] / [open_in*] / [open_out*] /
      [In_channel.open_*] / [Out_channel.open_*] (and the
      fd-per-shard [Array.init] aggregate) reaches a close on every
      path; a call that can raise while a resource is open and
      unprotected is a leak.  Escaping resources (returned or stored)
      leave the analysis silently. *)

type report = {
  findings : Finding.t list;
  allow_uses : (string * string) list;  (** (rule id, allow prefix) that suppressed *)
}

val analyze : Typed_load.typed_file list -> report
