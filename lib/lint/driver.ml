type report = {
  findings : Finding.t list;
  files_scanned : int;
  files_typed : int;
  suppressed : int;
}

(* ---------- file walking ---------- *)

(* The analyzer's input is the project source tree: [.ml] under the
   scanned roots, skipping build and VCS artifacts. *)
let scanned_roots = [ "lib"; "bin"; "test" ]
let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let has_suffix suffix s =
  let n = String.length suffix in
  String.length s >= n && String.sub s (String.length s - n) n = suffix

let rec walk root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  match Sys.readdir abs with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then
          if List.mem entry skip_dirs then acc else walk root rel' acc
        else rel' :: acc)
      acc entries

let source_files root =
  let is_dir path = Sys.file_exists path && Sys.is_directory path in
  List.rev
    (List.fold_left
       (fun acc top -> if is_dir (Filename.concat root top) then walk root top acc else acc)
       [] scanned_roots)

(* ---------- parsing ---------- *)

let parse_implementation ~root ~file =
  let src = In_channel.with_open_bin (Filename.concat root file) In_channel.input_all in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let syntax_finding ~file exn =
  let loc =
    match Location.error_of_exn exn with
    | Some (`Ok report) -> report.Location.main.Location.loc
    | _ -> Location.none
  in
  Finding.make ~rule:"P0" ~severity:Finding.Error ~file ~loc
    "file does not parse with the stock OCaml grammar"

(* ---------- R5: interface coverage ---------- *)

let r5_findings files =
  match Rules.find "R5" with
  | None -> []
  | Some meta ->
    List.filter_map
      (fun f ->
        if has_suffix ".ml" f && Rules.applies meta f then
          if List.mem (f ^ "i") files then None
          else
            Some
              (Finding.make ~rule:"R5" ~severity:Finding.Error ~file:f ~loc:Location.none
                 (Printf.sprintf "missing interface file %si: every library module must \
                                  declare its API in a .mli"
                    f))
        else None)
      files

(* ---------- A0: unused allowlist entries ---------- *)

(* Every allowlist entry in the rule book must still earn its keep: an
   entry that suppressed nothing anywhere in this scan is itself a
   finding, so the book cannot accumulate stale exemptions.  Entries
   whose prefix matches no scanned file are out of this scan's
   jurisdiction (fixture trees don't contain the real tree's
   allowlisted modules) and are left alone. *)
let a0_findings ~used ~files =
  List.concat_map
    (fun (meta : Rules.meta) ->
      List.filter_map
        (fun (prefix, why) ->
          if
            List.mem (meta.Rules.id, prefix) used
            || not (List.exists (Rules.prefixed prefix) files)
          then None
          else
            Some
              (Finding.make ~rule:"A0" ~severity:Finding.Error ~file:prefix ~loc:Location.none
                 (Printf.sprintf
                    "unused allowlist entry: rule %s never needed the exemption under %s \
                     (%s); delete the entry from the rule book"
                    meta.Rules.id prefix why)))
        meta.Rules.allow)
    Rules.all

(* ---------- B0: stale baseline entries ---------- *)

(* A baseline entry that matches no current raw finding is grandfather
   debt that has been paid off; it must be deleted (or the run invoked
   with --allow-stale while a transition is in flight). *)
let b0_findings ~baseline ~raw =
  List.filter_map
    (fun (e : Baseline.entry) ->
      if
        List.exists
          (fun (f : Finding.t) ->
            e.Baseline.rule = f.Finding.rule
            && e.Baseline.file = f.Finding.file
            && e.Baseline.message = f.Finding.message)
          raw
      then None
      else
        Some
          (Finding.make ~rule:"B0" ~severity:Finding.Error ~file:e.Baseline.file
             ~loc:Location.none
             (Printf.sprintf
                "stale baseline entry: no current %s finding matches %S; delete the line (or \
                 pass --allow-stale during a transition)"
                e.Baseline.rule e.Baseline.message)))
    baseline

(* ---------- entry point ---------- *)

let run ?(baseline = Baseline.empty) ?(allow_stale = false) ~root () =
  let files = source_files root in
  let ml_files = List.filter (has_suffix ".ml") files in
  let allow_uses = ref [] in
  (* Syntactic layer: every scanned file, graceful on parse failure. *)
  let syntactic =
    List.concat_map
      (fun file ->
        match parse_implementation ~root ~file with
        | structure ->
          let findings, uses = Checks.check_structure ~file structure in
          allow_uses := uses @ !allow_uses;
          findings
        | exception exn -> [ syntax_finding ~file exn ])
      ml_files
  in
  (* Typed layer: library sources only.  Files without a typedtree (no
     cmt and in-process typing failed) silently degrade to the
     syntactic checks above. *)
  let lib_ml = List.filter (Rules.prefixed "lib/") ml_files in
  let loaded = Typed_load.load ~root ~files:lib_ml in
  let semantic = Dataflow.analyze loaded.Typed_load.typed in
  allow_uses := semantic.Dataflow.allow_uses @ !allow_uses;
  let used = List.sort_uniq compare !allow_uses in
  let raw =
    syntactic @ semantic.Dataflow.findings @ r5_findings files
    @ a0_findings ~used ~files:ml_files
  in
  let keep, dropped = List.partition (fun f -> not (Baseline.mem baseline f)) raw in
  let keep = if allow_stale then keep else keep @ b0_findings ~baseline ~raw in
  {
    findings = List.sort Finding.compare keep;
    files_scanned = List.length ml_files;
    files_typed = List.length loaded.Typed_load.typed;
    suppressed = List.length dropped;
  }

(* ---------- rendering ---------- *)

let render_human r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_human f);
      Buffer.add_char b '\n')
    r.findings;
  Buffer.add_string b
    (Printf.sprintf "lint: %d file%s scanned (%d typed), %d finding%s%s\n" r.files_scanned
       (if r.files_scanned = 1 then "" else "s")
       r.files_typed
       (List.length r.findings)
       (if List.length r.findings = 1 then "" else "s")
       (if r.suppressed > 0 then Printf.sprintf " (%d suppressed by baseline)" r.suppressed
        else ""));
  Buffer.contents b

let render_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    r.findings;
  Buffer.add_string b
    (Printf.sprintf "],\"files_scanned\":%d,\"files_typed\":%d,\"suppressed\":%d}\n"
       r.files_scanned r.files_typed r.suppressed);
  Buffer.contents b

(* Minimal SARIF 2.1.0: one run, the rule book as reportingDescriptors,
   one result per finding.  startColumn is 1-based where Finding.col is
   0-based. *)
let render_sarif r =
  let b = Buffer.create 1024 in
  let esc = Finding.json_escape in
  Buffer.add_string b
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",";
  Buffer.add_string b "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tilesched-lint\",\"rules\":[";
  let pseudo =
    [
      ("P0", "parse failure", "the file does not parse with the stock OCaml grammar");
      ("A0", "unused allowlist entry", "an allowlist entry suppressed nothing in this scan");
      ("B0", "stale baseline entry", "a baseline entry matches no current finding");
    ]
  in
  let descriptors =
    List.map (fun (m : Rules.meta) -> (m.Rules.id, m.Rules.title, m.Rules.rationale)) Rules.all
    @ pseudo
  in
  List.iteri
    (fun i (id, title, rationale) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"}}"
           (esc id) (esc title) (esc rationale)))
    descriptors;
  Buffer.add_string b "]}},\"results\":[";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
           (esc f.Finding.rule)
           (Finding.severity_to_string f.Finding.severity)
           (esc f.Finding.message) (esc f.Finding.file) f.Finding.line (f.Finding.col + 1)))
    r.findings;
  Buffer.add_string b "]}]}\n";
  Buffer.contents b
