type report = {
  findings : Finding.t list;
  files_scanned : int;
  suppressed : int;
}

(* ---------- file walking ---------- *)

(* The analyzer's input is the project source tree: [.ml] under the
   scanned roots, skipping build and VCS artifacts. *)
let scanned_roots = [ "lib"; "bin"; "test" ]
let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let has_suffix suffix s =
  let n = String.length suffix in
  String.length s >= n && String.sub s (String.length s - n) n = suffix

let rec walk root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  match Sys.readdir abs with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
        let abs' = Filename.concat root rel' in
        if Sys.is_directory abs' then
          if List.mem entry skip_dirs then acc else walk root rel' acc
        else rel' :: acc)
      acc entries

let source_files root =
  let is_dir path = Sys.file_exists path && Sys.is_directory path in
  List.rev
    (List.fold_left
       (fun acc top -> if is_dir (Filename.concat root top) then walk root top acc else acc)
       [] scanned_roots)

(* ---------- parsing ---------- *)

let parse_implementation ~root ~file =
  let src = In_channel.with_open_bin (Filename.concat root file) In_channel.input_all in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let syntax_finding ~file exn =
  let loc =
    match Location.error_of_exn exn with
    | Some (`Ok report) -> report.Location.main.Location.loc
    | _ -> Location.none
  in
  Finding.make ~rule:"P0" ~severity:Finding.Error ~file ~loc
    "file does not parse with the stock OCaml grammar"

(* ---------- R5: interface coverage ---------- *)

let r5_findings files =
  match Rules.find "R5" with
  | None -> []
  | Some meta ->
    List.filter_map
      (fun f ->
        if has_suffix ".ml" f && Rules.applies meta f then
          if List.mem (f ^ "i") files then None
          else
            Some
              (Finding.make ~rule:"R5" ~severity:Finding.Error ~file:f ~loc:Location.none
                 (Printf.sprintf "missing interface file %si: every library module must \
                                  declare its API in a .mli"
                    f))
        else None)
      files

(* ---------- entry point ---------- *)

let run ?(baseline = Baseline.empty) ~root () =
  let files = source_files root in
  let ml_files = List.filter (has_suffix ".ml") files in
  let raw =
    List.concat_map
      (fun file ->
        match parse_implementation ~root ~file with
        | structure -> Checks.check_structure ~file structure
        | exception exn -> [ syntax_finding ~file exn ])
      ml_files
    @ r5_findings files
  in
  let keep, dropped = List.partition (fun f -> not (Baseline.mem baseline f)) raw in
  {
    findings = List.sort Finding.compare keep;
    files_scanned = List.length ml_files;
    suppressed = List.length dropped;
  }

(* ---------- rendering ---------- *)

let render_human r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_human f);
      Buffer.add_char b '\n')
    r.findings;
  Buffer.add_string b
    (Printf.sprintf "lint: %d file%s scanned, %d finding%s%s\n" r.files_scanned
       (if r.files_scanned = 1 then "" else "s")
       (List.length r.findings)
       (if List.length r.findings = 1 then "" else "s")
       (if r.suppressed > 0 then Printf.sprintf " (%d suppressed by baseline)" r.suppressed
        else ""));
  Buffer.contents b

let render_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    r.findings;
  Buffer.add_string b
    (Printf.sprintf "],\"files_scanned\":%d,\"suppressed\":%d}\n" r.files_scanned r.suppressed);
  Buffer.contents b
