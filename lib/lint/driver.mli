(** The analyzer's entry point: walk a source tree, run the syntactic
    checks over every [.ml] (stock compiler-libs grammar), acquire
    typedtrees for the library sources ({!Typed_load}) and run the
    semantic analyses ({!Dataflow}), then render the findings.

    Pseudo-rules produced here rather than by the rule book:
    - [P0]: a file that does not parse (the scan continues);
    - [A0]: an allowlist entry that suppressed nothing in this scan;
    - [B0]: a baseline entry matching no current finding (suppressed by
      [~allow_stale:true] during transitions). *)

type report = {
  findings : Finding.t list;  (** sorted by file, line, column *)
  files_scanned : int;
  files_typed : int;  (** library sources with a typedtree (cmt or in-process) *)
  suppressed : int;  (** findings swallowed by the baseline *)
}

val scanned_roots : string list
(** Subdirectories of the root that are scanned ([lib], [bin], [test]);
    missing ones are skipped silently. *)

val source_files : string -> string list
(** Every file under the scanned roots (root-relative paths, ['/']
    separated), skipping build/VCS directories.  Deterministic order. *)

val run : ?baseline:Baseline.t -> ?allow_stale:bool -> root:string -> unit -> report
(** Scan the tree rooted at [root].  A file that fails to parse yields a
    single [P0] finding rather than aborting the scan; a library file
    with no typedtree is covered by the syntactic checks only.
    [allow_stale] (default [false]) suppresses [B0] findings for stale
    baseline entries. *)

val render_human : report -> string
(** One [file:line:col: severity[RULE]: message] line per finding plus a
    trailing summary line. *)

val render_json : report -> string
(** The whole report as one JSON object. *)

val render_sarif : report -> string
(** The whole report as a SARIF 2.1.0 log (one run, the rule book as
    reportingDescriptors). *)
