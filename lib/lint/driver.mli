(** The analyzer's entry point: walk a source tree, parse every [.ml]
    with the stock compiler-libs grammar, run the rule book
    ({!Rules.all}) over each file, and render the findings. *)

type report = {
  findings : Finding.t list;  (** sorted by file, line, column *)
  files_scanned : int;
  suppressed : int;  (** findings swallowed by the baseline *)
}

val scanned_roots : string list
(** Subdirectories of the root that are scanned ([lib], [bin], [test]);
    missing ones are skipped silently. *)

val source_files : string -> string list
(** Every file under the scanned roots (root-relative paths, ['/']
    separated), skipping build/VCS directories.  Deterministic order. *)

val run : ?baseline:Baseline.t -> root:string -> unit -> report
(** Scan the tree rooted at [root].  A file that fails to parse yields a
    single [P0] finding rather than aborting the scan. *)

val render_human : report -> string
(** One [file:line:col: severity[RULE]: message] line per finding plus a
    trailing summary line. *)

val render_json : report -> string
(** The whole report as one JSON object. *)
