type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~file ~loc message =
  let pos = loc.Location.loc_start in
  {
    rule;
    severity;
    file;
    (* [Location.none] (file-level findings) carries a dummy position;
       clamp to the file's first character. *)
    line = max 1 pos.Lexing.pos_lnum;
    col = max 0 (pos.Lexing.pos_cnum - pos.Lexing.pos_bol);
    message;
  }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> Stdlib.compare (a.rule, a.message) (b.rule, b.message)
      | c -> c)
    | c -> c)
  | c -> c

let to_human f =
  Printf.sprintf "%s:%d:%d: %s[%s]: %s" f.file f.line f.col (severity_to_string f.severity) f.rule
    f.message

(* Minimal JSON string escaping: the fields we emit are paths, rule ids
   and diagnostic prose, but backslashes, quotes and control characters
   can appear in messages that cite source syntax.  Bytes >= 0x80 pass
   through untouched: the input is UTF-8 and JSON strings carry UTF-8
   verbatim. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message)
