(** A single diagnostic produced by the analyzer. *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. ["R1"] *)
  severity : severity;
  file : string;  (** path relative to the scanned root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val make :
  rule:string -> severity:severity -> file:string -> loc:Location.t -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then column, then rule/message - the
    stable report order. *)

val severity_to_string : severity -> string

val to_human : t -> string
(** [file:line:col: severity[RULE]: message] - one line, clickable in
    editors. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON (or SARIF) string literal:
    quote, backslash and all control characters get escapes; bytes
    above 0x7f pass through (UTF-8 in, UTF-8 out). *)

val to_json : t -> string
(** One JSON object (no trailing newline). *)
