(* Library root: the analyzer's API lives directly on [Lint]
   ([Lint.run] / [Lint.render_human]), with the building blocks exposed
   as submodules. *)

module Finding = Finding
module Rules = Rules
module Checks = Checks
module Baseline = Baseline
module Typed_load = Typed_load
module Callgraph = Callgraph
module Dataflow = Dataflow
module Driver = Driver
include Driver
