(** Project-invariant static analyzer.

    Two layers, no external dependencies beyond compiler-libs:

    {b Syntactic} - parses every [.ml] under [lib/], [bin/], and
    [test/] with the stock grammar and walks the Parsetree:

    - {b R1 determinism (direct)} - no wall-clock ([Sys.time],
      [Unix.gettimeofday]), no [Random.self_init], no unordered
      [Hashtbl.iter]/[Hashtbl.fold] in library code (allowlisted where
      wall-clock is the point: the search deadline and the load
      generator).
    - {b R2 forbidden constructs} - [Obj.magic] and [Marshal] anywhere,
      [exit] outside [bin/].
    - {b R3 task purity} - no mutation of captured state inside closures
      submitted to the [Parallel] fan-out entry points.
    - {b R4 crash safety} - in [lib/store] and [lib/corpus], every
      rename is preceded by an [Unix.fsync] in the same function body.
    - {b R5 interface coverage} - every [lib/**/*.ml] has a matching
      [.mli].

    {b Semantic} - acquires typedtrees for library sources (dune [.cmt]
    artifacts when built, in-process [Typemod] typing otherwise; see
    {!Typed_load}) and runs the flow analyses of {!Dataflow} over
    resolved [Path.t]s:

    - {b R1' determinism (interprocedural)} - taint seeded at the R1
      constructs propagates over the intra-library call graph
      ({!Callgraph}); reaching a seed through any chain of helpers is a
      finding at the call site.  Allowlist entries suppress by root
      cause.
    - {b R6 lock discipline} - in [lib/parallel], every [Mutex.lock] is
      released on all paths including raises, no double lock, no
      blocking call while a deque/pool mutex is held.
    - {b R7 resource lifetime} - in [lib/], every let-bound open
      reaches a close on every path; raising while a descriptor is open
      and unprotected is a leak.

    Unused allowlist entries are reported as [A0], stale baseline
    entries as [B0].  Scoping, allowlists (with justifications), and
    the baseline mechanism are described in DESIGN.md paragraphs 10 and
    15. *)

module Finding = Finding
module Rules = Rules
module Checks = Checks
module Baseline = Baseline
module Typed_load = Typed_load
module Callgraph = Callgraph
module Dataflow = Dataflow
module Driver = Driver

include module type of struct
  include Driver
end
