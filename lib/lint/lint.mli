(** Project-invariant static analyzer.

    Parses every [.ml] under [lib/], [bin/], and [test/] with the stock
    compiler-libs parser (no external dependencies) and walks the
    Parsetree enforcing the project rule book:

    - {b R1 determinism} - no wall-clock ([Sys.time],
      [Unix.gettimeofday]), no [Random.self_init], no unordered
      [Hashtbl.iter]/[Hashtbl.fold] in library code (allowlisted where
      wall-clock is the point: the simulator and the load generator).
    - {b R2 forbidden constructs} - [Obj.magic] and [Marshal] anywhere,
      [exit] outside [bin/].
    - {b R3 task purity} - no mutation of captured state inside closures
      submitted to the [Parallel] fan-out entry points.
    - {b R4 crash safety} - in [lib/store], every rename is preceded by
      an [Unix.fsync] in the same function body.
    - {b R5 interface coverage} - every [lib/**/*.ml] has a matching
      [.mli].

    Scoping, allowlists (with justifications), and the baseline
    mechanism are described in DESIGN.md paragraph 10. *)

module Finding = Finding
module Rules = Rules
module Checks = Checks
module Baseline = Baseline
module Driver = Driver

include module type of struct
  include Driver
end
