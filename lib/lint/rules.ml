type scope = All | Under of string list

type meta = {
  id : string;
  title : string;
  rationale : string;
  scope : scope;
  allow : (string * string) list;
}

(* The project rule book.  Scopes and allowlist entries are path
   prefixes relative to the scanned root, with ['/'] separators; an
   allowlist entry carries its justification so the rule book documents
   itself (and `lint --rules` can print it). *)
let all =
  [
    {
      id = "R1";
      title = "determinism";
      rationale =
        "Search, parallel fan-out and the persistent store promise bit-identical results at \
         every -j; wall-clock reads, self-seeded RNG and unordered Hashtbl iteration break \
         that promise silently.";
      scope = Under [ "lib/" ];
      allow =
        [
          ("lib/netsim/", "the simulator measures wall-clock phenomena by design");
          ("lib/server/engine.ml", "staged search deadlines are real wall-clock budgets");
          ("lib/server/loadgen.ml", "the load generator reports real latency percentiles");
        ];
    };
    {
      id = "R2";
      title = "forbidden constructs";
      rationale =
        "Obj.magic defeats the type system; Marshal bypasses the validating Codec layer that \
         keeps decoders total on mutated wire bytes; exit belongs to the binary, never to a \
         library.";
      scope = All;
      allow = [];
    };
    {
      id = "R3";
      title = "task purity";
      rationale =
        "Closures submitted to the Parallel fan-out entry points run on other domains; \
         mutating state captured from the enclosing scope races and destroys the determinism \
         contract (task i may only write its own result slot).";
      scope = All;
      allow = [];
    };
    {
      id = "R4";
      title = "crash safety";
      rationale =
        "The store's and corpus's atomic-replace protocol is fsync-then-rename; a rename \
         without a preceding fsync in the same function can publish a file whose blocks are \
         still in the page cache, losing the snapshot on power failure.";
      scope = Under [ "lib/store/"; "lib/corpus/" ];
      allow = [];
    };
    {
      id = "R5";
      title = "interface coverage";
      rationale =
        "Every library module must state its API in a .mli: it keeps internals private, makes \
         review diffs meaningful, and is where the determinism contracts are documented.";
      scope = Under [ "lib/" ];
      allow = [];
    };
  ]

let find id = List.find_opt (fun m -> m.id = id) all

let prefixed prefix path =
  String.length path >= String.length prefix && String.sub path 0 (String.length prefix) = prefix

let in_scope meta path =
  match meta.scope with All -> true | Under dirs -> List.exists (fun d -> prefixed d path) dirs

let allowed meta path =
  List.find_map (fun (prefix, why) -> if prefixed prefix path then Some why else None) meta.allow

(* [applies meta path] - in scope and not allowlisted. *)
let applies meta path = in_scope meta path && allowed meta path = None

let describe () =
  String.concat "\n"
    (List.map
       (fun m ->
         let scope =
           match m.scope with All -> "everywhere" | Under dirs -> String.concat ", " dirs
         in
         let allow =
           match m.allow with
           | [] -> ""
           | entries ->
             "\n"
             ^ String.concat "\n"
                 (List.map
                    (fun (prefix, why) -> Printf.sprintf "    allowed in %s: %s" prefix why)
                    entries)
         in
         Printf.sprintf "%s (%s; scope: %s)\n    %s%s" m.id m.title scope m.rationale allow)
       all)
