type scope = All | Under of string list

type meta = {
  id : string;
  title : string;
  rationale : string;
  scope : scope;
  allow : (string * string) list;
}

(* The project rule book.  Scopes and allowlist entries are path
   prefixes relative to the scanned root, with ['/'] separators; an
   allowlist entry carries its justification so the rule book documents
   itself (and `lint --rules` can print it).  Allowlist entries must be
   live: an entry that suppresses nothing anywhere in the tree is
   reported as an A0 finding by the driver, so the book can never
   accumulate stale exemptions. *)
let all =
  [
    {
      id = "R1";
      title = "determinism";
      rationale =
        "Search, parallel fan-out and the persistent store promise bit-identical results at \
         every -j; wall-clock reads, self-seeded RNG and unordered Hashtbl iteration break \
         that promise silently.  The typed layer propagates the same taint over the \
         intra-library call graph, so reaching a seed through any chain of helpers is a \
         finding at the offending call site.";
      scope = Under [ "lib/" ];
      allow =
        [
          ("lib/server/engine.ml", "staged search deadlines are real wall-clock budgets");
          ("lib/server/loadgen.ml", "the load generator reports real latency percentiles");
          ("lib/server/evloop/loop.ml",
           "the event loop's idle timeouts and shutdown grace are real wall-clock budgets, \
            and its connection table is walked through a sorted view");
        ];
    };
    {
      id = "R2";
      title = "forbidden constructs";
      rationale =
        "Obj.magic defeats the type system; Marshal bypasses the validating Codec layer that \
         keeps decoders total on mutated wire bytes; exit belongs to the binary, never to a \
         library.";
      scope = All;
      allow = [];
    };
    {
      id = "R3";
      title = "task purity";
      rationale =
        "Closures submitted to the Parallel fan-out entry points run on other domains; \
         mutating state captured from the enclosing scope races and destroys the determinism \
         contract (task i may only write its own result slot).";
      scope = All;
      allow = [];
    };
    {
      id = "R4";
      title = "crash safety";
      rationale =
        "The store's and corpus's atomic-replace protocol is fsync-then-rename; a rename \
         without a preceding fsync in the same function can publish a file whose blocks are \
         still in the page cache, losing the snapshot on power failure.";
      scope = Under [ "lib/store/"; "lib/corpus/" ];
      allow = [];
    };
    {
      id = "R5";
      title = "interface coverage";
      rationale =
        "Every library module must state its API in a .mli: it keeps internals private, makes \
         review diffs meaningful, and is where the determinism contracts are documented.";
      scope = Under [ "lib/" ];
      allow = [];
    };
    {
      id = "R6";
      title = "lock discipline";
      rationale =
        "The parallel runtime's mutexes guard the deques, the result list and the pool \
         protocol; a lock that is not released on every path (including raises), a double \
         lock of the same mutex, or a blocking call made while holding a deque mutex turns a \
         determinism engine into a deadlock engine.  Locks must be balanced on all paths or \
         released from a Fun.protect finalizer.";
      scope = Under [ "lib/parallel/" ];
      allow = [];
    };
    {
      id = "R7";
      title = "resource lifetime";
      rationale =
        "File descriptors and channels opened by library code must reach a close on every \
         path: a raise between open and close leaks the descriptor, and under the campaign's \
         fd-per-shard append pattern a few leaked bands exhaust the process limit.  Open-use-\
         close sequences that can raise must close from a Fun.protect finalizer (or use the \
         In_channel/Out_channel with_open_* combinators, which are safe by construction).  \
         Sockets are descriptors too: every Unix.socket and Unix.accept in the server stack \
         must reach Unix.close, or a few thousand abrupt client disconnects exhaust the \
         daemon's fd limit.";
      scope = Under [ "lib/" ];
      allow = [];
    };
  ]

let find id = List.find_opt (fun m -> m.id = id) all

let prefixed prefix path =
  String.length path >= String.length prefix && String.sub path 0 (String.length prefix) = prefix

let in_scope meta path =
  match meta.scope with All -> true | Under dirs -> List.exists (fun d -> prefixed d path) dirs

let allowed meta path =
  List.find_map (fun (prefix, why) -> if prefixed prefix path then Some why else None) meta.allow

(* Three-way applicability, so callers can tell "suppressed by an
   allowlist entry" (which must be recorded as a use of that entry) from
   "out of scope" (nothing to record). *)
type applicability = Applies | Allowlisted of string | Out_of_scope

let applicability meta path =
  if not (in_scope meta path) then Out_of_scope
  else
    match
      List.find_map (fun (prefix, _) -> if prefixed prefix path then Some prefix else None)
        meta.allow
    with
    | Some prefix -> Allowlisted prefix
    | None -> Applies

(* [applies meta path] - in scope and not allowlisted. *)
let applies meta path = in_scope meta path && allowed meta path = None

let describe () =
  String.concat "\n"
    (List.map
       (fun m ->
         let scope =
           match m.scope with All -> "everywhere" | Under dirs -> String.concat ", " dirs
         in
         let allow =
           match m.allow with
           | [] -> ""
           | entries ->
             "\n"
             ^ String.concat "\n"
                 (List.map
                    (fun (prefix, why) -> Printf.sprintf "    allowed in %s: %s" prefix why)
                    entries)
         in
         Printf.sprintf "%s (%s; scope: %s)\n    %s%s" m.id m.title scope m.rationale allow)
       all)
