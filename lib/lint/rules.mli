(** The project rule book: ids, severities, scopes and per-directory
    allowlists for every rule the analyzer enforces.  See DESIGN.md
    paragraph 10 for the prose version. *)

type scope =
  | All  (** every scanned file *)
  | Under of string list  (** only files under these path prefixes *)

type meta = {
  id : string;  (** stable id cited in diagnostics and baselines (["R1"]..["R7"]) *)
  title : string;
  rationale : string;
  scope : scope;
  allow : (string * string) list;
      (** (path prefix, justification) pairs exempt from the rule *)
}

val all : meta list
val find : string -> meta option

val prefixed : string -> string -> bool
(** [prefixed prefix path]: does [path] start with [prefix]? *)

val in_scope : meta -> string -> bool
(** Is the (root-relative) path inside the rule's scope? *)

val allowed : meta -> string -> string option
(** The allowlist justification covering this path, if any. *)

val applies : meta -> string -> bool
(** [in_scope] and not [allowed]. *)

type applicability =
  | Applies  (** in scope, no allowlist entry covers the path *)
  | Allowlisted of string
      (** suppressed by the allowlist entry with this prefix; callers
          must record the use so unused entries can be reported (A0) *)
  | Out_of_scope

val applicability : meta -> string -> applicability

val describe : unit -> string
(** Human-readable rule book (for [lint --rules]). *)
