(* Getting typedtrees for the scanned sources.

   Two roads lead to a [Typedtree.structure]:

   - [.cmt] files.  Dune compiles everything with [-bin-annot], so a
     built tree carries a cmt per module under [.<lib>.objs/byte/];
     [Cmt_format.read_cmt] hands back the full typedtree plus the
     root-relative source path it was compiled from.  This is the
     production road: it sees exactly what the compiler saw, wrapped
     library aliases and all.

   - In-process typechecking.  Throwaway fixture trees (the test suite
     builds them in temp dirs) have no build artifacts, so we drive
     [Typemod.type_structure] ourselves against an initial environment
     that can see the stdlib and the unix library.  Fixture files may
     reference each other by module name: typing runs in passes, and
     every successfully-typed module's signature is added to the
     environment (as a plain module, not a persistent unit) so later
     passes can resolve it.

   A file that types through neither road is reported as [Untyped]; the
   driver falls back to the purely syntactic checks for it, so the
   analyzer degrades gracefully on trees that do not build. *)

type typed_file = { file : string; structure : Typedtree.structure }

type result = {
  typed : typed_file list;  (** sorted by file path *)
  untyped : string list;  (** scanned files with no typedtree *)
}

(* ---------- cmt discovery ---------- *)

let is_dir path = Sys.file_exists path && Sys.is_directory path

(* Collect every [*.cmt] under [.objs] directories below [root].  Dune
   hides them in [lib/<x>/.<lib>.objs/byte/]; we walk only one level of
   hidden obj dirs per library directory to keep the scan cheap. *)
let cmt_files root =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if is_dir path then
            if Filename.check_suffix entry ".objs" then begin
              let byte = Filename.concat path "byte" in
              if is_dir byte then
                match Sys.readdir byte with
                | exception Sys_error _ -> ()
                | files ->
                  Array.sort String.compare files;
                  Array.iter
                    (fun f ->
                      if Filename.check_suffix f ".cmt" then
                        acc := Filename.concat byte f :: !acc)
                    files
            end
            else if entry <> ".git" && entry <> "node_modules" then walk path)
        entries
  in
  (* Look under the root itself (the case when root *is* a dune build
     tree, e.g. _build/default during `dune runtest`) and under its
     _build/default (the case when root is the workspace). *)
  walk (Filename.concat root "lib");
  let build = Filename.concat (Filename.concat root "_build") "default" in
  if is_dir build then walk (Filename.concat build "lib");
  List.rev !acc

let load_cmt_map root =
  List.fold_left
    (fun map path ->
      match Cmt_format.read_cmt path with
      | exception _ -> map
      | cmt -> (
        match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
        | Some src, Cmt_format.Implementation structure ->
          (* [src] is relative to the compilation root, which for dune
             is the build context dir - i.e. exactly our root-relative
             source path. *)
          if List.mem_assoc src map then map else (src, structure) :: map
        | _ -> map)
      )
    [] (cmt_files root)

(* ---------- in-process typechecking ---------- *)

let typing_initialized = ref false

let init_typing () =
  if not !typing_initialized then begin
    typing_initialized := true;
    (* The fixtures may use Unix; point the load path at the compiler's
       own unix library next to the stdlib. *)
    let unix_dir = Filename.concat Config.standard_library "unix" in
    Clflags.include_dirs := (if is_dir unix_dir then [ unix_dir ] else []);
    (* The analyzer reports its own findings; compiler warnings about
       fixture code are noise. *)
    ignore (Warnings.parse_options false "-a");
    Compmisc.init_path ()
  end

let parse_implementation ~root ~file =
  let src = In_channel.with_open_bin (Filename.concat root file) In_channel.input_all in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Type the given parsed files in passes: every success extends the
   environment with the module's signature under its unit name, so
   files referencing a sibling module type once the sibling has.  Files
   still failing when a full pass makes no progress stay untyped. *)
let type_in_process parsed =
  init_typing ();
  let env0 = Compmisc.initial_env () in
  let typed = ref [] in
  let pending = ref parsed in
  let env = ref env0 in
  let progress = ref true in
  while !progress && !pending <> [] do
    progress := false;
    pending :=
      List.filter
        (fun (file, structure) ->
          match Typemod.type_structure !env structure with
          | exception _ -> true
          | tstr, sg, _names, _shape, _env' ->
            typed := { file; structure = tstr } :: !typed;
            env :=
              Env.add_module
                (Ident.create_persistent (module_name_of_file file))
                Types.Mp_present (Types.Mty_signature sg) !env;
            progress := true;
            false)
        !pending
  done;
  (List.rev !typed, List.map fst !pending)

(* ---------- entry point ---------- *)

let load ~root ~files =
  let cmts = load_cmt_map root in
  let from_cmt, missing =
    List.partition_map
      (fun file ->
        match List.assoc_opt file cmts with
        | Some structure -> Left { file; structure }
        | None -> Right file)
      files
  in
  let from_typing, untyped =
    let parsed =
      List.filter_map
        (fun file ->
          match parse_implementation ~root ~file with
          | structure -> Some (file, structure)
          | exception _ -> None)
        missing
    in
    let unparsed = List.filter (fun f -> not (List.mem_assoc f parsed)) missing in
    let typed, failed = type_in_process parsed in
    (typed, failed @ unparsed)
  in
  let typed =
    List.sort (fun a b -> String.compare a.file b.file) (from_cmt @ from_typing)
  in
  { typed; untyped = List.sort String.compare untyped }
