(** Typedtree acquisition for the semantic analyses.

    Prefers the [.cmt] files a dune build leaves under
    [lib/<x>/.<lib>.objs/byte/] (read via [Cmt_format]); files without
    one are parsed and typed in-process against an environment seeded
    with the stdlib and unix, with successfully-typed fixture modules
    added to the environment under their unit names so sibling fixtures
    can reference them.  Files that type through neither road come back
    in [untyped] and are covered by the syntactic checks only. *)

type typed_file = { file : string; structure : Typedtree.structure }

type result = {
  typed : typed_file list;  (** sorted by file path *)
  untyped : string list;  (** scanned files with no typedtree *)
}

val load : root:string -> files:string list -> result
(** [load ~root ~files] resolves a typedtree for each root-relative
    [.ml] path in [files]. *)

val module_name_of_file : string -> string
(** ["lib/corpus/campaign.ml"] -> ["Campaign"]: the unit name used for
    cross-module resolution. *)
