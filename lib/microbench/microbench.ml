open Lattice

type row = { name : string; ns_per_call : float }

let staircase k =
  (* Exact staircase polyomino with ~4k+2 boundary letters. *)
  let cells =
    List.concat_map
      (fun i -> [ Zgeom.Vec.make2 i i; Zgeom.Vec.make2 i (i + 1) ])
      (List.init k Fun.id)
    @ [ Zgeom.Vec.make2 k k ]
  in
  Prototile.of_cells_anchored cells

let cross n =
  if n < 2 then invalid_arg "Microbench.cross: n must be at least 2";
  let cells =
    List.init n (fun j -> Zgeom.Vec.make2 0 j) @ List.init (n - 1) (fun i -> Zgeom.Vec.make2 (i + 1) 0)
  in
  Prototile.of_cells cells

(* Any two torus translates of the cross intersect (their row and column
   arms cannot both miss), so a cover uses at most one cross; with the
   monomino alongside there are exactly 1 + n^2 covers, and all but
   2n - 1 of them put a monomino on cell 0.  Cell selection is
   symmetric, so the branch share is exactly that cover share. *)
let skew_instance ~n =
  let period = Sublattice.of_basis [| [| n; 0 |]; [| 0; n |] |] in
  let mono = Prototile.of_cells [ Zgeom.Vec.zero 2 ] in
  (period, [ cross n; mono ])

let skew_root_share ~n =
  let period, prototiles = skew_instance ~n in
  let pool = Parallel.create ~jobs:1 in
  let zero = Zgeom.Vec.zero 2 in
  let mono_at_zero mt =
    List.exists
      (fun pc ->
        Prototile.size pc.Tiling.Multi.tile = 1
        && List.exists
             (fun o -> Zgeom.Vec.equal (Sublattice.reduce period o) zero)
             pc.Tiling.Multi.piece_offsets)
      (Tiling.Multi.pieces mt)
  in
  let total = Tiling.Search.count_torus_covers ~period ~prototiles ~pool () in
  let fat =
    List.length
      (Tiling.Search.cover_torus ~period ~prototiles ~max_solutions:max_int ~keep:mono_at_zero
         ~pool ())
  in
  float fat /. float total

let required =
  [
    "torus-all-backtracking";
    "torus-all-dlx";
    "torus-all-bitmask";
    "torus-mat-backtracking";
    "torus-mat-dlx";
    "torus-mat-bitmask";
  ]

let required_skew = [ "skew-seq-j1"; "skew-static-j4"; "skew-steal-j4" ]

let run_tests ~quota tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    List.sort Stdlib.compare (Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [])
  in
  List.filter_map
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> Some { name; ns_per_call = est }
      | _ -> None)
    rows

let run_skew ?(quota = 0.5) () =
  if quota <= 0.0 then invalid_arg "Microbench.run_skew: quota must be positive";
  let open Bechamel in
  (* n = 28: 785 covers, 93% of them under the single monomino-at-zero
     root branch (EXP-P3), at a sequential count cost small enough for
     the CI smoke run. *)
  let period, prototiles = skew_instance ~n:28 in
  let pool1 = Parallel.create ~jobs:1 in
  let pool4 = Parallel.create ~jobs:4 in
  let count pool sched () =
    Tiling.Search.count_torus_covers ~period ~prototiles ~pool ~sched ()
  in
  let tests =
    Test.make_grouped ~name:"skew"
      [
        Test.make ~name:"skew-seq-j1" (Staged.stage (count pool1 `Static));
        Test.make ~name:"skew-static-j4" (Staged.stage (count pool4 `Static));
        Test.make ~name:"skew-steal-j4" (Staged.stage (count pool4 `Steal));
      ]
  in
  Fun.protect
    ~finally:(fun () ->
      Parallel.shutdown pool1;
      Parallel.shutdown pool4)
    (fun () -> run_tests ~quota tests)

let required_lifetime = [ "lifetime-static"; "lifetime-rotate"; "repair-solve" ]

(* The EXP-L1 instance: I-tetromino rows on an 8x8 grid, leaders paying a
   +1.0/slot surcharge against a 30-unit battery.  Deterministic, so the
   lifetime-* rows are exact slot counts, not estimates. *)
let lifetime_instance ~classes ~epochs ~policy =
  let period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |] in
  let covers =
    Tiling.Search.distinct_torus_covers ~period ~prototiles:[ Prototile.tetromino `I ]
      ~max_classes:classes ()
  in
  match
    Lifetime.Rotation.make ~covers:(Lifetime.Rotation.balance covers) ~epoch:4 ~epochs ~policy
  with
  | Ok rot -> rot
  | Error e -> invalid_arg ("Microbench.lifetime_instance: " ^ e)

let lifetime_first_death rot =
  let duration = 1200 in
  let cfg =
    { (Netsim.Sim.default_config ~mac:(Lifetime.Rotation.mac rot)) with
      width = 8;
      height = 8;
      prototile = Prototile.tetromino `I;
      duration;
      workload = Netsim.Workload.Periodic { interval = 40 };
      faults =
        {
          Netsim.Faults.none with
          Netsim.Faults.battery = Some 30.0;
          extra_cost = Some (Lifetime.Rotation.extra_cost rot ~leader_cost:1.0);
        };
    }
  in
  match Netsim.Sim.first_death (Netsim.Sim.run cfg) with
  | Some t -> float_of_int t
  | None -> float_of_int duration

let run_lifetime ?(quota = 0.5) () =
  if quota <= 0.0 then invalid_arg "Microbench.run_lifetime: quota must be positive";
  let open Bechamel in
  let static = lifetime_instance ~classes:1 ~epochs:1 ~policy:Lifetime.Rotation.Round_robin in
  let rotate =
    lifetime_instance ~classes:4 ~epochs:12 ~policy:Lifetime.Rotation.Least_depleted_first
  in
  let slot_rows =
    [
      { name = "lifetime-static-first-death-slots"; ns_per_call = lifetime_first_death static };
      { name = "lifetime-rotate-4-first-death-slots"; ns_per_call = lifetime_first_death rotate };
    ]
  in
  let deployment = Sublattice.of_basis [| [| 8; 0 |]; [| 0; 8 |] |] in
  let repair tile =
    let base = Option.get (Tiling.Search.find_tiling tile) in
    let dead = List.hd (Tiling.Single.offsets base) in
    fun () ->
      match Lifetime.Repair.repair ~deployment base ~dead with
      | Ok r -> r
      | Error e -> invalid_arg ("Microbench.run_lifetime: repair failed: " ^ e)
  in
  let tests =
    Test.make_grouped ~name:"lifetime"
      [
        (* Minimal window (one wrapped row, 8 cells) vs one-ring growth
           (56 cells): the repair-latency-vs-window-size comparison of
           EXP-L1. *)
        Test.make ~name:"repair-solve-itet-row8" (Staged.stage (repair (Prototile.tetromino `I)));
        Test.make ~name:"repair-solve-stet-ring1" (Staged.stage (repair (Prototile.tetromino `S)));
      ]
  in
  List.sort Stdlib.compare (run_tests ~quota tests @ slot_rows)

let required_corpus =
  [
    "corpus-mmap-find-warm";
    "corpus-store-find-warm";
    "corpus-mmap-coldstart-find";
    "corpus-store-coldstart-find";
  ]

(* The EXP-CORPUS instance: the full n <= 7 corpus (164 canonical classes)
   built fresh in a temp directory, next to a certificate store holding
   the same verdicts (written straight from the BN decisions, no
   search).  The warm rows compare one [find] against each resident
   tier; the coldstart rows open the tier, find one key, and close it -
   the store replays and re-validates its whole log before the first
   answer, the snapshot just mmaps, which is the asymmetry the corpus
   subsystem exists to exploit. *)
let corpus_bench_max_n = 7

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let run_corpus ?(quota = 0.5) () =
  if quota <= 0.0 then invalid_arg "Microbench.run_corpus: quota must be positive";
  let open Bechamel in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tilesched-corpus-bench-%d" (Unix.getpid ()))
  in
  let corpus_dir = Filename.concat root "corpus" in
  let store_path = Filename.concat root "store.log" in
  let clean () =
    rm_rf corpus_dir;
    rm_rf root
  in
  clean ();
  Unix.mkdir root 0o755;
  Fun.protect ~finally:clean (fun () ->
      (match Corpus.Campaign.run ~dir:corpus_dir ~max_n:corpus_bench_max_n () with
      | Ok _ -> ()
      | Error e -> invalid_arg ("Microbench.run_corpus: " ^ e));
      let keys = ref [] in
      let store = Store.open_ store_path in
      Polyomino.enumerate_free_iter ~max_area:corpus_bench_max_n (fun ~area:_ tile ->
          let key = Store.key_of_prototile tile in
          keys := key :: !keys;
          Store.put store key
            (match Corpus.Campaign.decide tile with
            | Corpus.Campaign.Non_exact -> Store.No_tiling
            | Corpus.Campaign.Exact { tiling; certificate } ->
              Store.Found { tiling; certificate }));
      Store.close store;
      let keys = Array.of_list (List.rev !keys) in
      let snap =
        match Corpus.Snapshot.open_ corpus_dir with
        | Ok s -> s
        | Error e -> invalid_arg ("Microbench.run_corpus: " ^ e)
      in
      let store = Store.open_ store_path in
      let i = ref 0 in
      let next () =
        let k = keys.(!i) in
        i := (!i + 1) mod Array.length keys;
        k
      in
      let probe = keys.(Array.length keys / 2) in
      let tests =
        Test.make_grouped ~name:"corpus"
          [
            Test.make ~name:"corpus-mmap-find-warm"
              (Staged.stage (fun () -> Corpus.Snapshot.find snap (next ())));
            Test.make ~name:"corpus-store-find-warm"
              (Staged.stage (fun () -> Store.find store (next ())));
            Test.make ~name:"corpus-mmap-coldstart-find"
              (Staged.stage (fun () ->
                   match Corpus.Snapshot.open_ corpus_dir with
                   | Ok s -> Corpus.Snapshot.find s probe
                   | Error e -> invalid_arg e));
            Test.make ~name:"corpus-store-coldstart-find"
              (Staged.stage (fun () ->
                   let s = Store.open_ store_path in
                   let r = Store.find s probe in
                   Store.close s;
                   r));
          ]
      in
      let rows = run_tests ~quota tests in
      Store.close store;
      rows)

let required_server =
  [
    "server-text-warm-rps";
    "server-binary-warm-rps";
    "server-binary-vs-text-speedup";
    "server-open-10k-p50-us";
    "server-open-10k-p95-us";
    "server-open-10k-p99-us";
    "server-open-10k-dropped";
  ]

(* Every tile has area <= 5, so each canonical class is resident in the
   n <= 5 corpus the suite builds: every tile-search is a warm mmap
   hit, the workload the zero-copy splice path exists for.  The tiles
   are pre-canonicalized so both dialects take their splice road (the
   text engine's [Tiling_raw_r] and the loop-thread iovec path both
   require the request orientation to be the stored canonical one). *)
let server_small_tiles =
  List.map
    (fun (name, tile) -> (name, Symmetry.canonical tile))
    [ ("tet-S", Prototile.tetromino `S);
      ("tet-Z", Prototile.tetromino `Z);
      ("tet-L", Prototile.tetromino `L);
      ("tet-J", Prototile.tetromino `J);
      ("tet-T", Prototile.tetromino `T);
      ("tet-I", Prototile.tetromino `I);
      ("tet-O", Prototile.tetromino `O);
      ("rect2x2", Prototile.rect 2 2);
      ("pent-P", Prototile.pentomino `P);
      ("pent-L", Prototile.pentomino `L);
      ("pent-I", Prototile.pentomino `I);
      ("pent-X", Prototile.pentomino `X) ]

let run_server ?(quota = 0.5) ~exe () =
  if quota <= 0.0 then invalid_arg "Microbench.run_server: quota must be positive";
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tilesched-server-bench-%d" (Unix.getpid ()))
  in
  let corpus_dir = Filename.concat root "corpus" in
  let sock = Filename.concat root "server.sock" in
  let clean () =
    rm_rf corpus_dir;
    rm_rf root
  in
  clean ();
  Unix.mkdir root 0o755;
  Fun.protect ~finally:clean (fun () ->
      (match Corpus.Campaign.run ~dir:corpus_dir ~max_n:5 () with
      | Ok _ -> ()
      | Error e -> invalid_arg ("Microbench.run_server: " ^ e));
      let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let pid =
        Unix.create_process exe
          [| exe; "serve"; "-s"; sock; "--corpus"; corpus_dir; "--cache"; "1024" |]
          null null Unix.stderr
      in
      Unix.close null;
      (* The socket file appearing means bind has happened; a successful
         probe connect means listen has too. *)
      let rec await n =
        let ready =
          Sys.file_exists sock
          &&
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_UNIX sock) with
          | () ->
            Unix.close fd;
            true
          | exception Unix.Unix_error _ ->
            Unix.close fd;
            false
        in
        if ready then ()
        else if n = 0 then invalid_arg "Microbench.run_server: server did not come up"
        else begin
          ignore (Unix.select [] [] [] 0.05);
          await (n - 1)
        end
      in
      await 200;
      let reaped = ref false in
      Fun.protect
        ~finally:(fun () ->
          if not !reaped then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
          end)
        (fun () ->
          let n = max 1_000 (int_of_float (quota *. 10_000.)) in
          let config =
            { Server.Loadgen.default with
              requests = n;
              clients = 32;
              tiles = server_small_tiles;
              ops = `Search_only }
          in
          (* Untimed warmup: fault in the corpus mmap, fill the
             server's payload memo and settle allocator state, so the
             measured runs compare steady states rather than cold
             starts. *)
          let warmup = { config with requests = 1_000 } in
          let (_ : Server.Loadgen.report) =
            Server.Frontend.with_connection ~path:sock (fun send ->
                Server.Loadgen.run_with ~send warmup)
          in
          let (_ : Server.Loadgen.report) =
            Server.Frontend.with_binary_connection ~path:sock (fun send ->
                Server.Loadgen.run_binary ~send warmup)
          in
          let text : Server.Loadgen.report =
            Server.Frontend.with_connection ~path:sock (fun send ->
                Server.Loadgen.run_with ~send config)
          in
          let binary : Server.Loadgen.report =
            Server.Frontend.with_binary_connection ~path:sock (fun send ->
                Server.Loadgen.run_binary ~send config)
          in
          let open_cfg =
            { Server.Loadgen.open_default with
              connections = 10_000;
              total = 20_000;
              binary = true;
              tiles = server_small_tiles;
              ops = `Search_only;
              send_shutdown = true }
          in
          let open_r = Server.Loadgen.run_open ~path:sock open_cfg in
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          reaped := true;
          let lat = open_r.Server.Loadgen.latency in
          List.sort Stdlib.compare
            [
              { name = "server-text-warm-rps"; ns_per_call = text.Server.Loadgen.throughput };
              { name = "server-binary-warm-rps";
                ns_per_call = binary.Server.Loadgen.throughput };
              { name = "server-binary-vs-text-speedup";
                ns_per_call =
                  (if text.Server.Loadgen.throughput > 0.0 then
                     binary.Server.Loadgen.throughput /. text.Server.Loadgen.throughput
                   else 0.0) };
              { name = "server-open-10k-p50-us"; ns_per_call = lat.Netsim.Stats.p50_latency };
              { name = "server-open-10k-p95-us"; ns_per_call = lat.Netsim.Stats.p95_latency };
              { name = "server-open-10k-p99-us"; ns_per_call = lat.Netsim.Stats.p99_latency };
              { name = "server-open-10k-dropped";
                ns_per_call = float_of_int open_r.Server.Loadgen.dropped };
            ]))

let run ?(quota = 0.5) () =
  if quota <= 0.0 then invalid_arg "Microbench.run: quota must be positive";
  let open Bechamel in
  let cheb2 = Prototile.chebyshev_ball ~dim:2 2 in
  let cheb2_tiling = Option.get (Tiling.Search.find_tiling cheb2) in
  let cheb2_sched = Core.Schedule.of_tiling cheb2_tiling in
  let cheb1 = Prototile.chebyshev_ball ~dim:2 1 in
  let cheb1_tiling = Option.get (Tiling.Search.find_tiling cheb1) in
  let staircase_word = Polyomino.boundary_word (staircase 20) in
  let period = Tiling.Single.period cheb2_tiling in
  let probe = Zgeom.Vec.make2 123 (-456) in
  let sz_period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |] in
  let s_tet = Prototile.tetromino `S and z_tet = Prototile.tetromino `Z in
  (* EXP-P2 workload: S/Z tetrominoes on the 4x8 torus, all 1024
     solutions, sequentially (jobs = 1).  [torus-all-*] is pure
     enumeration through {!Tiling.Search.count_torus_covers} - the
     engine comparison proper; [torus-mat-*] is the end-to-end
     materializing search, whose engines share the [Multi.t]
     construction and retention cost (the Amdahl floor EXP-P2
     documents). *)
  let sz48_period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 8 |] |] in
  let seq_pool = Parallel.create ~jobs:1 in
  let torus_all engine () =
    Tiling.Search.count_torus_covers ~period:sz48_period ~prototiles:[ s_tet; z_tet ] ~engine
      ~pool:seq_pool ()
  in
  let torus_mat engine () =
    Tiling.Search.cover_torus ~period:sz48_period ~prototiles:[ s_tet; z_tet ]
      ~max_solutions:max_int ~engine ~pool:seq_pool ()
  in
  let g8, _ = Coloring.Graph.lattice_window ~prototile:cheb1 ~width:8 ~height:8 in
  let sim_cfg =
    { (Netsim.Sim.default_config
         ~mac:(Netsim.Mac.lattice_tdma (Core.Schedule.of_tiling cheb1_tiling)))
      with width = 10; height = 10; prototile = cheb1; duration = 100 }
  in
  let tests =
    Test.make_grouped ~name:"tilesched"
      [
        Test.make ~name:"bn-exactness-staircase20"
          (Staged.stage (fun () -> Boundary_word.find_factorization staircase_word));
        Test.make ~name:"boundary-word-cheb2"
          (Staged.stage (fun () -> Polyomino.boundary_word cheb2));
        Test.make ~name:"lattice-tilings-cheb2"
          (Staged.stage (fun () -> Tiling.Search.lattice_tilings cheb2));
        Test.make ~name:"schedule-of-tiling-cheb2"
          (Staged.stage (fun () -> Core.Schedule.of_tiling cheb2_tiling));
        Test.make ~name:"slot-at" (Staged.stage (fun () -> Core.Schedule.slot_at cheb2_sched probe));
        Test.make ~name:"coset-reduce" (Staged.stage (fun () -> Sublattice.reduce period probe));
        Test.make ~name:"collision-check-cheb1"
          (Staged.stage (fun () ->
               Core.Collision.is_collision_free_theorem1 cheb1_tiling
                 (Core.Schedule.of_tiling cheb1_tiling)));
        Test.make ~name:"torus-search-SZ-first"
          (Staged.stage (fun () ->
               Tiling.Search.cover_torus ~period:sz_period ~prototiles:[ s_tet; z_tet ]
                 ~max_solutions:1 ()));
        Test.make ~name:"torus-all-backtracking" (Staged.stage (torus_all `Backtracking));
        Test.make ~name:"torus-all-dlx" (Staged.stage (torus_all `Dlx));
        Test.make ~name:"torus-all-bitmask" (Staged.stage (torus_all `Bitmask));
        Test.make ~name:"torus-mat-backtracking" (Staged.stage (torus_mat `Backtracking));
        Test.make ~name:"torus-mat-dlx" (Staged.stage (torus_mat `Dlx));
        Test.make ~name:"torus-mat-bitmask" (Staged.stage (torus_mat `Bitmask));
        Test.make ~name:"certificate-check-cheb1"
          (Staged.stage
             (let cert = Core.Certificate.build cheb1_tiling in
              fun () -> Core.Certificate.check cert));
        Test.make ~name:"dsatur-8x8" (Staged.stage (fun () -> Coloring.Dsatur.color g8));
        Test.make ~name:"sim-100-slots-10x10" (Staged.stage (fun () -> Netsim.Sim.run sim_cfg));
      ]
  in
  run_tests ~quota tests

(* ------------------------------------------------------------------ *)
(* JSON artifact                                                       *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n  {\"name\": \"%s\", \"ns_per_call\": %.3f}" (escape r.name)
           r.ns_per_call))
    rows;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* A strict recursive-descent parser for exactly the shape [to_json]
   emits (plus whitespace and key-order freedom), hand-rolled because
   the dependency budget has no JSON library.  Strictness is the point:
   the artifact is machine-diffed, so anything unexpected is an error,
   not something to skip over. *)
exception Bad of string

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let validate_json ?(required = required) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents buf
      | '\\' ->
        incr pos;
        (if !pos >= n then fail "truncated escape"
         else
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | _ -> fail "unsupported escape");
        incr pos;
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    let numeric = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while !pos < n && numeric s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let parse_row () =
    expect '{';
    let name = ref None and ns = ref None in
    let parse_field () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      match key with
      | "name" -> (
        match !name with
        | Some _ -> fail "duplicate \"name\" key"
        | None ->
          skip_ws ();
          name := Some (parse_string ()))
      | "ns_per_call" -> (
        match !ns with
        | Some _ -> fail "duplicate \"ns_per_call\" key"
        | None ->
          let v = parse_number () in
          if not (v >= 0.0) then fail "ns_per_call must be a non-negative number";
          ns := Some v)
      | k -> fail (Printf.sprintf "unexpected key %S" k)
    in
    parse_field ();
    expect ',';
    parse_field ();
    expect '}';
    match (!name, !ns) with
    | Some name, Some ns_per_call -> { name; ns_per_call }
    | _ -> fail "row must have both \"name\" and \"ns_per_call\""
  in
  try
    expect '[';
    skip_ws ();
    let rows =
      if peek () = Some ']' then begin
        incr pos;
        []
      end
      else begin
        let acc = ref [ parse_row () ] in
        let continue = ref true in
        while !continue do
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            acc := parse_row () :: !acc
          | _ -> continue := false
        done;
        expect ']';
        List.rev !acc
      end
    in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after array";
    let missing =
      List.filter
        (fun req -> not (List.exists (fun r -> contains_substring r.name req) rows))
        required
    in
    if missing <> [] then Error ("missing required benchmark rows: " ^ String.concat ", " missing)
    else Ok rows
  with Bad msg -> Error msg
