(** Bechamel micro-benchmarks of the core machinery, shared between the
    experiment harness ([bench/main.exe]) and the [tilesched bench]
    subcommand.

    The suite pins one workload per hot subsystem (boundary-word
    factorization, torus exact cover under each {!Tiling.Search.engine},
    schedule lookup, coloring, simulation, ...) and reports an OLS
    estimate of nanoseconds per call.  Rows serialize to the
    [BENCH_5.json] artifact - a JSON array of
    [{"name": ..., "ns_per_call": ...}] objects - which CI regenerates,
    schema-checks with {!validate_json} and uploads, so engine
    regressions are visible as a diffable time series. *)

type row = { name : string; ns_per_call : float }

val staircase : int -> Lattice.Prototile.t
(** Exact staircase polyomino with ~4k+2 boundary letters - the standard
    scaling family for the Beauquier-Nivat decision (also used by the
    EXP-S3 and EXP-A2 experiment sections). *)

val cross : int -> Lattice.Prototile.t
(** The [(2n - 1)]-cell cross: row 0 union column 0 of the [n x n]
    square.  Any two torus translates of it intersect, which is what
    makes {!skew_instance} adversarially skewed.  Requires [n >= 2]. *)

val skew_instance : n:int -> Lattice.Sublattice.t * Lattice.Prototile.t list
(** The adversarial skewed exact-cover instance of EXP-P3: [cross n]
    plus the monomino on the [n x n] torus.  At most one cross fits in
    any cover, so there are exactly [1 + n^2] covers and the single
    monomino-at-cell-0 root branch owns [(n^2 - 2n + 2) / (n^2 + 1)] of
    them - at least 90% for [n >= 20] (93% at the benchmark's [n = 28]).
    A static root split serializes that branch on one worker; lazy
    stealing re-splits it. *)

val skew_root_share : n:int -> float
(** Fraction of the instance's covers that lie in the fat root branch
    (monomino covering cell 0), measured by filtered enumeration at
    [jobs = 1].  The skew test asserts this is [>= 0.9] at [n = 20]. *)

val run : ?quota:float -> unit -> row list
(** Run the whole suite and return one row per benchmark, sorted by
    name.  [quota] is the Bechamel time budget per benchmark in seconds
    (default 0.5); smaller quotas trade estimate quality for wall time,
    which is what the CI smoke run wants.  Raises [Invalid_argument] if
    [quota <= 0]. *)

val run_skew : ?quota:float -> unit -> row list
(** The EXP-P3 scheduler benchmark, serialized to [BENCH_6.json]:
    {!Tiling.Search.count_torus_covers} on [skew_instance ~n:28] as
    [skew-seq-j1] (jobs = 1), [skew-static-j4] and [skew-steal-j4]
    (jobs = 4 under each {!Parallel.sched}).  On a multi-core host the
    steal row beats the static row, which is pinned near sequential by
    the fat branch; a single-core host shows no separation, so the
    artifact is schema-checked rather than threshold-checked.
    [quota] as in {!run}. *)

val required : string list
(** Substrings that {!validate_json} demands among row names: the three
    torus-cover engines on the EXP-P2 workload (S/Z tetrominoes on the
    4x8 torus, all 1024 solutions, jobs = 1), each both as pure
    enumeration ([torus-all-*], {!Tiling.Search.count_torus_covers}) and
    end-to-end materialization ([torus-mat-*]), so the artifact always
    carries the backtracking/DLX/bitmask comparison this suite exists to
    track. *)

val required_skew : string list
(** The row names {!validate_json} demands of the [BENCH_6.json]
    artifact: the three {!run_skew} configurations. *)

val run_lifetime : ?quota:float -> unit -> row list
(** The lifetime suite (EXP-L1), serialized to [BENCH_7.json].  Two row
    families share the two-key schema with different units:
    [lifetime-*-first-death-slots] rows carry the {e slot} of the first
    battery death in a deterministic simulation (I-tetromino rows on an
    8x8 grid, tile leaders paying +1.0/slot against a 30-unit battery)
    under the static schedule vs a balanced 4-cover least-depleted
    rotation - the lifetime-extension factor is their ratio; the
    [repair-solve-*] rows are genuine Bechamel ns-per-call estimates of
    {!Lifetime.Repair.repair} on the minimal wrapped-row window (I-tet,
    8 cells) and on a one-ring-grown window (S-tet, 56 cells) - the
    repair-latency-vs-window-size comparison.  [quota] as in {!run}
    (the simulated rows ignore it: they are exact). *)

val required_lifetime : string list
(** The name substrings {!validate_json} demands of the [BENCH_7.json]
    artifact: the static and rotating lifetime rows and the repair
    solver timings. *)

val run_corpus : ?quota:float -> unit -> row list
(** The corpus suite (EXP-CORPUS), serialized to [BENCH_8.json].  Builds the
    full [n <= 7] verdict corpus (164 canonical classes) in a temp
    directory plus a certificate store holding the same verdicts, then
    measures a single key lookup against each tier: warm
    ([corpus-mmap-find-warm] vs [corpus-store-find-warm], both tiers
    resident, cycling through every key) and cold-start
    ([corpus-mmap-coldstart-find] vs [corpus-store-coldstart-find]:
    open the tier, find one key, close it).  The cold-start pair is the
    headline: {!Store.open_} replays and re-validates its whole log
    before the first answer, {!Corpus.Snapshot.open_} just maps the
    files, so the gap grows linearly with corpus size.  [quota] as in
    {!run}. *)

val required_corpus : string list
(** The name substrings {!validate_json} demands of the [BENCH_8.json]
    artifact: the four {!run_corpus} rows. *)

val run_server : ?quota:float -> exe:string -> unit -> row list
(** The wire-protocol suite (EXP-SRV2), serialized to [BENCH_10.json].
    Builds an [n <= 5] corpus, spawns [exe serve --corpus] on a temp
    Unix socket, and rides the two-key schema with three row families
    in different units: closed-loop warm tile-search throughput under
    each wire dialect ([server-text-warm-rps] vs
    [server-binary-warm-rps], requests/second, with their ratio as
    [server-binary-vs-text-speedup] - the binary codec plus the
    zero-copy corpus splice path is required to clear 5x); the
    open-loop per-request latency percentiles of a 10,000-connection
    binary run ([server-open-10k-p{50,95,99}-us], microseconds); and
    [server-open-10k-dropped], the undecodable-reply count of that
    run, which must be 0.  The closed-loop request count scales with
    [quota] ([quota * 10_000], at least 1000); the 10k-connection run
    is fixed-size.  The run finishes by shutting the spawned server
    down (and kills it if anything raises first). *)

val required_server : string list
(** The name substrings {!validate_json} demands of the [BENCH_10.json]
    artifact: the seven {!run_server} rows. *)

val to_json : row list -> string
(** Serialize rows as a JSON array of two-key objects, one per line.
    Output round-trips through {!validate_json} provided the rows
    include the demanded names. *)

val validate_json : ?required:string list -> string -> (row list, string) result
(** Strict schema check for the benchmark artifacts: a single JSON
    array of objects with exactly the keys ["name"] (string) and
    ["ns_per_call"] (non-negative number) in either order, no trailing
    garbage, and every [required] substring present among the names
    (default {!required}, the [BENCH_5.json] contract; pass
    {!required_skew} for [BENCH_6.json]).  Returns the parsed rows, or
    a message locating the first problem. *)
