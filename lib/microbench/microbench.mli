(** Bechamel micro-benchmarks of the core machinery, shared between the
    experiment harness ([bench/main.exe]) and the [tilesched bench]
    subcommand.

    The suite pins one workload per hot subsystem (boundary-word
    factorization, torus exact cover under each {!Tiling.Search.engine},
    schedule lookup, coloring, simulation, ...) and reports an OLS
    estimate of nanoseconds per call.  Rows serialize to the
    [BENCH_5.json] artifact - a JSON array of
    [{"name": ..., "ns_per_call": ...}] objects - which CI regenerates,
    schema-checks with {!validate_json} and uploads, so engine
    regressions are visible as a diffable time series. *)

type row = { name : string; ns_per_call : float }

val staircase : int -> Lattice.Prototile.t
(** Exact staircase polyomino with ~4k+2 boundary letters - the standard
    scaling family for the Beauquier-Nivat decision (also used by the
    EXP-S3 and EXP-A2 experiment sections). *)

val run : ?quota:float -> unit -> row list
(** Run the whole suite and return one row per benchmark, sorted by
    name.  [quota] is the Bechamel time budget per benchmark in seconds
    (default 0.5); smaller quotas trade estimate quality for wall time,
    which is what the CI smoke run wants.  Raises [Invalid_argument] if
    [quota <= 0]. *)

val required : string list
(** Substrings that {!validate_json} demands among row names: the three
    torus-cover engines on the EXP-P2 workload (S/Z tetrominoes on the
    4x8 torus, all 1024 solutions, jobs = 1), each both as pure
    enumeration ([torus-all-*], {!Tiling.Search.count_torus_covers}) and
    end-to-end materialization ([torus-mat-*]), so the artifact always
    carries the backtracking/DLX/bitmask comparison this suite exists to
    track. *)

val to_json : row list -> string
(** Serialize rows as a JSON array of two-key objects, one per line.
    Output round-trips through {!validate_json} provided the rows
    include {!required}. *)

val validate_json : string -> (row list, string) result
(** Strict schema check for the [BENCH_5.json] artifact: a single JSON
    array of objects with exactly the keys ["name"] (string) and
    ["ns_per_call"] (non-negative number) in either order, no trailing
    garbage, and every {!required} substring present among the names.
    Returns the parsed rows, or a message locating the first problem. *)
