type model = { tx_cost : float; rx_cost : float; idle_cost : float }

let default = { tx_cost = 1.0; rx_cost = 0.4; idle_cost = 0.01 }

let slot_energy m ~transmitters ~receivers ~idlers =
  (float_of_int transmitters *. m.tx_cost)
  +. (float_of_int receivers *. m.rx_cost)
  +. (float_of_int idlers *. m.idle_cost)

type account = {
  tx_slots : int;
  rx_slots : int;
  idle_slots : int;
  extra : float;
  consumed : float;
}

let zero_account = { tx_slots = 0; rx_slots = 0; idle_slots = 0; extra = 0.0; consumed = 0.0 }

let role_cost m = function `Tx -> m.tx_cost | `Rx -> m.rx_cost | `Idle -> m.idle_cost

let charge m acc role ~extra =
  let cost = role_cost m role +. extra in
  {
    tx_slots = (acc.tx_slots + match role with `Tx -> 1 | _ -> 0);
    rx_slots = (acc.rx_slots + match role with `Rx -> 1 | _ -> 0);
    idle_slots = (acc.idle_slots + match role with `Idle -> 1 | _ -> 0);
    extra = acc.extra +. extra;
    consumed = acc.consumed +. cost;
  }

let account_energy m acc =
  (float_of_int acc.tx_slots *. m.tx_cost)
  +. (float_of_int acc.rx_slots *. m.rx_cost)
  +. (float_of_int acc.idle_slots *. m.idle_cost)
  +. acc.extra

let account_consistent ?(eps = 1e-9) m acc =
  let expect = account_energy m acc in
  Float.abs (acc.consumed -. expect) <= eps *. (1.0 +. Float.abs expect)
