(** Energy accounting.

    The paper's motivation for collision-freeness is energy: colliding
    messages "need to be resent, which is evidently a waste of energy."
    The model is the standard first-order radio budget: a fixed cost per
    transmission, a cost per reception (every node inside a transmitter's
    range spends receive energy whether or not the packet survives), and
    an idle tick otherwise. *)

type model = { tx_cost : float; rx_cost : float; idle_cost : float }

val default : model
(** tx = 1.0, rx = 0.4, idle = 0.01 - typical low-power-radio ratios. *)

val slot_energy : model -> transmitters:int -> receivers:int -> idlers:int -> float

(** {1 Per-node accounts}

    The lifetime subsystem needs energy {e per node}, not just per run:
    battery depletion kills the node whose own account crosses the
    capacity.  An account counts the slots spent in each radio role plus
    any surcharge ([extra], e.g. cluster-head duty from
    [Lifetime.Rotation]) and accumulates the running [consumed] total;
    the two views are redundant by construction, which is exactly the
    conservation invariant [account_consistent] re-checks. *)

type account = {
  tx_slots : int;
  rx_slots : int;
  idle_slots : int;
  extra : float;  (** sum of per-slot surcharges *)
  consumed : float;  (** running total: role costs + surcharges *)
}

val zero_account : account

val charge : model -> account -> [ `Tx | `Rx | `Idle ] -> extra:float -> account
(** One slot in the given role plus an [extra] surcharge; functional
    update. *)

val account_energy : model -> account -> float
(** [tx_slots * tx_cost + rx_slots * rx_cost + idle_slots * idle_cost +
    extra], recomputed from the slot counters. *)

val account_consistent : ?eps:float -> model -> account -> bool
(** The conservation invariant: [consumed] equals {!account_energy} up
    to relative float tolerance [eps] (default 1e-9). *)
