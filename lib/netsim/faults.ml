type kind = Death | Down | Up

type event = { time : int; node : int; kind : kind }

type spec = {
  battery : float option;
  deaths : (int * int) list;
  random_deaths : int;
  churn : int;
  downtime : int;
  extra_cost : (Zgeom.Vec.t -> time:int -> float) option;
}

let none =
  {
    battery = None;
    deaths = [];
    random_deaths = 0;
    churn = 0;
    downtime = 0;
    extra_cost = None;
  }

let kind_rank = function Up -> 0 | Down -> 1 | Death -> 2

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.node b.node in
    if c <> 0 then c else compare (kind_rank a.kind) (kind_rank b.kind)

let schedule spec ~rng ~num_nodes ~duration =
  if spec.random_deaths < 0 || spec.churn < 0 || spec.downtime < 0 then
    invalid_arg "Faults.schedule: negative count";
  List.iter
    (fun (time, node) ->
      if node < 0 || node >= num_nodes then invalid_arg "Faults.schedule: node out of range";
      if time < 0 then invalid_arg "Faults.schedule: negative time")
    spec.deaths;
  let explicit =
    List.filter_map
      (fun (time, node) -> if time < duration then Some { time; node; kind = Death } else None)
      spec.deaths
  in
  (* Random times avoid slot 0 (a node dead before its first arrival
     exercises nothing) and are drawn in a fixed order - deaths first,
     then churn cycles - so the schedule depends only on the rng seed. *)
  let random_time () = if duration <= 1 then 0 else 1 + Prng.Xoshiro.int rng (duration - 1) in
  if spec.random_deaths > num_nodes then
    invalid_arg "Faults.schedule: more random deaths than nodes";
  let injected = ref [] in
  if num_nodes > 0 then begin
    (* Distinct victims: [random_deaths = k] means k nodes die.  Redraws
       on collision keep the draw order a pure function of the rng
       state. *)
    let doomed = Hashtbl.create 8 in
    for _ = 1 to spec.random_deaths do
      let time = random_time () in
      let rec fresh () =
        let node = Prng.Xoshiro.int rng num_nodes in
        if Hashtbl.mem doomed node then fresh () else node
      in
      let node = fresh () in
      Hashtbl.replace doomed node ();
      injected := { time; node; kind = Death } :: !injected
    done;
    for _ = 1 to spec.churn do
      let time = random_time () in
      let node = Prng.Xoshiro.int rng num_nodes in
      injected := { time; node; kind = Down } :: !injected;
      let back = time + max 1 spec.downtime in
      if back < duration then injected := { time = back; node; kind = Up } :: !injected
    done
  end;
  List.stable_sort compare_event (explicit @ List.rev !injected)
