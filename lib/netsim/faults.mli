(** Fault injection: sensor death, churn, and battery depletion.

    Sensor networks lose nodes - batteries drain, hardware dies, nodes
    reboot.  A fault [spec] extends a simulation with three such
    processes, all deterministic functions of the run seed:

    - {e explicit deaths}: [(time, node)] kills scripted by the caller
      (the lifetime demo kills a chosen tile leader);
    - {e injected faults}: [random_deaths] permanent kills and [churn]
      temporary down/up cycles at seed-derived times and nodes;
    - {e battery depletion}: when [battery] is set, a node dies the slot
      its {!Energy.account}[.consumed] reaches the capacity - so the
      energy model, including any [extra_cost] surcharge (cluster-head
      duty from [Lifetime.Rotation]), decides who dies first.

    Dead nodes stop sensing, transmitting, receiving, and paying energy;
    their queued packets are dropped (conservation holds: the drops are
    counted).  Down nodes keep sensing and queueing but their radio is
    off until the matching up event. *)

type kind = Death | Down | Up

type event = { time : int; node : int; kind : kind }

type spec = {
  battery : float option;  (** per-node capacity; [None] = inexhaustible *)
  deaths : (int * int) list;  (** explicit [(time, node)] kills *)
  random_deaths : int;  (** seed-derived permanent kills of distinct nodes *)
  churn : int;  (** seed-derived down/up cycles *)
  downtime : int;  (** slots a churned node stays down (min 1) *)
  extra_cost : (Zgeom.Vec.t -> time:int -> float) option;
      (** per-slot energy surcharge by position and time, paid by alive
          nodes on top of the radio role cost *)
}

val none : spec

val compare_event : event -> event -> int
(** Time, then node, then kind ([Up < Down < Death]) - the order the
    engine applies same-slot events. *)

val schedule : spec -> rng:Prng.Xoshiro.t -> num_nodes:int -> duration:int -> event list
(** The explicit and injected events of the spec (battery deaths are
    emergent, not scheduled), sorted by {!compare_event}.  Random draws
    happen in a fixed order, so the schedule depends only on the rng
    state handed in - the engine splits a dedicated stream off the run
    seed.  Random deaths hit [random_deaths] {e distinct} nodes
    (collision redraws).  Events at or past [duration] are dropped;
    out-of-range nodes, negative counts, and more random deaths than
    nodes are [Invalid_argument]. *)
