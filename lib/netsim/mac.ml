type decision_context = { time : int; has_packet : bool; channel_busy_last : bool }
type outcome = [ `Delivered | `Collided ]
type instance = { name : string; decide : decision_context -> bool; feedback : outcome -> unit }
type factory = node_id:int -> pos:Zgeom.Vec.t -> rng:Prng.Xoshiro.t -> instance

let lattice_tdma schedule ~node_id:_ ~pos ~rng:_ =
  {
    name = "lattice-tdma";
    decide = (fun ctx -> ctx.has_packet && Core.Schedule.may_send schedule pos ~time:ctx.time);
    feedback = ignore;
  }

let lattice_tdma_drifted schedule ~drift_at ~node_id:_ ~pos ~rng:_ =
  {
    name = "lattice-tdma-drifted";
    decide =
      (fun ctx -> ctx.has_packet && Core.Schedule.with_drift schedule ~drift_at pos ~time:ctx.time);
    feedback = ignore;
  }

let rotating_tdma ~epoch ~index_at schedules ~node_id:_ ~pos ~rng:_ =
  assert (epoch > 0);
  let k = Array.length schedules in
  assert (k > 0);
  {
    name = "rotating-tdma";
    decide =
      (fun ctx ->
        let idx = ((index_at (ctx.time / epoch) mod k) + k) mod k in
        ctx.has_packet && Core.Schedule.may_send schedules.(idx) pos ~time:ctx.time);
    feedback = ignore;
  }

let full_tdma ~num_nodes ~node_id ~pos:_ ~rng:_ =
  {
    name = "full-tdma";
    decide = (fun ctx -> ctx.has_packet && ctx.time mod num_nodes = node_id);
    feedback = ignore;
  }

let slotted_aloha ~p ~max_backoff_exp ~node_id:_ ~pos:_ ~rng =
  assert (0.0 < p && p <= 1.0);
  let backoff = ref 0 in
  let exponent = ref 0 in
  {
    name = "slotted-aloha";
    decide =
      (fun ctx ->
        if not ctx.has_packet then false
        else if !backoff > 0 then begin
          decr backoff;
          false
        end
        else Prng.Xoshiro.bernoulli rng p);
    feedback =
      (function
      | `Delivered ->
        exponent := 0;
        backoff := 0
      | `Collided ->
        exponent := min max_backoff_exp (!exponent + 1);
        backoff := Prng.Xoshiro.int rng (1 lsl !exponent));
  }

let p_csma ~p ~node_id:_ ~pos:_ ~rng =
  assert (0.0 < p && p <= 1.0);
  {
    name = "p-csma";
    decide =
      (fun ctx ->
        ctx.has_packet && (not ctx.channel_busy_last) && Prng.Xoshiro.bernoulli rng p);
    feedback = ignore;
  }
