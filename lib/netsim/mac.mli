(** Medium-access control protocols.

    A MAC instance is per-node mutable state with two entry points: a
    slot-time decision to transmit, and feedback on the attempt's outcome.
    The engine supplies the node's view of the channel (busy in the
    previous slot) so carrier-sensing protocols can be expressed.

    Implementations:
    - {!lattice_tdma}: the paper's schedule - send iff the slot is yours.
      Never needs feedback; zero collisions by Theorem 1/2.
    - {!lattice_tdma_drifted}: same with a per-node clock offset, the
      fault-injection variant.
    - {!rotating_tdma}: a family of schedules swapped at epoch
      boundaries - the lifetime subsystem's rotation and repair both
      reduce to this (every epoch is governed by exactly one
      collision-free schedule, so the swap instant is safe when the
      epoch is a multiple of every period's slot count).
    - {!full_tdma}: classic one-slot-per-sensor round robin - correct but
      with period = network size (the intro's scaling complaint).
    - {!slotted_aloha}: transmit with probability [p] when backlogged;
      binary exponential backoff on collision.
    - {!p_csma}: p-persistent carrier sensing - defer while the channel
      around you was busy, else transmit with probability [p]. *)

type decision_context = {
  time : int;
  has_packet : bool;
  channel_busy_last : bool;  (** Some neighbor transmitted in slot [time - 1]. *)
}

type outcome = [ `Delivered | `Collided ]

type instance = { name : string; decide : decision_context -> bool; feedback : outcome -> unit }

type factory = node_id:int -> pos:Zgeom.Vec.t -> rng:Prng.Xoshiro.t -> instance

val lattice_tdma : Core.Schedule.t -> factory
val lattice_tdma_drifted : Core.Schedule.t -> drift_at:(Zgeom.Vec.t -> int) -> factory

val rotating_tdma : epoch:int -> index_at:(int -> int) -> Core.Schedule.t array -> factory
(** Slot [t] obeys [schedules.(index_at (t / epoch))] ([index_at]'s
    result is reduced mod the array length).  With [epoch] a common
    multiple of every schedule's slot count, each slot is governed by
    exactly one collision-free schedule, so the composite is collision-
    free at every slot including epoch boundaries
    ([Lifetime.Rotation.make] enforces the multiple; repair swaps
    [base -> patched] the same way). Requires [epoch > 0] and a
    non-empty array. *)

val full_tdma : num_nodes:int -> factory
val slotted_aloha : p:float -> max_backoff_exp:int -> factory
val p_csma : p:float -> factory
