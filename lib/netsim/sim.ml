open Zgeom
open Lattice

type config = {
  width : int;
  height : int;
  prototile : Prototile.t;
  neighborhoods : (Vec.t -> Prototile.t) option;
  workload : Workload.spec;
  mac : Mac.factory;
  duration : int;
  seed : int64;
  energy_model : Energy.model;
  queue_capacity : int;
  capture : bool;
  loss_prob : float;
  trace : Trace.t option;
  faults : Faults.spec;
}

let default_config ~mac =
  {
    width = 10;
    height = 10;
    prototile = Prototile.chebyshev_ball ~dim:2 1;
    neighborhoods = None;
    workload = Workload.Periodic { interval = 50 };
    mac;
    duration = 2000;
    seed = 42L;
    energy_model = Energy.default;
    queue_capacity = 32;
    capture = false;
    loss_prob = 0.0;
    trace = None;
    faults = Faults.none;
  }

type result = {
  mac_name : string;
  num_nodes : int;
  stats : Stats.snapshot;
  drops : int;
  backlog : int;
  fairness : float;
  node_accounts : Energy.account array;
  deaths : (int * int) list;
  alive_at_end : int;
}

type event = Arrival of int (* node *)

let jain_index xs =
  let s = Array.fold_left ( +. ) 0.0 xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if s2 = 0.0 then 1.0 else s *. s /. (float_of_int (Array.length xs) *. s2)

let run cfg =
  assert (cfg.width > 0 && cfg.height > 0 && cfg.duration >= 0);
  assert (0.0 <= cfg.loss_prob && cfg.loss_prob < 1.0);
  let n = cfg.width * cfg.height in
  let pos = Array.init n (fun i -> Vec.make2 (i mod cfg.width) (i / cfg.width)) in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.add index_of v i) pos;
  (* reach.(i): grid nodes (other than i) inside i's interference range;
     heterogeneous deployments (D1) give each position its own prototile. *)
  let prototile_of =
    match cfg.neighborhoods with None -> fun _ -> cfg.prototile | Some f -> f
  in
  let reach =
    Array.init n (fun i ->
        List.filter_map
          (fun c ->
            match Hashtbl.find_opt index_of (Vec.add pos.(i) c) with
            | Some j when j <> i -> Some j
            | _ -> None)
          (Prototile.cells (prototile_of pos.(i))))
  in
  let root_rng = Prng.Xoshiro.create cfg.seed in
  let macs =
    Array.init n (fun i -> cfg.mac ~node_id:i ~pos:pos.(i) ~rng:(Prng.Xoshiro.split root_rng))
  in
  let gens = Array.init n (fun _ -> Workload.create cfg.workload (Prng.Xoshiro.split root_rng)) in
  let channel_rng = Prng.Xoshiro.split root_rng in
  (* The faults stream splits off last, so fault-free runs draw exactly
     the same per-node randomness as before the stream existed. *)
  let faults_rng = Prng.Xoshiro.split root_rng in
  let fault_events =
    ref (Faults.schedule cfg.faults ~rng:faults_rng ~num_nodes:n ~duration:cfg.duration)
  in
  let extra_cost =
    match cfg.faults.Faults.extra_cost with Some f -> f | None -> fun _ ~time:_ -> 0.0
  in
  let status = Array.make n `Alive in
  let accounts = Array.make n Energy.zero_account in
  let deaths = ref [] in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let stats = Stats.create () in
  let drops = ref 0 in
  let delivered_per_node = Array.make n 0.0 in
  let events : event Heap.t = Heap.create () in
  Array.iteri (fun i g -> Heap.push events (Workload.first_arrival g) (Arrival i)) gens;
  let busy_last = Array.make n false in
  let hitters = Array.make n [] in
  let trace e = match cfg.trace with Some t -> Trace.record t e | None -> () in
  let kill i ~time =
    if status.(i) <> `Dead then begin
      status.(i) <- `Dead;
      (* The node's buffered packets die with it; counting them as drops
         keeps arrivals = delivered + drops + backlog. *)
      drops := !drops + Queue.length queues.(i);
      Queue.clear queues.(i);
      deaths := (time, i) :: !deaths;
      trace (Trace.Died { node = i; time })
    end
  in
  for t = 0 to cfg.duration - 1 do
    (* 0. Scheduled faults (battery deaths are step 7, emergent). *)
    let rec apply_faults () =
      match !fault_events with
      | e :: rest when e.Faults.time <= t ->
        fault_events := rest;
        (match e.Faults.kind with
        | Faults.Death -> kill e.Faults.node ~time:t
        | Faults.Down -> if status.(e.Faults.node) = `Alive then status.(e.Faults.node) <- `Down
        | Faults.Up -> if status.(e.Faults.node) = `Down then status.(e.Faults.node) <- `Alive);
        apply_faults ()
      | _ -> ()
    in
    apply_faults ();
    (* 1. Deliver due arrival events.  Dead nodes stop sensing: their
       pending arrival is discarded and not rescheduled.  Down nodes
       keep sensing and queueing (only the radio is off). *)
    let rec drain () =
      match Heap.peek_key events with
      | Some k when k <= t ->
        (match Heap.pop events with
        | Some (_, Arrival i) ->
          if status.(i) <> `Dead then begin
            Stats.record_arrival stats;
            trace (Trace.Arrived { node = i; time = t });
            if Queue.length queues.(i) < cfg.queue_capacity then Queue.add t queues.(i)
            else begin
              incr drops;
              trace (Trace.Dropped { node = i; time = t })
            end;
            Heap.push events (Workload.next_arrival gens.(i) ~after:t) (Arrival i)
          end
        | None -> ());
        drain ()
      | _ -> ()
    in
    drain ();
    (* 2. MAC decisions (alive nodes only: down and dead radios are off). *)
    let transmitting = Array.make n false in
    let transmitters = ref [] in
    for i = 0 to n - 1 do
      if status.(i) = `Alive then begin
        let ctx =
          { Mac.time = t; has_packet = not (Queue.is_empty queues.(i));
            channel_busy_last = busy_last.(i) }
        in
        if ctx.Mac.has_packet && macs.(i).Mac.decide ctx then begin
          transmitting.(i) <- true;
          transmitters := i :: !transmitters
        end
      end
    done;
    (* 3. Propagation: which transmissions reach each node. *)
    Array.fill hitters 0 n [];
    List.iter (fun s -> List.iter (fun r -> hitters.(r) <- s :: hitters.(r)) reach.(s)) !transmitters;
    (* 4. Per-receiver decoding: a reception survives interference when
       the sender is the only hitter (or, with capture, the unique
       nearest); a surviving reception may still fade away. *)
    let survives_interference r s =
      (not transmitting.(r))
      &&
      match hitters.(r) with
      | [ s' ] -> s' = s
      | many when cfg.capture ->
        let d x = Vec.norm_inf (Vec.sub pos.(x) pos.(r)) in
        let ds = d s in
        List.for_all (fun x -> x = s || d x > ds) many
      | _ -> false
    in
    (* 5. Outcomes.  Intended receivers are the alive ones: a broadcast
       with every intended receiver gone counts as (vacuously)
       delivered. *)
    List.iter
      (fun s ->
        Stats.record_attempt stats;
        let interfered = ref 0 in
        let faded = ref 0 in
        List.iter
          (fun r ->
            if status.(r) = `Alive then
              if not (survives_interference r s) then incr interfered
              else if cfg.loss_prob > 0.0 && Prng.Xoshiro.bernoulli channel_rng cfg.loss_prob
              then incr faded)
          reach.(s);
        if !interfered = 0 && !faded = 0 then begin
          let created = Queue.pop queues.(s) in
          Stats.record_delivery stats ~latency:(t - created);
          delivered_per_node.(s) <- delivered_per_node.(s) +. 1.0;
          trace (Trace.Sent { node = s; time = t; outcome = `Delivered });
          macs.(s).Mac.feedback `Delivered
        end
        else begin
          if !interfered > 0 then Stats.record_collision stats else Stats.record_fade stats;
          Stats.record_receiver_loss stats (!interfered + !faded);
          trace
            (Trace.Sent
               { node = s; time = t; outcome = (if !interfered > 0 then `Collided else `Faded) });
          macs.(s).Mac.feedback `Collided
        end)
      !transmitters;
    (* 6. Carrier state and per-node energy (alive nodes only; every
       transmitter is alive, so hitters of an alive node are real). *)
    let slot_total = ref 0.0 in
    for i = 0 to n - 1 do
      if status.(i) = `Alive then begin
        busy_last.(i) <- hitters.(i) <> [] || transmitting.(i);
        let role =
          if transmitting.(i) then `Tx else if hitters.(i) <> [] then `Rx else `Idle
        in
        let extra = extra_cost pos.(i) ~time:t in
        let before = accounts.(i).Energy.consumed in
        accounts.(i) <- Energy.charge cfg.energy_model accounts.(i) role ~extra;
        slot_total := !slot_total +. (accounts.(i).Energy.consumed -. before)
      end
      else busy_last.(i) <- false
    done;
    Stats.add_energy stats !slot_total;
    (* 7. Battery depletion: a node whose account crosses the capacity
       dies at the end of the slot. *)
    (match cfg.faults.Faults.battery with
    | None -> ()
    | Some capacity ->
      for i = 0 to n - 1 do
        if status.(i) <> `Dead && accounts.(i).Energy.consumed >= capacity then kill i ~time:t
      done)
  done;
  let backlog = Array.fold_left (fun acc q -> acc + Queue.length q) 0 queues in
  let mac_name = if n > 0 then macs.(0).Mac.name else "none" in
  let alive_at_end =
    Array.fold_left (fun acc st -> if st <> `Dead then acc + 1 else acc) 0 status
  in
  { mac_name; num_nodes = n; stats = Stats.snapshot stats; drops = !drops; backlog;
    fairness = jain_index delivered_per_node; node_accounts = accounts;
    deaths = List.rev !deaths; alive_at_end }

let pp_result fmt r =
  Format.fprintf fmt "@[<v>%s (%d nodes): %a drops=%d backlog=%d fairness=%.3f%t@]" r.mac_name
    r.num_nodes Stats.pp_snapshot r.stats r.drops r.backlog r.fairness (fun fmt ->
      if r.deaths <> [] then
        Format.fprintf fmt " deaths=%d alive=%d" (List.length r.deaths) r.alive_at_end)

let conservation_ok r =
  r.stats.Stats.arrivals = r.stats.Stats.delivered + r.drops + r.backlog

let energy_conservation_ok ?(eps = 1e-9) model r =
  let per_node_ok =
    Array.for_all (fun acc -> Energy.account_consistent ~eps model acc) r.node_accounts
  in
  let total =
    Array.fold_left (fun s acc -> s +. acc.Energy.consumed) 0.0 r.node_accounts
  in
  per_node_ok
  && Float.abs (total -. r.stats.Stats.energy) <= eps *. (1.0 +. Float.abs total)

let first_death r = match r.deaths with [] -> None | (t, _) :: _ -> Some t

let run_sweep ?pool ?sched ?trace_of cfg ~seeds =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  (* Runs are independent (all state is created inside [run], randomness
     comes from per-node streams split off the run seed), so seeds can go
     to separate domains.  A trace sink is the one piece of cross-run
     mutable state, so the shared [cfg.trace] is ignored; [trace_of]
     supplies a per-seed sink instead, giving each run a single-writer
     log - sweeps with traces stay deterministic. *)
  let trace_of = match trace_of with Some f -> f | None -> fun _ -> None in
  Parallel.map ?sched pool (fun seed -> run { cfg with seed; trace = trace_of seed }) seeds
