(** The slotted-network simulation engine.

    Sensors sit on a [width x height] window of the square lattice and
    share one channel under the paper's binary interference model: the
    broadcast of the sensor at [s] reaches exactly the grid points of
    [s + N].  A reception at [r] succeeds iff exactly one transmitter
    reaches [r] in that slot and [r] itself is silent; a broadcast counts
    as {e delivered} when every intended receiver got it, otherwise the
    attempt is a collision and the packet stays queued for retry
    (senders get immediate, idealized feedback - this favors the
    contention baselines, never the TDMA schedules).

    Channel ablations relax the binary model:
    - [capture]: when several transmissions reach a receiver, the unique
      nearest (Chebyshev) transmitter is still decoded - the classic
      capture effect.  With it on, contention protocols lose fewer
      receptions; the schedule's guarantee is unaffected.
    - [loss_prob]: each (sender, receiver, slot) reception independently
      erased with this probability - fading/noise.  This breaks even
      TDMA's 100% delivery, but never causes {e collisions}.

    Fault injection ({!Faults}): scripted or seed-derived sensor deaths,
    churn (down/up cycles) and battery depletion.  A dead node stops
    sensing, transmitting, receiving and paying energy; its queued
    packets count as drops, so {!conservation_ok} still holds.  A down
    node keeps sensing and queueing but its radio is off.  Intended
    receivers are the alive ones - a broadcast whose whole neighborhood
    died counts as (vacuously) delivered.

    Per-slot accounting: transmitters pay [tx_cost], every node hearing at
    least one transmission pays [rx_cost], everyone else pays
    [idle_cost]; [Faults.extra_cost] adds a per-slot surcharge (e.g.
    cluster-head duty).  Alongside the aggregate, every node keeps its
    own {!Energy.account} - the basis of battery depletion and of the
    {!energy_conservation_ok} invariant.  All randomness is drawn from
    per-node streams split off the run seed, so runs are reproducible. *)

type config = {
  width : int;
  height : int;
  prototile : Lattice.Prototile.t;
  neighborhoods : (Zgeom.Vec.t -> Lattice.Prototile.t) option;
      (** Heterogeneous deployments (rule D1 of Section 4): when set, each
          position's interference prototile comes from this function and
          [prototile] is ignored for propagation. Use
          [Tiling.Multi.tile_of] to deploy per the paper's scheme. *)
  workload : Workload.spec;
  mac : Mac.factory;
  duration : int;  (** slots *)
  seed : int64;
  energy_model : Energy.model;
  queue_capacity : int;  (** packets per node; arrivals beyond are dropped *)
  capture : bool;  (** capture effect (default false: pure binary model) *)
  loss_prob : float;  (** independent reception-erasure probability *)
  trace : Trace.t option;  (** when set, the engine records per-event history *)
  faults : Faults.spec;  (** fault injection (default {!Faults.none}) *)
}

val default_config : mac:Mac.factory -> config
(** 10x10 grid, Chebyshev ball radius 1 (homogeneous), periodic traffic
    (1 packet per 50 slots), 2000 slots, seed 42, default energy, queue
    32, no capture, no loss, no faults. *)

type result = {
  mac_name : string;
  num_nodes : int;
  stats : Stats.snapshot;
  drops : int;  (** arrivals lost to full queues or to the owner's death *)
  backlog : int;  (** packets still queued at the end *)
  fairness : float;  (** Jain index of per-node delivered counts (1 = perfectly fair) *)
  node_accounts : Energy.account array;  (** per-node energy, indexed by node id *)
  deaths : (int * int) list;  (** [(time, node)] in order of occurrence *)
  alive_at_end : int;  (** nodes not dead when the run ended (down counts as alive) *)
}

val run : config -> result

val run_sweep :
  ?pool:Parallel.pool ->
  ?sched:Parallel.sched ->
  ?trace_of:(int64 -> Trace.t option) ->
  config ->
  seeds:int64 list ->
  result list
(** Independent {!run}s of the same configuration at each seed, in seed
    order.  With a pool of more than one domain (default
    {!Parallel.default}), the runs execute on separate domains; each run
    is fully self-contained (per-node PRNG streams split off its seed),
    so the result list is identical to sequentially mapping {!run}.

    Tracing: the shared [cfg.trace] sink is {e ignored} (one sink
    written by concurrent runs would interleave nondeterministically).
    Instead, [trace_of seed] supplies each run its own sink - a
    single-writer log per seed, filled identically at every pool size
    and scheduler.  Callers must return a distinct [Trace.t] per seed
    (sharing one across seeds reintroduces the race); the default keeps
    tracing off. *)

val pp_result : Format.formatter -> result -> unit

val conservation_ok : result -> bool
(** Invariant: arrivals = delivered + drops + backlog.  Holds with
    faults on: a dead node's buffered packets count as drops and its
    pending arrival is discarded before being counted. *)

val energy_conservation_ok : ?eps:float -> Energy.model -> result -> bool
(** Invariant: every node's [consumed] equals
    [tx_slots * tx_cost + rx_slots * rx_cost + idle_slots * idle_cost +
    extra] ({!Energy.account_consistent}), and the accounts sum to
    [stats.energy], both up to relative tolerance [eps] (default 1e-9).
    Pass the model the run used ([config.energy_model]). *)

val first_death : result -> int option
(** Slot of the earliest death, if any node died. *)
