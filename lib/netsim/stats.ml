(* Small growable int buffer (OCaml 5.1's stdlib has no Dynarray). *)
module Buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push d v =
    if d.len = Array.length d.data then begin
      let nd = Array.make (max 64 (2 * d.len)) 0 in
      Array.blit d.data 0 nd 0 d.len;
      d.data <- nd
    end;
    d.data.(d.len) <- v;
    d.len <- d.len + 1

  let to_sorted_array d =
    let a = Array.sub d.data 0 d.len in
    Array.sort Stdlib.compare a;
    a
end

type t = {
  mutable arrivals : int;
  mutable attempts : int;
  mutable delivered : int;
  mutable collisions : int;
  mutable fades : int;
  mutable receiver_losses : int;
  mutable energy : float;
  latencies : Buf.t;
}

let create () =
  { arrivals = 0; attempts = 0; delivered = 0; collisions = 0; fades = 0;
    receiver_losses = 0; energy = 0.0; latencies = Buf.create () }

let record_arrival t = t.arrivals <- t.arrivals + 1
let record_attempt t = t.attempts <- t.attempts + 1

let record_delivery t ~latency =
  t.delivered <- t.delivered + 1;
  Buf.push t.latencies latency

let record_collision t = t.collisions <- t.collisions + 1
let record_fade t = t.fades <- t.fades + 1
let record_receiver_loss t n = t.receiver_losses <- t.receiver_losses + n
let add_energy t e = t.energy <- t.energy +. e

type snapshot = {
  arrivals : int;
  attempts : int;
  delivered : int;
  collisions : int;
  fades : int;
  receiver_losses : int;
  delivery_ratio : float;
  collision_rate : float;
  mean_latency : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  max_latency : int;
  energy : float;
  energy_per_delivery : float;
}

let snapshot t =
  let lat = Buf.to_sorted_array t.latencies in
  let n = Array.length lat in
  let mean =
    if n = 0 then 0.0 else float_of_int (Array.fold_left ( + ) 0 lat) /. float_of_int n
  in
  let percentile p =
    if n = 0 then 0.0 else float_of_int lat.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  {
    arrivals = t.arrivals;
    attempts = t.attempts;
    delivered = t.delivered;
    collisions = t.collisions;
    fades = t.fades;
    receiver_losses = t.receiver_losses;
    delivery_ratio =
      (if t.arrivals = 0 then 1.0 else float_of_int t.delivered /. float_of_int t.arrivals);
    collision_rate =
      (if t.attempts = 0 then 0.0 else float_of_int t.collisions /. float_of_int t.attempts);
    mean_latency = mean;
    p50_latency = percentile 0.50;
    p95_latency = percentile 0.95;
    p99_latency = percentile 0.99;
    max_latency = (if n = 0 then 0 else lat.(n - 1));
    energy = t.energy;
    energy_per_delivery =
      (if t.delivered = 0 then Float.infinity else t.energy /. float_of_int t.delivered);
  }

let pp_snapshot fmt s =
  Format.fprintf fmt
    "arrivals=%d attempts=%d delivered=%d collisions=%d delivery=%.3f coll_rate=%.3f \
     lat_mean=%.1f lat_p50=%.1f lat_p95=%.1f lat_p99=%.1f energy/del=%.2f"
    s.arrivals s.attempts s.delivered s.collisions s.delivery_ratio s.collision_rate
    s.mean_latency s.p50_latency s.p95_latency s.p99_latency s.energy_per_delivery
