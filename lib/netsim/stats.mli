(** Simulation statistics.

    One accumulator per run; the engine feeds it and {!snapshot} freezes
    the quantities the experiments report: delivery ratio, collision rate,
    mean/percentile latency, energy per delivered broadcast. *)

type t

val create : unit -> t

val record_arrival : t -> unit
val record_attempt : t -> unit
val record_delivery : t -> latency:int -> unit
(** A broadcast received collision-free by all intended receivers. *)

val record_collision : t -> unit
(** An attempt that lost at least one intended receiver to interference. *)

val record_fade : t -> unit
(** An attempt that lost receivers to channel erasures only (no
    interference involved); only possible when the simulator's
    [loss_prob] ablation is on. *)

val record_receiver_loss : t -> int -> unit
(** Number of (sender, receiver) receptions destroyed in a slot. *)

val add_energy : t -> float -> unit

type snapshot = {
  arrivals : int;
  attempts : int;
  delivered : int;
  collisions : int;
  fades : int;
  receiver_losses : int;
  delivery_ratio : float;  (** delivered / arrivals (1.0 when no arrivals) *)
  collision_rate : float;  (** collided attempts / attempts *)
  mean_latency : float;  (** slots from arrival to successful broadcast *)
  p50_latency : float;  (** exact quantiles over all recorded latencies; *)
  p95_latency : float;  (** the load generator reuses them with *)
  p99_latency : float;  (** microseconds in place of slots. *)
  max_latency : int;
  energy : float;
  energy_per_delivery : float;
}

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
