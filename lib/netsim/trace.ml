type outcome = [ `Delivered | `Collided | `Faded ]

type event =
  | Arrived of { node : int; time : int }
  | Sent of { node : int; time : int; outcome : outcome }
  | Dropped of { node : int; time : int }
  | Died of { node : int; time : int }

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (* ring position *)
  mutable total : int;
}

let create ?(capacity = 100_000) () =
  assert (capacity > 0);
  { capacity; buffer = Array.make capacity None; next = 0; total = 0 }

let record t e =
  t.buffer.(t.next) <- Some e;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let length t = min t.total t.capacity
let dropped_events t = max 0 (t.total - t.capacity)

let events t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let to_log t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let line =
        match e with
        | Arrived { node; time } -> Printf.sprintf "t=%d node=%d arrival" time node
        | Sent { node; time; outcome } ->
          Printf.sprintf "t=%d node=%d sent: %s" time node
            (match outcome with
            | `Delivered -> "delivered"
            | `Collided -> "collided"
            | `Faded -> "faded")
        | Dropped { node; time } -> Printf.sprintf "t=%d node=%d queue drop" time node
        | Died { node; time } -> Printf.sprintf "t=%d node=%d died" time node
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let timeline t ~node ~horizon =
  let chars = Bytes.make horizon '.' in
  let set time c ~weak =
    if 0 <= time && time < horizon then
      if (not weak) || Bytes.get chars time = '.' then Bytes.set chars time c
  in
  List.iter
    (fun e ->
      match e with
      | Arrived a when a.node = node -> set a.time 'a' ~weak:true
      | Dropped d when d.node = node -> set d.time 'x' ~weak:false
      | Died d when d.node = node -> set d.time '!' ~weak:false
      | Sent s when s.node = node ->
        set s.time
          (match s.outcome with `Delivered -> 'D' | `Collided -> 'C' | `Faded -> 'F')
          ~weak:false
      | Arrived _ | Dropped _ | Sent _ | Died _ -> ())
    (events t);
  Bytes.to_string chars
