(** Structured event traces of simulation runs.

    When debugging a MAC protocol (or demonstrating one), aggregate
    statistics are not enough - you want to see {e who} transmitted
    {e when} and what happened.  A trace is an append-only event log the
    engine fills when [Sim.config.trace] is set; it can be rendered as a
    log or as per-node timelines (one character per slot).

    Traces of collision-free schedules show their signature pattern
    instantly: transmissions marching diagonally through the slot
    structure with never a 'C'. *)

type outcome = [ `Delivered | `Collided | `Faded ]

type event =
  | Arrived of { node : int; time : int }
  | Sent of { node : int; time : int; outcome : outcome }
  | Dropped of { node : int; time : int }
  | Died of { node : int; time : int }
      (** The node's battery ran out or a fault killed it ({!Faults}). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds memory (default 100_000 events); once full, the
    oldest events are discarded. *)

val record : t -> event -> unit
val events : t -> event list
(** In chronological order. *)

val length : t -> int
val dropped_events : t -> int
(** Events discarded due to the capacity bound. *)

val to_log : t -> string
(** One line per event: "t=12 node=5 sent: delivered". *)

val timeline : t -> node:int -> horizon:int -> string
(** One character per slot for one node: '.' idle, 'a' arrival, 'D'
    delivered send, 'C' collided send, 'F' faded send, 'x' queue drop,
    '!' death. When several events hit one slot the send outcome wins. *)
