(* A generation-stamped batch dispatcher: workers park on [start] between
   batches; a batch bumps [generation], publishes the task under the
   mutex, and everyone (submitter included) pulls indices from one atomic
   counter.  Results are written by index on the caller's side, so
   scheduling order never shows in the output. *)

type pool = {
  pool_jobs : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable task : (int -> unit) option;
  mutable limit : int;
  next : int Atomic.t;
  mutable active : int;  (* workers still draining the current batch *)
  mutable stop : bool;
  mutable busy : bool;  (* a batch is in flight; re-entry runs inline *)
  mutable failure : exn option;
  mutable domains : unit Domain.t list;
}

let jobs p = p.pool_jobs

(* Pull indices until the batch is exhausted (or poisoned by a failure;
   the unsynchronized read of [failure] is only an early-exit hint). *)
let drain pool f n =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add pool.next 1 in
    if i >= n || pool.failure <> None then continue := false
    else
      try f i
      with e ->
        Mutex.lock pool.mutex;
        if pool.failure = None then pool.failure <- Some e;
        Mutex.unlock pool.mutex
  done

let rec worker_loop pool my_gen =
  Mutex.lock pool.mutex;
  while pool.generation = my_gen && not pool.stop do
    Condition.wait pool.start pool.mutex
  done;
  if pool.stop then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    (* [task] is always set before workers are woken; matching instead of
       [Option.get] keeps the mutex release unconditional. *)
    let f = match pool.task with Some f -> f | None -> assert false in
    let n = pool.limit in
    Mutex.unlock pool.mutex;
    drain pool f n;
    Mutex.lock pool.mutex;
    pool.active <- pool.active - 1;
    if pool.active = 0 then Condition.broadcast pool.finished;
    Mutex.unlock pool.mutex;
    worker_loop pool gen
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be >= 1";
  let pool =
    { pool_jobs = jobs; mutex = Mutex.create (); start = Condition.create ();
      finished = Condition.create (); generation = 0; task = None; limit = 0;
      next = Atomic.make 0; active = 0; stop = false; busy = false; failure = None;
      domains = [] }
  in
  if jobs > 1 then
    pool.domains <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run_inline f n =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for pool ~n f =
  if n <= 0 then ()
  else if pool.pool_jobs = 1 || n = 1 || pool.domains = [] then run_inline f n
  else begin
    Mutex.lock pool.mutex;
    if pool.busy then begin
      (* Re-entrant (or concurrent) submission: stay correct, run inline. *)
      Mutex.unlock pool.mutex;
      run_inline f n
    end
    else begin
      pool.busy <- true;
      pool.task <- Some f;
      pool.limit <- n;
      Atomic.set pool.next 0;
      pool.failure <- None;
      pool.active <- List.length pool.domains;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.start;
      Mutex.unlock pool.mutex;
      drain pool f n;
      Mutex.lock pool.mutex;
      while pool.active > 0 do
        Condition.wait pool.finished pool.mutex
      done;
      pool.task <- None;
      pool.busy <- false;
      let failure = pool.failure in
      pool.failure <- None;
      Mutex.unlock pool.mutex;
      match failure with Some e -> raise e | None -> ()
    end
  end

let map_array pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map Option.get out
  end

(* ---------- the work-stealing scheduler ---------- *)

(* Determinism is by construction: every task and every result chunk
   carries a canonical path key (branch positions from the search root),
   and the merge sorts chunks by key before concatenating.  Stealing
   moves tasks between domains, so it changes *who* computes a chunk and
   in what real-time order - never where the chunk lands in the output.
   The deques can therefore be plain mutex-protected structures: the
   Chase-Lev access pattern (owner pops newest at the bottom, thieves
   take oldest at the top) is kept for its locality and
   biggest-subtree-first stealing heuristic, not for lock-freedom. *)

let compare_path (a : int list) (b : int list) =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1 (* a prefix sorts before its extensions *)
    | _ :: _, [] -> 1
    | x :: a', y :: b' -> if x <> y then Stdlib.compare x y else go a' b'
  in
  go a b

module Steal = struct
  (* One deque per worker slot.  [items] holds the bottom (owner end) at
     the head; thieves scan to the last element (the oldest, shallowest
     task - the one most likely to hold the biggest subtree).  [size] is
     written under the lock but may be read without it: it is only a
     splitting heuristic, never a correctness input. *)
  type 'a deque = { dq_mutex : Mutex.t; mutable items : 'a list; mutable size : int }

  type 'a state = {
    s_jobs : int;
    deques : 'a task_t deque array;
    hungry : int Atomic.t; (* thieves currently scanning for work *)
    outstanding : int Atomic.t; (* tasks spawned but not yet finished *)
    res_mutex : Mutex.t;
    mutable chunks : (int list * 'a) list list; (* per-task chunk lists *)
    mutable s_failure : exn option;
    s_victim : thief:int -> round:int -> victims:int -> int;
  }

  and 'a ctx = { st : 'a state; worker : int }
  and 'a task_t = int list * ('a ctx -> (int list * 'a) list)

  let new_deque () = { dq_mutex = Mutex.create (); items = []; size = 0 }

  let push_bottom d t =
    Mutex.lock d.dq_mutex;
    d.items <- t :: d.items;
    d.size <- d.size + 1;
    Mutex.unlock d.dq_mutex

  let pop_bottom d =
    Mutex.lock d.dq_mutex;
    let r =
      match d.items with
      | [] -> None
      | t :: rest ->
        d.items <- rest;
        d.size <- d.size - 1;
        Some t
    in
    Mutex.unlock d.dq_mutex;
    r

  (* Steal the oldest task: drop the last element of [items]. *)
  let steal_top d =
    Mutex.lock d.dq_mutex;
    let r =
      match d.items with
      | [] -> None
      | items ->
        let rec split acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: tl -> split (x :: acc) tl
          | [] -> assert false
        in
        let rest, last = split [] items in
        d.items <- rest;
        d.size <- d.size - 1;
        Some last
    in
    Mutex.unlock d.dq_mutex;
    r

  let should_split ctx =
    ctx.st.s_jobs > 1
    && Atomic.get ctx.st.hungry > 0
    && ctx.st.deques.(ctx.worker).size = 0

  let spawn ctx ~key body =
    Atomic.incr ctx.st.outstanding;
    push_bottom ctx.st.deques.(ctx.worker) (key, body)

  let record_failure st e =
    Mutex.lock st.res_mutex;
    if st.s_failure = None then st.s_failure <- Some e;
    Mutex.unlock st.res_mutex

  let failed st =
    (* Unsynchronized read: an early-exit hint, like the pool's. *)
    st.s_failure <> None

  let exec st ctx ((_, body) : 'a task_t) =
    (try
       let chunks = body ctx in
       Mutex.lock st.res_mutex;
       st.chunks <- chunks :: st.chunks;
       Mutex.unlock st.res_mutex
     with e -> record_failure st e);
    Atomic.decr st.outstanding

  (* Worker [w]: drain own deque bottom-first; when empty, raise the
     hungry flag (which is what makes running owners split) and scan
     other deques under the victim policy until a steal succeeds or all
     tasks in the system have finished. *)
  let worker_loop st w =
    let ctx = { st; worker = w } in
    let hungry_flag = ref false in
    let settle () =
      if !hungry_flag then begin
        Atomic.decr st.hungry;
        hungry_flag := false
      end
    in
    let round = ref 0 in
    let running = ref true in
    while !running do
      match pop_bottom st.deques.(w) with
      | Some t ->
        settle ();
        round := 0;
        exec st ctx t
      | None ->
        if Atomic.get st.outstanding = 0 || failed st then begin
          settle ();
          running := false
        end
        else begin
          if not !hungry_flag then begin
            Atomic.incr st.hungry;
            hungry_flag := true
          end;
          let victims = st.s_jobs - 1 in
          if victims = 0 then Domain.cpu_relax ()
          else begin
            let k = st.s_victim ~thief:w ~round:!round ~victims in
            incr round;
            let k = ((k mod victims) + victims) mod victims in
            let v = if k >= w then k + 1 else k in
            match steal_top st.deques.(v) with
            | Some t ->
              settle ();
              round := 0;
              exec st ctx t
            | None -> Domain.cpu_relax ()
          end
        end
    done

  let default_victim ~thief:_ ~round ~victims = round mod victims

  (* LPT seeding: place the heaviest task first, each on the currently
     lightest deque (ties to the lowest worker index).  Pure placement -
     the keyed merge makes the output independent of it. *)
  let seed_deques st tasks weights =
    let n = Array.length tasks in
    let order = Array.init n Fun.id in
    (match weights with
    | None -> ()
    | Some w ->
      if Array.length w <> n then
        invalid_arg "Parallel.Steal.run: weights length must match tasks";
      Array.sort
        (fun i j -> if w.(i) <> w.(j) then Stdlib.compare w.(j) w.(i) else Stdlib.compare i j)
        order);
    let load = Array.make st.s_jobs 0.0 in
    Array.iter
      (fun i ->
        let tgt = ref 0 in
        for d = 1 to st.s_jobs - 1 do
          if load.(d) < load.(!tgt) then tgt := d
        done;
        load.(!tgt) <-
          load.(!tgt) +. (match weights with None -> 1.0 | Some w -> max w.(i) 1e-9);
        push_bottom st.deques.(!tgt) tasks.(i))
      order

  let run pool ?(victim = default_victim) ?weights tasks =
    let n = Array.length tasks in
    if n = 0 then []
    else begin
      let jobs = pool.pool_jobs in
      let st =
        { s_jobs = jobs;
          deques = Array.init jobs (fun _ -> new_deque ());
          hungry = Atomic.make 0;
          outstanding = Atomic.make n;
          res_mutex = Mutex.create ();
          chunks = [];
          s_failure = None;
          s_victim = victim }
      in
      seed_deques st tasks weights;
      (* One worker loop per slot.  Under re-entrant submission
         [parallel_for] degrades to inline: slot 0 then drains every
         deque (stealing its way through them) and the rest exit
         immediately - same output, no parallelism. *)
      parallel_for pool ~n:jobs (fun w -> worker_loop st w);
      match st.s_failure with
      | Some e -> raise e
      | None ->
        List.stable_sort
          (fun (ka, _) (kb, _) -> compare_path ka kb)
          (List.concat st.chunks)
    end
end

let steal_map_array pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let tasks = Array.init n (fun i -> ([ i ], fun _ctx -> [ ([ i ], f xs.(i)) ])) in
    let chunks = Steal.run pool tasks in
    let out = Array.of_list (List.map snd chunks) in
    assert (Array.length out = n);
    out
  end

(* ---------- the scheduler default ---------- *)

type sched = [ `Static | `Steal ]

let env_sched () =
  match Sys.getenv_opt "TILESCHED_SCHED" with
  | Some s -> ( match String.trim s with "static" -> `Static | _ -> `Steal)
  | None -> `Steal

let default_sched_ref = ref (env_sched ())
let default_sched () = !default_sched_ref
let set_default_sched s = default_sched_ref := s

(* Scheduler-aware fork/join maps, shadowing the static-split versions
   above.  Both schedulers produce the same (index-ordered) output; the
   [`Steal] path merely balances uneven task costs across the deques. *)
let map_array ?sched pool f xs =
  let sched = match sched with Some s -> s | None -> default_sched () in
  match sched with
  | `Static -> map_array pool f xs
  | `Steal -> if pool.pool_jobs <= 1 then map_array pool f xs else steal_map_array pool f xs

let map ?sched pool f xs = Array.to_list (map_array ?sched pool f (Array.of_list xs))
let filter_map ?sched pool f xs = List.filter_map Fun.id (map ?sched pool f xs)
let concat_map ?sched pool f xs = List.concat (map ?sched pool f xs)

(* ---------- the process-wide default pool ---------- *)

let env_jobs () =
  match Sys.getenv_opt "TILESCHED_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j when j >= 1 -> j | _ -> 1)

let default_jobs = ref (env_jobs ())
let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ~jobs:!default_jobs in
    default_pool := Some p;
    p

let set_default_jobs j =
  if j < 1 then invalid_arg "Parallel.set_default_jobs: jobs must be >= 1";
  (match !default_pool with
  | Some p when p.pool_jobs <> j ->
    shutdown p;
    default_pool := None
  | _ -> ());
  default_jobs := j
