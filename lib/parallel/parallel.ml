(* A generation-stamped batch dispatcher: workers park on [start] between
   batches; a batch bumps [generation], publishes the task under the
   mutex, and everyone (submitter included) pulls indices from one atomic
   counter.  Results are written by index on the caller's side, so
   scheduling order never shows in the output. *)

type pool = {
  pool_jobs : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable task : (int -> unit) option;
  mutable limit : int;
  next : int Atomic.t;
  mutable active : int;  (* workers still draining the current batch *)
  mutable stop : bool;
  mutable busy : bool;  (* a batch is in flight; re-entry runs inline *)
  mutable failure : exn option;
  mutable domains : unit Domain.t list;
}

let jobs p = p.pool_jobs

(* Pull indices until the batch is exhausted (or poisoned by a failure;
   the unsynchronized read of [failure] is only an early-exit hint). *)
let drain pool f n =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add pool.next 1 in
    if i >= n || pool.failure <> None then continue := false
    else
      try f i
      with e ->
        Mutex.lock pool.mutex;
        if pool.failure = None then pool.failure <- Some e;
        Mutex.unlock pool.mutex
  done

let rec worker_loop pool my_gen =
  Mutex.lock pool.mutex;
  while pool.generation = my_gen && not pool.stop do
    Condition.wait pool.start pool.mutex
  done;
  if pool.stop then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    let f = Option.get pool.task and n = pool.limit in
    Mutex.unlock pool.mutex;
    drain pool f n;
    Mutex.lock pool.mutex;
    pool.active <- pool.active - 1;
    if pool.active = 0 then Condition.broadcast pool.finished;
    Mutex.unlock pool.mutex;
    worker_loop pool gen
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be >= 1";
  let pool =
    { pool_jobs = jobs; mutex = Mutex.create (); start = Condition.create ();
      finished = Condition.create (); generation = 0; task = None; limit = 0;
      next = Atomic.make 0; active = 0; stop = false; busy = false; failure = None;
      domains = [] }
  in
  if jobs > 1 then
    pool.domains <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run_inline f n =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for pool ~n f =
  if n <= 0 then ()
  else if pool.pool_jobs = 1 || n = 1 || pool.domains = [] then run_inline f n
  else begin
    Mutex.lock pool.mutex;
    if pool.busy then begin
      (* Re-entrant (or concurrent) submission: stay correct, run inline. *)
      Mutex.unlock pool.mutex;
      run_inline f n
    end
    else begin
      pool.busy <- true;
      pool.task <- Some f;
      pool.limit <- n;
      Atomic.set pool.next 0;
      pool.failure <- None;
      pool.active <- List.length pool.domains;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.start;
      Mutex.unlock pool.mutex;
      drain pool f n;
      Mutex.lock pool.mutex;
      while pool.active > 0 do
        Condition.wait pool.finished pool.mutex
      done;
      pool.task <- None;
      pool.busy <- false;
      let failure = pool.failure in
      pool.failure <- None;
      Mutex.unlock pool.mutex;
      match failure with Some e -> raise e | None -> ()
    end
  end

let map_array pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map Option.get out
  end

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))
let filter_map pool f xs = List.filter_map Fun.id (map pool f xs)
let concat_map pool f xs = List.concat (map pool f xs)

(* ---------- the process-wide default pool ---------- *)

let env_jobs () =
  match Sys.getenv_opt "TILESCHED_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j when j >= 1 -> j | _ -> 1)

let default_jobs = ref (env_jobs ())
let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create ~jobs:!default_jobs in
    default_pool := Some p;
    p

let set_default_jobs j =
  if j < 1 then invalid_arg "Parallel.set_default_jobs: jobs must be >= 1";
  (match !default_pool with
  | Some p when p.pool_jobs <> j ->
    shutdown p;
    default_pool := None
  | _ -> ());
  default_jobs := j
