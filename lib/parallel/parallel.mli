(** A fixed pool of worker domains with deterministic fork/join maps.

    The search kernels of this project - sublattice enumeration, exact
    cover on the torus quotient, chromatic-number branching, multi-seed
    simulation sweeps - are embarrassingly parallel over independent
    subtrees.  This module provides the one primitive they share: run
    [n] independent tasks on a fixed set of domains and collect the
    results {e by task index}, so the output is bit-identical to the
    sequential run no matter how the tasks were interleaved.

    {2 Determinism contract}

    Every function here is a pure fork/join: task [i] may only write its
    own slot of the result, slots are assembled in index order, and no
    task observes another's timing.  Provided the task function itself is
    deterministic, [map pool f xs = List.map f xs] for {e every} pool
    size - the tests enforce this for the search engines at
    [jobs = 1, 2, 4].

    {2 Pool lifecycle}

    A pool of [~jobs:j] keeps [j - 1] worker domains parked on a
    condition variable between batches; the calling domain works too, so
    [j] is the total parallelism.  [jobs = 1] spawns nothing and runs
    every batch inline.  Pools are cheap to keep around and are meant to
    be created once (see {!default}); [shutdown] joins the workers.

    Nested use is safe but not parallel: a task that re-enters the same
    pool (or any batch submitted while one is running) falls back to
    inline sequential execution rather than deadlocking. *)

type pool

val create : jobs:int -> pool
(** [create ~jobs] spawns [jobs - 1] worker domains.  [jobs] must be at
    least 1.  Oversubscribing the machine is allowed but pointless. *)

val jobs : pool -> int
(** Total parallelism (workers + the submitting domain). *)

val shutdown : pool -> unit
(** Terminate and join the workers; the pool then runs everything
    inline.  Idempotent. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

val default : unit -> pool
(** The process-wide shared pool, created on first use with
    {!set_default_jobs}'s value (initially [TILESCHED_JOBS] from the
    environment, else 1 - fully sequential).  All search entry points
    fall back to this pool when not handed one explicitly, which is how
    the [tilesched -j] flag reaches them. *)

val set_default_jobs : int -> unit
(** Set the size used by {!default}; if the default pool already exists
    at a different size it is shut down and recreated lazily. *)

val parallel_for : pool -> n:int -> (int -> unit) -> unit
(** Run [f 0 .. f (n-1)], distributed over the pool; returns when all
    are done.  If any task raises, one of the exceptions is re-raised
    here after the batch drains (remaining tasks are skipped on a
    best-effort basis). *)

val map_array : pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs]: like [Array.map f xs]; element [i] of the
    result is [f xs.(i)] regardless of which domain computed it. *)

val map : pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs = List.map f xs], computed in parallel. *)

val filter_map : pool -> ('a -> 'b option) -> 'a list -> 'b list
(** [filter_map pool f xs = List.filter_map f xs]: [f] runs in
    parallel, the filtering keeps list order. *)

val concat_map : pool -> ('a -> 'b list) -> 'a list -> 'b list
(** [concat_map pool f xs = List.concat_map f xs]: chunk results are
    concatenated in input order. *)
