(** A fixed pool of worker domains with deterministic fork/join maps.

    The search kernels of this project - sublattice enumeration, exact
    cover on the torus quotient, chromatic-number branching, multi-seed
    simulation sweeps - are embarrassingly parallel over independent
    subtrees.  This module provides the one primitive they share: run
    [n] independent tasks on a fixed set of domains and collect the
    results {e by task index}, so the output is bit-identical to the
    sequential run no matter how the tasks were interleaved.

    {2 Determinism contract}

    Every function here is a pure fork/join: task [i] may only write its
    own slot of the result, slots are assembled in index order, and no
    task observes another's timing.  Provided the task function itself is
    deterministic, [map pool f xs = List.map f xs] for {e every} pool
    size - the tests enforce this for the search engines at
    [jobs = 1, 2, 4, 8], under both schedulers.

    {2 Pool lifecycle}

    A pool of [~jobs:j] keeps [j - 1] worker domains parked on a
    condition variable between batches; the calling domain works too, so
    [j] is the total parallelism.  [jobs = 1] spawns nothing and runs
    every batch inline.  Pools are cheap to keep around and are meant to
    be created once (see {!default}); [shutdown] joins the workers.

    Nested use is safe but not parallel: a task that re-enters the same
    pool (or any batch submitted while one is running) falls back to
    inline sequential execution rather than deadlocking. *)

type pool

val create : jobs:int -> pool
(** [create ~jobs] spawns [jobs - 1] worker domains.  [jobs] must be at
    least 1.  Oversubscribing the machine is allowed but pointless. *)

val jobs : pool -> int
(** Total parallelism (workers + the submitting domain). *)

val shutdown : pool -> unit
(** Terminate and join the workers; the pool then runs everything
    inline.  Idempotent. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

val default : unit -> pool
(** The process-wide shared pool, created on first use with
    {!set_default_jobs}'s value (initially [TILESCHED_JOBS] from the
    environment, else 1 - fully sequential).  All search entry points
    fall back to this pool when not handed one explicitly, which is how
    the [tilesched -j] flag reaches them. *)

val set_default_jobs : int -> unit
(** Set the size used by {!default}; if the default pool already exists
    at a different size it is shut down and recreated lazily. *)

val parallel_for : pool -> n:int -> (int -> unit) -> unit
(** Run [f 0 .. f (n-1)], distributed over the pool; returns when all
    are done.  If any task raises, one of the exceptions is re-raised
    here after the batch drains (remaining tasks are skipped on a
    best-effort basis). *)

type sched = [ `Static | `Steal ]
(** How fork/join work is distributed over the pool:

    - [`Static]: the original batch dispatcher - one shared atomic index
      over a fixed task array.  Kept selectable as the differential
      oracle for the stealing scheduler.
    - [`Steal]: per-worker deques with work stealing and lazy task
      splitting ({!Steal}), the default.  Balances skewed task costs;
      produces bit-identical output to [`Static] (and to [jobs = 1]) by
      the canonical-key merge described below. *)

val default_sched : unit -> sched
(** The process-wide scheduler default, initially [TILESCHED_SCHED] from
    the environment (["static"] selects [`Static]; anything else,
    including unset, selects [`Steal]).  Every [?sched] argument below
    and in the search entry points falls back to this, which is how the
    [tilesched --sched] flag reaches them. *)

val set_default_sched : sched -> unit

module Steal : sig
  (** The work-stealing runtime.

      Each worker slot owns a deque of tasks; owners push and pop at the
      bottom (newest first, for locality), thieves steal from the top
      (oldest first - the shallowest subtree, hence the biggest expected
      remaining work, as in a Chase-Lev deque).  A thief that finds
      every deque empty while tasks are still outstanding raises a
      {e hungry} flag; running tasks poll it via {!should_split} and
      give away part of their remaining work with {!spawn}.

      {2 Determinism contract}

      Every task and every result chunk carries a canonical {e path
      key}: the list of branch positions from the search root
      identifying the subtree the chunk's results come from.  [run]
      concatenates all chunks sorted by key - lexicographically, with a
      prefix sorting before its extensions - so the output depends only
      on the keys, never on which worker computed a chunk or when.
      Callers must therefore (a) key chunks so that key order equals
      sequential enumeration order, and (b) never emit two chunks with
      equal keys from different subtrees.  Under those rules the result
      is bit-identical to the sequential run for every pool size,
      victim policy, and interleaving - the fuzzer drives randomized
      victim policies over ~100 seeds to enforce exactly this. *)

  type 'a ctx
  (** Handle a running task uses to interact with the scheduler. *)

  val should_split : 'a ctx -> bool
  (** True when some worker is starving and this worker's own deque is
      empty: the task should give away part of its remaining subtree via
      {!spawn}.  Cheap (two plain reads), safe to poll at every search
      node.  Always false at [jobs = 1]. *)

  val spawn : 'a ctx -> key:int list -> ('a ctx -> (int list * 'a) list) -> unit
  (** [spawn ctx ~key body] pushes a new task onto the calling worker's
      own deque, from where idle workers steal it.  [body] runs with a
      ctx of whichever worker executes it and returns its keyed chunks;
      [key] must be the canonical path of the subtree given away. *)

  val run :
    pool ->
    ?victim:(thief:int -> round:int -> victims:int -> int) ->
    ?weights:float array ->
    (int list * ('a ctx -> (int list * 'a) list)) array ->
    (int list * 'a) list
  (** [run pool tasks] executes the tasks (and everything they [spawn])
      to completion and returns all chunks sorted by path key.  Each
      task is [(key, body)]; bodies run on worker domains, so they must
      obey the same purity rule as every Parallel fan-out closure (lint
      R3): mutate only state created inside the body.

      [weights] (same length as [tasks]) seeds the initial deque
      assignment longest-processing-time-first from a caller-supplied
      cost model; it affects placement only, never the output.

      [victim ~thief ~round ~victims] is a debug hook for the steal-
      schedule fuzzer: it picks which of the [victims] other deques the
      starving [thief] scans on attempt [round] (any return value is
      reduced mod [victims]; the default scans round-robin).  It runs
      concurrently on worker domains, so it must be thread-safe.

      If any task raises, one exception is re-raised after the workers
      drain; remaining tasks are skipped best-effort. *)
end

val steal_map_array : pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array] on the stealing runtime: one task per element, no
    splitting - dynamic load balance for uneven per-element cost.
    Output is index-ordered, identical to {!map_array}. *)

val map_array : ?sched:sched -> pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs]: like [Array.map f xs]; element [i] of the
    result is [f xs.(i)] regardless of which domain computed it.
    [sched] (default {!default_sched}) picks the distribution
    mechanism; both produce identical output. *)

val map : ?sched:sched -> pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs = List.map f xs], computed in parallel. *)

val filter_map : ?sched:sched -> pool -> ('a -> 'b option) -> 'a list -> 'b list
(** [filter_map pool f xs = List.filter_map f xs]: [f] runs in
    parallel, the filtering keeps list order. *)

val concat_map : ?sched:sched -> pool -> ('a -> 'b list) -> 'a list -> 'b list
(** [concat_map pool f xs = List.concat_map f xs]: chunk results are
    concatenated in input order. *)
