open Zgeom
open Lattice

type figure = { name : string; ascii : string; svg : Svg.doc }

let fig1_lattices () =
  let doc = Svg.create ~width:14.0 ~height:6.0 in
  let draw_lattice ~origin_x embed label =
    List.iter
      (fun (a, b) ->
        let p = embed (Vec.make2 a b) in
        Svg.circle doc ~cx:(origin_x +. p.Voronoi.px +. 1.0) ~cy:(p.Voronoi.py +. 1.0) ~r:0.07
          ~fill:"black")
      (List.concat_map (fun a -> List.init 4 (fun b -> (a, b))) (List.init 5 Fun.id));
    let e1 = embed (Vec.make2 1 0) and e2 = embed (Vec.make2 0 1) in
    Svg.arrow doc ~x1:(origin_x +. 1.0) ~y1:1.0 ~x2:(origin_x +. 1.0 +. e1.Voronoi.px)
      ~y2:(1.0 +. e1.Voronoi.py) ~stroke:"#e15759";
    Svg.arrow doc ~x1:(origin_x +. 1.0) ~y1:1.0 ~x2:(origin_x +. 1.0 +. e2.Voronoi.px)
      ~y2:(1.0 +. e2.Voronoi.py) ~stroke:"#4e79a7";
    Svg.text doc ~x:(origin_x +. 3.0) ~y:5.5 ~size:0.35 label
  in
  draw_lattice ~origin_x:0.0 Voronoi.embed_square "square lattice L_S";
  draw_lattice ~origin_x:7.5 Voronoi.embed_hex "hexagonal lattice L_H";
  let ascii =
    String.concat "\n"
      [ "square lattice (basis (1,0),(0,1)):";
        Ascii.grid ~width:7 ~height:5 ~char_at:(fun ~x:_ ~y:_ -> '.');
        "hexagonal lattice (basis (1,0),(1/2,sqrt3/2)): rows offset by 1/2";
        String.concat "\n"
          (List.init 5 (fun r -> String.make (r mod 2) ' ' ^ ". . . . . . ." |> String.trim)) ]
  in
  { name = "fig1_lattices"; ascii; svg = doc }

let neighborhood_examples () =
  [ ("chebyshev r=1", Prototile.chebyshev_ball ~dim:2 1);
    ("euclidean r=1", Prototile.euclidean_ball ~dim:2 1);
    ("directional 2x4", Prototile.directional) ]

let fig2_neighborhoods () =
  let doc = Svg.create ~width:16.0 ~height:7.0 in
  List.iteri
    (fun i (label, p) ->
      let ox = (float_of_int i *. 5.5) +. 1.5 in
      List.iter
        (fun c ->
          let x = ox +. float_of_int (Vec.x c) and y = 3.0 +. float_of_int (Vec.y c) in
          Svg.text doc ~x ~y ~size:0.4 "x";
          if Vec.is_zero c then Svg.circle doc ~cx:x ~cy:y ~r:0.3 ~fill:"none")
        (Prototile.cells p);
      List.iter
        (fun c ->
          if Vec.is_zero c then
            Svg.circle doc ~cx:ox ~cy:3.0 ~r:0.08 ~fill:"#e15759")
        (Prototile.cells p);
      Svg.text doc ~x:(ox +. 0.5) ~y:6.3 ~size:0.3 label)
    (neighborhood_examples ());
  let ascii =
    String.concat "\n\n"
      (List.map
         (fun (label, p) -> label ^ " (m=" ^ string_of_int (Prototile.size p) ^ "):\n" ^ Ascii.prototile p)
         (neighborhood_examples ()))
  in
  { name = "fig2_neighborhoods"; ascii; svg = doc }

let directional_tiling () =
  match Tiling.Search.find_lattice_tiling Prototile.directional with
  | Some t -> t
  | None -> failwith "directional prototile must tile"

let fig3_schedule () =
  let t = directional_tiling () in
  let sched = Core.Schedule.of_tiling t in
  let w = 12 and h = 10 in
  let doc = Svg.create ~width:(float_of_int w +. 1.0) ~height:(float_of_int h +. 1.0) in
  for x = 0 to w - 1 do
    for y = 0 to h - 1 do
      let v = Vec.make2 x y in
      let s, _ = Tiling.Single.tile_of t v in
      let slot = Core.Schedule.slot_at sched v in
      let k = (Vec.x s * 31) + (Vec.y s * 17) in
      Svg.rect doc ~x:(float_of_int x +. 0.5) ~y:(float_of_int y +. 0.5) ~w:1.0 ~h:1.0
        ~fill:(Svg.palette k) ~stroke:"black" ();
      Svg.text doc ~x:(float_of_int x +. 1.0) ~y:(float_of_int y +. 1.0) ~size:0.4
        (string_of_int (slot + 1))
    done
  done;
  let ascii =
    "tiling by 2x4 directional prototile (tiles as letters):\n"
    ^ Ascii.tiling t ~width:w ~height:h
    ^ "\n\nTheorem-1 schedule (slot at each sensor, 1..8 shown 0..7):\n"
    ^ Ascii.schedule sched ~width:w ~height:h
  in
  { name = "fig3_schedule"; ascii; svg = doc }

let fig4_voronoi () =
  let doc = Svg.create ~width:15.0 ~height:7.0 in
  (* Square-lattice quasi-polyomino: the P-pentomino's squares. *)
  let p = Prototile.pentomino `P in
  List.iter
    (fun c ->
      let corners =
        List.map
          (fun (rx, ry) -> (2.0 +. Zgeom.Rat.to_float rx, 3.0 +. Zgeom.Rat.to_float ry))
          (Voronoi.square_cell_corners c)
      in
      Svg.polygon doc corners ~fill:"#d0e0f0" ();
      let pt = Voronoi.embed_square c in
      Svg.circle doc ~cx:(2.0 +. pt.Voronoi.px) ~cy:(3.0 +. pt.Voronoi.py) ~r:0.06 ~fill:"black")
    (Prototile.cells p);
  Svg.text doc ~x:3.0 ~y:6.3 ~size:0.3 "quasi-polyomino (union of square cells)";
  (* Hexagonal cells. *)
  List.iter
    (fun (a, b) ->
      let v = Vec.make2 a b in
      let corners =
        List.map (fun q -> (8.0 +. q.Voronoi.px, 2.5 +. q.Voronoi.py)) (Voronoi.hex_cell_corners v)
      in
      Svg.polygon doc corners ~fill:"#f0e0d0" ();
      let pt = Voronoi.embed_hex v in
      Svg.circle doc ~cx:(8.0 +. pt.Voronoi.px) ~cy:(2.5 +. pt.Voronoi.py) ~r:0.06 ~fill:"black")
    [ (0, 0); (1, 0); (2, 0); (0, 1); (1, 1); (0, 2); (1, 2) ];
  Svg.text doc ~x:10.0 ~y:6.3 ~size:0.3 "quasi-polyhex (union of hexagonal cells)";
  let ascii =
    "P-pentomino as quasi-polyomino (cells '#'):\n" ^ Ascii.prototile p
    ^ "\n\nhexagonal Voronoi cell: regular hexagon, area sqrt(3)/2 = "
    ^ Printf.sprintf "%.4f" Voronoi.hex_cell_area
  in
  { name = "fig4_voronoi"; ascii; svg = doc }

let sz_mixed_tiling () =
  let s = Prototile.tetromino `S and z = Prototile.tetromino `Z in
  let period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |] in
  let sols = Tiling.Search.cover_torus ~period ~prototiles:[ s; z ] ~max_solutions:200 () in
  let mixed =
    List.filter
      (fun m ->
        List.length (Tiling.Multi.pieces m) = 2 && Core.Optimality.ground_rule_minimum m = 6)
      sols
  in
  match mixed with
  | m :: _ -> m
  | [] -> failwith "no 6-slot S/Z tiling found"

let pure_s_tiling () =
  match Tiling.Search.find_lattice_tiling (Prototile.tetromino `S) with
  | Some t -> t
  | None -> failwith "S tetromino must tile"

let fig5_nonrespectable () =
  let mixed = sz_mixed_tiling () in
  let sched6 = Core.Schedule.of_multi mixed in
  let pure = pure_s_tiling () in
  let sched4 = Core.Schedule.of_tiling pure in
  let w = 12 and h = 8 in
  let doc = Svg.create ~width:26.0 ~height:(float_of_int h +. 2.0) in
  let draw ~ox slot_at tile_key =
    for x = 0 to w - 1 do
      for y = 0 to h - 1 do
        let v = Vec.make2 x y in
        Svg.rect doc ~x:(ox +. float_of_int x) ~y:(float_of_int y +. 1.0) ~w:1.0 ~h:1.0
          ~fill:(Svg.palette (tile_key v)) ~stroke:"black" ();
        Svg.text doc
          ~x:(ox +. float_of_int x +. 0.5)
          ~y:(float_of_int y +. 1.5)
          ~size:0.4
          (string_of_int (slot_at v + 1))
      done
    done
  in
  draw ~ox:0.5
    (Core.Schedule.slot_at sched6)
    (fun v ->
      let k, s, _ = Tiling.Multi.tile_of mixed v in
      (k * 7) + (Vec.x s * 31) + (Vec.y s * 17));
  draw ~ox:13.5
    (Core.Schedule.slot_at sched4)
    (fun v ->
      let s, _ = Tiling.Single.tile_of pure v in
      (Vec.x s * 31) + (Vec.y s * 17));
  Svg.text doc ~x:6.5 ~y:0.5 ~size:0.35 "S/Z mixed tiling: optimal schedule has 6 slots";
  Svg.text doc ~x:19.5 ~y:0.5 ~size:0.35 "pure S tiling: optimal schedule has 4 slots";
  let ascii =
    "S/Z mixed (non-respectable) tiling - tiles as letters (S: a-m, Z: n-z):\n"
    ^ Ascii.multi_tiling mixed ~width:w ~height:h
    ^ "\n\nTheorem-2 schedule on it (6 slots, 0..5):\n"
    ^ Ascii.schedule sched6 ~width:w ~height:h
    ^ "\n\npure S tiling (4 slots, 0..3):\n"
    ^ Ascii.schedule sched4 ~width:w ~height:h
  in
  { name = "fig5_nonrespectable"; ascii; svg = doc }

let all () =
  [ fig1_lattices (); fig2_neighborhoods (); fig3_schedule (); fig4_voronoi ();
    fig5_nonrespectable () ]

let save_all ~dir figures =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun f ->
      Svg.save f.svg (Filename.concat dir (f.name ^ ".svg"));
      Out_channel.with_open_text (Filename.concat dir (f.name ^ ".txt")) (fun oc ->
          output_string oc f.ascii;
          output_char oc '\n'))
    figures
