type doc = { width : float; height : float; body : Buffer.t }

let create ~width ~height = { width; height; body = Buffer.create 1024 }

(* Flip y: content coordinates are y-up, SVG is y-down. *)
let fy d y = d.height -. y

let bprintf d fmt = Printf.ksprintf (Buffer.add_string d.body) fmt

let circle d ~cx ~cy ~r ~fill =
  bprintf d "<circle cx=\"%.3f\" cy=\"%.3f\" r=\"%.3f\" fill=\"%s\"/>\n" cx (fy d cy) r fill

let line d ~x1 ~y1 ~x2 ~y2 ~stroke ~width =
  bprintf d
    "<line x1=\"%.3f\" y1=\"%.3f\" x2=\"%.3f\" y2=\"%.3f\" stroke=\"%s\" stroke-width=\"%.3f\"/>\n"
    x1 (fy d y1) x2 (fy d y2) stroke width

let polygon d points ~fill ?(stroke = "black") ?(stroke_width = 0.02) () =
  let pts =
    String.concat " " (List.map (fun (x, y) -> Printf.sprintf "%.3f,%.3f" x (fy d y)) points)
  in
  bprintf d "<polygon points=\"%s\" fill=\"%s\" stroke=\"%s\" stroke-width=\"%.3f\"/>\n" pts fill
    stroke stroke_width

let rect d ~x ~y ~w ~h ~fill ?(stroke = "none") () =
  bprintf d
    "<rect x=\"%.3f\" y=\"%.3f\" width=\"%.3f\" height=\"%.3f\" fill=\"%s\" stroke=\"%s\" \
     stroke-width=\"0.02\"/>\n"
    x
    (fy d (y +. h))
    w h fill stroke

let text d ~x ~y ~size s =
  bprintf d
    "<text x=\"%.3f\" y=\"%.3f\" font-size=\"%.3f\" text-anchor=\"middle\" \
     dominant-baseline=\"middle\" font-family=\"sans-serif\">%s</text>\n"
    x (fy d y) size s

let arrow d ~x1 ~y1 ~x2 ~y2 ~stroke =
  line d ~x1 ~y1 ~x2 ~y2 ~stroke ~width:0.04;
  (* Simple arrowhead: two short strokes at the tip. *)
  let dx = x2 -. x1 and dy = y2 -. y1 in
  let len = Float.hypot dx dy in
  if len > 1e-9 then begin
    let ux = dx /. len and uy = dy /. len in
    let size = 0.15 in
    let wing s =
      let wx = (-.ux *. 0.866) +. (s *. uy *. 0.5) in
      let wy = (-.uy *. 0.866) -. (s *. ux *. 0.5) in
      line d ~x1:x2 ~y1:y2 ~x2:(x2 +. (size *. wx)) ~y2:(y2 +. (size *. wy)) ~stroke ~width:0.04
    in
    wing 1.0;
    wing (-1.0)
  end

let to_string d =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %.3f %.3f\" width=\"%.0f\" \
     height=\"%.0f\">\n%s</svg>\n"
    d.width d.height (d.width *. 60.0) (d.height *. 60.0) (Buffer.contents d.body)

let save d path = Out_channel.with_open_text path (fun oc -> output_string oc (to_string d))

let palette_table =
  [| "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948"; "#b07aa1"; "#ff9da7";
     "#9c755f"; "#bab0ac"; "#86bcb6"; "#d37295"; "#fabfd2"; "#b6992d"; "#499894"; "#79706e" |]

let palette k = palette_table.(((k mod 16) + 16) mod 16)
