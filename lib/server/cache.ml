(* LRU over a Hashtbl plus an intrusive doubly-linked recency list.
   [sentinel] is a circular list head: sentinel.next is the most recently
   used node, sentinel.prev the least recently used. *)

type 'a node = {
  key : string;
  mutable value : 'a option;  (* None only for the sentinel *)
  mutable prev : 'a node;
  mutable next : 'a node;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  sentinel : 'a node;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let rec sentinel = { key = ""; value = None; prev = sentinel; next = sentinel } in
  { capacity; table = Hashtbl.create 64; sentinel; hits = 0; misses = 0; evictions = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  node.next <- t.sentinel.next;
  node.prev <- t.sentinel;
  t.sentinel.next.prev <- node;
  t.sentinel.next <- node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink node;
    push_front t node;
    node.value

let evict_lru t =
  let lru = t.sentinel.prev in
  if lru != t.sentinel then begin
    unlink lru;
    Hashtbl.remove t.table lru.key;
    t.evictions <- t.evictions + 1
  end

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- Some value;
    unlink node;
    push_front t node
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let rec node = { key; value = Some value; prev = node; next = node } in
    Hashtbl.replace t.table key node;
    push_front t node)

let counters t = (t.hits, t.misses, t.evictions)

let fold t ~init ~f =
  let rec go acc node =
    if node == t.sentinel then acc
    else
      match node.value with
      | None -> go acc node.next
      | Some v -> go (f acc node.key v) node.next
  in
  go init t.sentinel.next

let to_alist t = List.rev (fold t ~init:[] ~f:(fun acc key v -> (key, v) :: acc))
