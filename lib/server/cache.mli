(** A counting LRU cache with string keys.

    The schedule server keys this cache by the {e canonical form} of a
    prototile ({!Lattice.Symmetry.canonical}), so every congruence class
    of tiles - however a client happens to orient or translate its copy -
    shares one entry holding the expensive search result.  The cache is
    bounded: inserting into a full cache evicts the least recently used
    entry, and hits, misses and evictions are counted so the server can
    report them.

    Not thread-safe; the request engine serializes access. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be at least 1. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Entries currently held, [<= capacity]. *)

val find : 'a t -> string -> 'a option
(** Lookup; a present key becomes the most recently used.  Counts one
    hit or one miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace as most recently used; evicts the least recently
    used entry when the cache would exceed capacity.  Replacement does
    not count as an eviction. *)

val counters : 'a t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)

val fold : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
(** Fold over the entries from most to least recently used, without
    touching recency or the counters.  This is the enumeration the
    persistent store's write-through and snapshot paths use: the memory
    tier can be walked (e.g. to flush still-unpersisted entries on
    shutdown, hottest first) without reaching into the LRU internals. *)

val to_alist : 'a t -> (string * 'a) list
(** [(key, value)] pairs, most recently used first; same contract as
    {!fold}. *)
