open Zgeom
open Lattice

(* What the cache remembers per canonical tile: either a tiling (with the
   schedule and certificate it induces, all for the canonical
   orientation) or a proof of exhaustion. *)
type entry =
  | Found of {
      tiling : Tiling.Single.t;
      schedule : Core.Schedule.t;
      certificate : Core.Certificate.t;
    }
  | Absent

type t = {
  cache : entry Cache.t;
  store : Store.t option;
  corpus : Corpus.Snapshot.t option;
  queue_bound : int;
  deadline : float option;
  torus_factors : int list;
  search_engine : Tiling.Search.engine;
  pool : Parallel.pool;
  mutable served : int;
  mutable overloaded : int;
  mutable errors : int;
  mutable searches : int;
  mutable coalesced : int;
  mutable timeouts : int;
  mutable store_hits : int;
  mutable corpus_hits : int;
}

let create ?(cache_capacity = 256) ?(queue_bound = 512) ?deadline
    ?(torus_factors = [ 1; 2; 3; 4 ]) ?(search_engine = `Bitmask) ?pool ?store ?corpus () =
  if queue_bound < 1 then invalid_arg "Engine.create: queue_bound must be >= 1";
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  { cache = Cache.create ~capacity:cache_capacity; store; corpus; queue_bound; deadline;
    torus_factors; search_engine; pool; served = 0; overloaded = 0; errors = 0;
    searches = 0; coalesced = 0; timeouts = 0; store_hits = 0; corpus_hits = 0 }

let queue_bound t = t.queue_bound

let corpus t = t.corpus

(* The evloop front end answers warm binary corpus probes on the loop
   thread without entering the engine; it folds those replies back into
   the counters here, from the engine thread, so [stats] stays the one
   source of truth and the counter fields stay single-threaded. *)
let add_corpus_hits t n =
  t.corpus_hits <- t.corpus_hits + n;
  t.served <- t.served + n

let canonical_key tile =
  Core.Codec.vecs_to_string (Prototile.cells (Symmetry.canonical tile))

let stats t : Protocol.server_stats =
  let cache_hits, cache_misses, cache_evictions = Cache.counters t.cache in
  { served = t.served; overloaded = t.overloaded; errors = t.errors; searches = t.searches;
    coalesced = t.coalesced; timeouts = t.timeouts; cache_hits; cache_misses;
    cache_evictions; cache_entries = Cache.length t.cache; store_hits = t.store_hits;
    corpus_hits = t.corpus_hits }

(* The store speaks in durable artifacts (tiling + certificate); the
   memory tier additionally holds the derived schedule.  Rebuilding it
   on promotion is cheap next to the search both tiers amortize. *)
let entry_of_stored : Store.entry -> entry = function
  | Store.No_tiling -> Absent
  | Store.Found { tiling; certificate } ->
    Found { tiling; schedule = Core.Schedule.of_tiling tiling; certificate }

let stored_of_entry : entry -> Store.entry = function
  | Absent -> Store.No_tiling
  | Found { tiling; certificate; _ } -> Store.Found { tiling; certificate }

let flush_to_store t =
  match t.store with
  | None -> 0
  | Some store ->
    Cache.fold t.cache ~init:0 ~f:(fun written key entry ->
        if Store.mem store key then written
        else begin
          Store.put store key (stored_of_entry entry);
          written + 1
        end)

(* Deadline-aware mirror of [Tiling.Search.find_tiling]: the same stages
   in the same order, with the wall clock checked between stages (a
   single stage can overshoot; the bound is per-stage granular).  Returns
   [None] on timeout, [Some entry] otherwise. *)
exception Expired

let search t tile =
  let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) t.deadline in
  let check () =
    match deadline with
    | Some d when Unix.gettimeofday () >= d -> raise Expired
    | _ -> ()
  in
  let entry_of tiling =
    let schedule = Core.Schedule.of_tiling tiling in
    let certificate = Core.Certificate.build tiling in
    Found { tiling; schedule; certificate }
  in
  match
    check ();
    match Tiling.Search.find_lattice_tiling tile with
    | Some tiling -> entry_of tiling
    | None ->
      let d = Prototile.dim tile in
      let m = Prototile.size tile in
      let found = ref None in
      List.iter
        (fun f ->
          if !found = None then
            List.iter
              (fun lam ->
                if !found = None then begin
                  check ();
                  Tiling.Search.cover_torus ~period:lam ~prototiles:[ tile ]
                    ~max_solutions:1 ~engine:t.search_engine ()
                  |> List.iter (fun mt ->
                         if !found = None then
                           match Tiling.Multi.pieces mt with
                           | [ pc ] -> (
                             match
                               Tiling.Single.make ~prototile:tile ~period:lam
                                 ~offsets:pc.Tiling.Multi.piece_offsets
                             with
                             | Ok tl -> found := Some tl
                             | Error _ -> ())
                           | _ -> ())
                end)
              (Sublattice.all_of_index ~dim:d (f * m)))
        t.torus_factors;
      (match !found with Some tiling -> entry_of tiling | None -> Absent)
  with
  | entry -> Some entry
  | exception Expired -> None

(* Transport a cached canonical tiling back to the client's orientation.
   If [canonicalize tile] returned witness [g], the canonical cells are
   [g(cells tile) - a] with [a] the lex-min of [g(cells tile)]; a tiling
   [offsets + Lambda] of the canonical tile therefore maps to
   [g^-1(offsets - a) + g^-1(Lambda)] for [tile] itself.  [Single.make]
   revalidates the transported tiling from scratch. *)
let transport ~tile ~g canon_tiling =
  let a =
    Vec.Set.min_elt (Vec.Set.map (Symmetry.apply g) (Prototile.cell_set tile))
  in
  let gi = Symmetry.inverse g in
  let period =
    Sublattice.of_rows
      (List.map (Symmetry.apply gi)
         (Sublattice.generators (Tiling.Single.period canon_tiling)))
  in
  let offsets =
    List.map
      (fun o -> Symmetry.apply gi (Vec.sub o a))
      (Tiling.Single.offsets canon_tiling)
  in
  Tiling.Single.make ~prototile:tile ~period ~offsets

(* Per-request resolution computed in the admission pass. *)
type resolution =
  | Refused
  | Control  (* Stats / Shutdown: answered in the final pass *)
  | Immediate of Protocol.response
  | Tile of {
      tile : Prototile.t;
      canon : Prototile.t;
      g : Symmetry.element;
      key : string;
    }

let answer t (req : Protocol.request) ~tile ~g ~source entry : Protocol.response =
  match entry with
  | Absent -> No_tiling source
  | Found { tiling; schedule; certificate } -> (
    let oriented =
      if Prototile.equal tile (Tiling.Single.prototile tiling) then
        Ok (tiling, lazy schedule, lazy certificate)
      else
        match transport ~tile ~g tiling with
        | Ok tl ->
          Ok
            ( tl,
              lazy (Core.Schedule.of_tiling tl),
              lazy (Core.Certificate.build tl) )
        | Error msg -> Error ("internal: transported tiling invalid: " ^ msg)
    in
    match oriented with
    | Error msg ->
      t.errors <- t.errors + 1;
      Error_r msg
    | Ok (tl, sched, cert) -> (
      match req with
      | Slot { pos; _ } ->
        if Vec.dim pos <> Prototile.dim tile then begin
          t.errors <- t.errors + 1;
          Error_r "pos dimension does not match tile"
        end
        else
          let sched = Lazy.force sched in
          Slot_r
            { slot = Core.Schedule.slot_at sched pos;
              num_slots = Core.Schedule.num_slots sched; source }
      | Schedule _ -> Schedule_r { schedule = Lazy.force sched; source }
      | Tile_search _ -> Tiling_r { tiling = tl; certificate = Lazy.force cert; source }
      | Stats | Shutdown -> assert false))

(* Answer straight from the mmap snapshot.  A [Tile_search] for the
   canonical orientation takes the zero-deserialization road: the stored
   tiling line's fields are sliced from the mapped segment and spliced
   verbatim into the reply ([Tiling_raw_r]) - no decode, no revalidation,
   no allocation beyond the reply line itself.  Every other shape
   (slot/schedule derivation, congruent orientations needing transport)
   decodes through [Snapshot.entry] and reuses the ordinary [answer]
   path.  Corpus hits never populate the LRU: the snapshot lookup is
   already O(log) in a mapped index, so promotion would only evict
   entries the slower tiers still need. *)
let answer_corpus t (req : Protocol.request) ~tile ~canon ~g corpus hit : Protocol.response =
  let source = Some Protocol.Corpus in
  match Corpus.Snapshot.verdict corpus hit with
  | `Non_exact -> No_tiling source
  | `Exact -> (
    match req with
    | Tile_search _ when Prototile.equal tile canon ->
      Tiling_raw_r { tiling_fields = Corpus.Snapshot.tiling_fields corpus hit; source }
    | _ -> (
      match Corpus.Snapshot.entry corpus hit with
      | Ok (Some (tiling, certificate)) ->
        answer t req ~tile ~g ~source
          (Found { tiling; schedule = Core.Schedule.of_tiling tiling; certificate })
      | Ok None -> assert false (* verdict above was [`Exact] *)
      | Error msg ->
        t.errors <- t.errors + 1;
        Error_r ("corpus: " ^ msg)))

let handle_batch t reqs =
  (* Pass 1: admission control, canonicalization, tiered lookup (the
     mmap corpus snapshot first - it is read-only and O(log) to probe -
     then memory, then the persistent store; a store hit is promoted
     into the LRU so congruent followers hit memory). *)
  let resolutions =
    List.mapi
      (fun i (req : Protocol.request) ->
        if i >= t.queue_bound then Refused
        else
          match req with
          | Stats | Shutdown -> Control
          | Slot { tile; _ } | Schedule tile | Tile_search tile ->
            let canon, g = Symmetry.canonicalize tile in
            let key = Core.Codec.vecs_to_string (Prototile.cells canon) in
            (match
               Option.bind t.corpus (fun c ->
                   Option.map (fun h -> (c, h)) (Corpus.Snapshot.find c key))
             with
            | Some (c, hit) ->
              t.corpus_hits <- t.corpus_hits + 1;
              Immediate (answer_corpus t req ~tile ~canon ~g c hit)
            | None ->
            match Cache.find t.cache key with
            | Some entry ->
              Immediate (answer t req ~tile ~g ~source:(Some Protocol.Memory) entry)
            | None -> (
              match Option.bind t.store (fun store -> Store.find store key) with
              | Some stored ->
                let entry = entry_of_stored stored in
                Cache.add t.cache key entry;
                t.store_hits <- t.store_hits + 1;
                Immediate (answer t req ~tile ~g ~source:(Some Protocol.Store) entry)
              | None -> Tile { tile; canon; g; key })))
      reqs
  in
  (* Pass 2: coalesce misses by canonical key (first-occurrence order)
     and search the distinct keys concurrently.  Timeouts are not
     cached. *)
  let missing = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (function
      | Tile { key; canon; _ } ->
        if Hashtbl.mem seen key then t.coalesced <- t.coalesced + 1
        else begin
          Hashtbl.add seen key ();
          (* Search the canonical orientation so the cached entry is
             canonical regardless of which orientation missed first. *)
          missing := (key, canon) :: !missing
        end
      | _ -> ())
    resolutions;
  let missing = List.rev !missing in
  t.searches <- t.searches + List.length missing;
  let results =
    Parallel.map t.pool (fun (key, canon) -> (key, search t canon)) missing
  in
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun (key, result) ->
      (match result with
      | Some entry ->
        Cache.add t.cache key entry;
        (* Write-through: completed verdicts (either way) are durable;
           timeouts are not persisted, like they are not cached. *)
        Option.iter (fun store -> Store.put store key (stored_of_entry entry)) t.store
      | None -> t.timeouts <- t.timeouts + 1);
      Hashtbl.replace by_key key result)
    results;
  (* Pass 3: answers in request order. *)
  List.map2
    (fun (req : Protocol.request) resolution ->
      let resp : Protocol.response =
        match resolution with
        | Refused ->
          t.overloaded <- t.overloaded + 1;
          Overloaded
        | Control -> (
          match req with
          | Stats -> Stats_r (stats t)
          | Shutdown -> Shutting_down
          | _ -> assert false)
        | Immediate r -> r
        | Tile { tile; g; key; _ } -> (
          match Hashtbl.find by_key key with
          | None -> Deadline_exceeded
          | Some entry -> answer t req ~tile ~g ~source:(Some Protocol.Fresh) entry)
      in
      (match resp with Overloaded -> () | _ -> t.served <- t.served + 1);
      resp)
    reqs resolutions

let handle t req = match handle_batch t [ req ] with [ r ] -> r | _ -> assert false
