(** The schedule server's request engine.

    A long-lived service answering slot/schedule/tiling queries for
    arbitrary prototiles.  The expensive step - the tiling search behind
    Theorem 1 - is amortized three ways:

    - {b Canonicalizing cache.}  Results are cached under the tile's
      canonical form ({!Lattice.Symmetry.canonical}), so all congruent
      tiles (rotations, reflections, translations) share one LRU entry;
      a hit for a non-canonical orientation is answered by transporting
      the cached tiling through the symmetry witness and revalidating.
    - {b Coalescing.}  Within a batch, concurrent misses for the same
      canonical key trigger exactly one search; distinct missing keys
      are searched concurrently on the {!Parallel} pool, in first-
      occurrence order, so results are deterministic at every pool size.
    - {b Backpressure.}  A batch longer than [queue_bound] is cut: the
      excess requests receive an explicit [Overloaded] reply instead of
      queueing without bound; clients retry.
    - {b Persistence.}  With a [store] attached, the engine gains a
      second cache tier: a memory miss probes the persistent certificate
      store before searching (a hit is promoted into the LRU), and every
      completed search - tiling or proven exhaustion - is written
      through, so proven results survive restarts and a warmed store
      answers without ever invoking {!Tiling.Search}.  Timeouts are not
      persisted, like they are not cached.
    - {b Precomputation.}  With a [corpus] attached (a sealed
      {!Corpus.Snapshot}), every tile request probes the mmap-backed
      verdict corpus {e before} the memory/store/search chain.  A hit
      answers with [src=corpus] and never touches the cache or the
      search pool; a canonical-orientation [Tile_search] hit is answered
      by splicing the stored tiling bytes straight from the mapped
      segment into the reply ({!Protocol.Tiling_raw_r}) with zero
      deserialization.

    Tile replies carry a {!Protocol.source} marker - [memory], [corpus],
    [store] or [fresh] - naming the tier that settled them.

    Searches can be bounded by a wall-clock [deadline] checked between
    search stages; an expired search answers [Deadline_exceeded] and is
    {e not} cached (a later retry may succeed), while a completed search
    that proves no tiling exists caches [No_tiling]. *)

open Lattice

type t

val create :
  ?cache_capacity:int ->
  (* default 256 *)
  ?queue_bound:int ->
  (* default 512 *)
  ?deadline:float ->
  (* seconds per search; default unbounded *)
  ?torus_factors:int list ->
  (* as {!Tiling.Search.find_tiling} *)
  ?search_engine:Tiling.Search.engine ->
  (* exact-cover kernel for torus searches; default [`Bitmask] *)
  ?pool:Parallel.pool ->
  (* default {!Parallel.default} *)
  ?store:Store.t ->
  (* second cache tier; default none *)
  ?corpus:Corpus.Snapshot.t ->
  (* precomputed verdict snapshot, probed before every other tier;
     default none *)
  unit ->
  t

val handle : t -> Protocol.request -> Protocol.response
(** A batch of one; never [Overloaded] (since [queue_bound >= 1]). *)

val handle_batch : t -> Protocol.request list -> Protocol.response list
(** Responses in request order.  Requests beyond [queue_bound] get
    [Overloaded]; admitted tile requests are canonicalized, looked up,
    coalesced and searched as described above. *)

val stats : t -> Protocol.server_stats
val queue_bound : t -> int

val corpus : t -> Corpus.Snapshot.t option
(** The attached snapshot, if any — the evloop front end probes it
    directly for its zero-copy binary reply path. *)

val add_corpus_hits : t -> int -> unit
(** Fold [n] corpus replies answered outside {!handle_batch} (the
    front end's loop-thread fast path) into [corpus_hits] and [served].
    Must be called from the thread that runs {!handle_batch}; the
    counters are not atomic. *)

val flush_to_store : t -> int
(** Write every memory-tier entry the store does not already hold
    through to the store ({!Cache.fold} over the LRU, hottest first);
    returns how many were written.  A no-op (0) without a store, or when
    write-through already persisted everything - the belt-and-braces
    shutdown path. *)

val canonical_key : Prototile.t -> string
(** The cache key: the canonical form's cell list, encoded.  Exposed for
    tests and diagnostics. *)
