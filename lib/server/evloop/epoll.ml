type t = { epfd : Unix.file_descr }

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Constructor order and payload shape are baked into evloop_stubs.c:
   Str/Byt (tags 0/1) read through Bytes_val, Big (tag 2) through
   Caml_ba_data_val. *)
type iovec =
  | Str of string * int * int
  | Byt of bytes * int * int
  | Big of bigstring * int * int

external epoll_create : unit -> Unix.file_descr = "tilesched_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "tilesched_epoll_ctl"

external epoll_wait :
  Unix.file_descr -> int -> (Unix.file_descr * int) array
  = "tilesched_epoll_wait"

external writev : Unix.file_descr -> iovec array -> int = "tilesched_writev"

let create () = { epfd = epoll_create () }

let close t = Unix.close t.epfd

let mask ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let add t fd ~read ~write = epoll_ctl t.epfd 0 fd (mask ~read ~write)

let modify t fd ~read ~write = epoll_ctl t.epfd 1 fd (mask ~read ~write)

let remove t fd = epoll_ctl t.epfd 2 fd 0

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  error : bool;
}

let wait t ~timeout_ms =
  let raw = epoll_wait t.epfd timeout_ms in
  Array.map
    (fun (fd, m) ->
      {
        fd;
        readable = m land 1 <> 0;
        writable = m land 2 <> 0;
        error = m land 4 <> 0;
      })
    raw

let iovec_len = function
  | Str (_, _, l) | Byt (_, _, l) | Big (_, _, l) -> l

let max_iov = 64
