(** Thin wrapper over Linux [epoll(7)] plus an iovec [writev(2)].

    [Unix.select] caps a process at 1024 descriptors; the serving tier
    targets 10k concurrent connections, so readiness comes from the
    kernel's epoll queue instead.  The iovec writev is the zero-copy
    reply path: outgoing frames scatter directly out of OCaml strings,
    bytes, and mmap-backed bigarrays without re-assembly. *)

type t
(** An epoll instance (owns one kernel file descriptor). *)

val create : unit -> t

val close : t -> unit

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register [fd] with the given interest mask.  Level-triggered. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit

val remove : t -> Unix.file_descr -> unit

type event = {
  fd : Unix.file_descr;
  readable : bool;  (** data pending, or peer hung up (read sees EOF) *)
  writable : bool;
  error : bool;  (** EPOLLERR / EPOLLHUP *)
}

val wait : t -> timeout_ms:int -> event array
(** Block up to [timeout_ms] (-1 = forever) for events.  An interrupted
    wait ([EINTR]) returns the empty array. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type iovec =
  | Str of string * int * int  (** (buffer, offset, length) *)
  | Byt of bytes * int * int
  | Big of bigstring * int * int
      (** mmap-backed slice; written without copying into the heap *)

val iovec_len : iovec -> int

val max_iov : int
(** Most iovecs one [writev] call consumes; extras are left for the
    next call. *)

val writev : Unix.file_descr -> iovec array -> int
(** Gathering write.  Returns bytes written (possibly short on a
    non-blocking fd); raises [Unix.Unix_error (EAGAIN, _, _)] when the
    socket buffer is full. *)
