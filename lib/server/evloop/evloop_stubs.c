/* Linux epoll + writev bindings for the event-loop server.
 *
 * The OCaml Unix library stops at select(), whose fd_set caps a process
 * at 1024 descriptors; the 10k-connection serving tier needs the
 * kernel's readiness queue.  Three tiny stubs suffice: epoll lifecycle,
 * a wait that translates events into a small int mask, and a writev
 * that scatters straight out of OCaml strings/bytes and mmap-backed
 * bigarrays (the zero-copy reply path).
 *
 * writev deliberately does NOT release the runtime lock: its iovecs
 * point into the OCaml heap (strings move under the GC), and the fds it
 * is used on are non-blocking, so the call cannot park the domain.
 * epoll_wait does release the lock - it blocks, and touches no OCaml
 * values while doing so. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/bigarray.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/uio.h>
#include <unistd.h>

CAMLprim value tilesched_epoll_create(value unit)
{
  int fd = epoll_create1(0);
  if (fd == -1) caml_uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

/* op: 0 = add, 1 = mod, 2 = del; mask: bit 0 = in, bit 1 = out. */
CAMLprim value tilesched_epoll_ctl(value epfd, value op, value fd, value mask)
{
  struct epoll_event ev;
  int cop;
  memset(&ev, 0, sizeof ev);
  if (Int_val(mask) & 1) ev.events |= EPOLLIN;
  if (Int_val(mask) & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(fd);
  switch (Int_val(op)) {
  case 0: cop = EPOLL_CTL_ADD; break;
  case 1: cop = EPOLL_CTL_MOD; break;
  default: cop = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(epfd), cop, Int_val(fd), &ev) == -1)
    caml_uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define EVLOOP_MAX_EVENTS 512

/* Returns an array of (fd, mask) pairs; mask: bit 0 = readable (or
 * hung up - the next read() observes EOF), bit 1 = writable, bit 2 =
 * error/hangup.  EINTR reads as an empty round. */
CAMLprim value tilesched_epoll_wait(value epfd, value timeout_ms)
{
  CAMLparam2(epfd, timeout_ms);
  CAMLlocal2(arr, pair);
  struct epoll_event evs[EVLOOP_MAX_EVENTS];
  int n, i;
  caml_release_runtime_system();
  n = epoll_wait(Int_val(epfd), evs, EVLOOP_MAX_EVENTS, Int_val(timeout_ms));
  caml_acquire_runtime_system();
  if (n == -1) {
    if (errno == EINTR) n = 0;
    else caml_uerror("epoll_wait", Nothing);
  }
  arr = n == 0 ? Atom(0) : caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int m = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP)) m |= 1;
    if (evs[i].events & EPOLLOUT) m |= 2;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) m |= 4;
    pair = caml_alloc_tuple(2);
    Store_field(pair, 0, Val_int(evs[i].data.fd));
    Store_field(pair, 1, Val_int(m));
    Store_field(arr, i, pair);
  }
  CAMLreturn(arr);
}

#define EVLOOP_MAX_IOV 64

/* iovs is an array of Epoll.iovec: Str (tag 0), Byt (tag 1) and Big
 * (tag 2) all carry (base, off, len).  At most EVLOOP_MAX_IOV entries
 * are written per call; the caller loops on the returned byte count. */
CAMLprim value tilesched_writev(value fd, value iovs)
{
  struct iovec vecs[EVLOOP_MAX_IOV];
  int n = Wosize_val(iovs);
  int i;
  ssize_t w;
  if (n > EVLOOP_MAX_IOV) n = EVLOOP_MAX_IOV;
  if (n == 0) return Val_long(0);
  for (i = 0; i < n; i++) {
    value v = Field(iovs, i);
    value base = Field(v, 0);
    long off = Long_val(Field(v, 1));
    vecs[i].iov_len = Long_val(Field(v, 2));
    if (Tag_val(v) == 2)
      vecs[i].iov_base = (char *)Caml_ba_data_val(base) + off;
    else
      vecs[i].iov_base = (char *)Bytes_val(base) + off;
  }
  w = writev(Int_val(fd), vecs, n);
  if (w == -1) caml_uerror("writev", Nothing);
  return Val_long(w);
}
