type t = { mutable data : bytes; mutable start : int; mutable len : int }

let create () = { data = Bytes.create 4096; start = 0; len = 0 }

let append b src n =
  let cap = Bytes.length b.data in
  if b.start + b.len + n > cap then
    if b.len + n <= cap then begin
      (* Room overall, just not at the tail: compact in place. *)
      Bytes.blit b.data b.start b.data 0 b.len;
      b.start <- 0
    end
    else begin
      let data' = Bytes.create (max (b.len + n) (cap * 2)) in
      Bytes.blit b.data b.start data' 0 b.len;
      b.data <- data';
      b.start <- 0
    end;
  Bytes.blit src 0 b.data (b.start + b.len) n;
  b.len <- b.len + n

let drop b n =
  b.start <- b.start + n;
  b.len <- b.len - n;
  if b.len = 0 then b.start <- 0
