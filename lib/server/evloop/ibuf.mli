(** Growable input window with O(1) amortized append and front
    consumption.  Binary framing needs random access into the buffered
    bytes (which [Buffer] does not give); both the server's connection
    reader and the load generator's reply readers use this. *)

type t = private {
  mutable data : bytes;
  mutable start : int;  (** first live byte *)
  mutable len : int;  (** live byte count *)
}

val create : unit -> t

val append : t -> bytes -> int -> unit
(** [append b src n] copies bytes [0..n-1] of [src] onto the end. *)

val drop : t -> int -> unit
(** Consume [n] bytes from the front. *)
