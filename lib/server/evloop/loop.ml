type 'a conn = {
  cfd : Unix.file_descr;
  mutable cstate : 'a;
  outq : Epoll.iovec Queue.t;
  mutable head_off : int;  (* bytes of the queue head already written *)
  mutable out_bytes : int;
  mutable reg_read : bool;  (* interest mask as registered with epoll *)
  mutable reg_write : bool;
  mutable drain_close : bool;
  mutable closed : bool;
  mutable dirty : bool;  (* queued output awaiting the end-of-round flush *)
  mutable last_activity : float;
}

type 'a t = {
  ep : Epoll.t;
  listen : Unix.file_descr;
  conns : (Unix.file_descr, 'a conn) Hashtbl.t;
  handlers : 'a handlers;
  read_buf : bytes;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  lock : Mutex.t;
  injected : (unit -> unit) Queue.t;
  dirties : 'a conn Queue.t;
  idle_timeout : float;
  max_out_bytes : int;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable deadline : float;
  mutable last_sweep : float;
  mutable accept_paused_until : float;  (* 0. = listener armed *)
  mutable finished : bool;  (* guarded by [lock]; pipes closed *)
}

and 'a handlers = {
  on_accept : Unix.file_descr -> 'a;
  on_data : 'a t -> 'a conn -> bytes -> int -> unit;
  on_close : 'a t -> 'a conn -> unit;
}

let now () = Unix.gettimeofday ()

let state c = c.cstate
let set_state c s = c.cstate <- s
let fd c = c.cfd
let pending_out c = c.out_bytes
let active_conns t = Hashtbl.length t.conns

(* The conns table is only ever walked through this: fold to a list,
   sort by fd, so every pass over connections is deterministic. *)
let sorted_conns t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
  |> List.sort (fun a b -> compare a.cfd b.cfd)

let create ?(idle_timeout = 0.) ?(max_out_bytes = 1 lsl 20) ~listen ~handlers
    () =
  (* A peer that vanishes with replies still queued must surface as
     EPIPE on the writev ([flush_out] closes the connection), not as a
     process-killing SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Unix.set_nonblock listen;
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let ep = Epoll.create () in
  Epoll.add ep listen ~read:true ~write:false;
  Epoll.add ep pipe_r ~read:true ~write:false;
  {
    ep;
    listen;
    conns = Hashtbl.create 64;
    handlers;
    read_buf = Bytes.create 65536;
    pipe_r;
    pipe_w;
    lock = Mutex.create ();
    injected = Queue.create ();
    dirties = Queue.create ();
    idle_timeout;
    max_out_bytes;
    accepting = true;
    stopping = false;
    deadline = infinity;
    last_sweep = now ();
    accept_paused_until = 0.;
    finished = false;
  }

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    Hashtbl.remove t.conns c.cfd;
    (try Epoll.remove t.ep c.cfd with Unix.Unix_error _ -> ());
    (try Unix.close c.cfd with Unix.Unix_error _ -> ());
    try t.handlers.on_close t c with _ -> ()
  end

(* Keep the registered interest mask in sync with the connection's
   wishes: write interest iff output is queued; read interest unless
   the connection is draining toward close or its output queue is past
   the high-watermark (backpressure: stop reading from peers we cannot
   answer fast enough). *)
let update_interest t c =
  if not c.closed then begin
    let want_w = c.out_bytes > 0 in
    let want_r = (not c.drain_close) && c.out_bytes < t.max_out_bytes in
    if want_r <> c.reg_read || want_w <> c.reg_write then begin
      Epoll.modify t.ep c.cfd ~read:want_r ~write:want_w;
      c.reg_read <- want_r;
      c.reg_write <- want_w
    end
  end

let iov_advance iov n =
  if n = 0 then iov
  else
    match iov with
    | Epoll.Str (s, off, len) -> Epoll.Str (s, off + n, len - n)
    | Epoll.Byt (b, off, len) -> Epoll.Byt (b, off + n, len - n)
    | Epoll.Big (b, off, len) -> Epoll.Big (b, off + n, len - n)

exception Done

(* First [max_iov] queued iovecs, with the head advanced past the bytes
   a previous partial write already pushed out. *)
let out_array c =
  let n = min Epoll.max_iov (Queue.length c.outq) in
  let arr = Array.make n (Queue.peek c.outq) in
  let i = ref 0 in
  (try
     Queue.iter
       (fun iov ->
         if !i >= n then raise Done;
         arr.(!i) <- (if !i = 0 then iov_advance iov c.head_off else iov);
         incr i)
       c.outq
   with Done -> ());
  arr

let pop_written c w =
  c.out_bytes <- c.out_bytes - w;
  let rem = ref w in
  while !rem > 0 do
    let head_left = Epoll.iovec_len (Queue.peek c.outq) - c.head_off in
    if head_left <= !rem then begin
      ignore (Queue.pop c.outq);
      c.head_off <- 0;
      rem := !rem - head_left
    end
    else begin
      c.head_off <- c.head_off + !rem;
      rem := 0
    end
  done

let flush_out t c =
  let continue = ref true in
  while !continue && (not c.closed) && not (Queue.is_empty c.outq) do
    match Epoll.writev c.cfd (out_array c) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) ->
        close_conn t c;
        continue := false
    | 0 -> continue := false
    | w -> pop_written c w
  done;
  if not c.closed then
    if Queue.is_empty c.outq && c.drain_close then close_conn t c
    else update_interest t c

(* Sends only enqueue; the actual writev happens once per event-loop
   round ([flush_dirty]), so all replies produced for one connection in
   one round coalesce into as few syscalls as the iovec limit allows. *)
let send t c iovs =
  if not c.closed then begin
    List.iter
      (fun iov ->
        let l = Epoll.iovec_len iov in
        if l > 0 then begin
          Queue.add iov c.outq;
          c.out_bytes <- c.out_bytes + l
        end)
      iovs;
    if not c.dirty then begin
      c.dirty <- true;
      Queue.add c t.dirties
    end
  end

let flush_dirty t =
  while not (Queue.is_empty t.dirties) do
    let c = Queue.pop t.dirties in
    c.dirty <- false;
    if not c.closed then flush_out t c
  done

let close_when_drained t c =
  if not c.closed then begin
    c.drain_close <- true;
    if Queue.is_empty c.outq then close_conn t c else update_interest t c
  end

let wake_byte = Bytes.make 1 '\000'

let inject t f =
  Mutex.lock t.lock;
  if not t.finished then begin
    Queue.add f t.injected;
    (* The wake write stays inside the critical section: [run]'s
       epilogue closes [pipe_w] under the same lock after setting
       [finished], so the fd can never be closed — or reused by a
       later open — between the check and the write.  A full pipe
       already guarantees a pending wakeup, so EAGAIN is fine; no
       error may escape with the lock held. *)
    try ignore (Unix.write t.pipe_w wake_byte 0 1)
    with Unix.Unix_error _ -> ()
  end;
  (* Once finished, injections are dropped: the loop that would have
     run them is gone, and every connection is already closed. *)
  Mutex.unlock t.lock

let run_injected t =
  let drain = Bytes.create 256 in
  (try
     while Unix.read t.pipe_r drain 0 (Bytes.length drain) > 0 do
       ()
     done
   with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ());
  let fs = Queue.create () in
  Mutex.lock t.lock;
  Queue.transfer t.injected fs;
  Mutex.unlock t.lock;
  Queue.iter (fun f -> try f () with _ -> ()) fs

(* Accept failed for a reason that will not clear by itself this round
   (fd exhaustion, out of memory, ...).  Disarm the listener and let
   [run] re-arm it after a short backoff: the fd is level-triggered, so
   leaving it armed would spin the loop at 100% CPU retrying an accept
   that keeps failing — starving every established connection, which is
   worse than briefly refusing new ones. *)
let accept_backoff_s = 0.1

let pause_accept t =
  t.accept_paused_until <- now () +. accept_backoff_s;
  try Epoll.modify t.ep t.listen ~read:false ~write:false
  with Unix.Unix_error _ -> ()

let resume_accept t nw =
  if t.accept_paused_until > 0. && nw >= t.accept_paused_until then begin
    t.accept_paused_until <- 0.;
    if t.accepting then
      try Epoll.modify t.ep t.listen ~read:true ~write:false
      with Unix.Unix_error _ -> ()
  end

let rec accept_loop t budget =
  if budget > 0 && t.accepting then
    match Unix.accept ~cloexec:true t.listen with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((ECONNABORTED | EINTR), _, _) ->
        (* Per-connection casualty; the next one may be fine. *)
        accept_loop t (budget - 1)
    | exception Unix.Unix_error (_, _, _) ->
        (* EMFILE/ENFILE at the advertised connection scale, and
           anything else persistent: back off, never kill the loop. *)
        pause_accept t
    | nfd, _addr ->
        Unix.set_nonblock nfd;
        (try Unix.setsockopt nfd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let c =
          {
            cfd = nfd;
            cstate = t.handlers.on_accept nfd;
            outq = Queue.create ();
            head_off = 0;
            out_bytes = 0;
            reg_read = true;
            reg_write = false;
            drain_close = false;
            closed = false;
            dirty = false;
            last_activity = now ();
          }
        in
        Hashtbl.replace t.conns nfd c;
        Epoll.add t.ep nfd ~read:true ~write:false;
        accept_loop t (budget - 1)

let handle_read t c =
  match Unix.read c.cfd t.read_buf 0 (Bytes.length t.read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c
  | 0 -> close_conn t c
  | n -> (
      c.last_activity <- now ();
      (* A handler exception (e.g. a corrupt frame) kills only this
         connection, never the loop. *)
      try
        t.handlers.on_data t c t.read_buf n;
        (* A dirty conn's interest is settled by the round's flush;
           adjusting it here would register write interest only to
           retract it a moment later. *)
        if (not c.closed) && not c.dirty then update_interest t c
      with _ -> close_conn t c)

let handle_conn_event t (ev : Epoll.event) =
  match Hashtbl.find_opt t.conns ev.fd with
  | None -> ()  (* closed earlier in this batch *)
  | Some c ->
      if ev.error && not ev.readable then close_conn t c
      else begin
        if ev.writable && not c.closed then flush_out t c;
        if ev.readable && not c.closed then handle_read t c
      end

let sweep t now_ =
  if t.idle_timeout > 0. then
    List.iter
      (fun c ->
        if now_ -. c.last_activity > t.idle_timeout then close_conn t c)
      (sorted_conns t)

let shutdown ?(grace = 5.0) t =
  if not t.stopping then begin
    t.stopping <- true;
    t.accepting <- false;
    (try Epoll.remove t.ep t.listen with Unix.Unix_error _ -> ());
    t.deadline <- now () +. grace;
    List.iter (fun c -> close_when_drained t c) (sorted_conns t)
  end

let run t =
  let continue = ref true in
  while !continue do
    if t.stopping && (Hashtbl.length t.conns = 0 || now () > t.deadline)
    then continue := false
    else begin
      let evs = Epoll.wait t.ep ~timeout_ms:250 in
      Array.iter
        (fun (ev : Epoll.event) ->
          if ev.fd = t.pipe_r then run_injected t
          else if ev.fd = t.listen then accept_loop t 64
          else handle_conn_event t ev)
        evs;
      flush_dirty t;
      let nw = now () in
      resume_accept t nw;
      if nw -. t.last_sweep > 1.0 then begin
        t.last_sweep <- nw;
        sweep t nw
      end
    end
  done;
  List.iter (fun c -> close_conn t c) (sorted_conns t);
  Epoll.close t.ep;
  (try Unix.close t.listen with Unix.Unix_error _ -> ());
  (* Flip [finished] and close the self-pipe under the lock, pairing
     with [inject]: an engine worker delivering a late reply sees
     either an open pipe or a no-op, never a closed/reused fd. *)
  Mutex.lock t.lock;
  t.finished <- true;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  Mutex.unlock t.lock
