(** Single-writer event loop over {!Epoll}.

    One thread (the one inside {!run}) owns every socket: it accepts,
    reads, parses via the caller's [on_data], and writes queued iovecs.
    Other domains never touch a connection directly — they hand the
    loop a closure through {!inject}, which wakes the loop via a
    self-pipe and runs the closure on the loop thread.  That is the
    ready-queue bridge the engine worker uses to deliver replies
    without ever blocking the loop on engine time.

    Per-connection lifecycle (driven level-triggered):

    {v
      accept -> reading -> (on_data consumes bytes, may send) -> writing
                   ^                                               |
                   +------------- drained / partial ---------------+
    v}

    Backpressure: a connection whose output queue exceeds
    [max_out_bytes] has its read interest suspended until the queue
    drains below the watermark, so a slow reader cannot balloon server
    memory.  Write interest is flipped on only while the queue is
    non-empty. *)

type 'a t
(** A loop whose connections carry caller state of type ['a]. *)

type 'a conn
(** One accepted connection.  Owned by the loop thread. *)

type 'a handlers = {
  on_accept : Unix.file_descr -> 'a;
      (** Initial per-connection state for a freshly accepted socket. *)
  on_data : 'a t -> 'a conn -> bytes -> int -> unit;
      (** [on_data t c buf n]: bytes [0..n-1] of [buf] just arrived.
          [buf] is loop-owned scratch, valid only for this call — copy
          anything kept.  An exception closes [c] (and only [c]). *)
  on_close : 'a t -> 'a conn -> unit;
      (** Called exactly once, after the fd is closed. *)
}

val create :
  ?idle_timeout:float ->
  ?max_out_bytes:int ->
  listen:Unix.file_descr ->
  handlers:'a handlers ->
  unit ->
  'a t
(** [idle_timeout] (seconds; 0 = disabled, the default) closes
    connections with no inbound traffic for that long.
    [max_out_bytes] (default 1 MiB) is the per-connection output
    high-watermark.  [listen] must be a bound, listening socket; the
    loop sets it non-blocking and closes it when {!run} returns. *)

val run : 'a t -> unit
(** Serve until {!shutdown} completes.  Closes the listener, the epoll
    fd and any remaining connections before returning. *)

val shutdown : ?grace:float -> 'a t -> unit
(** Stop accepting, let queued output drain, then stop.  Connections
    still open after [grace] seconds (default 5) are force-closed.
    Loop-thread only (use {!inject} from elsewhere). *)

val inject : 'a t -> (unit -> unit) -> unit
(** Thread-safe: queue [f] to run on the loop thread and wake the
    loop.  The only entry point for other domains.  After {!run} has
    returned this is a no-op ([f] is dropped), so workers delivering
    late replies during teardown are safe. *)

val send : 'a t -> 'a conn -> Epoll.iovec list -> unit
(** Queue iovecs on [c]'s output.  Bytes are not written here: the
    connection is marked dirty and flushed with writev once at the end
    of the current event-loop round, so all replies produced for one
    connection in a round coalesce into as few syscalls as the iovec
    limit allows.  Zero-length iovecs are dropped.  Loop-thread
    only. *)

val close_conn : 'a t -> 'a conn -> unit
(** Close immediately, discarding queued output.  Loop-thread only. *)

val close_when_drained : 'a t -> 'a conn -> unit
(** Close once queued output is flushed; stops reading now. *)

val state : 'a conn -> 'a
val set_state : 'a conn -> 'a -> unit

val fd : 'a conn -> Unix.file_descr
val pending_out : 'a conn -> int
val active_conns : 'a t -> int
