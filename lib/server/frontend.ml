module Epoll = Evloop.Epoll
module Ibuf = Evloop.Ibuf
module Loop = Evloop.Loop

let max_line = 1024 * 1024

let is_shutdown_resp = function Protocol.Shutting_down -> true | _ -> false

let handle_lines engine lines =
  let parsed = List.map Protocol.request_of_string lines in
  let reqs =
    List.filter_map (function Ok (_, req) -> Some req | Error _ -> None) parsed
  in
  let resps = Engine.handle_batch engine reqs in
  let shutdown = List.exists is_shutdown_resp resps in
  let rec merge parsed resps =
    match (parsed, resps) with
    | [], [] -> []
    | Error msg :: tl, resps ->
      Protocol.response_to_string (Error_r msg) :: merge tl resps
    | Ok (id, _) :: tl, resp :: resps ->
      Protocol.response_to_string ?id resp :: merge tl resps
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  (merge parsed resps, shutdown)

let serve_stdio engine =
  let bound = Engine.queue_bound engine in
  let stop = ref false in
  let batch = ref [] in
  let flush_batch () =
    if !batch <> [] then begin
      let lines, shutdown = handle_lines engine (List.rev !batch) in
      batch := [];
      List.iter print_endline lines;
      flush stdout;
      if shutdown then stop := true
    end
  in
  (try
     while not !stop do
       match input_line stdin with
       | "" -> flush_batch ()
       | line ->
         batch := line :: !batch;
         if List.length !batch >= bound then flush_batch ()
     done
   with End_of_file -> ());
  flush_batch ()

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  try go 0 with Unix.Unix_error _ -> ()

(* ---------- engine bridge ---------- *)

(* The event loop must never block on engine time, so engine work runs
   on a dedicated domain fed through this queue.  One item is one
   connection's read-burst; the worker drains everything queued and runs
   it as a single [handle_batch], preserving the engine's cross-client
   coalescing and letting admission control see the true instantaneous
   load, exactly like the old one-batch-per-select-round server. *)
module Bridge = struct
  type item = {
    reqs : Protocol.request list;
    deliver : Protocol.response list -> unit;  (* runs on the engine thread *)
  }

  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    q : item Queue.t;
    mutable stopped : bool;
  }

  let create () =
    { lock = Mutex.create (); cond = Condition.create (); q = Queue.create ();
      stopped = false }

  let push t item =
    Mutex.lock t.lock;
    Queue.add item t.q;
    Condition.signal t.cond;
    Mutex.unlock t.lock

  (* All queued items, or [None] once stopped and drained. *)
  let take_all t =
    Mutex.lock t.lock;
    while Queue.is_empty t.q && not t.stopped do
      Condition.wait t.cond t.lock
    done;
    let items = List.of_seq (Queue.to_seq t.q) in
    Queue.clear t.q;
    let stopped = t.stopped in
    Mutex.unlock t.lock;
    if items = [] && stopped then None else Some items

  let stop t =
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
end

let rec split_at k l =
  if k = 0 then ([], l)
  else
    match l with
    | [] -> assert false
    | x :: tl ->
      let a, b = split_at (k - 1) tl in
      (x :: a, b)

let engine_worker engine bridge fast_hits =
  let rec run () =
    match Bridge.take_all bridge with
    | None -> ()
    | Some items ->
      let n = Atomic.exchange fast_hits 0 in
      if n > 0 then Engine.add_corpus_hits engine n;
      let all = List.concat_map (fun it -> it.Bridge.reqs) items in
      let resps = Engine.handle_batch engine all in
      let rec dispatch items resps =
        match items with
        | [] -> ()
        | it :: tl ->
          let mine, rest = split_at (List.length it.Bridge.reqs) resps in
          it.Bridge.deliver mine;
          dispatch tl rest
      in
      dispatch items resps;
      run ()
  in
  run ()

(* ---------- evloop daemon ---------- *)

(* The first byte of a connection picks its protocol: binary frames
   open with {!Wire.magic0}, text lines with the record header ('t').
   Per-connection state machine: sniff -> read (lines or frames) ->
   engine-pending -> write; [pending] counts bridge items in flight so
   the binary fast path only fires when it cannot reorder replies. *)
type proto = Sniffing | Text | Binary

type cstate = { mutable proto : proto; ibuf : Ibuf.t; mutable pending : int }

type slot = Bad_line of string | Parsed of int option

let render_text slots resps =
  let buf = Buffer.create 256 in
  let rec go slots resps =
    match (slots, resps) with
    | [], [] -> ()
    | Bad_line msg :: tl, resps ->
      Buffer.add_string buf (Protocol.response_to_string (Error_r msg));
      Buffer.add_char buf '\n';
      go tl resps
    | Parsed id :: tl, resp :: resps ->
      Buffer.add_string buf (Protocol.response_to_string ?id resp);
      Buffer.add_char buf '\n';
      go tl resps
    | Parsed _ :: _, [] | [], _ :: _ -> assert false
  in
  go slots resps;
  Buffer.contents buf

let render_binary ids resps =
  let buf = Buffer.create 256 in
  List.iter2
    (fun id resp -> Buffer.add_string buf (Wire.encode_response ?id resp))
    ids resps;
  Buffer.contents buf

let serve_unix ?(idle_timeout = 0.) engine ~path =
  if Sys.file_exists path then Sys.remove path;
  let srv = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 1024;
  let bridge = Bridge.create () in
  let fast_hits = Atomic.make 0 in
  let corpus = Engine.corpus engine in
  (* Deliveries are encoded on the engine thread (keeping the loop
     thread lean) and handed back through [Loop.inject]; the injection
     queue is FIFO, so replies leave in completion order and a
     [Shutting_down] reply is flushed before the shutdown it
     triggers. *)
  let submit loop c render =
    let st = Loop.state c in
    st.pending <- st.pending + 1;
    fun reqs ->
      Bridge.push bridge
        { reqs;
          deliver =
            (fun resps ->
              let out = render resps in
              let shutdown = List.exists is_shutdown_resp resps in
              Loop.inject loop (fun () ->
                  st.pending <- st.pending - 1;
                  Loop.send loop c [ Epoll.Str (out, 0, String.length out) ];
                  if shutdown then Loop.shutdown loop)) }
  in
  let process_text loop c st =
    let slots = ref [] and reqs = ref [] in
    let overflow = ref false in
    let continue = ref true in
    while !continue do
      let rec find_nl i =
        if i = st.ibuf.Ibuf.len then None
        else if Bytes.get st.ibuf.Ibuf.data (st.ibuf.Ibuf.start + i) = '\n' then Some i
        else find_nl (i + 1)
      in
      match find_nl 0 with
      | Some i ->
        let line = Bytes.sub_string st.ibuf.Ibuf.data st.ibuf.Ibuf.start i in
        Ibuf.drop st.ibuf (i + 1);
        (match Protocol.request_of_string line with
        | Ok (id, req) ->
          slots := Parsed id :: !slots;
          reqs := req :: !reqs
        | Error msg -> slots := Bad_line msg :: !slots)
      | None ->
        continue := false;
        if st.ibuf.Ibuf.len > max_line then overflow := true
    done;
    if !slots <> [] then begin
      let slots = List.rev !slots in
      submit loop c (render_text slots) (List.rev !reqs)
    end;
    if !overflow then Loop.close_conn loop c
  in
  (* The zero-copy road: a binary [Tile_search] probing an exact corpus
     record is answered on the loop thread by splicing the tiling bytes
     straight from the mmap into the socket via iovecs - no engine hop,
     no decode, no copy of the payload.  The probe key is the raw cell
     string, and corpus keys are canonical cell strings, so a hit
     implies the request was already canonical and needs no transport;
     a miss (non-canonical or unknown) falls through to the engine,
     which canonicalizes.  Only taken when no engine reply is in flight
     for this connection, so replies never reorder. *)
  (* The snapshot is immutable, so the corpus verdict is a pure
     function of the request payload bytes; [memo] caches it per
     payload and lets a repeated probe skip the tile decode and
     canonical-key build entirely. *)
  let memo :
      (string, [ `Exact of Wire.bigstring * int * int | `Non_exact | `Miss ])
      Hashtbl.t =
    Hashtbl.create 1024
  in
  let memo_cap = 65536 in
  let frame_payload frame =
    String.sub frame Wire.header_size
      (String.length frame - Wire.header_size - Wire.trailer_size)
  in
  let probe corpus key =
    match Corpus.Snapshot.find corpus key with
    | None -> `Miss
    | Some hit -> (
      match Corpus.Snapshot.verdict corpus hit with
      | `Non_exact -> `Non_exact
      | `Exact ->
        let seg, pos, len = Corpus.Snapshot.tiling_raw corpus hit in
        `Exact (seg, pos, len))
  in
  let serve_probe loop c id p =
    match p with
    | `Miss -> false
    | `Non_exact ->
      Atomic.incr fast_hits;
      let s =
        Wire.encode_response ?id (Protocol.No_tiling (Some Protocol.Corpus))
      in
      Loop.send loop c [ Epoll.Str (s, 0, String.length s) ];
      true
    | `Exact (seg, pos, len) ->
      Atomic.incr fast_hits;
      let head =
        Wire.frame_prefix ?id ~opcode:Wire.op_tiling_r ~payload_len:(len + 1)
          ()
        ^ String.make 1 (Wire.src_byte (Some Protocol.Corpus))
      in
      let crc =
        Wire.crc_emit
          (Wire.crc_bigstring
             (Wire.crc_string Wire.crc_init head 0 (String.length head))
             seg pos len)
      in
      Loop.send loop c
        [ Epoll.Str (head, 0, String.length head);
          Epoll.Big (seg, pos, len);
          Epoll.Str (crc, 0, String.length crc) ];
      true
  in
  let fast_path loop c st id req frame eligible =
    match (corpus, (req : Protocol.request)) with
    | Some corpus, Tile_search tile when eligible && st.pending = 0 ->
      let key = Core.Codec.vecs_to_string (Lattice.Prototile.cells tile) in
      let p = probe corpus key in
      if Hashtbl.length memo < memo_cap then
        Hashtbl.replace memo (frame_payload frame) p;
      serve_probe loop c id p
    | _ -> false
  in
  (* Pre-decode route: a tile-search frame whose payload was probed
     before is answered from the frame bytes alone - CRC check, id
     peel, splice.  A CRC mismatch falls through to the decoder, which
     rejects the frame and kills the connection. *)
  let fast_frame loop c st frame eligible =
    eligible && st.pending = 0 && corpus <> None
    && String.length frame > Wire.header_size + Wire.trailer_size
    && Wire.frame_opcode frame = Wire.op_tile_search
    &&
    match Hashtbl.find_opt memo (frame_payload frame) with
    | None | Some `Miss -> false
    | Some p ->
      Wire.frame_crc_ok frame
      && serve_probe loop c (Wire.frame_id frame) p
  in
  let process_binary loop c st =
    let ids = ref [] and reqs = ref [] in
    let corrupt = ref false in
    let continue = ref true in
    while !continue do
      match Wire.frame_total st.ibuf.Ibuf.data ~off:st.ibuf.Ibuf.start ~avail:st.ibuf.Ibuf.len with
      | Wire.Need_more -> continue := false
      | Wire.Bad_frame _ ->
        corrupt := true;
        continue := false
      | Wire.Total total ->
        if st.ibuf.Ibuf.len < total then continue := false
        else begin
          let frame = Bytes.sub_string st.ibuf.Ibuf.data st.ibuf.Ibuf.start total in
          Ibuf.drop st.ibuf total;
          if not (fast_frame loop c st frame (!reqs = [])) then
            match Wire.decode_request frame with
            | Error _ ->
              corrupt := true;
              continue := false
            | Ok (id, req) ->
              if not (fast_path loop c st id req frame (!reqs = [])) then begin
                ids := id :: !ids;
                reqs := req :: !reqs
              end
        end
    done;
    if !reqs <> [] then
      submit loop c (render_binary (List.rev !ids)) (List.rev !reqs);
    (* A corrupt frame kills this connection - and only this one. *)
    if !corrupt then Loop.close_conn loop c
  in
  let on_data loop c chunk n =
    let st = Loop.state c in
    Ibuf.append st.ibuf chunk n;
    (match st.proto with
    | Sniffing ->
      st.proto <-
        (if Wire.is_binary (Bytes.get st.ibuf.Ibuf.data st.ibuf.Ibuf.start) then Binary
         else Text)
    | Text | Binary -> ());
    match st.proto with
    | Sniffing -> ()
    | Text -> process_text loop c st
    | Binary -> process_binary loop c st
  in
  let handlers =
    { Loop.on_accept =
        (fun _fd -> { proto = Sniffing; ibuf = Ibuf.create (); pending = 0 });
      on_data;
      on_close = (fun _ _ -> ()) }
  in
  let loop = Loop.create ~idle_timeout ~listen:srv ~handlers () in
  let worker = Domain.spawn (fun () -> engine_worker engine bridge fast_hits) in
  Loop.run loop;
  Bridge.stop bridge;
  Domain.join worker;
  if Sys.file_exists path then Sys.remove path

(* ---------- clients ---------- *)

let with_connection ~path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let send lines =
    let buf = Buffer.create 256 in
    List.iter
      (fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      lines;
    write_all fd (Buffer.contents buf);
    List.map (fun _ -> input_line ic) lines
  in
  f send

let with_binary_connection ~path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let buf = Ibuf.create () in
  let chunk = Bytes.create 65536 in
  let rec read_response () =
    match Wire.frame_total buf.Ibuf.data ~off:buf.Ibuf.start ~avail:buf.Ibuf.len with
    | Wire.Total total when buf.Ibuf.len >= total ->
      let frame = Bytes.sub_string buf.Ibuf.data buf.Ibuf.start total in
      Ibuf.drop buf total;
      Wire.decode_response frame
    | Wire.Bad_frame e -> Error e
    | Wire.Need_more | Wire.Total _ -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed mid-frame"
      | n ->
        Ibuf.append buf chunk n;
        read_response ())
  in
  let send reqs =
    let out = Buffer.create 256 in
    List.iteri
      (fun i req -> Buffer.add_string out (Wire.encode_request ~id:i req))
      reqs;
    write_all fd (Buffer.contents out);
    List.map (fun _ -> read_response ()) reqs
  in
  f send
