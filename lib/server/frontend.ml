let max_line = 1024 * 1024

let is_shutdown_resp = function Protocol.Shutting_down -> true | _ -> false

let handle_lines engine lines =
  let parsed = List.map Protocol.request_of_string lines in
  let reqs =
    List.filter_map (function Ok (_, req) -> Some req | Error _ -> None) parsed
  in
  let resps = Engine.handle_batch engine reqs in
  let shutdown = List.exists is_shutdown_resp resps in
  let rec merge parsed resps =
    match (parsed, resps) with
    | [], [] -> []
    | Error msg :: tl, resps ->
      Protocol.response_to_string (Error_r msg) :: merge tl resps
    | Ok (id, _) :: tl, resp :: resps ->
      Protocol.response_to_string ?id resp :: merge tl resps
    | Ok _ :: _, [] | [], _ :: _ -> assert false
  in
  (merge parsed resps, shutdown)

let serve_stdio engine =
  let bound = Engine.queue_bound engine in
  let stop = ref false in
  let batch = ref [] in
  let flush_batch () =
    if !batch <> [] then begin
      let lines, shutdown = handle_lines engine (List.rev !batch) in
      batch := [];
      List.iter print_endline lines;
      flush stdout;
      if shutdown then stop := true
    end
  in
  (try
     while not !stop do
       match input_line stdin with
       | "" -> flush_batch ()
       | line ->
         batch := line :: !batch;
         if List.length !batch >= bound then flush_batch ()
     done
   with End_of_file -> ());
  flush_batch ()

(* ---------- Unix-domain socket daemon ---------- *)

type conn = { fd : Unix.file_descr; buf : Buffer.t; mutable closing : bool }

(* Split off the complete lines accumulated in [c.buf], leaving any
   partial trailing line buffered. *)
let complete_lines c =
  let data = Buffer.contents c.buf in
  match String.rindex_opt data '\n' with
  | None ->
    if Buffer.length c.buf > max_line then c.closing <- true;
    []
  | Some last ->
    Buffer.clear c.buf;
    Buffer.add_string c.buf (String.sub data (last + 1) (String.length data - last - 1));
    String.split_on_char '\n' (String.sub data 0 last)

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  try go 0 with Unix.Unix_error _ -> ()

let serve_unix engine ~path =
  if Sys.file_exists path then Sys.remove path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 64;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  (* Hashtbl iteration order is unspecified (lint rule R1); every walk
     over a table goes through this sorted view so the serve loop treats
     connections in a deterministic order. *)
  let sorted_bindings tbl =
    List.sort (fun (a, _) (b, _) -> compare a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let chunk = Bytes.create 65536 in
  let running = ref true in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  while !running do
    let fds = srv :: List.map fst (sorted_bindings conns) in
    let readable, _, _ =
      try Unix.select fds [] [] 1.0 with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* Accept and read; collect each connection's complete lines. *)
    let batch = ref [] (* (conn, line) in arrival order, reversed *) in
    List.iter
      (fun fd ->
        if fd = srv then begin
          match Unix.accept srv with
          | client, _ ->
            Hashtbl.replace conns client
              { fd = client; buf = Buffer.create 256; closing = false }
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> close_conn c
            | n ->
              Buffer.add_subbytes c.buf chunk 0 n;
              List.iter (fun line -> batch := (c, line) :: !batch) (complete_lines c);
              if c.closing then close_conn c
            | exception Unix.Unix_error _ -> close_conn c))
      readable;
    let batch = List.rev !batch in
    if batch <> [] then begin
      let lines, shutdown = handle_lines engine (List.map snd batch) in
      (* Group replies per connection, preserving order, one write each. *)
      let outs : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
      List.iter2
        (fun (c, _) reply ->
          let out =
            match Hashtbl.find_opt outs c.fd with
            | Some b -> b
            | None ->
              let b = Buffer.create 256 in
              Hashtbl.replace outs c.fd b;
              b
          in
          Buffer.add_string out reply;
          Buffer.add_char out '\n')
        batch lines;
      List.iter (fun (fd, out) -> write_all fd (Buffer.contents out)) (sorted_bindings outs);
      if shutdown then running := false
    end
  done;
  List.iter
    (fun (_, c) -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    (sorted_bindings conns);
  Unix.close srv;
  if Sys.file_exists path then Sys.remove path

let with_connection ~path f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let send lines =
    let buf = Buffer.create 256 in
    List.iter
      (fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      lines;
    write_all fd (Buffer.contents buf);
    List.map (fun _ -> input_line ic) lines
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f send)
