(** Line-oriented front ends for the schedule server.

    Each request is one line, each reply is one line, in the
    {!Protocol} grammar; replies come back in request order.  Malformed
    lines are answered with an [error] reply by the front end itself
    (they never reach the engine or occupy an admission slot).

    Two transports share this logic: [serve_stdio] for pipelines and
    tests, and [serve_unix] - a select-loop daemon on a Unix domain
    socket serving many concurrent clients, whose per-round batch is
    exactly what the engine's admission control bounds.  A [shutdown]
    request makes either server finish its batch, reply to everyone,
    and exit cleanly. *)

val handle_lines : Engine.t -> string list -> string list * bool
(** One reply line per request line, plus [true] when the batch
    contained a [shutdown] request.  The building block for both
    servers and for in-process load generation. *)

val serve_stdio : Engine.t -> unit
(** Read request lines on stdin until EOF or [shutdown]; a blank line
    flushes the current batch, and batches are also flushed at the
    engine's queue bound.  Replies go to stdout. *)

val serve_unix : Engine.t -> path:string -> unit
(** Bind [path] (an existing socket file is replaced), accept clients,
    and serve until a [shutdown] request arrives; then reply, close all
    connections, and unlink [path].  Each select round drains whatever
    complete lines the clients have sent and runs them as one engine
    batch, so a burst beyond [queue_bound] gets [overloaded] replies
    rather than unbounded buffering.  Lines longer than 1 MiB close the
    offending connection. *)

val with_connection : path:string -> ((string list -> string list) -> 'a) -> 'a
(** Client side: connect to [path] and pass a batch sender to the
    callback.  The sender writes its lines and reads exactly one reply
    line per request, in order. *)
