(** Front ends for the schedule server.

    [serve_stdio] is the line-oriented pipeline/test transport.
    [serve_unix] is the production daemon: an {!Evloop.Loop}-based
    epoll server on a Unix domain socket, speaking both wire dialects
    through one port.  The first byte of each connection picks the
    protocol — {!Wire.magic0} opens a binary frame stream, anything
    else (in practice ['t'], the record-header initial of every text
    line) the classic line protocol, so existing text clients connect
    unchanged.

    The accept/read/write machinery runs on one loop thread that never
    blocks on engine time: parsed requests cross to a dedicated engine
    domain through a FIFO bridge, are batched into [handle_batch] calls
    (preserving cross-client coalescing and admission control), and the
    encoded replies are injected back for the loop thread to write.
    Warm binary [tile-search] corpus probes skip the bridge entirely:
    the reply frame is spliced from the corpus mmap straight into the
    socket via writev iovecs on the loop thread (zero copies of the
    payload).  Replies stay in request order per connection on both
    dialects.

    Malformed text lines are answered with an [error] reply by the
    front end itself (they never reach the engine or occupy an
    admission slot); a malformed {e binary frame} closes its
    connection — and only that connection.  A [shutdown] request makes
    either server finish the batch, flush every queued reply, and exit
    cleanly. *)

val handle_lines : Engine.t -> string list -> string list * bool
(** One reply line per request line, plus [true] when the batch
    contained a [shutdown] request.  The building block for both
    servers and for in-process load generation. *)

val serve_stdio : Engine.t -> unit
(** Read request lines on stdin until EOF or [shutdown]; a blank line
    flushes the current batch, and batches are also flushed at the
    engine's queue bound.  Replies go to stdout. *)

val serve_unix : ?idle_timeout:float -> Engine.t -> path:string -> unit
(** Bind [path] (an existing socket file is replaced), accept clients,
    and serve until a [shutdown] request arrives; then reply, drain,
    close all connections, and unlink [path].  [idle_timeout] (seconds,
    0 = disabled, the default) closes connections with no inbound
    traffic for that long.  Text lines longer than 1 MiB close the
    offending connection, as do binary frames that fail magic, version,
    CRC, or opcode validation. *)

val with_connection : path:string -> ((string list -> string list) -> 'a) -> 'a
(** Text client: connect to [path] and pass a batch sender to the
    callback.  The sender writes its lines and reads exactly one reply
    line per request, in order. *)

val with_binary_connection :
  path:string ->
  ((Protocol.request list ->
   (int option * Protocol.response, string) result list) ->
  'a) ->
  'a
(** Binary client: the sender frames its requests (ids [0..n-1]),
    writes them as one burst, and reads one reply frame per request, in
    order.  Each reply decodes independently, so one corrupt frame
    reports [Error] without poisoning the rest. *)
