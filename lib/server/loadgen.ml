open Lattice
module Epoll = Evloop.Epoll
module Ibuf = Evloop.Ibuf

type op_mix = [ `Mixed | `Search_only ]

type config = {
  requests : int;
  clients : int;
  zipf : float;
  seed : int64;
  tiles : (string * Prototile.t) list;
  ops : op_mix;
  send_shutdown : bool;
}

let default_tiles =
  [ ("cheb1", Prototile.chebyshev_ball ~dim:2 1);
    ("tet-S", Prototile.tetromino `S);
    ("tet-Z", Prototile.tetromino `Z);
    ("rect2x3", Prototile.rect 2 3);
    ("rect3x2", Prototile.rect 3 2);
    ("tet-L", Prototile.tetromino `L);
    ("tet-J", Prototile.tetromino `J);
    ("tet-T", Prototile.tetromino `T);
    ("tet-I", Prototile.tetromino `I);
    ("tet-O", Prototile.tetromino `O);
    ("rect2x2", Prototile.rect 2 2);
    ("pent-P", Prototile.pentomino `P);
    ("pent-L", Prototile.pentomino `L);
    ("pent-I", Prototile.pentomino `I);
    ("pent-X", Prototile.pentomino `X);
    ("cheb2", Prototile.chebyshev_ball ~dim:2 2) ]

let default =
  { requests = 10_000; clients = 8; zipf = 1.1; seed = 1L; tiles = default_tiles;
    ops = `Mixed; send_shutdown = false }

type report = {
  requests : int;
  completed : int;
  ok : int;
  no_tiling : int;
  deadline : int;
  errors : int;
  overloaded_replies : int;
  rounds : int;
  by_op : (string * int) list;
  by_source : (string * int) list;
  hit_rate : float;
  server : Protocol.server_stats;
  checksum : string;
  latency : Netsim.Stats.snapshot;
  elapsed_s : float;
  throughput : float;
}

(* Zipf(s) over ranks 1..n via the inverse CDF. *)
let zipf_sampler ~s n =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun u ->
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then bisect lo mid else bisect (mid + 1) hi
    in
    bisect 0 (n - 1)

type client = { rng : Prng.Xoshiro.t; mutable pending : (string * Protocol.request * int) option }
(* pending = (op name, request, id) awaiting a non-overloaded reply *)

(* In [`Mixed] mode the draw sequence (tile, op selector, coords) is the
   historical one, so text-protocol checksums are stable across the
   encode-at-send-time refactor. *)
let gen_request ~tiles ~sample ~ops rng =
  let tile = snd (List.nth tiles (sample (Prng.Xoshiro.float rng 1.0))) in
  match ops with
  | `Search_only -> ("tile-search", Protocol.Tile_search tile)
  | `Mixed ->
    let r = Prng.Xoshiro.float rng 1.0 in
    if r < 0.80 then begin
      let coord () = Prng.Xoshiro.int rng 41 - 20 in
      let pos = Zgeom.Vec.of_list (List.init (Prototile.dim tile) (fun _ -> coord ())) in
      ("slot", Protocol.Slot { tile; pos })
    end
    else if r < 0.95 then ("schedule", Protocol.Schedule tile)
    else ("tile-search", Protocol.Tile_search tile)

let count_in table key =
  Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let count_source table resp =
  match Protocol.source_of_response resp with
  | None -> ()
  | Some s -> count_in table (Protocol.source_to_string s)

(* The closed-loop driver shared by the text and binary transports.
   [send_round] takes one (id, request) batch and returns the decoded
   responses in order; the transport adapter owns encoding and feeds the
   checksum digest. *)
let drive ~name ~digest ~send_round (config : config) =
  if config.requests < 0 then invalid_arg (name ^ ": negative requests");
  if config.clients < 1 then invalid_arg (name ^ ": clients must be >= 1");
  if config.tiles = [] then invalid_arg (name ^ ": empty tile catalogue");
  let sample = zipf_sampler ~s:config.zipf (List.length config.tiles) in
  let clients =
    Array.init config.clients (fun i ->
        { rng = Prng.Xoshiro.create (Int64.add config.seed (Int64.of_int i));
          pending = None })
  in
  let stats = Netsim.Stats.create () in
  let issued = ref 0 in
  let completed = ref 0 in
  let ok = ref 0 in
  let no_tiling = ref 0 in
  let deadline = ref 0 in
  let errors = ref 0 in
  let overloaded = ref 0 in
  let rounds = ref 0 in
  let by_op = Hashtbl.create 4 in
  let by_source = Hashtbl.create 4 in
  let t_start = Unix.gettimeofday () in
  while !completed < config.requests do
    let round = ref [] in
    Array.iter
      (fun c ->
        (match c.pending with
        | Some _ -> ()
        | None ->
          if !issued < config.requests then begin
            let op, req = gen_request ~tiles:config.tiles ~sample ~ops:config.ops c.rng in
            c.pending <- Some (op, req, !issued);
            incr issued;
            Netsim.Stats.record_arrival stats
          end);
        match c.pending with
        | Some (_, req, id) -> round := (c, (Some id, req)) :: !round
        | None -> ())
      clients;
    let round = List.rev !round in
    assert (round <> []);
    let t0 = Unix.gettimeofday () in
    let replies = send_round (List.map snd round) in
    let lat_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    incr rounds;
    List.iter2
      (fun (c, _) resp ->
        match resp with
        | Protocol.Overloaded -> incr overloaded (* keep pending: retry next round *)
        | resp ->
          let op = match c.pending with Some (op, _, _) -> op | None -> assert false in
          c.pending <- None;
          incr completed;
          count_in by_op op;
          Netsim.Stats.record_delivery stats ~latency:lat_us;
          count_source by_source resp;
          (match resp with
          | Protocol.Slot_r _ | Protocol.Schedule_r _ | Protocol.Tiling_r _
          | Protocol.Tiling_raw_r _ -> incr ok
          | Protocol.No_tiling _ -> incr no_tiling
          | Protocol.Deadline_exceeded -> incr deadline
          | _ -> incr errors))
      round replies
  done;
  let elapsed_s = Unix.gettimeofday () -. t_start in
  (* Fetch final server counters (and optionally shut the server down);
     both replies join the digest - they are deterministic too. *)
  let server =
    match send_round [ (Some !issued, Protocol.Stats) ] with
    | [ Protocol.Stats_r s ] -> s
    | _ -> failwith "loadgen: stats request not answered with stats"
  in
  if config.send_shutdown then ignore (send_round [ (None, Protocol.Shutdown) ]);
  let lookups = server.cache_hits + server.cache_misses in
  {
    requests = config.requests;
    completed = !completed;
    ok = !ok;
    no_tiling = !no_tiling;
    deadline = !deadline;
    errors = !errors;
    overloaded_replies = !overloaded;
    rounds = !rounds;
    by_op =
      List.sort compare (Hashtbl.fold (fun op n acc -> (op, n) :: acc) by_op []);
    by_source =
      List.sort compare
        (Hashtbl.fold (fun s n acc -> (s, n) :: acc) by_source []);
    hit_rate =
      (if lookups = 0 then 1.0 else float_of_int server.cache_hits /. float_of_int lookups);
    server;
    checksum = Digest.to_hex (Digest.string (Buffer.contents digest));
    latency = Netsim.Stats.snapshot stats;
    elapsed_s;
    throughput =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
  }

let run_with ~send (config : config) =
  let digest = Buffer.create 4096 in
  let send_round reqs =
    let lines = List.map (fun (id, req) -> Protocol.request_to_string ?id req) reqs in
    List.map
      (fun reply ->
        Buffer.add_string digest reply;
        Buffer.add_char digest '\n';
        match Protocol.response_of_string reply with
        | Ok (_, resp) -> resp
        | Error msg -> Protocol.Error_r ("undecodable reply: " ^ msg))
      (send lines)
  in
  drive ~name:"Loadgen.run_with" ~digest ~send_round config

let run_binary ~send (config : config) =
  let digest = Buffer.create 4096 in
  let send_round reqs =
    (* The binary client assigns burst-local frame ids itself, so the
       driver's ids are not sent; position matches replies to requests. *)
    List.map
      (fun reply ->
        let id, resp =
          match reply with
          | Ok (id, resp) -> (id, resp)
          | Error msg -> (None, Protocol.Error_r ("undecodable reply: " ^ msg))
        in
        Buffer.add_string digest (Protocol.response_to_string ?id resp);
        Buffer.add_char digest '\n';
        resp)
      (send (List.map snd reqs))
  in
  drive ~name:"Loadgen.run_binary" ~digest ~send_round config

let run engine config =
  run_with ~send:(fun lines -> fst (Frontend.handle_lines engine lines)) config

(* ---------- open-loop mode ---------- *)

type open_config = {
  connections : int;
  rate : float;
  total : int;
  binary : bool;
  zipf : float;
  seed : int64;
  tiles : (string * Prototile.t) list;
  ops : op_mix;
  send_shutdown : bool;
}

let open_default =
  { connections = 64; rate = 0.0; total = 10_000; binary = true; zipf = 1.1; seed = 1L;
    tiles = default_tiles; ops = `Mixed; send_shutdown = false }

type open_report = {
  sent : int;
  completed : int;
  dropped : int;
  errors : int;
  overloaded_replies : int;
  by_source : (string * int) list;
  latency : Netsim.Stats.snapshot;
  elapsed_s : float;
  throughput : float;
}

type oconn = {
  ofd : Unix.file_descr;
  orng : Prng.Xoshiro.t;
  oin : Ibuf.t;
  mutable out_buf : bytes;
  mutable out_off : int;  (* next unwritten byte; = length means flushed *)
  mutable flight : float option;  (* send timestamp of the in-flight request *)
  mutable oclosed : bool;
  mutable owrite : bool;  (* write interest currently registered *)
}

let encode_one ~binary ~id req =
  if binary then Bytes.of_string (Wire.encode_request ~id req)
  else Bytes.of_string (Protocol.request_to_string ~id req ^ "\n")

(* How long a fully-issued run may sit with zero reply progress before
   the remaining in-flight requests are written off as dropped. *)
let stall_limit_s = 30.0

let run_open ~path (cfg : open_config) =
  (* A server-side close with our request bytes still unwritten must
     surface as EPIPE on the write (handled by [close_conn]), not kill
     the whole load generator with SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.connections < 1 then invalid_arg "Loadgen.run_open: connections must be >= 1";
  if cfg.total < 0 then invalid_arg "Loadgen.run_open: negative total";
  if cfg.tiles = [] then invalid_arg "Loadgen.run_open: empty tile catalogue";
  let sample = zipf_sampler ~s:cfg.zipf (List.length cfg.tiles) in
  let ep = Epoll.create () in
  let conns = Hashtbl.create cfg.connections in
  let alive = ref 0 in
  for i = 0 to cfg.connections - 1 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception e ->
      Unix.close fd;
      Hashtbl.iter (fun _ c -> Unix.close c.ofd) conns;
      Epoll.close ep;
      raise e);
    Unix.set_nonblock fd;
    let c =
      { ofd = fd;
        orng = Prng.Xoshiro.create (Int64.add cfg.seed (Int64.of_int i));
        oin = Ibuf.create ();
        out_buf = Bytes.empty;
        out_off = 0;
        flight = None;
        oclosed = false;
        owrite = false }
    in
    Hashtbl.replace conns fd c;
    Epoll.add ep fd ~read:true ~write:false;
    incr alive
  done;
  let stats = Netsim.Stats.create () in
  let sent = ref 0 in
  let completed = ref 0 in
  let dropped = ref 0 in
  let errors = ref 0 in
  let overloaded = ref 0 in
  let by_source = Hashtbl.create 4 in
  let idle = Queue.create () in
  Hashtbl.iter (fun _ c -> Queue.push c idle) conns;
  let close_conn c =
    if not c.oclosed then begin
      c.oclosed <- true;
      (match c.flight with
      | Some _ ->
        c.flight <- None;
        incr dropped
      | None -> ());
      Epoll.remove ep c.ofd;
      Hashtbl.remove conns c.ofd;
      (try Unix.close c.ofd with Unix.Unix_error _ -> ());
      decr alive
    end
  in
  let set_write c w =
    if w <> c.owrite && not c.oclosed then begin
      c.owrite <- w;
      Epoll.modify ep c.ofd ~read:true ~write:w
    end
  in
  let flush c =
    let len = Bytes.length c.out_buf in
    let continue = ref true in
    while !continue && not c.oclosed && c.out_off < len do
      match Unix.write c.ofd c.out_buf c.out_off (len - c.out_off) with
      | n -> c.out_off <- c.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
      | exception Unix.Unix_error _ ->
        close_conn c;
        continue := false
    done;
    if not c.oclosed then set_write c (c.out_off < Bytes.length c.out_buf)
  in
  let issue c =
    let _, req = gen_request ~tiles:cfg.tiles ~sample ~ops:cfg.ops c.orng in
    c.out_buf <- encode_one ~binary:cfg.binary ~id:!sent req;
    c.out_off <- 0;
    c.flight <- Some (Unix.gettimeofday ());
    incr sent;
    Netsim.Stats.record_arrival stats;
    flush c
  in
  let finish c resp =
    match c.flight with
    | None -> () (* unsolicited bytes; ignore *)
    | Some t0 ->
      c.flight <- None;
      incr completed;
      Netsim.Stats.record_delivery stats
        ~latency:(int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
      count_source by_source resp;
      (match resp with
      | Protocol.Overloaded -> incr overloaded
      | Protocol.Error_r _ -> incr errors
      | _ -> ());
      Queue.push c idle
  in
  let drop_reply c =
    match c.flight with
    | None -> ()
    | Some _ ->
      c.flight <- None;
      incr dropped;
      Queue.push c idle
  in
  let parse_binary c =
    let progress = ref true in
    while !progress && not c.oclosed do
      progress := false;
      match Wire.frame_total c.oin.Ibuf.data ~off:c.oin.Ibuf.start ~avail:c.oin.Ibuf.len with
      | Wire.Need_more -> ()
      | Wire.Bad_frame _ ->
        (* Framing is lost; nothing later on this connection can be
           trusted to line up with a request. *)
        drop_reply c;
        close_conn c
      | Wire.Total n ->
        if c.oin.Ibuf.len >= n then begin
          let frame = Bytes.sub_string c.oin.Ibuf.data c.oin.Ibuf.start n in
          Ibuf.drop c.oin n;
          (match Wire.decode_response frame with
          | Ok (_, resp) -> finish c resp
          | Error _ -> drop_reply c);
          progress := true
        end
    done
  in
  let find_nl b =
    let data = b.Ibuf.data and start = b.Ibuf.start and len = b.Ibuf.len in
    let rec go i =
      if i >= start + len then None
      else if Bytes.get data i = '\n' then Some (i - start)
      else go (i + 1)
    in
    go start
  in
  let parse_text c =
    let progress = ref true in
    while !progress && not c.oclosed do
      progress := false;
      match find_nl c.oin with
      | None -> ()
      | Some rel ->
        let line = Bytes.sub_string c.oin.Ibuf.data c.oin.Ibuf.start rel in
        Ibuf.drop c.oin (rel + 1);
        (match Protocol.response_of_string line with
        | Ok (_, resp) -> finish c resp
        | Error _ -> drop_reply c);
        progress := true
    done
  in
  let scratch = Bytes.create 65536 in
  let handle_read c =
    let continue = ref true in
    while !continue && not c.oclosed do
      match Unix.read c.ofd scratch 0 (Bytes.length scratch) with
      | 0 ->
        close_conn c;
        continue := false
      | n ->
        Ibuf.append c.oin scratch n;
        if cfg.binary then parse_binary c else parse_text c;
        if n < Bytes.length scratch then continue := false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
      | exception Unix.Unix_error _ ->
        close_conn c;
        continue := false
    done
  in
  let interval = if cfg.rate > 0.0 then 1.0 /. cfg.rate else 0.0 in
  let t_start = Unix.gettimeofday () in
  let next_send = ref t_start in
  let rec pop_idle () =
    match Queue.take_opt idle with
    | None -> None
    | Some c ->
      if c.oclosed || c.flight <> None || c.out_off < Bytes.length c.out_buf then pop_idle ()
      else Some c
  in
  let rec pump () =
    if
      !sent < cfg.total && !alive > 0
      && (interval = 0.0 || Unix.gettimeofday () >= !next_send)
    then
      match pop_idle () with
      | None -> () (* every connection busy: the backlog waits for replies *)
      | Some c ->
        issue c;
        if interval > 0.0 then next_send := !next_send +. interval;
        pump ()
  in
  let last_progress = ref t_start in
  let last_done = ref 0 in
  while !alive > 0 && (!sent < cfg.total || !sent - !completed - !dropped > 0) do
    pump ();
    let timeout_ms =
      if !sent >= cfg.total || interval = 0.0 then 100
      else
        let dt = !next_send -. Unix.gettimeofday () in
        if dt > 0.0 then int_of_float (Float.min 100.0 (ceil (dt *. 1000.0)))
        else 100 (* overdue but every connection is busy: wait for a reply *)
    in
    let events = Epoll.wait ep ~timeout_ms in
    Array.iter
      (fun (ev : Epoll.event) ->
        match Hashtbl.find_opt conns ev.Epoll.fd with
        | None -> ()
        | Some c ->
          if ev.Epoll.error then close_conn c
          else begin
            if ev.Epoll.writable && not c.oclosed then flush c;
            if ev.Epoll.readable && not c.oclosed then handle_read c
          end)
      events;
    let done_now = !completed + !dropped in
    if done_now <> !last_done then begin
      last_done := done_now;
      last_progress := Unix.gettimeofday ()
    end
    else if
      !sent - done_now > 0 && Unix.gettimeofday () -. !last_progress > stall_limit_s
    then
      (* The server went silent with requests outstanding: write them
         off so the run terminates with the loss on the record. *)
      Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter close_conn
  done;
  let elapsed_s = Unix.gettimeofday () -. t_start in
  Hashtbl.iter (fun _ c -> try Unix.close c.ofd with Unix.Unix_error _ -> ()) conns;
  Epoll.close ep;
  if cfg.send_shutdown then
    Frontend.with_connection ~path (fun send ->
        ignore (send [ Protocol.request_to_string Protocol.Shutdown ]));
  ({
     sent = !sent;
     completed = !completed;
     dropped = !dropped;
     errors = !errors;
     overloaded_replies = !overloaded;
     by_source =
       List.sort compare (Hashtbl.fold (fun s n acc -> (s, n) :: acc) by_source []);
     latency = Netsim.Stats.snapshot stats;
     elapsed_s;
     throughput = (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
   }
    : open_report)

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "@[<v>requests=%d completed=%d ok=%d no_tiling=%d deadline=%d errors=%d@,\
     overloaded_replies=%d rounds=%d@,by_op: %s@,\
     cache: hit_rate=%.4f entries=%d evictions=%d@,server: %a@,checksum=%s@]"
    r.requests r.completed r.ok r.no_tiling r.deadline r.errors r.overloaded_replies
    r.rounds
    (String.concat " " (List.map (fun (op, n) -> Printf.sprintf "%s=%d" op n) r.by_op))
    r.hit_rate r.server.cache_entries r.server.cache_evictions Protocol.pp_server_stats
    r.server r.checksum

let pp_timing fmt (r : report) =
  Format.fprintf fmt
    "elapsed=%.3fs throughput=%.0f req/s round-latency(us): p50=%.0f p95=%.0f p99=%.0f max=%d by_source: %s"
    r.elapsed_s r.throughput r.latency.Netsim.Stats.p50_latency
    r.latency.Netsim.Stats.p95_latency r.latency.Netsim.Stats.p99_latency
    r.latency.Netsim.Stats.max_latency
    (if r.by_source = [] then "-"
     else
       String.concat " "
         (List.map (fun (s, n) -> Printf.sprintf "%s=%d" s n) r.by_source))

let pp_open_report fmt (r : open_report) =
  Format.fprintf fmt
    "@[<v>sent=%d completed=%d dropped=%d errors=%d overloaded=%d@,\
     elapsed=%.3fs throughput=%.0f req/s latency(us): p50=%.0f p95=%.0f p99=%.0f max=%d@,\
     by_source: %s@]"
    r.sent r.completed r.dropped r.errors r.overloaded_replies r.elapsed_s r.throughput
    r.latency.Netsim.Stats.p50_latency r.latency.Netsim.Stats.p95_latency
    r.latency.Netsim.Stats.p99_latency r.latency.Netsim.Stats.max_latency
    (if r.by_source = [] then "-"
     else
       String.concat " "
         (List.map (fun (s, n) -> Printf.sprintf "%s=%d" s n) r.by_source))
