open Lattice

type config = {
  requests : int;
  clients : int;
  zipf : float;
  seed : int64;
  tiles : (string * Prototile.t) list;
  send_shutdown : bool;
}

let default_tiles =
  [ ("cheb1", Prototile.chebyshev_ball ~dim:2 1);
    ("tet-S", Prototile.tetromino `S);
    ("tet-Z", Prototile.tetromino `Z);
    ("rect2x3", Prototile.rect 2 3);
    ("rect3x2", Prototile.rect 3 2);
    ("tet-L", Prototile.tetromino `L);
    ("tet-J", Prototile.tetromino `J);
    ("tet-T", Prototile.tetromino `T);
    ("tet-I", Prototile.tetromino `I);
    ("tet-O", Prototile.tetromino `O);
    ("rect2x2", Prototile.rect 2 2);
    ("pent-P", Prototile.pentomino `P);
    ("pent-L", Prototile.pentomino `L);
    ("pent-I", Prototile.pentomino `I);
    ("pent-X", Prototile.pentomino `X);
    ("cheb2", Prototile.chebyshev_ball ~dim:2 2) ]

let default =
  { requests = 10_000; clients = 8; zipf = 1.1; seed = 1L; tiles = default_tiles;
    send_shutdown = false }

type report = {
  requests : int;
  completed : int;
  ok : int;
  no_tiling : int;
  deadline : int;
  errors : int;
  overloaded_replies : int;
  rounds : int;
  by_op : (string * int) list;
  by_source : (string * int) list;
  hit_rate : float;
  server : Protocol.server_stats;
  checksum : string;
  latency : Netsim.Stats.snapshot;
  elapsed_s : float;
  throughput : float;
}

(* Zipf(s) over ranks 1..n via the inverse CDF. *)
let zipf_sampler ~s n =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun u ->
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then bisect lo mid else bisect (mid + 1) hi
    in
    bisect 0 (n - 1)

type client = { rng : Prng.Xoshiro.t; mutable pending : (string * string) option }
(* pending = (op name, encoded request line) awaiting a non-overloaded reply *)

let gen_request ~tiles ~sample c ~id =
  let tile = snd (List.nth tiles (sample (Prng.Xoshiro.float c.rng 1.0))) in
  let r = Prng.Xoshiro.float c.rng 1.0 in
  let op, req =
    if r < 0.80 then begin
      let coord () = Prng.Xoshiro.int c.rng 41 - 20 in
      let pos = Zgeom.Vec.of_list (List.init (Prototile.dim tile) (fun _ -> coord ())) in
      ("slot", Protocol.Slot { tile; pos })
    end
    else if r < 0.95 then ("schedule", Protocol.Schedule tile)
    else ("tile-search", Protocol.Tile_search tile)
  in
  (op, Protocol.request_to_string ~id req)

let run_with ~send (config : config) =
  if config.requests < 0 then invalid_arg "Loadgen.run_with: negative requests";
  if config.clients < 1 then invalid_arg "Loadgen.run_with: clients must be >= 1";
  if config.tiles = [] then invalid_arg "Loadgen.run_with: empty tile catalogue";
  let sample = zipf_sampler ~s:config.zipf (List.length config.tiles) in
  let clients =
    Array.init config.clients (fun i ->
        { rng = Prng.Xoshiro.create (Int64.add config.seed (Int64.of_int i));
          pending = None })
  in
  let stats = Netsim.Stats.create () in
  let digest = Buffer.create 4096 in
  let issued = ref 0 in
  let completed = ref 0 in
  let ok = ref 0 in
  let no_tiling = ref 0 in
  let deadline = ref 0 in
  let errors = ref 0 in
  let overloaded = ref 0 in
  let rounds = ref 0 in
  let by_op = Hashtbl.create 4 in
  let count_op op = Hashtbl.replace by_op op (1 + Option.value ~default:0 (Hashtbl.find_opt by_op op)) in
  let by_source = Hashtbl.create 4 in
  let count_source resp =
    match Protocol.source_of_response resp with
    | None -> ()
    | Some s ->
      let name = Protocol.source_to_string s in
      Hashtbl.replace by_source name
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_source name))
  in
  let t_start = Unix.gettimeofday () in
  while !completed < config.requests do
    let round = ref [] in
    Array.iter
      (fun c ->
        (match c.pending with
        | Some _ -> ()
        | None ->
          if !issued < config.requests then begin
            c.pending <- Some (gen_request ~tiles:config.tiles ~sample c ~id:!issued);
            incr issued;
            Netsim.Stats.record_arrival stats
          end);
        match c.pending with
        | Some (_, line) -> round := (c, line) :: !round
        | None -> ())
      clients;
    let round = List.rev !round in
    assert (round <> []);
    let t0 = Unix.gettimeofday () in
    let replies = send (List.map snd round) in
    let lat_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    incr rounds;
    List.iter2
      (fun (c, _) reply ->
        Buffer.add_string digest reply;
        Buffer.add_char digest '\n';
        let resp =
          match Protocol.response_of_string reply with
          | Ok (_, resp) -> resp
          | Error msg -> Protocol.Error_r ("undecodable reply: " ^ msg)
        in
        match resp with
        | Protocol.Overloaded -> incr overloaded (* keep pending: retry next round *)
        | resp ->
          let op = match c.pending with Some (op, _) -> op | None -> assert false in
          c.pending <- None;
          incr completed;
          count_op op;
          Netsim.Stats.record_delivery stats ~latency:lat_us;
          count_source resp;
          (match resp with
          | Protocol.Slot_r _ | Protocol.Schedule_r _ | Protocol.Tiling_r _
          | Protocol.Tiling_raw_r _ -> incr ok
          | Protocol.No_tiling _ -> incr no_tiling
          | Protocol.Deadline_exceeded -> incr deadline
          | _ -> incr errors))
      round replies
  done;
  let elapsed_s = Unix.gettimeofday () -. t_start in
  (* Fetch final server counters (and optionally shut the server down);
     both replies join the digest - they are deterministic too. *)
  let server =
    match send [ Protocol.request_to_string ~id:!issued Protocol.Stats ] with
    | [ reply ] -> (
      Buffer.add_string digest reply;
      Buffer.add_char digest '\n';
      match Protocol.response_of_string reply with
      | Ok (_, Protocol.Stats_r s) -> s
      | _ -> failwith "loadgen: stats request not answered with stats")
    | _ -> failwith "loadgen: expected one reply to stats"
  in
  if config.send_shutdown then
    List.iter
      (fun reply ->
        Buffer.add_string digest reply;
        Buffer.add_char digest '\n')
      (send [ Protocol.request_to_string Protocol.Shutdown ]);
  let lookups = server.cache_hits + server.cache_misses in
  {
    requests = config.requests;
    completed = !completed;
    ok = !ok;
    no_tiling = !no_tiling;
    deadline = !deadline;
    errors = !errors;
    overloaded_replies = !overloaded;
    rounds = !rounds;
    by_op =
      List.sort compare (Hashtbl.fold (fun op n acc -> (op, n) :: acc) by_op []);
    by_source =
      List.sort compare
        (Hashtbl.fold (fun s n acc -> (s, n) :: acc) by_source []);
    hit_rate =
      (if lookups = 0 then 1.0 else float_of_int server.cache_hits /. float_of_int lookups);
    server;
    checksum = Digest.to_hex (Digest.string (Buffer.contents digest));
    latency = Netsim.Stats.snapshot stats;
    elapsed_s;
    throughput =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
  }

let run engine config =
  run_with ~send:(fun lines -> fst (Frontend.handle_lines engine lines)) config

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>requests=%d completed=%d ok=%d no_tiling=%d deadline=%d errors=%d@,\
     overloaded_replies=%d rounds=%d@,by_op: %s@,\
     cache: hit_rate=%.4f entries=%d evictions=%d@,server: %a@,checksum=%s@]"
    r.requests r.completed r.ok r.no_tiling r.deadline r.errors r.overloaded_replies
    r.rounds
    (String.concat " " (List.map (fun (op, n) -> Printf.sprintf "%s=%d" op n) r.by_op))
    r.hit_rate r.server.cache_entries r.server.cache_evictions Protocol.pp_server_stats
    r.server r.checksum

let pp_timing fmt r =
  Format.fprintf fmt
    "elapsed=%.3fs throughput=%.0f req/s round-latency(us): p50=%.0f p95=%.0f p99=%.0f max=%d by_source: %s"
    r.elapsed_s r.throughput r.latency.Netsim.Stats.p50_latency
    r.latency.Netsim.Stats.p95_latency r.latency.Netsim.Stats.p99_latency
    r.latency.Netsim.Stats.max_latency
    (if r.by_source = [] then "-"
     else
       String.concat " "
         (List.map (fun (s, n) -> Printf.sprintf "%s=%d" s n) r.by_source))
