(** Closed-loop load generator for the schedule server.

    Simulates [clients] concurrent clients.  Each client keeps one
    request in flight: every round, each client submits its pending
    request (a retry, if the last reply was [overloaded]) or draws a
    fresh one - an operation mix over a tile catalogue with Zipf-skewed
    popularity, the regime the canonicalizing cache is built for.  The
    round's requests go to the server as one batch; replies are tallied
    and the loop continues until [requests] requests have completed
    (an [overloaded] reply is a retry, not a completion).

    Request generation is driven by one deterministic {!Prng.Xoshiro}
    stream per client, seeded from [seed], so the request sequence -
    and, against an in-process engine, every reply byte - is identical
    at every [-j]: the deterministic half of the report can be diffed
    across pool sizes while the timing half floats. *)

open Lattice

type config = {
  requests : int;  (** total completions to drive *)
  clients : int;
  zipf : float;  (** popularity skew exponent (0 = uniform) *)
  seed : int64;
  tiles : (string * Prototile.t) list;  (** catalogue, most popular first *)
  send_shutdown : bool;  (** finish with a [shutdown] request *)
}

val default_tiles : (string * Prototile.t) list
(** A 2-D catalogue that deliberately contains congruent pairs under
    different names (S/Z and L/J tetrominoes, [rect2x3]/[rect3x2],
    [tet-O]/[rect2x2]) so the canonicalizing cache has something to
    merge. *)

val default : config
(** 10,000 requests, 8 clients, zipf 1.1, seed 1, {!default_tiles},
    no shutdown. *)

type report = {
  requests : int;
  completed : int;
  ok : int;
  no_tiling : int;
  deadline : int;
  errors : int;
  overloaded_replies : int;  (** retries forced by backpressure *)
  rounds : int;
  by_op : (string * int) list;  (** completions per operation name *)
  by_source : (string * int) list;
      (** completions per reply {!Protocol.source} (tile replies only) *)
  hit_rate : float;  (** cache hits / (hits + misses), from server stats *)
  server : Protocol.server_stats;  (** snapshot after the last completion *)
  checksum : string;  (** hex digest over every reply line, in order *)
  latency : Netsim.Stats.snapshot;  (** per-round latency, microseconds *)
  elapsed_s : float;
  throughput : float;  (** completions per second *)
}

val run_with : send:(string list -> string list) -> config -> report
(** Drive any transport: [send] takes a batch of request lines and
    returns one reply line per request, in order
    ({!Frontend.with_connection} provides one for a socket). *)

val run : Engine.t -> config -> report
(** In-process: drive the engine directly through {!Frontend.handle_lines}. *)

val pp_report : Format.formatter -> report -> unit
(** The deterministic half only - safe to diff across [-j]. *)

val pp_timing : Format.formatter -> report -> unit
(** The wall-clock half: elapsed, throughput, latency percentiles, plus
    the per-source completion counts (which depend on whether a store is
    attached, so they stay out of {!pp_report}'s diffable output). *)
