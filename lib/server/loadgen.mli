(** Load generators for the schedule server: a closed-loop driver over
    either wire dialect, and an open-loop epoll client for saturation
    and tail-latency runs.

    {b Closed loop} ([run], [run_with], [run_binary]) simulates
    [clients] concurrent clients.  Each client keeps one request in
    flight: every round, each client submits its pending request (a
    retry, if the last reply was [overloaded]) or draws a fresh one -
    an operation mix over a tile catalogue with Zipf-skewed popularity,
    the regime the canonicalizing cache is built for.  The round's
    requests go to the server as one batch; replies are tallied and the
    loop continues until [requests] requests have completed (an
    [overloaded] reply is a retry, not a completion).

    Request generation is driven by one deterministic {!Prng.Xoshiro}
    stream per client, seeded from [seed], so the request sequence -
    and, against an in-process engine, every reply byte - is identical
    at every [-j]: the deterministic half of the report can be diffed
    across pool sizes while the timing half floats.

    {b Open loop} ([run_open]) holds [connections] non-blocking
    sockets against the daemon through a client-side {!Evloop.Epoll}
    and issues requests at a global target [rate] (0 = as fast as the
    connection pool allows), one in flight per connection, measuring
    per-request latency percentiles.  Replies that fail to decode are
    counted as [dropped], never silently retried - the CI saturation
    gate requires that count to be zero. *)

open Lattice

type op_mix = [ `Mixed | `Search_only ]
(** [`Mixed] is the historical 80/15/5 slot/schedule/tile-search blend;
    [`Search_only] issues only [tile-search] requests, the workload the
    zero-copy corpus splice path serves. *)

type config = {
  requests : int;  (** total completions to drive *)
  clients : int;
  zipf : float;  (** popularity skew exponent (0 = uniform) *)
  seed : int64;
  tiles : (string * Prototile.t) list;  (** catalogue, most popular first *)
  ops : op_mix;
  send_shutdown : bool;  (** finish with a [shutdown] request *)
}

val default_tiles : (string * Prototile.t) list
(** A 2-D catalogue that deliberately contains congruent pairs under
    different names (S/Z and L/J tetrominoes, [rect2x3]/[rect3x2],
    [tet-O]/[rect2x2]) so the canonicalizing cache has something to
    merge. *)

val default : config
(** 10,000 requests, 8 clients, zipf 1.1, seed 1, {!default_tiles},
    mixed operations, no shutdown. *)

type report = {
  requests : int;
  completed : int;
  ok : int;
  no_tiling : int;
  deadline : int;
  errors : int;
  overloaded_replies : int;  (** retries forced by backpressure *)
  rounds : int;
  by_op : (string * int) list;  (** completions per operation name *)
  by_source : (string * int) list;
      (** completions per reply {!Protocol.source} (tile replies only) *)
  hit_rate : float;  (** cache hits / (hits + misses), from server stats *)
  server : Protocol.server_stats;  (** snapshot after the last completion *)
  checksum : string;  (** hex digest over every reply, in order *)
  latency : Netsim.Stats.snapshot;  (** per-round latency, microseconds *)
  elapsed_s : float;
  throughput : float;  (** completions per second *)
}

val run_with : send:(string list -> string list) -> config -> report
(** Drive any text transport: [send] takes a batch of request lines and
    returns one reply line per request, in order
    ({!Frontend.with_connection} provides one for a socket). *)

val run_binary :
  send:
    (Protocol.request list -> (int option * Protocol.response, string) result list) ->
  config ->
  report
(** Drive a binary transport ({!Frontend.with_binary_connection}
    provides one).  The transport assigns burst-local frame ids, so
    replies are matched to requests by position; a reply that fails to
    decode completes its request as an error.  The checksum digests the
    text rendering of each decoded reply. *)

val run : Engine.t -> config -> report
(** In-process: drive the engine directly through {!Frontend.handle_lines}. *)

(** {2 Open-loop mode} *)

type open_config = {
  connections : int;  (** concurrent sockets held against the daemon *)
  rate : float;  (** aggregate requests/second; 0 = unpaced *)
  total : int;  (** requests to send *)
  binary : bool;  (** wire dialect *)
  zipf : float;
  seed : int64;
  tiles : (string * Prototile.t) list;
  ops : op_mix;
  send_shutdown : bool;  (** send [shutdown] after the run, on a fresh connection *)
}

val open_default : open_config
(** 64 connections, unpaced, 10,000 requests, binary, zipf 1.1, seed 1,
    {!default_tiles}, mixed operations, no shutdown. *)

type open_report = {
  sent : int;
  completed : int;
  dropped : int;
      (** replies that failed to decode, plus in-flight requests lost to
          a connection error or the stall limit; must be 0 on a healthy
          run (the CI saturation gate enforces exactly that) *)
  errors : int;  (** [error] replies *)
  overloaded_replies : int;
      (** [overloaded] replies; completions in open-loop accounting (the
          request got its answer), unlike the closed-loop retry *)
  by_source : (string * int) list;
  latency : Netsim.Stats.snapshot;  (** per-request latency, microseconds *)
  elapsed_s : float;
  throughput : float;  (** completions per second *)
}

val run_open : path:string -> open_config -> open_report
(** Drive the daemon at Unix socket [path].  Each connection keeps at
    most one request in flight; the pacer releases the next request
    when its inter-arrival deadline passes {e and} an idle connection
    exists, so a saturated pool degrades to closed-loop at the pool
    size rather than queueing unboundedly client-side.  A run whose
    outstanding requests see no reply for 30 seconds writes them off as
    [dropped] and terminates. *)

val pp_report : Format.formatter -> report -> unit
(** The deterministic half only - safe to diff across [-j]. *)

val pp_timing : Format.formatter -> report -> unit
(** The wall-clock half: elapsed, throughput, latency percentiles, plus
    the per-source completion counts (which depend on whether a store is
    attached, so they stay out of {!pp_report}'s diffable output). *)

val pp_open_report : Format.formatter -> open_report -> unit
(** Everything in an open-loop report is wall-clock-dependent, so there
    is no diffable half. *)
