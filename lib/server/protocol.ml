open Lattice
module Codec = Core.Codec

type request =
  | Slot of { tile : Prototile.t; pos : Zgeom.Vec.t }
  | Schedule of Prototile.t
  | Tile_search of Prototile.t
  | Stats
  | Shutdown

type server_stats = {
  served : int;
  overloaded : int;
  errors : int;
  searches : int;
  coalesced : int;
  timeouts : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  store_hits : int;
  corpus_hits : int;
}

type source = Memory | Corpus | Store | Fresh

type response =
  | Slot_r of { slot : int; num_slots : int; source : source option }
  | Schedule_r of { schedule : Core.Schedule.t; source : source option }
  | Tiling_r of {
      tiling : Tiling.Single.t;
      certificate : Core.Certificate.t;
      source : source option;
    }
  | Tiling_raw_r of { tiling_fields : string; source : source option }
  | Stats_r of server_stats
  | No_tiling of source option
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Error_r of string

let source_to_string = function
  | Memory -> "memory"
  | Corpus -> "corpus"
  | Store -> "store"
  | Fresh -> "fresh"

let source_of_response = function
  | Slot_r { source; _ } | Schedule_r { source; _ } | Tiling_r { source; _ }
  | Tiling_raw_r { source; _ } | No_tiling source ->
    source
  | Stats_r _ | Overloaded | Deadline_exceeded | Shutting_down | Error_r _ -> None

let ( let* ) = Result.bind

let id_fields = function None -> [] | Some id -> [ ("id", string_of_int id) ]

let id_of kvs =
  match List.assoc_opt "id" kvs with
  | None -> Ok None
  | Some s -> (
    match int_of_string_opt s with
    | Some id -> Ok (Some id)
    | None -> Error ("bad request id: " ^ s))

let tile_fields tile = [ ("tile", Codec.vecs_to_string (Prototile.cells tile)) ]

let tile_of kvs =
  let* cells_s = Codec.field kvs "tile" in
  let* cells = Codec.vecs_of_string cells_s in
  match Prototile.of_cells cells with
  | p -> Ok p
  | exception _ -> Error "invalid tile (empty, mixed dims, or origin missing)"

let request_to_string ?id req =
  let fields =
    match req with
    | Slot { tile; pos } ->
      (("op", "slot") :: tile_fields tile) @ [ ("pos", Codec.vec_to_string pos) ]
    | Schedule tile -> ("op", "schedule") :: tile_fields tile
    | Tile_search tile -> ("op", "tile-search") :: tile_fields tile
    | Stats -> [ ("op", "stats") ]
    | Shutdown -> [ ("op", "shutdown") ]
  in
  Codec.encode_record ~kind:"request" (id_fields id @ fields)

let request_of_string s =
  let* kvs = Codec.decode_record ~kind:"request" s in
  let* id = id_of kvs in
  let* op = Codec.field kvs "op" in
  let* req =
    match op with
    | "slot" ->
      let* tile = tile_of kvs in
      let* pos_s = Codec.field kvs "pos" in
      let* pos = Codec.vec_of_string pos_s in
      Ok (Slot { tile; pos })
    | "schedule" ->
      let* tile = tile_of kvs in
      Ok (Schedule tile)
    | "tile-search" ->
      let* tile = tile_of kvs in
      Ok (Tile_search tile)
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | _ -> Error ("unknown op: " ^ op)
  in
  Ok (id, req)

(* Error messages travel in a field value, which must stay free of '|'
   and newlines; anything else is preserved. *)
let sanitize msg =
  String.map (function '|' | '\n' | '\r' -> '/' | c -> c) msg

let stats_fields s =
  [ ("served", string_of_int s.served); ("overloaded", string_of_int s.overloaded);
    ("errors", string_of_int s.errors); ("searches", string_of_int s.searches);
    ("coalesced", string_of_int s.coalesced); ("timeouts", string_of_int s.timeouts);
    ("cache_hits", string_of_int s.cache_hits); ("cache_misses", string_of_int s.cache_misses);
    ("cache_evictions", string_of_int s.cache_evictions);
    ("cache_entries", string_of_int s.cache_entries);
    ("store_hits", string_of_int s.store_hits);
    ("corpus_hits", string_of_int s.corpus_hits) ]

let int_field kvs k =
  let* s = Codec.field kvs k in
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error ("bad integer in field " ^ k ^ ": " ^ s)

(* [store_hits] postdates the first wire format; default it so stats
   lines from older servers still decode. *)
let int_field_default kvs k ~default =
  match Codec.field kvs k with Error _ -> Ok default | Ok _ -> int_field kvs k

let stats_of kvs =
  let* served = int_field kvs "served" in
  let* overloaded = int_field kvs "overloaded" in
  let* errors = int_field kvs "errors" in
  let* searches = int_field kvs "searches" in
  let* coalesced = int_field kvs "coalesced" in
  let* timeouts = int_field kvs "timeouts" in
  let* cache_hits = int_field kvs "cache_hits" in
  let* cache_misses = int_field kvs "cache_misses" in
  let* cache_evictions = int_field kvs "cache_evictions" in
  let* cache_entries = int_field kvs "cache_entries" in
  let* store_hits = int_field_default kvs "store_hits" ~default:0 in
  let* corpus_hits = int_field_default kvs "corpus_hits" ~default:0 in
  Ok
    { served; overloaded; errors; searches; coalesced; timeouts; cache_hits; cache_misses;
      cache_evictions; cache_entries; store_hits; corpus_hits }

(* The [src] marker is optional in both directions: absent on lines from
   servers predating it, omitted when the engine has nothing to say. *)
let source_fields = function
  | None -> []
  | Some s -> [ ("src", source_to_string s) ]

let source_of kvs =
  match List.assoc_opt "src" kvs with
  | None -> Ok None
  | Some "memory" -> Ok (Some Memory)
  | Some "corpus" -> Ok (Some Corpus)
  | Some "store" -> Ok (Some Store)
  | Some "fresh" -> Ok (Some Fresh)
  | Some s -> Error ("unknown reply source: " ^ s)

(* A schedule already has a record encoding; embed its fields (minus the
   header) rather than invent a second format.  [schedule_fields] decodes
   the canonical line back into key/value pairs, which cannot fail on a
   value produced by [schedule_to_string]. *)
let schedule_fields sched =
  match Codec.decode_record ~kind:"schedule" (Codec.schedule_to_string sched) with
  | Ok kvs -> kvs
  | Error _ -> assert false

let schedule_of kvs =
  let keep = [ "dim"; "m"; "basis"; "table" ] in
  let kvs = List.filter (fun (k, _) -> List.mem k keep) kvs in
  Codec.schedule_of_string (Codec.encode_record ~kind:"schedule" kvs)

let tiling_fields t =
  match Codec.decode_record ~kind:"tiling" (Codec.tiling_to_string t) with
  | Ok kvs -> kvs
  | Error _ -> assert false

let tiling_of kvs =
  let keep = [ "prototile"; "basis"; "offsets" ] in
  let kvs = List.filter (fun (k, _) -> List.mem k keep) kvs in
  Codec.tiling_of_string (Codec.encode_record ~kind:"tiling" kvs)

(* The binary protocol ships tiling replies as the same '|'-separated
   field fragment the corpus splices into text lines; these two are the
   fragment codec it shares with [Wire]. *)
let tiling_fragment t =
  String.concat "|" (List.map (fun (k, v) -> k ^ "=" ^ v) (tiling_fields t))

let tiling_of_fragment frag =
  let header = Codec.encode_record ~kind:"tiling" [] in
  let* kvs = Codec.decode_record ~kind:"tiling" (header ^ "|" ^ frag) in
  tiling_of kvs

let response_to_string ?id resp =
  let encode fields = Codec.encode_record ~kind:"response" (id_fields id @ fields) in
  match resp with
  | Slot_r { slot; num_slots; source } ->
    encode
      ([ ("status", "ok"); ("op", "slot"); ("slot", string_of_int slot);
         ("m", string_of_int num_slots) ]
      @ source_fields source)
  | Schedule_r { schedule; source } ->
    encode
      ((("status", "ok") :: ("op", "schedule") :: schedule_fields schedule)
      @ source_fields source)
  | Tiling_r { tiling; certificate = _; source } ->
    (* The certificate is derivable from the tiling (Certificate.build);
       shipping only the tiling keeps the line minimal and forces the
       receiving side to revalidate. *)
    encode
      ((("status", "ok") :: ("op", "tile-search") :: tiling_fields tiling)
      @ source_fields source)
  | Tiling_raw_r { tiling_fields; source } ->
    (* The corpus splice path: [tiling_fields] is the already-encoded
       ['|']-separated field fragment of a stored tiling line, appended
       verbatim - the record grammar is flat, so field concatenation is
       string concatenation.  Decoders cannot tell this line from a
       [Tiling_r] one (and [response_of_string] yields [Tiling_r]). *)
    String.concat "|"
      ((encode [ ("status", "ok"); ("op", "tile-search") ] :: [ tiling_fields ])
      @ List.map (fun (k, v) -> k ^ "=" ^ v) (source_fields source))
  | Stats_r s -> encode (("status", "ok") :: ("op", "stats") :: stats_fields s)
  | No_tiling source -> encode (("status", "no-tiling") :: source_fields source)
  | Overloaded -> encode [ ("status", "overloaded") ]
  | Deadline_exceeded -> encode [ ("status", "deadline") ]
  | Shutting_down -> encode [ ("status", "shutting-down") ]
  | Error_r msg -> encode [ ("status", "error"); ("msg", sanitize msg) ]

let response_of_string s =
  let* kvs = Codec.decode_record ~kind:"response" s in
  let* id = id_of kvs in
  let* status = Codec.field kvs "status" in
  let* resp =
    match status with
    | "ok" -> (
      let* op = Codec.field kvs "op" in
      let* source = source_of kvs in
      match op with
      | "slot" ->
        let* slot = int_field kvs "slot" in
        let* num_slots = int_field kvs "m" in
        if num_slots < 1 || slot < 0 || slot >= num_slots then Error "slot out of range"
        else Ok (Slot_r { slot; num_slots; source })
      | "schedule" ->
        let* schedule = schedule_of kvs in
        Ok (Schedule_r { schedule; source })
      | "tile-search" ->
        let* tiling = tiling_of kvs in
        Ok (Tiling_r { tiling; certificate = Core.Certificate.build tiling; source })
      | "stats" ->
        let* stats = stats_of kvs in
        Ok (Stats_r stats)
      | _ -> Error ("unknown response op: " ^ op))
    | "no-tiling" ->
      let* source = source_of kvs in
      Ok (No_tiling source)
    | "overloaded" -> Ok Overloaded
    | "deadline" -> Ok Deadline_exceeded
    | "shutting-down" -> Ok Shutting_down
    | "error" ->
      let* msg = Codec.field kvs "msg" in
      Ok (Error_r msg)
    | _ -> Error ("unknown status: " ^ status)
  in
  Ok (id, resp)

let pp_server_stats fmt s =
  Format.fprintf fmt
    "served=%d overloaded=%d errors=%d searches=%d coalesced=%d timeouts=%d cache: \
     hits=%d misses=%d evictions=%d entries=%d store_hits=%d corpus_hits=%d"
    s.served s.overloaded s.errors s.searches s.coalesced s.timeouts s.cache_hits
    s.cache_misses s.cache_evictions s.cache_entries s.store_hits s.corpus_hits
