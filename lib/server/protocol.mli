(** Request/response types and wire codecs for the schedule server.

    One request or response is one line in the {!Core.Codec} record
    grammar ([tilesched/v1;kind=K] header, ['|']-separated [key=value]
    fields), so the daemon speaks the same dialect as the on-disk
    artifacts.  Requests carry an optional client-chosen [id] that is
    echoed verbatim in the reply, letting pipelined clients match
    responses to requests.

    The decoders are total: any malformed, truncated or mutated line
    yields [Error _], never an exception. *)

open Lattice

type request =
  | Slot of { tile : Prototile.t; pos : Zgeom.Vec.t }
      (** The slot of the sensor at [pos] in an optimal schedule for
          [tile]-neighborhoods (paper Theorem 1). *)
  | Schedule of Prototile.t  (** The full schedule record for [tile]. *)
  | Tile_search of Prototile.t
      (** The tiling and independence certificate backing the schedule. *)
  | Stats  (** Server counters; never touches the cache. *)
  | Shutdown  (** Ask the daemon to finish the batch and exit cleanly. *)

type server_stats = {
  served : int;  (** requests answered (anything but [Overloaded]) *)
  overloaded : int;  (** requests refused by admission control *)
  errors : int;  (** requests answered with [Error_r] *)
  searches : int;  (** tiling searches actually run *)
  coalesced : int;  (** cache misses folded into another miss's search *)
  timeouts : int;  (** searches abandoned at their deadline *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
}

type response =
  | Slot_r of { slot : int; num_slots : int }
  | Schedule_r of Core.Schedule.t
  | Tiling_r of { tiling : Tiling.Single.t; certificate : Core.Certificate.t }
  | Stats_r of server_stats
  | No_tiling  (** The search space is exhausted: no tiling, no schedule. *)
  | Overloaded  (** Admission control refused the request; retry later. *)
  | Deadline_exceeded  (** The search hit its deadline; result unknown. *)
  | Shutting_down
  | Error_r of string

val request_to_string : ?id:int -> request -> string
val request_of_string : string -> (int option * request, string) result

val response_to_string : ?id:int -> response -> string

val response_of_string : string -> (int option * response, string) result
(** [Tiling_r] rebuilds its certificate with {!Core.Certificate.build},
    so a decoded certificate is trustworthy iff the tiling validates. *)

val pp_server_stats : Format.formatter -> server_stats -> unit
