(** Request/response types and wire codecs for the schedule server.

    One request or response is one line in the {!Core.Codec} record
    grammar ([tilesched/v1;kind=K] header, ['|']-separated [key=value]
    fields), so the daemon speaks the same dialect as the on-disk
    artifacts.  Requests carry an optional client-chosen [id] that is
    echoed verbatim in the reply, letting pipelined clients match
    responses to requests.

    The decoders are total: any malformed, truncated or mutated line
    yields [Error _], never an exception. *)

open Lattice

type request =
  | Slot of { tile : Prototile.t; pos : Zgeom.Vec.t }
      (** The slot of the sensor at [pos] in an optimal schedule for
          [tile]-neighborhoods (paper Theorem 1). *)
  | Schedule of Prototile.t  (** The full schedule record for [tile]. *)
  | Tile_search of Prototile.t
      (** The tiling and independence certificate backing the schedule. *)
  | Stats  (** Server counters; never touches the cache. *)
  | Shutdown  (** Ask the daemon to finish the batch and exit cleanly. *)

type server_stats = {
  served : int;  (** requests answered (anything but [Overloaded]) *)
  overloaded : int;  (** requests refused by admission control *)
  errors : int;  (** requests answered with [Error_r] *)
  searches : int;  (** tiling searches actually run *)
  coalesced : int;  (** cache misses folded into another miss's search *)
  timeouts : int;  (** searches abandoned at their deadline *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_entries : int;
  store_hits : int;  (** memory misses answered by the persistent store *)
  corpus_hits : int;  (** requests answered by the mmap corpus snapshot *)
}

(** Which amortization tier settled a tile reply - the observability
    marker behind the warm-start acceptance check ("after [precompute],
    every small query answers [store], never [fresh]").  [None] on lines
    from servers predating the marker; the codec treats the field as
    optional in both directions, so old-format lines still round-trip. *)
type source =
  | Memory  (** in-process LRU hit *)
  | Corpus  (** mmap-backed precomputed corpus hit *)
  | Store  (** persistent certificate store hit *)
  | Fresh  (** a tiling search ran for this batch *)

type response =
  | Slot_r of { slot : int; num_slots : int; source : source option }
  | Schedule_r of { schedule : Core.Schedule.t; source : source option }
  | Tiling_r of {
      tiling : Tiling.Single.t;
      certificate : Core.Certificate.t;
      source : source option;
    }
  | Tiling_raw_r of { tiling_fields : string; source : source option }
      (** Encode-only fast path: [tiling_fields] is the ['|']-separated
          field fragment of a stored tiling line, sliced from the corpus
          snapshot and spliced verbatim into the response line - zero
          deserialization between mmap and socket.  On the wire it is
          indistinguishable from {!Tiling_r}, and {!response_of_string}
          always decodes to {!Tiling_r}. *)
  | Stats_r of server_stats
  | No_tiling of source option
      (** The search space is exhausted: no tiling, no schedule. *)
  | Overloaded  (** Admission control refused the request; retry later. *)
  | Deadline_exceeded  (** The search hit its deadline; result unknown. *)
  | Shutting_down
  | Error_r of string

val source_to_string : source -> string
(** [memory], [corpus], [store] or [fresh] - the wire values of the
    [src] field. *)

val source_of_response : response -> source option
(** The marker of a tile reply; [None] for control/refusal replies. *)

val request_to_string : ?id:int -> request -> string
val request_of_string : string -> (int option * request, string) result

val response_to_string : ?id:int -> response -> string

val response_of_string : string -> (int option * response, string) result
(** [Tiling_r] rebuilds its certificate with {!Core.Certificate.build},
    so a decoded certificate is trustworthy iff the tiling validates. *)

val tiling_fragment : Tiling.Single.t -> string
(** The ['|']-separated field fragment of a tiling
    ([prototile=...|basis=...|offsets=...]) — the exact byte shape the
    corpus snapshot stores and {!Tiling_raw_r} splices, shared with the
    binary codec ({!Wire}). *)

val tiling_of_fragment : string -> (Tiling.Single.t, string) result
(** Decode a {!tiling_fragment}, revalidating the tiling. *)

val pp_server_stats : Format.formatter -> server_stats -> unit
