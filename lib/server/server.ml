(* Library root: the engine's API lives directly on [Server] (so
   [Server.create] / [Server.handle] / [Server.handle_batch] serve the
   in-process use case), with the building blocks exposed as
   submodules. *)

module Cache = Cache
module Protocol = Protocol
module Wire = Wire
module Engine = Engine
module Frontend = Frontend
module Loadgen = Loadgen
include Engine
