(** Library root: the schedule-serving daemon.

    The engine's API lives directly on [Server] ({!create} / {!handle} /
    {!handle_batch} serve the in-process use case - see {!Engine} for
    the batching, coalescing, and backpressure semantics), with the
    building blocks exposed as submodules. *)

module Cache = Cache
module Protocol = Protocol
module Wire = Wire
module Engine = Engine
module Frontend = Frontend
module Loadgen = Loadgen

include module type of struct
  include Engine
end
