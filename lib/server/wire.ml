module Codec = Core.Codec
open Lattice

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* 0xd3 deliberately collides with nothing the text protocol can open
   with: text lines start with the record header "tilesched/v1;..."
   ('t' = 0x74), so the first byte of a fresh connection is the whole
   handshake. *)
let magic0 = '\xd3'
let magic1 = '\x54'
let version = 1
let header_size = 12
let trailer_size = 4
let max_payload = 1 lsl 24

let is_binary c = Char.equal c magic0

(* Request opcodes. *)
let op_slot = 0x01
let op_schedule = 0x02
let op_tile_search = 0x03
let op_stats = 0x04
let op_shutdown = 0x05

(* Response opcodes (request opcode | 0x80 where a pairing exists). *)
let op_slot_r = 0x81
let op_schedule_r = 0x82
let op_tiling_r = 0x83
let op_stats_r = 0x84
let op_no_tiling = 0x85
let op_overloaded = 0x86
let op_deadline = 0x87
let op_shutting_down = 0x88
let op_error_r = 0x89

(* ---------- crc32 (IEEE 802.3, table-driven, incremental) ----------

   The trailer must cover spliced frames whose payload lives in the
   corpus mmap, so the accumulator works over both strings and
   bigstrings without assembling the frame first. *)

(* The accumulator crosses the interface as [int32] but the hot loops
   run on the native [int] representation: per-byte [Int32] arithmetic
   boxes every intermediate, which is most of the protocol's CPU cost
   at six-figure frame rates. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1)
                else !c lsr 1
         done;
         !c))

let crc_init = Int32.minus_one

let crc_in crc = Int32.to_int crc land 0xFFFFFFFF
let crc_out c = Int32.of_int c

let crc_string crc s pos len =
  let t = Lazy.force crc_table in
  let c = ref (crc_in crc) in
  for i = pos to pos + len - 1 do
    c :=
      (!c lsr 8)
      lxor Array.unsafe_get t
             ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
  done;
  crc_out !c

let crc_bigstring crc (b : bigstring) pos len =
  let t = Lazy.force crc_table in
  let c = ref (crc_in crc) in
  for i = pos to pos + len - 1 do
    c :=
      (!c lsr 8)
      lxor Array.unsafe_get t
             ((!c lxor Char.code (Bigarray.Array1.unsafe_get b i)) land 0xff)
  done;
  crc_out !c

let crc_emit crc =
  let b = Bytes.create trailer_size in
  Bytes.set_int32_le b 0 (Int32.lognot crc);
  Bytes.unsafe_to_string b

(* ---------- source marker ---------- *)

let src_byte = function
  | None -> '\000'
  | Some Protocol.Memory -> '\001'
  | Some Protocol.Corpus -> '\002'
  | Some Protocol.Store -> '\003'
  | Some Protocol.Fresh -> '\004'

let src_of_byte = function
  | '\000' -> Ok None
  | '\001' -> Ok (Some Protocol.Memory)
  | '\002' -> Ok (Some Protocol.Corpus)
  | '\003' -> Ok (Some Protocol.Store)
  | '\004' -> Ok (Some Protocol.Fresh)
  | c -> Error (Printf.sprintf "unknown source byte 0x%02x" (Char.code c))

(* ---------- framing ---------- *)

let no_id = 0xFFFFFFFF

let frame_prefix ?id ~opcode ~payload_len () =
  if payload_len < 0 || payload_len > max_payload then
    invalid_arg "Wire.frame_prefix: payload length";
  let idv =
    match id with
    | None -> no_id
    | Some i when i >= 0 && i < no_id -> i
    | Some _ -> invalid_arg "Wire.frame_prefix: id out of u32 range"
  in
  let b = Bytes.create header_size in
  Bytes.set b 0 magic0;
  Bytes.set b 1 magic1;
  Bytes.set b 2 (Char.chr version);
  Bytes.set b 3 (Char.chr opcode);
  Bytes.set_int32_le b 4 (Int32.of_int idv);
  Bytes.set_int32_le b 8 (Int32.of_int payload_len);
  Bytes.unsafe_to_string b

let finish_frame ?id ~opcode payload =
  let plen = String.length payload in
  let prefix = frame_prefix ?id ~opcode ~payload_len:plen () in
  let crc = crc_string (crc_string crc_init prefix 0 header_size) payload 0 plen in
  String.concat "" [ prefix; payload; crc_emit crc ]

type need = Need_more | Total of int | Bad_frame of string

let frame_total buf ~off ~avail =
  if avail < header_size then Need_more
  else if Bytes.get buf off <> magic0 || Bytes.get buf (off + 1) <> magic1
  then Bad_frame "bad magic"
  else if Char.code (Bytes.get buf (off + 2)) <> version then
    Bad_frame
      (Printf.sprintf "unsupported version %d" (Char.code (Bytes.get buf (off + 2))))
  else
    let plen = Int32.to_int (Bytes.get_int32_le buf (off + 8)) land no_id in
    if plen > max_payload then
      Bad_frame (Printf.sprintf "payload length %d exceeds cap" plen)
    else Total (header_size + plen + trailer_size)

(* Header peeks for complete frames whose shape [frame_total] already
   vetted - the frontend's pre-decode fast route reads these straight
   off the frame bytes. *)

let frame_opcode s = Char.code s.[3]

let frame_id s =
  let idv = Int32.to_int (String.get_int32_le s 4) land no_id in
  if idv = no_id then None else Some idv

let frame_crc_ok s =
  let n = String.length s in
  n >= header_size + trailer_size
  && String.get_int32_le s (n - trailer_size)
     = Int32.lognot (crc_string crc_init s 0 (n - trailer_size))

(* ---------- payload writers ---------- *)

let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let put_vec buf v =
  let coords = Zgeom.Vec.to_list v in
  let dim = List.length coords in
  if dim > 0xff then invalid_arg "Wire: vector dimension out of range";
  Buffer.add_uint8 buf dim;
  List.iter (put_i64 buf) coords

let put_tile buf tile =
  let cells = Prototile.cells tile in
  let dim = match cells with [] -> 0 | v :: _ -> Zgeom.Vec.dim v in
  let n = List.length cells in
  if dim > 0xff then invalid_arg "Wire: tile dimension out of range";
  if n > 0xffff then invalid_arg "Wire: tile cell count out of range";
  Buffer.add_uint8 buf dim;
  Buffer.add_uint16_le buf n;
  List.iter
    (fun v -> List.iter (put_i64 buf) (Zgeom.Vec.to_list v))
    cells

let put_src buf source = Buffer.add_char buf (src_byte source)

let encode_request ?id req =
  let buf = Buffer.create 64 in
  let opcode =
    match (req : Protocol.request) with
    | Slot { tile; pos } ->
        put_tile buf tile;
        put_vec buf pos;
        op_slot
    | Schedule tile ->
        put_tile buf tile;
        op_schedule
    | Tile_search tile ->
        put_tile buf tile;
        op_tile_search
    | Stats -> op_stats
    | Shutdown -> op_shutdown
  in
  finish_frame ?id ~opcode (Buffer.contents buf)

let encode_response ?id resp =
  let buf = Buffer.create 64 in
  let opcode =
    match (resp : Protocol.response) with
    | Slot_r { slot; num_slots; source } ->
        put_src buf source;
        put_i64 buf slot;
        put_i64 buf num_slots;
        op_slot_r
    | Schedule_r { schedule; source } ->
        put_src buf source;
        Buffer.add_string buf (Codec.schedule_to_string schedule);
        op_schedule_r
    | Tiling_r { tiling; certificate = _; source } ->
        put_src buf source;
        Buffer.add_string buf (Protocol.tiling_fragment tiling);
        op_tiling_r
    | Tiling_raw_r { tiling_fields; source } ->
        put_src buf source;
        Buffer.add_string buf tiling_fields;
        op_tiling_r
    | Stats_r s ->
        List.iter (put_i64 buf)
          [ s.served; s.overloaded; s.errors; s.searches; s.coalesced;
            s.timeouts; s.cache_hits; s.cache_misses; s.cache_evictions;
            s.cache_entries; s.store_hits; s.corpus_hits ];
        op_stats_r
    | No_tiling source ->
        put_src buf source;
        op_no_tiling
    | Overloaded -> op_overloaded
    | Deadline_exceeded -> op_deadline
    | Shutting_down -> op_shutting_down
    | Error_r msg ->
        Buffer.add_string buf msg;
        op_error_r
  in
  finish_frame ?id ~opcode (Buffer.contents buf)

(* ---------- payload readers ---------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cursor = { s : string; mutable pos : int; limit : int }

let need cur n = if cur.pos + n > cur.limit then bad "truncated payload"

let get_u8 cur =
  need cur 1;
  let v = Char.code cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_u16 cur =
  need cur 2;
  let v = String.get_uint16_le cur.s cur.pos in
  cur.pos <- cur.pos + 2;
  v

let get_i64 cur =
  need cur 8;
  let v = Int64.to_int (String.get_int64_le cur.s cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_rest cur =
  let v = String.sub cur.s cur.pos (cur.limit - cur.pos) in
  cur.pos <- cur.limit;
  v

(* Explicit recursion: the coordinate stream must be consumed
   left-to-right (List.init evaluation order is unspecified). *)
let rec get_i64s cur k acc =
  if k = 0 then List.rev acc else get_i64s cur (k - 1) (get_i64 cur :: acc)

let get_vec cur =
  let dim = get_u8 cur in
  if dim = 0 then bad "zero-dimensional vector";
  Zgeom.Vec.of_list (get_i64s cur dim [])

let get_tile cur =
  let dim = get_u8 cur in
  let n = get_u16 cur in
  if dim = 0 || n = 0 then bad "empty tile";
  let rec cells k acc =
    if k = 0 then List.rev acc
    else cells (k - 1) (Zgeom.Vec.of_list (get_i64s cur dim []) :: acc)
  in
  match Prototile.of_cells (cells n []) with
  | p -> p
  | exception _ -> bad "invalid tile (empty, mixed dims, or origin missing)"

let get_src cur =
  need cur 1;
  let c = cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  match src_of_byte c with Ok s -> s | Error e -> bad "%s" e

let ensure_done cur =
  if cur.pos <> cur.limit then bad "trailing bytes in payload"

(* ---------- frame decode ---------- *)

let decode_frame s =
  let len = String.length s in
  if len < header_size + trailer_size then bad "frame shorter than header";
  if s.[0] <> magic0 || s.[1] <> magic1 then bad "bad magic";
  if Char.code s.[2] <> version then
    bad "unsupported version %d" (Char.code s.[2]);
  let opcode = Char.code s.[3] in
  let idv = Int32.to_int (String.get_int32_le s 4) land no_id in
  let plen = Int32.to_int (String.get_int32_le s 8) land no_id in
  if len <> header_size + plen + trailer_size then
    bad "frame length %d disagrees with payload length %d" len plen;
  let stored = String.get_int32_le s (header_size + plen) in
  let computed = Int32.lognot (crc_string crc_init s 0 (header_size + plen)) in
  if stored <> computed then bad "crc mismatch";
  let id = if idv = no_id then None else Some idv in
  (opcode, id, { s; pos = header_size; limit = header_size + plen })

let decode_request s =
  match
    let opcode, id, cur = decode_frame s in
    let req =
      match opcode with
      | 0x01 ->
          let tile = get_tile cur in
          let pos = get_vec cur in
          Protocol.Slot { tile; pos }
      | 0x02 -> Protocol.Schedule (get_tile cur)
      | 0x03 -> Protocol.Tile_search (get_tile cur)
      | 0x04 -> Protocol.Stats
      | 0x05 -> Protocol.Shutdown
      | op when op land 0x80 <> 0 -> bad "response opcode 0x%02x in request" op
      | op -> bad "unknown request opcode 0x%02x" op
    in
    ensure_done cur;
    (id, req)
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception e -> Error (Printexc.to_string e)

let decode_response s =
  match
    let opcode, id, cur = decode_frame s in
    let resp =
      match opcode with
      | 0x81 ->
          let source = get_src cur in
          let slot = get_i64 cur in
          let num_slots = get_i64 cur in
          if num_slots < 1 || slot < 0 || slot >= num_slots then
            bad "slot out of range"
          else Protocol.Slot_r { slot; num_slots; source }
      | 0x82 -> (
          let source = get_src cur in
          match Codec.schedule_of_string (get_rest cur) with
          | Ok schedule -> Protocol.Schedule_r { schedule; source }
          | Error e -> bad "%s" e)
      | 0x83 ->
          (* Structural decode only: the fragment rides through verbatim
             and [Protocol.tiling_of_fragment] revalidates on demand.
             Eager validation here would spend a certificate build per
             reply and erase the wire format's latency advantage. *)
          let source = get_src cur in
          Protocol.Tiling_raw_r { tiling_fields = get_rest cur; source }
      | 0x84 ->
          let g () = get_i64 cur in
          let served = g () in
          let overloaded = g () in
          let errors = g () in
          let searches = g () in
          let coalesced = g () in
          let timeouts = g () in
          let cache_hits = g () in
          let cache_misses = g () in
          let cache_evictions = g () in
          let cache_entries = g () in
          let store_hits = g () in
          let corpus_hits = g () in
          Protocol.Stats_r
            { served; overloaded; errors; searches; coalesced; timeouts;
              cache_hits; cache_misses; cache_evictions; cache_entries;
              store_hits; corpus_hits }
      | 0x85 -> Protocol.No_tiling (get_src cur)
      | 0x86 -> Protocol.Overloaded
      | 0x87 -> Protocol.Deadline_exceeded
      | 0x88 -> Protocol.Shutting_down
      | 0x89 -> Protocol.Error_r (get_rest cur)
      | op when op land 0x80 = 0 -> bad "request opcode 0x%02x in response" op
      | op -> bad "unknown response opcode 0x%02x" op
    in
    ensure_done cur;
    (id, resp)
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception e -> Error (Printexc.to_string e)
