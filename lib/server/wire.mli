(** Versioned length-prefixed binary framing for {!Protocol} messages.

    Frame layout (all multi-byte integers little-endian):

    {v
      offset  size  field
      0       2     magic 0xd3 0x54
      2       1     version (currently 1)
      3       1     opcode
      4       4     request id (u32; 0xffffffff = no id)
      8       4     payload length (u32, <= max_payload)
      12      n     payload (opcode-specific)
      12+n    4     CRC32 (IEEE) over header + payload
    v}

    The first magic byte (0xd3) can never open a text-protocol line
    (those start with the record header, ['t']), so the first byte of a
    connection is the whole protocol handshake.

    Scalars ride as i64; tiles as [u8 dim, u16 ncells, ncells*dim i64
    coords]; vectors as [u8 dim, dim i64 coords]; the reply [src]
    provenance marker as one byte (0 none, 1 memory, 2 corpus, 3 store,
    4 fresh).  Tiling replies carry the same ['|']-separated field
    fragment the text protocol splices from the corpus mmap, which is
    what makes the zero-copy path possible: header and payload need not
    be contiguous, so the CRC accumulator works over both strings and
    mmap-backed bigstrings.

    Like the text codec, the decoders are total: any malformed,
    truncated or mutated frame yields [Error _], never an exception. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val magic0 : char
(** First byte of every binary frame — the handshake sniff byte. *)

val is_binary : char -> bool
(** [is_binary c] is true iff a connection opening with byte [c] speaks
    the binary protocol. *)

val version : int

val header_size : int
(** 12: magic + version + opcode + id + payload length. *)

val trailer_size : int
(** 4: the CRC32. *)

val max_payload : int
(** Upper bound on the payload-length field; a frame claiming more is
    rejected before any allocation. *)

(** {2 Whole-frame codec} *)

val encode_request : ?id:int -> Protocol.request -> string

val encode_response : ?id:int -> Protocol.response -> string
(** [Tiling_raw_r] and [Tiling_r] share one opcode and are
    indistinguishable on the wire (mirroring the text codec). *)

val decode_request : string -> (int option * Protocol.request, string) result

val decode_response : string -> (int option * Protocol.response, string) result
(** Tiling replies decode structurally to [Tiling_raw_r]: framing,
    CRC and field shape are checked, but the tiling fragment rides
    through verbatim.  Callers that need the validated tiling and its
    certificate pass the fragment to {!Protocol.tiling_of_fragment}
    (plus {!Core.Certificate.build}) - deferring that work is what
    keeps a binary reply O(payload bytes) to consume, unlike the text
    codec's always-validating {!Protocol.response_of_string}. *)

(** {2 Streaming} *)

type need =
  | Need_more  (** fewer than {!header_size} bytes buffered *)
  | Total of int  (** full frame length, trailer included *)
  | Bad_frame of string  (** bad magic/version or absurd length *)

val frame_total : bytes -> off:int -> avail:int -> need
(** Inspect a buffered frame head without copying: how many bytes the
    frame at [off] occupies once complete. *)

(** {2 Header peeks}

    For complete frames already sized by {!frame_total}; the frontend's
    pre-decode fast route reads these straight off the frame bytes. *)

val op_tile_search : int
(** The tile-search request opcode. *)

val frame_opcode : string -> int

val frame_id : string -> int option

val frame_crc_ok : string -> bool
(** Whether the frame's CRC trailer matches its header + payload. *)

(** {2 Zero-copy framing}

    A spliced reply is sent as [prefix ^ src ^ mmap-slice ^ crc] via
    iovecs; these are the pieces. *)

val frame_prefix : ?id:int -> opcode:int -> payload_len:int -> unit -> string
(** The {!header_size}-byte frame header. *)

val op_tiling_r : int
(** The tiling-reply opcode, for building spliced frames. *)

val src_byte : Protocol.source option -> char

val crc_init : int32
val crc_string : int32 -> string -> int -> int -> int32
val crc_bigstring : int32 -> bigstring -> int -> int -> int32

val crc_emit : int32 -> string
(** Finalize the accumulator into the 4-byte LE trailer. *)
