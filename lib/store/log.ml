open Lattice

type entry =
  | Found of { tiling : Tiling.Single.t; certificate : Core.Certificate.t }
  | No_tiling

type recovery = {
  live : int;
  records : int;
  dropped : int;
  truncated_bytes : int;
}

type t = {
  path : string;
  table : (string, entry) Hashtbl.t;
  mutable out : out_channel option;  (* None once closed *)
  mutable frames : int;  (* CRC-valid frames in the file, live or not *)
  mutable compactions : int;
  auto_compact_ratio : float;
  recovery : recovery;
}

let magic = "TSTORE1\n"
let magic_len = String.length magic

(* A payload is a handful of text lines; anything bigger than this is a
   corrupt length field, not a record. *)
let max_payload = 1 lsl 24

(* ---------- CRC-32 (IEEE 802.3, reflected) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- payload codec ---------- *)

let key_of_prototile p =
  Core.Codec.vecs_to_string (Prototile.cells (Symmetry.canonical p))

let encode_payload key entry =
  match entry with
  | No_tiling -> Core.Codec.encode_record ~kind:"store" [ ("key", key); ("status", "no-tiling") ]
  | Found { tiling; certificate } ->
    String.concat "\n"
      [ Core.Codec.encode_record ~kind:"store" [ ("key", key); ("status", "found") ];
        Core.Codec.tiling_to_string tiling; Core.Certificate.to_string certificate ]

(* Semantic validation of a CRC-valid payload.  Nothing read from disk
   is trusted: the tiling is revalidated by [Codec.tiling_of_string]
   (which goes through [Single.make]), the certificate is re-proved by
   [Certificate.check], and the record key must be the canonical key of
   the stored tiling - which also forces the stored orientation to be
   the canonical one the server's transport step assumes. *)
let decode_payload payload =
  let ( let* ) = Result.bind in
  match String.split_on_char '\n' payload with
  | [] -> Error "empty payload"
  | header :: rest -> (
    let* kvs = Core.Codec.decode_record ~kind:"store" header in
    let* key = Core.Codec.field kvs "key" in
    let* status = Core.Codec.field kvs "status" in
    if key = "" then Error "empty key"
    else
      match (status, rest) with
      | "no-tiling", [] -> Ok (key, No_tiling)
      | "found", [ tiling_line; c1; c2; c3 ] ->
        let* tiling = Core.Codec.tiling_of_string tiling_line in
        let* certificate = Core.Certificate.of_string (String.concat "\n" [ c1; c2; c3 ]) in
        let proto = Tiling.Single.prototile tiling in
        if not (Prototile.equal proto certificate.Core.Certificate.prototile) then
          Error "certificate prototile differs from tiling prototile"
        else if Core.Codec.vecs_to_string (Prototile.cells proto) <> key
                || key_of_prototile proto <> key then
          Error "key is not the canonical key of the stored tiling"
        else (
          match Core.Certificate.check certificate with
          | Ok () -> Ok (key, Found { tiling; certificate })
          | Error f ->
            Error (Format.asprintf "certificate rejected: %a" Core.Certificate.pp_failure f))
      | _ -> Error "malformed store payload")

(* ---------- framing ---------- *)

let output_frame oc payload =
  let header = Bytes.create 9 in
  Bytes.set header 0 'R';
  Bytes.set_int32_le header 1 (Int32.of_int (String.length payload));
  Bytes.set_int32_le header 5 (crc32 payload);
  output_bytes oc header;
  output_string oc payload

(* Scan the raw file image for the longest valid prefix.  Returns the
   validated records in log order, the count of CRC-valid frames whose
   payload failed semantic validation, and the byte length of the valid
   prefix (everything past it is torn or corrupt and must go). *)
let scan data =
  let n = String.length data in
  if n < magic_len || String.sub data 0 magic_len <> magic then ([], 0, 0)
  else begin
    let records = ref [] in
    let dropped = ref 0 in
    let pos = ref magic_len in
    let stop = ref false in
    while not !stop do
      if !pos = n then stop := true
      else if n - !pos < 9 || data.[!pos] <> 'R' then stop := true
      else begin
        let len = Int32.to_int (String.get_int32_le data (!pos + 1)) in
        let crc = String.get_int32_le data (!pos + 5) in
        if len < 0 || len > max_payload || !pos + 9 + len > n then stop := true
        else begin
          let payload = String.sub data (!pos + 9) len in
          if crc32 payload <> crc then stop := true
          else begin
            (match decode_payload payload with
            | Ok kv -> records := kv :: !records
            | Error _ -> incr dropped);
            pos := !pos + 9 + len
          end
        end
      end
    done;
    (List.rev !records, !dropped, !pos)
  end

(* ---------- lifecycle ---------- *)

let append_channel path =
  open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path

let live_sorted table =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let channel t op =
  match t.out with None -> invalid_arg ("Store." ^ op ^ ": store is closed") | Some oc -> oc

let compact t =
  let oc = channel t "compact" in
  flush oc;
  close_out oc;
  t.out <- None;
  let tmp = t.path ^ ".compact" in
  let snap = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr snap)
    (fun () ->
      output_string snap magic;
      List.iter
        (fun (key, entry) -> output_frame snap (encode_payload key entry))
        (live_sorted t.table);
      flush snap;
      try Unix.fsync (Unix.descr_of_out_channel snap) with Unix.Unix_error _ -> ());
  Sys.rename tmp t.path;
  t.out <- Some (append_channel t.path);
  t.frames <- Hashtbl.length t.table;
  t.compactions <- t.compactions + 1

let should_compact t =
  let dead = t.frames - Hashtbl.length t.table in
  t.auto_compact_ratio < infinity
  && dead >= 16
  && float_of_int dead > t.auto_compact_ratio *. float_of_int (max 1 (Hashtbl.length t.table))

let open_ ?(auto_compact_ratio = 1.0) path =
  let data =
    if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all else ""
  in
  let records, dropped, valid_len = scan data in
  let table = Hashtbl.create 256 in
  List.iter (fun (key, entry) -> Hashtbl.replace table key entry) records;
  (* Repair the file before the first append: cut the invalid tail, or
     rewrite the magic if even the header is gone. *)
  if valid_len < magic_len then
    Out_channel.with_open_gen
      [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
      0o644 path
      (fun oc -> output_string oc magic)
  else if valid_len < String.length data then Unix.truncate path valid_len;
  let t =
    {
      path;
      table;
      out = Some (append_channel path);
      frames = List.length records + dropped;
      compactions = 0;
      auto_compact_ratio;
      recovery =
        {
          live = Hashtbl.length table;
          records = List.length records;
          dropped;
          truncated_bytes = max 0 (String.length data - valid_len);
        };
    }
  in
  if should_compact t then compact t;
  t

let path t = t.path
let recovery t = t.recovery
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key
let find t key = Hashtbl.find_opt t.table key
let compactions t = t.compactions

let fold t ~init ~f =
  List.fold_left (fun acc (key, entry) -> f acc key entry) init (live_sorted t.table)

let put t key entry =
  let oc = channel t "put" in
  (match entry with
  | No_tiling -> if key = "" then invalid_arg "Store.put: empty key"
  | Found { tiling; certificate } ->
    let proto = Tiling.Single.prototile tiling in
    if not (Prototile.equal proto certificate.Core.Certificate.prototile) then
      invalid_arg "Store.put: certificate prototile differs from tiling prototile";
    if Core.Codec.vecs_to_string (Prototile.cells proto) <> key || key_of_prototile proto <> key
    then invalid_arg "Store.put: key is not the canonical key of the tiling");
  output_frame oc (encode_payload key entry);
  flush oc;
  Hashtbl.replace t.table key entry;
  t.frames <- t.frames + 1;
  if should_compact t then compact t

let close t =
  match t.out with
  | None -> ()
  | Some oc ->
    flush oc;
    close_out oc;
    t.out <- None
