(** Crash-safe persistent certificate store.

    The schedule server's memory cache dies with the process; this store
    makes proven search results durable, so a restarted daemon answers
    every previously-settled query without re-paying the exponential
    tiling search.  It is a write-ahead log of records

    {v canonical key -> Found (tiling + certificate) | No_tiling v}

    keyed by the tile's congruence class ({!Lattice.Symmetry.canonical},
    the same key the server's LRU uses), because both outcomes are
    cacheable {e forever}: a tiling-derived schedule carries a
    machine-checkable {!Core.Certificate}, and [No_tiling] records a
    completed proof of exhaustion of the bounded search.

    {2 On-disk format}

    A log is the 8-byte magic ["TSTORE1\n"] followed by framed records:

    {v
    'R' | payload length (u32 LE) | CRC32 of payload (u32 LE) | payload
    v}

    The payload is text in the {!Core.Codec} dialect: a
    [tilesched/v1;kind=store] header line carrying [key] and [status]
    fields, then - for [status=found] - the tiling line
    ({!Core.Codec.tiling_to_string}) and the three certificate lines
    ({!Core.Certificate.to_string}).  Later records supersede earlier
    ones with the same key (write-ahead semantics).

    {2 Recovery invariant}

    [open_] never fails on a damaged log and never trusts damaged data:
    it scans frames from the start and keeps the {e longest valid
    prefix}.  The first framing violation - bad magic, torn header,
    impossible length, CRC mismatch - ends the scan and the file is
    truncated there, so a crash mid-append (or [kill -9], or a torn
    sector) costs at most the tail records.  A frame whose CRC matches
    but whose payload fails semantic validation (undecodable, key
    mismatch, or a certificate rejected by {!Core.Certificate.check}) is
    {e dropped and counted}, never served - the store re-proves every
    certificate before believing the disk.

    After recovery the whole live set is held in memory (the log is an
    index-free append file); [find] is a hash lookup and never touches
    the disk.

    {2 Compaction}

    Superseded records accumulate as garbage.  When the dead-record
    count crosses a threshold ([auto_compact_ratio] of the live count),
    the store snapshots: the live set is rewritten, sorted by key, to a
    temp file that is fsynced and atomically renamed over the log.
    [compact] forces a snapshot.

    Not thread-safe; the server serializes access (as it does for the
    memory cache). *)

type t

type entry =
  | Found of {
      tiling : Tiling.Single.t;  (** canonical orientation *)
      certificate : Core.Certificate.t;
    }
  | No_tiling  (** the bounded search proved exhaustion *)

type recovery = {
  live : int;  (** distinct keys after recovery *)
  records : int;  (** frames that passed CRC and validation *)
  dropped : int;  (** CRC-valid frames dropped by semantic validation *)
  truncated_bytes : int;  (** bytes cut from the corrupt/torn tail *)
}

val open_ : ?auto_compact_ratio:float -> string -> t
(** Open or create the log at [path], recovering as described above.
    [auto_compact_ratio] (default [1.0]) triggers a snapshot when
    [dead > ratio * max 1 live] and [dead >= 16]; [infinity] disables
    auto-compaction.  Raises [Sys_error] only for genuine I/O failure
    (permissions, missing directory), never for corrupt contents. *)

val path : t -> string
val recovery : t -> recovery

val length : t -> int
(** Live entries. *)

val mem : t -> string -> bool
val find : t -> string -> entry option

val put : t -> string -> entry -> unit
(** Append a record and update the live set; the frame is flushed to the
    OS before returning.  A [Found] entry must hold a tiling for the
    canonical orientation whose key is [key] - enforced with
    [Invalid_argument], since a mismatched record would be dropped at
    the next recovery anyway. *)

val fold : t -> init:'b -> f:('b -> string -> entry -> 'b) -> 'b
(** Over the live set in ascending key order (deterministic). *)

val compact : t -> unit
(** Force a snapshot now. *)

val compactions : t -> int
(** Snapshots taken since [open_] (including automatic ones). *)

val close : t -> unit
(** Flush and close; further [put]/[compact] raise [Invalid_argument].
    Idempotent. *)

val key_of_prototile : Lattice.Prototile.t -> string
(** The store (and server cache) key: the canonical form's cell list,
    encoded with {!Core.Codec.vecs_to_string}. *)

val crc32 : string -> int32
(** CRC-32 (IEEE, reflected) of a string; exposed for tests. *)
