open Lattice

type report = {
  max_area : int;
  classes : int;
  skipped : int;
  found : int;
  no_tiling : int;
}

let tiles_up_to n = List.concat_map Polyomino.enumerate_free (List.init n (fun i -> i + 1))

let run ?pool ?torus_factors ~store ~max_area () =
  if max_area < 1 then invalid_arg "Precompute.run: max_area must be >= 1";
  let pool = match pool with Some p -> p | None -> Parallel.default () in
  let tiles = tiles_up_to max_area in
  let todo = List.filter (fun tile -> not (Log.mem store (Log.key_of_prototile tile))) tiles in
  let results =
    Parallel.map pool (fun tile -> (tile, Tiling.Search.find_tiling ?torus_factors tile)) todo
  in
  let found = ref 0 in
  let no_tiling = ref 0 in
  List.iter
    (fun (tile, result) ->
      let key = Log.key_of_prototile tile in
      match result with
      | Some tiling ->
        incr found;
        Log.put store key (Log.Found { tiling; certificate = Core.Certificate.build tiling })
      | None ->
        incr no_tiling;
        Log.put store key Log.No_tiling)
    results;
  Log.compact store;
  { max_area; classes = List.length tiles; skipped = List.length tiles - List.length todo;
    found = !found; no_tiling = !no_tiling }

let pp_report fmt r =
  Format.fprintf fmt
    "precompute: areas 1..%d, %d canonical classes (%d already stored), %d tilings found, %d \
     proven no-tiling"
    r.max_area r.classes r.skipped r.found r.no_tiling
