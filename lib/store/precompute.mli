(** Offline producer for the certificate store.

    [run] enumerates every free polyomino of area at most [max_area]
    ({!Lattice.Polyomino.enumerate_free} - canonical congruence-class
    representatives, exactly the server's cache keys), skips the classes
    the store has already settled, fans the remaining tiling searches
    out over the {!Parallel} pool (results assembled in enumeration
    order, so the resulting log is byte-deterministic at every pool
    size), writes each verdict through to the store, and finishes with a
    snapshot compaction.  A daemon started afterwards with the same
    store answers every area-[<= max_area] query from the store tier
    without invoking {!Tiling.Search}. *)

type report = {
  max_area : int;
  classes : int;  (** canonical classes enumerated (area [1..max_area]) *)
  skipped : int;  (** already present in the store *)
  found : int;  (** searches that produced a tiling + certificate *)
  no_tiling : int;  (** searches that proved exhaustion *)
}

val tiles_up_to : int -> Lattice.Prototile.t list
(** Canonical free polyominoes of area [1..n], in deterministic
    (area-major) order. *)

val run :
  ?pool:Parallel.pool ->
  ?torus_factors:int list ->
  (* as {!Tiling.Search.find_tiling} *)
  store:Log.t ->
  max_area:int ->
  unit ->
  report

val pp_report : Format.formatter -> report -> unit
