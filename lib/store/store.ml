(* Library root: the persistent certificate store's API lives directly
   on [Store] ([Store.open_] / [Store.find] / [Store.put]), with the
   offline producer as a submodule. *)

module Precompute = Precompute
include Log
