(** Library root: the persistent certificate store.

    The store's API lives directly on [Store] ({!open_} / {!find} /
    {!put} - see {!Log} for the full documentation of the on-disk
    format, the recovery invariant, and compaction), with the offline
    producer exposed as {!Precompute}. *)

module Precompute = Precompute

include module type of struct
  include Log
end
