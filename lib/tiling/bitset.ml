type t = { n : int; w : int array }

let bpw = Sys.int_size

let nwords n = if n = 0 then 0 else ((n - 1) / bpw) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative width";
  { n; w = Array.make (nwords n) 0 }

(* Mask of the bits the last word actually uses; keeping the unused top
   bits zero is the representation invariant everything else relies on. *)
let last_mask n = match n mod bpw with 0 -> -1 | r -> (1 lsl r) - 1

let full n =
  let t = create n in
  let k = Array.length t.w in
  if k > 0 then begin
    Array.fill t.w 0 k (-1);
    t.w.(k - 1) <- t.w.(k - 1) land last_mask n
  end;
  t

let length t = t.n

let copy t = { n = t.n; w = Array.copy t.w }

let same_width a b op = if a.n <> b.n then invalid_arg ("Bitset." ^ op ^ ": width mismatch")

let blit ~src ~dst =
  same_width src dst "blit";
  Array.blit src.w 0 dst.w 0 (Array.length src.w)

let check t i op = if i < 0 || i >= t.n then invalid_arg ("Bitset." ^ op ^ ": out of range")

let set t i =
  check t i "set";
  t.w.(i / bpw) <- t.w.(i / bpw) lor (1 lsl (i mod bpw))

let reset t i =
  check t i "reset";
  t.w.(i / bpw) <- t.w.(i / bpw) land lnot (1 lsl (i mod bpw))

let mem t i =
  check t i "mem";
  t.w.(i / bpw) land (1 lsl (i mod bpw)) <> 0

let is_empty t =
  let k = Array.length t.w in
  let rec go i = i >= k || (t.w.(i) = 0 && go (i + 1)) in
  go 0

(* SWAR popcount.  OCaml ints are 63 bits and literals above [max_int]
   are rejected, so the top bit is counted separately and the classic
   64-bit constants are trimmed to the 62 remaining bits (bytewise sums
   stay under 128, so the multiply-extract loses no carries). *)
let popcount_word x =
  let top = x lsr 62 in
  let x = x land 0x3FFFFFFFFFFFFFFF in
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  top + ((x * 0x0101010101010101) lsr 56)

let popcount t =
  let acc = ref 0 in
  for i = 0 to Array.length t.w - 1 do
    acc := !acc + popcount_word t.w.(i)
  done;
  !acc

let equal a b =
  same_width a b "equal";
  let k = Array.length a.w in
  let rec go i = i >= k || (a.w.(i) = b.w.(i) && go (i + 1)) in
  go 0

let union a b =
  same_width a b "union";
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) lor b.w.(i)
  done

let diff a b =
  same_width a b "diff";
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) land lnot b.w.(i)
  done

let inter a b =
  same_width a b "inter";
  for i = 0 to Array.length a.w - 1 do
    a.w.(i) <- a.w.(i) land b.w.(i)
  done

let inter_into ~dst a b =
  same_width dst a "inter_into";
  same_width a b "inter_into";
  for i = 0 to Array.length a.w - 1 do
    dst.w.(i) <- a.w.(i) land b.w.(i)
  done

(* [popcount (inter a b)] without materializing the intersection. *)
let inter_popcount a b =
  same_width a b "inter_popcount";
  let acc = ref 0 in
  for i = 0 to Array.length a.w - 1 do
    acc := !acc + popcount_word (Array.unsafe_get a.w i land Array.unsafe_get b.w i)
  done;
  !acc

let subset a b =
  same_width a b "subset";
  let k = Array.length a.w in
  let rec go i = i >= k || (a.w.(i) land lnot b.w.(i) = 0 && go (i + 1)) in
  go 0

let disjoint a b =
  same_width a b "disjoint";
  let k = Array.length a.w in
  let rec go i = i >= k || (a.w.(i) land b.w.(i) = 0 && go (i + 1)) in
  go 0

let iter f t =
  for i = 0 to Array.length t.w - 1 do
    let base = i * bpw in
    let w = ref t.w.(i) in
    while !w <> 0 do
      let low = !w land - !w in
      f (base + popcount_word (low - 1));
      w := !w land (!w - 1)
    done
  done

let unsafe_words t = t.w

let of_list n elts =
  let t = create n in
  List.iter (fun i -> set t i) elts;
  t

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
