(** Fixed-width mutable bitsets over [{0, ..., n-1}], packed into an
    [int array] ([Sys.int_size] bits per word).

    This is the data layer of the [`Bitmask] exact-cover engine
    ({!Search.cover_torus}): cover masks, conflict masks and the live-
    placement set are all bitsets, so placing a tile is a handful of
    word-parallel and/or/and-not loops instead of list traversals.  All
    binary operations require both operands to have the same width and
    run in-place on the first operand - the hot path never allocates.

    Representation invariant: bits at positions [>= length] are zero in
    every well-formed value, so {!popcount}, {!equal}, {!is_empty} and
    {!iter} need no masking.  Every operation below preserves it. *)

type t

val create : int -> t
(** [create n] is the empty subset of [{0, ..., n-1}].  [n >= 0]. *)

val full : int -> t
(** [full n] is [{0, ..., n-1}] itself. *)

val length : t -> int
(** The width [n] (not the population). *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src]; same width required. *)

val set : t -> int -> unit
val reset : t -> int -> unit

val mem : t -> int -> bool

val is_empty : t -> bool
val popcount : t -> int
val equal : t -> t -> bool

val union : t -> t -> unit
(** [union a b] sets [a := a OR b]. *)

val diff : t -> t -> unit
(** [diff a b] sets [a := a AND NOT b]. *)

val inter : t -> t -> unit
(** [inter a b] sets [a := a AND b]. *)

val inter_into : dst:t -> t -> t -> unit
(** [inter_into ~dst a b] sets [dst := a AND b] without reading [dst]. *)

val inter_popcount : t -> t -> int
(** [inter_popcount a b = popcount (inter a b)] without materializing
    the intersection or mutating either operand. *)

val subset : t -> t -> bool
(** [subset a b] iff every member of [a] is in [b]. *)

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Members in ascending order (lowest-set-bit extraction, so cost is
    proportional to the population, not the width). *)

val popcount_word : int -> int
(** Population count of a single word, exposed for fused hot loops over
    {!unsafe_words}.  [popcount_word ((w land (-w)) - 1)] is the index
    of [w]'s lowest set bit within its word. *)

val unsafe_words : t -> int array
(** The backing word array - physical identity, not a copy - packed
    [Sys.int_size] bits per word, lowest indices first.  Exposed so the
    search kernels can fuse bit extraction with their own table lookups
    in closure-free loops.  Callers must preserve the representation
    invariant (bits at positions [>= length] stay zero) and must not
    grow or shrink the array; use the typed operations wherever speed
    does not demand otherwise. *)

val of_list : int -> int list -> t
(** [of_list n elts]: members from [elts] (duplicates fine), width [n]. *)

val to_list : t -> int list
(** Members ascending. *)
