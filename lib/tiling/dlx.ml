type problem = {
  universe : int;
  num_nodes : int;
  left : int array;
  right : int array;
  up : int array;
  down : int array;
  col : int array;  (* node -> column header index *)
  size : int array;  (* column header -> rows in the column *)
  row_of : int array;  (* node -> subset index, -1 for headers/root *)
  row_first : int array;  (* subset index -> its first node, -1 if empty *)
  root : int;
}

(* Layout: node 0 is the root, nodes 1..universe are column headers
   (element e has header e + 1), then one node per (subset, element). *)
let create ~universe subsets =
  assert (universe >= 0);
  let total = 1 + universe + List.fold_left (fun acc s -> acc + List.length s) 0 subsets in
  let left = Array.init total Fun.id in
  let right = Array.init total Fun.id in
  let up = Array.init total Fun.id in
  let down = Array.init total Fun.id in
  let col = Array.make total 0 in
  let size = Array.make (universe + 1) 0 in
  let row_of = Array.make total (-1) in
  let row_first = Array.make (List.length subsets) (-1) in
  let root = 0 in
  (* Circular header list root <-> 1 <-> ... <-> universe. *)
  for h = 0 to universe do
    left.(h) <- (if h = 0 then universe else h - 1);
    right.(h) <- (if h = universe then 0 else h + 1)
  done;
  let next = ref (universe + 1) in
  List.iteri
    (fun row subset ->
      let seen = Hashtbl.create 8 in
      let first = ref (-1) in
      List.iter
        (fun e ->
          if not (0 <= e && e < universe) then invalid_arg "Dlx.create: element out of range";
          if Hashtbl.mem seen e then invalid_arg "Dlx.create: duplicate element in subset";
          Hashtbl.add seen e ();
          let node = !next in
          incr next;
          row_of.(node) <- row;
          let header = e + 1 in
          col.(node) <- header;
          (* Insert at the bottom of the column (above the header). *)
          up.(node) <- up.(header);
          down.(node) <- header;
          down.(up.(header)) <- node;
          up.(header) <- node;
          size.(header) <- size.(header) + 1;
          (* Link into the row's circular list. *)
          if !first < 0 then first := node
          else begin
            left.(node) <- left.(!first);
            right.(node) <- !first;
            right.(left.(!first)) <- node;
            left.(!first) <- node
          end)
        subset;
      row_first.(row) <- !first)
    subsets;
  { universe; num_nodes = total; left; right; up; down; col; size; row_of; row_first; root }

let cover p c =
  p.right.(p.left.(c)) <- p.right.(c);
  p.left.(p.right.(c)) <- p.left.(c);
  let i = ref p.down.(c) in
  while !i <> c do
    let j = ref p.right.(!i) in
    while !j <> !i do
      p.down.(p.up.(!j)) <- p.down.(!j);
      p.up.(p.down.(!j)) <- p.up.(!j);
      p.size.(p.col.(!j)) <- p.size.(p.col.(!j)) - 1;
      j := p.right.(!j)
    done;
    i := p.down.(!i)
  done

let uncover p c =
  let i = ref p.up.(c) in
  while !i <> c do
    let j = ref p.left.(!i) in
    while !j <> !i do
      p.size.(p.col.(!j)) <- p.size.(p.col.(!j)) + 1;
      p.down.(p.up.(!j)) <- !j;
      p.up.(p.down.(!j)) <- !j;
      j := p.left.(!j)
    done;
    i := p.up.(!i)
  done;
  p.right.(p.left.(c)) <- c;
  p.left.(p.right.(c)) <- c

(* Nodes of row [r] in insertion (element) order; O(row length) via the
   first-node index recorded at construction. *)
let row_nodes p r =
  let first = if r < 0 || r >= Array.length p.row_first then -1 else p.row_first.(r) in
  if first < 0 then invalid_arg "Dlx: forced row is empty or out of range";
  let acc = ref [ first ] in
  let j = ref p.right.(first) in
  while !j <> first do
    acc := !j :: !acc;
    j := p.right.(!j)
  done;
  List.rev !acc

let solve ?(max_solutions = max_int) ?(keep = fun _ -> true) ?(forced = []) p =
  let solutions = ref [] in
  let count = ref 0 in
  let chosen = ref [] in
  (* Pre-select the forced rows exactly as Algorithm X would after
     choosing them: cover every column they touch.  The final link
     structure does not depend on the cover order, so the remaining
     search is precisely the subtree below those choices. *)
  let forced_cols =
    List.concat_map
      (fun r ->
        chosen := r :: !chosen;
        List.map (fun node -> p.col.(node)) (row_nodes p r))
      forced
  in
  List.iter (fun c -> cover p c) forced_cols;
  let rec search () =
    if !count >= max_solutions then ()
    else if p.right.(p.root) = p.root then begin
      (* Only kept solutions are recorded or counted, so a filtered
         search early-stops at [max_solutions] kept ones. *)
      let sol = List.sort Stdlib.compare !chosen in
      if keep sol then begin
        solutions := sol :: !solutions;
        incr count
      end
    end
    else begin
      (* Smallest column (Knuth's S heuristic). *)
      let c = ref p.right.(p.root) in
      let best = ref !c in
      while !c <> p.root do
        if p.size.(!c) < p.size.(!best) then best := !c;
        c := p.right.(!c)
      done;
      let c = !best in
      if p.size.(c) > 0 then begin
        cover p c;
        let r = ref p.down.(c) in
        while !r <> c && !count < max_solutions do
          chosen := p.row_of.(!r) :: !chosen;
          let j = ref p.right.(!r) in
          while !j <> !r do
            cover p p.col.(!j);
            j := p.right.(!j)
          done;
          search ();
          let j = ref p.left.(!r) in
          while !j <> !r do
            uncover p p.col.(!j);
            j := p.left.(!j)
          done;
          chosen := List.tl !chosen;
          r := p.down.(!r)
        done;
        uncover p c
      end
    end
  in
  search ();
  List.iter (fun c -> uncover p c) (List.rev forced_cols);
  List.rev !solutions

let count ?(limit = max_int) p = List.length (solve ~max_solutions:limit p)
