(** Knuth's Algorithm X with dancing links.

    Exact cover: given a universe [{0, ..., n-1}] and a family of
    subsets, find selections of pairwise-disjoint subsets whose union is
    the whole universe.  Tiling a torus by translates of prototiles is
    exactly this problem (each placement is a subset of cosets), which is
    how the paper's tilings are searched for.

    This is the classic doubly-linked-list formulation: columns are
    universe elements, rows are subsets, and covering/uncovering a column
    splices nodes out of and back into circular lists in O(1) - which
    makes backtracking cheap.  {!Search.cover_torus} uses this engine as
    a differential oracle next to its list backtracker and the default
    {!Bitset}-based kernel; tests check all three agree exactly and the
    benchmark compares them. *)

type problem

val create : universe:int -> int list list -> problem
(** [create ~universe subsets]: subsets are lists of element ids in
    [\[0, universe)]. Duplicate elements within a subset are invalid.
    Each row's first node is indexed during construction, so forcing a
    row costs O(row length), not a scan of the whole node pool. *)

val solve :
  ?max_solutions:int -> ?keep:(int list -> bool) -> ?forced:int list -> problem -> int list list
(** Solutions as lists of subset indices (in the order given to
    {!create}), each sorted ascending; at most [max_solutions] (default
    [max_int]). Deterministic order.

    [keep] (default: accept everything) filters during the search: only
    solutions it accepts are recorded or counted against
    [max_solutions], so a filtered search stops as soon as enough
    acceptable solutions have been enumerated.

    [forced] pre-selects subsets before the search starts: their columns
    are covered exactly as Algorithm X would after choosing them, so the
    result is the subtree of solutions containing all of them, in the
    order the unrestricted search would enumerate that subtree.  This is
    the splitting primitive of the parallel engine: solving one
    sub-problem per row of the root column and concatenating in row
    order reproduces the sequential enumeration.  The forced subsets
    must be pairwise disjoint and alive (not conflicting with each
    other); the structure is restored on return, so the problem stays
    reusable. *)

val count : ?limit:int -> problem -> int
(** Number of solutions, stopping at [limit] if given. *)
