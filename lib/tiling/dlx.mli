(** Knuth's Algorithm X with dancing links.

    Exact cover: given a universe [{0, ..., n-1}] and a family of
    subsets, find selections of pairwise-disjoint subsets whose union is
    the whole universe.  Tiling a torus by translates of prototiles is
    exactly this problem (each placement is a subset of cosets), which is
    how the paper's tilings are searched for.

    This is the classic doubly-linked-list formulation: columns are
    universe elements, rows are subsets, and covering/uncovering a column
    splices nodes out of and back into circular lists in O(1) - which
    makes backtracking cheap.  {!Search.cover_torus} can run on either
    this engine or a simpler bitmap backtracker; tests check they agree
    and the benchmark compares them. *)

type problem

val create : universe:int -> int list list -> problem
(** [create ~universe subsets]: subsets are lists of element ids in
    [\[0, universe)]. Duplicate elements within a subset are invalid. *)

val solve : ?max_solutions:int -> ?forced:int list -> problem -> int list list
(** Solutions as lists of subset indices (in the order given to
    {!create}), each sorted ascending; at most [max_solutions] (default
    [max_int]). Deterministic order.

    [forced] pre-selects subsets before the search starts: their columns
    are covered exactly as Algorithm X would after choosing them, so the
    result is the subtree of solutions containing all of them, in the
    order the unrestricted search would enumerate that subtree.  This is
    the splitting primitive of the parallel engine: solving one
    sub-problem per row of the root column and concatenating in row
    order reproduces the sequential enumeration.  The forced subsets
    must be pairwise disjoint and alive (not conflicting with each
    other); the structure is restored on return, so the problem stays
    reusable. *)

val count : ?limit:int -> problem -> int
(** Number of solutions, stopping at [limit] if given. *)
