open Zgeom
open Lattice

type piece = { tile : Prototile.t; piece_offsets : Vec.t list }

type t = {
  period : Sublattice.t;
  pieces : piece list;
  (* Cover data per coset id, in three parallel arrays - piece index,
     translation offset, cell index within the piece - so the search
     engines' constructor fills them with plain int and pointer writes,
     no per-cell tuple allocation. *)
  cover_piece : int array;
  cover_off : Vec.t array;
  cover_cell : int array;
}

let make ~period pieces =
  let dim = Sublattice.dim period in
  if pieces = [] then Error "no pieces"
  else if List.exists (fun p -> p.piece_offsets = []) pieces then
    Error "a piece has an empty translation set"
  else if List.exists (fun p -> Prototile.dim p.tile <> dim) pieces then
    Error "dimension mismatch"
  else begin
    let pieces =
      List.map
        (fun p ->
          { p with
            piece_offsets =
              List.map (Sublattice.reduce period) p.piece_offsets
              |> Vec.Set.of_list |> Vec.Set.elements })
        pieces
    in
    let idx = Sublattice.index period in
    let total =
      List.fold_left
        (fun acc p -> acc + (Prototile.size p.tile * List.length p.piece_offsets))
        0 pieces
    in
    if total <> idx then
      Error (Printf.sprintf "cell count %d does not match period index %d" total idx)
    else begin
      let cover = Array.make idx None in
      let clash = ref None in
      List.iteri
        (fun k p ->
          let cells = Prototile.cells p.tile in
          List.iter
            (fun o ->
              List.iteri
                (fun ci n ->
                  if !clash = None then begin
                    let id = Sublattice.coset_id period (Vec.add o n) in
                    match cover.(id) with
                    | None -> cover.(id) <- Some (k, o, ci)
                    | Some _ ->
                      clash :=
                        Some
                          (Printf.sprintf "overlap at coset of %s"
                             (Vec.to_string (Vec.add o n)))
                  end)
                cells)
            p.piece_offsets)
        pieces;
      match !clash with
      | Some msg -> Error msg
      | None ->
        Ok
          { period;
            pieces;
            cover_piece = Array.map (fun s -> let k, _, _ = Option.get s in k) cover;
            cover_off = Array.map (fun s -> let _, o, _ = Option.get s in o) cover;
            cover_cell = Array.map (fun s -> let _, _, ci = Option.get s in ci) cover }
    end
  end

let make_exn ~period pieces =
  match make ~period pieces with
  | Ok t -> t
  | Error msg -> invalid_arg ("Tiling.Multi.make: " ^ msg)

(* The search engines' constructor: coset ids arrive precomputed, so
   exactly-once coverage is checked with array writes alone.  Offsets
   are required to be reduced already (they come from
   [Sublattice.cosets]); sorting them through [Vec.Set] keeps the
   result structurally identical to [make]'s. *)
let of_search_cover ~period pieces =
  let idx = Sublattice.index period in
  match pieces with
  | [] -> invalid_arg "Tiling.Multi.of_search_cover: no pieces"
  | (_, ((o0, _) :: _)) :: _ ->
    (* [-1] marks an uncovered slot; the sentinel offset is never read. *)
    let cover_piece = Array.make idx (-1) in
    let cover_off = Array.make idx o0 in
    let cover_cell = Array.make idx 0 in
    let filled = ref 0 in
    (* Direct recursion, not [List.iter] closures: this runs once per
       solution of an all-solutions search (EXP-P2). *)
    let rec fill_ids k o ci = function
      | [] -> true
      | id :: ids ->
        if id < 0 || id >= idx || cover_piece.(id) >= 0 then false
        else begin
          cover_piece.(id) <- k;
          cover_off.(id) <- o;
          cover_cell.(id) <- ci;
          incr filled;
          fill_ids k o (ci + 1) ids
        end
    in
    let rec fill_placements k = function
      | [] -> true
      | (o, ids) :: tl -> fill_ids k o 0 ids && fill_placements k tl
    in
    let rec fill_pieces k = function
      | [] -> true
      | (_, []) :: _ -> false
      | (_, placements) :: tl -> fill_placements k placements && fill_pieces (k + 1) tl
    in
    let ok = fill_pieces 0 pieces in
    if not (ok && !filled = idx) then
      invalid_arg "Tiling.Multi.of_search_cover: not an exact cover"
    else
      let pieces =
        List.map
          (fun (tile, placements) ->
            (* = [Vec.Set.elements (Vec.Set.of_list ...)], since
               [Vec.Set]'s order is [Vec.compare]. *)
            { tile; piece_offsets = List.sort_uniq Vec.compare (List.map fst placements) })
          pieces
      in
      { period; pieces; cover_piece; cover_off; cover_cell }
  | (_, []) :: _ -> invalid_arg "Tiling.Multi.of_search_cover: not an exact cover"

let of_single s =
  make_exn ~period:(Single.period s)
    [ { tile = Single.prototile s; piece_offsets = Single.offsets s } ]

let period t = t.period
let pieces t = t.pieces
let dim t = Sublattice.dim t.period
let prototiles t = List.map (fun p -> p.tile) t.pieces

let respectable_prototile t =
  let tiles = prototiles t in
  List.find_opt (fun n1 -> List.for_all (fun nk -> Prototile.subset nk n1) tiles) tiles

let is_respectable t = respectable_prototile t <> None

let union_cells t =
  List.fold_left
    (fun acc p -> Vec.Set.union acc (Prototile.cell_set p.tile))
    Vec.Set.empty t.pieces
  |> Vec.Set.elements

let tile_of t v =
  let id = Sublattice.coset_id t.period v in
  let k = t.cover_piece.(id) in
  let ci = t.cover_cell.(id) in
  let p = List.nth t.pieces k in
  let n = List.nth (Prototile.cells p.tile) ci in
  (k, Vec.sub v n, n)

let iter_window dim radius f =
  let rec go i prefix =
    if i = dim then f (Vec.of_list (List.rev prefix))
    else
      for x = -radius to radius do
        go (i + 1) (x :: prefix)
      done
  in
  go 0 []

let check_window t ~radius =
  let ok = ref true in
  iter_window (dim t) radius (fun v ->
      let covers = ref 0 in
      List.iter
        (fun p ->
          let offs = Vec.Set.of_list p.piece_offsets in
          List.iter
            (fun n ->
              if Vec.Set.mem (Sublattice.reduce t.period (Vec.sub v n)) offs then incr covers)
            (Prototile.cells p.tile))
        t.pieces;
      if !covers <> 1 then ok := false);
  !ok

let pp fmt t =
  Format.fprintf fmt "@[<v>multi-tiling: %d piece(s), period index %d%s@]"
    (List.length t.pieces) (Sublattice.index t.period)
    (if is_respectable t then " (respectable)" else " (non-respectable)")
