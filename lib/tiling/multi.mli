(** Tilings with several prototiles (Section 4 of the paper).

    [T_1, ..., T_n] tile [Z^d] with prototiles [N_1, ..., N_n] when every
    lattice point is covered by exactly one translate [t_k + N_k]
    (conditions GT1 and GT2).  As in {!Single}, we represent the periodic
    case - each [T_k] is a union of cosets of one shared period sublattice
    - and validate exactly on the quotient, so a value of type {!t} is
    always a valid generalized tiling.

    A tiling is {e respectable} when one prototile contains all others;
    Theorem 2 gives an optimal [|N_1|]-slot schedule exactly in that case
    (and Figure 5 shows optimality genuinely fails without it). *)

type t

type piece = { tile : Lattice.Prototile.t; piece_offsets : Zgeom.Vec.t list }

val make : period:Lattice.Sublattice.t -> piece list -> (t, string) result
(** Validates GT1/GT2 on the quotient. Pieces with no offsets are
    rejected (the paper requires the [T_k] non-empty). *)

val make_exn : period:Lattice.Sublattice.t -> piece list -> t

val of_search_cover :
  period:Lattice.Sublattice.t ->
  (Lattice.Prototile.t * (Zgeom.Vec.t * int list) list) list ->
  t
(** Fast-path constructor for the exact-cover engines of {!Search}: each
    prototile comes with its placements as [(offset, coset ids)] pairs,
    the ids being [Sublattice.coset_id period (offset + cell)] in
    [Prototile.cells] order - which the search has already computed, so
    no lattice arithmetic is redone here.  Exactly-once coverage is
    still verified, with O(index) array writes; raises
    [Invalid_argument] if the placements are not an exact cover, if ids
    are out of range, or if no prototile has a placement.  Offsets must
    be reduced representatives ({!Lattice.Sublattice.reduce} fixpoints,
    e.g. drawn from {!Lattice.Sublattice.cosets}); prototiles without
    placements must be omitted.  The result is structurally identical to
    what {!make} returns for the same data. *)

val of_single : Single.t -> t

val period : t -> Lattice.Sublattice.t
val pieces : t -> piece list
val dim : t -> int

val prototiles : t -> Lattice.Prototile.t list

val respectable_prototile : t -> Lattice.Prototile.t option
(** The prototile containing all others, when one exists (the tiling is
    then respectable); by convention the first such piece. *)

val is_respectable : t -> bool

val union_cells : t -> Zgeom.Vec.t list
(** Cells of [N = N_1 u ... u N_n], sorted; Theorem 2's proof schedules by
    indexing into this union. *)

val tile_of : t -> Zgeom.Vec.t -> int * Zgeom.Vec.t * Zgeom.Vec.t
(** [tile_of t v = (k, s, n)]: the unique piece index [k], translation
    [s] in [T_k] and cell [n] of [N_k] with [v = s + n]. *)

val check_window : t -> radius:int -> bool
(** Brute-force re-verification of exactly-once coverage on a window. *)

val pp : Format.formatter -> t -> unit
