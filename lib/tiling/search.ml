open Zgeom
open Lattice

let lattice_tilings ?pool p =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  let d = Prototile.dim p in
  let m = Prototile.size p in
  let cells = Prototile.cells p in
  let complete_residues lam =
    let seen = Hashtbl.create m in
    List.for_all
      (fun n ->
        let id = Sublattice.coset_id lam n in
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          true
        end)
      cells
  in
  (* One task per HNF diagonal family; concatenating in diagonal order is
     exactly the sequential [all_of_index] enumeration. *)
  Parallel.concat_map pool
    (fun diag -> List.filter complete_residues (Sublattice.all_with_diagonal ~dim:d diag))
    (Sublattice.hnf_diagonals ~dim:d m)

let find_lattice_tiling p =
  match lattice_tilings p with
  | [] -> None
  | lam :: _ -> (
    match Single.lattice_tiling p lam with
    | Ok t -> Some t
    | Error _ -> assert false)

type placement = { piece : int; anchor : Vec.t; covers : int list }

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let cover_torus ~period ~prototiles ?(max_solutions = 64) ?(engine = `Backtracking) ?pool () =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  let idx = Sublattice.index period in
  let anchors = Sublattice.cosets period in
  let placements =
    List.concat
      (List.mapi
         (fun k p ->
           let cells = Prototile.cells p in
           List.filter_map
             (fun o ->
               let ids = List.map (fun n -> Sublattice.coset_id period (Vec.add o n)) cells in
               let sorted = List.sort_uniq Stdlib.compare ids in
               (* Self-overlap on the torus = T2 violation in Z^d. *)
               if List.length sorted <> List.length ids then None
               else Some { piece = k; anchor = o; covers = ids })
             anchors)
         prototiles)
  in
  (* by_cell.(c) = placements covering cell c *)
  let by_cell = Array.make idx [] in
  List.iter (fun pl -> List.iter (fun c -> by_cell.(c) <- pl :: by_cell.(c)) pl.covers) placements;
  let free covered pl = List.for_all (fun c -> not covered.(c)) pl.covers in
  (* Most-constrained uncovered cell and its free placements; both engines
     branch on this cell first (first strict minimum in cell order), which
     is what lets the parallel split mirror their sequential traversals. *)
  let best_cell covered =
    let best = ref (-1) in
    let best_cands = ref [] in
    let best_n = ref max_int in
    for c = 0 to idx - 1 do
      if (not covered.(c)) && !best_n > 0 then begin
        let cands = List.filter (free covered) by_cell.(c) in
        let n = List.length cands in
        if n < !best_n then begin
          best := c;
          best_cands := cands;
          best_n := n
        end
      end
    done;
    (!best, !best_cands)
  in
  let bt_solve ~covered ~chosen0 ~budget =
    let solutions = ref [] in
    let count = ref 0 in
    let chosen = ref chosen0 in
    let rec solve () =
      if !count >= budget then ()
      else begin
        let best, best_cands = best_cell covered in
        if best < 0 then begin
          (* Everything covered: record the solution. *)
          solutions := List.rev !chosen :: !solutions;
          incr count
        end
        else
          List.iter
            (fun pl ->
              if free covered pl then begin
                List.iter (fun c -> covered.(c) <- true) pl.covers;
                chosen := pl :: !chosen;
                solve ();
                chosen := List.tl !chosen;
                List.iter (fun c -> covered.(c) <- false) pl.covers
              end)
            best_cands
      end
    in
    solve ();
    List.rev !solutions
  in
  (* Parallel split, shared by both engines: branch on the root cell, give
     each candidate placement its own domain-local subtree, and merge the
     per-subtree solution lists in branch order.  Every subtree enumerates
     in the sequential engine's order and sequential search takes a prefix
     of each subtree in turn, so the merged, truncated list is identical
     to the sequential result - for any pool size. *)
  let bt_parallel () =
    let root, cands = best_cell (Array.make idx false) in
    if root < 0 then [ [] ]
    else begin
      let cand_arr = Array.of_list cands in
      Parallel.map_array pool
        (fun pl ->
          let covered = Array.make idx false in
          List.iter (fun c -> covered.(c) <- true) pl.covers;
          bt_solve ~covered ~chosen0:[ pl ] ~budget:max_solutions)
        cand_arr
      |> Array.to_list |> List.concat |> take max_solutions
    end
  in
  let rows = List.map (fun pl -> pl.covers) placements in
  let dlx_parallel placement_arr =
    let root, _ = best_cell (Array.make idx false) in
    if root < 0 then [ [] ]
    else begin
      (* Rows of the root column in insertion order = DLX's branch order. *)
      let cand_rows = ref [] in
      Array.iteri
        (fun i pl -> if List.mem root pl.covers then cand_rows := i :: !cand_rows)
        placement_arr;
      let cand_rows = Array.of_list (List.rev !cand_rows) in
      Parallel.map_array pool
        (fun r ->
          let problem = Dlx.create ~universe:idx rows in
          Dlx.solve ~max_solutions ~forced:[ r ] problem)
        cand_rows
      |> Array.to_list |> List.concat |> take max_solutions
      |> List.map (List.map (fun i -> placement_arr.(i)))
    end
  in
  let raw_solutions =
    match engine with
    | `Backtracking ->
      if Parallel.jobs pool > 1 then bt_parallel ()
      else bt_solve ~covered:(Array.make idx false) ~chosen0:[] ~budget:max_solutions
    | `Dlx ->
      let placement_arr = Array.of_list placements in
      if Parallel.jobs pool > 1 then dlx_parallel placement_arr
      else
        Dlx.create ~universe:idx rows
        |> Dlx.solve ~max_solutions
        |> List.map (List.map (fun i -> placement_arr.(i)))
  in
  let to_multi sol =
    let pieces =
      List.mapi
        (fun k p ->
          let offs = List.filter_map (fun pl -> if pl.piece = k then Some pl.anchor else None) sol in
          { Multi.tile = p; piece_offsets = offs })
        prototiles
      |> List.filter (fun pc -> pc.Multi.piece_offsets <> [])
    in
    match Multi.make ~period pieces with
    | Ok t -> t
    | Error msg -> invalid_arg ("Search.cover_torus: inconsistent solution: " ^ msg)
  in
  List.map to_multi raw_solutions

let default_factors = [ 1; 2; 3; 4 ]

let torus_single_tilings ~factors p =
  let d = Prototile.dim p in
  let m = Prototile.size p in
  List.concat_map
    (fun f ->
      List.concat_map
        (fun lam ->
          cover_torus ~period:lam ~prototiles:[ p ] ~max_solutions:1 ()
          |> List.filter_map (fun mt ->
                 match Multi.pieces mt with
                 | [ pc ] -> (
                   match
                     Single.make ~prototile:p ~period:lam ~offsets:pc.Multi.piece_offsets
                   with
                   | Ok t -> Some t
                   | Error _ -> None)
                 | _ -> None))
        (Sublattice.all_of_index ~dim:d (f * m)))
    factors

let find_tiling ?(torus_factors = default_factors) p =
  match find_lattice_tiling p with
  | Some t -> Some t
  | None -> (
    match torus_single_tilings ~factors:torus_factors p with
    | t :: _ -> Some t
    | [] -> None)

let find_respectable ?(torus_factors = default_factors) prototiles ?(max_solutions = 16) () =
  match prototiles with
  | [] -> invalid_arg "Search.find_respectable: no prototiles"
  | n1 :: rest ->
    if not (List.for_all (fun nk -> Prototile.subset nk n1) rest) then
      invalid_arg "Search.find_respectable: first prototile must contain the others";
    let d = Prototile.dim n1 in
    let m1 = Prototile.size n1 in
    let uses_all mt = List.length (Multi.pieces mt) = List.length prototiles in
    List.concat_map
      (fun f ->
        List.concat_map
          (fun lam ->
            (* Over-sample: many covers use only the big prototile. *)
            cover_torus ~period:lam ~prototiles ~max_solutions:(max_solutions * 16) ()
            |> List.filter (fun mt -> uses_all mt && Multi.is_respectable mt))
          (Sublattice.all_of_index ~dim:d (f * m1)))
      torus_factors
    |> List.filteri (fun i _ -> i < max_solutions)

let exactness ?(torus_factors = default_factors) p =
  if Prototile.dim p = 2 && Polyomino.is_polyomino p then
    if Boundary_word.is_exact_polyomino p then `Exact else `NotExact
  else if find_tiling ~torus_factors p <> None then `Exact
  else `Unknown
