open Zgeom
open Lattice

let lattice_tilings ?pool ?sched p =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  let d = Prototile.dim p in
  let m = Prototile.size p in
  let cells = Prototile.cells p in
  let complete_residues lam =
    let seen = Hashtbl.create m in
    List.for_all
      (fun n ->
        let id = Sublattice.coset_id lam n in
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          true
        end)
      cells
  in
  (* One task per HNF diagonal family; concatenating in diagonal order is
     exactly the sequential [all_of_index] enumeration.  Families differ
     wildly in size, so the stealing scheduler's dynamic balance is the
     default ([?sched] falls through to {!Parallel.default_sched}). *)
  Parallel.concat_map ?sched pool
    (fun diag -> List.filter complete_residues (Sublattice.all_with_diagonal ~dim:d diag))
    (Sublattice.hnf_diagonals ~dim:d m)

let find_lattice_tiling p =
  match lattice_tilings p with
  | [] -> None
  | lam :: _ -> (
    match Single.lattice_tiling p lam with
    | Ok t -> Some t
    | Error _ -> assert false)

type placement = { piece : int; anchor : Vec.t; covers : int list }

type engine = [ `Backtracking | `Bitmask | `Dlx ]

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* Mutable search state of the [`Bitmask] engine; one per task, created
   inside the task, so the Parallel closures stay pure (lint R3).
   Invariants between calls:
   - [live] = placements compatible with everything placed so far, i.e.
     exactly the placements the list engine's [free] test would accept;
   - [counts.(c)] = number of live placements covering cell [c];
   - [cell_next]/[cell_prev] = doubly-linked list of the uncovered
     cells in ascending cell order, with sentinel node [idx], so cell
     selection walks only uncovered cells.  Unlinking keeps the
     relative order of the remaining cells, and [unplace] relinks in
     reverse unlink order, so the list is restored exactly (the classic
     dancing-links discipline);
   - [undo.(sp_at.(d) .. sp_at.(d+1) - 1)] = the placements killed by the
     [place] at depth [d], in kill order, so [unplace] restores
     [live]/[counts] exactly (a placement conflicting with two placed
     ones is recorded by the first kill only).  Each placement dies at
     most once per root-to-leaf path, so [n_pl] undo slots suffice;
   - [chosen.(0 .. depth-1)] = the placements placed so far, in
     chronological order (callers write [chosen.(depth)] just before
     each [place]), so recording a solution is one [Array.sub]. *)
type mask_state = {
  live : Bitset.t;
  counts : int array;
  cell_next : int array;
  cell_prev : int array;
  undo : int array;
  sp_at : int array;
  chosen : int array;
  mutable sp : int;
  mutable depth : int;
}

(* Shared implementation of [cover_torus] (collect = true: materialize
   [Multi.t] solutions, truncated to [max_solutions]) and
   [count_torus_covers] (collect = false: traverse the same tree, same
   order, but only count - no per-solution allocation at all when [keep]
   is absent).  Engine runners return [(raw solutions, count)]; in
   counting mode the list stays empty. *)
let torus_run ~period ~prototiles ~max_solutions ~engine ~keep ~pool ~sched ~collect =
  let idx = Sublattice.index period in
  let anchors = Sublattice.cosets period in
  let placements =
    List.concat
      (List.mapi
         (fun k p ->
           let cells = Prototile.cells p in
           List.filter_map
             (fun o ->
               let ids = List.map (fun n -> Sublattice.coset_id period (Vec.add o n)) cells in
               let sorted = List.sort_uniq Stdlib.compare ids in
               (* Self-overlap on the torus = T2 violation in Z^d. *)
               if List.length sorted <> List.length ids then None
               else Some { piece = k; anchor = o; covers = ids })
             anchors)
         prototiles)
  in
  let placement_arr = Array.of_list placements in
  let n_pl = Array.length placement_arr in
  (* Raw solutions are arrays of placement indices in traversal
     (chronological) order - one contiguous allocation per solution,
     where cons-list recording cost as much as the whole search on
     solution-dense workloads (EXP-P2).  The solver guarantees an exact
     cover and has each placement's coset ids at hand, so conversion
     goes through [Multi.of_search_cover] - coverage is re-checked with
     array writes, but no coset arithmetic is redone.  [pl_pair] holds
     each placement's [(anchor, covers)] pair preallocated, so building
     the constructor's input just conses existing pairs. *)
  let pl_pair = Array.map (fun pl -> (pl.anchor, pl.covers)) placement_arr in
  let pl_piece = Array.map (fun pl -> pl.piece) placement_arr in
  let to_multi sol =
    let n = Array.length sol in
    let rec mine k i =
      if i >= n then []
      else
        let q = Array.unsafe_get sol i in
        if Array.unsafe_get pl_piece q = k then Array.unsafe_get pl_pair q :: mine k (i + 1)
        else mine k (i + 1)
    in
    let rec per_piece k = function
      | [] -> []
      | p :: ps -> (
        match mine k 0 with
        | [] -> per_piece (k + 1) ps
        | placements -> (p, placements) :: per_piece (k + 1) ps)
    in
    Multi.of_search_cover ~period (per_piece 0 prototiles)
  in
  (* Only solutions passing [keep] are recorded or counted against the
     budget, in every engine and every subtree of the parallel split -
     so filtered searches keep the same prefix/identity guarantees. *)
  let keep_raw = match keep with None -> fun _ -> true | Some f -> fun sol -> f (to_multi sol) in
  (* Merge of the parallel split's per-subtree [(solutions, count)]
     results, in branch order - identical to the sequential list for any
     pool size (each subtree enumerates in sequential order, and the
     sequential search exhausts each subtree in turn). *)
  let merge_parts parts =
    if collect then begin
      let sols = take max_solutions (List.concat (Array.to_list (Array.map fst parts))) in
      (sols, List.length sols)
    end
    else ([], Array.fold_left (fun acc (_, c) -> acc + c) 0 parts)
  in
  (* Same merge for the stealing scheduler's output: [Steal.run] returns
     the per-subtree chunks already sorted by canonical path key, i.e.
     in sequential enumeration order, so concatenating and truncating is
     again identical to the sequential list. *)
  let merge_chunks chunks =
    if collect then begin
      let sols = take max_solutions (List.concat_map (fun (_, (s, _)) -> s) chunks) in
      (sols, List.length sols)
    end
    else ([], List.fold_left (fun acc (_, (_, c)) -> acc + c) 0 chunks)
  in
  (* Root-candidate task distribution for the oracle engines under
     [`Steal]: whole root subtrees migrate between deques (no lazy
     splitting - the oracles stay simple), which already fixes the
     static split's worst case of one domain drawing several fat
     subtrees. *)
  let pmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array =
   fun f xs ->
    match sched with
    | `Static -> Parallel.map_array ~sched:`Static pool f xs
    | `Steal -> Parallel.steal_map_array pool f xs
  in
  (* Empty universe: the empty placement set is the one exact cover. *)
  let trivial_root () =
    if not (keep_raw [||]) then ([], 0) else if collect then ([ [||] ], 1) else ([], 1)
  in
  (* by_cell.(c) = placements covering cell c, in placement order -
     ascending construction order, which is also DLX's row order in a
     column, so all three engines branch candidates identically. *)
  let by_cell = Array.make idx [] in
  Array.iteri
    (fun q pl -> List.iter (fun c -> by_cell.(c) <- q :: by_cell.(c)) pl.covers)
    placement_arr;
  let by_cell = Array.map (fun l -> Array.of_list (List.rev l)) by_cell in
  let free covered q = List.for_all (fun c -> not covered.(c)) placement_arr.(q).covers in
  (* Most-constrained uncovered cell and its free placements; every
     engine branches on this cell first (first strict minimum in cell
     order), which is what lets the parallel split mirror their
     sequential traversals. *)
  let best_cell covered =
    let best = ref (-1) in
    let best_cands = ref [||] in
    let best_n = ref max_int in
    for c = 0 to idx - 1 do
      if (not covered.(c)) && !best_n > 0 then begin
        let cands = Array.of_list (List.filter (free covered) (Array.to_list by_cell.(c))) in
        let n = Array.length cands in
        if n < !best_n then begin
          best := c;
          best_cands := cands;
          best_n := n
        end
      end
    done;
    (!best, !best_cands)
  in
  let bt_solve ~covered ~chosen0 ~budget =
    let solutions = ref [] in
    let count = ref 0 in
    (* [chosen.(0 .. lvl-1)] is the current branch in chronological
       order; [chosen0] seeds the prefix for parallel subtree tasks. *)
    let chosen = Array.make (max 1 idx) 0 in
    let lvl = ref 0 in
    List.iter
      (fun q ->
        chosen.(!lvl) <- q;
        incr lvl)
      chosen0;
    let rec solve () =
      if !count >= budget then ()
      else begin
        let best, best_cands = best_cell covered in
        if best < 0 then begin
          (* Everything covered.  In counting mode with no filter nothing
             is materialized at all; with a filter the solution array is
             still built (the filter needs it) but not retained. *)
          if collect then begin
            let sol = Array.sub chosen 0 !lvl in
            if keep_raw sol then begin
              solutions := sol :: !solutions;
              incr count
            end
          end
          else (
            match keep with
            | None -> incr count
            | Some _ -> if keep_raw (Array.sub chosen 0 !lvl) then incr count)
        end
        else
          Array.iter
            (fun q ->
              if !count < budget && free covered q then begin
                List.iter (fun c -> covered.(c) <- true) placement_arr.(q).covers;
                chosen.(!lvl) <- q;
                incr lvl;
                solve ();
                decr lvl;
                List.iter (fun c -> covered.(c) <- false) placement_arr.(q).covers
              end)
            best_cands
      end
    in
    solve ();
    (List.rev !solutions, !count)
  in
  (* Parallel split, shared by all engines: branch on the root cell, give
     each candidate placement its own domain-local subtree, and merge the
     per-subtree solution lists in branch order.  Every subtree enumerates
     in the sequential engine's order and sequential search takes a prefix
     of each subtree in turn, so the merged, truncated list is identical
     to the sequential result - for any pool size. *)
  let bt_parallel () =
    let root, cands = best_cell (Array.make idx false) in
    if root < 0 then trivial_root ()
    else
      merge_parts
        (pmap
           (fun q ->
             let covered = Array.make idx false in
             List.iter (fun c -> covered.(c) <- true) placement_arr.(q).covers;
             bt_solve ~covered ~chosen0:[ q ] ~budget:max_solutions)
           cands)
  in
  let rows = List.map (fun pl -> pl.covers) placements in
  let dlx_keep =
    match keep with
    | None -> None
    | Some _ -> Some (fun sol -> keep_raw (Array.of_list sol))
  in
  (* DLX emits placement-index lists already filtered by [dlx_keep]. *)
  let dlx_results l =
    if collect then (List.map Array.of_list l, List.length l) else ([], List.length l)
  in
  let dlx_parallel () =
    let root, _ = best_cell (Array.make idx false) in
    if root < 0 then trivial_root ()
    else
      (* Rows of the root column in insertion order = DLX's branch order. *)
      merge_parts
        (pmap
           (fun r ->
             let problem = Dlx.create ~universe:idx rows in
             dlx_results (Dlx.solve ~max_solutions ?keep:dlx_keep ~forced:[ r ] problem))
           by_cell.(root))
  in
  (* ---- [`Bitmask] engine -------------------------------------------- *)
  (* Static tables, precomputed once and shared read-only across tasks:
     [conflict_list.(q)] = every placement overlapping q, q itself
     included, as a plain index array; [covers_start]/[covers_flat] =
     placement footprints flattened CSR-style; [pl_word]/[pl_bit] and
     [cell_word]/[cell_bit] = each index's position in the live /
     uncovered word arrays, so the hot loops test and flip single bits
     with two table reads instead of div/mod or bit scans. *)
  let bm_run () =
    let bpw = Sys.int_size in
    let conflict_list =
      Array.map
        (fun pl ->
          let m = Bitset.create n_pl in
          List.iter (fun c -> Array.iter (fun q -> Bitset.set m q) by_cell.(c)) pl.covers;
          Array.of_list (Bitset.to_list m))
        placement_arr
    in
    let covers_start = Array.make (n_pl + 1) 0 in
    Array.iteri
      (fun q pl -> covers_start.(q + 1) <- covers_start.(q) + List.length pl.covers)
      placement_arr;
    let covers_flat = Array.make (max 1 covers_start.(n_pl)) 0 in
    Array.iteri
      (fun q pl -> List.iteri (fun i c -> covers_flat.(covers_start.(q) + i) <- c) pl.covers)
      placement_arr;
    let pl_word = Array.init n_pl (fun q -> q / bpw) in
    let pl_bit = Array.init n_pl (fun q -> 1 lsl (q mod bpw)) in
    let counts0 = Array.map Array.length by_cell in
    let new_state () =
      { live = Bitset.full n_pl;
        counts = Array.copy counts0;
        cell_next = Array.init (idx + 1) (fun c -> if c = idx then 0 else c + 1);
        cell_prev = Array.init (idx + 1) (fun c -> if c = 0 then idx else c - 1);
        undo = Array.make (max 1 n_pl) 0;
        sp_at = Array.make (idx + 1) 0;
        chosen = Array.make (max 1 idx) 0;
        sp = 0;
        depth = 0 }
    in
    (* [place] walks the placed piece's static conflict list, kills the
       entries still live (one bit test + clear each), pushes them on the
       undo stack and decrements the counts over their footprints;
       [unplace] pops its stack frame and reverses both updates.  No bit
       scanning anywhere - newly-dead placements come out of the static
       table, not out of the mask.  All index arithmetic is bounds-safe
       by construction ([r < n_pl], cells in [covers_flat] are [< idx]),
       so the loops use unsafe accessors - this is the hottest code in
       the engine. *)
    let place st q =
      let nxt = st.cell_next and prv = st.cell_prev in
      for j = Array.unsafe_get covers_start q to Array.unsafe_get covers_start (q + 1) - 1 do
        let c = Array.unsafe_get covers_flat j in
        let p = Array.unsafe_get prv c and n = Array.unsafe_get nxt c in
        Array.unsafe_set nxt p n;
        Array.unsafe_set prv n p
      done;
      Array.unsafe_set st.sp_at st.depth st.sp;
      st.depth <- st.depth + 1;
      let lw = Bitset.unsafe_words st.live in
      let counts = st.counts in
      let undo = st.undo in
      let cl = Array.unsafe_get conflict_list q in
      let sp = ref st.sp in
      for i = 0 to Array.length cl - 1 do
        let r = Array.unsafe_get cl i in
        let wi = Array.unsafe_get pl_word r in
        let b = Array.unsafe_get pl_bit r in
        let w = Array.unsafe_get lw wi in
        if w land b <> 0 then begin
          Array.unsafe_set lw wi (w land lnot b);
          Array.unsafe_set undo !sp r;
          incr sp;
          for j = Array.unsafe_get covers_start r to Array.unsafe_get covers_start (r + 1) - 1
          do
            let c = Array.unsafe_get covers_flat j in
            Array.unsafe_set counts c (Array.unsafe_get counts c - 1)
          done
        end
      done;
      st.sp <- !sp
    in
    let unplace st q =
      st.depth <- st.depth - 1;
      let sp0 = Array.unsafe_get st.sp_at st.depth in
      let lw = Bitset.unsafe_words st.live in
      let counts = st.counts in
      let undo = st.undo in
      for t = st.sp - 1 downto sp0 do
        let r = Array.unsafe_get undo t in
        let wi = Array.unsafe_get pl_word r in
        Array.unsafe_set lw wi (Array.unsafe_get lw wi lor Array.unsafe_get pl_bit r);
        for j = Array.unsafe_get covers_start r to Array.unsafe_get covers_start (r + 1) - 1 do
          let c = Array.unsafe_get covers_flat j in
          Array.unsafe_set counts c (Array.unsafe_get counts c + 1)
        done
      done;
      st.sp <- sp0;
      let nxt = st.cell_next and prv = st.cell_prev in
      (* Relink in reverse unlink order, so the neighbours recorded in
         each cell's own [prev]/[next] slots are valid again. *)
      for j = Array.unsafe_get covers_start (q + 1) - 1 downto Array.unsafe_get covers_start q
      do
        let c = Array.unsafe_get covers_flat j in
        let p = Array.unsafe_get prv c and n = Array.unsafe_get nxt c in
        Array.unsafe_set nxt p c;
        Array.unsafe_set prv n c
      done
    in
    (* Same selection rule as [best_cell] - the first strict minimum of
       the candidate count over uncovered cells, in cell order - read
       straight from the incremental [counts].  The scan may stop at a
       count <= 1: a later cell can displace a 1 only with a 0, and both
       choices enumerate nothing (a 0-candidate cell can never be
       covered again, since counts only decrease along a branch), so the
       emitted solution sequence is unchanged - only wasted descent is
       skipped. *)
    let exception Found_forced in
    let select st =
      let nxt = st.cell_next in
      let counts = st.counts in
      let best = ref (-1) in
      let best_n = ref max_int in
      (try
         let c = ref (Array.unsafe_get nxt idx) in
         while !c <> idx do
           let n = Array.unsafe_get counts !c in
           if n < !best_n then begin
             best := !c;
             best_n := n;
             if n <= 1 then raise_notrace Found_forced
           end;
           c := Array.unsafe_get nxt !c
         done
       with Found_forced -> ());
      !best
    in
    (* Record the choice and place it - the entry point for seeding a
       task's chosen prefix. *)
    let choose st q =
      st.chosen.(st.depth) <- q;
      place st q
    in
    let bm_solve st ~budget =
      let solutions = ref [] in
      let count = ref 0 in
      let chosen = st.chosen in
      let rec solve () =
        if !count >= budget then ()
        else begin
          let best = select st in
          if best < 0 then begin
            if collect then begin
              let sol = Array.sub chosen 0 st.depth in
              if keep_raw sol then begin
                solutions := sol :: !solutions;
                incr count
              end
            end
            else (
              match keep with
              | None -> incr count
              | Some _ -> if keep_raw (Array.sub chosen 0 st.depth) then incr count)
          end
          else begin
            (* Branch on the cell's static candidate row, re-testing
               liveness at visit time: [live] is restored between
               siblings, so the test equals the list engine's
               per-candidate freeness test - same candidates, same
               ascending order. *)
            let cands = Array.unsafe_get by_cell best in
            let lw = Bitset.unsafe_words st.live in
            for i = 0 to Array.length cands - 1 do
              let q = Array.unsafe_get cands i in
              if
                !count < budget
                && Array.unsafe_get lw (Array.unsafe_get pl_word q)
                   land Array.unsafe_get pl_bit q
                   <> 0
              then begin
                Array.unsafe_set chosen st.depth q;
                place st q;
                solve ();
                unplace st q
              end
            done
          end
        end
      in
      solve ();
      (List.rev !solutions, !count)
    in
    (* ---- the lazy-splitting steal path ------------------------------ *)
    (* A task owns the subtree reached by replaying [replay] and then
       placing [cand]; [key] is its canonical path (branch positions
       from the root).  The task re-solves with an explicit frame stack
       mirroring the recursion of [bm_solve] - same selection rule, same
       candidate order, same liveness test at visit time - so its
       enumeration order is exactly the sequential engine's within the
       subtree.  When a thief starves ([should_split]), the task gives
       away the untried candidate positions of its SHALLOWEST open frame
       (the biggest remaining pieces of its subtree) as fresh tasks,
       closes its current result chunk, and continues; the chunk keys
       are built so that sorting all chunks by key reproduces the
       sequential solution order (see DESIGN 12).

       Budget safety: each task caps its own output at [max_solutions].
       That never loses a needed solution - a task's stream is a
       subsequence of the global enumeration, and any member of the
       global first-[m] prefix is within the first [m] of every
       subsequence containing it. *)
    let rec bm_task ctx ~replay ~cand ~key =
      let st = new_state () in
      Array.iter (fun p -> choose st p) replay;
      (* Liveness in the REPLAYED context (parent placements only) is
         exactly the sequential visit-time test for this branch. *)
      if not (Bitset.mem st.live cand) then []
      else begin
        choose st cand;
        bm_solve_steal st ctx ~key
      end
    and bm_solve_steal st ctx ~key =
      let budget = max_solutions in
      let base_depth = st.depth in
      (* Frame [f] mirrors recursion level [base_depth + f]: the static
         candidate row it branches on, the position currently placed
         ([pos], >= 0 whenever a deeper node is active), and the
         exclusive upper bound [limit] (lowered when a give-away hands
         the rest of the row to other tasks). *)
      let frame_cands = Array.make (max 1 idx) [||] in
      let frame_pos = Array.make (max 1 idx) (-1) in
      let frame_limit = Array.make (max 1 idx) 0 in
      let nf = ref 0 in
      let chunks_rev = ref [] in
      let cur_key = ref key in
      let cur_sols = ref [] in
      let cur_count = ref 0 in
      let total = ref 0 in
      let close_chunk () =
        chunks_rev := (!cur_key, (List.rev !cur_sols, !cur_count)) :: !chunks_rev;
        cur_sols := [];
        cur_count := 0
      in
      let record () =
        if collect then begin
          let sol = Array.sub st.chosen 0 st.depth in
          if keep_raw sol then begin
            cur_sols := sol :: !cur_sols;
            incr cur_count;
            incr total
          end
        end
        else
          match keep with
          | None ->
            incr cur_count;
            incr total
          | Some _ ->
            if keep_raw (Array.sub st.chosen 0 st.depth) then begin
              incr cur_count;
              incr total
            end
      in
      let give_away () =
        (* The shallowest frame with untried candidates; every open
           frame has [pos >= 0] here (frames are advanced before the
           next descent), so [st.chosen] holds one placement per frame. *)
        let fi = ref (-1) in
        (try
           for f = 0 to !nf - 1 do
             if frame_pos.(f) + 1 < frame_limit.(f) then begin
               fi := f;
               raise_notrace Exit
             end
           done
         with Exit -> ());
        if !fi >= 0 then begin
          let f = !fi in
          let cands = frame_cands.(f) in
          let replay = Array.sub st.chosen 0 (base_depth + f) in
          let prefix = ref [] in
          for j = f - 1 downto 0 do
            prefix := frame_pos.(j) :: !prefix
          done;
          let prefix = !prefix in
          for t = frame_pos.(f) + 1 to frame_limit.(f) - 1 do
            let q = cands.(t) in
            let k = key @ prefix @ [ t ] in
            Parallel.Steal.spawn ctx ~key:k (fun ctx -> bm_task ctx ~replay ~cand:q ~key:k)
          done;
          frame_limit.(f) <- frame_pos.(f) + 1;
          (* Everything this task still enumerates lives under the
             branch at position [pos f]; start a chunk keyed there, so
             it sorts after the closed chunk (its key extends the old
             one) and before every spawned sibling ([pos f] < [t]). *)
          close_chunk ();
          cur_key := key @ prefix @ [ frame_pos.(f) ]
        end
      in
      let descend = ref true in
      let running = ref true in
      while !running do
        if !total >= budget then running := false
        else if !descend then begin
          if Parallel.Steal.should_split ctx then give_away ();
          let best = select st in
          if best < 0 then begin
            record ();
            descend := false
          end
          else begin
            let f = !nf in
            frame_cands.(f) <- Array.unsafe_get by_cell best;
            frame_pos.(f) <- -1;
            frame_limit.(f) <- Array.length frame_cands.(f);
            nf := f + 1;
            descend := false
          end
        end
        else if !nf = 0 then running := false
        else begin
          (* Retreat: unplace the top frame's placement (if any) and
             advance it to its next live candidate, or pop it. *)
          let f = !nf - 1 in
          if frame_pos.(f) >= 0 then unplace st frame_cands.(f).(frame_pos.(f));
          let cands = frame_cands.(f) in
          let limit = frame_limit.(f) in
          let lw = Bitset.unsafe_words st.live in
          let p = ref (frame_pos.(f) + 1) in
          let found = ref false in
          while (not !found) && !p < limit do
            let q = Array.unsafe_get cands !p in
            if
              Array.unsafe_get lw (Array.unsafe_get pl_word q)
              land Array.unsafe_get pl_bit q
              <> 0
            then found := true
            else incr p
          done;
          if !found then begin
            frame_pos.(f) <- !p;
            choose st cands.(!p);
            descend := true
          end
          else nf := f
        end
      done;
      close_chunk ();
      List.rev !chunks_rev
    in
    let bm_steal () =
      let st0 = new_state () in
      let root = select st0 in
      if root < 0 then trivial_root ()
      else begin
        let cands = by_cell.(root) in
        (* Cost model for LPT seeding: placements left alive after each
           root choice, read off the incrementally maintained live set -
           a one-place/one-unplace probe per candidate. *)
        let weights =
          Array.map
            (fun q ->
              place st0 q;
              let w = float_of_int (Bitset.popcount st0.live) in
              unplace st0 q;
              w)
            cands
        in
        let tasks =
          Array.mapi
            (fun i q -> ([ i ], fun ctx -> bm_task ctx ~replay:[||] ~cand:q ~key:[ i ]))
            cands
        in
        merge_chunks (Parallel.Steal.run pool ~weights tasks)
      end
    in
    let jobs = Parallel.jobs pool in
    if jobs <= 1 then bm_solve (new_state ()) ~budget:max_solutions
    else if sched = `Steal then bm_steal ()
    else begin
      let st0 = new_state () in
      let root = select st0 in
      if root < 0 then trivial_root ()
      else if Array.length by_cell.(root) >= 2 * jobs then
        (* One task per root candidate, merged in branch order. *)
        merge_parts
          (Parallel.map_array ~sched:`Static pool
             (fun q ->
               let st = new_state () in
               choose st q;
               bm_solve st ~budget:max_solutions)
             by_cell.(root))
      else begin
        (* Too few root branches to occupy the pool: split two levels
           deep.  The task list is expanded sequentially in traversal
           order (place q; branch on the next selected cell; unplace), so
           concatenating per-task results still reproduces the sequential
           enumeration. *)
        let tasks = ref [] in
        Array.iter
          (fun q ->
            place st0 q;
            let c2 = select st0 in
            if c2 < 0 then tasks := `Leaf q :: !tasks
            else
              Array.iter
                (fun r -> if Bitset.mem st0.live r then tasks := `Branch (q, r) :: !tasks)
                by_cell.(c2);
            unplace st0 q)
          by_cell.(root);
        let tasks = Array.of_list (List.rev !tasks) in
        merge_parts
          (Parallel.map_array ~sched:`Static pool
             (fun task ->
               match task with
               | `Leaf q ->
                 if not (keep_raw [| q |]) then ([], 0)
                 else if collect then ([ [| q |] ], 1)
                 else ([], 1)
               | `Branch (q, r) ->
                 let st = new_state () in
                 choose st q;
                 choose st r;
                 bm_solve st ~budget:max_solutions)
             tasks)
      end
    end
  in
  let raw_solutions, total =
    match engine with
    | `Bitmask -> bm_run ()
    | `Backtracking ->
      if Parallel.jobs pool > 1 then bt_parallel ()
      else bt_solve ~covered:(Array.make idx false) ~chosen0:[] ~budget:max_solutions
    | `Dlx ->
      if Parallel.jobs pool > 1 then dlx_parallel ()
      else dlx_results (Dlx.solve ~max_solutions ?keep:dlx_keep (Dlx.create ~universe:idx rows))
  in
  if collect then `Sols (List.map to_multi raw_solutions) else `Count total

let cover_torus ~period ~prototiles ?(max_solutions = 64) ?(engine = `Bitmask) ?keep ?pool
    ?sched () =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  let sched = match sched with Some s -> s | None -> Parallel.default_sched () in
  match torus_run ~period ~prototiles ~max_solutions ~engine ~keep ~pool ~sched ~collect:true with
  | `Sols sols -> sols
  | `Count _ -> assert false

let count_torus_covers ~period ~prototiles ?(engine = `Bitmask) ?pool ?sched () =
  let pool = match pool with Some pl -> pl | None -> Parallel.default () in
  let sched = match sched with Some s -> s | None -> Parallel.default_sched () in
  match
    torus_run ~period ~prototiles ~max_solutions:max_int ~engine ~keep:None ~pool ~sched
      ~collect:false
  with
  | `Count n -> n
  | `Sols _ -> assert false

let default_factors = [ 1; 2; 3; 4 ]

let torus_single_tilings ~factors p =
  let d = Prototile.dim p in
  let m = Prototile.size p in
  List.concat_map
    (fun f ->
      List.concat_map
        (fun lam ->
          cover_torus ~period:lam ~prototiles:[ p ] ~max_solutions:1 ()
          |> List.filter_map (fun mt ->
                 match Multi.pieces mt with
                 | [ pc ] -> (
                   match
                     Single.make ~prototile:p ~period:lam ~offsets:pc.Multi.piece_offsets
                   with
                   | Ok t -> Some t
                   | Error _ -> None)
                 | _ -> None))
        (Sublattice.all_of_index ~dim:d (f * m)))
    factors

let find_tiling ?(torus_factors = default_factors) p =
  match find_lattice_tiling p with
  | Some t -> Some t
  | None -> (
    match torus_single_tilings ~factors:torus_factors p with
    | t :: _ -> Some t
    | [] -> None)

let find_respectable ?(torus_factors = default_factors) prototiles ?(max_solutions = 16) () =
  match prototiles with
  | [] -> invalid_arg "Search.find_respectable: no prototiles"
  | n1 :: rest ->
    if not (List.for_all (fun nk -> Prototile.subset nk n1) rest) then
      invalid_arg "Search.find_respectable: first prototile must contain the others";
    let d = Prototile.dim n1 in
    let m1 = Prototile.size n1 in
    let uses_all mt = List.length (Multi.pieces mt) = List.length prototiles in
    let keep mt = uses_all mt && Multi.is_respectable mt in
    (* [keep] makes each torus search early-stopping: only respectable
       covers using every prototile count against its budget, so we ask
       each period for exactly the solutions still wanted and stop as
       soon as [max_solutions] have been found - no over-sampling. *)
    let acc = ref [] in
    let remaining = ref max_solutions in
    List.iter
      (fun f ->
        List.iter
          (fun lam ->
            if !remaining > 0 then begin
              let sols = cover_torus ~period:lam ~prototiles ~max_solutions:!remaining ~keep () in
              remaining := !remaining - List.length sols;
              acc := List.rev_append sols !acc
            end)
          (Sublattice.all_of_index ~dim:d (f * m1)))
      torus_factors;
    List.rev !acc

(* --- Translation-congruence classes of torus covers --------------------- *)

(* Two covers of the same torus are congruent when some translation [u]
   maps one onto the other (piece-wise, offsets mod the period).  The
   canonical key of a cover is the lexicographically least of its |Z^d /
   Lambda| translated serializations, so congruent covers collide on the
   key and the first representative in enumeration order survives. *)
let cover_key ~period ~shift mt =
  Multi.pieces mt
  |> List.map (fun pc ->
         ( List.map Vec.to_list (Prototile.cells pc.Multi.tile),
           pc.Multi.piece_offsets
           |> List.map (fun o -> Vec.to_list (Sublattice.reduce period (Vec.add o shift)))
           |> List.sort compare ))
  |> List.sort compare

let canonical_cover_key ~period mt =
  match Sublattice.cosets period with
  | [] -> assert false
  | u0 :: us ->
    List.fold_left
      (fun best u ->
        let k = cover_key ~period ~shift:u mt in
        if compare k best < 0 then k else best)
      (cover_key ~period ~shift:u0 mt)
      us

let distinct_torus_covers ~period ~prototiles ?max_classes ?(engine = `Bitmask) ?pool ?sched
    () =
  let budget = match max_classes with Some k -> k | None -> max_int in
  let covers = cover_torus ~period ~prototiles ~max_solutions:max_int ~engine ?pool ?sched () in
  let seen = Hashtbl.create 64 in
  let reps = ref [] in
  let kept = ref 0 in
  List.iter
    (fun mt ->
      if !kept < budget then begin
        let k = canonical_cover_key ~period mt in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          incr kept;
          reps := mt :: !reps
        end
      end)
    covers;
  List.rev !reps

(* --- Exact cover of a finite region -------------------------------------- *)

(* The repair kernel of [lib/lifetime]: cover a finite damaged window by
   whole prototile translates.  Same branching rule as the torus engines
   (first strict-minimum uncovered cell, candidates in ascending
   translation order) on the same Bitset representation, but sequential -
   repair windows are a few tiles, never a search tree worth splitting.

   Plane mode has a striking rigidity: an exact cover of a finite region
   by translates of one prototile is unique when it exists, because the
   lexicographically least uncovered cell can only be covered by the
   translate placing the tile's least cell there (any other placement
   would put a lexicographically smaller tile cell inside the region,
   still uncovered), and induction does the rest.  [torus] mode - all
   arithmetic mod a deployment sublattice - breaks the induction (no
   global order survives the wrap), and wrapped regions genuinely admit
   several covers; that wrap freedom is exactly what schedule repair
   uses. *)
let cover_region ~region ~prototile ?torus ?(max_solutions = 64) ?keep () =
  let norm = match torus with Some lam -> Sublattice.reduce lam | None -> fun v -> v in
  let cells = List.sort_uniq Vec.compare region in
  let n = List.length cells in
  if n = 0 then invalid_arg "Search.cover_region: empty region";
  let cell_arr = Array.of_list cells in
  let id_of = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i v ->
      let key = norm v in
      if Hashtbl.mem id_of key then
        invalid_arg "Search.cover_region: region cells congruent mod the torus";
      Hashtbl.replace id_of key i)
    cell_arr;
  let tile_cells = Prototile.cells prototile in
  let m = List.length tile_cells in
  let tile_ids t =
    let ids = List.filter_map (fun n0 -> Hashtbl.find_opt id_of (norm (Vec.add t n0))) tile_cells in
    (* Inside the region, with all [m] cells distinct (a self-overlapping
       placement on the torus covers fewer than [m] distinct cells). *)
    if List.length ids = m && List.length (List.sort_uniq compare ids) = m then Some ids
    else None
  in
  let anchors =
    List.concat_map (fun c -> List.map (fun n0 -> norm (Vec.sub c n0)) tile_cells) cells
    |> List.sort_uniq Vec.compare
    |> List.filter (fun t -> tile_ids t <> None)
    |> Array.of_list
  in
  let npl = Array.length anchors in
  let mask =
    Array.map
      (fun t ->
        let b = Bitset.create n in
        (match tile_ids t with
        | Some ids -> List.iter (Bitset.set b) ids
        | None -> assert false);
        b)
      anchors
  in
  (* cand.(c): placements covering cell c; conf.(p): placements whose
     masks intersect p's (p included), killed when p is placed. *)
  let cand = Array.init n (fun _ -> Bitset.create npl) in
  Array.iteri (fun p m -> Bitset.iter (fun c -> Bitset.set cand.(c) p) m) mask;
  let conf =
    Array.init npl (fun p ->
        let b = Bitset.create npl in
        for q = 0 to npl - 1 do
          if not (Bitset.disjoint mask.(p) mask.(q)) then Bitset.set b q
        done;
        b)
  in
  let keep = match keep with Some f -> f | None -> fun _ -> true in
  let sols = ref [] in
  let found = ref 0 in
  let rec go covered live chosen =
    if !found >= max_solutions then ()
    else if Bitset.popcount covered = n then begin
      let ts = List.sort Vec.compare (List.map (fun p -> anchors.(p)) chosen) in
      if keep ts then begin
        incr found;
        sols := ts :: !sols
      end
    end
    else begin
      let best = ref (-1) in
      let best_count = ref max_int in
      for c = 0 to n - 1 do
        if not (Bitset.mem covered c) then begin
          let k = Bitset.inter_popcount cand.(c) live in
          if k < !best_count then begin
            best_count := k;
            best := c
          end
        end
      done;
      if !best_count > 0 then
        Bitset.iter
          (fun p ->
            if !found < max_solutions && Bitset.mem live p then begin
              let covered' = Bitset.copy covered in
              Bitset.union covered' mask.(p);
              let live' = Bitset.copy live in
              Bitset.diff live' conf.(p);
              go covered' live' (p :: chosen)
            end)
          cand.(!best)
    end
  in
  go (Bitset.create n) (Bitset.full npl) [];
  List.rev !sols

let exactness ?(torus_factors = default_factors) p =
  if Prototile.dim p = 2 && Polyomino.is_polyomino p then
    if Boundary_word.is_exact_polyomino p then `Exact else `NotExact
  else if find_tiling ~torus_factors p <> None then `Exact
  else `Unknown
