(** Finding tilings and deciding exactness (question Q1 of the paper).

    Three engines, by generality:

    - {!lattice_tilings}: enumerate all sublattices of index [|N|] and keep
      those for which the prototile's cells form a complete residue
      system.  Finds exactly the tilings with [T] a sublattice.
    - {!cover_torus}: exact-cover backtracking on a finite quotient
      [Z^d / Lambda], finding every periodic tiling with that period
      (including multi-prototile and non-lattice ones, e.g. the S/Z mix of
      Figure 5).
    - {!exactness}: the decision procedure. For simply-connected 2-D
      polyominoes the Beauquier-Nivat criterion is complete
      (together with Wijshoff-van Leeuwen's periodicity theorem); for
      arbitrary prototiles we search periods up to a bounded index
      multiple and report [`Unknown] on exhaustion - the general problem
      is open, and even prime-size prototiles can require non-lattice
      translation sets (e.g. [{0, 2}] in [Z] tiles only with
      [T = {0,1} + 4Z]). *)

val lattice_tilings :
  ?pool:Parallel.pool -> ?sched:Parallel.sched -> Lattice.Prototile.t -> Lattice.Sublattice.t list
(** All period sublattices [Lambda] of index [|N|] with the cells pairwise
    non-congruent mod [Lambda]; each yields [Single.lattice_tiling].

    The HNF enumeration is partitioned by diagonal family
    ({!Lattice.Sublattice.hnf_diagonals}) and the families are checked on
    the pool's domains (default {!Parallel.default}) under [sched]
    (default {!Parallel.default_sched}); the result list is identical to
    the sequential enumeration at every pool size and scheduler. *)

val find_lattice_tiling : Lattice.Prototile.t -> Single.t option

type engine = [ `Backtracking | `Bitmask | `Dlx ]
(** Exact-cover solvers behind {!cover_torus}, all enumerating the
    {e same} solutions in the {e same} order (the differential tests
    assert list equality, not set equality):

    - [`Bitmask] (the default): word-parallel kernel on {!Bitset} masks.
      Each placement's cover mask (cells) and conflict mask (overlapping
      placements) are precomputed once; the live-placement set and
      per-cell live-candidate counts are updated incrementally on
      place/unplace, so cell selection is O(cells) integer reads and
      candidate freeness is one bit test.
    - [`Backtracking]: the simple most-constrained-cell list
      backtracker, kept as a differential oracle.
    - [`Dlx]: Knuth's Algorithm X with dancing links ({!Dlx}), the
      second oracle. *)

val cover_torus :
  period:Lattice.Sublattice.t ->
  prototiles:Lattice.Prototile.t list ->
  ?max_solutions:int ->
  ?engine:engine ->
  ?keep:(Multi.t -> bool) ->
  ?pool:Parallel.pool ->
  ?sched:Parallel.sched ->
  unit ->
  Multi.t list
(** All exact covers of the quotient by translates of the prototiles
    (at most [max_solutions], default 64). Placements that self-overlap on
    the torus are excluded: they correspond to T2 violations in [Z^d].
    Prototiles unused by a particular solution are dropped from its piece
    list.

    [keep] filters {e during} the search: only solutions it accepts are
    returned or counted against [max_solutions], in every engine and
    every parallel subtree, so a filtered search stops as soon as enough
    acceptable covers exist instead of over-sampling (default: keep
    everything).  The result equals
    [List.filter keep (unfiltered enumeration)] truncated to
    [max_solutions].

    All engines share one branching rule - first strict-minimum
    uncovered cell, candidates in placement order - so they return
    identical ordered lists; [`Bitmask] is the fast path, the other two
    are oracles ({!engine}).

    {b Determinism contract.}  With a [pool] of more than one domain
    (default {!Parallel.default}), the search splits at the root
    branching cell - the most constrained cell, which is also the first
    column the sequential engines branch on - and solves one subtree per
    candidate placement across the domains.  How subtrees reach domains
    is [sched]'s business (default {!Parallel.default_sched}):

    - [`Steal]: root subtrees are seeded over per-worker deques
      longest-first (a live-placement-count cost model) and migrate by
      work stealing; under [`Bitmask] a running subtree additionally
      {e re-splits lazily} when a thief starves, giving away the untried
      branches of its shallowest open frame.  Results commit as chunks
      keyed by canonical subtree path and are merged in key order.
    - [`Static]: the original fixed split (two levels deep for
      [`Bitmask] when the root has fewer than twice [jobs] candidates),
      merged in branch order - kept as the differential oracle.

    Under both schedulers each subtree enumerates in the sequential
    order and the merge reproduces the sequential consumption order, so
    the returned list (contents {e and} order) is bit-identical to the
    [jobs = 1] run at every pool size, scheduler, and interleaving; the
    determinism matrix and the steal-schedule fuzzer enforce this. *)

val count_torus_covers :
  period:Lattice.Sublattice.t ->
  prototiles:Lattice.Prototile.t list ->
  ?engine:engine ->
  ?pool:Parallel.pool ->
  ?sched:Parallel.sched ->
  unit ->
  int
(** Number of exact covers of the quotient - the length of the full
    {!cover_torus} enumeration ([max_solutions = max_int], no [keep]) -
    without materializing any solution.  The engines traverse exactly
    the same tree in the same order as {!cover_torus}; skipping
    per-solution recording and {!Multi.t} construction is what makes
    counting the pure measure of search speed (EXP-P2 benches both).
    Engine and pool semantics are as in {!cover_torus}; every engine and
    every pool size returns the same count. *)

val distinct_torus_covers :
  period:Lattice.Sublattice.t ->
  prototiles:Lattice.Prototile.t list ->
  ?max_classes:int ->
  ?engine:engine ->
  ?pool:Parallel.pool ->
  ?sched:Parallel.sched ->
  unit ->
  Multi.t list
(** Representatives of the translation-congruence classes of {e all}
    torus covers: two covers are congruent when translating one by some
    [u] in [Z^d] maps it onto the other (equivalently, by some canonical
    coset representative - period translations fix every cover).  Each
    class is keyed by the lexicographically least of its [index]
    translated serializations; the first cover of each class in the
    {!cover_torus} enumeration order is kept, and the first
    [max_classes] representatives (default: all) are returned in that
    order.

    Congruent covers use the same tile {e shapes} at shifted positions,
    so they induce genuinely different slot assignments to sensors -
    these classes are the raw material for duty-cycle rotation
    ([Lifetime.Rotation]).  The underlying enumeration is exhaustive
    ([max_solutions = max_int]), so this is for the small periods
    rotation actually uses; engine/pool/sched semantics (and
    determinism) are those of {!cover_torus}. *)

val cover_region :
  region:Zgeom.Vec.t list ->
  prototile:Lattice.Prototile.t ->
  ?torus:Lattice.Sublattice.t ->
  ?max_solutions:int ->
  ?keep:(Zgeom.Vec.t list -> bool) ->
  unit ->
  Zgeom.Vec.t list list
(** All exact covers of the finite cell set [region] by whole translates
    of [prototile] (at most [max_solutions], default 64): each solution
    is the sorted list of translations [t] with the [t + N] partitioning
    the region.  Candidate translations are exactly those with
    [t + N] inside the region, tried in ascending {!Zgeom.Vec.compare}
    order under the engines' shared branching rule (first strict-minimum
    uncovered cell), so the enumeration order is deterministic.  [keep]
    filters during the search, as in {!cover_torus}: only accepted
    solutions count against [max_solutions].  Duplicate region cells are
    merged; the empty region is rejected.

    In plane mode (no [torus]) the answer is 0 or 1 covers, always: an
    exact cover of a finite region by translates of one prototile is
    unique when it exists.  (Proof: the lexicographically least
    uncovered cell [c] must be covered by the translate placing the
    tile's least cell at [c] - any other placement would put a
    lexicographically smaller tile cell inside the region, still
    uncovered - and induction on the remaining cells finishes.)

    With [torus = Lambda] all arithmetic happens mod the sublattice:
    region cells must be pairwise non-congruent ([Invalid_argument]
    otherwise), candidate translations are canonical coset
    representatives, tiles wrap, and self-overlapping placements are
    discarded.  Wrapped regions escape the uniqueness argument (no
    global order survives the wrap) and genuinely admit several covers
    - e.g. a full wrapped row of horizontal bars slides freely.  That
    wrap freedom is the repair kernel of the lifetime subsystem: the
    damaged window around a dead sensor is a finite region on the
    deployment torus, and any cover found here splices back into the
    periodic schedule ([Lifetime.Repair]). *)

val find_tiling :
  ?torus_factors:int list -> Lattice.Prototile.t -> Single.t option
(** A single-prototile periodic tiling if one is found: first among
    lattice tilings, then among torus covers with period index
    [f * |N|] for [f] in [torus_factors] (default [1..4]). *)

val exactness :
  ?torus_factors:int list ->
  Lattice.Prototile.t ->
  [ `Exact | `NotExact | `Unknown ]
(** Complete for 2-D simply-connected polyominoes (BN criterion);
    otherwise a bounded search that can return [`Unknown]. *)

val find_respectable :
  ?torus_factors:int list ->
  Lattice.Prototile.t list ->
  ?max_solutions:int ->
  unit ->
  Multi.t list
(** Respectable multi-prototile tilings (Section 4): searches torus
    covers over periods of index [f * |N1|] for [f] in [torus_factors]
    (default [1..4]), keeping only solutions that use every prototile and
    are respectable. The first prototile must contain all others.

    The filter runs inside {!cover_torus} (its [keep] argument), so the
    search stops as soon as [max_solutions] respectable covers are found
    rather than over-sampling each period. *)
