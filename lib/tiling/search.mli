(** Finding tilings and deciding exactness (question Q1 of the paper).

    Three engines, by generality:

    - {!lattice_tilings}: enumerate all sublattices of index [|N|] and keep
      those for which the prototile's cells form a complete residue
      system.  Finds exactly the tilings with [T] a sublattice.
    - {!cover_torus}: exact-cover backtracking on a finite quotient
      [Z^d / Lambda], finding every periodic tiling with that period
      (including multi-prototile and non-lattice ones, e.g. the S/Z mix of
      Figure 5).
    - {!exactness}: the decision procedure. For simply-connected 2-D
      polyominoes the Beauquier-Nivat criterion is complete
      (together with Wijshoff-van Leeuwen's periodicity theorem); for
      arbitrary prototiles we search periods up to a bounded index
      multiple and report [`Unknown] on exhaustion - the general problem
      is open, and even prime-size prototiles can require non-lattice
      translation sets (e.g. [{0, 2}] in [Z] tiles only with
      [T = {0,1} + 4Z]). *)

val lattice_tilings : ?pool:Parallel.pool -> Lattice.Prototile.t -> Lattice.Sublattice.t list
(** All period sublattices [Lambda] of index [|N|] with the cells pairwise
    non-congruent mod [Lambda]; each yields [Single.lattice_tiling].

    The HNF enumeration is partitioned by diagonal family
    ({!Lattice.Sublattice.hnf_diagonals}) and the families are checked on
    the pool's domains (default {!Parallel.default}); the result list is
    identical to the sequential enumeration at every pool size. *)

val find_lattice_tiling : Lattice.Prototile.t -> Single.t option

val cover_torus :
  period:Lattice.Sublattice.t ->
  prototiles:Lattice.Prototile.t list ->
  ?max_solutions:int ->
  ?engine:[ `Backtracking | `Dlx ] ->
  ?pool:Parallel.pool ->
  unit ->
  Multi.t list
(** All exact covers of the quotient by translates of the prototiles
    (at most [max_solutions], default 64). Placements that self-overlap on
    the torus are excluded: they correspond to T2 violations in [Z^d].
    Prototiles unused by a particular solution are dropped from its piece
    list.

    [engine] selects the solver: the default [`Backtracking] is a simple
    most-constrained-cell backtracker; [`Dlx] is Knuth's Algorithm X with
    dancing links ({!Dlx}). Both return the same solution set (tests
    enforce it); DLX is faster on larger quotients.

    {b Determinism contract.}  With a [pool] of more than one domain
    (default {!Parallel.default}), the search splits at the root
    branching cell - the most constrained cell, which is also the first
    column either sequential engine would branch on - and solves one
    subtree per candidate placement across the domains, merging the
    per-subtree solution lists in branch order and truncating to
    [max_solutions].  Each subtree enumerates in its engine's sequential
    order, and the sequential engine consumes subtrees in exactly this
    order, so the returned list (contents {e and} order) is bit-identical
    to the [jobs = 1] run of the same engine at every pool size; the
    determinism tests enforce this. *)

val find_tiling :
  ?torus_factors:int list -> Lattice.Prototile.t -> Single.t option
(** A single-prototile periodic tiling if one is found: first among
    lattice tilings, then among torus covers with period index
    [f * |N|] for [f] in [torus_factors] (default [1..4]). *)

val exactness :
  ?torus_factors:int list ->
  Lattice.Prototile.t ->
  [ `Exact | `NotExact | `Unknown ]
(** Complete for 2-D simply-connected polyominoes (BN criterion);
    otherwise a bounded search that can return [`Unknown]. *)

val find_respectable :
  ?torus_factors:int list ->
  Lattice.Prototile.t list ->
  ?max_solutions:int ->
  unit ->
  Multi.t list
(** Respectable multi-prototile tilings (Section 4): searches torus
    covers over periods of index [f * |N1|] for [f] in [torus_factors]
    (default [1..4]), keeping only solutions that use every prototile and
    are respectable. The first prototile must contain all others. *)
