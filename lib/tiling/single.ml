open Zgeom
open Lattice

type t = {
  prototile : Prototile.t;
  period : Sublattice.t;
  offsets : Vec.t list;
  offset_set : Vec.Set.t;
  (* cover.(coset_id v) = (offset, cell) of the unique tile covering the
     coset of [v]; the actual translation is recovered as [v - cell
     + correction], see [tile_of]. *)
  cover : (Vec.t * Vec.t * int) array;
}

let build prototile period offsets =
  let cells = Prototile.cells prototile in
  let m = List.length cells in
  let idx = Sublattice.index period in
  if m * List.length offsets <> idx then
    Error
      (Printf.sprintf "tile count mismatch: %d offsets x %d cells <> index %d"
         (List.length offsets) m idx)
  else begin
    let cover = Array.make idx None in
    let clash = ref None in
    List.iter
      (fun o ->
        List.iteri
          (fun k n ->
            if !clash = None then begin
              let id = Sublattice.coset_id period (Vec.add o n) in
              match cover.(id) with
              | None -> cover.(id) <- Some (o, n, k)
              | Some (o', n', _) ->
                clash :=
                  Some
                    (Printf.sprintf "overlap: %s+%s and %s+%s agree mod the period"
                       (Vec.to_string o') (Vec.to_string n') (Vec.to_string o)
                       (Vec.to_string n))
            end)
          cells)
      offsets;
    match !clash with
    | Some msg -> Error msg
    | None ->
      (* Counting: idx slots, idx placements, no clash => total cover. *)
      let cover = Array.map Option.get cover in
      Ok { prototile; period; offsets; offset_set = Vec.Set.of_list offsets; cover }
  end

let make ~prototile ~period ~offsets =
  if Prototile.dim prototile <> Sublattice.dim period then Error "dimension mismatch"
  else if List.exists (fun o -> Vec.dim o <> Sublattice.dim period) offsets then
    Error "offset dimension mismatch"
  else begin
    let offsets =
      List.map (Sublattice.reduce period) offsets |> Vec.Set.of_list |> Vec.Set.elements
    in
    build prototile period offsets
  end

let make_exn ~prototile ~period ~offsets =
  match make ~prototile ~period ~offsets with
  | Ok t -> t
  | Error msg -> invalid_arg ("Tiling.Single.make: " ^ msg)

let lattice_tiling prototile period =
  make ~prototile ~period ~offsets:[ Vec.zero (Prototile.dim prototile) ]

let prototile t = t.prototile
let period t = t.period
let offsets t = t.offsets
let dim t = Prototile.dim t.prototile
let slots t = Prototile.size t.prototile

let in_translation_set t v = Vec.Set.mem (Sublattice.reduce t.period v) t.offset_set

let tile_of t v =
  let o, n, _ = t.cover.(Sublattice.coset_id t.period v) in
  let s = Vec.sub v n in
  assert (Vec.equal (Sublattice.reduce t.period s) o);
  (s, n)

let cell_index t v =
  let _, _, k = t.cover.(Sublattice.coset_id t.period v) in
  k

let iter_window dim radius f =
  let rec go i prefix =
    if i = dim then f (Vec.of_list (List.rev prefix))
    else
      for x = -radius to radius do
        go (i + 1) (x :: prefix)
      done
  in
  go 0 []

let check_window t ~radius =
  let ok = ref true in
  let d = dim t in
  let cells = Prototile.cells t.prototile in
  iter_window d radius (fun v ->
      (* Count tiles covering v by scanning candidate translations v - n. *)
      let covers =
        List.length (List.filter (fun n -> in_translation_set t (Vec.sub v n)) cells)
      in
      if covers <> 1 then ok := false);
  !ok

let translations_in_window t ~radius =
  let d = dim t in
  let acc = ref Vec.Set.empty in
  let cells = Prototile.cells t.prototile in
  iter_window d radius (fun v ->
      List.iter
        (fun n ->
          let s = Vec.sub v n in
          if in_translation_set t s then acc := Vec.Set.add s !acc)
        cells);
  Vec.Set.elements !acc

let pp fmt t =
  Format.fprintf fmt "@[<v>tiling: %d-cell prototile, period index %d, %d offset(s)@,%a@]"
    (slots t) (Sublattice.index t.period) (List.length t.offsets) Sublattice.pp t.period
