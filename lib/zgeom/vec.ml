type t = int array

let of_array a = Array.copy a
let of_list = Array.of_list
let to_array = Array.copy
let to_list = Array.to_list
let make2 x y = [| x; y |]

let x v =
  assert (Array.length v >= 1);
  v.(0)

let y v =
  assert (Array.length v >= 2);
  v.(1)

let coord v i = v.(i)
let dim = Array.length
let zero d = Array.make d 0

let add a b =
  assert (Array.length a = Array.length b);
  Array.mapi (fun i ai -> ai + b.(i)) a

let sub a b =
  assert (Array.length a = Array.length b);
  Array.mapi (fun i ai -> ai - b.(i)) a

let neg a = Array.map (fun ai -> -ai) a
let scale k a = Array.map (fun ai -> k * ai) a

let dot a b =
  assert (Array.length a = Array.length b);
  let s = ref 0 in
  for i = 0 to Array.length a - 1 do
    s := !s + (a.(i) * b.(i))
  done;
  !s

let norm1 a = Array.fold_left (fun s ai -> s + abs ai) 0 a
let norm_inf a = Array.fold_left (fun s ai -> max s (abs ai)) 0 a
let norm2_sq a = dot a a

let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i = i >= la || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

(* Same order as polymorphic [Stdlib.compare] on int arrays - length
   first, then lexicographic - but monomorphic, so the sorts in the
   tiling constructors stay out of the generic comparison runtime. *)
let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let ai = Array.unsafe_get a i and bi = Array.unsafe_get b i in
        if ai < bi then -1 else if ai > bi then 1 else go (i + 1)
    in
    go 0

let is_zero a = Array.for_all (fun ai -> ai = 0) a

let hash (a : t) = Hashtbl.hash a

let pp fmt v =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_int)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let rot90 v =
  assert (Array.length v = 2);
  [| -v.(1); v.(0) |]

let reflect_x v =
  assert (Array.length v = 2);
  [| v.(0); -v.(1) |]
