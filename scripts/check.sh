#!/bin/sh
# Repository health check: what CI runs, runnable locally.
#   sh scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

# Build artifacts must never be committed (.gitignore covers _build/ and
# out/; this catches force-adds).
tracked=$(git ls-files -- '_build/*' 'out/*' '*.install')
if [ -n "$tracked" ]; then
  echo "error: build artifacts tracked in git:" >&2
  echo "$tracked" >&2
  exit 1
fi

# Zero-byte tracked files are stray editor/alias leftovers, never
# intentional in this repo.
empty=$(git ls-files | while read -r f; do
  [ -f "$f" ] && [ ! -s "$f" ] && echo "$f" || true
done)
if [ -n "$empty" ]; then
  echo "error: zero-byte files tracked in git:" >&2
  echo "$empty" >&2
  exit 1
fi

dune build @all
dune runtest

# Project-invariant static analysis (DESIGN.md section 10): determinism,
# forbidden constructs, Parallel task purity, fsync-before-rename,
# interface coverage.  Exits nonzero on any finding.
dune exec bin/tilesched.exe -- lint

# The BENCH_5.json pipeline must stay machine-readable end to end: a
# tiny-quota run writes the artifact, the strict validator re-reads it
# (schema + the three required torus-engine rows).
bench_json=/tmp/tilesched-bench5-smoke.json
dune exec bin/tilesched.exe -- bench --json "$bench_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --validate "$bench_json"
rm -f "$bench_json"

# Same contract for BENCH_6.json, the EXP-P3 scheduler suite (skewed
# instance, sequential vs static-j4 vs steal-j4).  Only the schema and
# required rows are asserted here: the steal-vs-static separation needs
# real cores and is read off the multi-core CI artifact instead.
bench6_json=/tmp/tilesched-bench6-smoke.json
dune exec bin/tilesched.exe -- bench --skew --json "$bench6_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --skew --validate "$bench6_json"
rm -f "$bench6_json"

# And for BENCH_7.json, the EXP-L1 lifetime suite (static vs rotating
# first-death slots, repair-solver timings).  The committed artifact is
# schema-checked too, so a stale in-repo copy fails fast.
bench7_json=/tmp/tilesched-bench7-smoke.json
dune exec bin/tilesched.exe -- bench --lifetime --json "$bench7_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --lifetime --validate "$bench7_json"
rm -f "$bench7_json"
dune exec bin/tilesched.exe -- bench --lifetime --validate BENCH_7.json

echo "all checks passed"
