#!/bin/sh
# Repository health check: what CI runs, runnable locally.
#   sh scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

# Build artifacts must never be committed (.gitignore covers _build/ and
# out/; this catches force-adds).
tracked=$(git ls-files -- '_build/*' 'out/*' '*.install')
if [ -n "$tracked" ]; then
  echo "error: build artifacts tracked in git:" >&2
  echo "$tracked" >&2
  exit 1
fi

# Zero-byte tracked files are stray editor/alias leftovers, never
# intentional in this repo.
empty=$(git ls-files | while read -r f; do
  [ -f "$f" ] && [ ! -s "$f" ] && echo "$f" || true
done)
if [ -n "$empty" ]; then
  echo "error: zero-byte files tracked in git:" >&2
  echo "$empty" >&2
  exit 1
fi

dune build @all
dune runtest

# Project-invariant static analysis (DESIGN.md sections 10 and 15):
# the syntactic rules (determinism, forbidden constructs, Parallel task
# purity, fsync-before-rename, interface coverage) plus the typedtree
# dataflow layer (interprocedural determinism taint, lock discipline,
# resource lifetime).  Exits nonzero on any finding.
dune exec bin/tilesched.exe -- lint

# The SARIF emitter must stay schema-valid: emit the same scan as SARIF
# and structurally check the 2.1.0 essentials (CI uploads this file as
# an artifact).
sarif_out=/tmp/tilesched-lint.sarif
dune exec bin/tilesched.exe -- lint --format sarif > "$sarif_out"
python3 - "$sarif_out" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", "version"
assert doc["$schema"].endswith("sarif-2.1.0.json"), "schema ref"
runs = doc["runs"]
assert isinstance(runs, list) and runs, "runs"
driver = runs[0]["tool"]["driver"]
assert driver["name"] == "tilesched-lint", "driver name"
rules = {r["id"] for r in driver["rules"]}
for rid in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "P0", "A0", "B0"]:
    assert rid in rules, "missing rule descriptor " + rid
for res in runs[0]["results"]:
    assert res["ruleId"] in rules, "result ruleId not declared"
    assert res["message"]["text"], "message text"
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"], "artifact uri"
    assert loc["region"]["startLine"] >= 1, "startLine"
    assert loc["region"]["startColumn"] >= 1, "startColumn"
print("sarif ok (%d results)" % len(runs[0]["results"]))
PY
rm -f "$sarif_out"

# The BENCH_5.json pipeline must stay machine-readable end to end: a
# tiny-quota run writes the artifact, the strict validator re-reads it
# (schema + the three required torus-engine rows).
bench_json=/tmp/tilesched-bench5-smoke.json
dune exec bin/tilesched.exe -- bench --json "$bench_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --validate "$bench_json"
rm -f "$bench_json"

# Same contract for BENCH_6.json, the EXP-P3 scheduler suite (skewed
# instance, sequential vs static-j4 vs steal-j4).  Only the schema and
# required rows are asserted here: the steal-vs-static separation needs
# real cores and is read off the multi-core CI artifact instead.
bench6_json=/tmp/tilesched-bench6-smoke.json
dune exec bin/tilesched.exe -- bench --skew --json "$bench6_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --skew --validate "$bench6_json"
rm -f "$bench6_json"

# And for BENCH_7.json, the EXP-L1 lifetime suite (static vs rotating
# first-death slots, repair-solver timings).
bench7_json=/tmp/tilesched-bench7-smoke.json
dune exec bin/tilesched.exe -- bench --lifetime --json "$bench7_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --lifetime --validate "$bench7_json"
rm -f "$bench7_json"

# And for BENCH_8.json, the EXP-CORPUS corpus suite (mmap snapshot vs
# certificate store, warm and cold-start lookups).
bench8_json=/tmp/tilesched-bench8-smoke.json
dune exec bin/tilesched.exe -- bench --corpus --json "$bench8_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --corpus --validate "$bench8_json"
rm -f "$bench8_json"

# And for BENCH_10.json, the EXP-SRV2 wire-protocol suite (binary vs
# text throughput through the epoll daemon, 10k-connection open-loop
# percentiles).  The open-loop leg holds 10k client sockets in the
# bench process and 10k accepted ones in the daemon, so raise the fd
# soft limit where the hard limit allows.
ulimit -n 20000 2>/dev/null || true
bench10_json=/tmp/tilesched-bench10-smoke.json
dune exec bin/tilesched.exe -- bench --server --json "$bench10_json" --quota 0.02 > /dev/null
dune exec bin/tilesched.exe -- bench --server --validate "$bench10_json"
rm -f "$bench10_json"

# Every committed BENCH_*.json must validate against its own suite's
# schema, so a stale in-repo artifact fails fast.  The suffix picks the
# suite; an artifact this map doesn't know is itself an error.
for artifact in $(git ls-files 'BENCH_*.json'); do
  case "$artifact" in
    BENCH_5.json) flag="" ;;
    BENCH_6.json) flag="--skew" ;;
    BENCH_7.json) flag="--lifetime" ;;
    BENCH_8.json) flag="--corpus" ;;
    BENCH_10.json) flag="--server" ;;
    *)
      echo "error: $artifact: no validation suite mapped for this artifact" >&2
      exit 1
      ;;
  esac
  # shellcheck disable=SC2086
  dune exec bin/tilesched.exe -- bench $flag --validate "$artifact"
done

# Corpus pipeline smoke: a tiny campaign must build, report the exact
# n<=5 class counts, and survive full offline verification (CRCs, index
# reachability, certificate re-proofs).
corpus_dir=/tmp/tilesched-corpus-smoke
rm -rf "$corpus_dir"
dune exec bin/tilesched.exe -- corpus build -d "$corpus_dir" -n 5 > /dev/null
dune exec bin/tilesched.exe -- corpus stats -d "$corpus_dir" | grep -q 'total classes=21 exact=18 non-exact=3'
dune exec bin/tilesched.exe -- corpus verify -d "$corpus_dir" | grep -q 'ok (21 records'
rm -rf "$corpus_dir"

# The committed BENCH_8.json must show the mmap snapshot beating the
# replay-the-log store where it matters: cold start.  (Warm lookups are
# a hashtable-vs-mmap-binary-search race the store can win; the
# cold-start gap is the tier's reason to exist.)
awk '
  /corpus-mmap-coldstart-find/  { if (match($0, /"ns_per_call": [0-9.eE+-]+/)) mmap  = substr($0, RSTART + 15, RLENGTH - 15) }
  /corpus-store-coldstart-find/ { if (match($0, /"ns_per_call": [0-9.eE+-]+/)) store = substr($0, RSTART + 15, RLENGTH - 15) }
  END {
    if (mmap == "" || store == "") { print "error: BENCH_8.json: missing cold-start rows" > "/dev/stderr"; exit 1 }
    if (mmap + 0 > store + 0) {
      printf "error: BENCH_8.json: mmap cold start (%s ns) slower than store (%s ns)\n", mmap, store > "/dev/stderr"
      exit 1
    }
  }
' BENCH_8.json

# The committed BENCH_10.json must show the binary wire protocol
# earning its keep: at least 5x the text dialect's throughput on warm
# corpus hits, and a 10k-connection open-loop run that dropped nothing.
awk '
  /server-binary-vs-text-speedup/ { if (match($0, /"ns_per_call": [0-9.eE+-]+/)) speedup = substr($0, RSTART + 15, RLENGTH - 15) }
  /server-open-10k-dropped/       { if (match($0, /"ns_per_call": [0-9.eE+-]+/)) dropped = substr($0, RSTART + 15, RLENGTH - 15) }
  END {
    if (speedup == "" || dropped == "") { print "error: BENCH_10.json: missing speedup or dropped rows" > "/dev/stderr"; exit 1 }
    if (speedup + 0 < 5.0) {
      printf "error: BENCH_10.json: binary/text speedup %s below the 5x gate\n", speedup > "/dev/stderr"
      exit 1
    }
    if (dropped + 0 != 0) {
      printf "error: BENCH_10.json: open-loop run dropped %s frames\n", dropped > "/dev/stderr"
      exit 1
    }
  }
' BENCH_10.json

echo "all checks passed"
