(* Property tests for the bitset kernel underneath the [`Bitmask]
   exact-cover engine: every operation is checked against a naive
   Set.Make(Int) model, with widths straddling the word boundary
   (Sys.int_size = 63, so 62/63/64 and 125/126/127 are the edges). *)

module B = Tiling.Bitset
module IS = Set.Make (Int)

(* Widths that exercise 0, 1 and 2+ words and both sides of each word
   boundary. *)
let widths = [ 0; 1; 2; 7; 62; 63; 64; 65; 125; 126; 127; 200 ]

let model_of b = IS.of_list (B.to_list b)

let check_against_model name b model =
  Alcotest.(check (list int)) (name ^ ": to_list = model elements") (IS.elements model)
    (B.to_list b);
  Alcotest.(check int) (name ^ ": popcount = cardinal") (IS.cardinal model) (B.popcount b);
  Alcotest.(check bool) (name ^ ": is_empty") (IS.is_empty model) (B.is_empty b);
  for i = 0 to B.length b - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s: mem %d" name i)
      (IS.mem i model) (B.mem b i)
  done

let test_create_full_boundaries () =
  List.iter
    (fun n ->
      let empty = B.create n in
      let all = B.full n in
      Alcotest.(check int) "create length" n (B.length empty);
      check_against_model (Printf.sprintf "create %d" n) empty IS.empty;
      check_against_model
        (Printf.sprintf "full %d" n)
        all
        (IS.of_list (List.init n Fun.id));
      (* full/create must agree with set/reset one bit at a time. *)
      if n > 0 then begin
        let b = B.create n in
        B.set b 0;
        B.set b (n - 1);
        B.reset b 0;
        (* at n = 1 the two indices coincide, so the reset clears both *)
        check_against_model "set/reset edges" b (IS.remove 0 (IS.of_list [ 0; n - 1 ]))
      end)
    widths

let test_out_of_range_rejected () =
  let b = B.create 10 in
  List.iter
    (fun i ->
      match B.mem b i with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "mem %d should raise" i))
    [ -1; 10; 63 ];
  (match B.set b 10 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set out of range should raise");
  match B.union b (B.create 11) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "width mismatch should raise"

let test_iter_ascending () =
  List.iter
    (fun n ->
      let b = B.full n in
      let seen = ref [] in
      B.iter (fun i -> seen := i :: !seen) b;
      Alcotest.(check (list int))
        (Printf.sprintf "iter ascending, width %d" n)
        (List.init n Fun.id) (List.rev !seen))
    widths

(* Random subset of [0, n) driven by a QCheck-drawn seed: one Splitmix64
   stream decides width, membership and operation order, so failures
   replay from a single integer. *)
let qcheck_ops_match_set_model =
  let gen = QCheck.Gen.int_bound 1_000_000 in
  let arb = QCheck.make ~print:string_of_int gen in
  QCheck.Test.make ~name:"bitset ops = Set.Make(Int) model" ~count:200 arb (fun seed ->
      let sm = Prng.Splitmix64.create (Int64.of_int seed) in
      let draw bound =
        Int64.to_int (Int64.unsigned_rem (Prng.Splitmix64.next sm) (Int64.of_int bound))
      in
      let n = 1 + draw 200 in
      let random_subset () =
        let members = List.filter (fun _ -> draw 3 = 0) (List.init n Fun.id) in
        (B.of_list n members, IS.of_list members)
      in
      let ba, ma = random_subset () in
      let bb, mb = random_subset () in
      let binop_in_place op mop =
        let dst = B.copy ba in
        op dst bb;
        IS.equal (model_of dst) (mop ma mb)
      in
      binop_in_place B.union IS.union
      && binop_in_place B.diff IS.diff
      && binop_in_place B.inter IS.inter
      && begin
           let dst = B.create n in
           B.inter_into ~dst ba bb;
           IS.equal (model_of dst) (IS.inter ma mb)
         end
      && B.inter_popcount ba bb = IS.cardinal (IS.inter ma mb)
      && B.subset ba bb = IS.subset ma mb
      && B.subset ba (B.full n)
      && B.disjoint ba bb = IS.is_empty (IS.inter ma mb)
      && B.equal ba bb = IS.equal ma mb
      && B.equal ba (B.copy ba)
      && begin
           (* blit overwrites, preserving the trailing-bits invariant
              popcount relies on. *)
           let dst = B.full n in
           B.blit ~src:ba ~dst;
           IS.equal (model_of dst) ma && B.popcount dst = IS.cardinal ma
         end
      && B.to_list ba = IS.elements ma
      && begin
           (* set/reset round-trip on a random index. *)
           let i = draw n in
           let b = B.copy ba in
           B.set b i;
           let added = IS.equal (model_of b) (IS.add i ma) in
           B.reset b i;
           added && IS.equal (model_of b) (IS.remove i ma)
         end)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "create/full at word boundaries" `Quick test_create_full_boundaries;
          Alcotest.test_case "out of range rejected" `Quick test_out_of_range_rejected;
          Alcotest.test_case "iter ascending" `Quick test_iter_ascending;
          qc qcheck_ops_match_set_model;
        ] );
    ]
