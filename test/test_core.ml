(* Tests for the scheduling core: Theorems 1 and 2, optimality, finite
   restriction, mobile sensors. *)
open Zgeom
open Lattice

let find_tiling_exn p =
  match Tiling.Search.find_tiling p with
  | Some t -> t
  | None -> Alcotest.fail "prototile should tile"

(* --- Schedule / Theorem 1 --- *)

let theorem1_prototiles =
  [ ("cheb1", Prototile.chebyshev_ball ~dim:2 1); ("cheb2", Prototile.chebyshev_ball ~dim:2 2);
    ("euclid1", Prototile.euclidean_ball ~dim:2 1); ("euclid2", Prototile.euclidean_ball ~dim:2 2);
    ("manhattan2", Prototile.manhattan_ball ~dim:2 2); ("directional", Prototile.directional);
    ("rect3x2", Prototile.rect 3 2); ("S", Prototile.tetromino `S); ("L", Prototile.tetromino `L);
    ("T", Prototile.tetromino `T); ("X5", Prototile.pentomino `X); ("W5", Prototile.pentomino `W) ]

let test_theorem1_slot_count () =
  List.iter
    (fun (name, p) ->
      let t = find_tiling_exn p in
      let s = Core.Schedule.of_tiling t in
      Alcotest.(check int) (name ^ ": m = |N|") (Prototile.size p) (Core.Schedule.num_slots s);
      Alcotest.(check int)
        (name ^ ": all slots used")
        (Prototile.size p)
        (List.length (Core.Schedule.slots_used s)))
    theorem1_prototiles

let test_theorem1_collision_free () =
  List.iter
    (fun (name, p) ->
      let t = find_tiling_exn p in
      let s = Core.Schedule.of_tiling t in
      Alcotest.(check bool) (name ^ " collision-free") true
        (Core.Collision.is_collision_free_theorem1 t s))
    theorem1_prototiles

let test_theorem1_matches_cell_index () =
  let p = Prototile.directional in
  let t = find_tiling_exn p in
  let s = Core.Schedule.of_tiling t in
  for x = -5 to 5 do
    for y = -5 to 5 do
      let v = Vec.make2 x y in
      Alcotest.(check int) "slot = covering cell index" (Tiling.Single.cell_index t v)
        (Core.Schedule.slot_at s v)
    done
  done

let test_theorem1_3d () =
  let p = Prototile.chebyshev_ball ~dim:3 1 in
  (* 3x3x3 cube tiles Z^3 with period 3Z^3. *)
  let t =
    Tiling.Single.make_exn ~prototile:p
      ~period:(Sublattice.scaled 3 3)
      ~offsets:[ Vec.of_list [ 1; 1; 1 ] ]
  in
  let s = Core.Schedule.of_tiling t in
  Alcotest.(check int) "27 slots" 27 (Core.Schedule.num_slots s);
  Alcotest.(check bool) "collision-free in 3-D" true
    (Core.Collision.is_collision_free_theorem1 t s)

let test_may_send_periodicity () =
  let t = find_tiling_exn (Prototile.tetromino `S) in
  let s = Core.Schedule.of_tiling t in
  let v = Vec.make2 3 1 in
  let m = Core.Schedule.num_slots s in
  let slot = Core.Schedule.slot_at s v in
  Alcotest.(check bool) "sends at its slot" true (Core.Schedule.may_send s v ~time:slot);
  Alcotest.(check bool) "sends one period later" true
    (Core.Schedule.may_send s v ~time:(slot + m));
  Alcotest.(check bool) "sends at negative congruent time" true
    (Core.Schedule.may_send s v ~time:(slot - m));
  Alcotest.(check bool) "silent otherwise" false
    (Core.Schedule.may_send s v ~time:(slot + 1))

let test_bad_schedule_detected () =
  (* All sensors in slot 0: plenty of violations. *)
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = find_tiling_exn p in
  let period = Tiling.Single.period t in
  let table = Array.make (Sublattice.index period) 0 in
  let s = Core.Schedule.of_table ~period ~num_slots:(Prototile.size p) table in
  let v = Core.Collision.violations_theorem1 t s in
  Alcotest.(check bool) "violations found" true (v <> []);
  (* Each violation's witness really lies in both ranges. *)
  List.iter
    (fun viol ->
      let open Core.Collision in
      let ra = Prototile.translate viol.sender_a p in
      let rb = Prototile.translate viol.sender_b p in
      Alcotest.(check bool) "witness in range a" true (Vec.Set.mem viol.witness ra);
      Alcotest.(check bool) "witness in range b" true (Vec.Set.mem viol.witness rb))
    v

let test_fewer_slots_always_collide () =
  (* Optimality, checked mechanically: any periodic schedule on the
     tiling's quotient with m-1 slots has a violation. We test all
     "cyclic relabeling" schedules and random tables. *)
  let p = Prototile.euclidean_ball ~dim:2 1 in
  let t = find_tiling_exn p in
  let period = Tiling.Single.period t in
  let idx = Sublattice.index period in
  let m = Prototile.size p - 1 in
  let rng = Prng.Xoshiro.create 7L in
  for _ = 1 to 200 do
    let table = Array.init idx (fun _ -> Prng.Xoshiro.int rng m) in
    let s = Core.Schedule.of_table ~period ~num_slots:m table in
    Alcotest.(check bool) "m-1 slots collide" true
      (Core.Collision.violations_theorem1 t s <> [])
  done

let test_drift_injection () =
  let p = Prototile.chebyshev_ball ~dim:2 1 in
  let t = find_tiling_exn p in
  let s = Core.Schedule.of_tiling t in
  let zero_drift _ = 0 in
  Alcotest.(check int) "no drift, no violations" 0
    (List.length (Core.Collision.drift_violations t s ~drift_at:zero_drift ~horizon:9));
  let skew v = if Vec.x v mod 3 = 0 then 1 else 0 in
  Alcotest.(check bool) "skew causes violations" true
    (Core.Collision.drift_violations t s ~drift_at:skew ~horizon:9 <> [])

let test_relabel_preserves_collision_freedom () =
  let p = Prototile.euclidean_ball ~dim:2 1 in
  let t = find_tiling_exn p in
  let s = Core.Schedule.of_tiling t in
  let m = Core.Schedule.num_slots s in
  let rng = Prng.Xoshiro.create 53L in
  for _ = 1 to 20 do
    let perm = Array.init m Fun.id in
    Prng.Xoshiro.shuffle rng perm;
    let s' = Core.Schedule.relabel s perm in
    Alcotest.(check bool) "relabeled stays collision-free" true
      (Core.Collision.is_collision_free_theorem1 t s');
    Alcotest.(check int) "same slot count" m (Core.Schedule.num_slots s')
  done;
  (* Identity relabel is a no-op. *)
  let id = Core.Schedule.relabel s (Array.init m Fun.id) in
  Alcotest.(check int) "identity keeps slots" (Core.Schedule.slot_at s (Vec.make2 2 3))
    (Core.Schedule.slot_at id (Vec.make2 2 3))

let test_relabel_rejects_non_permutation () =
  let t = find_tiling_exn (Prototile.tetromino `S) in
  let s = Core.Schedule.of_tiling t in
  match Core.Schedule.relabel s [| 0; 0; 1; 2 |] with
  | exception Assert_failure _ -> ()
  | _ -> Alcotest.fail "non-permutation accepted"

(* --- Theorem 2 --- *)

let respectable_two_piece () =
  (* N1 = 2x2 square, N2 = single cell (subset of N1): tile a 5-index
     quotient: period (5,0),(0,1)? Build: squares at x=0 mod 5, singles
     at x=4 mod 5, row-periodic.  Use period (5,0),(0,2): cells: square
     covers (0..1)x(0..1); offsets singles (4,0),(4,1). *)
  let n1 = Prototile.rect 2 2 in
  let n2 = Prototile.of_cells [ Vec.zero 2 ] in
  let period = Sublattice.of_basis [| [| 5; 0 |]; [| 0; 2 |] |] in
  Tiling.Multi.make_exn ~period
    [ { Tiling.Multi.tile = n1; piece_offsets = [ Vec.zero 2; Vec.make2 2 0 ] };
      { Tiling.Multi.tile = n2; piece_offsets = [ Vec.make2 4 0; Vec.make2 4 1 ] } ]

let test_theorem2_respectable () =
  let m = respectable_two_piece () in
  Alcotest.(check bool) "respectable" true (Tiling.Multi.is_respectable m);
  let s = Core.Schedule.of_multi m in
  Alcotest.(check int) "m = |N1|" 4 (Core.Schedule.num_slots s);
  Alcotest.(check bool) "collision-free" true (Core.Collision.is_collision_free_multi m s);
  Alcotest.(check int) "ground-rule optimum = |N1|" 4 (Core.Optimality.ground_rule_minimum m)

let sz_mixed () =
  let s = Prototile.tetromino `S and z = Prototile.tetromino `Z in
  let period = Sublattice.of_basis [| [| 4; 0 |]; [| 0; 4 |] |] in
  Tiling.Search.cover_torus ~period ~prototiles:[ s; z ] ~max_solutions:200 ()
  |> List.filter (fun m -> List.length (Tiling.Multi.pieces m) = 2)

let test_theorem2_nonrespectable_collision_free () =
  (* The construction stays collision-free even without respectability. *)
  List.iteri
    (fun i m ->
      if i < 5 then begin
        let s = Core.Schedule.of_multi m in
        Alcotest.(check int) "6 slots (|S u Z|)" 6 (Core.Schedule.num_slots s);
        Alcotest.(check bool) "collision-free" true (Core.Collision.is_collision_free_multi m s)
      end)
    (sz_mixed ())

let test_figure5_six_vs_four () =
  let mixed = sz_mixed () in
  Alcotest.(check bool) "mixed tilings exist" true (mixed <> []);
  let optima = List.map Core.Optimality.ground_rule_minimum mixed in
  Alcotest.(check bool) "some mixed tiling needs 6 slots" true (List.mem 6 optima);
  List.iter
    (fun o -> Alcotest.(check bool) "optimum within [4, 6]" true (o >= 4 && o <= 6))
    optima;
  (* The symmetric pure-S tiling achieves 4. *)
  match Tiling.Search.find_lattice_tiling (Prototile.tetromino `S) with
  | None -> Alcotest.fail "S tiles"
  | Some t ->
    let m = Tiling.Multi.of_single t in
    Alcotest.(check int) "pure S needs only 4" 4 (Core.Optimality.ground_rule_minimum m)

let test_ground_rule_assignment_witness () =
  let m = List.hd (sz_mixed ()) in
  let k = Core.Optimality.ground_rule_minimum m in
  (match Core.Optimality.ground_rule_assignment m k with
  | None -> Alcotest.fail "assignment at the optimum must exist"
  | Some roles ->
    (* Within each piece, slots are pairwise distinct. *)
    let by_piece = Hashtbl.create 4 in
    List.iter
      (fun (r, c) ->
        let open Core.Optimality in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_piece r.piece) in
        Alcotest.(check bool) "injective per piece" false (List.mem c existing);
        Hashtbl.replace by_piece r.piece (c :: existing))
      roles);
  Alcotest.(check bool) "below optimum impossible" true
    (Core.Optimality.ground_rule_assignment m (k - 1) = None)

(* --- Optimality helpers --- *)

let test_lower_bound_and_clique () =
  List.iter
    (fun (_, p) ->
      Alcotest.(check int) "lower bound = size" (Prototile.size p) (Core.Optimality.lower_bound p);
      Alcotest.(check bool) "tile is a clique" true (Core.Optimality.tile_is_clique p))
    theorem1_prototiles

let test_chromatic_number_small_graphs () =
  let path3 = [| [| false; true; false |]; [| true; false; true |]; [| false; true; false |] |] in
  Alcotest.(check int) "path P3" 2 (Core.Optimality.chromatic_number path3);
  let k4 = Array.init 4 (fun i -> Array.init 4 (fun j -> i <> j)) in
  Alcotest.(check int) "K4" 4 (Core.Optimality.chromatic_number k4);
  let c5 =
    Array.init 5 (fun i -> Array.init 5 (fun j -> (j = (i + 1) mod 5) || (i = (j + 1) mod 5)))
  in
  Alcotest.(check int) "odd cycle C5" 3 (Core.Optimality.chromatic_number c5);
  let empty = Array.make_matrix 6 6 false in
  Alcotest.(check int) "empty graph" 1 (Core.Optimality.chromatic_number empty);
  Alcotest.(check int) "no vertices" 0 (Core.Optimality.chromatic_number [||])

let qcheck_coloring_proper =
  let gen =
    QCheck.Gen.(
      int_range 2 9 >>= fun n ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      let adj = Array.make_matrix n n false in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Prng.Xoshiro.bernoulli rng 0.4 then begin
            adj.(i).(j) <- true;
            adj.(j).(i) <- true
          end
        done
      done;
      adj)
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"chromatic number is achieved and tight" ~count:60 arb (fun adj ->
      let k = Core.Optimality.chromatic_number adj in
      match Core.Optimality.color_with ~adj k with
      | None -> false
      | Some colors ->
        let proper = ref true in
        Array.iteri
          (fun i row ->
            Array.iteri (fun j e -> if e && colors.(i) = colors.(j) then proper := false) row)
          adj;
        !proper && (k = 0 || Core.Optimality.color_with ~adj (k - 1) = None))

(* --- Finite restriction --- *)

let test_contains_translate () =
  let dom = Core.Finite.box ~lo:(Vec.make2 0 0) ~hi:(Vec.make2 5 5) in
  let n = Prototile.chebyshev_ball ~dim:2 1 in
  Alcotest.(check bool) "box contains N+N" true
    (Core.Finite.meets_optimality_criterion dom n);
  let tiny = Core.Finite.box ~lo:(Vec.make2 0 0) ~hi:(Vec.make2 2 2) in
  Alcotest.(check bool) "3x3 box too small for N+N (5x5)" false
    (Core.Finite.meets_optimality_criterion tiny n)

let test_finite_optimum_large_domain () =
  (* Criterion met: finite optimum equals |N|. *)
  let n = Prototile.euclidean_ball ~dim:2 1 in
  let dom = Core.Finite.box ~lo:(Vec.make2 0 0) ~hi:(Vec.make2 4 4) in
  Alcotest.(check bool) "criterion met" true (Core.Finite.meets_optimality_criterion dom n);
  Alcotest.(check int) "optimum = 5" 5
    (Core.Finite.optimal_slots ~neighborhood:(fun _ -> n) dom)

let test_finite_optimum_small_domain () =
  (* A single sensor needs one slot, beating m = |N|. *)
  let n = Prototile.chebyshev_ball ~dim:2 1 in
  let dom = Vec.Set.singleton (Vec.zero 2) in
  Alcotest.(check int) "lone sensor: 1 slot" 1
    (Core.Finite.optimal_slots ~neighborhood:(fun _ -> n) dom);
  (* Two far-apart sensors share a slot. *)
  let dom2 = Vec.Set.of_list [ Vec.zero 2; Vec.make2 10 10 ] in
  Alcotest.(check int) "far pair: 1 slot" 1
    (Core.Finite.optimal_slots ~neighborhood:(fun _ -> n) dom2)

let test_witnessed_vs_unwitnessed () =
  (* Two sensors whose ranges overlap only at a point where no sensor
     sits: no witnessed conflict, so they may share a slot. *)
  let n = Prototile.chebyshev_ball ~dim:2 1 in
  let a = Vec.make2 0 0 and b = Vec.make2 2 0 in
  let dom = Vec.Set.of_list [ a; b ] in
  Alcotest.(check int) "witnessed: 1 slot" 1
    (Core.Finite.optimal_slots ~witnessed:true ~neighborhood:(fun _ -> n) dom);
  Alcotest.(check int) "unwitnessed: 2 slots" 2
    (Core.Finite.optimal_slots ~witnessed:false ~neighborhood:(fun _ -> n) dom)

let test_restriction_optimal () =
  let p = Prototile.euclidean_ball ~dim:2 1 in
  let t = find_tiling_exn p in
  let dom = Core.Finite.box ~lo:(Vec.make2 0 0) ~hi:(Vec.make2 4 4) in
  Alcotest.(check bool) "restriction optimal on large domain" true
    (Core.Finite.restriction_is_optimal t dom)

(* --- Mobile --- *)

let mobile_system () =
  let p = Prototile.rect 2 2 in
  let t =
    Tiling.Single.make_exn ~prototile:p
      ~period:(Sublattice.of_basis [| [| 2; 0 |]; [| 0; 2 |] |])
      ~offsets:[ Vec.zero 2 ]
  in
  Core.Mobile.make t

let test_mobile_eligibility () =
  let m = mobile_system () in
  (* Near the center of the 2x2 tile region [-0.5, 1.5]^2, inside the open
     cell of (0,0): boundary distance 0.95, so radius 0.9 fits. *)
  let pos = { Voronoi.px = 0.45; py = 0.45 } in
  (match Core.Mobile.eligible_slot m ~pos ~radius:0.9 with
  | Some _ -> ()
  | None -> Alcotest.fail "interior position with small disk should be eligible");
  Alcotest.(check bool) "too-large disk rejected" true
    (Core.Mobile.eligible_slot m ~pos ~radius:1.3 = None);
  (* The exact tile center is a corner of four Voronoi cells: never
     eligible (open-cell rule), however small the disk. *)
  Alcotest.(check bool) "cell corner ineligible" true
    (Core.Mobile.eligible_slot m ~pos:{ Voronoi.px = 0.5; py = 0.5 } ~radius:0.1 = None);
  (* Cell-boundary position is never eligible. *)
  Alcotest.(check bool) "boundary ineligible" true
    (Core.Mobile.eligible_slot m ~pos:{ Voronoi.px = 0.5; py = 0.0 } ~radius:0.1 = None)

let test_mobile_time_gating () =
  let m = mobile_system () in
  let pos = { Voronoi.px = 0.1; py = 0.1 } in
  let radius = 0.2 in
  match Core.Mobile.eligible_slot m ~pos ~radius with
  | None -> Alcotest.fail "should be eligible in some slot"
  | Some slot ->
    Alcotest.(check bool) "sends at its slot" true (Core.Mobile.eligible m ~pos ~radius ~time:slot);
    Alcotest.(check bool) "silent at other slots" false
      (Core.Mobile.eligible m ~pos ~radius ~time:(slot + 1))

let test_mobile_pairwise_disjoint () =
  let m = mobile_system () in
  let rng = Prng.Xoshiro.create 99L in
  (* The paper assumes at most one sensor per Voronoi cell: place each
     sensor jittered inside its own cell. *)
  let sensors =
    List.init 60 (fun i ->
        let cx = float_of_int (i mod 10) and cy = float_of_int (i / 10) in
        ( { Voronoi.px = cx +. Prng.Xoshiro.float rng 0.8 -. 0.4;
            py = cy +. Prng.Xoshiro.float rng 0.8 -. 0.4 },
          0.3 +. Prng.Xoshiro.float rng 0.8 ))
  in
  for time = 0 to 3 do
    Alcotest.(check bool) "eligible senders pairwise disjoint" true
      (Core.Mobile.eligible_pairs_disjoint m sensors ~time)
  done

(* --- Certificate --- *)

let test_certificate_valid () =
  List.iter
    (fun (_, p) ->
      let t = find_tiling_exn p in
      let cert = Core.Certificate.build t in
      match Core.Certificate.check cert with
      | Ok () -> ()
      | Error f -> Alcotest.failf "certificate rejected: %a" Core.Certificate.pp_failure f)
    theorem1_prototiles

let test_certificate_detects_corruption () =
  let t = find_tiling_exn (Prototile.euclidean_ball ~dim:2 1) in
  let cert = Core.Certificate.build t in
  (* Break the clique: drop a member. *)
  let short = { cert with Core.Certificate.clique = List.tl cert.Core.Certificate.clique } in
  (match Core.Certificate.check short with
  | Error (Core.Certificate.Wrong_clique_size _) -> ()
  | _ -> Alcotest.fail "short clique accepted");
  (* Break the clique: far-apart positions do not interfere. *)
  let fake =
    { cert with
      Core.Certificate.clique =
        List.mapi (fun i _ -> Vec.make2 (100 * i) 0) cert.Core.Certificate.clique }
  in
  (match Core.Certificate.check fake with
  | Error (Core.Certificate.Not_a_clique _) -> ()
  | _ -> Alcotest.fail "fake clique accepted");
  (* Break the schedule: all slot 0. *)
  let period = Core.Schedule.period cert.Core.Certificate.schedule in
  let bad_schedule =
    Core.Schedule.of_table ~period
      ~num_slots:(Core.Schedule.num_slots cert.Core.Certificate.schedule)
      (Array.make (Sublattice.index period) 0)
  in
  match Core.Certificate.check { cert with Core.Certificate.schedule = bad_schedule } with
  | Error (Core.Certificate.Not_collision_free _) -> ()
  | _ -> Alcotest.fail "colliding schedule accepted"

let test_certificate_roundtrip () =
  let t = find_tiling_exn Prototile.directional in
  let cert = Core.Certificate.build t in
  match Core.Certificate.of_string (Core.Certificate.to_string cert) with
  | Error e -> Alcotest.fail e
  | Ok cert' -> (
    Alcotest.(check bool) "prototile preserved" true
      (Prototile.equal cert.Core.Certificate.prototile cert'.Core.Certificate.prototile);
    Alcotest.(check int) "clique preserved" (List.length cert.Core.Certificate.clique)
      (List.length cert'.Core.Certificate.clique);
    match Core.Certificate.check cert' with
    | Ok () -> ()
    | Error f -> Alcotest.failf "roundtripped certificate invalid: %a" Core.Certificate.pp_failure f)

(* --- Differential check of the periodic collision checker --- *)

let naive_window_violations prototile schedule ~radius =
  (* Brute force on a window: every same-slot pair with intersecting
     ranges, both senders inside the window. *)
  let out = ref [] in
  for x1 = -radius to radius do
    for y1 = -radius to radius do
      for x2 = -radius to radius do
        for y2 = -radius to radius do
          let u = Vec.make2 x1 y1 and v = Vec.make2 x2 y2 in
          if Vec.compare u v < 0 && Core.Schedule.slot_at schedule u = Core.Schedule.slot_at schedule v
          then begin
            let ru = Prototile.translate u prototile and rv = Prototile.translate v prototile in
            if not (Vec.Set.is_empty (Vec.Set.inter ru rv)) then out := (u, v) :: !out
          end
        done
      done
    done
  done;
  !out

let test_collision_checker_differential () =
  (* The periodic checker and the naive window scan must agree on
     emptiness, for both valid and broken schedules. *)
  let p = Prototile.euclidean_ball ~dim:2 1 in
  let t = find_tiling_exn p in
  let period = Tiling.Single.period t in
  let idx = Sublattice.index period in
  let rng = Prng.Xoshiro.create 41L in
  for _ = 1 to 40 do
    let m = 1 + Prng.Xoshiro.int rng 6 in
    let table = Array.init idx (fun _ -> Prng.Xoshiro.int rng m) in
    let s = Core.Schedule.of_table ~period ~num_slots:m table in
    let periodic_empty =
      Core.Collision.violations
        ~neighborhoods:(fun _ -> p)
        ~diff_bound:(Prototile.difference_set p)
        s
      = []
    in
    let naive_empty = naive_window_violations p s ~radius:5 = [] in
    Alcotest.(check bool) "checkers agree on emptiness" periodic_empty naive_empty
  done

(* --- Codec --- *)

let test_codec_schedule_roundtrip () =
  List.iter
    (fun p ->
      let t = find_tiling_exn p in
      let sched = Core.Schedule.of_tiling t in
      let encoded = Core.Codec.schedule_to_string sched in
      match Core.Codec.schedule_of_string encoded with
      | Error e -> Alcotest.fail e
      | Ok sched' ->
        Alcotest.(check int) "slots preserved" (Core.Schedule.num_slots sched)
          (Core.Schedule.num_slots sched');
        for x = -6 to 6 do
          for y = -6 to 6 do
            let v = Vec.make2 x y in
            Alcotest.(check int) "slot preserved" (Core.Schedule.slot_at sched v)
              (Core.Schedule.slot_at sched' v)
          done
        done)
    [ Prototile.chebyshev_ball ~dim:2 1; Prototile.euclidean_ball ~dim:2 1;
      Prototile.directional; Prototile.tetromino `S ]

let test_codec_tiling_roundtrip () =
  let t = find_tiling_exn Prototile.directional in
  let encoded = Core.Codec.tiling_to_string t in
  match Core.Codec.tiling_of_string encoded with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check bool) "same prototile" true
      (Prototile.equal (Tiling.Single.prototile t) (Tiling.Single.prototile t'));
    Alcotest.(check bool) "same period" true
      (Sublattice.equal (Tiling.Single.period t) (Tiling.Single.period t'));
    Alcotest.(check bool) "still verifies" true (Tiling.Single.check_window t' ~radius:5)

let test_codec_prototile_roundtrip () =
  List.iter
    (fun p ->
      match Core.Codec.prototile_of_string (Core.Codec.prototile_to_string p) with
      | Ok p' -> Alcotest.(check bool) "prototile roundtrip" true (Prototile.equal p p')
      | Error e -> Alcotest.fail e)
    [ Prototile.pentomino `X; Prototile.chebyshev_ball ~dim:2 2;
      Prototile.of_cells [ Vec.of_list [ 0; 0; 0 ]; Vec.of_list [ 1; 1; 1 ] ] ]

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "not a record" true
    (Result.is_error (Core.Codec.schedule_of_string "hello"));
  Alcotest.(check bool) "wrong kind" true
    (Result.is_error
       (Core.Codec.schedule_of_string
          (Core.Codec.prototile_to_string (Prototile.tetromino `S))));
  (* Corrupt a valid record's table length. *)
  let t = find_tiling_exn (Prototile.euclidean_ball ~dim:2 1) in
  let good = Core.Codec.schedule_to_string (Core.Schedule.of_tiling t) in
  let bad = good ^ ",0" in
  Alcotest.(check bool) "corrupted table rejected" true
    (Result.is_error (Core.Codec.schedule_of_string bad))

let test_codec_csv () =
  let t = find_tiling_exn (Prototile.tetromino `S) in
  let sched = Core.Schedule.of_tiling t in
  let dom = [ Vec.make2 0 0; Vec.make2 1 0; Vec.make2 5 7 ] in
  let csv = Core.Codec.csv_assignment sched ~domain:dom in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "one line per sensor" 3 (List.length lines);
  List.iter2
    (fun line v ->
      let expected =
        Printf.sprintf "%d,%d,%d" (Vec.x v) (Vec.y v) (Core.Schedule.slot_at sched v)
      in
      Alcotest.(check string) "csv line" expected line)
    lines dom

let qc = QCheck_alcotest.to_alcotest

let test_codec_tiling_rejects_invalid () =
  (* Syntactically valid record describing an overlapping tiling. *)
  let bad =
    "tilesched/v1;kind=tiling|prototile=0,0;1,0|basis=1,0;0,2|offsets=0,0"
  in
  Alcotest.(check bool) "invalid tiling rejected" true
    (Result.is_error (Core.Codec.tiling_of_string bad))

let qcheck_codec_mutation_total =
  (* Decoders are total: a valid encoding corrupted by one character
     substitution, deletion, adjacent swap, or truncation must yield
     [Ok] or [Error], never an exception.  (No insertions: inserting
     digits can legitimately describe astronomically large periods.) *)
  let seeds =
    let s = Prototile.tetromino `S in
    let t = Option.get (Tiling.Search.find_tiling s) in
    let sched = Core.Schedule.of_tiling t in
    [ Core.Codec.prototile_to_string s; Core.Codec.schedule_to_string sched;
      Core.Codec.tiling_to_string t;
      Core.Certificate.to_string (Core.Certificate.build t) ]
  in
  let mutate_gen line =
    QCheck.Gen.(
      let n = String.length line in
      oneof
        [ (let* i = int_bound (n - 1) in
           let* c = printable in
           return (String.mapi (fun j x -> if j = i then c else x) line));
          (let* i = int_bound (n - 1) in
           return (String.sub line 0 i ^ String.sub line (i + 1) (n - i - 1)));
          (let* i = int_bound (n - 1) in
           return (String.sub line 0 i));
          (let* i = int_bound (max 0 (n - 2)) in
           let b = Bytes.of_string line in
           if n >= 2 then begin
             let t = Bytes.get b i in
             Bytes.set b i (Bytes.get b (i + 1));
             Bytes.set b (i + 1) t
           end;
           return (Bytes.to_string b)) ])
  in
  QCheck.Test.make ~name:"mutated encodings never raise" ~count:1000
    QCheck.(make ~print:Fun.id Gen.(oneof (List.map mutate_gen seeds)))
    (fun line ->
      (match Core.Codec.prototile_of_string line with Ok _ | Error _ -> ());
      (match Core.Codec.schedule_of_string line with Ok _ | Error _ -> ());
      (match Core.Codec.tiling_of_string line with Ok _ | Error _ -> ());
      (match Core.Certificate.of_string line with Ok _ | Error _ -> ());
      true)

let qcheck_conflict_adj_symmetric =
  let gen =
    QCheck.Gen.(
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      Array.init 8 (fun _ -> Vec.make2 (Prng.Xoshiro.int rng 7) (Prng.Xoshiro.int rng 7)))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"conflict adjacency is symmetric and irreflexive" ~count:60 arb
    (fun sensors ->
      let sensors = Array.of_list (List.sort_uniq Vec.compare (Array.to_list sensors)) in
      let n = Prototile.chebyshev_ball ~dim:2 1 in
      let adj = Core.Finite.conflict_adj ~neighborhood:(fun _ -> n) sensors in
      let ok = ref true in
      Array.iteri
        (fun i row ->
          if row.(i) then ok := false;
          Array.iteri (fun j v -> if v <> adj.(j).(i) then ok := false) row)
        adj;
      !ok)

let qcheck_codec_random_schedules =
  let gen =
    QCheck.Gen.(
      int_range 1 6 >>= fun a ->
      int_range 1 6 >>= fun d ->
      int_range 0 5 >>= fun b ->
      int_range 1 8 >>= fun m ->
      int_bound 1_000_000 >|= fun seed ->
      let period = Sublattice.of_basis [| [| a; b |]; [| 0; d |] |] in
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      let table = Array.init (Sublattice.index period) (fun _ -> Prng.Xoshiro.int rng m) in
      Core.Schedule.of_table ~period ~num_slots:m table)
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"codec roundtrips arbitrary periodic schedules" ~count:120 arb
    (fun sched ->
      match Core.Codec.schedule_of_string (Core.Codec.schedule_to_string sched) with
      | Error _ -> false
      | Ok sched' ->
        Core.Schedule.num_slots sched = Core.Schedule.num_slots sched'
        && List.for_all
             (fun c -> Core.Schedule.slot_at sched c = Core.Schedule.slot_at sched' c)
             (Sublattice.cosets (Core.Schedule.period sched)))

let qcheck_theorem1_random_polyominoes =
  let gen =
    QCheck.Gen.(
      int_range 1 6 >>= fun steps ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      Randomtile.polyomino rng ~cells:(steps + 1))
  in
  let arb = QCheck.make ~print:Prototile.to_string gen in
  QCheck.Test.make ~name:"Theorem 1 on random exact polyominoes" ~count:40 arb (fun p ->
      match Tiling.Search.find_lattice_tiling p with
      | None -> QCheck.assume_fail ()
      | Some t ->
        let s = Core.Schedule.of_tiling t in
        Core.Schedule.num_slots s = Prototile.size p
        && Core.Collision.is_collision_free_theorem1 t s)

let qcheck_certificate_random_exact_polyominoes =
  (* Any tiling the search finds for a random polyomino must yield a
     certificate that (a) passes the independent checker and (b) survives
     a serialization roundtrip, checker included. *)
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun cells ->
      int_bound 1_000_000 >|= fun seed ->
      Randomtile.polyomino (Prng.Xoshiro.create (Int64.of_int seed)) ~cells)
  in
  let arb = QCheck.make ~print:Prototile.to_string gen in
  QCheck.Test.make ~name:"random exact polyominoes certify and roundtrip" ~count:40 arb (fun p ->
      match Tiling.Search.find_tiling p with
      | None -> QCheck.assume_fail ()
      | Some t ->
        let cert = Core.Certificate.build t in
        Core.Certificate.check cert = Ok ()
        &&
        (match Core.Certificate.of_string (Core.Certificate.to_string cert) with
        | Error _ -> false
        | Ok cert' ->
          Prototile.equal cert.Core.Certificate.prototile cert'.Core.Certificate.prototile
          && List.length cert.Core.Certificate.clique = List.length cert'.Core.Certificate.clique
          && Core.Certificate.check cert' = Ok ()))

let qcheck_tile_is_clique_random =
  (* The Theorem-1 lower-bound argument machine-checked on arbitrary
     prototiles, connected and sparse alike: a tile is always a clique. *)
  let gen =
    QCheck.Gen.(
      bool >>= fun connected ->
      int_range 1 8 >>= fun cells ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      if connected then Randomtile.polyomino rng ~cells
      else Randomtile.sparse rng ~cells ~spread:4)
  in
  let arb = QCheck.make ~print:Prototile.to_string gen in
  QCheck.Test.make ~name:"random prototiles are cliques" ~count:200 arb
    Core.Optimality.tile_is_clique

let () =
  Alcotest.run "core"
    [
      ( "theorem1",
        [
          Alcotest.test_case "slot count = |N|" `Quick test_theorem1_slot_count;
          Alcotest.test_case "collision-free" `Quick test_theorem1_collision_free;
          Alcotest.test_case "slot = cell index" `Quick test_theorem1_matches_cell_index;
          Alcotest.test_case "3-D" `Quick test_theorem1_3d;
          Alcotest.test_case "may_send periodicity" `Quick test_may_send_periodicity;
          Alcotest.test_case "bad schedule detected" `Quick test_bad_schedule_detected;
          Alcotest.test_case "m-1 slots always collide" `Slow test_fewer_slots_always_collide;
          Alcotest.test_case "drift injection" `Quick test_drift_injection;
          Alcotest.test_case "relabel preserves freedom" `Quick
            test_relabel_preserves_collision_freedom;
          Alcotest.test_case "relabel checks permutation" `Quick
            test_relabel_rejects_non_permutation;
          qc qcheck_theorem1_random_polyominoes;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "respectable two-piece" `Quick test_theorem2_respectable;
          Alcotest.test_case "non-respectable stays collision-free" `Quick
            test_theorem2_nonrespectable_collision_free;
          Alcotest.test_case "figure 5: 6 vs 4" `Quick test_figure5_six_vs_four;
          Alcotest.test_case "assignment witness" `Quick test_ground_rule_assignment_witness;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "lower bound + clique" `Quick test_lower_bound_and_clique;
          Alcotest.test_case "chromatic small graphs" `Quick test_chromatic_number_small_graphs;
          qc qcheck_coloring_proper;
          qc qcheck_tile_is_clique_random;
        ] );
      ( "finite",
        [
          Alcotest.test_case "contains translate" `Quick test_contains_translate;
          Alcotest.test_case "large domain optimum" `Quick test_finite_optimum_large_domain;
          Alcotest.test_case "small domain beats m" `Quick test_finite_optimum_small_domain;
          Alcotest.test_case "witnessed vs unwitnessed" `Quick test_witnessed_vs_unwitnessed;
          Alcotest.test_case "restriction optimal" `Quick test_restriction_optimal;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "valid certificates" `Quick test_certificate_valid;
          Alcotest.test_case "detects corruption" `Quick test_certificate_detects_corruption;
          Alcotest.test_case "roundtrip" `Quick test_certificate_roundtrip;
          qc qcheck_certificate_random_exact_polyominoes;
        ] );
      ( "differential",
        [ Alcotest.test_case "periodic = naive window" `Slow test_collision_checker_differential ] );
      ( "codec",
        [
          Alcotest.test_case "schedule roundtrip" `Quick test_codec_schedule_roundtrip;
          Alcotest.test_case "tiling roundtrip" `Quick test_codec_tiling_roundtrip;
          Alcotest.test_case "prototile roundtrip" `Quick test_codec_prototile_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "csv export" `Quick test_codec_csv;
          Alcotest.test_case "rejects invalid tiling" `Quick test_codec_tiling_rejects_invalid;
          qc qcheck_conflict_adj_symmetric;
          qc qcheck_codec_random_schedules;
          qc qcheck_codec_mutation_total;
        ] );
      ( "mobile",
        [
          Alcotest.test_case "eligibility" `Quick test_mobile_eligibility;
          Alcotest.test_case "time gating" `Quick test_mobile_time_gating;
          Alcotest.test_case "pairwise disjoint" `Quick test_mobile_pairwise_disjoint;
        ] );
    ]
