(* Tests for the corpus subsystem: the streaming polyomino iterator, the
   BN-filtered campaign (counts, resume, in-process crash followed by a
   byte-identical rebuild), the mmap snapshot (lookup, zero-copy splice,
   offline verification), the engine's corpus tier (src=corpus with zero
   searches), and the differential oracle pinning the BN decision to the
   exact-cover search ground truth for every class up to area 8. *)

open Lattice
module Protocol = Server.Protocol
module Engine = Server.Engine
module Campaign = Corpus.Campaign
module Snapshot = Corpus.Snapshot
module Layout = Corpus.Layout

let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Corpus directories are flat (MANIFEST, *.seg, *.idx). *)
let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_temp_dir f =
  let dir = Filename.temp_file "tilesched-corpus" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------- streaming enumeration ---------- *)

let test_iter_matches_list () =
  let acc = Array.make 9 [] in
  Polyomino.enumerate_free_iter ~max_area:8 (fun ~area t -> acc.(area) <- t :: acc.(area));
  List.iteri
    (fun i expected ->
      let n = i + 1 in
      Alcotest.(check int) (Printf.sprintf "A000105 count at area %d" n) expected
        (List.length acc.(n)))
    [ 1; 1; 2; 5; 12; 35; 108; 369 ];
  (* The stream visits each band in exactly enumerate_free's order. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "stream order at area %d" n)
        true
        (List.for_all2 Prototile.equal (List.rev acc.(n)) (Polyomino.enumerate_free n)))
    [ 1; 2; 3; 4; 5; 6 ]

(* ---------- campaign ---------- *)

let check_bands_to_6 bands =
  Alcotest.(check (list (triple int int int)))
    "per-band (classes, exact, non-exact)"
    [ (1, 1, 0); (1, 1, 0); (2, 2, 0); (5, 5, 0); (12, 9, 3); (35, 24, 11) ]
    (List.map (fun b -> (b.Layout.classes, b.Layout.exact, b.Layout.non_exact)) bands)

let test_campaign_counts_and_skip () =
  with_temp_dir (fun dir ->
      let r = ok_or_fail (Campaign.run ~dir ~max_n:6 ()) in
      Alcotest.(check int) "fresh run skips nothing" 0 r.Campaign.skipped_bands;
      check_bands_to_6 r.Campaign.bands;
      (* Second run over a complete corpus: every band checkpointed, no
         tile decided again, same report. *)
      let r2 = ok_or_fail (Campaign.run ~dir ~max_n:6 ()) in
      Alcotest.(check int) "all six bands skipped" 6 r2.Campaign.skipped_bands;
      check_bands_to_6 r2.Campaign.bands)

exception Kaboom

let test_crash_resume_byte_identical () =
  with_temp_dir (fun a ->
      with_temp_dir (fun b ->
          ignore (ok_or_fail (Campaign.run ~dir:a ~max_n:6 ()));
          (* Crash b halfway through band 5's appends: the manifest still
             says band 4, the segments carry torn band-5 bytes. *)
          (match
             Campaign.run ~dir:b ~max_n:6
               ~progress:(fun ~n ~done_ ~total ->
                 if n = 5 && done_ = total / 2 then raise Kaboom)
               ()
           with
          | exception Kaboom -> ()
          | Ok _ -> Alcotest.fail "expected the injected crash"
          | Error e -> Alcotest.fail e);
          let r = ok_or_fail (Campaign.run ~dir:b ~max_n:6 ()) in
          Alcotest.(check int) "resumed past the four checkpointed bands" 4
            r.Campaign.skipped_bands;
          let files dir = List.sort compare (Array.to_list (Sys.readdir dir)) in
          Alcotest.(check (list string)) "same file set" (files a) (files b);
          List.iter
            (fun f ->
              Alcotest.(check bool)
                (Printf.sprintf "%s is byte-identical to the uninterrupted build" f)
                true
                (read_file (Filename.concat a f) = read_file (Filename.concat b f)))
            (files a)))

(* ---------- snapshot ---------- *)

let test_snapshot_lookup_and_verify () =
  with_temp_dir (fun dir ->
      ignore (ok_or_fail (Campaign.run ~dir ~max_n:6 ()));
      let snap = ok_or_fail (Snapshot.open_ dir) in
      Alcotest.(check int) "56 classes resident" 56 (Snapshot.length snap);
      Polyomino.enumerate_free_iter ~max_area:6 (fun ~area t ->
          let key = Store.key_of_prototile t in
          match Snapshot.find snap key with
          | None -> Alcotest.failf "area-%d key not found: %s" area key
          | Some hit -> (
            Alcotest.(check int) "band is the tile's area" area (Snapshot.band snap hit);
            match (Snapshot.verdict snap hit, Campaign.decide t) with
            | `Exact, Campaign.Exact { tiling; _ } -> (
              match Snapshot.entry snap hit with
              | Ok (Some (tl, cert)) ->
                Alcotest.(check string) "stored tiling is the decided one"
                  (Core.Codec.tiling_to_string tiling)
                  (Core.Codec.tiling_to_string tl);
                (match Core.Certificate.check cert with
                | Ok () -> ()
                | Error f ->
                  Alcotest.failf "stored certificate rejected: %a" Core.Certificate.pp_failure f)
              | Ok None -> Alcotest.fail "exact hit decoded as non-exact"
              | Error e -> Alcotest.fail e)
            | `Non_exact, Campaign.Non_exact ->
              Alcotest.(check string) "non-exact payload is empty" ""
                (Snapshot.payload snap hit)
            | _ -> Alcotest.failf "snapshot and decide disagree on %s" key));
      (* A key outside the corpus misses cleanly. *)
      let t7 = List.hd (Polyomino.enumerate_free 7) in
      Alcotest.(check bool) "area-7 key misses" true
        (Option.is_none (Snapshot.find snap (Store.key_of_prototile t7)));
      let r = ok_or_fail (Snapshot.verify ~dir) in
      Alcotest.(check int) "verified records" 56 r.Snapshot.records;
      Alcotest.(check int) "verified exact" 42 r.Snapshot.exact;
      Alcotest.(check int) "verified non-exact" 14 r.Snapshot.non_exact;
      Alcotest.(check int) "verified index entries" 56 r.Snapshot.indexed)

let test_unsealed_corpus_refused () =
  with_temp_dir (fun dir ->
      ignore (ok_or_fail (Campaign.run ~dir ~max_n:4 ()));
      (* Growing drops the seal first; a crash right after leaves an
         unsealed corpus, which a snapshot must refuse to serve. *)
      (match
         Campaign.run ~dir ~max_n:5
           ~progress:(fun ~n:_ ~done_:_ ~total:_ -> raise Kaboom)
           ()
       with
      | exception Kaboom -> ()
      | _ -> Alcotest.fail "expected the injected crash");
      match Snapshot.open_ dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "an unsealed corpus must not open")

(* ---------- engine corpus tier ---------- *)

let test_engine_corpus_tier () =
  with_temp_dir (fun dir ->
      ignore (ok_or_fail (Campaign.run ~dir ~max_n:5 ()));
      let snap = ok_or_fail (Snapshot.open_ dir) in
      let e = Engine.create ~corpus:snap () in
      let s_canon = Symmetry.canonical (Prototile.tetromino `S) in
      let key = Store.key_of_prototile s_canon in
      (* Canonical orientation: the zero-deserialization splice path.
         The spliced line must be byte-identical to encoding the decoded
         entry through the ordinary Tiling_r arm. *)
      (match Engine.handle e (Protocol.Tile_search s_canon) with
      | Protocol.Tiling_raw_r { source = Some Protocol.Corpus; _ } as resp -> (
        let raw_line = Protocol.response_to_string ~id:7 resp in
        let hit = Option.get (Snapshot.find snap key) in
        let tiling, certificate =
          match Snapshot.entry snap hit with
          | Ok (Some tc) -> tc
          | _ -> Alcotest.fail "expected an exact corpus entry"
        in
        Alcotest.(check string) "splice line = decoded-and-reencoded line"
          (Protocol.response_to_string ~id:7
             (Protocol.Tiling_r { tiling; certificate; source = Some Protocol.Corpus }))
          raw_line;
        match Protocol.response_of_string raw_line with
        | Ok (Some 7, Protocol.Tiling_r { tiling; source = Some Protocol.Corpus; _ }) ->
          Alcotest.(check bool) "decoded prototile is the canonical tile" true
            (Prototile.equal (Tiling.Single.prototile tiling) s_canon)
        | _ -> Alcotest.fail "splice must decode as a corpus tiling reply")
      | _ -> Alcotest.fail "canonical tile-search must take the splice path");
      (* Congruent orientation: decoded, transported, still corpus. *)
      (match Engine.handle e (Protocol.Tile_search (Prototile.tetromino `Z)) with
      | Protocol.Tiling_r { source = Some Protocol.Corpus; tiling; _ } ->
        Alcotest.(check bool) "transported to the client's orientation" true
          (Prototile.equal (Tiling.Single.prototile tiling) (Prototile.tetromino `Z))
      | _ -> Alcotest.fail "congruent orientation must answer from corpus");
      (* Derived shapes ride the same tier. *)
      (match Engine.handle e (Protocol.Schedule s_canon) with
      | Protocol.Schedule_r { source = Some Protocol.Corpus; _ } -> ()
      | _ -> Alcotest.fail "schedule must derive from the corpus entry");
      (* A BN-refuted pentomino answers no-tiling from the corpus. *)
      let non_exact =
        List.find
          (fun t -> match Campaign.decide t with Campaign.Non_exact -> true | _ -> false)
          (Polyomino.enumerate_free 5)
      in
      (match Engine.handle e (Protocol.Tile_search non_exact) with
      | Protocol.No_tiling (Some Protocol.Corpus) -> ()
      | _ -> Alcotest.fail "non-exact corpus hit must answer no-tiling");
      let s = Engine.stats e in
      Alcotest.(check int) "zero searches" 0 s.Protocol.searches;
      Alcotest.(check int) "four corpus hits" 4 s.Protocol.corpus_hits;
      Alcotest.(check int) "corpus hits never touch the LRU" 0 s.Protocol.cache_entries;
      (* A key past the corpus bound falls through to the search chain. *)
      (match Engine.handle e (Protocol.Tile_search (Prototile.rect 2 3)) with
      | Protocol.Tiling_r { source = Some Protocol.Fresh; _ } -> ()
      | _ -> Alcotest.fail "corpus miss must fall through to a fresh search");
      Alcotest.(check int) "the miss searched" 1 (Engine.stats e).Protocol.searches)

let test_protocol_corpus_fields () =
  (* src=corpus round-trips. *)
  (match
     Protocol.response_of_string
       (Protocol.response_to_string (Protocol.No_tiling (Some Protocol.Corpus)))
   with
  | Ok (None, Protocol.No_tiling (Some Protocol.Corpus)) -> ()
  | _ -> Alcotest.fail "src=corpus must round-trip");
  let s =
    { Protocol.served = 2; overloaded = 0; errors = 0; searches = 1; coalesced = 0;
      timeouts = 0; cache_hits = 3; cache_misses = 4; cache_evictions = 0; cache_entries = 2;
      store_hits = 5; corpus_hits = 7 }
  in
  let line = Protocol.response_to_string (Protocol.Stats_r s) in
  (match Protocol.response_of_string line with
  | Ok (None, Protocol.Stats_r s') ->
    Alcotest.(check int) "corpus_hits round-trips" 7 s'.Protocol.corpus_hits
  | _ -> Alcotest.fail "stats must round-trip");
  (* A stats line from a server predating the field still decodes. *)
  let old_line =
    String.concat "|"
      (List.filter
         (fun f -> not (String.length f >= 12 && String.sub f 0 12 = "corpus_hits="))
         (String.split_on_char '|' line))
  in
  match Protocol.response_of_string old_line with
  | Ok (None, Protocol.Stats_r s') ->
    Alcotest.(check int) "absent corpus_hits defaults to 0" 0 s'.Protocol.corpus_hits
  | _ -> Alcotest.fail "old-format stats line must decode"

(* ---------- differential oracle ---------- *)

(* The BN filter is a complete decision procedure for polyominoes
   (holes included, which the campaign settles directly); the search is
   an independent implementation of the same question.  Every class up
   to area 8 must get the same verdict from both, and the totals pin
   the committed EXPERIMENTS table. *)
let test_bn_differential_oracle () =
  let pool = Parallel.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let tiles = ref [] in
      Polyomino.enumerate_free_iter ~max_area:8 (fun ~area:_ t -> tiles := t :: !tiles);
      let results =
        Parallel.map pool
          (fun t ->
            let bn =
              match Campaign.decide t with
              | Campaign.Non_exact -> false
              | Campaign.Exact _ -> true
            in
            (Store.key_of_prototile t, bn, Option.is_some (Tiling.Search.find_tiling t)))
          (List.rev !tiles)
      in
      List.iter
        (fun (key, bn, ground) ->
          if bn <> ground then
            Alcotest.failf "BN disagrees with the search on %s (bn=%b search=%b)" key bn ground)
        results;
      Alcotest.(check int) "classes up to area 8" 533 (List.length results);
      Alcotest.(check int) "exact classes up to area 8" 204
        (List.length (List.filter (fun (_, bn, _) -> bn) results)))

let () =
  Alcotest.run "corpus"
    [
      ( "enumeration",
        [ Alcotest.test_case "streaming iterator matches enumerate_free" `Slow
            test_iter_matches_list ] );
      ( "campaign",
        [
          Alcotest.test_case "band counts; complete corpus skips" `Quick
            test_campaign_counts_and_skip;
          Alcotest.test_case "crash mid-band, resume byte-identical" `Quick
            test_crash_resume_byte_identical;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "lookup, decode, verify" `Quick test_snapshot_lookup_and_verify;
          Alcotest.test_case "unsealed corpus refused" `Quick test_unsealed_corpus_refused;
        ] );
      ( "engine",
        [
          Alcotest.test_case "corpus tier: splice, transport, no searches" `Quick
            test_engine_corpus_tier;
          Alcotest.test_case "protocol: src=corpus and corpus_hits" `Quick
            test_protocol_corpus_fields;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "BN verdict = search verdict, n <= 8" `Slow
            test_bn_differential_oracle;
        ] );
    ]
