(* Tests for sublattices, prototiles, polyominoes, BN exactness, Voronoi. *)
open Zgeom
open Lattice

let vec = Alcotest.testable Vec.pp Vec.equal

(* --- Sublattice --- *)

let test_index_and_cosets () =
  let lam = Sublattice.of_basis [| [| 2; 1 |]; [| 0; 3 |] |] in
  Alcotest.(check int) "index = |det|" 6 (Sublattice.index lam);
  let cosets = Sublattice.cosets lam in
  Alcotest.(check int) "coset count" 6 (List.length cosets);
  (* Canonical representatives are all distinct and self-reduced. *)
  List.iter
    (fun c -> Alcotest.check vec "rep reduces to itself" c (Sublattice.reduce lam c))
    cosets;
  Alcotest.(check int) "distinct ids" 6
    (List.sort_uniq Stdlib.compare (List.map (Sublattice.coset_id lam) cosets) |> List.length)

let test_membership () =
  let lam = Sublattice.of_basis [| [| 2; 0 |]; [| 0; 2 |] |] in
  Alcotest.(check bool) "(2,0) in 2Z^2" true (Sublattice.mem lam (Vec.make2 2 0));
  Alcotest.(check bool) "(1,0) not in" false (Sublattice.mem lam (Vec.make2 1 0));
  Alcotest.(check bool) "(-4,6) in" true (Sublattice.mem lam (Vec.make2 (-4) 6));
  Alcotest.(check bool) "generators are members" true
    (List.for_all (Sublattice.mem lam) (Sublattice.generators lam))

let test_reduce_congruence () =
  let lam = Sublattice.of_basis [| [| 3; 1 |]; [| 1; 2 |] |] in
  let v = Vec.make2 (-17) 23 in
  Alcotest.(check bool) "v = reduce v (mod)" true (Sublattice.congruent lam v (Sublattice.reduce lam v));
  Alcotest.(check bool) "shift by generator keeps coset" true
    (Sublattice.congruent lam v (Vec.add v (List.hd (Sublattice.generators lam))))

let test_full_and_scaled () =
  let f = Sublattice.full 3 in
  Alcotest.(check int) "Z^3 has index 1" 1 (Sublattice.index f);
  let s = Sublattice.scaled 2 5 in
  Alcotest.(check int) "5Z^2 index 25" 25 (Sublattice.index s)

let test_snf_divisors () =
  let lam = Sublattice.of_basis [| [| 2; 0 |]; [| 0; 4 |] |] in
  Alcotest.(check (list int)) "Z^2/(2Zx4Z) = Z_2 x Z_4" [ 2; 4 ] (Sublattice.snf_divisors lam);
  let hex = Sublattice.of_basis [| [| 1; 2 |]; [| -2; 1 |] |] in
  Alcotest.(check (list int)) "index-5 cyclic quotient" [ 1; 5 ] (Sublattice.snf_divisors hex)

let test_all_of_index_2d () =
  (* The number of sublattices of Z^2 of index n is sigma(n). *)
  List.iter
    (fun (n, sigma) ->
      Alcotest.(check int)
        (Printf.sprintf "sigma(%d)" n)
        sigma
        (List.length (Sublattice.all_of_index ~dim:2 n)))
    [ (1, 1); (2, 3); (3, 4); (4, 7); (6, 12); (8, 15) ];
  (* All distinct, all of the right index. *)
  let all = Sublattice.all_of_index ~dim:2 6 in
  Alcotest.(check int) "pairwise distinct" (List.length all)
    (List.length (List.sort_uniq Sublattice.compare all));
  List.iter (fun l -> Alcotest.(check int) "index 6" 6 (Sublattice.index l)) all

let test_all_of_index_3d () =
  (* Sublattices of Z^3 of index 2: 1 + 2 + 4 = 7. *)
  Alcotest.(check int) "dim 3, index 2" 7 (List.length (Sublattice.all_of_index ~dim:3 2))

let sublattice_gen =
  QCheck.Gen.(
    let entry = int_range (-6) 6 in
    map
      (fun (a, b, c, d) ->
        let det = (a * d) - (b * c) in
        if det = 0 then Sublattice.of_basis [| [| 1; 0 |]; [| 0; 1 |] |]
        else Sublattice.of_basis [| [| a; b |]; [| c; d |] |])
      (quad entry entry entry entry))

let sublattice_arb = QCheck.make ~print:Sublattice.to_string sublattice_gen

let vec2_gen =
  QCheck.Gen.(map (fun (a, b) -> Vec.make2 a b) (pair (int_range (-40) 40) (int_range (-40) 40)))

let vec2_arb = QCheck.make ~print:Vec.to_string vec2_gen

let qcheck_snf_product_is_index =
  QCheck.Test.make ~name:"product of invariant factors = index" ~count:200 sublattice_arb
    (fun lam ->
      List.fold_left ( * ) 1 (Sublattice.snf_divisors lam) = Sublattice.index lam)

let qcheck_reduce_idempotent =
  QCheck.Test.make ~name:"reduce is idempotent and congruent" ~count:300
    (QCheck.pair sublattice_arb vec2_arb) (fun (lam, v) ->
      let r = Sublattice.reduce lam v in
      Vec.equal r (Sublattice.reduce lam r) && Sublattice.mem lam (Vec.sub v r))

let qcheck_coset_id_consistent =
  QCheck.Test.make ~name:"coset_id constant on cosets, injective on reps" ~count:300
    (QCheck.pair sublattice_arb vec2_arb) (fun (lam, v) ->
      let g = List.hd (Sublattice.generators lam) in
      Sublattice.coset_id lam v = Sublattice.coset_id lam (Vec.add v g)
      && Sublattice.coset_id lam v < Sublattice.index lam
      && Sublattice.coset_id lam v >= 0)

(* --- Prototile --- *)

let test_prototile_sizes () =
  Alcotest.(check int) "chebyshev r=1 in 2D" 9 (Prototile.size (Prototile.chebyshev_ball ~dim:2 1));
  Alcotest.(check int) "chebyshev r=2 in 2D" 25 (Prototile.size (Prototile.chebyshev_ball ~dim:2 2));
  Alcotest.(check int) "chebyshev r=1 in 3D" 27 (Prototile.size (Prototile.chebyshev_ball ~dim:3 1));
  Alcotest.(check int) "euclidean r=1" 5 (Prototile.size (Prototile.euclidean_ball ~dim:2 1));
  Alcotest.(check int) "euclidean r=2" 13 (Prototile.size (Prototile.euclidean_ball ~dim:2 2));
  Alcotest.(check int) "euclidean r2=2" 9 (Prototile.size (Prototile.euclidean_ball_sq ~dim:2 2));
  Alcotest.(check int) "manhattan r=1" 5 (Prototile.size (Prototile.manhattan_ball ~dim:2 1));
  Alcotest.(check int) "manhattan r=2" 13 (Prototile.size (Prototile.manhattan_ball ~dim:2 2));
  Alcotest.(check int) "directional" 8 (Prototile.size Prototile.directional);
  Alcotest.(check int) "rect 3x2" 6 (Prototile.size (Prototile.rect 3 2))

let test_prototile_contains_origin () =
  List.iter
    (fun p -> Alcotest.(check bool) "origin in N" true (Prototile.mem p (Vec.zero 2)))
    [ Prototile.chebyshev_ball ~dim:2 2; Prototile.directional; Prototile.tetromino `S;
      Prototile.pentomino `X; Prototile.of_cells_anchored [ Vec.make2 5 7; Vec.make2 6 7 ] ]

let test_difference_set () =
  let p = Prototile.of_cells [ Vec.make2 0 0; Vec.make2 1 0 ] in
  let d = Prototile.difference_set p in
  Alcotest.(check int) "size" 3 (Vec.Set.cardinal d);
  Alcotest.(check bool) "symmetric" true
    (Vec.Set.for_all (fun v -> Vec.Set.mem (Vec.neg v) d) d);
  Alcotest.(check bool) "contains 0" true (Vec.Set.mem (Vec.zero 2) d)

let test_minkowski_sum () =
  let p = Prototile.rect 2 1 in
  let s = Prototile.minkowski_sum p p in
  Alcotest.(check int) "rect2x1 + rect2x1 = rect3x1" 3 (Vec.Set.cardinal s)

let test_subset_respectability () =
  let big = Prototile.chebyshev_ball ~dim:2 1 in
  let small = Prototile.euclidean_ball ~dim:2 1 in
  Alcotest.(check bool) "euclidean r1 inside chebyshev r1" true (Prototile.subset small big);
  Alcotest.(check bool) "not conversely" false (Prototile.subset big small)

let test_rotations () =
  let s = Prototile.tetromino `S in
  (* Rotation is about the origin (the sensor), so even the 180-degree
     rotation of S differs as a subset of Z^2 (it is a translate). *)
  Alcotest.(check int) "S has 4 distinct rotations" 4 (List.length (Prototile.rotations s));
  let o = Prototile.tetromino `O in
  (* O anchored at a corner is not rotation invariant as a subset of Z^2
     (rotation about the origin moves it), but the 2x2 ball is. *)
  ignore o;
  let c = Prototile.chebyshev_ball ~dim:2 1 in
  Alcotest.(check int) "ball rotation invariant" 1 (List.length (Prototile.rotations c));
  let z = Prototile.tetromino `Z in
  Alcotest.(check bool) "Z is reflected S (up to translation)" true
    (let refl = Prototile.reflect s in
     let re_anchored = Prototile.of_cells_anchored (Prototile.cells refl) in
     Prototile.equal re_anchored (Prototile.of_cells_anchored (Prototile.cells z)))

let test_of_ascii () =
  let s = Prototile.of_ascii ".##\nO#." in
  Alcotest.(check bool) "equals S tetromino" true (Prototile.equal s (Prototile.tetromino `S));
  let dirp = Prototile.of_ascii "##\n##\n##\nO#" in
  Alcotest.(check bool) "equals directional" true (Prototile.equal dirp Prototile.directional);
  (* Origin need not be the lexicographic minimum. *)
  let shifted = Prototile.of_ascii "#O\n##" in
  Alcotest.(check bool) "origin respected" true (Prototile.mem shifted (Vec.make2 (-1) (-1)));
  (* pp/of_ascii roundtrip. *)
  let w = Prototile.pentomino `W in
  Alcotest.(check bool) "pp roundtrip" true
    (Prototile.equal w (Prototile.of_ascii (Prototile.to_string w)))

let test_of_ascii_rejects () =
  let bad s = match Prototile.of_ascii s with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "no origin" true (bad "##\n##");
  Alcotest.(check bool) "two origins" true (bad "OO");
  Alcotest.(check bool) "bad char" true (bad "#X\nO#");
  Alcotest.(check bool) "empty" true (bad "")

let test_euclidean_ball_sq_counts () =
  (* r^2 = 5 admits the 21-point disk; r^2 = 2 the 3x3 block. *)
  Alcotest.(check int) "r2=5" 21 (Prototile.size (Prototile.euclidean_ball_sq ~dim:2 5));
  Alcotest.(check int) "r2=2" 9 (Prototile.size (Prototile.euclidean_ball_sq ~dim:2 2));
  Alcotest.(check int) "r2=0 just the origin" 1
    (Prototile.size (Prototile.euclidean_ball_sq ~dim:2 0))

let test_bounding_box () =
  let p = Prototile.tetromino `S in
  let lo, hi = Prototile.bounding_box p in
  Alcotest.check vec "lo" (Vec.make2 0 0) lo;
  Alcotest.check vec "hi" (Vec.make2 2 1) hi

(* --- Symmetry --- *)

let test_symmetry_orders () =
  Alcotest.(check int) "ball has full D4" 8 (Symmetry.order (Prototile.chebyshev_ball ~dim:2 1));
  Alcotest.(check int) "plus has full D4" 8 (Symmetry.order (Prototile.euclidean_ball ~dim:2 1));
  (* S has the 180-degree rotation and two glide-ish... as subsets up to
     translation: rotation by 2 fixes S; reflections map S to Z. *)
  Alcotest.(check int) "S tetromino order 2" 2 (Symmetry.order (Prototile.tetromino `S));
  Alcotest.(check int) "L tetromino order 1" 1 (Symmetry.order (Prototile.tetromino `L));
  Alcotest.(check int) "T tetromino order 2" 2 (Symmetry.order (Prototile.tetromino `T))

let test_symmetry_orientations () =
  Alcotest.(check int) "ball 1 orientation" 1
    (Symmetry.distinct_orientations (Prototile.chebyshev_ball ~dim:2 1));
  Alcotest.(check int) "S: 2 orientations" 2
    (Symmetry.distinct_orientations (Prototile.tetromino `S));
  Alcotest.(check int) "L: 4 orientations" 4
    (Symmetry.distinct_orientations (Prototile.tetromino `L));
  Alcotest.(check bool) "ball rotation-symmetric" true
    (Symmetry.is_symmetric_under_rotation (Prototile.chebyshev_ball ~dim:2 2));
  Alcotest.(check bool) "L not" false
    (Symmetry.is_symmetric_under_rotation (Prototile.tetromino `L))

let test_symmetry_group_is_group () =
  (* Identity present; closed under composition (checked by size dividing 8
     and by applying each element twice staying in the group's orbit). *)
  List.iter
    (fun p ->
      let g = Symmetry.group p in
      Alcotest.(check bool) "identity present" true
        (List.exists (fun e -> e.Symmetry.rotation = 0 && not e.Symmetry.reflected) g);
      Alcotest.(check int) "order divides 8" 0 (8 mod List.length g))
    [ Prototile.tetromino `S; Prototile.tetromino `O; Prototile.pentomino `X;
      Prototile.directional ]

(* --- Canonical form --- *)

let random_tile_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun steps ->
    int_bound 1_000_000 >|= fun seed ->
    let rng = Prng.Xoshiro.create (Int64.of_int seed) in
    Randomtile.polyomino rng ~cells:(steps + 1))

let random_tile_arb = QCheck.make ~print:Prototile.to_string random_tile_gen

let test_canonical_merges_congruent () =
  List.iter
    (fun (name, a, b) ->
      Alcotest.(check bool) name true
        (Prototile.equal (Symmetry.canonical a) (Symmetry.canonical b)))
    [ ("S ~ Z", Prototile.tetromino `S, Prototile.tetromino `Z);
      ("L ~ J", Prototile.tetromino `L, Prototile.tetromino `J);
      ("rect2x3 ~ rect3x2", Prototile.rect 2 3, Prototile.rect 3 2);
      ("O ~ rect2x2", Prototile.tetromino `O, Prototile.rect 2 2) ];
  (* ... and non-congruent tiles stay apart. *)
  Alcotest.(check bool) "S /~ L" false
    (Prototile.equal
       (Symmetry.canonical (Prototile.tetromino `S))
       (Symmetry.canonical (Prototile.tetromino `L)))

let qcheck_canonical_idempotent =
  QCheck.Test.make ~name:"canonical is idempotent and size-preserving" ~count:200
    random_tile_arb (fun p ->
      let c = Symmetry.canonical p in
      Prototile.size c = Prototile.size p && Prototile.equal (Symmetry.canonical c) c)

let qcheck_canonical_invariant =
  QCheck.Test.make ~name:"canonical invariant under D4 and translation" ~count:100
    random_tile_arb (fun p ->
      let c = Symmetry.canonical p in
      List.for_all
        (fun e ->
          let image =
            Prototile.of_cells_anchored (List.map (Symmetry.apply e) (Prototile.cells p))
          in
          Prototile.equal (Symmetry.canonical image) c)
        Symmetry.elements)

let qcheck_canonicalize_witness =
  QCheck.Test.make ~name:"canonicalize witness maps p onto its canonical form" ~count:200
    random_tile_arb (fun p ->
      let c, g = Symmetry.canonicalize p in
      Prototile.equal c
        (Prototile.of_cells_anchored (List.map (Symmetry.apply g) (Prototile.cells p))))

let qcheck_inverse_law =
  QCheck.Test.make ~name:"apply (inverse e) undoes apply e" ~count:200
    (QCheck.pair (QCheck.make vec2_gen) (QCheck.make (QCheck.Gen.oneofl Symmetry.elements)))
    (fun (v, e) ->
      Vec.equal (Symmetry.apply (Symmetry.inverse e) (Symmetry.apply e v)) v
      && Vec.equal (Symmetry.apply e (Symmetry.apply (Symmetry.inverse e) v)) v)

(* --- Polyomino --- *)

let test_connectivity () =
  Alcotest.(check bool) "S connected" true (Polyomino.is_connected (Prototile.tetromino `S));
  let disconnected = Prototile.of_cells [ Vec.make2 0 0; Vec.make2 2 0 ] in
  Alcotest.(check bool) "gap disconnected" false (Polyomino.is_connected disconnected);
  let diagonal = Prototile.of_cells [ Vec.make2 0 0; Vec.make2 1 1 ] in
  Alcotest.(check bool) "diagonal not 4-connected" false (Polyomino.is_connected diagonal)

let test_holes () =
  let ring =
    Prototile.of_cells
      (List.filter_map
         (fun (x, y) -> if (x, y) = (1, 1) then None else Some (Vec.make2 x y))
         (List.concat_map (fun x -> List.init 3 (fun y -> (x, y))) (List.init 3 Fun.id)))
  in
  Alcotest.(check bool) "ring has a hole" true (Polyomino.has_holes ring);
  Alcotest.(check bool) "ring not a polyomino" false (Polyomino.is_polyomino ring);
  Alcotest.(check bool) "ball has no hole" false (Polyomino.has_holes (Prototile.chebyshev_ball ~dim:2 1))

let test_boundary_words () =
  Alcotest.(check string) "unit square" "ruld"
    (Polyomino.boundary_word (Prototile.of_cells [ Vec.make2 0 0 ]));
  Alcotest.(check string) "2x2 square" "rruulldd" (Polyomino.boundary_word (Prototile.rect 2 2));
  let w = Polyomino.boundary_word (Prototile.tetromino `S) in
  Alcotest.(check int) "S perimeter" 10 (String.length w);
  Alcotest.(check int) "perimeter function agrees" (Polyomino.perimeter (Prototile.tetromino `S))
    (String.length w)

let test_boundary_word_closed () =
  List.iter
    (fun p ->
      let w = Polyomino.boundary_word p in
      Alcotest.check vec "closed path" (Vec.zero 2) (Boundary_word.displacement w))
    [ Prototile.tetromino `T; Prototile.pentomino `W; Prototile.chebyshev_ball ~dim:2 2;
      Prototile.directional ]

(* --- Boundary_word / BN --- *)

let test_hat () =
  Alcotest.(check string) "hat of ru" "dl" (Boundary_word.hat "ru");
  Alcotest.(check string) "hat involutive" "rrul" (Boundary_word.hat (Boundary_word.hat "rrul"))

let test_bn_known_exact () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " exact") true (Boundary_word.is_exact_polyomino p))
    [ ("I4", Prototile.tetromino `I); ("O4", Prototile.tetromino `O); ("T4", Prototile.tetromino `T);
      ("S4", Prototile.tetromino `S); ("Z4", Prototile.tetromino `Z); ("L4", Prototile.tetromino `L);
      ("J4", Prototile.tetromino `J); ("X5", Prototile.pentomino `X); ("P5", Prototile.pentomino `P);
      ("W5", Prototile.pentomino `W); ("V5", Prototile.pentomino `V);
      ("cheb1", Prototile.chebyshev_ball ~dim:2 1);
      ("euclid1", Prototile.euclidean_ball ~dim:2 1); ("dir", Prototile.directional) ]

let test_bn_known_not_exact () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " not exact") false (Boundary_word.is_exact_polyomino p))
    [ ("U5", Prototile.pentomino `U); ("F5", Prototile.pentomino `F);
      ("T5", Prototile.pentomino `T) ]

let test_square_is_pseudo_square () =
  let w = Polyomino.boundary_word (Prototile.of_cells [ Vec.make2 0 0 ]) in
  Alcotest.(check bool) "pseudo-square" true (Boundary_word.is_pseudo_square w)

let test_translation_vectors_tile () =
  (* The BN factorization's displacement vectors generate a sublattice
     that actually tiles - cross-validation of the certificate. *)
  List.iter
    (fun p ->
      let w = Polyomino.boundary_word p in
      match Boundary_word.find_factorization w with
      | None -> Alcotest.fail "expected factorization"
      | Some f ->
        let v1, v2 = Boundary_word.translation_vectors w f in
        let det = (Vec.x v1 * Vec.y v2) - (Vec.y v1 * Vec.x v2) in
        Alcotest.(check int) "determinant = +-area" (Polyomino.area p) (abs det);
        let lam = Sublattice.of_rows [ v1; v2 ] in
        let ids = List.map (Sublattice.coset_id lam) (Prototile.cells p) in
        Alcotest.(check int) "cells form complete residues"
          (Prototile.size p)
          (List.length (List.sort_uniq Stdlib.compare ids)))
    [ Prototile.tetromino `S; Prototile.tetromino `L; Prototile.pentomino `X;
      Prototile.chebyshev_ball ~dim:2 1; Prototile.directional ]

let qcheck_bn_agrees_with_lattice_search =
  (* Random small polyominoes: BN exactness implies a lattice tiling
     exists and vice versa (Beauquier-Nivat + Wijshoff-van Leeuwen). *)
  let grow_gen =
    QCheck.Gen.(
      int_range 1 6 >>= fun steps ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      Randomtile.polyomino rng ~cells:(steps + 1))
  in
  let arb = QCheck.make ~print:Prototile.to_string grow_gen in
  QCheck.Test.make ~name:"BN = lattice-tiling existence on random polyominoes" ~count:60 arb
    (fun p ->
      QCheck.assume (Polyomino.is_polyomino p);
      let bn = Boundary_word.is_exact_polyomino p in
      let lattice = Tiling.Search.lattice_tilings p <> [] in
      bn = lattice)

(* --- Embedding --- *)

let test_embedding_square () =
  let e = Embedding.square in
  Alcotest.(check bool) "covolume 1" true (Float.abs (Embedding.covolume e -. 1.0) < 1e-12);
  let x, y = Embedding.position e (Vec.make2 3 (-2)) in
  Alcotest.(check bool) "identity embedding" true (x = 3.0 && y = -2.0)

let test_embedding_hex_ball_sizes () =
  let hex = Embedding.hexagonal in
  Alcotest.(check bool) "covolume sqrt3/2" true
    (Float.abs (Embedding.covolume hex -. (sqrt 3.0 /. 2.0)) < 1e-12);
  (* Hex balls have 3r^2+3r+1 points: 7, 19, 37. *)
  Alcotest.(check int) "r=1 ball" 7 (Prototile.size (Embedding.geometric_ball hex ~radius:1.01));
  Alcotest.(check int) "r=2 ball" 19 (Prototile.size (Embedding.geometric_ball hex ~radius:2.01));
  Alcotest.(check int) "r=3 ball" 37 (Prototile.size (Embedding.geometric_ball hex ~radius:3.01))

let test_embedding_coords_inverse () =
  let e = Embedding.of_basis (2.0, 0.5) (-0.3, 1.7) in
  List.iter
    (fun (a, b) ->
      let w = Embedding.position e (Vec.make2 a b) in
      let a', b' = Embedding.coords e w in
      Alcotest.(check bool) "inverse" true
        (Float.abs (a' -. float_of_int a) < 1e-9 && Float.abs (b' -. float_of_int b) < 1e-9))
    [ (0, 0); (5, -3); (-7, 11) ]

let test_embedding_nearest () =
  let hex = Embedding.hexagonal in
  (* Exactly at a lattice point. *)
  let w = Embedding.position hex (Vec.make2 2 3) in
  Alcotest.check vec "nearest at point" (Vec.make2 2 3) (Embedding.nearest hex w);
  (* Slightly perturbed. *)
  let x, y = w in
  Alcotest.check vec "nearest perturbed" (Vec.make2 2 3)
    (Embedding.nearest hex (x +. 0.1, y -. 0.2))

let qcheck_embedding_nearest_optimal =
  let gen =
    QCheck.Gen.(pair (float_bound_inclusive 10.0) (float_bound_inclusive 10.0))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"nearest beats all points in a window" ~count:200 arb (fun (x, y) ->
      let hex = Embedding.hexagonal in
      let best = Embedding.nearest hex (x, y) in
      let d v =
        let px, py = Embedding.position hex v in
        Float.hypot (px -. x) (py -. y)
      in
      let ok = ref true in
      for a = -2 to 14 do
        for b = -2 to 14 do
          if d (Vec.make2 a b) +. 1e-9 < d best then ok := false
        done
      done;
      !ok)

let qcheck_bn_naive_agrees =
  let grow_gen =
    QCheck.Gen.(
      int_range 1 6 >>= fun steps ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      Randomtile.polyomino rng ~cells:(steps + 1))
  in
  let arb = QCheck.make ~print:Prototile.to_string grow_gen in
  QCheck.Test.make ~name:"fast BN agrees with naive reference" ~count:80 arb (fun p ->
      QCheck.assume (Polyomino.is_polyomino p);
      let w = Polyomino.boundary_word p in
      (Boundary_word.find_factorization w <> None)
      = (Boundary_word.find_factorization_naive w <> None))

(* --- Voronoi --- *)

let test_square_cell_corners () =
  let corners = Voronoi.square_cell_corners (Vec.make2 2 3) in
  Alcotest.(check int) "four corners" 4 (List.length corners);
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool) "corner at distance 1/2 in each axis" true
        (Rat.equal (Rat.abs (Rat.sub x (Rat.of_int 2))) Rat.half
        && Rat.equal (Rat.abs (Rat.sub y (Rat.of_int 3))) Rat.half))
    corners

let test_hex_cell_geometry () =
  let corners = Voronoi.hex_cell_corners (Vec.make2 0 0) in
  Alcotest.(check int) "six corners" 6 (List.length corners);
  (* Shoelace area should equal sqrt(3)/2. *)
  let area =
    let arr = Array.of_list corners in
    let n = Array.length arr in
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      s := !s +. ((a.Voronoi.px *. b.Voronoi.py) -. (b.Voronoi.px *. a.Voronoi.py))
    done;
    Float.abs !s /. 2.0
  in
  Alcotest.(check bool) "area sqrt3/2" true (Float.abs (area -. Voronoi.hex_cell_area) < 1e-9)

let test_hex_embedding_distances () =
  (* All six hexagonal nearest neighbours lie at distance 1. *)
  let origin = Voronoi.embed_hex (Vec.make2 0 0) in
  List.iter
    (fun (a, b) ->
      let p = Voronoi.embed_hex (Vec.make2 a b) in
      let d = Float.hypot (p.Voronoi.px -. origin.Voronoi.px) (p.Voronoi.py -. origin.Voronoi.py) in
      Alcotest.(check bool) "unit distance" true (Float.abs (d -. 1.0) < 1e-9))
    [ (1, 0); (-1, 0); (0, 1); (0, -1); (1, -1); (-1, 1) ]

let test_open_cell_of () =
  Alcotest.(check (option vec)) "interior point" (Some (Vec.make2 1 2))
    (Voronoi.open_cell_of { Voronoi.px = 1.2; py = 1.8 });
  Alcotest.(check (option vec)) "boundary point" None
    (Voronoi.open_cell_of { Voronoi.px = 0.5; py = 0.0 })

let test_region_boundary_and_fit () =
  let cells = Vec.Set.of_list [ Vec.make2 0 0; Vec.make2 1 0 ] in
  let edges = Voronoi.region_boundary_edges cells in
  Alcotest.(check int) "2x1 region: 6 boundary edges" 6 (List.length edges);
  Alcotest.(check bool) "center fits small disk" true
    (Voronoi.disk_fits_in_region cells ~center:{ Voronoi.px = 0.5; py = 0.0 } ~radius:0.4);
  Alcotest.(check bool) "center cannot fit large disk" false
    (Voronoi.disk_fits_in_region cells ~center:{ Voronoi.px = 0.5; py = 0.0 } ~radius:0.6);
  Alcotest.(check bool) "outside point never fits" false
    (Voronoi.disk_fits_in_region cells ~center:{ Voronoi.px = 3.0; py = 3.0 } ~radius:0.1)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "lattice"
    [
      ( "sublattice",
        [
          Alcotest.test_case "index and cosets" `Quick test_index_and_cosets;
          Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "reduce congruence" `Quick test_reduce_congruence;
          Alcotest.test_case "full and scaled" `Quick test_full_and_scaled;
          Alcotest.test_case "snf divisors" `Quick test_snf_divisors;
          Alcotest.test_case "all_of_index 2D = sigma" `Quick test_all_of_index_2d;
          Alcotest.test_case "all_of_index 3D" `Quick test_all_of_index_3d;
          qc qcheck_snf_product_is_index;
          qc qcheck_reduce_idempotent;
          qc qcheck_coset_id_consistent;
        ] );
      ( "prototile",
        [
          Alcotest.test_case "ball sizes" `Quick test_prototile_sizes;
          Alcotest.test_case "contains origin" `Quick test_prototile_contains_origin;
          Alcotest.test_case "difference set" `Quick test_difference_set;
          Alcotest.test_case "minkowski sum" `Quick test_minkowski_sum;
          Alcotest.test_case "subset" `Quick test_subset_respectability;
          Alcotest.test_case "rotations" `Quick test_rotations;
          Alcotest.test_case "euclidean_ball_sq" `Quick test_euclidean_ball_sq_counts;
          Alcotest.test_case "of_ascii" `Quick test_of_ascii;
          Alcotest.test_case "of_ascii rejects" `Quick test_of_ascii_rejects;
          Alcotest.test_case "bounding box" `Quick test_bounding_box;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "orders" `Quick test_symmetry_orders;
          Alcotest.test_case "orientations" `Quick test_symmetry_orientations;
          Alcotest.test_case "group laws" `Quick test_symmetry_group_is_group;
          Alcotest.test_case "canonical merges congruent tiles" `Quick
            test_canonical_merges_congruent;
          qc qcheck_canonical_idempotent;
          qc qcheck_canonical_invariant;
          qc qcheck_canonicalize_witness;
          qc qcheck_inverse_law;
        ] );
      ( "polyomino",
        [
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "holes" `Quick test_holes;
          Alcotest.test_case "boundary words" `Quick test_boundary_words;
          Alcotest.test_case "boundary closed" `Quick test_boundary_word_closed;
        ] );
      ( "beauquier-nivat",
        [
          Alcotest.test_case "hat" `Quick test_hat;
          Alcotest.test_case "known exact" `Quick test_bn_known_exact;
          Alcotest.test_case "known non-exact" `Quick test_bn_known_not_exact;
          Alcotest.test_case "square pseudo-square" `Quick test_square_is_pseudo_square;
          Alcotest.test_case "translation vectors tile" `Quick test_translation_vectors_tile;
          qc qcheck_bn_agrees_with_lattice_search;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "square" `Quick test_embedding_square;
          Alcotest.test_case "hex ball sizes" `Quick test_embedding_hex_ball_sizes;
          Alcotest.test_case "coords inverse" `Quick test_embedding_coords_inverse;
          Alcotest.test_case "nearest" `Quick test_embedding_nearest;
          qc qcheck_embedding_nearest_optimal;
          qc qcheck_bn_naive_agrees;
        ] );
      ( "voronoi",
        [
          Alcotest.test_case "square corners" `Quick test_square_cell_corners;
          Alcotest.test_case "hex geometry" `Quick test_hex_cell_geometry;
          Alcotest.test_case "hex distances" `Quick test_hex_embedding_distances;
          Alcotest.test_case "open cell" `Quick test_open_cell_of;
          Alcotest.test_case "region fit" `Quick test_region_boundary_and_fit;
        ] );
    ]
