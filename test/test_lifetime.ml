(* Tests for the lifetime subsystem: rotation, repair, fault injection
   and the energy-conservation invariant. *)
open Zgeom
open Lattice

let tiling_for p =
  match Tiling.Search.find_tiling p with
  | Some t -> t
  | None -> Alcotest.fail "prototile should tile"

let square k = Sublattice.of_basis [| [| k; 0 |]; [| 0; k |] |]

let itet_rotation ?(epochs = 12) ?(policy = Lifetime.Rotation.Round_robin) ?(classes = 4) ()
    =
  let covers =
    Tiling.Search.distinct_torus_covers ~period:(square 4)
      ~prototiles:[ Prototile.tetromino `I ]
      ~max_classes:classes ()
  in
  match
    Lifetime.Rotation.make ~covers:(Lifetime.Rotation.balance covers) ~epoch:4 ~epochs
      ~policy
  with
  | Ok r -> r
  | Error e -> Alcotest.fail e

(* --- Rotation --- *)

let test_rotation_spread () =
  List.iter
    (fun policy ->
      let rot = itet_rotation ~policy () in
      let rotating = Lifetime.Rotation.spread (Lifetime.Rotation.duty rot) in
      let static = Lifetime.Rotation.spread (Lifetime.Rotation.static_duty rot) in
      Alcotest.(check bool)
        (Lifetime.Rotation.policy_name policy ^ " spread strictly below static")
        true
        (rotating < static))
    [ Lifetime.Rotation.Round_robin; Lifetime.Rotation.Least_depleted_first ]

let test_rotation_collision_free () =
  let rot = itet_rotation () in
  Alcotest.(check bool) "every cover's schedule collision-free" true
    (Lifetime.Rotation.collision_free rot);
  (* The rotating composite agrees with the active cover's schedule at
     every slot, including switch instants. *)
  let schedules = Lifetime.Rotation.schedules rot in
  let cosets = Sublattice.cosets (Lifetime.Rotation.period rot) in
  for time = 0 to 40 do
    let active = Lifetime.Rotation.active rot ~time in
    List.iter
      (fun v ->
        Alcotest.(check bool) "composite = active schedule" true
          (Lifetime.Rotation.may_send rot v ~time
          = Core.Schedule.may_send schedules.(active) v ~time))
      cosets
  done

let test_rotation_round_robin_plan () =
  let rot = itet_rotation ~epochs:7 () in
  Alcotest.(check (array int)) "round-robin plan" [| 0; 1; 2; 3; 0; 1; 2 |]
    (Lifetime.Rotation.plan rot);
  Alcotest.(check int) "plan cycles" 2 (Lifetime.Rotation.index_at rot 13)

let test_rotation_least_depleted_deterministic () =
  let a = itet_rotation ~policy:Lifetime.Rotation.Least_depleted_first () in
  let b = itet_rotation ~policy:Lifetime.Rotation.Least_depleted_first () in
  Alcotest.(check (array int)) "same plan on same inputs" (Lifetime.Rotation.plan a)
    (Lifetime.Rotation.plan b);
  (* Every cover gets used: least-depleted must not starve any class. *)
  let used = Array.make (Lifetime.Rotation.num_covers a) false in
  Array.iter (fun i -> used.(i) <- true) (Lifetime.Rotation.plan a);
  Alcotest.(check bool) "all covers used" true (Array.for_all Fun.id used)

let test_balance_relieves_origin () =
  (* Raw class representatives all anchor a tile at the origin, so the
     origin node leads every epoch (duty 1); balancing translates the
     covers apart. *)
  let covers =
    Tiling.Search.distinct_torus_covers ~period:(square 4)
      ~prototiles:[ Prototile.tetromino `I ]
      ~max_classes:4 ()
  in
  let rot covers =
    match
      Lifetime.Rotation.make ~covers ~epoch:4 ~epochs:4 ~policy:Lifetime.Rotation.Round_robin
    with
    | Ok r -> Array.fold_left max 0.0 (Lifetime.Rotation.duty r)
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (float 1e-9)) "raw representatives overload one node" 1.0 (rot covers);
  Alcotest.(check bool) "balanced covers share the load" true
    (rot (Lifetime.Rotation.balance covers) < 1.0)

let test_rotation_rejects () =
  let covers =
    Tiling.Search.distinct_torus_covers ~period:(square 4)
      ~prototiles:[ Prototile.tetromino `I ]
      ~max_classes:2 ()
  in
  (match Lifetime.Rotation.make ~covers ~epoch:6 ~epochs:4 ~policy:Lifetime.Rotation.Round_robin with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "epoch not a multiple of the slot count must be rejected");
  match Lifetime.Rotation.make ~covers:[] ~epoch:4 ~epochs:4 ~policy:Lifetime.Rotation.Round_robin with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty cover list must be rejected"

(* --- Repair --- *)

let test_repair_itet_wrapped_row () =
  let base = tiling_for (Prototile.tetromino `I) in
  let dead = Vec.make2 0 0 in
  Alcotest.(check bool) "dead is a leader" true (Lifetime.Repair.is_leader base dead);
  match Lifetime.Repair.repair ~deployment:(square 8) base ~dead with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* The damaged row wraps the torus and slides: a one-row repair. *)
    Alcotest.(check int) "window is one wrapped row" 8 r.Lifetime.Repair.stats.Lifetime.Repair.window_cells;
    Alcotest.(check int) "no growth rings needed" 0 r.Lifetime.Repair.stats.Lifetime.Repair.rings;
    Alcotest.(check int) "|N| slots on the window" 4 (Lifetime.Repair.slots_on_window r);
    Alcotest.(check bool) "window optimal" true (Lifetime.Repair.window_optimal r);
    Alcotest.(check bool) "local outside the window" true (Lifetime.Repair.local_outside r);
    Alcotest.(check bool) "dead demoted" false
      (Tiling.Single.in_translation_set r.Lifetime.Repair.patched dead);
    Alcotest.(check bool) "patched verifies" true
      (Tiling.Single.check_window r.Lifetime.Repair.patched ~radius:6)

let test_repair_non_leader () =
  let base = tiling_for (Prototile.tetromino `I) in
  let dead = Vec.make2 1 0 in
  Alcotest.(check bool) "dead is not a leader" false (Lifetime.Repair.is_leader base dead);
  match Lifetime.Repair.repair ~deployment:(square 8) base ~dead with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "identity patch" 0 (List.length r.Lifetime.Repair.changed);
    Alcotest.(check int) "no tiles removed" 0 r.Lifetime.Repair.stats.Lifetime.Repair.window_tiles;
    Alcotest.(check bool) "local trivially" true (Lifetime.Repair.local_outside r)

let test_repair_window_too_small () =
  (* The S-tetromino needs one growth ring on the 8x8 torus; forbidding
     growth must produce an honest error, not a bogus patch. *)
  let base = tiling_for (Prototile.tetromino `S) in
  let dead = Vec.make2 0 0 in
  (match Lifetime.Repair.repair ~max_rings:0 ~deployment:(square 8) base ~dead with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero-ring S-tet repair should be infeasible");
  match Lifetime.Repair.repair ~deployment:(square 8) base ~dead with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "one ring suffices" 1 r.Lifetime.Repair.stats.Lifetime.Repair.rings;
    Alcotest.(check bool) "window optimal" true (Lifetime.Repair.window_optimal r);
    Alcotest.(check bool) "local outside the window" true (Lifetime.Repair.local_outside r)

let test_repair_rejects_bad_deployment () =
  (* cheb1's period [[1;3];[0;9]] does not contain (0,12): the 12x12
     torus is not a quotient of the tiling. *)
  let base = tiling_for (Prototile.chebyshev_ball ~dim:2 1) in
  match Lifetime.Repair.repair ~deployment:(square 12) base ~dead:(Vec.make2 0 0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-sublattice deployment must be rejected"

let qcheck_repair_random_polyomino =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun steps ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Prng.Xoshiro.create (Int64.of_int seed) in
      Randomtile.polyomino rng ~cells:(steps + 1))
  in
  let arb = QCheck.make ~print:Prototile.to_string gen in
  QCheck.Test.make ~name:"random-prototile repairs are certified, |N|-slot, local" ~count:25
    arb (fun p ->
      match Tiling.Search.find_lattice_tiling p with
      | None -> QCheck.assume_fail ()
      | Some base ->
        let period = Tiling.Single.period base in
        let deployment =
          Sublattice.of_basis (Array.map (Array.map (fun x -> 4 * x)) (Sublattice.basis period))
        in
        let dead = List.hd (Tiling.Single.offsets base) in
        (match Lifetime.Repair.repair ~deployment base ~dead with
        | Error _ ->
          (* Honest infeasibility is acceptable: some windows never wrap
             within the ring budget. *)
          true
        | Ok r ->
          Lifetime.Repair.slots_on_window r = Prototile.size p
          && Lifetime.Repair.window_optimal r
          && Lifetime.Repair.local_outside r
          && not (Tiling.Single.in_translation_set r.Lifetime.Repair.patched dead)))

(* --- Fault injection and energy conservation --- *)

let lifetime_config ?(battery = None) ?(extra_cost = None) ?(random_deaths = 0)
    ?(churn = 0) ~mac () =
  { (Netsim.Sim.default_config ~mac) with
    Netsim.Sim.width = 8;
    height = 8;
    prototile = Prototile.tetromino `I;
    duration = 1200;
    workload = Netsim.Workload.Periodic { interval = 40 };
    faults =
      { Netsim.Faults.none with
        Netsim.Faults.battery;
        random_deaths;
        churn;
        downtime = 30;
        extra_cost;
      };
  }

let test_faults_deterministic_schedule () =
  let spec =
    { Netsim.Faults.none with Netsim.Faults.random_deaths = 3; churn = 2; downtime = 10 }
  in
  let events rng = Netsim.Faults.schedule spec ~rng ~num_nodes:64 ~duration:1000 in
  let a = events (Prng.Xoshiro.create 9L) and b = events (Prng.Xoshiro.create 9L) in
  Alcotest.(check bool) "same rng, same events" true (a = b);
  Alcotest.(check bool) "sorted by compare_event" true
    (List.for_all2
       (fun x y -> Netsim.Faults.compare_event x y <= 0)
       (List.filteri (fun i _ -> i < List.length a - 1) a)
       (List.tl a))

let test_random_deaths_kill () =
  let base = tiling_for (Prototile.tetromino `I) in
  let schedule = Core.Schedule.of_tiling base in
  let cfg =
    lifetime_config ~random_deaths:3 ~mac:(Netsim.Mac.lattice_tdma schedule) ()
  in
  let r = Netsim.Sim.run cfg in
  Alcotest.(check int) "three deaths" 3 (List.length r.Netsim.Sim.deaths);
  Alcotest.(check int) "alive accounts for the dead" (64 - 3) r.Netsim.Sim.alive_at_end;
  Alcotest.(check bool) "packet conservation with faults" true (Netsim.Sim.conservation_ok r);
  Alcotest.(check bool) "energy conservation with faults" true
    (Netsim.Sim.energy_conservation_ok cfg.Netsim.Sim.energy_model r);
  Alcotest.(check bool) "first death reported" true (Netsim.Sim.first_death r <> None)

let test_energy_conservation_across_seeds_and_jobs () =
  let rot = itet_rotation ~epochs:8 () in
  let cfg =
    lifetime_config ~battery:(Some 40.0)
      ~extra_cost:(Some (Lifetime.Rotation.extra_cost rot ~leader_cost:0.5))
      ~churn:2 ~mac:(Lifetime.Rotation.mac rot) ()
  in
  let seeds = [ 1L; 2L; 3L; 4L ] in
  let sweep jobs =
    Parallel.with_pool ~jobs (fun pool -> Netsim.Sim.run_sweep ~pool cfg ~seeds)
  in
  let r1 = sweep 1 and r4 = sweep 4 in
  Alcotest.(check bool) "sweep identical at jobs 1 and 4" true (r1 = r4);
  List.iter
    (fun r ->
      Alcotest.(check bool) "packet conservation" true (Netsim.Sim.conservation_ok r);
      Alcotest.(check bool) "energy conservation" true
        (Netsim.Sim.energy_conservation_ok cfg.Netsim.Sim.energy_model r);
      (* Battery capacity 40 with leaders paying +0.5/slot: somebody must
         have died, and nobody's account may exceed capacity by more than
         one slot's worth of energy. *)
      Alcotest.(check bool) "battery deaths occurred" true (r.Netsim.Sim.deaths <> []);
      Array.iter
        (fun acc ->
          Alcotest.(check bool) "no post-death spending" true
            (acc.Netsim.Energy.consumed < 40.0 +. 1.0 +. 0.5))
        r.Netsim.Sim.node_accounts)
    r1

let test_sweep_traces_per_seed () =
  let base = tiling_for (Prototile.tetromino `I) in
  let schedule = Core.Schedule.of_tiling base in
  let cfg =
    lifetime_config ~random_deaths:2 ~mac:(Netsim.Mac.lattice_tdma schedule) ()
  in
  let seeds = [ 5L; 6L ] in
  let logs jobs =
    let sinks = Hashtbl.create 4 in
    let trace_of seed =
      let t = Netsim.Trace.create () in
      Hashtbl.replace sinks seed t;
      Some t
    in
    Parallel.with_pool ~jobs (fun pool ->
        ignore (Netsim.Sim.run_sweep ~pool ~trace_of cfg ~seeds));
    List.map (fun s -> Netsim.Trace.to_log (Hashtbl.find sinks s)) seeds
  in
  let l1 = logs 1 and l4 = logs 4 in
  Alcotest.(check (list string)) "per-seed traces identical across jobs" l1 l4;
  (* The sweep must actually fill the sinks (the old behavior silently
     forced tracing off), and the injected deaths must be visible. *)
  List.iter
    (fun log ->
      Alcotest.(check bool) "trace non-empty" true (String.length log > 0);
      Alcotest.(check bool) "deaths traced" true
        (String.length log >= 4
        && List.exists
             (fun line ->
               String.length line > 5 && String.sub line (String.length line - 4) 4 = "died")
             (String.split_on_char '\n' log)))
    l1;
  (* Distinct seeds give distinct histories. *)
  Alcotest.(check bool) "seeds differ" true (List.nth l1 0 <> List.nth l1 1)

let test_rotation_extends_lifetime () =
  (* The EXP-L1 claim in miniature: under a leader surcharge and a finite
     battery, rotating leadership strictly delays the first death. *)
  let static = itet_rotation ~classes:1 ~epochs:1 () in
  let rotating =
    itet_rotation ~classes:4 ~epochs:12 ~policy:Lifetime.Rotation.Least_depleted_first ()
  in
  let run rot =
    let cfg =
      lifetime_config ~battery:(Some 30.0)
        ~extra_cost:(Some (Lifetime.Rotation.extra_cost rot ~leader_cost:1.0))
        ~mac:(Lifetime.Rotation.mac rot) ()
    in
    Netsim.Sim.run cfg
  in
  let rs = run static and rr = run rotating in
  match (Netsim.Sim.first_death rs, Netsim.Sim.first_death rr) with
  | Some ts, Some tr ->
    Alcotest.(check bool)
      (Printf.sprintf "rotation delays first death (%d > %d)" tr ts)
      true (tr > ts)
  | Some _, None -> () (* rotation kept everyone alive: even better *)
  | None, _ -> Alcotest.fail "static run must deplete some leader"

let () =
  Alcotest.run "lifetime"
    [
      ( "rotation",
        [
          Alcotest.test_case "spread strictly below static" `Quick test_rotation_spread;
          Alcotest.test_case "collision-free composite" `Quick test_rotation_collision_free;
          Alcotest.test_case "round-robin plan" `Quick test_rotation_round_robin_plan;
          Alcotest.test_case "least-depleted deterministic" `Quick
            test_rotation_least_depleted_deterministic;
          Alcotest.test_case "balance relieves the origin" `Quick test_balance_relieves_origin;
          Alcotest.test_case "rejects bad parameters" `Quick test_rotation_rejects;
        ] );
      ( "repair",
        [
          Alcotest.test_case "I-tet wrapped-row repair" `Quick test_repair_itet_wrapped_row;
          Alcotest.test_case "non-leader death is identity" `Quick test_repair_non_leader;
          Alcotest.test_case "too-small window is honest" `Quick test_repair_window_too_small;
          Alcotest.test_case "rejects bad deployment" `Quick test_repair_rejects_bad_deployment;
          QCheck_alcotest.to_alcotest qcheck_repair_random_polyomino;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic fault schedule" `Quick
            test_faults_deterministic_schedule;
          Alcotest.test_case "random deaths kill" `Quick test_random_deaths_kill;
          Alcotest.test_case "energy conservation, seeds x jobs" `Quick
            test_energy_conservation_across_seeds_and_jobs;
          Alcotest.test_case "per-seed sweep traces" `Quick test_sweep_traces_per_seed;
          Alcotest.test_case "rotation extends lifetime" `Quick test_rotation_extends_lifetime;
        ] );
    ]
